package enforce

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"plabi/internal/compile"
	"plabi/internal/fault"
	"plabi/internal/obs"
	"plabi/internal/policy"
	"plabi/internal/provenance"
	"plabi/internal/relation"
	"plabi/internal/report"
	"plabi/internal/sql"
)

// ReportEnforcer enforces PLAs on delivered reports (§5, Fig. 4): static
// compliance checking of report definitions, and runtime enforcement on
// rendered results — attribute access per role/purpose, intensional
// conditions resolved through provenance against the supporting source
// rows (the paper's HIV example), aggregation thresholds counted on
// lineage support, and row filters.
//
// The enforcer is safe for concurrent use. Policy-independent work is
// cached per (report, role, purpose) in a sharded plan cache validated
// against the policy-registry, catalog and configuration generations, so
// repeated renders skip parsing, profiling and PLA composition entirely;
// row-level enforcement fans out over a bounded worker pool.
type ReportEnforcer struct {
	Registry *policy.Registry
	Catalog  *sql.Catalog
	Tracer   *provenance.Tracer

	// mu guards the configuration below; cfgGen is bumped on every
	// configuration change so cached plans built under the previous
	// configuration stop validating.
	mu          sync.RWMutex
	levels      []policy.Level
	extraScopes map[string][]string
	cfgGen      atomic.Uint64

	cache   atomic.Pointer[planCache]
	workers atomic.Int32
	metrics atomic.Pointer[obs.Metrics]
	faults  atomic.Pointer[fault.Injector]

	// compiled forces residual-program execution for this enforcer
	// regardless of the process-wide exec mode.
	compiled atomic.Bool
	// programGen counts residual programs compiled by this enforcer; it
	// bumps on every plan build, so hot reloads and policy changes are
	// observable as recompilations rather than silent evictions.
	programGen atomic.Uint64
}

// NewReportEnforcer builds an enforcer consulting every level, with the
// default cache size and one render worker per CPU.
func NewReportEnforcer(reg *policy.Registry, cat *sql.Catalog, tr *provenance.Tracer) *ReportEnforcer {
	e := &ReportEnforcer{
		Registry: reg, Catalog: cat, Tracer: tr,
		levels: []policy.Level{policy.LevelSource, policy.LevelWarehouse,
			policy.LevelMetaReport, policy.LevelReport},
		extraScopes: map[string][]string{},
	}
	e.cache.Store(newPlanCache(0))
	return e
}

// SetLevels replaces the PLA levels consulted (nil or empty restores all
// levels) and invalidates cached plans.
func (e *ReportEnforcer) SetLevels(levels []policy.Level) {
	e.mu.Lock()
	e.levels = append([]policy.Level(nil), levels...)
	e.mu.Unlock()
	e.cfgGen.Add(1)
}

// SetExtraScopes replaces the report-id -> extra PLA scope map (e.g. the
// meta-reports each report derives from) and invalidates cached plans.
func (e *ReportEnforcer) SetExtraScopes(scopes map[string][]string) {
	cp := make(map[string][]string, len(scopes))
	for k, v := range scopes {
		cp[k] = append([]string(nil), v...)
	}
	e.mu.Lock()
	e.extraScopes = cp
	e.mu.Unlock()
	e.cfgGen.Add(1)
}

// SetCacheSize replaces the plan cache with a fresh one bounded at
// roughly n entries (n <= 0 selects the default). Counters restart.
func (e *ReportEnforcer) SetCacheSize(n int) {
	e.cache.Store(newPlanCache(n))
}

// SetWorkers bounds the render worker pool (0 = one per CPU).
func (e *ReportEnforcer) SetWorkers(n int) {
	e.workers.Store(int32(n))
}

// SetMetrics attaches an observability registry; query execution and
// row-enforcement timings and intervention counters are recorded into it
// (nil detaches).
func (e *ReportEnforcer) SetMetrics(m *obs.Metrics) {
	e.metrics.Store(m)
}

// obs returns the attached registry (nil — a no-op registry — when none
// was set).
func (e *ReportEnforcer) obs() *obs.Metrics { return e.metrics.Load() }

// SetFaults attaches a fault injector consulted at the render.worker
// site (nil detaches). Chaos suites use it to fail and panic render
// workers mid-enforcement.
func (e *ReportEnforcer) SetFaults(fi *fault.Injector) { e.faults.Store(fi) }

// CacheStats snapshots the plan-cache counters.
func (e *ReportEnforcer) CacheStats() CacheStats {
	return e.cache.Load().stats()
}

// SetCompiledRenders forces (or releases) residual-program execution for
// this enforcer independent of the process-wide exec mode.
func (e *ReportEnforcer) SetCompiledRenders(on bool) { e.compiled.Store(on) }

// ProgramGeneration returns the number of residual programs this
// enforcer has compiled. Every plan build — first render of a triple,
// policy change, catalog load, meta-report re-derivation, precompile
// after a hot reload — bumps it, so "reload recompiles" is testable.
func (e *ReportEnforcer) ProgramGeneration() uint64 { return e.programGen.Load() }

// ProgramFor returns the residual program compiled for (def, role,
// purpose), building (and caching) the plan on miss. The boolean reports
// whether the program came from the cache.
func (e *ReportEnforcer) ProgramFor(def *report.Definition, role, purpose string) (*compile.Program, bool, error) {
	plan, hit, err := e.planFor(def, role, purpose)
	if err != nil {
		return nil, false, err
	}
	return plan.prog, hit, nil
}

// Precompile builds and caches the plan (and residual program) for one
// (def, role, purpose) triple without rendering.
func (e *ReportEnforcer) Precompile(def *report.Definition, role, purpose string) error {
	_, _, err := e.planFor(def, role, purpose)
	return err
}

func (e *ReportEnforcer) levelSnapshot() []policy.Level {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if len(e.levels) > 0 {
		return append([]policy.Level(nil), e.levels...)
	}
	return policy.Levels()
}

func (e *ReportEnforcer) scopesFor(reportID string) []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return append([]string(nil), e.extraScopes[reportID]...)
}

// Enforced is a rendered report after enforcement.
type Enforced struct {
	Def   *report.Definition
	Table *relation.Table
	// Decisions lists every non-permit decision taken.
	Decisions []Decision
	// MaskedCells / SuppressedRows count the runtime interventions.
	MaskedCells    int
	SuppressedRows int
	// CacheHit reports whether the enforcement plan came from the
	// decision cache rather than being built for this render.
	CacheHit bool
}

// CompositeFor assembles the PLAs governing a report: source-level PLAs of
// every base table it reads, warehouse-level PLAs of those tables,
// meta-report PLAs of its registered scopes, and report-level PLAs of the
// report id itself.
func (e *ReportEnforcer) CompositeFor(def *report.Definition) (*policy.Composite, *sql.Profile, error) {
	prof, err := sql.ProfileSQL(e.Catalog, def.Query)
	if err != nil {
		return nil, nil, fmt.Errorf("enforce: profile %s: %w", def.ID, err)
	}
	var plas []*policy.PLA
	seen := map[string]bool{}
	add := func(comp *policy.Composite) {
		for _, p := range comp.PLAs {
			if !seen[p.ID] {
				seen[p.ID] = true
				plas = append(plas, p)
			}
		}
	}
	for _, lvl := range e.levelSnapshot() {
		switch lvl {
		case policy.LevelSource:
			add(e.Registry.ForScopes(lvl, prof.BaseTables))
		case policy.LevelWarehouse:
			// Warehouse-level PLAs may be scoped either to the base
			// tables or to the warehouse relations the query names in
			// its FROM clause (e.g. the wide staging table).
			add(e.Registry.ForScopes(lvl, prof.BaseTables))
			if sel, perr := def.Parse(); perr == nil {
				add(e.Registry.ForScopes(lvl, fromNames(sel)))
			}
		case policy.LevelMetaReport:
			add(e.Registry.ForScopes(lvl, e.scopesFor(def.ID)))
		case policy.LevelReport:
			add(e.Registry.ForScope(lvl, def.ID))
		}
	}
	return policy.Compose(plas...), prof, nil
}

// planFor returns the cached enforcement plan for (def, role, purpose),
// building and caching it on miss. A plan is valid only at the exact
// (definition version, policy generation, catalog generation, enforcer
// configuration generation) it was built at, so AddPLAs, catalog loads
// and meta-report re-derivation invalidate implicitly.
func (e *ReportEnforcer) planFor(def *report.Definition, role, purpose string) (*renderPlan, bool, error) {
	key := planKey{report: def.ID, role: strings.ToLower(role), purpose: strings.ToLower(purpose)}
	at := gens{
		version: def.Version,
		policy:  e.Registry.Generation(),
		catalog: e.Catalog.Generation(),
		scope:   e.cfgGen.Load(),
	}
	cache := e.cache.Load()
	if p, ok := cache.get(key, at); ok {
		return p, true, nil
	}
	p, err := e.buildPlan(def, role, purpose, at)
	if err != nil {
		return nil, false, err
	}
	cache.put(key, p)
	return p, false, nil
}

// buildPlan does every piece of enforcement work that does not depend on
// the data: parse, profile, compose the governing PLAs, run the static
// check, and partially evaluate the composite into a residual program
// (thresholds baked and sorted, row filters pre-bound, constant verdicts
// folded, dead rules pruned). Programs compile in every execution mode —
// the decision cache stores compiled programs — and execute in compiled
// mode.
func (e *ReportEnforcer) buildPlan(def *report.Definition, role, purpose string, at gens) (*renderPlan, error) {
	comp, prof, err := e.CompositeFor(def)
	if err != nil {
		return nil, err
	}
	sel, err := def.Parse()
	if err != nil {
		return nil, err
	}
	plan := &renderPlan{
		at:         at,
		sel:        sel,
		prof:       prof,
		comp:       comp,
		aggregated: prof.Aggregated,
		aggCols:    aggregateColumns(sel),
		aggPLAs:    comp.AggregationPLAs(),
		filterPLAs: comp.FilterPLAs(),
	}
	plan.reads = readSet(prof, sel)
	plan.static = e.staticDecisions(comp, prof, sel, role, purpose)
	plan.prog = e.compileProgram(plan, def, role, purpose, at)
	plan.thresholds = plan.prog.Thresholds
	plan.filters = plan.prog.Filters
	e.programGen.Add(1)
	m := e.obs()
	m.Counter("compile.programs").Inc()
	m.Counter("compile.pruned_rules").Add(uint64(len(plan.prog.Pruned)))
	return plan, nil
}

// compileProgram partially evaluates the plan's composite into its
// residual program. The enforcer feeds compile its own folded products —
// static verdicts and the static column classification — so the program
// can never disagree with runtime decision semantics; compile adds the
// baked thresholds, pre-bound filters and PL001 rule pruning.
func (e *ReportEnforcer) compileProgram(plan *renderPlan, def *report.Definition, role, purpose string, at gens) *compile.Program {
	in := compile.Input{
		Report: def.ID, Role: strings.ToLower(role), Purpose: strings.ToLower(purpose),
		At: compile.Generations{
			Version: at.version, Policy: at.policy, Catalog: at.catalog, Scope: at.scope,
		},
		Composite:  plan.comp,
		Aggregated: plan.aggregated,
	}
	for _, d := range plan.static {
		in.Static = append(in.Static, compile.Verdict{
			Outcome: d.Outcome.String(), Rule: d.Rule, Subject: d.Subject,
			Detail: d.Detail, PLAs: d.PLAs,
		})
	}
	// Static column classification from the query's output names (the
	// runtime binds against the executed schema with identical decisions;
	// this mirror is what Explain shows).
	fromRels := fromNames(plan.sel)
	names := make([]string, 0, len(plan.prof.OutputNames))
	for name := range plan.prof.OutputNames {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cp := compile.ColumnPlan{Name: name}
		if plan.aggCols[name] {
			cp.Aggregate = true
			in.Columns = append(in.Columns, cp)
			continue
		}
		refs := e.columnRefs(fromRels, name, plan.prof.OutputNames[name])
		d, conds := e.decideColumn(plan.comp, refs, name, role, purpose)
		if d != nil {
			cp.Masked = true
			cp.Rule = d.Rule
			cp.PLAs = d.PLAs
		}
		for _, c := range conds {
			cp.Conditions = append(cp.Conditions, fmt.Sprint(c))
		}
		in.Columns = append(in.Columns, cp)
	}
	return compile.Compile(in)
}

// StaticCheck verifies a report definition against the PLAs without
// executing it: forbidden joins, denied attributes, and missing
// aggregation for threshold-protected data are reported. An empty result
// means the definition is statically compliant — the paper's "testable
// before put in operation" property (§6). Results are served from the
// decision cache when valid.
func (e *ReportEnforcer) StaticCheck(def *report.Definition, role, purpose string) ([]Decision, error) {
	plan, _, err := e.planFor(def, role, purpose)
	if err != nil {
		return nil, err
	}
	return append([]Decision(nil), plan.static...), nil
}

// staticDecisions is the static-check body over an already-built
// composite, profile and AST.
func (e *ReportEnforcer) staticDecisions(comp *policy.Composite, prof *sql.Profile, sel *sql.SelectStmt, role, purpose string) []Decision {
	var out []Decision

	// Join permissions.
	for _, jp := range prof.JoinPairs {
		a := e.perTableComposite(jp.A)
		b := e.perTableComposite(jp.B)
		if ok, reason := a.JoinAllowed(jp.B); !ok {
			out = append(out, Decision{Outcome: Block, Rule: "join-permission",
				Subject: jp.A + " JOIN " + jp.B, Detail: reason,
				PLAs: plaList(a.DenyingJoinPLA(jp.B))})
		} else if ok, reason := b.JoinAllowed(jp.A); !ok {
			out = append(out, Decision{Outcome: Block, Rule: "join-permission",
				Subject: jp.B + " JOIN " + jp.A, Detail: reason,
				PLAs: plaList(b.DenyingJoinPLA(jp.A))})
		}
	}

	// Attribute access on non-aggregated output columns.
	aggCols := aggregateColumns(sel)
	fromRels := fromNames(sel)
	names := make([]string, 0, len(prof.OutputNames))
	for name := range prof.OutputNames {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if aggCols[name] {
			continue
		}
		refs := e.columnRefs(fromRels, name, prof.OutputNames[name])
		if d, _ := e.decideColumn(comp, refs, name, role, purpose); d != nil {
			out = append(out, *d)
		}
	}

	// Aggregation thresholds: a non-aggregated report exposing data under
	// a threshold rule violates it statically.
	if !prof.Aggregated {
		for _, rule := range comp.AggregationRules() {
			subject := rule.By
			if subject == "" {
				subject = "rows"
			}
			out = append(out, Decision{Outcome: Block, Rule: "aggregation-threshold",
				Subject: subject,
				Detail:  fmt.Sprintf("report is not aggregated but a min-%d threshold applies", rule.MinCount),
				PLAs:    comp.AggregationPLAs()})
		}
	}
	return out
}

func (e *ReportEnforcer) perTableComposite(table string) *policy.Composite {
	var plas []*policy.PLA
	for _, lvl := range []policy.Level{policy.LevelSource, policy.LevelWarehouse} {
		plas = append(plas, e.Registry.ForScope(lvl, table).PLAs...)
	}
	return policy.Compose(plas...)
}

// attrRefs builds the scoped attribute references for one output column:
// the output name (report vocabulary) plus every origin (base table +
// column), so source-level PLAs only speak about their own columns.
func attrRefs(name string, origins relation.ColRefSet) []policy.AttrRef {
	refs := []policy.AttrRef{{Name: strings.ToLower(name)}}
	for _, o := range origins {
		refs = append(refs, policy.AttrRef{Name: o.Column, Table: o.Table})
	}
	return refs
}

// columnRefs extends attrRefs with warehouse-relation references: for
// every relation the query names in FROM that carries a candidate column,
// a (column, relation) ref is added so warehouse-level PLAs scoped to
// e.g. the wide staging table can govern it.
func (e *ReportEnforcer) columnRefs(fromRels []string, name string, origins relation.ColRefSet) []policy.AttrRef {
	refs := attrRefs(name, origins)
	candidates := map[string]bool{strings.ToLower(name): true}
	for _, o := range origins {
		candidates[o.Column] = true
	}
	for _, rel := range fromRels {
		t, ok := e.Catalog.Table(rel)
		if !ok {
			continue
		}
		for c := range candidates {
			if t.Schema.HasColumn(c) {
				refs = append(refs, policy.AttrRef{Name: c, Table: rel})
			}
		}
	}
	return refs
}

// decideColumn returns the masking decision for one output column (nil
// when access is permitted) and the intensional conditions attached to
// the matching allow rules.
func (e *ReportEnforcer) decideColumn(comp *policy.Composite, refs []policy.AttrRef, name, role, purpose string) (*Decision, []relation.Expr) {
	d := comp.DecideAttributeRefs(refs, role, purpose)
	if d.Effect == policy.Deny {
		if len(d.Matched) > 0 {
			return &Decision{Outcome: Mask, Rule: "access-deny", Subject: name,
				Detail: fmt.Sprintf("attribute %q denied to role %q", name, role),
				PLAs:   d.PLAs}, nil
		}
		return &Decision{Outcome: Mask, Rule: "access-default-deny", Subject: name,
			Detail: fmt.Sprintf("no PLA allows attribute %q for role %q (closed world)", name, role)}, nil
	}
	seen := map[string]bool{}
	var conds []relation.Expr
	for _, c := range d.Conditions {
		if key := c.String(); !seen[key] {
			seen[key] = true
			conds = append(conds, c)
		}
	}
	return nil, conds
}

// buildColPlans computes the per-output-column access decisions for one
// consumer against an executed result's schema and column origins. The
// result is deterministic for a fixed plan generation, so it is computed
// once per cached plan and shared across renders.
func (e *ReportEnforcer) buildColPlans(plan *renderPlan, raw *relation.Table, role, purpose string) []colPlan {
	cols := make([]colPlan, raw.Schema.Len())
	fromRels := fromNames(plan.sel)
	for ci, col := range raw.Schema.Columns {
		name := strings.ToLower(col.Name)
		if plan.aggCols[name] {
			continue // aggregate columns governed by thresholds
		}
		origins := raw.ColumnOrigin(ci)
		refs := e.columnRefs(fromRels, name, origins)
		d, conds := e.decideColumn(plan.comp, refs, name, role, purpose)
		if d != nil {
			cols[ci] = colPlan{masked: true, decision: *d}
			continue
		}
		bound := make([]compile.BoundPredicate, len(conds))
		for i, c := range conds {
			bound[i] = compile.BindPredicate(c)
		}
		cols[ci] = colPlan{conditions: bound}
	}
	return cols
}

// Render executes the report and enforces the PLAs on the result for the
// given consumer.
func (e *ReportEnforcer) Render(def *report.Definition, consumer report.Consumer) (*Enforced, error) {
	return e.RenderContext(context.Background(), def, consumer)
}

// minParallelRows is the row count below which chunked enforcement is not
// worth the goroutine overhead.
const minParallelRows = 256

// cancelCheckRows is how often row-enforcement loops poll for
// cancellation, so a cancelled render stops mid-chunk rather than at the
// next chunk boundary.
const cancelCheckRows = 64

// RenderContext executes the report and enforces the PLAs on the result,
// honouring ctx cancellation between row chunks. Safe to call from many
// goroutines at once. In compiled mode (process-wide ExecCompiled or
// SetCompiledRenders) the render executes the plan's residual program.
func (e *ReportEnforcer) RenderContext(ctx context.Context, def *report.Definition, consumer report.Consumer) (*Enforced, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	plan, hit, err := e.planFor(def, consumer.Role, consumer.Purpose)
	if err != nil {
		return nil, err
	}
	if e.compiled.Load() || relation.CurrentExecMode() == relation.ExecCompiled {
		return e.renderCompiled(ctx, def, consumer, plan, hit)
	}
	return e.renderInterpreted(ctx, def, consumer, plan, hit)
}

// renderInterpreted is the uncompiled render body: execute the query and
// run enforcement over the result.
func (e *ReportEnforcer) renderInterpreted(ctx context.Context, def *report.Definition, consumer report.Consumer, plan *renderPlan, hit bool) (*Enforced, error) {
	m := e.obs()
	execStart := time.Now()
	raw, err := e.Catalog.Exec(plan.sel)
	if err != nil {
		return nil, fmt.Errorf("report %s: %w", def.ID, err)
	}
	m.Histogram("enforce.exec.duration").Observe(time.Since(execStart))
	raw.Name = def.ID
	enf := &Enforced{Def: def, CacheHit: hit}

	// Static blocks abort rendering entirely.
	enf.Decisions = append(enf.Decisions, Blocked(plan.static)...)
	if len(enf.Decisions) > 0 {
		m.Counter("enforce.static_blocks").Inc()
		empty := raw.Clone()
		empty.Rows = nil
		empty.Lineage = nil
		enf.Table = empty
		return enf, nil
	}

	out := raw.Clone()
	out.Name = def.ID

	// Column-level access decisions, computed once per plan generation.
	plan.colOnce.Do(func() {
		plan.cols = e.buildColPlans(plan, raw, consumer.Role, consumer.Purpose)
	})
	cols := plan.cols
	if len(cols) != out.Schema.Len() {
		// Defensive: a schema drift the generations failed to capture.
		cols = e.buildColPlans(plan, raw, consumer.Role, consumer.Purpose)
	}
	for ci := range cols {
		if cols[ci].masked {
			enf.Decisions = append(enf.Decisions, cols[ci].decision)
		}
	}

	rowsStart := time.Now()
	results, err := e.enforceRows(ctx, plan, raw, out, cols)
	if err != nil {
		return nil, err
	}
	m.Histogram("enforce.rows.duration").Observe(time.Since(rowsStart))
	m.Counter("enforce.rows.in").Add(uint64(len(results)))
	var keptRows []relation.Row
	var keptLineage []relation.LineageSet
	for ri := range results {
		r := &results[ri]
		enf.Decisions = append(enf.Decisions, r.decisions...)
		enf.MaskedCells += r.masked
		if !r.keep {
			enf.SuppressedRows++
			continue
		}
		keptRows = append(keptRows, r.row)
		keptLineage = append(keptLineage, r.lineage)
	}
	out.Rows = keptRows
	out.Lineage = keptLineage
	// Masked columns may hold strings now.
	for ci := range out.Schema.Columns {
		if cols[ci].masked {
			out.Schema.Columns[ci].Type = relation.TString
		}
	}
	m.Counter("enforce.cells.masked").Add(uint64(enf.MaskedCells))
	m.Counter("enforce.rows.suppressed").Add(uint64(enf.SuppressedRows))
	enf.Table = out
	return enf, nil
}

// renderCompiled executes the plan's residual program. The program's
// pinned generations include the catalog generation and registered
// relations are immutable between catalog generations, so within a valid
// plan the enforced result is a constant: the first execution runs the
// full pipeline through the program's baked thresholds and pre-bound
// predicates and folds the result; every subsequent render replays the
// fold — zero query execution, zero policy interpretation — re-emitting
// the same decisions into the audit trail.
func (e *ReportEnforcer) renderCompiled(ctx context.Context, def *report.Definition, consumer report.Consumer, plan *renderPlan, hit bool) (*Enforced, error) {
	m := e.obs()
	// Epoch check: the fold is a constant of the plan's *data*, not only
	// its generations. An incremental refresh (Catalog.Refresh) moves the
	// per-table epochs without moving the catalog generation, so the plan
	// survives a delta while folds over touched tables re-fold. The
	// snapshot is taken before query execution; a commit racing the fold
	// can only make the stored snapshot stale, forcing one extra re-fold —
	// never a stale replay.
	cur := e.Catalog.EpochsFor(plan.reads)
	plan.foldMu.Lock()
	fold := plan.fold
	if fold != nil && !epochsEqual(fold.epochs, cur) {
		plan.fold = nil
		fold = nil
		m.Counter("compile.fold.invalidations").Inc()
	}
	plan.foldMu.Unlock()
	if fold == nil {
		m.Counter("compile.fold.misses").Inc()
		enf, err := e.renderInterpreted(ctx, def, consumer, plan, hit)
		if err != nil {
			return nil, err
		}
		snap := &foldedRender{
			static:     len(Blocked(plan.static)) > 0,
			table:      enf.Table.Clone(),
			decisions:  append([]Decision(nil), enf.Decisions...),
			masked:     enf.MaskedCells,
			suppressed: enf.SuppressedRows,
			rowsIn:     enf.Table.NumRows() + enf.SuppressedRows,
			epochs:     cur,
		}
		plan.foldMu.Lock()
		if plan.fold == nil {
			plan.fold = snap
		}
		plan.foldMu.Unlock()
		return enf, nil
	}
	// Replay path. Faults still apply: a replayed render consults the
	// render.worker site once under panic isolation, so chaos schedules
	// exercise compiled renders too.
	fi := e.faults.Load()
	if err := fault.Safely(fault.SiteRenderWorker, m, func() error {
		return fi.Hit(ctx, fault.SiteRenderWorker)
	}); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.Counter("compile.fold.hits").Inc()
	enf := &Enforced{
		Def:            def,
		Table:          fold.table.Clone(),
		Decisions:      append([]Decision(nil), fold.decisions...),
		MaskedCells:    fold.masked,
		SuppressedRows: fold.suppressed,
		CacheHit:       hit,
	}
	// Replayed renders maintain the same per-render counters the
	// interpreted path emits.
	if fold.static {
		m.Counter("enforce.static_blocks").Inc()
	} else {
		m.Counter("enforce.rows.in").Add(uint64(fold.rowsIn))
		m.Counter("enforce.cells.masked").Add(uint64(fold.masked))
		m.Counter("enforce.rows.suppressed").Add(uint64(fold.suppressed))
	}
	return enf, nil
}

// plaList wraps one PLA id as a decision attribution ("" yields nil).
func plaList(id string) []string {
	if id == "" {
		return nil
	}
	return []string{id}
}

// rowResult is the per-row outcome of runtime enforcement, collected
// positionally so chunked execution stays deterministic.
type rowResult struct {
	keep      bool
	row       relation.Row
	lineage   relation.LineageSet
	decisions []Decision
	masked    int
}

// enforceRows applies thresholds, row filters and cell-level enforcement
// to every output row, fanning out over the worker pool for large
// results. Results are positional, so the merged output is identical to
// a sequential pass.
func (e *ReportEnforcer) enforceRows(ctx context.Context, plan *renderPlan, raw, out *relation.Table, cols []colPlan) ([]rowResult, error) {
	n := len(out.Rows)
	results := make([]rowResult, n)
	needsTrace := needsTrace(plan, cols)
	workers := int(e.workers.Load())
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	fi := e.faults.Load()
	if workers <= 1 || n < minParallelRows {
		err := fault.Safely(fault.SiteRenderWorker, e.obs(), func() error {
			if err := fi.Hit(ctx, fault.SiteRenderWorker); err != nil {
				return err
			}
			for ri := 0; ri < n; ri++ {
				if ri%cancelCheckRows == 0 {
					if err := ctx.Err(); err != nil {
						return err
					}
				}
				if err := e.enforceRow(plan, raw, out, cols, ri, needsTrace, &results[ri]); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		return results, nil
	}

	chunk := (n + workers*4 - 1) / (workers * 4)
	if chunk < 64 {
		chunk = 64
	}
	var (
		cursor   atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				start := int(cursor.Add(int64(chunk))) - chunk
				if start >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				// Each chunk runs under panic isolation: a panicking
				// worker (organic or injected) fails this render with a
				// typed *fault.InternalError instead of killing the
				// process, and the pool drains cleanly through wg.Wait.
				err := fault.Safely(fault.SiteRenderWorker, e.obs(), func() error {
					if err := fi.Hit(ctx, fault.SiteRenderWorker); err != nil {
						return err
					}
					for ri := start; ri < end; ri++ {
						if ri%cancelCheckRows == 0 {
							if err := ctx.Err(); err != nil {
								return err
							}
						}
						if err := e.enforceRow(plan, raw, out, cols, ri, needsTrace, &results[ri]); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// needsTrace reports whether row enforcement consults provenance at all:
// aggregation thresholds, row filters and intensional column conditions
// are the only consumers of a RowTrace. Reports with none of them (plain
// attribute masking, or fully permitted reports) skip the per-row trace —
// the dominant cost on wide lineage — with byte-identical results, since
// every branch reading the trace is unreachable.
func needsTrace(plan *renderPlan, cols []colPlan) bool {
	if len(plan.thresholds) > 0 {
		return true
	}
	if !plan.aggregated && len(plan.filters) > 0 {
		return true
	}
	for ci := range cols {
		if len(cols[ci].conditions) > 0 {
			return true
		}
	}
	return false
}

// enforceRow enforces one output row: aggregation thresholds counted on
// lineage support, row filters over supporting source rows, then
// cell-level masking (denied columns and intensional conditions — the §5
// HIV example).
func (e *ReportEnforcer) enforceRow(plan *renderPlan, raw, out *relation.Table, cols []colPlan, ri int, trace bool, res *rowResult) error {
	var rt provenance.RowTrace
	if trace {
		var err error
		rt, err = e.Tracer.TraceRow(raw, ri)
		if err != nil {
			return err
		}
	}
	// Aggregation thresholds (baked into the plan pre-sorted, so the
	// evidence order is deterministic without per-row sorting).
	for _, th := range plan.thresholds {
		by, k := th.By, th.Min
		var support int
		if by == "" {
			support = len(rt.Rows)
		} else {
			support = 0
			for table := range rt.Support {
				if n := e.Tracer.DistinctSupport(rt, table, by); n > support {
					support = n
				}
			}
		}
		if support < k {
			res.decisions = append(res.decisions, Decision{
				Outcome: SuppressGroup, Rule: "aggregation-threshold",
				Subject:  fmt.Sprintf("%s[%d]", out.Name, ri),
				Detail:   fmt.Sprintf("support %d < min %d (by %q)", support, k, by),
				PLAs:     plan.aggPLAs,
				Evidence: lineageEvidence(rt),
			})
			return nil
		}
	}
	// Row filters (non-aggregated reports): every supporting source row
	// must satisfy every filter.
	if !plan.aggregated && len(plan.filters) > 0 {
		ok, evidence := e.supportSatisfies(rt, plan.filters)
		if !ok {
			res.decisions = append(res.decisions, Decision{
				Outcome: SuppressRow, Rule: "row-filter",
				Subject:  fmt.Sprintf("%s[%d]", out.Name, ri),
				PLAs:     plan.filterPLAs,
				Evidence: evidence,
			})
			return nil
		}
	}
	// Cell-level masking: denied columns, then intensional conditions
	// evaluated against the supporting source rows.
	row := out.Rows[ri].Clone()
	for ci := range row {
		if cols[ci].masked {
			row[ci] = MaskValue
			res.masked++
			continue
		}
		if len(cols[ci].conditions) == 0 {
			continue
		}
		ok, evidence := e.supportSatisfies(rt, cols[ci].conditions)
		if !ok {
			row[ci] = MaskValue
			res.masked++
			res.decisions = append(res.decisions, Decision{
				Outcome: Mask, Rule: "condition",
				Subject:  fmt.Sprintf("%s[%d].%s", out.Name, ri, out.Schema.Columns[ci].Name),
				Evidence: evidence,
			})
		}
	}
	res.keep = true
	res.row = row
	res.lineage = raw.RowLineage(ri)
	return nil
}

// supportSatisfies evaluates pre-bound conditions on every source row
// supporting an output row. A condition only applies to base rows whose
// table carries all referenced columns; rows failing any applicable
// condition make the whole support fail, and their provenance is
// returned as evidence. The predicates arrive bound (columns resolved,
// expression compiled) from the residual program, so per-row evaluation
// performs no name lookups.
func (e *ReportEnforcer) supportSatisfies(rt provenance.RowTrace, conds []compile.BoundPredicate) (bool, []string) {
	for _, cond := range conds {
		for _, ref := range rt.Rows {
			vals := make(relation.Row, len(cond.Cols))
			applicable := true
			for i, col := range cond.Cols {
				v, ok := e.Tracer.BaseValue(ref, col)
				if !ok {
					applicable = false
					break
				}
				vals[i] = v
			}
			if !applicable {
				continue
			}
			ok, err := cond.Pred.Selected(vals)
			if err != nil || !ok {
				return false, []string{fmt.Sprintf("%s fails %s", ref, cond.Expr)}
			}
		}
	}
	return true, nil
}

func lineageEvidence(rt provenance.RowTrace) []string {
	out := make([]string, 0, len(rt.Rows))
	for i, ref := range rt.Rows {
		if i >= 8 {
			out = append(out, fmt.Sprintf("... %d more", len(rt.Rows)-i))
			break
		}
		out = append(out, ref.String())
	}
	return out
}

// readSet is the sorted, deduplicated set of relations a plan's render
// reads: the FROM-clause names (staging/warehouse tables the query
// executes over) united with the profile's base tables (which thresholds,
// row filters and intensional conditions read through the tracer).
func readSet(prof *sql.Profile, sel *sql.SelectStmt) []string {
	seen := map[string]bool{}
	var out []string
	add := func(n string) {
		n = strings.ToLower(n)
		if n != "" && !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	for _, n := range fromNames(sel) {
		add(n)
	}
	for _, n := range prof.BaseTables {
		add(n)
	}
	sort.Strings(out)
	return out
}

// fromNames returns the relation names a SELECT names in its FROM clause.
func fromNames(sel *sql.SelectStmt) []string {
	out := []string{strings.ToLower(sel.From.Name)}
	for _, j := range sel.Joins {
		out = append(out, strings.ToLower(j.Table.Name))
	}
	return out
}

// aggregateColumns returns the lowercase output names of aggregate select
// items.
func aggregateColumns(sel *sql.SelectStmt) map[string]bool {
	out := map[string]bool{}
	for _, it := range sel.Items {
		if it.Agg != nil {
			out[strings.ToLower(it.OutName())] = true
		}
	}
	return out
}
