package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	m := New()
	c := m.Counter("x")
	c.Inc()
	c.Add(4)
	if got := m.Counter("x").Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := m.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if got := m.Gauge("depth").Value(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var m *Metrics
	m.Counter("x").Inc()
	m.Gauge("g").Set(3)
	m.Histogram("h").Observe(time.Millisecond)
	ctx, span := m.StartSpan(context.Background(), "op")
	span.Set("k", "v")
	span.End()
	if span.ID() != "" {
		t.Error("nil span should have empty id")
	}
	if CorrelationID(ctx) != "" {
		t.Error("nil registry should not attach a correlation id")
	}
	s := m.Snapshot()
	if s.Counters == nil || s.Gauges == nil || s.Histograms == nil {
		t.Error("nil registry snapshot must carry non-nil maps")
	}
	if m.Spans() != nil {
		t.Error("nil registry should report no spans")
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram(time.Millisecond, 10*time.Millisecond, 100*time.Millisecond)
	// Boundary values land in the bucket they bound (le semantics).
	h.Observe(time.Millisecond)        // bucket 0
	h.Observe(500 * time.Microsecond)  // bucket 0
	h.Observe(2 * time.Millisecond)    // bucket 1
	h.Observe(10 * time.Millisecond)   // bucket 1
	h.Observe(99 * time.Millisecond)   // bucket 2
	h.Observe(time.Second)             // overflow
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	want := []uint64{2, 2, 1}
	for i, w := range want {
		if s.Buckets[i].Count != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Buckets[i].Count, w)
		}
	}
	if s.Overflow != 1 {
		t.Errorf("overflow = %d, want 1", s.Overflow)
	}
	wantSum := time.Millisecond + 500*time.Microsecond + 2*time.Millisecond +
		10*time.Millisecond + 99*time.Millisecond + time.Second
	if s.Sum != wantSum {
		t.Errorf("sum = %v, want %v", s.Sum, wantSum)
	}
	if mean := s.Mean(); mean != wantSum/6 {
		t.Errorf("mean = %v, want %v", mean, wantSum/6)
	}
}

func TestHistogramBoundsAreSorted(t *testing.T) {
	h := NewHistogram(100*time.Millisecond, time.Millisecond, 10*time.Millisecond)
	h.Observe(2 * time.Millisecond)
	s := h.Snapshot()
	if s.Buckets[0].UpperBound != time.Millisecond {
		t.Errorf("bounds not sorted: first = %v", s.Buckets[0].UpperBound)
	}
	if s.Buckets[1].Count != 1 {
		t.Errorf("2ms observation in wrong bucket: %+v", s.Buckets)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(10*time.Millisecond, 20*time.Millisecond, 40*time.Millisecond)
	for i := 0; i < 100; i++ {
		h.Observe(5 * time.Millisecond) // all in bucket 0
	}
	s := h.Snapshot()
	if q := s.Quantile(0.5); q <= 0 || q > 10*time.Millisecond {
		t.Errorf("p50 = %v, want within (0, 10ms]", q)
	}
	// Everything in overflow resolves to the largest bound.
	h2 := NewHistogram(time.Millisecond)
	h2.Observe(time.Second)
	if q := h2.Snapshot().Quantile(0.99); q != time.Millisecond {
		t.Errorf("overflow quantile = %v, want 1ms", q)
	}
	if (HistogramSnapshot{}).Quantile(0.5) != 0 {
		t.Error("empty snapshot quantile should be 0")
	}
}

// TestSnapshotRaceSafety hammers one registry from many goroutines while
// snapshotting; run under -race this is the snapshot-safety regression.
func TestSnapshotRaceSafety(t *testing.T) {
	m := New()
	const workers, iters = 4, 500
	var wg sync.WaitGroup
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m.Counter("renders").Inc()
				m.Gauge("depth").Set(int64(i))
				m.Histogram("latency").Observe(time.Duration(i%1000) * time.Microsecond)
				_, span := m.StartSpan(context.Background(), "op")
				span.Set("worker", "w")
				span.End()
			}
		}()
	}
	go func() { wg.Wait(); close(done) }()
	for {
		s := m.Snapshot()
		h := s.Histograms["latency"]
		var bucketed uint64
		for _, b := range h.Buckets {
			bucketed += b.Count
		}
		bucketed += h.Overflow
		if bucketed > h.Count+uint64(workers) {
			t.Fatalf("snapshot incoherent: %d bucketed vs %d counted", bucketed, h.Count)
		}
		m.Spans()
		select {
		case <-done:
			if got := m.Snapshot().Counters["renders"]; got != workers*iters {
				t.Errorf("counter = %d, want %d", got, workers*iters)
			}
			return
		default:
		}
	}
}

func TestSpanCorrelation(t *testing.T) {
	m := New()
	ctx, parent := m.StartSpan(context.Background(), "render")
	if parent.ID() == "" {
		t.Fatal("span has no correlation id")
	}
	if CorrelationID(ctx) != parent.ID() {
		t.Error("context does not carry the span's correlation id")
	}
	// A child span started under the same context reuses the id.
	_, child := m.StartSpan(ctx, "enforce")
	if child.ID() != parent.ID() {
		t.Errorf("child id %q != parent id %q", child.ID(), parent.ID())
	}
	parent.Set("decision", "allow")
	parent.Set("decision", "block") // last write wins
	parent.End()
	parent.End() // idempotent
	child.End()
	spans := m.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "render" || spans[0].Attr("decision") != "block" {
		t.Errorf("unexpected first span: %+v", spans[0])
	}
	if h := m.Snapshot().Histograms["span.render"]; h.Count != 1 {
		t.Errorf("span.render histogram count = %d, want 1", h.Count)
	}
	// An externally supplied correlation id is honoured.
	ext := WithCorrelationID(context.Background(), "req-42")
	_, s := m.StartSpan(ext, "render")
	if s.ID() != "req-42" {
		t.Errorf("external id not reused: %q", s.ID())
	}
}

func TestSpanRingBounded(t *testing.T) {
	m := New()
	for i := 0; i < spanRingSize+10; i++ {
		_, s := m.StartSpan(context.Background(), "op")
		s.End()
	}
	spans := m.Spans()
	if len(spans) != spanRingSize {
		t.Fatalf("ring returned %d spans, want %d", len(spans), spanRingSize)
	}
	// Oldest retained span is the 11th ever started.
	if want := fmt.Sprintf("c%08d", 11); spans[0].CorrelationID != want {
		t.Fatalf("oldest span id %q, want %q", spans[0].CorrelationID, want)
	}
}

func TestSnapshotJSONAndFlat(t *testing.T) {
	m := New()
	m.Counter("render.total").Add(3)
	m.Gauge("audit.depth").Set(9)
	m.Histogram("span.render").Observe(2 * time.Millisecond)

	var sb strings.Builder
	if err := m.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var round Snapshot
	if err := json.Unmarshal([]byte(sb.String()), &round); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if round.Counters["render.total"] != 3 || round.Gauges["audit.depth"] != 9 {
		t.Errorf("round-tripped snapshot wrong: %+v", round)
	}
	flat := m.Snapshot().Flat()
	if flat["render.total"] != uint64(3) {
		t.Errorf("flat counter = %v", flat["render.total"])
	}
	if _, ok := flat["span.render"].(map[string]any); !ok {
		t.Errorf("flat histogram should be a summary map, got %T", flat["span.render"])
	}
	fn := m.ExpvarFunc()
	if _, err := json.Marshal(fn()); err != nil {
		t.Errorf("expvar func value not marshalable: %v", err)
	}
}

func TestMetricsHandler(t *testing.T) {
	m := New()
	m.Counter("render.total").Inc()
	mux := DebugMux(func() Snapshot {
		s := m.Snapshot()
		s.Gauges["cache.entries"] = 5 // merged engine gauge
		return s
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var s Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["render.total"] != 1 || s.Gauges["cache.entries"] != 5 {
		t.Errorf("unexpected /metrics body: %+v", s)
	}

	pr, err := srv.Client().Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	pr.Body.Close()
	if pr.StatusCode != 200 {
		t.Errorf("/debug/pprof/cmdline status %d", pr.StatusCode)
	}
}
