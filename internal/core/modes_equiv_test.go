package core

import (
	"fmt"
	"testing"

	"plabi/internal/enforce"
	"plabi/internal/relation"
	"plabi/internal/report"
	"plabi/internal/workload"
)

// scenarioRun captures everything observable about one full scenario run:
// rendered tables, enforcement decisions, intervention counters, and the
// audit trail. The vectorized, row-at-a-time and compiled execution modes
// must produce identical runs — the acceptance bar for the batch kernel
// layer and for the residual-program compiler above it.
type scenarioRun struct {
	tables     map[string]string
	decisions  map[string][]string
	masked     map[string]int
	suppressed map[string]int
	auditKinds map[string]int
	etlTables  map[string]string
}

func runScenario(t *testing.T, mode relation.ExecMode) scenarioRun {
	return runScenarioWith(t, mode, nil)
}

// runScenarioWith is runScenario with an engine-configuration hook
// applied before the scenario ETL runs (the segment-backed equivalence
// test uses it to reroute staging tables through a spill store).
func runScenarioWith(t *testing.T, mode relation.ExecMode, configure func(*Engine)) scenarioRun {
	t.Helper()
	prev := relation.SetExecMode(mode)
	defer relation.SetExecMode(prev)

	e, _, err := BuildHealthcareEngineWith(workload.DefaultConfig(7), configure)
	if err != nil {
		t.Fatalf("mode %v: build: %v", mode, err)
	}
	run := scenarioRun{
		tables:     map[string]string{},
		decisions:  map[string][]string{},
		masked:     map[string]int{},
		suppressed: map[string]int{},
		auditKinds: map[string]int{},
		etlTables:  map[string]string{},
	}
	for _, name := range []string{"rx_cost", "rx_wide", "familydoctor_resolved"} {
		tab, ok := e.Table(name)
		if !ok {
			t.Fatalf("mode %v: warehouse table %s missing", mode, name)
		}
		run.etlTables[name] = tab.String()
	}
	consumers := []report.Consumer{
		{Name: "alice", Role: "analyst", Purpose: "quality"},
		{Name: "audrey", Role: "auditor", Purpose: "quality"},
		{Name: "rob", Role: "analyst", Purpose: "reimbursement"},
	}
	for _, d := range StandardReports() {
		for _, c := range consumers {
			key := d.ID + "/" + c.Role + "/" + c.Purpose
			// Render every triple twice: in compiled mode the first render
			// folds the result and the second replays the fold, so the
			// equivalence bar covers both the cold and the replay path.
			for pass := 0; pass < 2; pass++ {
				enf, err := e.Render(d.ID, c)
				if err != nil {
					run.tables[key] = "ERR: " + err.Error()
					continue
				}
				run.tables[key] = enf.Table.String()
				run.masked[key] = enf.MaskedCells
				run.suppressed[key] = enf.SuppressedRows
				for _, dec := range enf.Decisions {
					run.decisions[key] = append(run.decisions[key],
						fmt.Sprintf("%v|%s|%s|%s", dec.Outcome, dec.Rule, dec.Subject, dec.Detail))
				}
				_ = enforce.Blocked(enf.Decisions)
			}
		}
	}
	for _, ev := range e.Audit.Events() {
		run.auditKinds[ev.Kind]++
	}
	return run
}

// compareRuns requires two scenario runs to be byte-identical: tables,
// decision streams, intervention counters and audit event counts.
func compareRuns(t *testing.T, aName, bName string, a, b scenarioRun) {
	t.Helper()
	for name, as := range a.etlTables {
		if bs := b.etlTables[name]; as != bs {
			t.Errorf("ETL table %s diverged between modes:\n%s:\n%s\n%s:\n%s", name, aName, as, bName, bs)
		}
	}
	for key, as := range a.tables {
		if bs, ok := b.tables[key]; !ok || as != bs {
			t.Errorf("report %s diverged between modes:\n%s:\n%s\n%s:\n%s", key, aName, as, bName, b.tables[key])
		}
	}
	if len(a.tables) != len(b.tables) {
		t.Errorf("rendered report sets differ: %d (%s) vs %d (%s)", len(a.tables), aName, len(b.tables), bName)
	}
	for key := range a.tables {
		if a.masked[key] != b.masked[key] {
			t.Errorf("%s: masked cells %d (%s) vs %d (%s)", key, a.masked[key], aName, b.masked[key], bName)
		}
		if a.suppressed[key] != b.suppressed[key] {
			t.Errorf("%s: suppressed rows %d (%s) vs %d (%s)", key, a.suppressed[key], aName, b.suppressed[key], bName)
		}
		ad, bd := a.decisions[key], b.decisions[key]
		if len(ad) != len(bd) {
			t.Errorf("%s: decision count %d (%s) vs %d (%s)", key, len(ad), aName, len(bd), bName)
			continue
		}
		for i := range ad {
			if ad[i] != bd[i] {
				t.Errorf("%s: decision %d diverged:\n  %s: %s\n  %s: %s", key, i, aName, ad[i], bName, bd[i])
			}
		}
	}
	for kind, n := range a.auditKinds {
		if b.auditKinds[kind] != n {
			t.Errorf("audit events %q: %d (%s) vs %d (%s)", kind, n, aName, b.auditKinds[kind], bName)
		}
	}
}

// TestScenarioModeEquivalence runs the complete healthcare scenario —
// synthetic workload, guarded ETL with entity resolution, every standard
// report for three consumers, each rendered twice — under all three
// execution modes and requires byte-identical tables, identical decision
// streams, identical mask/suppression counters and identical audit event
// counts. The vectorized run is the pivot: row-at-a-time is the seed
// reference, compiled is the residual-program fold/replay path.
func TestScenarioModeEquivalence(t *testing.T) {
	vec := runScenario(t, relation.ExecVectorized)
	row := runScenario(t, relation.ExecRowAtATime)
	compiled := runScenario(t, relation.ExecCompiled)

	compareRuns(t, "vectorized", "row", vec, row)
	compareRuns(t, "vectorized", "compiled", vec, compiled)
}

// TestSegmentModeEquivalence is the storage-mode analogue: the complete
// scenario with every ETL staging table spilled to on-disk columnar
// segments (tiny partitions, so reports cross many partition boundaries)
// must be byte-identical — tables, decisions, counters, audit kinds — to
// the fully in-memory run, at every execution mode. The in-memory run is
// the semantic oracle for the out-of-core storage layer.
func TestSegmentModeEquivalence(t *testing.T) {
	modes := []struct {
		name string
		m    relation.ExecMode
	}{
		{"row", relation.ExecRowAtATime},
		{"vectorized", relation.ExecVectorized},
		{"compiled", relation.ExecCompiled},
	}
	for _, mode := range modes {
		mem := runScenario(t, mode.m)
		seg := runScenarioWith(t, mode.m, func(e *Engine) {
			s := e.SetSegmentStore(t.TempDir())
			s.SetPartitionRows(16)
			e.SetSpillThreshold(1) // spill every staging table
		})
		compareRuns(t, mode.name+"/in-memory", mode.name+"/segment", mem, seg)
	}
}
