package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// EnableSpec enables sites from a compact textual schedule, the format
// the bidemo -chaos flag accepts:
//
//	site:kind:rate[:arg][,site:kind:rate[:arg]...]
//
// kind is one of error (arg "transient" marks it retryable), panic, or
// latency (arg is the delay, e.g. 1ms). Entries for the same site merge
// into one SiteConfig. Example:
//
//	etl.step:error:0.05,audit.sink.write:error:0.3:transient,render.worker:panic:0.01
func (i *Injector) EnableSpec(spec string) error {
	cfgs := map[string]SiteConfig{}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		if len(parts) < 3 || len(parts) > 4 {
			return fmt.Errorf("fault: bad spec entry %q (want site:kind:rate[:arg])", entry)
		}
		site, kind := parts[0], parts[1]
		rate, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || rate < 0 || rate > 1 {
			return fmt.Errorf("fault: bad rate in spec entry %q", entry)
		}
		cfg := cfgs[site]
		switch kind {
		case "error":
			cfg.ErrorRate = rate
			if len(parts) == 4 {
				if parts[3] != "transient" {
					return fmt.Errorf("fault: bad error arg in spec entry %q (want transient)", entry)
				}
				cfg.Transient = true
			}
		case "panic":
			cfg.PanicRate = rate
		case "latency":
			cfg.LatencyRate = rate
			cfg.Latency = time.Millisecond
			if len(parts) == 4 {
				d, derr := time.ParseDuration(parts[3])
				if derr != nil {
					return fmt.Errorf("fault: bad latency in spec entry %q: %v", entry, derr)
				}
				cfg.Latency = d
			}
		default:
			return fmt.Errorf("fault: unknown kind %q in spec entry %q", kind, entry)
		}
		cfgs[site] = cfg
	}
	for site, cfg := range cfgs {
		i.Enable(site, cfg)
	}
	return nil
}
