package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Row is one tuple of a relation.
type Row []Value

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	c := make(Row, len(r))
	copy(c, r)
	return c
}

// RowRef identifies a row of a named base table. Base rows are the units of
// row-level lineage (Cui–Widom style): every derived row carries the set of
// base rows that contributed to it.
type RowRef struct {
	Table string
	Row   int
}

// String renders the reference as "table#row".
func (r RowRef) String() string { return fmt.Sprintf("%s#%d", r.Table, r.Row) }

// LineageSet is a set of base-row references, kept sorted and deduplicated.
type LineageSet []RowRef

// mergeLineage unions two sorted LineageSets.
func mergeLineage(a, b LineageSet) LineageSet {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make(LineageSet, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch cmpRef(a[i], b[j]) {
		case -1:
			out = append(out, a[i])
			i++
		case 1:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func cmpRef(a, b RowRef) int {
	if a.Table != b.Table {
		if a.Table < b.Table {
			return -1
		}
		return 1
	}
	switch {
	case a.Row < b.Row:
		return -1
	case a.Row > b.Row:
		return 1
	default:
		return 0
	}
}

// normalize sorts and deduplicates the set in place, returning it.
func (l LineageSet) normalize() LineageSet {
	sort.Slice(l, func(i, j int) bool { return cmpRef(l[i], l[j]) < 0 })
	out := l[:0]
	for i, r := range l {
		if i == 0 || cmpRef(r, out[len(out)-1]) != 0 {
			out = append(out, r)
		}
	}
	return out
}

// Contains reports whether the set contains ref.
func (l LineageSet) Contains(ref RowRef) bool {
	i := sort.Search(len(l), func(i int) bool { return cmpRef(l[i], ref) >= 0 })
	return i < len(l) && l[i] == ref
}

// ColRef identifies a column of a named base table; the unit of
// column-level where-provenance.
type ColRef struct {
	Table  string
	Column string
}

// String renders the reference as "table.column".
func (c ColRef) String() string { return c.Table + "." + c.Column }

// ColRefSet is a set of column references, kept sorted and deduplicated.
type ColRefSet []ColRef

func cmpColRef(a, b ColRef) int {
	if a.Table != b.Table {
		if a.Table < b.Table {
			return -1
		}
		return 1
	}
	switch {
	case a.Column < b.Column:
		return -1
	case a.Column > b.Column:
		return 1
	default:
		return 0
	}
}

func (c ColRefSet) normalize() ColRefSet {
	sort.Slice(c, func(i, j int) bool { return cmpColRef(c[i], c[j]) < 0 })
	out := c[:0]
	for i, r := range c {
		if i == 0 || cmpColRef(r, out[len(out)-1]) != 0 {
			out = append(out, r)
		}
	}
	return out
}

// Contains reports whether the set contains ref.
func (c ColRefSet) Contains(ref ColRef) bool {
	i := sort.Search(len(c), func(i int) bool { return cmpColRef(c[i], ref) >= 0 })
	return i < len(c) && c[i] == ref
}

// Normalize sorts and deduplicates the set in place, returning it.
func (c ColRefSet) Normalize() ColRefSet { return c.normalize() }

// Union returns the union of two ColRefSets.
func (c ColRefSet) Union(o ColRefSet) ColRefSet {
	out := make(ColRefSet, 0, len(c)+len(o))
	out = append(out, c...)
	out = append(out, o...)
	return out.normalize()
}

// Table is an in-memory relation with provenance. A Table is *base* when
// Base is true: its rows are the units of lineage and its columns the units
// of where-provenance. Derived tables carry explicit Lineage (one set per
// row) and ColOrigin (one set per column).
type Table struct {
	Name   string
	Schema *Schema
	Rows   []Row

	// Base marks the table as a provenance origin.
	Base bool

	// Lineage holds, for each row, the set of base rows it derives from.
	// For base tables it is nil and computed on demand.
	Lineage []LineageSet

	// ColOrigin holds, for each column, the set of base (table, column)
	// pairs it derives from. For base tables it is nil.
	ColOrigin []ColRefSet

	// seg, when non-nil, backs the table with on-disk columnar segments
	// instead of Rows (see segtable.go). Rows is empty in that case.
	seg *segBacking
}

// NewBase creates an empty base table with the given name and schema.
func NewBase(name string, schema *Schema) *Table {
	return &Table{Name: name, Schema: schema, Base: true}
}

// Append adds a row to the table, validating arity. For derived tables the
// caller must maintain Lineage alongside; Append is intended for base
// tables and simple construction.
func (t *Table) Append(r Row) error {
	if t.seg != nil {
		return fmt.Errorf("relation: cannot append to segment-backed table %s", t.Name)
	}
	if len(r) != t.Schema.Len() {
		return fmt.Errorf("relation: row arity %d does not match schema %s", len(r), t.Schema)
	}
	t.Rows = append(t.Rows, r)
	return nil
}

// AppendVals is variadic Append, returning the arity error instead of
// panicking so generators on user-input paths can propagate it. Fixtures
// with statically known arity may discard the result.
func (t *Table) AppendVals(vals ...Value) error {
	return t.Append(Row(vals))
}

// NumRows returns the number of rows.
func (t *Table) NumRows() int {
	if t.seg != nil {
		return t.seg.rows
	}
	return len(t.Rows)
}

// RowLineage returns the lineage set of row i. For base tables this is the
// singleton {t#i}.
func (t *Table) RowLineage(i int) LineageSet {
	if t.Base || t.Lineage == nil {
		if !t.Base && t.seg != nil {
			// A renamed segment-backed table keeps lineage implicit:
			// row i derives from {origin#i}, the name it was written under.
			return LineageSet{{Table: t.seg.origin, Row: i}}
		}
		return LineageSet{{Table: t.Name, Row: i}}
	}
	return t.Lineage[i]
}

// ColumnOrigin returns the where-provenance of column c. For base tables
// this is the singleton {t.col}.
func (t *Table) ColumnOrigin(c int) ColRefSet {
	if t.Base || t.ColOrigin == nil {
		return ColRefSet{{Table: t.Name, Column: baseName(t.Schema.Columns[c].Name)}}
	}
	return t.ColOrigin[c]
}

// AllColumnOrigins returns the union of the origins of every column.
func (t *Table) AllColumnOrigins() ColRefSet {
	var all ColRefSet
	for c := range t.Schema.Columns {
		all = append(all, t.ColumnOrigin(c)...)
	}
	return all.normalize()
}

// BaseTables returns the sorted set of base table names this table derives
// from (via column origins).
func (t *Table) BaseTables() []string {
	seen := map[string]bool{}
	for _, r := range t.AllColumnOrigins() {
		seen[r.Table] = true
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Clone returns a deep copy of the table (rows, lineage and origins).
func (t *Table) Clone() *Table {
	c := &Table{Name: t.Name, Schema: t.Schema.Clone(), Base: t.Base}
	c.Rows = make([]Row, len(t.Rows))
	for i, r := range t.Rows {
		c.Rows[i] = r.Clone()
	}
	if t.Lineage != nil {
		c.Lineage = make([]LineageSet, len(t.Lineage))
		for i, l := range t.Lineage {
			c.Lineage[i] = append(LineageSet(nil), l...)
		}
	}
	if t.ColOrigin != nil {
		c.ColOrigin = make([]ColRefSet, len(t.ColOrigin))
		for i, o := range t.ColOrigin {
			c.ColOrigin[i] = append(ColRefSet(nil), o...)
		}
	}
	// The segment backing is immutable; clones share it (and its cache).
	c.seg = t.seg
	return c
}

// derived builds a derived-table shell from t, preserving column origins by
// default (operators override as needed).
func (t *Table) derived(name string) *Table {
	d := &Table{Name: name, Schema: t.Schema.Clone()}
	d.ColOrigin = make([]ColRefSet, t.Schema.Len())
	for c := range d.ColOrigin {
		d.ColOrigin[c] = t.ColumnOrigin(c)
	}
	return d
}

// Get returns the value at (row, col name). It returns NULL for unknown
// columns, which keeps report rendering total.
func (t *Table) Get(row int, col string) Value {
	i := t.Schema.Index(col)
	if i < 0 || row < 0 || row >= t.NumRows() {
		return Null()
	}
	if t.seg != nil {
		v, err := t.ValueAt(row, i)
		if err != nil {
			return Null()
		}
		return v
	}
	return t.Rows[row][i]
}

// String renders the table as an aligned text grid (used by reports, the
// CLI tools and tests).
func (t *Table) String() string {
	if t.seg != nil {
		t = t.mustMaterialize()
	}
	names := t.Schema.ColumnNames()
	widths := make([]int, len(names))
	for i, n := range names {
		widths[i] = len(n)
	}
	cells := make([][]string, len(t.Rows))
	for r, row := range t.Rows {
		cells[r] = make([]string, len(row))
		for c, v := range row {
			s := v.String()
			cells[r][c] = s
			if len(s) > widths[c] {
				widths[c] = len(s)
			}
		}
	}
	var b strings.Builder
	writeRow := func(vals []string) {
		for c, v := range vals {
			if c > 0 {
				b.WriteString("  ")
			}
			b.WriteString(v)
			b.WriteString(strings.Repeat(" ", widths[c]-len(v)))
		}
		b.WriteByte('\n')
	}
	writeRow(names)
	sep := make([]string, len(names))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range cells {
		writeRow(row)
	}
	return b.String()
}
