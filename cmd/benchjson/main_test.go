package main

import (
	"strconv"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: plabi
BenchmarkCoreJoin/n=1000/mode=vectorized-8         	    2000	    500000 ns/op	  100000 B/op	      50 allocs/op
BenchmarkCoreJoin/n=1000/mode=row-8                	    1000	   1000000 ns/op	  200000 B/op	    3000 allocs/op
BenchmarkCoreJoin/n=100000/mode=vectorized-8       	      20	  58000000 ns/op	68000000 B/op	      75 allocs/op
BenchmarkCoreJoin/n=100000/mode=row-8              	      15	  80000000 ns/op	95000000 B/op	  300000 allocs/op
BenchmarkCoreJoinNested/n=100000-8                 	       1	1700000000 ns/op	900000000 B/op	 2600000 allocs/op
BenchmarkCoreRender/n=100000/mode=vectorized-8     	      40	  27000000 ns/op	17000000 B/op	    1000 allocs/op
BenchmarkCoreRender/n=100000/mode=row-8            	       7	 160000000 ns/op	54000000 B/op	  420000 allocs/op
BenchmarkCoreRenderCompiled/n=100000/mode=compiled-8	     200	   6000000 ns/op	 9000000 B/op	     400 allocs/op
PASS
ok  	plabi	42.000s
`

func TestParse(t *testing.T) {
	bs, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 8 {
		t.Fatalf("parsed %d benchmarks, want 8", len(bs))
	}
	b := bs[2]
	if b.Family != "Join" || b.N != 100000 || b.Mode != "vectorized" {
		t.Fatalf("unexpected parse: %+v", b)
	}
	if b.NsPerOp != 58000000 || b.BytesPerOp != 68000000 || b.AllocsPerOp != 75 {
		t.Fatalf("unexpected metrics: %+v", b)
	}
	nested := bs[4]
	if nested.Family != "JoinNested" || nested.Mode != "" || nested.N != 100000 {
		t.Fatalf("unexpected nested parse: %+v", nested)
	}
	compiled := bs[7]
	if compiled.Family != "RenderCompiled" || compiled.Mode != "compiled" || compiled.N != 100000 {
		t.Fatalf("unexpected compiled parse: %+v", compiled)
	}
}

func TestSpeedups(t *testing.T) {
	bs, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	sp := speedups(bs)
	want := map[string]float64{
		"Join/1000/row":                    2.0,
		"Join/100000/row":                  80.0 / 58.0,
		"Join/100000/nested":               1700.0 / 58.0,
		"Render/100000/row":                160.0 / 27.0,
		"RenderCompiled/100000/vectorized": 27.0 / 6.0,
	}
	if len(sp) != len(want) {
		t.Fatalf("got %d speedups, want %d: %+v", len(sp), len(want), sp)
	}
	for _, s := range sp {
		k := s.Family + "/" + strconv.Itoa(s.N) + "/" + s.Baseline
		w, ok := want[k]
		if !ok {
			t.Fatalf("unexpected speedup entry %q", k)
		}
		if diff := s.Speedup - w; diff > 0.01 || diff < -0.01 {
			t.Fatalf("%s: speedup %.3f, want %.3f", k, s.Speedup, w)
		}
	}
}

const scaleSample = `goos: linux
goarch: amd64
pkg: plabi
BenchmarkCoreRenderSegment/n=1000000/storage=memory-8    	       2	  14563081 ns/op	 330417224 peak_alloc_bytes	 9923556 B/op	    1140 allocs/op
BenchmarkCoreRenderSegment/n=1000000/storage=segment-8   	       2	 196491918 ns/op	 135251896 peak_alloc_bytes	139051040 B/op	  164099 allocs/op
BenchmarkCoreJoinSegment/n=1000000/storage=memory-8      	       2	  38674844 ns/op	35835064 B/op	      57 allocs/op
BenchmarkCoreJoinSegment/n=1000000/storage=segment-8     	       2	  61024490 ns/op	87001888 B/op	    5203 allocs/op
BenchmarkCoreScanPruned/n=1000000-8                      	       2	   8109238 ns/op	         0.7500 pruned_frac	        48.00 pruned_segments	        64.00 segments_total	14018960 B/op	   21879 allocs/op
PASS
ok  	plabi	42.000s
`

func TestParseCustomMetrics(t *testing.T) {
	bs, err := parse(strings.NewReader(scaleSample))
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 5 {
		t.Fatalf("parsed %d benchmarks, want 5", len(bs))
	}
	seg := bs[1]
	if seg.Family != "RenderSegment" || seg.Storage != "segment" || seg.N != 1000000 {
		t.Fatalf("unexpected parse: %+v", seg)
	}
	// Custom metrics sit between ns/op and the -benchmem columns; both
	// sides must survive the interleaving.
	if seg.Metrics["peak_alloc_bytes"] != 135251896 {
		t.Fatalf("peak_alloc_bytes = %v", seg.Metrics["peak_alloc_bytes"])
	}
	if seg.BytesPerOp != 139051040 || seg.AllocsPerOp != 164099 {
		t.Fatalf("benchmem columns lost around custom metrics: %+v", seg)
	}
	pruned := bs[4]
	if pruned.Metrics["pruned_frac"] != 0.75 || pruned.Metrics["segments_total"] != 64 {
		t.Fatalf("pruned metrics: %+v", pruned.Metrics)
	}
}

func TestScaleSummaryAndCheck(t *testing.T) {
	bs, err := parse(strings.NewReader(scaleSample))
	if err != nil {
		t.Fatal(err)
	}
	sp := speedups(bs)
	var storageRatios int
	for _, s := range sp {
		if s.Baseline == "memory" {
			storageRatios++
		}
	}
	if storageRatios != 2 {
		t.Fatalf("got %d segment-vs-memory ratios, want 2: %+v", storageRatios, sp)
	}
	row := scaleSummary(bs)
	if row == nil || row.N != 1000000 {
		t.Fatalf("scale summary: %+v", row)
	}
	if row.SegmentNs != 196491918 || row.MemoryNs != 14563081 {
		t.Fatalf("render times: %+v", row)
	}
	if row.PruneFraction != 0.75 || row.PrunedSegments != 48 || row.SegmentsTotal != 64 {
		t.Fatalf("pruning: %+v", row)
	}
	if row.PeakAllocBytes != 135251896 || row.MemoryPeakAllocBytes != 330417224 {
		t.Fatalf("peaks: %+v", row)
	}
	if err := checkScale(row, 0.5); err != nil {
		t.Fatalf("0.5 floor should hold: %v", err)
	}
	if err := checkScale(row, 0.8); err == nil {
		t.Fatal("0.8 floor should fail on the sample")
	}
	if err := checkScale(nil, 0.5); err == nil {
		t.Fatal("missing scale benchmarks should fail the check")
	}
	if core := scaleSummary(nil); core != nil {
		t.Fatalf("no scale families should yield nil, got %+v", core)
	}
}

func TestCheck(t *testing.T) {
	bs, _ := parse(strings.NewReader(sample))
	sp := speedups(bs)
	if err := check(sp, 5.0, 1.5); err != nil {
		t.Fatalf("floors should hold on sample: %v", err)
	}
	if err := check(sp, 50.0, 1.5); err == nil {
		t.Fatal("a 50x floor should fail on the sample")
	}
	if err := check(sp, 5.0, 10.0); err == nil {
		t.Fatal("a 10x compiled floor should fail on the sample")
	}
	if err := check(nil, 5.0, 1.5); err == nil {
		t.Fatal("missing measurements should fail the check")
	}
}
