package lint

import (
	"fmt"

	"plabi/internal/policy"
	"plabi/internal/relation"
)

// conditions (PL007) finds intensional conditions the rewrite layer can
// never evaluate: a "when" or "filter" expression referencing a column
// that does not exist in the rows the condition is checked against. The
// runtime treats rows where a condition is inapplicable as unconstrained
// — an unenforceable condition silently degrades an allow-when into an
// unconditional allow, the worst possible failure mode for a privacy
// rule.
type conditions struct{}

func init() { Register(conditions{}) }

func (conditions) Code() string { return "PL007" }
func (conditions) Name() string { return "unenforceable-conditions" }
func (conditions) Doc() string {
	return "Intensional conditions referencing columns invisible to the enforcement " +
		"layer: the condition is silently skipped and the rule holds unconditionally."
}

func (conditions) Run(p *Pass) []Finding {
	if p.Catalog == nil {
		return nil
	}
	var out []Finding
	for _, pla := range p.PLAs {
		switch pla.Level {
		case policy.LevelSource, policy.LevelWarehouse:
			cols, ok := p.relationColumns(pla.Scope)
			if !ok {
				continue // PL003 reports the dangling scope
			}
			visible := func(c string) bool { return cols[c] }
			out = append(out, checkConditions(pla, visible, "table "+pla.Scope)...)
		case policy.LevelReport:
			def := p.reportByID(pla.Scope)
			if def == nil {
				continue
			}
			prof := p.profile(def)
			if prof == nil {
				continue
			}
			// Report-level conditions are evaluated against the source
			// rows supporting each value; any base column of the report
			// is visible.
			base := map[string]bool{}
			for _, t := range prof.BaseTables {
				if cols, ok := p.relationColumns(t); ok {
					for c := range cols {
						base[c] = true
					}
				}
			}
			visible := func(c string) bool { return base[c] }
			out = append(out, checkConditions(pla, visible, fmt.Sprintf("the sources of report %q", def.ID))...)
		}
	}
	return out
}

func checkConditions(pla *policy.PLA, visible func(string) bool, where string) []Finding {
	var out []Finding
	for _, r := range pla.Access {
		if r.When != nil {
			out = append(out, checkExpr(pla, r.Pos, r.When, visible, where,
				fmt.Sprintf("condition on the %s rule for attribute %q", r.Effect, r.Attribute))...)
		}
	}
	for _, f := range pla.Filters {
		out = append(out, checkExpr(pla, f.Pos, f.When, visible, where, "row filter")...)
	}
	return out
}

func checkExpr(pla *policy.PLA, pos policy.Pos, e relation.Expr, visible func(string) bool, where, what string) []Finding {
	var out []Finding
	for _, col := range conditionColumns(e) {
		if visible(col) {
			continue
		}
		out = append(out, Finding{
			Code: "PL007", Severity: SevError, Level: pla.Level, Pos: pos,
			Subject: pla.ID + "/" + col,
			Message: fmt.Sprintf("%s in PLA %q references column %q, which is not visible in %s: the enforcement layer cannot evaluate it and silently treats the condition as satisfied",
				what, pla.ID, col, where),
			PLAs: []string{pla.ID},
		})
	}
	return out
}
