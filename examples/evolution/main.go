// Evolution: the paper's Fig. 5 story in code — meta-reports absorb
// report churn. A new report over already-approved attributes needs no
// new agreement with the source owners; one that escapes the approved
// scope is flagged, the metas are re-derived, and elicitation restarts
// only then. The example ends with the measured continuum.
package main

import (
	"fmt"
	"log"

	"plabi/internal/elicit"
	"plabi/internal/metareport"
	"plabi/internal/report"
)

func main() {
	s, err := elicit.BuildHealthcareScenario(42, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial portfolio: %d reports, covered by %d approved meta-report(s)\n\n",
		len(s.Reports.All()), len(s.Metas))
	for _, m := range s.Metas {
		fmt.Printf("meta-report %s:\n  %s\n\n", m.ID, m.Query)
	}

	// A NEW report within the approved scope: derivable, no re-elicitation.
	covered := &report.Definition{ID: "hiv-free-consumption",
		Query: "SELECT drug, COUNT(*) AS n FROM dwh WHERE disease <> 'HIV' GROUP BY drug"}
	if err := s.Reports.Create(covered); err != nil {
		log.Fatal(err)
	}
	m, _, err := metareport.CoveringMeta(s.Cat, covered, s.Metas)
	if err != nil {
		log.Fatal(err)
	}
	if m != nil {
		fmt.Printf("new report %q: derivable from %s -> PLAs carry over, no owner interaction\n",
			covered.ID, m.ID)
	}

	// A report needing a column outside the approved metas: flagged.
	outside := &report.Definition{ID: "zip-profile",
		Query: "SELECT zip, COUNT(*) AS n FROM dwh GROUP BY zip"}
	if err := s.Reports.Create(outside); err != nil {
		log.Fatal(err)
	}
	m2, cont, err := metareport.CoveringMeta(s.Cat, outside, s.Metas)
	if err != nil {
		log.Fatal(err)
	}
	if m2 == nil {
		fmt.Printf("new report %q: NOT derivable (%v) -> re-elicitation required\n\n",
			outside.ID, cont.Reasons)
	}

	// The quantitative continuum: 200 seeded evolution events.
	costs, err := elicit.MeasureCosts(s)
	if err != nil {
		log.Fatal(err)
	}
	stab, err := elicit.SimulateEvolution(s, 200, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-11s %-8s %-10s %s\n", "level", "ease", "stability", "re-elicitations/200")
	for i, c := range costs {
		fmt.Printf("%-11s %-8.4f %-10.3f %d\n", c.Level, c.Ease, stab[i].Stability, stab[i].Reelicitations)
	}
	fmt.Println("\nFig. 5 reproduced: ease grows and stability shrinks toward the reports;")
	fmt.Println("meta-reports combine near-report ease with near-warehouse stability.")
}
