package apiv1

import (
	"fmt"
	"net/http"
)

// ErrorCode is a stable machine-readable failure class. Codes are
// append-only within /v1; clients dispatch on them, never on message
// text. Each code maps to exactly one HTTP status (HTTPStatus).
type ErrorCode string

// The /v1 error codes.
const (
	// CodeBadRequest: the request body or parameters failed to parse or
	// validate. HTTP 400.
	CodeBadRequest ErrorCode = "bad_request"
	// CodeUnauthorized: missing or invalid bearer token. HTTP 401.
	CodeUnauthorized ErrorCode = "unauthorized"
	// CodeUnknownTenant: the path names a tenant that does not exist or
	// that the presented token is not mapped to (the two cases are
	// deliberately indistinguishable, so tokens cannot probe for other
	// tenants). HTTP 404.
	CodeUnknownTenant ErrorCode = "unknown_tenant"
	// CodeUnknownReport: the report id is not registered for the tenant
	// (the engine's ErrUnknownReport). HTTP 404.
	CodeUnknownReport ErrorCode = "unknown_report"
	// CodeBlocked: PLA enforcement refused the operation (the engine's
	// BlockedError / ErrPLAViolation); Error.Decisions carries the
	// blocking decisions. HTTP 403.
	CodeBlocked ErrorCode = "pla_blocked"
	// CodeAuditUnavailable: a fail-closed tenant could not write the
	// audit trail, so the data was not released (the engine's
	// ErrAuditUnavailable). HTTP 503.
	CodeAuditUnavailable ErrorCode = "audit_unavailable"
	// CodeRateLimited: the tenant's token bucket is empty; retry after
	// the Retry-After header. HTTP 429.
	CodeRateLimited ErrorCode = "rate_limited"
	// CodeInternal: an unexpected server-side failure. HTTP 500.
	CodeInternal ErrorCode = "internal"
	// CodeReloadRejected: the admin reload was refused by the policy-
	// change gate — the staged manifest contains error-severity privilege
	// expansions and neither allow_expansion nor ?force=1 was set.
	// Error.Impacts carries the expansion findings. HTTP 409.
	CodeReloadRejected ErrorCode = "reload_rejected"
)

// HTTPStatus returns the HTTP status a code is served with. Unknown
// codes (a newer server talking to an older client copy of this
// package) map to 500.
func (c ErrorCode) HTTPStatus() int {
	switch c {
	case CodeBadRequest:
		return http.StatusBadRequest
	case CodeUnauthorized:
		return http.StatusUnauthorized
	case CodeUnknownTenant, CodeUnknownReport:
		return http.StatusNotFound
	case CodeBlocked:
		return http.StatusForbidden
	case CodeAuditUnavailable:
		return http.StatusServiceUnavailable
	case CodeRateLimited:
		return http.StatusTooManyRequests
	case CodeReloadRejected:
		return http.StatusConflict
	default:
		return http.StatusInternalServerError
	}
}

// Error is the typed failure document every non-2xx /v1 response
// carries, wrapped in ErrorEnvelope. It implements error, so the client
// returns it directly and callers dispatch on Code.
type Error struct {
	Code    ErrorCode `json:"code"`
	Message string    `json:"message"`
	// CorrelationID joins the failure with the server-side audit events
	// and spans of the request that produced it.
	CorrelationID string `json:"correlation_id,omitempty"`
	// Decisions carries the blocking enforcement decisions for
	// CodeBlocked responses.
	Decisions []Decision `json:"decisions,omitempty"`
	// Impacts carries the privilege-expansion findings for
	// CodeReloadRejected responses (pladiff PD codes).
	Impacts []LintFinding `json:"impacts,omitempty"`
	// HTTP is the transport status the error arrived with; set by the
	// client, never serialized.
	HTTP int `json:"-"`
}

// Error implements error.
func (e *Error) Error() string {
	if e.CorrelationID != "" {
		return fmt.Sprintf("plabid: %s: %s [%s]", e.Code, e.Message, e.CorrelationID)
	}
	return fmt.Sprintf("plabid: %s: %s", e.Code, e.Message)
}

// ErrorEnvelope is the body of every non-2xx /v1 response.
type ErrorEnvelope struct {
	Error *Error `json:"error"`
}
