package relation

// segtable.go ties segment files (segment.go, segstore.go) into the
// Table API. A segment-backed Table keeps Rows empty and carries a
// *segBacking describing its partitions; operators either stream it
// partition by partition (Select, GroupBy, Join, via the scanner here)
// or materialize it first (everything else — see Materialize).
//
// Lineage stays implicit: a segment-backed base table's row i has
// lineage {origin#i} exactly like an in-memory base table, so renames
// and partition sub-tables reconstruct lineage positionally instead of
// materializing one LineageSet per row.

import (
	"runtime"
	"sort"
	"sync"
)

// segPart is one on-disk partition: a contiguous row range of the table
// with per-column zone maps consulted before decode.
type segPart struct {
	path  string
	index int
	start int
	rows  int
	zones []colZone
}

// segBacking is the out-of-core state of a segment-backed Table. It is
// immutable after construction and safely shared between clones and
// renames; only the cache mutates, under its own lock.
type segBacking struct {
	store *SegmentStore
	// origin is the lineage origin: the name the table was written
	// under. Renames keep it, exactly as in-memory Rename materializes
	// lineage pointing at the pre-rename name.
	origin string
	parts  []segPart
	rows   int
	cache  *segCache
}

// segCache holds decoded rows shared by every view of one backing: the
// full materialization (built at most once) and the most recently
// decoded single partition for point accesses.
type segCache struct {
	mu       sync.Mutex
	all      []Row
	lastPart int
	lastRows []Row
}

// Materialize returns an in-memory view of the table: t itself when it
// already holds its rows, otherwise a shallow copy with every partition
// decoded (cached on the shared backing, so repeated calls read disk
// once). Derived tables without explicit lineage get it materialized
// positionally, matching what the in-memory operators would have built.
func (t *Table) Materialize() (*Table, error) {
	if t.seg == nil {
		return t, nil
	}
	rows, err := t.seg.materialize()
	if err != nil {
		return nil, err
	}
	c := *t
	c.Rows = rows
	c.seg = nil
	if !c.Base && c.Lineage == nil {
		refs := make([]RowRef, len(rows))
		lin := make([]LineageSet, len(rows))
		for i := range rows {
			refs[i] = RowRef{Table: t.seg.origin, Row: i}
			lin[i] = LineageSet(refs[i : i+1 : i+1])
		}
		c.Lineage = lin
	}
	return &c, nil
}

// mustMaterialize is Materialize for operators without an error return
// (Distinct, Limit, String). The SQL executor never routes a
// segment-backed table into those — projections and aggregations run
// first — so a failure here means direct library misuse over a broken
// store, and failing loudly beats returning fabricated rows.
func (t *Table) mustMaterialize() *Table {
	mt, err := t.Materialize()
	if err != nil {
		panic("relation: cannot materialize segment-backed table " + t.Name + ": " + err.Error())
	}
	return mt
}

// ValueAt returns the value at (row, column index), decoding at most one
// partition and caching it for sequential access patterns. Out-of-range
// coordinates yield NULL, like Get.
func (t *Table) ValueAt(row, ci int) (Value, error) {
	if t.seg != nil {
		return t.seg.valueAt(row, ci)
	}
	if row < 0 || row >= len(t.Rows) || ci < 0 || ci >= len(t.Rows[row]) {
		return Null(), nil
	}
	return t.Rows[row][ci], nil
}

func (b *segBacking) materialize() ([]Row, error) {
	b.cache.mu.Lock()
	defer b.cache.mu.Unlock()
	if b.cache.all != nil {
		return b.cache.all, nil
	}
	rows := make([]Row, 0, b.rows)
	for pi := range b.parts {
		rs, err := b.store.readPartition(&b.parts[pi])
		if err != nil {
			return nil, err
		}
		rows = append(rows, rs...)
	}
	b.cache.all = rows
	return rows, nil
}

func (b *segBacking) valueAt(row, ci int) (Value, error) {
	if row < 0 || row >= b.rows || ci < 0 {
		return Null(), nil
	}
	b.cache.mu.Lock()
	defer b.cache.mu.Unlock()
	if b.cache.all != nil {
		r := b.cache.all[row]
		if ci >= len(r) {
			return Null(), nil
		}
		return r[ci], nil
	}
	pi := sort.Search(len(b.parts), func(i int) bool { return b.parts[i].start > row }) - 1
	p := &b.parts[pi]
	if b.cache.lastPart != pi {
		rows, err := b.store.readPartition(p)
		if err != nil {
			return Null(), err
		}
		b.cache.lastPart, b.cache.lastRows = pi, rows
	}
	r := b.cache.lastRows[row-p.start]
	if ci >= len(r) {
		return Null(), nil
	}
	return r[ci], nil
}

// partTable decodes partition pi and wraps it as an in-memory sub-table
// of t: same name, schema and column origins, with lineage rebuilt as
// the global row references of the partition's row range. Operators
// applied to it therefore produce byte-identical output to the same
// operator over the full in-memory table, restricted to this range.
func (b *segBacking) partTable(t *Table, pi int) (*Table, error) {
	p := &b.parts[pi]
	rows, err := b.store.readPartition(p)
	if err != nil {
		return nil, err
	}
	pt := &Table{Name: t.Name, Schema: t.Schema, Rows: rows, ColOrigin: t.ColOrigin}
	if t.Lineage != nil {
		pt.Lineage = t.Lineage[p.start : p.start+p.rows]
	} else {
		refs := make([]RowRef, p.rows)
		lin := make([]LineageSet, p.rows)
		for j := 0; j < p.rows; j++ {
			refs[j] = RowRef{Table: b.origin, Row: p.start + j}
			lin[j] = LineageSet(refs[j : j+1 : j+1])
		}
		pt.Lineage = lin
	}
	return pt, nil
}

// segPartResult carries one decoded partition through the scan pipeline.
type segPartResult struct {
	pt  *Table
	err error
}

// segScan streams the partitions of a segment-backed table that survive
// zone-map pruning, in partition order. With more than one worker the
// decodes run concurrently on a bounded pool while results are consumed
// through index-tagged slots, so output order is deterministic
// regardless of decode completion order.
type segScan struct {
	t       *Table
	parts   []int
	pruned  int
	workers int

	next    int
	done    bool
	started bool
	slots   []chan segPartResult
	sem     chan struct{}
	cancel  chan struct{}
}

// newSegScan plans a scan of t under pred: partitions whose zone maps
// prove the predicate cannot be TRUE on any of their rows are skipped
// before any byte is read.
func newSegScan(t *Table, pred Expr) *segScan {
	b := t.seg
	sc := &segScan{t: t}
	prune := pred != nil && predTotal(pred, t.Schema)
	for pi := range b.parts {
		if prune && !zonesMayMatch(pred, t.Schema, b.parts[pi].zones) {
			sc.pruned++
			continue
		}
		sc.parts = append(sc.parts, pi)
	}
	m := b.store.Metrics()
	m.Counter("segment.read.segments").Add(uint64(len(sc.parts)))
	m.Counter("segment.read.pruned").Add(uint64(sc.pruned))
	sc.workers = b.store.ScanWorkers()
	if sc.workers <= 0 {
		sc.workers = runtime.GOMAXPROCS(0)
	}
	if sc.workers > len(sc.parts) {
		sc.workers = len(sc.parts)
	}
	return sc
}

// start launches the bounded-parallel decode pipeline. The semaphore is
// acquired before each decode and released only when its result is
// consumed, so at most `workers` decoded partitions are in flight — the
// scan's memory ceiling.
func (sc *segScan) start() {
	sc.started = true
	sc.slots = make([]chan segPartResult, len(sc.parts))
	for i := range sc.slots {
		sc.slots[i] = make(chan segPartResult, 1)
	}
	sc.sem = make(chan struct{}, sc.workers)
	sc.cancel = make(chan struct{})
	// Locals: Close nils the fields from the consumer goroutine while the
	// dispatcher is still selecting on them.
	cancel, sem := sc.cancel, sc.sem
	go func() {
		for i, pi := range sc.parts {
			select {
			case <-cancel:
				return
			case sem <- struct{}{}:
			}
			go func(slot chan segPartResult, pi int) {
				pt, err := sc.t.seg.partTable(sc.t, pi)
				slot <- segPartResult{pt: pt, err: err} // buffered: never blocks
			}(sc.slots[i], pi)
		}
	}()
}

// nextTable returns the next surviving partition as an in-memory
// sub-table, or (nil, nil) when the scan is exhausted.
func (sc *segScan) nextTable() (*Table, error) {
	if sc.done || sc.next >= len(sc.parts) {
		sc.done = true
		return nil, nil
	}
	if sc.workers <= 1 {
		pi := sc.parts[sc.next]
		sc.next++
		pt, err := sc.t.seg.partTable(sc.t, pi)
		if err != nil {
			sc.done = true
			return nil, err
		}
		return pt, nil
	}
	if !sc.started {
		sc.start()
	}
	res := <-sc.slots[sc.next]
	sc.next++
	<-sc.sem
	if res.err != nil {
		sc.done = true
		return nil, res.err
	}
	return res.pt, nil
}

// Close stops the pipeline. In-flight decodes finish into their buffered
// slots and exit; the dispatcher unblocks via the cancel channel, so no
// goroutine outlives the scan.
func (sc *segScan) Close() {
	if sc.cancel != nil && !sc.done {
		close(sc.cancel)
	}
	sc.done = true
	sc.cancel = nil
}

// Scanner is the public streaming reader over a table: segment-backed
// tables yield one Batch per surviving partition (zone-map pruned,
// decoded in parallel, delivered in order); in-memory tables yield a
// single Batch. Callers must Close the scanner when abandoning it early.
type Scanner struct {
	scan  *segScan
	inMem *Table
	done  bool
}

// NewScanner opens a scan of t. pred (optional) drives partition
// pruning; Pruned reports how many partitions it eliminated.
func NewScanner(t *Table, pred Expr) *Scanner {
	if t.seg == nil {
		return &Scanner{inMem: t}
	}
	return &Scanner{scan: newSegScan(t, pred)}
}

// Next returns the next batch, or (nil, nil) when the scan is done.
func (s *Scanner) Next() (*Batch, error) {
	if s.done {
		return nil, nil
	}
	if s.scan == nil {
		s.done = true
		return NewBatch(s.inMem), nil
	}
	pt, err := s.scan.nextTable()
	if err != nil {
		s.done = true
		return nil, err
	}
	if pt == nil {
		s.done = true
		return nil, nil
	}
	return NewBatch(pt), nil
}

// Pruned returns the number of partitions skipped by zone-map pruning.
func (s *Scanner) Pruned() int {
	if s.scan == nil {
		return 0
	}
	return s.scan.pruned
}

// Close releases the scan's workers. Safe to call repeatedly.
func (s *Scanner) Close() {
	s.done = true
	if s.scan != nil {
		s.scan.Close()
	}
}
