package diff

// White-box PD000 coverage: Validate can only report divergences when
// the compiler actually mis-translates, so these tests build a real
// triple, verify it validates clean, then tamper with copies of the
// compiled program field by field and assert each tampering is caught.

import (
	"strings"
	"testing"

	"plabi/internal/compile"
	"plabi/internal/policy"
	"plabi/internal/report"
	"plabi/internal/sql"
	"plabi/internal/workload"
)

// tamperState is a minimal one-source deployment: an aggregated report
// over the prescriptions fixture with an access rule, a condition, a
// threshold and a row filter in play.
func tamperState(t *testing.T) *State {
	t.Helper()
	plas, err := policy.ParseFile(`
pla "tamper-src" {
    owner "hospital"; level source; scope "prescriptions";
    allow attribute drug;
    allow attribute patient when disease <> 'HIV';
    aggregate min 3 by patient;
    filter when cost < 500;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	reg := policy.NewRegistry()
	for _, p := range plas {
		if err := reg.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	cat := sql.NewCatalog()
	cat.Register(workload.PrescriptionsFixture())
	return &State{
		Policies: reg,
		Catalog:  cat,
		Reports: []*report.Definition{{
			ID: "rx-agg", Title: "Aggregated prescriptions",
			Query:   "SELECT drug, COUNT(*) AS n FROM prescriptions GROUP BY drug",
			Roles:   []string{"analyst"},
			Purpose: "quality",
		}},
	}
}

// tamperValidator mirrors Validate's per-triple setup for the state's
// single report so tests can run the check methods against a tampered
// program copy.
func tamperValidator(t *testing.T, s *State, prog *compile.Program) *validator {
	t.Helper()
	enf := s.newEnforcer()
	def := s.Reports[0]
	comp, prof, err := enf.CompositeFor(def)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := def.Parse()
	if err != nil {
		t.Fatal(err)
	}
	if prog == nil {
		prog, _, err = enf.ProgramFor(def, "analyst", def.Purpose)
		if err != nil {
			t.Fatal(err)
		}
	}
	return &validator{
		t:    triple{report: def.ID, role: "analyst", purpose: def.Purpose},
		s:    s, comp: comp, prof: prof, sel: sel, prog: prog,
		role: "analyst", purpose: def.Purpose,
	}
}

// compiled returns the honestly compiled program for the state's report.
func compiled(t *testing.T, s *State) *compile.Program {
	t.Helper()
	enf := s.newEnforcer()
	def := s.Reports[0]
	prog, _, err := enf.ProgramFor(def, "analyst", def.Purpose)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestValidateTamperedPrograms(t *testing.T) {
	s := tamperState(t)
	if imps := tamperValidator(t, s, nil).run(); len(imps) != 0 {
		t.Fatalf("honest program must validate clean, got %d impacts: %v", len(imps), imps)
	}
	honest := compiled(t, s)
	if len(honest.Thresholds) == 0 {
		t.Fatal("fixture bakes no thresholds; tampering tests are vacuous")
	}
	if len(honest.Filters) == 0 {
		t.Fatal("fixture binds no filters; tampering tests are vacuous")
	}

	cases := []struct {
		name    string
		tamper  func(p *compile.Program)
		wantMsg string
	}{
		{"aggregated-flag", func(p *compile.Program) {
			p.Aggregated = false
		}, "aggregated"},
		{"dropped-threshold", func(p *compile.Program) {
			p.Thresholds = nil
		}, "bakes no threshold"},
		{"loosened-threshold", func(p *compile.Program) {
			ths := append([]compile.Threshold(nil), p.Thresholds...)
			ths[0].Min = 1
			p.Thresholds = ths
		}, "program bakes min 1"},
		{"dropped-filter", func(p *compile.Program) {
			p.Filters = nil
		}, "program binds 0"},
		{"phantom-static-block", func(p *compile.Program) {
			p.Static = append(append([]compile.Verdict(nil), p.Static...),
				compile.Verdict{Outcome: "block", Rule: "join-permission", Subject: "a JOIN b"})
		}, "the interpreter does not derive"},
		{"wrong-pla-set", func(p *compile.Program) {
			p.PLAs = append([]string{"phantom"}, p.PLAs...)
		}, "interpreter composes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clone := *honest
			tc.tamper(&clone)
			imps := tamperValidator(t, s, &clone).run()
			if len(imps) == 0 {
				t.Fatalf("tampering %q went undetected", tc.name)
			}
			hit := false
			for _, im := range imps {
				if im.Code != CodeTranslation {
					t.Errorf("impact code %s, want %s", im.Code, CodeTranslation)
				}
				if strings.Contains(im.Message, tc.wantMsg) {
					hit = true
				}
			}
			if !hit {
				t.Errorf("no impact mentions %q; got %v", tc.wantMsg, imps)
			}
		})
	}
}

// TestValidateTamperedColumnPlan flips a released raw column to masked
// and vice versa on the column plans.
func TestValidateTamperedColumnPlan(t *testing.T) {
	s := tamperState(t)
	honest := compiled(t, s)
	raw := -1
	for i, cp := range honest.Columns {
		if !cp.Aggregate && !cp.Masked {
			raw = i
			break
		}
	}
	if raw < 0 {
		t.Fatal("fixture has no released raw column to tamper with")
	}
	clone := *honest
	cols := append([]compile.ColumnPlan(nil), honest.Columns...)
	cols[raw].Masked = true
	cols[raw].Rule = "access-deny"
	clone.Columns = cols
	imps := tamperValidator(t, s, &clone).run()
	hit := false
	for _, im := range imps {
		if im.Code == CodeTranslation && strings.Contains(im.Message, "but the interpreter releases it") {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("masked-column tampering undetected; got %v", imps)
	}
}
