// Package metareport implements the paper's preferred elicitation
// artifact (§5, Fig. 5): meta-reports — wide views over the warehouse
// that sit between the warehouse's complexity/stability and the reports'
// simplicity/volatility. It derives a minimal covering set of
// meta-reports from a report portfolio, checks whether a (new or
// modified) report is derivable from an approved meta-report — so its
// PLAs carry over without re-eliciting — and generates compliance test
// cases from PLAs so policies are testable before they are put in
// operation (§6).
package metareport

import (
	"fmt"
	"sort"
	"strings"

	"plabi/internal/relation"
	"plabi/internal/report"
	"plabi/internal/sql"
)

// MetaReport is one wide view over the warehouse, discussed with and
// approved by the source owners.
type MetaReport struct {
	ID    string
	Title string
	Query string
	// Approved records the owners' sign-off; PLAs attach to the ID.
	Approved bool
}

// Parse returns the parsed SELECT.
func (m *MetaReport) Parse() (*sql.SelectStmt, error) {
	return sql.ParseSelect(m.Query)
}

// Containment is the result of a derivability check.
type Containment struct {
	Derivable bool
	// Reasons explains failures (empty when derivable).
	Reasons []string
}

// IsDerivable reports whether the report can, at least conceptually, be
// expressed as a subset or view over the meta-report (§5): its base
// tables, output columns (by origin), join pairs, and filters must all be
// covered. The check is sound but incomplete — a false negative forces an
// unnecessary re-elicitation, never a privacy leak.
func IsDerivable(cat *sql.Catalog, def *report.Definition, meta *MetaReport) (Containment, error) {
	rp, err := sql.ProfileSQL(cat, def.Query)
	if err != nil {
		return Containment{}, fmt.Errorf("metareport: profile report %s: %w", def.ID, err)
	}
	mp, err := sql.ProfileSQL(cat, meta.Query)
	if err != nil {
		return Containment{}, fmt.Errorf("metareport: profile meta %s: %w", meta.ID, err)
	}
	var reasons []string

	if mp.Aggregated {
		reasons = append(reasons, "meta-report is aggregated; only wide tables support derivation")
	}
	metaTables := map[string]bool{}
	for _, t := range mp.BaseTables {
		metaTables[t] = true
	}
	for _, t := range rp.BaseTables {
		if !metaTables[t] {
			reasons = append(reasons, fmt.Sprintf("base table %q not covered", t))
		}
	}
	for _, c := range rp.OutputCols {
		if !mp.OutputCols.Contains(c) {
			reasons = append(reasons, fmt.Sprintf("output column %s not covered", c))
		}
	}
	metaJoins := map[sql.JoinPair]bool{}
	for _, j := range mp.JoinPairs {
		metaJoins[j] = true
	}
	for _, j := range rp.JoinPairs {
		if !metaJoins[j] {
			reasons = append(reasons, fmt.Sprintf("join %s-%s not covered", j.A, j.B))
		}
	}
	// The meta-report's filters must hold wherever the report's do —
	// otherwise the report could show rows the owners never saw during
	// elicitation.
	if len(mp.Conjuncts) > 0 {
		if rp.Opaque {
			reasons = append(reasons, "report filter too complex to prove containment in filtered meta-report")
		} else if !sql.ConjunctionImplies(rp.Conjuncts, mp.Conjuncts) {
			reasons = append(reasons, "report rows are not confined to the meta-report's filter")
		}
	}
	return Containment{Derivable: len(reasons) == 0, Reasons: reasons}, nil
}

// CoveringMeta returns the first approved meta-report the definition is
// derivable from, if any.
func CoveringMeta(cat *sql.Catalog, def *report.Definition, metas []*MetaReport) (*MetaReport, Containment, error) {
	var last Containment
	for _, m := range metas {
		c, err := IsDerivable(cat, def, m)
		if err != nil {
			return nil, Containment{}, err
		}
		if c.Derivable {
			return m, c, nil
		}
		last = c
	}
	return nil, last, nil
}

// Options controls derivation granularity — the paper's §5 design
// challenge: "how many meta-reports to define and how close they should
// be to the complexity of the data warehouse or the simplicity of the
// reports".
type Options struct {
	// MaxWidth bounds the number of columns per meta-report. 0 derives
	// one maximal wide view per table footprint (the warehouse-like
	// extreme); small values yield many narrow, report-like metas. A
	// single report needing more columns than MaxWidth still gets its
	// own meta-report (the bound is best-effort, never splitting one
	// report across metas).
	MaxWidth int
}

// Derive computes a minimal covering set of meta-reports for a report
// portfolio: reports are clustered by table footprint (footprints that
// are subsets of another merge into it), and each cluster yields one
// wide meta-report selecting every column any member report uses, joined
// with the join predicates the members themselves use. The returned map
// assigns each report id to its covering meta-report id.
func Derive(cat *sql.Catalog, defs []*report.Definition) ([]*MetaReport, map[string]string, error) {
	return DeriveWith(cat, defs, Options{})
}

// DeriveWith is Derive with explicit granularity options.
func DeriveWith(cat *sql.Catalog, defs []*report.Definition, opts Options) ([]*MetaReport, map[string]string, error) {
	type clusterInfo struct {
		tables  []string
		cols    relation.ColRefSet
		joinOn  map[sql.JoinPair]relation.Expr
		members []string
	}
	var clusters []*clusterInfo
	assign := map[string]string{}

	footKey := func(tables []string) string { return strings.Join(tables, ",") }

	// Collect per-report FROM footprints (the tables the report names in
	// its FROM clause — the "report universe"), referenced columns, and
	// join predicates. Derivation is syntactic over that universe;
	// containment checking separately resolves to true base origins.
	type repInfo struct {
		def    *report.Definition
		tables []string
		cols   relation.ColRefSet
		joinOn map[sql.JoinPair]relation.Expr
	}
	reps := make([]repInfo, 0, len(defs))
	for _, d := range defs {
		sel, err := d.Parse()
		if err != nil {
			return nil, nil, fmt.Errorf("metareport: derive: report %s: %w", d.ID, err)
		}
		tables := fromTables(sel)
		cols, err := referencedCols(cat, sel)
		if err != nil {
			return nil, nil, fmt.Errorf("metareport: derive: report %s: %w", d.ID, err)
		}
		reps = append(reps, repInfo{def: d, tables: tables, cols: cols, joinOn: joinPredicates(sel)})
	}
	// Sort by decreasing footprint size so larger clusters absorb
	// subset footprints.
	sort.SliceStable(reps, func(i, j int) bool {
		if len(reps[i].tables) != len(reps[j].tables) {
			return len(reps[i].tables) > len(reps[j].tables)
		}
		return reps[i].def.ID < reps[j].def.ID
	})

	for _, r := range reps {
		var target *clusterInfo
		for _, cl := range clusters {
			if !subsetOf(r.tables, cl.tables) {
				continue
			}
			if opts.MaxWidth > 0 && len(cl.cols.Union(r.cols)) > opts.MaxWidth {
				continue // bin full; try the next or open a new one
			}
			target = cl
			break
		}
		if target == nil {
			target = &clusterInfo{tables: r.tables, joinOn: map[sql.JoinPair]relation.Expr{}}
			clusters = append(clusters, target)
		}
		// Referenced columns include WHERE/GROUP BY columns, so
		// intensional PLA conditions can be expressed on the meta-report
		// even when the column is hidden in the final reports (§5's
		// HIV-column-for-PLA-only trick).
		target.cols = target.cols.Union(r.cols)
		for jp, on := range r.joinOn {
			if _, ok := target.joinOn[jp]; !ok {
				target.joinOn[jp] = on
			}
		}
		target.members = append(target.members, r.def.ID)
	}

	var metas []*MetaReport
	for i, cl := range clusters {
		query, err := buildWideQuery(cat, cl.tables, cl.cols, cl.joinOn)
		if err != nil {
			return nil, nil, fmt.Errorf("metareport: derive cluster %s: %w", footKey(cl.tables), err)
		}
		m := &MetaReport{
			ID:    fmt.Sprintf("meta-%02d-%s", i+1, strings.Join(cl.tables, "-")),
			Title: "Meta-report over " + strings.Join(cl.tables, ", "),
			Query: query,
		}
		metas = append(metas, m)
		for _, member := range cl.members {
			assign[member] = m.ID
		}
	}
	return metas, assign, nil
}

// fromTables returns the sorted distinct table names a SELECT names in
// its FROM clause.
func fromTables(sel *sql.SelectStmt) []string {
	set := map[string]bool{strings.ToLower(sel.From.Name): true}
	for _, j := range sel.Joins {
		set[strings.ToLower(j.Table.Name)] = true
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// referencedCols resolves every column a SELECT references (outputs,
// filters, grouping) to (FROM-table, column) pairs using the catalog and
// view schemas. Unresolvable references are skipped (they surface later
// when the query runs).
func referencedCols(cat *sql.Catalog, sel *sql.SelectStmt) (relation.ColRefSet, error) {
	// alias -> table name, plus table schemas for unqualified lookup.
	type rel struct {
		table  string
		schema *relation.Schema
	}
	schemaOf := func(name string) (*relation.Schema, error) {
		if t, ok := cat.Table(name); ok {
			return t.Schema, nil
		}
		if v, ok := cat.View(name); ok {
			// Execute-free approximation: a view's output names.
			cols := make([]relation.Column, 0, len(v.Items))
			for _, it := range v.Items {
				if !it.Star {
					cols = append(cols, relation.Column{Name: it.OutName()})
				}
			}
			return &relation.Schema{Columns: cols}, nil
		}
		return nil, fmt.Errorf("unknown relation %q", name)
	}
	var rels []rel
	byAlias := map[string]rel{}
	addRel := func(tr sql.TableRef) error {
		sc, err := schemaOf(tr.Name)
		if err != nil {
			return err
		}
		r := rel{table: strings.ToLower(tr.Name), schema: sc}
		rels = append(rels, r)
		byAlias[strings.ToLower(tr.EffName())] = r
		return nil
	}
	if err := addRel(sel.From); err != nil {
		return nil, err
	}
	for _, j := range sel.Joins {
		if err := addRel(j.Table); err != nil {
			return nil, err
		}
	}
	resolve := func(name string) (relation.ColRef, bool) {
		q, c := splitQualified(name)
		if q != "" {
			if r, ok := byAlias[q]; ok && r.schema.HasColumn(c) {
				return relation.ColRef{Table: r.table, Column: c}, true
			}
			return relation.ColRef{}, false
		}
		for _, r := range rels {
			if r.schema.HasColumn(c) {
				return relation.ColRef{Table: r.table, Column: c}, true
			}
		}
		return relation.ColRef{}, false
	}

	var refs []string
	for _, it := range sel.Items {
		switch {
		case it.Star:
			for _, r := range rels {
				for _, col := range r.schema.Columns {
					refs = append(refs, r.table+"."+strings.ToLower(col.Name))
				}
			}
		case it.Agg != nil:
			if it.Agg.Arg != nil {
				refs = it.Agg.Arg.ColumnRefs(refs)
			}
		default:
			refs = it.Expr.ColumnRefs(refs)
		}
	}
	if sel.Where != nil {
		refs = sel.Where.ColumnRefs(refs)
	}
	for _, g := range sel.GroupBy {
		refs = g.ColumnRefs(refs)
	}
	var out relation.ColRefSet
	for _, name := range refs {
		if ref, ok := resolve(strings.ToLower(name)); ok {
			out = append(out, ref)
		}
	}
	return out.Normalize(), nil
}

// joinPredicates extracts the ON expressions of a SELECT keyed by the
// base-table pair they connect (resolved via alias -> table name).
func joinPredicates(sel *sql.SelectStmt) map[sql.JoinPair]relation.Expr {
	alias := map[string]string{strings.ToLower(sel.From.EffName()): strings.ToLower(sel.From.Name)}
	for _, j := range sel.Joins {
		alias[strings.ToLower(j.Table.EffName())] = strings.ToLower(j.Table.Name)
	}
	out := map[sql.JoinPair]relation.Expr{}
	for _, j := range sel.Joins {
		be, ok := j.On.(*relation.BinExpr)
		if !ok || be.Op != relation.OpEq {
			continue
		}
		l, lok := be.L.(*relation.ColExpr)
		r, rok := be.R.(*relation.ColExpr)
		if !lok || !rok {
			continue
		}
		lt, lc := splitQualified(l.Name)
		rt, rc := splitQualified(r.Name)
		ltab, lfound := alias[lt]
		rtab, rfound := alias[rt]
		if !lfound || !rfound || ltab == rtab {
			continue
		}
		pair := sql.NewJoinPair(ltab, rtab)
		// Normalize to base-table-qualified column refs.
		out[pair] = relation.Eq(
			relation.ColRefExpr(ltab+"."+lc),
			relation.ColRefExpr(rtab+"."+rc))
	}
	return out
}

func splitQualified(name string) (qualifier, col string) {
	name = strings.ToLower(name)
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		return name[:i], name[i+1:]
	}
	return "", name
}

// buildWideQuery renders the meta-report SQL: all requested columns from
// the base tables, joined with the collected predicates (tables without a
// collected predicate are not joined — single-table clusters are the
// common case).
func buildWideQuery(cat *sql.Catalog, tables []string, cols relation.ColRefSet, joinOn map[sql.JoinPair]relation.Expr) (string, error) {
	if len(tables) == 0 {
		return "", fmt.Errorf("empty cluster")
	}
	// Column list: qualified, aliased to table_column when ambiguous.
	names := map[string]int{}
	for _, c := range cols {
		names[c.Column]++
	}
	var items []string
	for _, c := range cols {
		expr := c.Table + "." + c.Column
		if names[c.Column] > 1 {
			items = append(items, fmt.Sprintf("%s AS %s_%s", expr, c.Table, c.Column))
		} else {
			items = append(items, fmt.Sprintf("%s AS %s", expr, c.Column))
		}
	}
	if len(items) == 0 {
		// Degenerate: select everything from the first table.
		t, ok := cat.Table(tables[0])
		if !ok {
			return "", fmt.Errorf("unknown table %q", tables[0])
		}
		for _, col := range t.Schema.ColumnNames() {
			items = append(items, tables[0]+"."+col+" AS "+col)
		}
	}
	sort.Strings(items)

	var b strings.Builder
	b.WriteString("SELECT " + strings.Join(items, ", "))
	b.WriteString(" FROM " + tables[0])
	joined := map[string]bool{tables[0]: true}
	remaining := append([]string(nil), tables[1:]...)
	for len(remaining) > 0 {
		progressed := false
		for i, t := range remaining {
			var on relation.Expr
			for jp, e := range joinOn {
				if (jp.A == t && joined[jp.B]) || (jp.B == t && joined[jp.A]) {
					on = e
					break
				}
			}
			if on == nil {
				continue
			}
			b.WriteString(" JOIN " + t + " ON " + on.String())
			joined[t] = true
			remaining = append(remaining[:i], remaining[i+1:]...)
			progressed = true
			break
		}
		if !progressed {
			return "", fmt.Errorf("no join predicate connects %v to %v", remaining, tables)
		}
	}
	return b.String(), nil
}

func subsetOf(sub, super []string) bool {
	set := map[string]bool{}
	for _, s := range super {
		set[s] = true
	}
	for _, s := range sub {
		if !set[s] {
			return false
		}
	}
	return true
}
