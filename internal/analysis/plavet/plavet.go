// Package plavet is a repo-specific vet pass enforcing the audit-trail
// write discipline: every production write to the audit log must go
// through the error-reporting Checked API so the caller decides —
// visibly, at the call site — whether a sink failure is fatal
// (fail-closed delivery) or deliberately ignored.
//
// Two rules, stable codes:
//
//	PV001  a non-test file outside internal/audit calls the unchecked
//	       writers (*audit.Log).Append / .Decision / .DecisionTraced,
//	       which swallow sink errors internally.
//	PV002  the result of (*audit.Log).AppendChecked or
//	       .DecisionTracedChecked is silently dropped (a bare expression
//	       statement, or a go/defer call). The sanctioned discard is the
//	       explicit `_, _ =` assignment, which a reviewer can see.
//
// The pass is built only on the standard library (go/parser, go/types
// and the source importer), so it adds no module dependencies; matching
// is type-based via types.Func.FullName, so unrelated Append methods
// (e.g. relation.Table.Append) are never flagged.
package plavet

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// auditPkg is the one package allowed to call the unchecked writers —
// they are its own convenience wrappers over the Checked core.
const auditPkg = "plabi/internal/audit"

// uncheckedWriters maps the forbidden methods (types.Func.FullName) to
// the Checked replacement plavet suggests.
var uncheckedWriters = map[string]string{
	"(*" + auditPkg + ".Log).Append":         "AppendChecked",
	"(*" + auditPkg + ".Log).Decision":       "DecisionTracedChecked",
	"(*" + auditPkg + ".Log).DecisionTraced": "DecisionTracedChecked",
}

// checkedWriters are the methods whose (seq, error) results must not be
// silently dropped.
var checkedWriters = map[string]bool{
	"(*" + auditPkg + ".Log).AppendChecked":         true,
	"(*" + auditPkg + ".Log).DecisionTracedChecked": true,
}

// Finding is one rule violation at a source position.
type Finding struct {
	Pos     token.Position
	Code    string // "PV001" or "PV002"
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Code, f.Message)
}

// Checker type-checks package directories and runs the vet rules. One
// Checker shares a file set and a source importer across calls, so
// dependency packages are type-checked once per process, not once per
// vetted package.
type Checker struct {
	fset *token.FileSet
	imp  types.Importer
}

// NewChecker returns a ready Checker.
func NewChecker() *Checker {
	fset := token.NewFileSet()
	return &Checker{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// Dir parses and type-checks the non-test Go files of one package
// directory and returns the rule violations, sorted by position. A
// directory without Go files yields no findings and no error.
func (c *Checker) Dir(dir string) ([]Finding, error) {
	pkgs, err := parser.ParseDir(c.fset, dir, func(fi fs.FileInfo) bool {
		return strings.HasSuffix(fi.Name(), ".go") && !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, fmt.Errorf("plavet: parse %s: %w", dir, err)
	}
	pkgPath, err := importPathFor(dir)
	if err != nil {
		return nil, err
	}
	var out []Finding
	for _, name := range sortedPkgNames(pkgs) {
		files := sortedFiles(c.fset, pkgs[name])
		info := &types.Info{
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: c.imp}
		if _, err := conf.Check(pkgPath, c.fset, files, info); err != nil {
			return nil, fmt.Errorf("plavet: typecheck %s: %w", dir, err)
		}
		out = append(out, check(c.fset, pkgPath, files, info)...)
	}
	sortFindings(out)
	return out, nil
}

// Tree walks root and vets every package directory under it, skipping
// testdata, vendor and hidden directories. Findings come back sorted by
// position.
func (c *Checker) Tree(root string) ([]Finding, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("plavet: walk %s: %w", root, err)
	}
	var out []Finding
	for _, dir := range dirs {
		fs, err := c.Dir(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, fs...)
	}
	sortFindings(out)
	return out, nil
}

// check runs both rules over one type-checked package.
func check(fset *token.FileSet, pkgPath string, files []*ast.File, info *types.Info) []Finding {
	inAudit := pkgPath == auditPkg
	var out []Finding
	for _, f := range files {
		// Calls whose results vanish without an assignment: bare
		// expression statements plus go/defer statements.
		dropped := map[*ast.CallExpr]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					dropped[call] = true
				}
			case *ast.GoStmt:
				dropped[s.Call] = true
			case *ast.DeferStmt:
				dropped[s.Call] = true
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil {
				return true
			}
			name := fn.FullName()
			switch {
			case uncheckedWriters[name] != "" && !inAudit:
				out = append(out, Finding{
					Pos:  fset.Position(call.Lparen),
					Code: "PV001",
					Message: fmt.Sprintf("unchecked audit write %s.%s: sink failures are swallowed; call %s and handle the error (the sanctioned discard is `_, _ =`)",
						shortRecv(fn), fn.Name(), uncheckedWriters[name]),
				})
			case checkedWriters[name] && dropped[call]:
				out = append(out, Finding{
					Pos:  fset.Position(call.Lparen),
					Code: "PV002",
					Message: fmt.Sprintf("result of %s.%s dropped: the sink outcome decides fail-closed delivery; handle the error or discard explicitly with `_, _ =`",
						shortRecv(fn), fn.Name()),
				})
			}
			return true
		})
	}
	return out
}

// calleeFunc resolves the method a call expression invokes, or nil for
// non-selector calls (plain functions, conversions, builtins).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	return fn
}

// shortRecv renders a method's receiver as "audit.Log" for messages.
func shortRecv(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return fn.Pkg().Name()
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Pkg().Name() + "." + named.Obj().Name()
	}
	return t.String()
}

// importPathFor derives a directory's import path from the enclosing
// go.mod (module line + relative path) so the audit-package exemption
// and the type-checker's package path are exact.
func importPathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", fmt.Errorf("plavet: resolve %s: %w", dir, err)
	}
	root := abs
	for {
		data, err := os.ReadFile(filepath.Join(root, "go.mod"))
		if err == nil {
			mod := moduleName(string(data))
			if mod == "" {
				return "", fmt.Errorf("plavet: %s/go.mod has no module line", root)
			}
			rel, err := filepath.Rel(root, abs)
			if err != nil {
				return "", err
			}
			if rel == "." {
				return mod, nil
			}
			return mod + "/" + filepath.ToSlash(rel), nil
		}
		parent := filepath.Dir(root)
		if parent == root {
			return "", fmt.Errorf("plavet: no go.mod above %s", dir)
		}
		root = parent
	}
}

func moduleName(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

func sortedPkgNames(pkgs map[string]*ast.Package) []string {
	names := make([]string, 0, len(pkgs))
	for name := range pkgs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func sortedFiles(fset *token.FileSet, pkg *ast.Package) []*ast.File {
	files := make([]*ast.File, 0, len(pkg.Files))
	for _, f := range pkg.Files {
		files = append(files, f)
	}
	sort.Slice(files, func(i, j int) bool {
		return fset.Position(files[i].Pos()).Filename < fset.Position(files[j].Pos()).Filename
	})
	return files
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Code < b.Code
	})
}
