package relation

// segprune.go decides, from a partition's zone maps alone, whether a
// pushed-down predicate could select any row of that partition. The
// contract is one-sided: zonesMayMatch may return true for a partition
// the predicate rejects entirely (wasted decode, never wrong), but must
// never return false for a partition containing a selected row. The
// rules below mirror the engine's three-valued logic in expr.go — a
// predicate selects a row only when it evaluates to exactly TRUE, so
// "the predicate is NULL or FALSE on every row" is enough to prune.

// zonesMayMatch reports whether pred could be TRUE on some row of a
// partition with the given per-column zones. Unknown predicate shapes
// and unresolvable columns are conservatively scannable.
func zonesMayMatch(pred Expr, s *Schema, zones []colZone) bool {
	if pred == nil {
		return true
	}
	switch e := pred.(type) {
	case *LitExpr:
		return e.V.Kind == TBool && e.V.B
	case *ColExpr:
		// A bare column predicate selects rows where the value is the
		// bool TRUE; an all-null column never is.
		if z, ok := zoneOf(e.Name, s, zones); ok && z.allNull {
			return false
		}
		return true
	case *BinExpr:
		switch e.Op {
		case OpAnd:
			return zonesMayMatch(e.L, s, zones) && zonesMayMatch(e.R, s, zones)
		case OpOr:
			return zonesMayMatch(e.L, s, zones) || zonesMayMatch(e.R, s, zones)
		case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpLike:
			col, lit, op, ok := colLit(e)
			if !ok {
				return true
			}
			z, ok := zoneOf(col, s, zones)
			if !ok {
				return true
			}
			// Comparing NULL yields NULL (never TRUE): an all-null column
			// or a NULL literal cannot satisfy any comparison.
			if z.allNull || lit.IsNull() {
				return false
			}
			if op == OpLike || !z.hasZone {
				return true
			}
			return rangeMayMatch(op, z, lit)
		default:
			return true
		}
	case *NotExpr:
		// NOT inverts TRUE and FALSE but maps NULL to NULL; refuting
		// "NOT p can be TRUE" needs "p is TRUE everywhere", which zone
		// bounds cannot establish. Always scan.
		return true
	case *IsNullExpr:
		switch inner := e.E.(type) {
		case *ColExpr:
			z, ok := zoneOf(inner.Name, s, zones)
			if !ok {
				return true
			}
			if e.Negate { // IS NOT NULL: some non-null value must exist
				return !z.allNull
			}
			return z.hasNull
		case *LitExpr:
			return inner.V.IsNull() != e.Negate
		default:
			return true
		}
	case *InExpr:
		col, isCol := e.E.(*ColExpr)
		if !isCol {
			return true
		}
		z, ok := zoneOf(col.Name, s, zones)
		if !ok {
			return true
		}
		// A NULL subject makes IN and NOT IN both NULL (see InExpr.Eval),
		// so an all-null column satisfies neither polarity.
		if z.allNull {
			return false
		}
		if e.Negate || !z.hasZone {
			return true
		}
		for _, le := range e.List {
			lit, isLit := le.(*LitExpr)
			if !isLit {
				return true
			}
			if lit.V.IsNull() {
				continue
			}
			if rangeMayMatch(OpEq, z, lit.V) {
				return true
			}
		}
		return false
	default:
		return true
	}
}

// predTotal reports whether evaluating pred over rows of s can never
// return an error. Predicate-evaluation errors in this engine are
// data-independent — unknown columns, unknown functions, bad arities,
// unknown operators — so a total predicate errors on no row at all, and
// skipping a partition cannot suppress an error the in-memory path would
// have reported. Pruning is gated on this: a non-total predicate scans
// every partition so both paths fail identically. Function calls are
// conservatively non-total (their arity rules live in callScalar).
func predTotal(pred Expr, s *Schema) bool {
	switch e := pred.(type) {
	case nil:
		return true
	case *LitExpr:
		return true
	case *ColExpr:
		return s.Index(e.Name) >= 0
	case *BinExpr:
		switch e.Op {
		case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpAnd, OpOr,
			OpAdd, OpSub, OpMul, OpDiv, OpMod, OpLike, OpConcat:
			return predTotal(e.L, s) && predTotal(e.R, s)
		default:
			return false
		}
	case *NotExpr:
		return predTotal(e.E, s)
	case *NegExpr:
		return predTotal(e.E, s)
	case *IsNullExpr:
		return predTotal(e.E, s)
	case *InExpr:
		if !predTotal(e.E, s) {
			return false
		}
		for _, le := range e.List {
			if !predTotal(le, s) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// colLit destructures a comparison into (column, literal, op), flipping
// the operator when the literal is on the left.
func colLit(e *BinExpr) (col string, lit Value, op BinOp, ok bool) {
	if c, isCol := e.L.(*ColExpr); isCol {
		if l, isLit := e.R.(*LitExpr); isLit {
			return c.Name, l.V, e.Op, true
		}
		return "", Value{}, 0, false
	}
	if l, isLit := e.L.(*LitExpr); isLit {
		if c, isCol := e.R.(*ColExpr); isCol {
			return c.Name, l.V, flipCmp(e.Op), true
		}
	}
	return "", Value{}, 0, false
}

// zoneOf resolves a column name to its zone.
func zoneOf(name string, s *Schema, zones []colZone) (colZone, bool) {
	ci := s.Index(name)
	if ci < 0 || ci >= len(zones) {
		return colZone{}, false
	}
	return zones[ci], true
}

// rangeMayMatch reports whether `col op lit` could be TRUE given the
// column's [min, max] over non-null values. Incomparable bounds (mixed
// kinds meeting an incompatible literal) are conservatively scannable.
func rangeMayMatch(op BinOp, z colZone, lit Value) bool {
	cmin, okMin := lit.Compare(z.min)
	cmax, okMax := lit.Compare(z.max)
	if !okMin || !okMax {
		return true
	}
	switch op {
	case OpEq:
		return cmin >= 0 && cmax <= 0
	case OpNe:
		// Only prunable when every value equals the literal.
		return !(cmin == 0 && cmax == 0)
	case OpLt: // some value < lit  ⇔  min < lit
		return cmin > 0
	case OpLe:
		return cmin >= 0
	case OpGt: // some value > lit  ⇔  max > lit
		return cmax < 0
	case OpGe:
		return cmax <= 0
	default:
		return true
	}
}
