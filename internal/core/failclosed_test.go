package core

import (
	"errors"
	"testing"
	"time"

	"plabi/internal/audit"
	"plabi/internal/fault"
	"plabi/internal/report"
)

// downWriter refuses every write — a dead audit sink.
type downWriter struct{ writes int }

func (w *downWriter) Write(p []byte) (int, error) {
	w.writes++
	return 0, errors.New("sink down")
}

func fastRetry() fault.RetryPolicy {
	return fault.RetryPolicy{MaxAttempts: 3, Base: time.Microsecond, Max: 10 * time.Microsecond, Multiplier: 2}
}

func TestRenderFailClosedBlocksWhenAuditDown(t *testing.T) {
	e := buildConcurrencyEngine(t)
	e.SetRetryPolicy(fastRetry())
	w := &downWriter{}
	e.Audit.SetSink(w)
	e.SetFailClosed(true)

	c := report.Consumer{Name: "ana", Role: "analyst", Purpose: "quality"}
	_, err := e.Render("drug-consumption", c)
	if !errors.Is(err, audit.ErrAuditUnavailable) {
		t.Fatalf("fail-closed render must block on ErrAuditUnavailable, got %v", err)
	}
	if w.writes == 0 {
		t.Fatal("sink never consulted")
	}
	snap := e.MetricsSnapshot()
	if snap.Counters["render.audit_blocked"] == 0 {
		t.Fatalf("render.audit_blocked not counted: %v", snap.Counters)
	}
	if snap.Counters["retry.exhausted"] == 0 {
		t.Fatalf("retry budget exhaustion not counted: %v", snap.Counters)
	}

	// Recovery: the sink comes back, and the same render serves again.
	e.Audit.SetSink(nil)
	if _, err := e.Render("drug-consumption", c); err != nil {
		t.Fatalf("render after sink recovery: %v", err)
	}
}

func TestRenderFailOpenByDefaultWhenAuditDown(t *testing.T) {
	e := buildConcurrencyEngine(t)
	e.SetRetryPolicy(fastRetry())
	e.Audit.SetSink(&downWriter{})

	c := report.Consumer{Name: "ana", Role: "analyst", Purpose: "quality"}
	if _, err := e.Render("drug-consumption", c); err != nil {
		t.Fatalf("fail-open render must serve despite sink loss, got %v", err)
	}
	// The event is still recorded in memory and the drop is counted.
	if len(e.Audit.ByKind("render")) == 0 {
		t.Fatal("render event missing from in-memory log")
	}
	if e.MetricsSnapshot().Counters["audit.sink_drops"] == 0 {
		t.Fatal("sink drop not counted")
	}
}
