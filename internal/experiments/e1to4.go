package experiments

import (
	"fmt"
	"time"

	"plabi/internal/core"
	"plabi/internal/enforce"
	"plabi/internal/etl"
	"plabi/internal/metadata"
	"plabi/internal/policy"
	"plabi/internal/relation"
	"plabi/internal/report"
	"plabi/internal/workload"
)

// E1Pipeline runs the full Fig. 1 scenario at increasing scale: multi-
// owner extraction, guarded ETL (cleansing, entity resolution, permitted
// joins), warehouse load, and enforced rendering of the whole portfolio,
// verifying that every render is audited and no blocked operation leaks.
func E1Pipeline() (*Result, error) {
	res := &Result{}
	res.addf("%-8s %-10s %-8s %-9s %-9s %-9s %s", "facts", "build(ms)", "reports",
		"rows", "masked", "suppressed", "audit-events")
	for _, n := range []int{5000, 20000, 50000} {
		cfg := workload.DefaultConfig(42)
		cfg.Prescriptions = n
		cfg.Patients = n / 10
		cfg.LabResults = n / 4
		start := time.Now()
		e, _, err := core.BuildHealthcareEngine(cfg)
		if err != nil {
			return nil, err
		}
		build := time.Since(start)
		consumers := map[string]report.Consumer{
			"drug-consumption": {Name: "ana", Role: "analyst", Purpose: "quality"},
			"drug-spend":       {Name: "ana", Role: "analyst", Purpose: "reimbursement"},
			"disease-by-year":  {Name: "aud", Role: "auditor", Purpose: "quality"},
			"age-profile":      {Name: "ana", Role: "analyst", Purpose: "quality"},
			"patient-activity": {Name: "ana", Role: "analyst", Purpose: "reimbursement"},
		}
		rows, masked, suppressed := 0, 0, 0
		for _, d := range e.Reports.All() {
			enf, err := e.Render(d.ID, consumers[d.ID])
			if err != nil {
				return nil, err
			}
			rows += enf.Table.NumRows()
			masked += enf.MaskedCells
			suppressed += enf.SuppressedRows
		}
		if got := len(e.Audit.ByKind("render")); got != len(e.Reports.All()) {
			return nil, fmt.Errorf("E1: %d renders audited, want %d", got, len(e.Reports.All()))
		}
		res.addf("%-8d %-10d %-8d %-9d %-9d %-9d %d", n, build.Milliseconds(),
			len(e.Reports.All()), rows, masked, suppressed, e.Audit.Len())
	}
	res.addf("claim check: pipeline runs end-to-end, every render audited, blocked reports render empty -> PASS")
	return res, nil
}

// E2Source reproduces Fig. 2: the paper's literal Prescriptions+Policies
// tables under source-level enforcement, the automatic coverage of newly
// inserted rows by intensional associations, and scaling of the release
// filter.
func E2Source() (*Result, error) {
	res := &Result{}
	reg := policy.NewRegistry()
	plas, err := policy.ParseFile(`pla "hospital-prescriptions" {
		owner "hospital"; level source; scope "prescriptions";
		allow attribute *;
	}`)
	if err != nil {
		return nil, err
	}
	for _, p := range plas {
		if err := reg.Add(p); err != nil {
			return nil, err
		}
	}
	store := metadata.NewStore()
	if err := store.AddKeyed(&metadata.KeyedMetadata{
		Name: "patient-policies", Data: "prescriptions", DataKey: "patient",
		Meta: workload.PoliciesFixture(), MetaKey: "patient",
	}); err != nil {
		return nil, err
	}
	hiv, err := parseExprOrDie("disease = 'HIV'")
	if err != nil {
		return nil, err
	}
	if err := store.AddAssociation(&metadata.Association{
		Name: "hiv-restriction", Data: "prescriptions", When: hiv,
		Metadata: map[string]relation.Value{"ShowName": relation.Bool(false)},
		PLARef:   "hospital-prescriptions",
	}); err != nil {
		return nil, err
	}
	se := &enforce.SourceEnforcer{Registry: reg, Metadata: store,
		ConsentAliases: map[string]string{"name": "patient"}}

	fixture := workload.PrescriptionsFixture()
	released, rep, err := se.Release(fixture)
	if err != nil {
		return nil, err
	}
	res.addf("paper fixture (Fig. 2b) released with consent metadata + HIV intensional association:")
	for _, line := range tableLines(released) {
		res.addf("  %s", line)
	}
	res.addf("cells masked: %d (Fig. 2b consent: ShowDisease=no for Alice/Bob/Math, ShowName=no for Math; HIV names hidden intensionally)", rep.CellsMasked)

	// New HIV patient automatically covered — no metadata change.
	fixture2 := workload.PrescriptionsFixture()
	fixture2.AppendVals(relation.Str("Dana"), relation.Str("Luis"), relation.Str("DH"),
		relation.Str("HIV"), relation.DateYMD(2008, 6, 1))
	released2, _, err := se.Release(fixture2)
	if err != nil {
		return nil, err
	}
	last := released2.NumRows() - 1
	if released2.Get(last, "patient").S == "Dana" {
		return nil, fmt.Errorf("E2: new HIV patient not auto-covered")
	}
	res.addf("new HIV patient inserted -> name auto-masked by intensional association (no metadata edits): PASS")

	// Scaled release with a row filter.
	reg2 := policy.NewRegistry()
	plas2, err := policy.ParseFile(`pla "h2" {
		owner "hospital"; level source; scope "prescriptions";
		allow attribute *;
		filter when disease <> 'HIV';
		anonymize attribute patient using pseudonym;
	}`)
	if err != nil {
		return nil, err
	}
	for _, p := range plas2 {
		if err := reg2.Add(p); err != nil {
			return nil, err
		}
	}
	se2 := &enforce.SourceEnforcer{Registry: reg2}
	res.addf("%-8s %-10s %-10s %s", "rows", "released", "filtered", "release(ms)")
	for _, n := range []int{1000, 10000, 50000} {
		cfg := workload.DefaultConfig(7)
		cfg.Prescriptions = n
		cfg.Patients = n / 10
		ds, err := workload.Generate(cfg)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		rel, rrep, err := se2.Release(ds.Prescriptions)
		if err != nil {
			return nil, err
		}
		res.addf("%-8d %-10d %-10d %d", n, rel.NumRows(), rrep.RowsFiltered, time.Since(start).Milliseconds())
	}
	return res, nil
}

// E3ETL reproduces Fig. 3: ETL-level annotations block the forbidden
// Prescriptions ⋈ Familydoctor join while the permitted DrugCost join
// proceeds, with lineage recorded for every loaded row; integration
// permissions guard entity resolution.
func E3ETL() (*Result, error) {
	res := &Result{}
	e := core.New()
	ds, err := workload.Generate(workload.DefaultConfig(42))
	if err != nil {
		return nil, err
	}
	e.AddSource(etl.NewSource("hospital", "hospital", ds.Prescriptions))
	e.AddSource(etl.NewSource("familydoctors", "familydoctors", ds.FamilyDoctor))
	e.AddSource(etl.NewSource("healthagency", "healthagency", ds.DrugCost))
	e.AddSource(etl.NewSource("municipality", "municipality", ds.Residents))
	if err := e.AddPLAs(`
pla "h" { owner "hospital"; level source; scope "prescriptions";
	allow attribute *;
	forbid join with familydoctor;
	allow join with drugcost;
	forbid integration for municipality;
}
pla "m" { owner "municipality"; level source; scope "residents";
	allow attribute *;
	allow integration for familydoctors;
}`); err != nil {
		return nil, err
	}

	p := &etl.Pipeline{Name: "fig3", Steps: []etl.Step{
		etl.NewExtract("e1", mustSource(e, "hospital"), "prescriptions", ""),
		etl.NewExtract("e2", mustSource(e, "familydoctors"), "familydoctor", ""),
		etl.NewExtract("e3", mustSource(e, "healthagency"), "drugcost", ""),
		etl.NewExtract("e4", mustSource(e, "municipality"), "residents", ""),
		etl.NewJoin("forbidden-join", "prescriptions", "familydoctor",
			relation.Eq(relation.ColRefExpr("l.patient"), relation.ColRefExpr("r.patient")),
			relation.InnerJoin, "rx_fd"),
		etl.NewJoin("permitted-join", "prescriptions", "drugcost",
			relation.Eq(relation.ColRefExpr("l.drug"), relation.ColRefExpr("r.drug")),
			relation.InnerJoin, "rx_cost"),
		etl.NewEntityResolution("permitted-integration", "familydoctor", "patient",
			"residents", "patient", "familydoctors", 0.88, "fd_resolved"),
	}}
	result, err := e.RunETL(p, true)
	if err != nil {
		return nil, err
	}
	if len(result.Violations) != 1 {
		return nil, fmt.Errorf("E3: violations = %d, want 1", len(result.Violations))
	}
	res.addf("forbidden Prescriptions JOIN Familydoctor: BLOCKED (%v)", result.Violations[0])
	rxCost, ok := e.Table("rx_cost")
	if !ok {
		return nil, fmt.Errorf("E3: permitted join missing")
	}
	res.addf("permitted Prescriptions JOIN DrugCost: %d rows loaded", rxCost.NumRows())
	fd, _ := e.Table("fd_resolved")
	res.addf("permitted integration (municipality cleans familydoctors): %d rows resolved", fd.NumRows())
	// Every loaded row has lineage back to a source.
	traced := 0
	for i := 0; i < rxCost.NumRows(); i++ {
		if len(rxCost.RowLineage(i)) >= 2 {
			traced++
		}
	}
	res.addf("lineage: %d/%d loaded facts trace to >= 2 source rows", traced, rxCost.NumRows())
	res.addf("ETL steps recorded in transformation graph: %d", len(e.Graph.Steps()))

	// The reverse check: an integration the donor forbids is blocked.
	p2 := &etl.Pipeline{Name: "fig3b", Steps: []etl.Step{
		etl.NewExtract("e1b", mustSource(e, "hospital"), "prescriptions", ""),
		etl.NewExtract("e2b", mustSource(e, "familydoctors"), "familydoctor", ""),
		etl.NewEntityResolution("forbidden-integration", "familydoctor", "patient",
			"prescriptions", "patient", "municipality", 0.88, "bad_resolved"),
	}}
	r2, err := e.RunETL(p2, true)
	if err != nil {
		return nil, err
	}
	if len(r2.Violations) != 1 {
		return nil, fmt.Errorf("E3: forbidden integration not blocked")
	}
	res.addf("forbidden integration (hospital data cleaning municipality's): BLOCKED")
	return res, nil
}

// E4Report reproduces Fig. 4: the literal Drug consumption report
// (DH 20, DV 28, DR 89, DM 2), then report-level enforcement with an
// aggregation-threshold sweep and the §5 intensional HIV condition.
func E4Report() (*Result, error) {
	res := &Result{}
	e := core.New()
	fig4 := workload.Fig4Prescriptions(1)
	e.AddSource(etl.NewSource("hospital", "hospital", fig4))
	if err := e.AddPLAs(`
pla "s" { owner "hospital"; level source; scope "prescriptions"; allow attribute *; }
pla "r" { owner "hospital"; level report; scope "drug-consumption";
	allow attribute drug;
}`); err != nil {
		return nil, err
	}
	if err := e.DefineReport(&report.Definition{ID: "drug-consumption", Title: "Drug consumption",
		Query: "SELECT drug, COUNT(*) AS consumption FROM prescriptions GROUP BY drug ORDER BY drug"}); err != nil {
		return nil, err
	}
	enf, err := e.Render("drug-consumption", report.Consumer{Name: "ana", Role: "analyst"})
	if err != nil {
		return nil, err
	}
	res.addf("golden reproduction of Fig. 4b (no threshold):")
	for _, line := range tableLines(enf.Table) {
		res.addf("  %s", line)
	}
	got := map[string]int64{}
	for i := 0; i < enf.Table.NumRows(); i++ {
		got[enf.Table.Get(i, "drug").S] = enf.Table.Get(i, "consumption").I
	}
	for drug, want := range workload.Fig4Consumption {
		if got[drug] != want {
			return nil, fmt.Errorf("E4: %s = %d, want %d", drug, got[drug], want)
		}
	}
	res.addf("matches paper exactly: DH 20, DV 28, DR 89, DM 2 -> PASS")

	// Threshold sweep: groups below k distinct patients are suppressed.
	res.addf("%-4s %-14s %s", "k", "groups-shown", "suppressed")
	for _, k := range []int{2, 5, 10, 25} {
		e2 := core.New()
		e2.AddSource(etl.NewSource("hospital", "hospital", workload.Fig4Prescriptions(1)))
		if err := e2.AddPLAs(fmt.Sprintf(`
pla "s" { owner "hospital"; level source; scope "prescriptions"; allow attribute *; }
pla "r" { owner "hospital"; level report; scope "drug-consumption";
	allow attribute drug; aggregate min %d by patient;
}`, k)); err != nil {
			return nil, err
		}
		if err := e2.DefineReport(&report.Definition{ID: "drug-consumption",
			Query: "SELECT drug, COUNT(*) AS consumption FROM prescriptions GROUP BY drug ORDER BY drug"}); err != nil {
			return nil, err
		}
		enf2, err := e2.Render("drug-consumption", report.Consumer{Role: "analyst"})
		if err != nil {
			return nil, err
		}
		res.addf("%-4d %-14d %d", k, enf2.Table.NumRows(), enf2.SuppressedRows)
	}

	// Intensional HIV condition (§5): patient column masked exactly on
	// HIV-supported rows.
	e3 := core.New()
	e3.AddSource(etl.NewSource("hospital", "hospital", workload.Fig4Prescriptions(1)))
	if err := e3.AddPLAs(`
pla "s" { owner "hospital"; level source; scope "prescriptions"; allow attribute *; }
pla "r" { owner "hospital"; level report; scope "rx-list";
	allow attribute drug;
	allow attribute patient when disease <> 'HIV';
}`); err != nil {
		return nil, err
	}
	if err := e3.DefineReport(&report.Definition{ID: "rx-list",
		Query: "SELECT patient, drug FROM prescriptions ORDER BY drug"}); err != nil {
		return nil, err
	}
	enf3, err := e3.Render("rx-list", report.Consumer{Role: "analyst"})
	if err != nil {
		return nil, err
	}
	maskedHIV, shownOther := 0, 0
	for i := 0; i < enf3.Table.NumRows(); i++ {
		d := enf3.Table.Get(i, "drug").S
		masked := enf3.Table.Get(i, "patient").S == "***"
		if d == "DH" || d == "DV" {
			if !masked {
				return nil, fmt.Errorf("E4: HIV patient leaked")
			}
			maskedHIV++
		} else if !masked {
			shownOther++
		}
	}
	res.addf("intensional HIV condition: %d HIV-supported cells masked, %d others shown (48 HIV rows, 91 others) -> PASS",
		maskedHIV, shownOther)
	return res, nil
}

// tableLines splits a rendered table into lines for result embedding.
func tableLines(t *relation.Table) []string {
	var out []string
	cur := ""
	for _, r := range t.String() {
		if r == '\n' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

// mustSource fetches a scenario source that is known to exist.
func mustSource(e *core.Engine, name string) *etl.Source {
	s, _ := e.Source(name)
	return s
}
