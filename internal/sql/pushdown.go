package sql

import (
	"plabi/internal/relation"
)

// Predicate pushdown: WHERE conjuncts that touch a single FROM relation
// are applied to that relation before the join fold, so privacy-view
// rewrites (which arrive as WHERE filters) cut the input before rows are
// materialized, instead of after the full join.
//
// A conjunct is pushed to relation k only when all of the following hold,
// each required for the plan to stay observationally identical to
// filter-after-join:
//
//   - Every column it references has relation k as its first carrier in
//     FROM order. Post-join name resolution is left-biased over the
//     concatenated schema, so the first carrier is exactly the relation
//     whose column the joined row exposes under that name.
//   - k == 0, or the join introducing relation k is an INNER join. The
//     right side of a LEFT JOIN cannot be pre-filtered: rows removed
//     early would resurface null-extended, while filter-after-join
//     removes them outright. (The accumulated left side always commutes:
//     left joins preserve left rows and their values.)
//   - relation.SafePredicate holds for the conjunct on relation k's
//     schema, and for every conjunct of the WHERE on the joined schema.
//     The reference plan evaluates the full conjunction on every joined
//     row with no short-circuit, so an error anywhere fails the query;
//     pushdown evaluates conjuncts on different row sets and could
//     otherwise suppress (or surface) errors the reference would not.
//
// The unpushed conjuncts are refolded in their original order as the
// residual WHERE.

// splitConjuncts flattens the AND tree of e into its conjuncts. The
// conjunction is TRUE exactly when every conjunct is TRUE, so filtering
// by the parts equals filtering by the whole.
func splitConjuncts(e relation.Expr) []relation.Expr {
	if be, ok := e.(*relation.BinExpr); ok && be.Op == relation.OpAnd {
		return append(splitConjuncts(be.L), splitConjuncts(be.R)...)
	}
	return []relation.Expr{e}
}

// foldAnd rebuilds a conjunction from parts (nil when empty), preserving
// the left-deep shape Split produced them from.
func foldAnd(parts []relation.Expr) relation.Expr {
	var out relation.Expr
	for _, p := range parts {
		if out == nil {
			out = p
		} else {
			out = relation.And(out, p)
		}
	}
	return out
}

// firstCarrier returns the index of the first FROM relation whose schema
// resolves name, or -1.
func firstCarrier(name string, inputs []*relation.Table) int {
	for k, t := range inputs {
		if t.Schema.Index(name) >= 0 {
			return k
		}
	}
	return -1
}

// planPushdown splits s.Where into per-relation pushed filters and the
// residual predicate. inputs are the resolved, renamed FROM relations in
// declaration order. When nothing qualifies, pushed is all-empty and
// residual is the original WHERE.
func planPushdown(s *SelectStmt, inputs []*relation.Table) (pushed [][]relation.Expr, residual relation.Expr) {
	pushed = make([][]relation.Expr, len(inputs))
	if s.Where == nil {
		return pushed, nil
	}
	conjuncts := splitConjuncts(s.Where)

	// Whole-WHERE safety gate on the joined schema (the concatenation of
	// the renamed FROM schemas, exactly what the join fold produces).
	var joinedCols []relation.Column
	for _, t := range inputs {
		joinedCols = append(joinedCols, t.Schema.Columns...)
	}
	joined := &relation.Schema{Columns: joinedCols}
	for _, c := range conjuncts {
		if !relation.SafePredicate(c, joined) {
			return make([][]relation.Expr, len(inputs)), s.Where
		}
	}

	var rest []relation.Expr
	for _, c := range conjuncts {
		k := pushTarget(c, inputs)
		if k >= 0 &&
			(k == 0 || s.Joins[k-1].Kind == relation.InnerJoin) &&
			relation.SafePredicate(c, inputs[k].Schema) {
			pushed[k] = append(pushed[k], c)
			continue
		}
		rest = append(rest, c)
	}
	return pushed, foldAnd(rest)
}

// pushTarget returns the single FROM relation all of c's columns resolve
// to first, or -1. Column-free conjuncts (constants) go to relation 0:
// they filter all-or-nothing wherever they run.
func pushTarget(c relation.Expr, inputs []*relation.Table) int {
	cols := relation.ColumnsOf(c)
	if len(cols) == 0 {
		return 0
	}
	k := firstCarrier(cols[0], inputs)
	if k < 0 {
		return -1
	}
	for _, col := range cols[1:] {
		if firstCarrier(col, inputs) != k {
			return -1
		}
	}
	return k
}
