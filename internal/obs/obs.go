// Package obs is the engine's dependency-free observability layer: a
// metrics registry of atomic counters, gauges and bucketed latency
// histograms, plus lightweight span tracing with correlation ids that
// flow through context.Context.
//
// The paper's central claim is that PLA compliance must be checkable at
// every level of the BI stack; in an operating system that means the
// enforcement path itself must be observable. Every instrumented
// operation (render, ETL run, compliance check) opens a span; the span's
// correlation id is attached to the audit events the operation emits, so
// "which PLA blocked this report and how long did enforcement take" is
// answerable by joining the span stream with the audit trail on one id.
//
// Design constraints:
//
//   - stdlib only — obs is imported by enforce, etl, audit and core, so
//     it must sit below all of them and carry no dependencies;
//   - every method is safe for concurrent use and nil-receiver-safe, so
//     instrumentation points never need a nil check: a nil *Metrics (and
//     the nil *Counter/*Gauge/*Histogram/*Span it hands out) is a
//     zero-cost no-op registry;
//   - correlation ids are drawn from an atomic counter, not a clock or
//     RNG, so runs stay reproducible (the audit log records no wall
//     time); durations feed histograms only, never the audit trail.
package obs

import "sync"

// Metrics is a registry of named counters, gauges and histograms plus
// the span tracer. The zero value is NOT ready for use — call New; a nil
// *Metrics is a valid no-op registry.
type Metrics struct {
	counters sync.Map // string -> *Counter
	gauges   sync.Map // string -> *Gauge
	hists    sync.Map // string -> *Histogram
	tracer   tracer
}

// New returns an empty registry.
func New() *Metrics { return &Metrics{} }

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	if v, ok := m.counters.Load(name); ok {
		return v.(*Counter)
	}
	v, _ := m.counters.LoadOrStore(name, &Counter{})
	return v.(*Counter)
}

// Gauge returns the named gauge, creating it on first use. A nil
// registry returns a nil (no-op) gauge.
func (m *Metrics) Gauge(name string) *Gauge {
	if m == nil {
		return nil
	}
	if v, ok := m.gauges.Load(name); ok {
		return v.(*Gauge)
	}
	v, _ := m.gauges.LoadOrStore(name, &Gauge{})
	return v.(*Gauge)
}

// Histogram returns the named latency histogram (default buckets),
// creating it on first use. A nil registry returns a nil (no-op)
// histogram.
func (m *Metrics) Histogram(name string) *Histogram {
	if m == nil {
		return nil
	}
	if v, ok := m.hists.Load(name); ok {
		return v.(*Histogram)
	}
	v, _ := m.hists.LoadOrStore(name, NewHistogram(DefaultLatencyBuckets...))
	return v.(*Histogram)
}
