package lint

import (
	"fmt"
	"strings"

	"plabi/internal/policy"
)

// thresholds (PL005) cross-checks aggregation thresholds between levels.
// Composition takes the maximum, so a report-level threshold looser than
// its sources is dead text (the runtime enforces the source value — the
// agreement misleads its reader), and a report-level threshold stricter
// than the assigned meta-report's means the meta the owners approved
// under-specifies what the report actually requires (§5 Fig. 5: the meta
// level is where thresholds should stabilize).
type thresholds struct{}

func init() { Register(thresholds{}) }

func (thresholds) Code() string { return "PL005" }
func (thresholds) Name() string { return "threshold-contradictions" }
func (thresholds) Doc() string {
	return "Aggregation thresholds that contradict across levels: a report threshold " +
		"looser than its sources (ineffective) or stricter than its meta-report " +
		"(the approved meta under-specifies)."
}

func (thresholds) Run(p *Pass) []Finding {
	if p.Catalog == nil || len(p.Reports) == 0 {
		return nil
	}
	var out []Finding
	for _, pla := range p.PLAs {
		switch pla.Level {
		case policy.LevelReport:
			out = append(out, reportThresholds(p, pla)...)
		case policy.LevelMetaReport:
			out = append(out, metaThresholds(p, pla)...)
		}
	}
	return out
}

func reportThresholds(p *Pass, pla *policy.PLA) []Finding {
	def := p.reportByID(pla.Scope)
	if def == nil {
		return nil // PL003 reports the dangling scope
	}
	prof := p.profile(def)
	if prof == nil {
		return nil
	}
	var out []Finding
	for i, ar := range pla.Aggregations {
		srcMin, srcPLA := upstreamMin(p, prof.BaseTables, ar.By)
		if srcMin > ar.MinCount {
			out = append(out, Finding{
				Code: "PL005", Severity: SevWarning, Level: policy.LevelReport,
				Pos:     ar.Pos,
				Subject: pla.ID + "/" + bySubject(ar.By),
				Message: fmt.Sprintf("report-level threshold %s in PLA %q is looser than source agreement %q (min %d): the runtime enforces %d, the report agreement misleads its reader",
					byPhrase(ar), pla.ID, srcPLA, srcMin, srcMin),
				PLAs: []string{pla.ID, srcPLA},
				SuggestedFix: &Fix{
					Summary: fmt.Sprintf("raise the threshold %s in PLA %q to the source minimum %d", byPhrase(ar), pla.ID, srcMin),
					PLAID:   pla.ID, Kind: "aggregation", Index: i, Action: "set-min", Value: srcMin,
				},
			})
		}
		if mid := p.Assign[def.ID]; mid != "" {
			metaMin, metaPLA := levelMin(p, policy.LevelMetaReport, []string{mid}, ar.By)
			if metaMin > 0 && ar.MinCount > metaMin {
				out = append(out, Finding{
					Code: "PL005", Severity: SevWarning, Level: policy.LevelReport,
					Pos:     ar.Pos,
					Subject: pla.ID + "/" + bySubject(ar.By),
					Message: fmt.Sprintf("report-level threshold %s in PLA %q is stricter than meta-report agreement %q (min %d): the approved meta-report under-specifies the report's requirement — re-elicit at the meta level",
						byPhrase(ar), pla.ID, metaPLA, metaMin),
					PLAs: []string{pla.ID, metaPLA},
				})
			}
		}
	}
	return out
}

// metaThresholds flags meta-report thresholds looser than the sources of
// any report assigned to the meta.
func metaThresholds(p *Pass, pla *policy.PLA) []Finding {
	var out []Finding
	for i, ar := range pla.Aggregations {
		for _, def := range p.Reports {
			if !strings.EqualFold(p.Assign[def.ID], pla.Scope) {
				continue
			}
			prof := p.profile(def)
			if prof == nil {
				continue
			}
			srcMin, srcPLA := upstreamMin(p, prof.BaseTables, ar.By)
			if srcMin > ar.MinCount {
				out = append(out, Finding{
					Code: "PL005", Severity: SevWarning, Level: policy.LevelMetaReport,
					Pos:     ar.Pos,
					Subject: pla.ID + "/" + bySubject(ar.By),
					Message: fmt.Sprintf("meta-report threshold %s in PLA %q is looser than source agreement %q (min %d) behind report %q: the runtime enforces %d",
						byPhrase(ar), pla.ID, srcPLA, srcMin, def.ID, srcMin),
					PLAs: []string{pla.ID, srcPLA},
					SuggestedFix: &Fix{
						Summary: fmt.Sprintf("raise the threshold %s in PLA %q to the source minimum %d", byPhrase(ar), pla.ID, srcMin),
						PLAID:   pla.ID, Kind: "aggregation", Index: i, Action: "set-min", Value: srcMin,
					},
				})
				break // one finding per meta rule is enough
			}
		}
	}
	return out
}

// upstreamMin returns the strongest source/warehouse threshold for the
// same "by" attribute over the given base tables, and the imposing PLA.
func upstreamMin(p *Pass, tables []string, by string) (int, string) {
	best, bestPLA := 0, ""
	for _, lvl := range []policy.Level{policy.LevelSource, policy.LevelWarehouse} {
		if m, id := levelMin(p, lvl, tables, by); m > best {
			best, bestPLA = m, id
		}
	}
	return best, bestPLA
}

// levelMin returns the strongest threshold for "by" among PLAs of the
// level scoped to any of the names.
func levelMin(p *Pass, lvl policy.Level, names []string, by string) (int, string) {
	best, bestPLA := 0, ""
	for _, n := range names {
		for _, pla := range p.Registry.ForScope(lvl, n).PLAs {
			for _, ar := range pla.Aggregations {
				if strings.EqualFold(ar.By, by) && ar.MinCount > best {
					best, bestPLA = ar.MinCount, pla.ID
				}
			}
		}
	}
	return best, bestPLA
}

func bySubject(by string) string {
	if by == "" {
		return "rows"
	}
	return "by " + strings.ToLower(by)
}

func byPhrase(ar policy.AggregationRule) string {
	if ar.By == "" {
		return fmt.Sprintf("min %d", ar.MinCount)
	}
	return fmt.Sprintf("min %d by %s", ar.MinCount, ar.By)
}
