package relation

// segstore.go is the file-backed side of the out-of-core tables: a
// SegmentStore owns a directory of columnar segments (segment.go), a
// SegmentWriter streams rows into fixed-size partitions without ever
// holding more than one partition in memory, and Spill converts an
// in-memory table into a segment-backed one preserving its provenance.
//
// Reads go through the relation.segment.read fault site: transient
// failures (injected or real I/O) are retried under the store's policy,
// while corruption is marked permanent and fails closed immediately.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"plabi/internal/fault"
	"plabi/internal/obs"
)

// DefaultPartitionRows is the number of rows per segment partition when
// the store is not configured otherwise.
const DefaultPartitionRows = 1 << 16

// SegmentStore writes and reads columnar segments under one directory.
// The zero configuration is usable immediately: the directory is created
// lazily on first write, partitions default to DefaultPartitionRows, and
// metrics/faults/retry wiring is optional. All methods are safe for
// concurrent use.
type SegmentStore struct {
	dir      string
	partRows atomic.Int64
	workers  atomic.Int64
	metrics  atomic.Pointer[obs.Metrics]
	faults   atomic.Pointer[fault.Injector]
	retry    atomic.Pointer[fault.RetryPolicy]
	seq      atomic.Uint64
}

// NewSegmentStore returns a store rooted at dir. The directory is not
// created until the first write, so construction cannot fail.
func NewSegmentStore(dir string) *SegmentStore {
	return &SegmentStore{dir: dir}
}

// Dir returns the store's root directory.
func (s *SegmentStore) Dir() string { return s.dir }

// SetPartitionRows sets the rows-per-partition of subsequent writers;
// values below 1 restore the default.
func (s *SegmentStore) SetPartitionRows(n int) {
	s.partRows.Store(int64(n))
}

// PartitionRows returns the configured rows per partition.
func (s *SegmentStore) PartitionRows() int {
	if n := s.partRows.Load(); n > 0 {
		return int(n)
	}
	return DefaultPartitionRows
}

// SetScanWorkers bounds the parallel partition decodes per scan; 0
// restores the default (GOMAXPROCS), 1 forces sequential scans.
func (s *SegmentStore) SetScanWorkers(n int) {
	s.workers.Store(int64(n))
}

// ScanWorkers returns the configured scan parallelism (0 = default).
func (s *SegmentStore) ScanWorkers() int {
	return int(s.workers.Load())
}

// SetMetrics attaches an observability registry; the store maintains the
// segment.* counters on it.
func (s *SegmentStore) SetMetrics(m *obs.Metrics) { s.metrics.Store(m) }

// Metrics returns the attached registry (nil-safe to use).
func (s *SegmentStore) Metrics() *obs.Metrics {
	if s == nil {
		return nil
	}
	return s.metrics.Load()
}

// SetFaults attaches a fault injector consulted at relation.segment.read.
func (s *SegmentStore) SetFaults(fi *fault.Injector) { s.faults.Store(fi) }

// SetRetryPolicy sets the retry policy for transient segment-read
// failures. The zero value (default) performs a single attempt.
func (s *SegmentStore) SetRetryPolicy(p fault.RetryPolicy) { s.retry.Store(&p) }

func (s *SegmentStore) retryPolicy() fault.RetryPolicy {
	if p := s.retry.Load(); p != nil {
		return *p
	}
	return fault.RetryPolicy{}
}

// segDirName sanitizes a table name into a filesystem-safe directory
// component.
func segDirName(table string) string {
	var b strings.Builder
	for _, r := range table {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "table"
	}
	return b.String()
}

// SegmentWriter streams rows into per-partition segment files. Only the
// current partition is buffered in memory; Close returns the
// segment-backed base table.
type SegmentWriter struct {
	store    *SegmentStore
	table    string
	schema   *Schema
	dir      string
	partRows int
	buf      []Row
	parts    []segPart
	start    int // global row index of the first buffered row
	total    int
	closed   bool
}

// NewWriter opens a writer for one table. Each writer gets a fresh
// subdirectory (<dir>/<table>-<seq>) so repeated loads of the same table
// never collide.
func (s *SegmentStore) NewWriter(table string, schema *Schema) (*SegmentWriter, error) {
	if schema == nil || schema.Len() == 0 {
		return nil, fmt.Errorf("relation: segment writer for %s: empty schema", table)
	}
	dir := filepath.Join(s.dir, fmt.Sprintf("%s-%06d", segDirName(table), s.seq.Add(1)))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("relation: segment writer for %s: %w", table, err)
	}
	return &SegmentWriter{store: s, table: table, schema: schema, dir: dir, partRows: s.PartitionRows()}, nil
}

// Append buffers one row, flushing a partition whenever the buffer
// reaches the configured size. The row is retained until the flush and
// must not be mutated by the caller.
func (w *SegmentWriter) Append(r Row) error {
	if w.closed {
		return fmt.Errorf("relation: segment writer for %s: closed", w.table)
	}
	if len(r) != w.schema.Len() {
		return fmt.Errorf("relation: row arity %d does not match schema %s", len(r), w.schema)
	}
	w.buf = append(w.buf, r)
	w.total++
	if len(w.buf) >= w.partRows {
		return w.flush()
	}
	return nil
}

// flush encodes and writes the buffered partition.
func (w *SegmentWriter) flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	idx := len(w.parts)
	data, zones, err := encodeSegment(w.table, idx, w.start, w.schema, w.buf)
	if err != nil {
		return err
	}
	path := filepath.Join(w.dir, fmt.Sprintf("part-%06d.seg", idx))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("relation: segment write %s: %w", path, err)
	}
	m := w.store.Metrics()
	m.Counter("segment.write.partitions").Inc()
	m.Counter("segment.write.rows").Add(uint64(len(w.buf)))
	m.Counter("segment.write.bytes").Add(uint64(len(data)))
	w.parts = append(w.parts, segPart{path: path, index: idx, start: w.start, rows: len(w.buf), zones: zones})
	w.start = w.total
	w.buf = w.buf[:0]
	return nil
}

// Close flushes the final partition and returns the segment-backed base
// table. The writer is unusable afterwards.
func (w *SegmentWriter) Close() (*Table, error) {
	if w.closed {
		return nil, fmt.Errorf("relation: segment writer for %s: closed", w.table)
	}
	w.closed = true
	if err := w.flush(); err != nil {
		return nil, err
	}
	w.buf = nil
	t := &Table{Name: w.table, Schema: w.schema.Clone(), Base: true}
	t.seg = &segBacking{store: w.store, origin: w.table, parts: w.parts, rows: w.total, cache: &segCache{lastPart: -1}}
	return t, nil
}

// Abort discards the writer and removes any partitions already written.
func (w *SegmentWriter) Abort() {
	w.closed = true
	w.buf = nil
	os.RemoveAll(w.dir)
}

// Spill converts an in-memory table into a segment-backed one, writing
// its rows out and preserving name, schema, base flag, lineage and
// column origins. Derived-table lineage stays resident (only the rows
// move out of core); a table that is already segment-backed is returned
// unchanged.
func (s *SegmentStore) Spill(t *Table) (*Table, error) {
	if t.seg != nil {
		return t, nil
	}
	w, err := s.NewWriter(t.Name, t.Schema)
	if err != nil {
		return nil, err
	}
	for _, r := range t.Rows {
		if err := w.Append(r); err != nil {
			w.Abort()
			return nil, err
		}
	}
	out, err := w.Close()
	if err != nil {
		w.Abort()
		return nil, err
	}
	m := s.Metrics()
	m.Counter("segment.spill.tables").Inc()
	m.Counter("segment.spill.rows").Add(uint64(len(t.Rows)))
	out.Base = t.Base
	out.Lineage = t.Lineage
	out.ColOrigin = t.ColOrigin
	return out, nil
}

// readPartition loads and decodes one partition under the fault site and
// retry policy. Corruption is permanent (fails closed, no retry);
// transient read faults are retried when a policy is configured.
func (s *SegmentStore) readPartition(p *segPart) ([]Row, error) {
	m := s.Metrics()
	var rows []Row
	err := fault.Retry(context.Background(), s.retryPolicy(), m, func(ctx context.Context) error {
		if err := s.faults.Load().Hit(ctx, fault.SiteSegmentRead); err != nil {
			return err
		}
		data, err := os.ReadFile(p.path)
		if err != nil {
			return err
		}
		h, rs, err := decodeSegment(data)
		if err != nil {
			if ce, ok := err.(*CorruptError); ok && ce.Path == "" {
				err = &CorruptError{Path: p.path, Detail: ce.Detail}
			}
			return fault.Permanent(err)
		}
		if h.Rows != p.rows {
			return fault.Permanent(&CorruptError{Path: p.path,
				Detail: fmt.Sprintf("row count %d, manifest says %d", h.Rows, p.rows)})
		}
		m.Counter("segment.read.bytes").Add(uint64(len(data)))
		rows = rs
		return nil
	})
	if err != nil {
		m.Counter("segment.read.errors").Inc()
		return nil, err
	}
	m.Counter("segment.read.partitions").Inc()
	m.Counter("segment.read.rows").Add(uint64(p.rows))
	return rows, nil
}
