package lint

import (
	"fmt"
	"sort"
	"strings"

	"plabi/internal/policy"
)

// schemaDrift (PL003) proves that every name a PLA references still
// exists: scope tables and attributes against the catalog, join partners
// against known relations, integration beneficiaries against known
// owners, report and meta-report scopes against the registered
// definitions. A rule about a name that resolves to nothing silently
// enforces nothing — the agreement and the schema have drifted apart
// (§3: requirements are elicited once, schemas evolve).
type schemaDrift struct{}

func init() { Register(schemaDrift{}) }

func (schemaDrift) Code() string { return "PL003" }
func (schemaDrift) Name() string { return "schema-drift" }
func (schemaDrift) Doc() string {
	return "PLA references to tables, attributes, reports, meta-reports or owners that " +
		"no longer exist in the catalog: the rule matches nothing and enforces nothing."
}

func (schemaDrift) Run(p *Pass) []Finding {
	var out []Finding
	for _, pla := range p.PLAs {
		switch pla.Level {
		case policy.LevelSource, policy.LevelWarehouse:
			out = append(out, driftTableScoped(p, pla)...)
		case policy.LevelReport:
			out = append(out, driftReportScoped(p, pla)...)
		case policy.LevelMetaReport:
			out = append(out, driftMetaScoped(p, pla)...)
		}
	}
	return out
}

func driftTableScoped(p *Pass, pla *policy.PLA) []Finding {
	if p.Catalog == nil {
		return nil
	}
	var out []Finding
	if pla.Scope != "*" && !p.knownRelation(pla.Scope) {
		names := append(p.Catalog.TableNames(), p.Catalog.ViewNames()...)
		out = append(out, drift(pla, pla.Pos, pla.Scope,
			fmt.Sprintf("PLA %q is scoped to table %q, which is not in the catalog%s — none of its rules can ever apply",
				pla.ID, pla.Scope, didYouMean(pla.Scope, names))))
		return out // attribute checks are meaningless without the table
	}
	cols, haveCols := p.relationColumns(pla.Scope)
	colNames := sortedSet(cols)
	checkAttr := func(pos policy.Pos, attr, what string) {
		if !haveCols || attr == "*" || attr == "" || cols[strings.ToLower(attr)] {
			return
		}
		out = append(out, drift(pla, pos, attr,
			fmt.Sprintf("%s in PLA %q references attribute %q, which does not exist in table %q%s — the rule matches nothing",
				what, pla.ID, attr, pla.Scope, didYouMean(attr, colNames))))
	}
	for _, r := range pla.Access {
		checkAttr(r.Pos, r.Attribute, fmt.Sprintf("%s rule", r.Effect))
	}
	for _, r := range pla.Anonymize {
		checkAttr(r.Pos, r.Attribute, "anonymize rule")
	}
	for _, r := range pla.Aggregations {
		checkAttr(r.Pos, r.By, "aggregation threshold")
	}
	for _, r := range pla.Release {
		for _, q := range r.Quasi {
			checkAttr(r.Pos, q, "release rule quasi-identifier")
		}
		checkAttr(r.Pos, r.Sensitive, "release rule sensitive attribute")
	}
	for _, r := range pla.Joins {
		if r.Other != "*" && !p.knownRelation(r.Other) {
			names := append(p.Catalog.TableNames(), p.Catalog.ViewNames()...)
			out = append(out, drift(pla, r.Pos, r.Other,
				fmt.Sprintf("join rule in PLA %q references relation %q, which is not in the catalog%s — the permission can never be consulted",
					pla.ID, r.Other, didYouMean(r.Other, names))))
		}
	}
	if len(p.Owners) > 0 {
		for _, r := range pla.Integrations {
			if r.Beneficiary != "*" && !containsFold(p.Owners, r.Beneficiary) {
				out = append(out, drift(pla, r.Pos, r.Beneficiary,
					fmt.Sprintf("integration rule in PLA %q references owner %q, which is not a registered source owner%s",
						pla.ID, r.Beneficiary, didYouMean(r.Beneficiary, p.Owners))))
			}
		}
	}
	return out
}

func driftReportScoped(p *Pass, pla *policy.PLA) []Finding {
	if len(p.Reports) == 0 {
		return nil
	}
	var out []Finding
	if pla.Scope == "*" {
		return nil
	}
	def := p.reportByID(pla.Scope)
	if def == nil {
		var ids []string
		for _, d := range p.Reports {
			ids = append(ids, d.ID)
		}
		sort.Strings(ids)
		return []Finding{drift(pla, pla.Pos, pla.Scope,
			fmt.Sprintf("PLA %q is scoped to report %q, which is not defined%s — none of its rules can ever apply",
				pla.ID, pla.Scope, didYouMean(pla.Scope, ids)))}
	}
	prof := p.profile(def)
	if prof == nil {
		return out
	}
	// A report-level rule speaks about output column names, or about base
	// attributes of the tables the report reads (an aggregation "by"
	// counts distinct source values that need not reach the output).
	known := map[string]bool{}
	for name, origins := range prof.OutputNames {
		known[name] = true
		for _, ref := range origins {
			known[strings.ToLower(ref.Column)] = true
		}
	}
	for _, t := range prof.BaseTables {
		if cols, ok := p.relationColumns(t); ok {
			for c := range cols {
				known[c] = true
			}
		}
	}
	names := sortedSet(known)
	checkAttr := func(pos policy.Pos, attr, what string) {
		if attr == "*" || attr == "" || known[strings.ToLower(attr)] {
			return
		}
		out = append(out, drift(pla, pos, attr,
			fmt.Sprintf("%s in PLA %q references %q, which is neither an output column nor a base attribute of report %q%s",
				what, pla.ID, attr, def.ID, didYouMean(attr, names))))
	}
	for _, r := range pla.Access {
		checkAttr(r.Pos, r.Attribute, fmt.Sprintf("%s rule", r.Effect))
	}
	for _, r := range pla.Anonymize {
		checkAttr(r.Pos, r.Attribute, "anonymize rule")
	}
	for _, r := range pla.Aggregations {
		checkAttr(r.Pos, r.By, "aggregation threshold")
	}
	return out
}

func driftMetaScoped(p *Pass, pla *policy.PLA) []Finding {
	if len(p.Metas) == 0 || pla.Scope == "*" {
		return nil
	}
	var ids []string
	for _, m := range p.Metas {
		if strings.EqualFold(m.ID, pla.Scope) {
			return nil
		}
		ids = append(ids, m.ID)
	}
	sort.Strings(ids)
	return []Finding{drift(pla, pla.Pos, pla.Scope,
		fmt.Sprintf("PLA %q is scoped to meta-report %q, which does not exist%s — none of its rules can ever apply",
			pla.ID, pla.Scope, didYouMean(pla.Scope, ids)))}
}

func drift(pla *policy.PLA, pos policy.Pos, subject, msg string) Finding {
	return Finding{
		Code: "PL003", Severity: SevError, Level: pla.Level, Pos: pos,
		Subject: pla.ID + "/" + subject, Message: msg, PLAs: []string{pla.ID},
	}
}

func containsFold(list []string, s string) bool {
	for _, v := range list {
		if strings.EqualFold(v, s) {
			return true
		}
	}
	return false
}
