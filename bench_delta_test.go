// Sustained-traffic incremental-refresh benchmark: stream source delta
// batches through the warehouse while a background consumer keeps
// rendering, in both refresh modes measured in the same run —
// mode=delta (ApplyDelta incremental propagation) against mode=rebuild
// (full pipeline re-run per batch). cmd/benchjson parses the output of
//
//	go test -run '^$' -bench '^BenchmarkDeltaRefresh' -benchmem .
//
// into BENCH_delta.json; -check-delta enforces the >=5x delta-over-
// rebuild floor at the largest scale and the >=50% plan-cache retention
// across a delta.
package plabi

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"plabi/internal/core"
	"plabi/internal/etl"
	"plabi/internal/relation"
	"plabi/internal/report"
	"plabi/internal/workload"
)

// benchDeltaEngine builds the healthcare engine at n prescriptions and
// keeps the generated dataset for synthesizing delta traffic.
func benchDeltaEngine(b *testing.B, n int) (*core.Engine, *workload.Dataset) {
	b.Helper()
	cfg := workload.DefaultConfig(42)
	cfg.Prescriptions = n
	cfg.Patients = n / 10
	cfg.LabResults = n / 10
	e, ds, err := core.BuildHealthcareEngine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return e, ds
}

// benchDeltaBatch synthesizes one insert-dominated traffic batch:
// fresh prescriptions referencing existing patients and drugs, a couple
// of dirty family-doctor references for entity resolution, and an
// occasional in-place prescription correction.
func benchDeltaBatch(rng *rand.Rand, ds *workload.Dataset, nRows, seq int) etl.Batch {
	rx := etl.Delta{Source: "hospital", Table: "prescriptions"}
	for i := 0; i < 10; i++ {
		rx.Inserts = append(rx.Inserts, relation.Row{
			relation.Int(int64(10_000_000 + seq*100 + i)),
			relation.Str(ds.PatientNames[rng.Intn(len(ds.PatientNames))]),
			relation.Str("Dr. " + ds.PatientNames[rng.Intn(len(ds.PatientNames))]),
			relation.Str(ds.DrugNames[rng.Intn(len(ds.DrugNames))]),
			relation.Str(ds.Diseases[rng.Intn(len(ds.Diseases))]),
			relation.DateYMD(2008, time.Month(1+rng.Intn(12)), 1+rng.Intn(28)),
		})
	}
	if seq%2 == 1 {
		ri := rng.Intn(nRows)
		rx.Updates = append(rx.Updates, etl.RowUpdate{Row: ri, Vals: relation.Row{
			relation.Int(int64(20_000_000 + seq)),
			relation.Str(ds.PatientNames[rng.Intn(len(ds.PatientNames))]),
			relation.Str("Dr. " + ds.PatientNames[rng.Intn(len(ds.PatientNames))]),
			relation.Str(ds.DrugNames[rng.Intn(len(ds.DrugNames))]),
			relation.Str(ds.Diseases[rng.Intn(len(ds.Diseases))]),
			relation.DateYMD(2008, time.Month(1+rng.Intn(12)), 1+rng.Intn(28)),
		}})
	}
	fd := etl.Delta{Source: "familydoctors", Table: "familydoctor"}
	for i := 0; i < 2; i++ {
		fd.Inserts = append(fd.Inserts, relation.Row{
			relation.Str(ds.PatientNames[rng.Intn(len(ds.PatientNames))]),
			relation.Str("Dr. " + ds.PatientNames[rng.Intn(len(ds.PatientNames))]),
		})
	}
	return etl.Batch{Deltas: []etl.Delta{rx, fd}}
}

// benchConsumers spans the roles and purposes the standard reports
// admit, so warming them populates one cached render plan per viewable
// (report, consumer) pair.
var benchConsumers = []report.Consumer{
	{Name: "b1", Role: "analyst", Purpose: "quality"},
	{Name: "b2", Role: "auditor", Purpose: "quality"},
	{Name: "b3", Role: "analyst", Purpose: "reimbursement"},
}

// BenchmarkDeltaRefresh measures the cost of keeping the warehouse
// fresh under sustained source traffic. Each timed iteration ingests
// one ~12-row delta batch while a background goroutine keeps serving
// the flagship report, so the number includes refresh-vs-render
// contention. mode=delta propagates the batch incrementally through
// the retained pipeline state; mode=rebuild re-runs the whole pipeline,
// the honest denominator for the incremental-refresh speedup (its
// iterations skip even the source-table apply, so the ratio is
// conservative). The delta mode also reports cache_retained: the
// fraction of cached render plans that survive one delta batch, which
// per-table epoch invalidation must keep at >=50% (generation-keyed
// invalidation would drop it to zero).
func BenchmarkDeltaRefresh(b *testing.B) {
	for _, n := range coreScales {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.Run("mode=delta", func(b *testing.B) {
				e, ds := benchDeltaEngine(b, n)
				warmRenderPlans(b, e)
				before := e.CacheStats().Entries
				rng := rand.New(rand.NewSource(1))
				if _, err := e.ApplyDelta(context.Background(), benchDeltaBatch(rng, ds, n, 0)); err != nil {
					b.Fatal(err)
				}
				retained := float64(e.CacheStats().Entries) / float64(before)

				stop, wg := startRenderTraffic(e)
				b.ResetTimer()
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := e.ApplyDelta(context.Background(), benchDeltaBatch(rng, ds, n, i+1)); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				close(stop)
				wg.Wait()
				b.ReportMetric(retained, "cache_retained")
			})
			b.Run("mode=rebuild", func(b *testing.B) {
				e, _ := benchDeltaEngine(b, n)
				warmRenderPlans(b, e)
				p := core.HealthcarePipeline(e)
				stop, wg := startRenderTraffic(e)
				b.ResetTimer()
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := e.RunETL(p, false); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				close(stop)
				wg.Wait()
			})
		})
	}
}

// warmRenderPlans renders every report for every viewing consumer once,
// populating the render plan cache.
func warmRenderPlans(b *testing.B, e *core.Engine) {
	b.Helper()
	for _, def := range e.Reports.All() {
		for _, c := range benchConsumers {
			if _, err := e.Render(def.ID, c); err != nil {
				b.Fatalf("warm render %s/%s: %v", def.ID, c.Name, err)
			}
		}
	}
}

// startRenderTraffic keeps one consumer rendering the flagship report
// until stop is closed — the serving load every refresh competes with.
func startRenderTraffic(e *core.Engine) (chan struct{}, *sync.WaitGroup) {
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := report.Consumer{Name: "traffic", Role: "analyst", Purpose: "quality"}
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Refreshes may race a render into a transient error; the
			// traffic loop only exists to generate contention.
			_, _ = e.Render("drug-consumption", c)
		}
	}()
	return stop, &wg
}
