package enforce

import (
	"strings"
	"testing"
	"time"

	"plabi/internal/metadata"
	"plabi/internal/policy"
	"plabi/internal/provenance"
	"plabi/internal/relation"
	"plabi/internal/report"
	"plabi/internal/sql"
	"plabi/internal/workload"
)

func registryWith(t *testing.T, plaSrcs ...string) *policy.Registry {
	t.Helper()
	reg := policy.NewRegistry()
	for _, src := range plaSrcs {
		plas, err := policy.ParseFile(src)
		if err != nil {
			t.Fatalf("ParseFile: %v", err)
		}
		for _, p := range plas {
			if err := reg.Add(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	return reg
}

func fixtureCatalogAndTracer() (*sql.Catalog, *provenance.Tracer) {
	cat := sql.NewCatalog()
	tr := provenance.NewTracer()
	for _, tb := range []*relation.Table{
		workload.PrescriptionsFixture(),
		workload.DrugCostFixture(),
		workload.FamilyDoctorFixture(),
	} {
		cat.Register(tb)
		tr.RegisterBase(tb)
	}
	return cat, tr
}

// --- SourceEnforcer (Fig. 2a) ---

func TestSourceReleaseRowFilter(t *testing.T) {
	reg := registryWith(t, `pla "h" { owner "hospital"; level source; scope "prescriptions";
		filter when disease <> 'HIV';
	}`)
	e := &SourceEnforcer{Registry: reg}
	out, rep, err := e.Release(workload.PrescriptionsFixture())
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 3 || rep.RowsFiltered != 2 {
		t.Errorf("rows = %d filtered = %d", out.NumRows(), rep.RowsFiltered)
	}
	for i := 0; i < out.NumRows(); i++ {
		if out.Get(i, "disease").S == "HIV" {
			t.Error("HIV row leaked")
		}
	}
}

func TestSourceReleaseAnonymize(t *testing.T) {
	reg := registryWith(t, `pla "h" { owner "hospital"; level source; scope "prescriptions";
		anonymize attribute patient using pseudonym;
		anonymize attribute date using generalize level 3;
	}`)
	e := &SourceEnforcer{Registry: reg}
	out, rep, err := e.Release(workload.PrescriptionsFixture())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ColumnsAnon) != 2 {
		t.Errorf("anon columns = %v", rep.ColumnsAnon)
	}
	if !strings.HasPrefix(out.Get(0, "patient").S, "anon-") {
		t.Errorf("patient = %q", out.Get(0, "patient").S)
	}
	if out.Get(0, "date").String() != "2007" {
		t.Errorf("date = %q", out.Get(0, "date").String())
	}
	// Stable pseudonyms: both Alice rows share one pseudonym.
	if out.Get(0, "patient").S != out.Get(4, "patient").S {
		t.Error("pseudonym not stable")
	}
}

func TestSourceReleaseConsentMetadata(t *testing.T) {
	reg := registryWith(t, `pla "h" { owner "hospital"; level source; scope "prescriptions";
		allow attribute *;
	}`)
	store := metadata.NewStore()
	if err := store.AddKeyed(&metadata.KeyedMetadata{
		Name: "patient-policies", Data: "prescriptions", DataKey: "patient",
		Meta: workload.PoliciesFixture(), MetaKey: "patient",
	}); err != nil {
		t.Fatal(err)
	}
	e := &SourceEnforcer{Registry: reg, Metadata: store,
		ConsentAliases: map[string]string{"name": "patient"}}
	out, rep, err := e.Release(workload.PrescriptionsFixture())
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 2b: Alice/Bob hide disease, Math hides name and disease,
	// Chris shows both. Rows: Alice, Chris, Bob, Math, Alice.
	if rep.CellsMasked != 5 { // diseases of rows 0,2,3,4 + name of row 3
		t.Errorf("cells masked = %d\n%s", rep.CellsMasked, out)
	}
	if out.Get(0, "disease").S != "***" || out.Get(1, "disease").S != "HIV" {
		t.Errorf("diseases = %v / %v", out.Get(0, "disease"), out.Get(1, "disease"))
	}
	if out.Get(3, "patient").S != "***" {
		t.Errorf("Math's name = %v", out.Get(3, "patient"))
	}
}

func TestSourceReleaseKAnonymity(t *testing.T) {
	reg := registryWith(t, `pla "m" { owner "municipality"; level source; scope "residents";
		release kanonymity 5 quasi age, zip ldiversity 2 on municipality;
	}`)
	ds, err := workload.Generate(workload.DefaultConfig(13))
	if err != nil {
		t.Fatal(err)
	}
	e := &SourceEnforcer{Registry: reg}
	out, rep, err := e.Release(ds.Residents)
	if err != nil {
		t.Fatal(err)
	}
	if rep.KAnonStats.Partitions == 0 {
		t.Error("no partitions recorded")
	}
	// The released table must satisfy 5-anonymity on (age, zip).
	classes := map[string]int{}
	for i := 0; i < out.NumRows(); i++ {
		classes[out.Get(i, "age").String()+"|"+out.Get(i, "zip").String()]++
	}
	for k, n := range classes {
		if n < 5 {
			t.Errorf("class %q has %d < 5 members", k, n)
		}
	}
}

// --- QueryRewriter (VPD) ---

func TestRewriteAddsFilter(t *testing.T) {
	cat, _ := fixtureCatalogAndTracer()
	reg := registryWith(t, `pla "h" { owner "hospital"; level source; scope "prescriptions";
		allow attribute *;
		filter when disease <> 'HIV';
	}`)
	rw := NewQueryRewriter(reg, cat)
	out, decisions, err := rw.RewriteSQL("SELECT patient, drug FROM prescriptions", "analyst", "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "WHERE") || !strings.Contains(out, "HIV") {
		t.Errorf("rewritten = %q", out)
	}
	if len(decisions) != 1 || decisions[0].Rule != "row-filter" {
		t.Errorf("decisions = %v", decisions)
	}
	// Running the rewritten query returns only non-HIV rows.
	res, err := cat.Query(out)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 3 {
		t.Errorf("rows = %d", res.NumRows())
	}
}

func TestRewriteMasksDeniedAttribute(t *testing.T) {
	cat, _ := fixtureCatalogAndTracer()
	reg := registryWith(t, `pla "h" { owner "hospital"; level source; scope "prescriptions";
		allow attribute *;
		deny attribute disease to roles analyst;
	}`)
	rw := NewQueryRewriter(reg, cat)
	out, decisions, err := rw.RewriteSQL("SELECT patient, disease FROM prescriptions", "analyst", "")
	if err != nil {
		t.Fatal(err)
	}
	res, err := cat.Query(out)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < res.NumRows(); i++ {
		if res.Get(i, "disease").S != "***" {
			t.Errorf("disease leaked: %v", res.Get(i, "disease"))
		}
		if res.Get(i, "patient").S == "***" {
			t.Error("patient should not be masked")
		}
	}
	found := false
	for _, d := range decisions {
		if d.Rule == "access-deny" && d.Subject == "disease" {
			found = true
		}
	}
	if !found {
		t.Errorf("decisions = %v", decisions)
	}
	// A different role is unaffected.
	out2, _, err := rw.RewriteSQL("SELECT patient, disease FROM prescriptions", "auditor", "")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out2, "***") {
		t.Error("auditor query should be untouched")
	}
}

func TestRewriteBlocksForbiddenJoin(t *testing.T) {
	cat, _ := fixtureCatalogAndTracer()
	reg := registryWith(t, `pla "h" { owner "hospital"; level source; scope "prescriptions";
		allow attribute *;
		forbid join with familydoctor;
		allow join with drugcost;
	}`)
	rw := NewQueryRewriter(reg, cat)
	out, decisions, err := rw.RewriteSQL(
		`SELECT p.patient FROM prescriptions p JOIN familydoctor f ON p.patient = f.patient`,
		"analyst", "")
	if err != nil {
		t.Fatal(err)
	}
	if out != "" {
		t.Errorf("blocked query should return empty, got %q", out)
	}
	if len(decisions) != 1 || decisions[0].Outcome != Block {
		t.Errorf("decisions = %v", decisions)
	}
	// The permitted drugcost join passes.
	out2, _, err := rw.RewriteSQL(
		`SELECT p.patient FROM prescriptions p JOIN drugcost d ON p.drug = d.drug`,
		"analyst", "")
	if err != nil || out2 == "" {
		t.Errorf("allowed join blocked: %q %v", out2, err)
	}
}

// --- ReportEnforcer (Fig. 4) ---

const reportPLAs = `
pla "hospital-report" {
    owner "hospital"; level report; scope "drug-consumption";
    allow attribute drug to roles analyst;
    aggregate min 5 by patient;
}
pla "hospital-source" {
    owner "hospital"; level source; scope "prescriptions";
    allow attribute *;
}
`

func enforcerWith(t *testing.T, plas string) (*ReportEnforcer, *sql.Catalog) {
	t.Helper()
	cat, tr := fixtureCatalogAndTracer()
	// Register the Fig. 4 fixture as the larger prescriptions table.
	fig4 := workload.Fig4Prescriptions(1)
	cat.Register(fig4)
	tr.RegisterBase(fig4)
	reg := registryWith(t, plas)
	return NewReportEnforcer(reg, cat, tr), cat
}

func TestReportAggregationThreshold(t *testing.T) {
	e, _ := enforcerWith(t, reportPLAs)
	def := &report.Definition{
		ID:    "drug-consumption",
		Title: "Drug consumption",
		Query: "SELECT drug, COUNT(*) AS consumption FROM prescriptions GROUP BY drug ORDER BY drug",
	}
	enf, err := e.Render(def, report.Consumer{Name: "ana", Role: "analyst", Purpose: "quality"})
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 4b counts: DH 20, DV 28, DR 89, DM 2. The min-5-patients
	// threshold suppresses the DM group (2 prescriptions from 2 patients).
	if enf.SuppressedRows != 1 {
		t.Fatalf("suppressed = %d\n%s", enf.SuppressedRows, enf.Table)
	}
	got := map[string]int64{}
	for i := 0; i < enf.Table.NumRows(); i++ {
		got[enf.Table.Get(i, "drug").S] = enf.Table.Get(i, "consumption").I
	}
	if got["DH"] != 20 || got["DV"] != 28 || got["DR"] != 89 {
		t.Errorf("consumption = %v", got)
	}
	if _, present := got["DM"]; present {
		t.Error("DM group must be suppressed")
	}
	// The decision carries lineage evidence.
	found := false
	for _, d := range enf.Decisions {
		if d.Rule == "aggregation-threshold" && len(d.Evidence) > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("decisions = %v", enf.Decisions)
	}
}

func TestReportDeniedColumnMasked(t *testing.T) {
	e, _ := enforcerWith(t, `
pla "r" { owner "hospital"; level report; scope "rx-list";
    allow attribute drug to roles analyst;
    deny attribute patient to roles analyst;
}
pla "s" { owner "hospital"; level source; scope "prescriptions"; allow attribute *; }
`)
	def := &report.Definition{ID: "rx-list",
		Query: "SELECT patient, drug FROM prescriptions WHERE drug = 'DM'"}
	enf, err := e.Render(def, report.Consumer{Role: "analyst"})
	if err != nil {
		t.Fatal(err)
	}
	if enf.Table.NumRows() != 2 {
		t.Fatalf("rows = %d", enf.Table.NumRows())
	}
	for i := 0; i < enf.Table.NumRows(); i++ {
		if enf.Table.Get(i, "patient").S != "***" {
			t.Error("patient not masked")
		}
		if enf.Table.Get(i, "drug").S == "***" {
			t.Error("drug wrongly masked")
		}
	}
	if enf.MaskedCells != 2 {
		t.Errorf("masked = %d", enf.MaskedCells)
	}
}

// TestReportIntensionalCondition reproduces the paper's §5 example: a
// patient-related column may be shown only for patients that are not HIV
// positive — even when the HIV column itself is not in the report.
func TestReportIntensionalCondition(t *testing.T) {
	e, _ := enforcerWith(t, `
pla "r" { owner "hospital"; level report; scope "rx-list";
    allow attribute patient to roles analyst when disease <> 'HIV';
    allow attribute drug to roles analyst;
}
pla "s" { owner "hospital"; level source; scope "prescriptions"; allow attribute *; }
`)
	def := &report.Definition{ID: "rx-list",
		Query: "SELECT patient, drug FROM prescriptions WHERE drug IN ('DH', 'DM') ORDER BY drug"}
	enf, err := e.Render(def, report.Consumer{Role: "analyst"})
	if err != nil {
		t.Fatal(err)
	}
	if enf.Table.NumRows() != 22 { // 20 DH + 2 DM
		t.Fatalf("rows = %d", enf.Table.NumRows())
	}
	maskedPatients, shownPatients := 0, 0
	for i := 0; i < enf.Table.NumRows(); i++ {
		drug := enf.Table.Get(i, "drug").S
		patient := enf.Table.Get(i, "patient").S
		if drug == "DH" { // HIV prescriptions: patient must be masked
			if patient != "***" {
				t.Errorf("HIV patient leaked: %q", patient)
			}
			maskedPatients++
		} else { // DM = diabetes: patient shown
			if patient == "***" {
				t.Error("non-HIV patient wrongly masked")
			}
			shownPatients++
		}
	}
	if maskedPatients != 20 || shownPatients != 2 {
		t.Errorf("masked=%d shown=%d", maskedPatients, shownPatients)
	}
	// Condition decisions carry evidence naming the failing source rows.
	evidenced := false
	for _, d := range enf.Decisions {
		if d.Rule == "condition" && len(d.Evidence) > 0 && strings.Contains(d.Evidence[0], "prescriptions#") {
			evidenced = true
		}
	}
	if !evidenced {
		t.Error("condition decisions lack provenance evidence")
	}
}

func TestReportClosedWorldDefaultDeny(t *testing.T) {
	e, _ := enforcerWith(t, `
pla "r" { owner "hospital"; level report; scope "rx-list";
    allow attribute drug to roles analyst;
}
pla "s" { owner "hospital"; level source; scope "prescriptions"; allow attribute drug; }
`)
	def := &report.Definition{ID: "rx-list",
		Query: "SELECT patient, drug FROM prescriptions WHERE drug = 'DM'"}
	enf, err := e.Render(def, report.Consumer{Role: "analyst"})
	if err != nil {
		t.Fatal(err)
	}
	// patient has no allow anywhere: masked by default (closed world).
	for i := 0; i < enf.Table.NumRows(); i++ {
		if enf.Table.Get(i, "patient").S != "***" {
			t.Error("closed world violated")
		}
	}
	found := false
	for _, d := range enf.Decisions {
		if d.Rule == "access-default-deny" {
			found = true
		}
	}
	if !found {
		t.Errorf("decisions = %v", enf.Decisions)
	}
}

func TestStaticCheckCatchesViolations(t *testing.T) {
	e, _ := enforcerWith(t, `
pla "s" { owner "hospital"; level source; scope "prescriptions";
    allow attribute *;
    aggregate min 5 by patient;
    forbid join with familydoctor;
}
`)
	// Non-aggregated report under a threshold rule: static violation.
	def := &report.Definition{ID: "raw-list",
		Query: "SELECT patient, drug FROM prescriptions"}
	ds, err := e.StaticCheck(def, "analyst", "")
	if err != nil {
		t.Fatal(err)
	}
	foundThreshold := false
	for _, d := range ds {
		if d.Rule == "aggregation-threshold" && d.Outcome == Block {
			foundThreshold = true
		}
	}
	if !foundThreshold {
		t.Errorf("static decisions = %v", ds)
	}
	// Forbidden join: static block, and Render returns an empty table.
	def2 := &report.Definition{ID: "joined",
		Query: "SELECT p.patient FROM prescriptions p JOIN familydoctor f ON p.patient = f.patient"}
	ds2, err := e.StaticCheck(def2, "analyst", "")
	if err != nil {
		t.Fatal(err)
	}
	foundJoin := false
	for _, d := range ds2 {
		if d.Rule == "join-permission" && d.Outcome == Block {
			foundJoin = true
		}
	}
	if !foundJoin {
		t.Errorf("static decisions = %v", ds2)
	}
	enf, err := e.Render(def2, report.Consumer{Role: "analyst"})
	if err != nil {
		t.Fatal(err)
	}
	if enf.Table.NumRows() != 0 {
		t.Error("blocked report must render empty")
	}
}

func TestStaticCompliantReportPasses(t *testing.T) {
	e, _ := enforcerWith(t, reportPLAs)
	def := &report.Definition{ID: "drug-consumption",
		Query: "SELECT drug, COUNT(*) AS consumption FROM prescriptions GROUP BY drug"}
	ds, err := e.StaticCheck(def, "analyst", "quality")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		if d.Outcome == Block {
			t.Errorf("unexpected block: %v", d)
		}
	}
}

// --- PLAGuard ---

func TestPLAGuard(t *testing.T) {
	reg := registryWith(t, `
pla "h" { owner "hospital"; level source; scope "prescriptions";
    forbid join with familydoctor;
    allow join with drugcost;
    forbid integration for municipality;
    allow integration for laboratory;
}
`)
	g := NewPLAGuard(reg)
	if err := g.CheckJoin("prescriptions", "familydoctor"); err == nil {
		t.Error("forbidden join must fail")
	}
	if err := g.CheckJoin("familydoctor", "prescriptions"); err == nil {
		t.Error("forbidden join must fail in both directions")
	}
	if err := g.CheckJoin("prescriptions", "drugcost"); err != nil {
		t.Errorf("allowed join failed: %v", err)
	}
	// Tables without any join rules are unconstrained.
	if err := g.CheckJoin("labresults", "residents"); err != nil {
		t.Errorf("unconstrained join failed: %v", err)
	}
	if err := g.CheckIntegration("prescriptions", "municipality"); err == nil {
		t.Error("forbidden integration must fail")
	}
	if err := g.CheckIntegration("prescriptions", "laboratory"); err != nil {
		t.Errorf("allowed integration failed: %v", err)
	}
}

func TestDecisionStringAndSummary(t *testing.T) {
	d := Decision{Outcome: Mask, Rule: "access-deny", Subject: "patient",
		PLAs: []string{"p1"}, Detail: "denied"}
	if s := d.String(); !strings.Contains(s, "mask") || !strings.Contains(s, "p1") {
		t.Errorf("String = %q", s)
	}
	sum := Summarize([]Decision{
		{Outcome: Permit}, {Outcome: Mask}, {Outcome: Mask},
		{Outcome: SuppressRow}, {Outcome: SuppressGroup}, {Outcome: Block},
	})
	if sum.Permitted != 1 || sum.Masked != 2 || sum.RowsOut != 1 || sum.GroupsOut != 1 || sum.Blocked != 1 {
		t.Errorf("summary = %+v", sum)
	}
}

func TestSourceReleaseRetention(t *testing.T) {
	reg := registryWith(t, `pla "h" { owner "hospital"; level source; scope "prescriptions";
		allow attribute *;
		retain 365 days;
	}`)
	e := &SourceEnforcer{Registry: reg,
		Now: time.Date(2008, 6, 1, 0, 0, 0, 0, time.UTC)}
	out, rep, err := e.Release(workload.PrescriptionsFixture())
	if err != nil {
		t.Fatal(err)
	}
	// Cutoff is 2007-06-02: the two early-2007 rows fall out of the
	// window; the later three remain.
	if out.NumRows() != 3 || out.Get(2, "date").String() != "2008-04-15" {
		t.Errorf("rows = %v", out.Rows)
	}
	if rep.RowsFiltered != 2 {
		t.Errorf("filtered = %d", rep.RowsFiltered)
	}
	found := false
	for _, d := range rep.Decisions {
		if d.Rule == "retention" {
			found = true
		}
	}
	if !found {
		t.Errorf("decisions = %v", rep.Decisions)
	}

	// Zero Now disables retention (deterministic replays).
	e2 := &SourceEnforcer{Registry: reg}
	out2, _, err := e2.Release(workload.PrescriptionsFixture())
	if err != nil {
		t.Fatal(err)
	}
	if out2.NumRows() != 5 {
		t.Errorf("retention should be disabled: %d rows", out2.NumRows())
	}

	// Custom retention column name.
	reg2 := registryWith(t, `pla "l" { owner "lab"; level source; scope "labresults";
		allow attribute *;
		retain 30 days;
	}`)
	lr := relation.NewBase("labresults", relation.NewSchema(
		relation.Col("patient", relation.TString),
		relation.Col("taken_on", relation.TDate),
	))
	lr.AppendVals(relation.Str("Alice"), relation.DateYMD(2008, 5, 20))
	lr.AppendVals(relation.Str("Bob"), relation.DateYMD(2008, 1, 1))
	e3 := &SourceEnforcer{Registry: reg2,
		Now:              time.Date(2008, 6, 1, 0, 0, 0, 0, time.UTC),
		RetentionColumns: map[string]string{"labresults": "taken_on"}}
	out3, _, err := e3.Release(lr)
	if err != nil {
		t.Fatal(err)
	}
	if out3.NumRows() != 1 || out3.Get(0, "patient").S != "Alice" {
		t.Errorf("rows = %v", out3.Rows)
	}
}

// TestRewriteConditionBecomesFilter verifies the VPD reading of the §5
// HIV example: an allow-with-condition turns into a WHERE conjunct, so
// the rewritten query cannot return rows violating the condition.
func TestRewriteConditionBecomesFilter(t *testing.T) {
	cat, _ := fixtureCatalogAndTracer()
	reg := registryWith(t, `pla "h" { owner "hospital"; level source; scope "prescriptions";
		allow attribute drug;
		allow attribute patient when disease <> 'HIV';
	}`)
	rw := NewQueryRewriter(reg, cat)
	out, decisions, err := rw.RewriteSQL("SELECT patient, drug FROM prescriptions", "analyst", "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "WHERE") || !strings.Contains(out, "HIV") {
		t.Fatalf("condition not folded into WHERE: %q", out)
	}
	res, err := cat.Query(out)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 3 { // the two HIV rows are gone
		t.Errorf("rows = %d\n%s", res.NumRows(), res)
	}
	found := false
	for _, d := range decisions {
		if d.Rule == "condition-filter" {
			found = true
		}
	}
	if !found {
		t.Errorf("decisions = %v", decisions)
	}

	// A condition over columns the queried table lacks masks the
	// attribute conservatively instead of silently passing.
	reg2 := registryWith(t, `pla "c" { owner "agency"; level source; scope "drugcost";
		allow attribute drug;
		allow attribute cost when hivstatus <> 'positive';
	}`)
	rw2 := NewQueryRewriter(reg2, cat)
	out2, decisions2, err := rw2.RewriteSQL("SELECT drug, cost FROM drugcost", "analyst", "")
	if err != nil {
		t.Fatal(err)
	}
	res2, err := cat.Query(out2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < res2.NumRows(); i++ {
		if res2.Get(i, "cost").S != "***" {
			t.Errorf("unresolvable condition must mask: %v", res2.Rows[i])
		}
	}
	foundUnres := false
	for _, d := range decisions2 {
		if d.Rule == "condition-unresolvable" {
			foundUnres = true
		}
	}
	if !foundUnres {
		t.Errorf("decisions = %v", decisions2)
	}
}

// TestRewriteStarDoesNotBypassMasking: SELECT * must be expanded and
// masked like explicit column lists.
func TestRewriteStarDoesNotBypassMasking(t *testing.T) {
	cat, _ := fixtureCatalogAndTracer()
	reg := registryWith(t, `pla "h" { owner "hospital"; level source; scope "prescriptions";
		allow attribute *;
		deny attribute disease to roles analyst;
	}`)
	rw := NewQueryRewriter(reg, cat)
	out, _, err := rw.RewriteSQL("SELECT * FROM prescriptions", "analyst", "")
	if err != nil {
		t.Fatal(err)
	}
	res, err := cat.Query(out)
	if err != nil {
		t.Fatalf("rewritten %q: %v", out, err)
	}
	if res.Schema.Len() != 5 {
		t.Fatalf("expanded schema = %s", res.Schema)
	}
	for i := 0; i < res.NumRows(); i++ {
		if res.Get(i, "disease").S != "***" {
			t.Fatalf("SELECT * leaked disease: %v", res.Rows[i])
		}
		if res.Get(i, "patient").S == "***" {
			t.Fatal("allowed column wrongly masked")
		}
	}
}

// TestViewManager exercises the §3 view-based access-control mechanism:
// base tables stay private, consumers query per-role views that embody
// the PLA rewriting — and newly inserted rows are covered automatically.
func TestViewManager(t *testing.T) {
	cat, _ := fixtureCatalogAndTracer()
	reg := registryWith(t, `pla "h" { owner "hospital"; level source; scope "prescriptions";
		allow attribute *;
		deny attribute disease to roles analyst;
		filter when drug <> 'DM';
	}`)
	m := NewViewManager(reg, cat)
	name, decisions, err := m.CreateRoleView("prescriptions", "analyst", "")
	if err != nil {
		t.Fatal(err)
	}
	if name != "prescriptions__analyst" {
		t.Errorf("name = %q", name)
	}
	if len(decisions) < 2 { // row filter + disease mask
		t.Errorf("decisions = %v", decisions)
	}
	res, err := cat.Query("SELECT * FROM " + name)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 4 { // DM row filtered
		t.Fatalf("rows = %d", res.NumRows())
	}
	for i := 0; i < res.NumRows(); i++ {
		if res.Get(i, "disease").S != "***" {
			t.Error("disease leaked through view")
		}
	}
	// New rows are covered without re-creating the view.
	base, _ := cat.Table("prescriptions")
	base.AppendVals(relation.Str("Dana"), relation.Str("Luis"), relation.Str("DH"),
		relation.Str("HIV"), relation.DateYMD(2008, 6, 1))
	res2, err := cat.Query("SELECT * FROM " + name)
	if err != nil {
		t.Fatal(err)
	}
	if res2.NumRows() != 5 {
		t.Errorf("new row not visible through view: %d", res2.NumRows())
	}
	if res2.Get(4, "disease").S != "***" {
		t.Error("new row's disease leaked")
	}

	// Bulk creation covers all tables; none blocked here.
	views, blocked, err := m.CreateRoleViews("analyst", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 3 || len(blocked) != 0 {
		t.Errorf("views = %v blocked = %v", views, blocked)
	}
	if _, _, err := m.CreateRoleView("ghost", "analyst", ""); err == nil {
		t.Error("unknown table must fail")
	}
}
