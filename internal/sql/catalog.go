package sql

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"plabi/internal/relation"
)

// ErrUnknownTable is the sentinel wrapped by every "no such table or
// view" failure, so callers can errors.Is across the whole stack.
var ErrUnknownTable = errors.New("unknown table or view")

// Catalog is a thread-safe namespace of base tables and views against which
// statements execute.
type Catalog struct {
	mu     sync.RWMutex
	gen    atomic.Uint64
	tables map[string]*relation.Table
	views  map[string]*SelectStmt
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		tables: map[string]*relation.Table{},
		views:  map[string]*SelectStmt{},
	}
}

// Generation returns a counter that increases on every catalog mutation
// (table or view registration/removal). Plan and decision caches key on it
// to invalidate when the schema landscape changes.
func (c *Catalog) Generation() uint64 { return c.gen.Load() }

// Register adds or replaces a base table under its own name.
func (c *Catalog) Register(t *relation.Table) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tables[strings.ToLower(t.Name)] = t
	c.gen.Add(1)
}

// RegisterView adds or replaces a named view.
func (c *Catalog) RegisterView(name string, sel *SelectStmt) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.views[strings.ToLower(name)] = sel
	c.gen.Add(1)
}

// DropView removes a view if present.
func (c *Catalog) DropView(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.views, strings.ToLower(name))
	c.gen.Add(1)
}

// Table returns the base table with the given name.
func (c *Catalog) Table(name string) (*relation.Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[strings.ToLower(name)]
	return t, ok
}

// View returns the view definition with the given name.
func (c *Catalog) View(name string) (*SelectStmt, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.views[strings.ToLower(name)]
	return v, ok
}

// TableNames returns the sorted base-table names.
func (c *Catalog) TableNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ViewNames returns the sorted view names.
func (c *Catalog) ViewNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.views))
	for n := range c.views {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// resolve returns the relation for a FROM-clause name: a base table
// directly, or the materialization of a view. Views may reference other
// views; cycles are detected.
func (c *Catalog) resolve(name string, seen map[string]bool) (*relation.Table, error) {
	key := strings.ToLower(name)
	if t, ok := c.Table(key); ok {
		return t, nil
	}
	if v, ok := c.View(key); ok {
		if seen[key] {
			return nil, fmt.Errorf("sql: view cycle through %q", name)
		}
		seen[key] = true
		t, err := c.exec(v, seen)
		if err != nil {
			return nil, fmt.Errorf("sql: view %q: %w", name, err)
		}
		seen[key] = false
		t.Name = key
		return t, nil
	}
	return nil, fmt.Errorf("sql: %w %q", ErrUnknownTable, name)
}

// Exec executes a statement. SELECT returns its result table; CREATE VIEW
// registers the view and returns nil.
func (c *Catalog) Exec(stmt Statement) (*relation.Table, error) {
	switch s := stmt.(type) {
	case *SelectStmt:
		return c.exec(s, map[string]bool{})
	case *CreateViewStmt:
		c.RegisterView(s.Name, s.Select)
		return nil, nil
	default:
		return nil, fmt.Errorf("sql: unsupported statement %T", stmt)
	}
}

// Query parses and executes a SELECT, returning its result.
func (c *Catalog) Query(src string) (*relation.Table, error) {
	sel, err := ParseSelect(src)
	if err != nil {
		return nil, err
	}
	return c.exec(sel, map[string]bool{})
}

// Run parses and executes any statement.
func (c *Catalog) Run(src string) (*relation.Table, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return c.Exec(stmt)
}
