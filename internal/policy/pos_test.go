package policy

import (
	"encoding/json"
	"testing"
)

const posDoc = `# leading comment
pla "first" {
    owner "hospital"; level source; scope "prescriptions";
    allow attribute drug;
    deny attribute disease;
    aggregate min 5 by patient;
    anonymize attribute patient using pseudonym;
    forbid join with familydoctor;
    forbid integration for municipality;
    retain 730 days;
    filter when disease <> 'HIV';
    release kanonymity 5 quasi age, zip;
}
`

func TestParseFileNamedPositions(t *testing.T) {
	plas, err := ParseFileNamed("doc.pla", posDoc)
	if err != nil {
		t.Fatal(err)
	}
	p := plas[0]
	if got := p.Pos.String(); got != "doc.pla:2:1" {
		t.Errorf("PLA pos = %q, want doc.pla:2:1", got)
	}
	checks := []struct {
		what string
		pos  Pos
		want string
	}{
		{"access[0]", p.Access[0].Pos, "doc.pla:4:5"},
		{"access[1]", p.Access[1].Pos, "doc.pla:5:5"},
		{"aggregation", p.Aggregations[0].Pos, "doc.pla:6:5"},
		{"anonymize", p.Anonymize[0].Pos, "doc.pla:7:5"},
		{"join", p.Joins[0].Pos, "doc.pla:8:5"},
		{"integration", p.Integrations[0].Pos, "doc.pla:9:5"},
		{"retention", p.Retention.Pos, "doc.pla:10:5"},
		{"filter", p.Filters[0].Pos, "doc.pla:11:5"},
		{"release", p.Release[0].Pos, "doc.pla:12:5"},
	}
	for _, c := range checks {
		if got := c.pos.String(); got != c.want {
			t.Errorf("%s pos = %q, want %q", c.what, got, c.want)
		}
	}
}

func TestParseFileAnonymousPositions(t *testing.T) {
	// ParseFile keeps working without a filename: positions carry only
	// line and column.
	plas, err := ParseFile(posDoc)
	if err != nil {
		t.Fatal(err)
	}
	if got := plas[0].Pos.String(); got != "2:1" {
		t.Errorf("PLA pos = %q, want 2:1", got)
	}
}

func TestPosString(t *testing.T) {
	if got := (Pos{}).String(); got != "" {
		t.Errorf("zero pos = %q, want empty", got)
	}
	if (Pos{}).IsValid() {
		t.Error("zero pos is valid")
	}
	if got := (Pos{Line: 3, Col: 7}).String(); got != "3:7" {
		t.Errorf("fileless pos = %q", got)
	}
}

func TestParseErrorCarriesPosition(t *testing.T) {
	_, err := ParseFileNamed("bad.pla", "pla \"x\" {\n    bogus clause;\n}")
	if err == nil {
		t.Fatal("expected parse error")
	}
	if want := "bad.pla:2:5"; !contains(err.Error(), want) {
		t.Errorf("error %q does not carry position %s", err, want)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestJSONRoundTripIgnoresPos: positions are a parse-time artifact and
// must not leak into the stable JSON representation.
func TestJSONRoundTripIgnoresPos(t *testing.T) {
	plas, err := ParseFileNamed("doc.pla", posDoc)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(plas[0])
	if err != nil {
		t.Fatal(err)
	}
	var back PLA
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Pos.IsValid() || (len(back.Access) > 0 && back.Access[0].Pos.IsValid()) {
		t.Error("positions survived the JSON round trip")
	}
	if back.String() != plas[0].String() {
		t.Errorf("round trip changed the agreement:\n%s\nvs\n%s", back.String(), plas[0].String())
	}
}

// TestForScopeDeterministicOrder: composition order is sorted by PLA id
// regardless of registration order, so conflict attribution and cache
// keys are stable run to run.
func TestForScopeDeterministicOrder(t *testing.T) {
	mk := func(id string) *PLA {
		return &PLA{ID: id, Owner: "o", Level: LevelSource, Scope: "t",
			Access: []AccessRule{{Effect: Allow, Attribute: "a"}}}
	}
	for _, order := range [][]string{{"zeta", "alpha", "mid"}, {"mid", "zeta", "alpha"}} {
		reg := NewRegistry()
		for _, id := range order {
			if err := reg.Add(mk(id)); err != nil {
				t.Fatal(err)
			}
		}
		comp := reg.ForScope(LevelSource, "t")
		var ids []string
		for _, p := range comp.PLAs {
			ids = append(ids, p.ID)
		}
		want := []string{"alpha", "mid", "zeta"}
		for i := range want {
			if ids[i] != want[i] {
				t.Fatalf("order %v composed as %v, want %v", order, ids, want)
			}
		}
	}
}
