package provenance

import (
	"strings"
	"testing"

	"plabi/internal/relation"
)

func fixtures() (*relation.Table, *relation.Table, *Tracer) {
	p := relation.NewBase("prescriptions", relation.NewSchema(
		relation.Col("patient", relation.TString),
		relation.Col("drug", relation.TString),
		relation.Col("disease", relation.TString),
	))
	p.AppendVals(relation.Str("Alice"), relation.Str("DH"), relation.Str("HIV"))
	p.AppendVals(relation.Str("Bob"), relation.Str("DR"), relation.Str("asthma"))
	p.AppendVals(relation.Str("Alice"), relation.Str("DR"), relation.Str("asthma"))

	c := relation.NewBase("drugcost", relation.NewSchema(
		relation.Col("drug", relation.TString),
		relation.Col("cost", relation.TInt),
	))
	c.AppendVals(relation.Str("DH"), relation.Int(60))
	c.AppendVals(relation.Str("DR"), relation.Int(10))

	tr := NewTracer()
	tr.RegisterBase(p)
	tr.RegisterBase(c)
	return p, c, tr
}

func TestTraceCellThroughJoin(t *testing.T) {
	p, c, tr := fixtures()
	j, err := relation.Join(relation.Rename(p, "p"), relation.Rename(c, "c"),
		relation.Eq(relation.ColRefExpr("p.drug"), relation.ColRefExpr("c.drug")), relation.InnerJoin)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := tr.TraceCell(j, 0, "c.cost")
	if err != nil {
		t.Fatal(err)
	}
	if ct.Value.I != 60 {
		t.Errorf("value = %v", ct.Value)
	}
	// The cost cell must trace to drugcost#0.cost only.
	if len(ct.Cells) != 1 || ct.Cells[0].Table != "drugcost" || ct.Cells[0].Column != "cost" || ct.Cells[0].Value.I != 60 {
		t.Errorf("cells = %v", ct.Cells)
	}
	if !strings.Contains(ct.String(), "drugcost#0.cost=60") {
		t.Errorf("String = %s", ct.String())
	}
}

func TestTraceAggregateRow(t *testing.T) {
	p, _, tr := fixtures()
	g, err := relation.GroupBy(p, []string{"disease"}, []relation.AggSpec{{Kind: relation.AggCount}})
	if err != nil {
		t.Fatal(err)
	}
	var asthmaRow = -1
	for i := range g.Rows {
		if g.Get(i, "disease").S == "asthma" {
			asthmaRow = i
		}
	}
	rt, err := tr.TraceRow(g, asthmaRow)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Support["prescriptions"] != 2 {
		t.Errorf("support = %v", rt.Support)
	}
	// Distinct patients behind the asthma group: Bob and Alice.
	if n := tr.DistinctSupport(rt, "prescriptions", "patient"); n != 2 {
		t.Errorf("distinct patients = %d", n)
	}
	// Distinct drugs behind the asthma group: only DR.
	if n := tr.DistinctSupport(rt, "prescriptions", "drug"); n != 1 {
		t.Errorf("distinct drugs = %d", n)
	}
}

func TestTraceErrors(t *testing.T) {
	p, _, tr := fixtures()
	if _, err := tr.TraceCell(p, 0, "ghost"); err == nil {
		t.Error("expected unknown column error")
	}
	if _, err := tr.TraceCell(p, 99, "patient"); err == nil {
		t.Error("expected out of range error")
	}
	if _, err := tr.TraceRow(p, -1); err == nil {
		t.Error("expected out of range error")
	}
}

func TestBaseValue(t *testing.T) {
	_, _, tr := fixtures()
	v, ok := tr.BaseValue(relation.RowRef{Table: "prescriptions", Row: 1}, "patient")
	if !ok || v.S != "Bob" {
		t.Errorf("BaseValue = %v, %v", v, ok)
	}
	if _, ok := tr.BaseValue(relation.RowRef{Table: "nope", Row: 0}, "x"); ok {
		t.Error("unknown table must not resolve")
	}
}

func TestGraphUpstream(t *testing.T) {
	g := NewGraph()
	g.AddStep("extract", []string{"hospital.prescriptions"}, "staging.prescriptions", "", 100, 100)
	g.AddStep("clean", []string{"staging.prescriptions"}, "staging.prescriptions_clean", "trim names", 100, 98)
	g.AddStep("extract", []string{"pharma.drugcost"}, "staging.drugcost", "", 10, 10)
	g.AddStep("join", []string{"staging.prescriptions_clean", "staging.drugcost"}, "dwh.fact_prescription", "", 98, 98)
	g.AddStep("aggregate", []string{"dwh.fact_prescription"}, "report.drug_consumption", "", 98, 4)

	up := g.Upstream("report.drug_consumption")
	if len(up) != 5 {
		t.Fatalf("upstream steps = %d", len(up))
	}
	srcs := g.SourceTables("report.drug_consumption")
	if len(srcs) != 2 || srcs[0] != "hospital.prescriptions" || srcs[1] != "pharma.drugcost" {
		t.Errorf("sources = %v", srcs)
	}
	exp := g.Explain("report.drug_consumption")
	if !strings.Contains(exp, "join") || !strings.Contains(exp, "aggregate") {
		t.Errorf("explain = %s", exp)
	}
}

func TestGraphUpstreamPartial(t *testing.T) {
	g := NewGraph()
	g.AddStep("extract", []string{"a"}, "b", "", 1, 1)
	g.AddStep("extract", []string{"x"}, "y", "", 1, 1)
	up := g.Upstream("b")
	if len(up) != 1 || up[0].Op != "extract" || up[0].Inputs[0] != "a" {
		t.Errorf("upstream = %v", up)
	}
	if got := g.Explain("unknown"); !strings.Contains(got, "base relation") {
		t.Errorf("explain unknown = %s", got)
	}
}
