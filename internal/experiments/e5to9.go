package experiments

import (
	"fmt"
	"math"
	"time"

	"plabi/internal/anon"
	"plabi/internal/core"
	"plabi/internal/elicit"
	"plabi/internal/etl"
	"plabi/internal/metareport"
	"plabi/internal/policy"
	"plabi/internal/relation"
	"plabi/internal/report"
	"plabi/internal/sql"
	"plabi/internal/workload"
)

func parseExprOrDie(src string) (relation.Expr, error) { return sql.ParseExpr(src) }

// E5Continuum regenerates Fig. 5: per level, ease of elicitation (initial
// campaign) and stability (under 200 seeded evolution events), across
// portfolio sizes.
func E5Continuum() (*Result, error) {
	res := &Result{}
	res.addf("%-9s %-11s %-8s %-7s %-8s %-10s %-11s %s",
		"reports", "level", "vocab", "atoms", "ease", "stability", "re-elicits", "over-eng")
	for _, nReports := range []int{10, 25, 50, 100} {
		s, err := elicit.BuildHealthcareScenario(42, nReports)
		if err != nil {
			return nil, err
		}
		costs, err := elicit.MeasureCosts(s)
		if err != nil {
			return nil, err
		}
		stab, err := elicit.SimulateEvolution(s, 200, nil)
		if err != nil {
			return nil, err
		}
		for i, c := range costs {
			res.addf("%-9d %-11s %-8d %-7d %-8.4f %-10.3f %-11d %.3f",
				nReports, c.Level, c.Vocabulary, c.Atoms, c.Ease,
				stab[i].Stability, stab[i].Reelicitations, c.OverEngineering)
		}
		// Shape assertions (the paper's Fig. 5 arrows).
		for i := 1; i < 4; i++ {
			if costs[i].Ease < costs[i-1].Ease {
				return nil, fmt.Errorf("E5: ease not monotonic at %d reports", nReports)
			}
			if stab[i].Stability > stab[i-1].Stability+1e-9 {
				return nil, fmt.Errorf("E5: stability not monotonic at %d reports", nReports)
			}
		}
	}
	res.addf("claim check: ease increases and stability decreases monotonically source->warehouse->meta-report->report; meta-reports sit between -> PASS")
	return res, nil
}

// E6OverEngineering isolates the §3 over-engineering claim: the fraction
// of elicited PLA atoms covering data no report ever uses, per level.
func E6OverEngineering() (*Result, error) {
	res := &Result{}
	res.addf("%-9s %-11s %-7s %-8s %s", "reports", "level", "atoms", "unused", "over-engineering")
	for _, nReports := range []int{10, 25, 50} {
		s, err := elicit.BuildHealthcareScenario(42, nReports)
		if err != nil {
			return nil, err
		}
		costs, err := elicit.MeasureCosts(s)
		if err != nil {
			return nil, err
		}
		for _, c := range costs {
			res.addf("%-9d %-11s %-7d %-8d %.3f", nReports, c.Level, c.Atoms, c.UnusedAtoms, c.OverEngineering)
		}
		if costs[0].OverEngineering <= costs[2].OverEngineering {
			return nil, fmt.Errorf("E6: source should over-engineer more than meta-reports")
		}
		if costs[3].OverEngineering != 0 {
			return nil, fmt.Errorf("E6: report level must not over-engineer")
		}
	}
	res.addf("claim check: over-engineering highest at source, zero at reports -> PASS")
	return res, nil
}

// e7TruePLAs is the ground-truth agreement for the fault-injection study.
const e7TruePLAs = `
pla "true" {
    owner "hospital"; level metareport; scope "meta-rx";
    allow attribute drug;
    allow attribute date;
    deny attribute doctor;
    allow attribute patient when disease <> 'HIV';
    aggregate min 5 by patient;
    filter when disease <> 'hepatitis';
}
`

// e7Bug builds the sabotaged variant of the true PLAs for one bug class.
func e7Bug(class string) (string, error) {
	switch class {
	case "dropped-filter":
		return `pla "true" { owner "hospital"; level metareport; scope "meta-rx";
			allow attribute drug; allow attribute date; deny attribute doctor;
			allow attribute patient when disease <> 'HIV';
			aggregate min 5 by patient; }`, nil
	case "missing-mask":
		return `pla "true" { owner "hospital"; level metareport; scope "meta-rx";
			allow attribute drug; allow attribute date; allow attribute doctor;
			allow attribute patient when disease <> 'HIV';
			aggregate min 5 by patient; filter when disease <> 'hepatitis'; }`, nil
	case "threshold-off-by-one":
		return `pla "true" { owner "hospital"; level metareport; scope "meta-rx";
			allow attribute drug; allow attribute date; deny attribute doctor;
			allow attribute patient when disease <> 'HIV';
			aggregate min 4 by patient; filter when disease <> 'hepatitis'; }`, nil
	case "condition-inversion":
		return `pla "true" { owner "hospital"; level metareport; scope "meta-rx";
			allow attribute drug; allow attribute date; deny attribute doctor;
			allow attribute patient when disease = 'HIV';
			aggregate min 5 by patient; filter when disease <> 'hepatitis'; }`, nil
	default:
		return "", fmt.Errorf("unknown bug class %q", class)
	}
}

// E7TestGeneration measures the detection rate of PLA-derived compliance
// suites (generated from the TRUE agreements) against implementations
// sabotaged with six bug classes, across 20 seeded trials each.
func E7TestGeneration() (*Result, error) {
	res := &Result{}
	classes := []string{"dropped-filter", "missing-mask", "threshold-off-by-one",
		"condition-inversion", "forbidden-join", "integration-misuse"}
	const trials = 20
	res.addf("%-22s %-9s %s", "bug class", "detected", "rate")
	totalDetected, total := 0, 0
	for _, class := range classes {
		detected := 0
		for trial := 0; trial < trials; trial++ {
			ok, err := e7Trial(class, int64(trial))
			if err != nil {
				return nil, fmt.Errorf("class %s trial %d: %w", class, trial, err)
			}
			if ok {
				detected++
			}
		}
		totalDetected += detected
		total += trials
		res.addf("%-22s %2d/%-6d %.2f", class, detected, trials, float64(detected)/trials)
	}
	res.addf("overall detection rate: %.3f (pre-deployment, no production data exposed)", float64(totalDetected)/float64(total))
	if float64(totalDetected)/float64(total) < 0.9 {
		return nil, fmt.Errorf("E7: detection rate below 0.9")
	}
	return res, nil
}

// e7Trial runs one fault-injection trial; reports whether the suite
// caught the bug.
func e7Trial(class string, seed int64) (bool, error) {
	cfg := workload.DefaultConfig(seed*31 + 5)
	cfg.Patients, cfg.Prescriptions, cfg.LabResults = 80, 600, 50
	ds, err := workload.Generate(cfg)
	if err != nil {
		return false, err
	}

	mkEngine := func(plas string) (*core.Engine, error) {
		e := core.New()
		e.AddSource(etl.NewSource("hospital", "hospital", ds.Prescriptions))
		e.AddSource(etl.NewSource("familydoctors", "familydoctors", ds.FamilyDoctor))
		if err := e.AddPLAs(plas + `
pla "src" { owner "hospital"; level source; scope "prescriptions"; allow attribute *; }`); err != nil {
			return nil, err
		}
		return e, nil
	}
	consumer := report.Consumer{Role: "analyst", Purpose: "quality"}

	switch class {
	case "forbidden-join":
		// The TRUE policy forbids prescriptions ⋈ familydoctor; the buggy
		// implementation performed the join anyway. The generated join
		// test inspects the produced lineage.
		truth, err := mkEngine(e7TruePLAs + `
pla "join" { owner "hospital"; level source; scope "familydoctor";
	forbid join with prescriptions; allow attribute *; }`)
		if err != nil {
			return false, err
		}
		def := &report.Definition{ID: "linked",
			Query: "SELECT p.patient, f.doctor FROM prescriptions p JOIN familydoctor f ON p.patient = f.patient"}
		if err := truth.DefineReport(def); err != nil {
			return false, err
		}
		tests, err := truth.ComplianceSuite("linked", consumer)
		if err != nil {
			return false, err
		}
		// Buggy output: the raw join result.
		raw, err := def.Render(truth.Catalog)
		if err != nil {
			return false, err
		}
		return len(metareport.RunTests(tests, raw)) > 0, nil

	case "integration-misuse":
		// The TRUE policy forbids hospital data cleaning municipality's;
		// the buggy ETL ran the resolution anyway. Detection audits the
		// transformation graph against the policy.
		truth, err := mkEngine(e7TruePLAs + `
pla "integ" { owner "hospital"; level source; scope "prescriptions2";
	forbid integration for municipality; }`)
		if err != nil {
			return false, err
		}
		_ = truth
		reg := truth.Policies
		// Simulate the buggy run's graph record.
		g := truth.Graph
		g.AddStep("entity-resolution", []string{"prescriptions2", "residents"}, "resolved",
			"beneficiary=municipality", 100, 100)
		// Audit: every entity-resolution step's donor must permit the
		// beneficiary.
		for _, s := range g.Steps() {
			if s.Op != "entity-resolution" {
				continue
			}
			donor := s.Inputs[0]
			comp := reg.ForScope(policy.LevelSource, donor)
			if ok, _ := comp.IntegrationAllowed("municipality"); !ok {
				return true, nil // detected
			}
		}
		return false, nil

	default:
		buggyPLAs, err := e7Bug(class)
		if err != nil {
			return false, err
		}
		truth, err := mkEngine(e7TruePLAs)
		if err != nil {
			return false, err
		}
		buggy, err := mkEngine(buggyPLAs + `
`)
		if err != nil {
			return false, err
		}
		var def *report.Definition
		if class == "threshold-off-by-one" {
			def = &report.Definition{ID: "r",
				Query: "SELECT drug, COUNT(*) AS n FROM prescriptions GROUP BY drug"}
		} else {
			def = &report.Definition{ID: "r",
				Query: "SELECT patient, doctor, drug, date FROM prescriptions"}
		}
		if err := truth.DefineReport(def); err != nil {
			return false, err
		}
		if err := buggy.DefineReport(def); err != nil {
			return false, err
		}
		// Only the truth engine knows the report is covered by meta-rx:
		// the compliance suite is generated from the meta scope, while the
		// buggy deployment renders without that wiring — the tests must
		// catch the discrepancy from the output alone.
		truth.SetAssignment(def.ID, "meta-rx")
		tests, err := truth.ComplianceSuite(def.ID, consumer)
		if err != nil {
			return false, err
		}
		enf, err := buggy.Render(def.ID, consumer)
		if err != nil {
			return false, err
		}
		return len(metareport.RunTests(tests, enf.Table)) > 0, nil
	}
}

// E8Anonymization measures the Fig. 2a release filter: k-anonymity and
// l-diversity guarantees versus the error they induce in the aggregate
// drug-consumption report, plus perturbation's aggregate preservation.
func E8Anonymization() (*Result, error) {
	res := &Result{}
	cfg := workload.DefaultConfig(42)
	cfg.Patients, cfg.Prescriptions = 10000, 10000
	ds, err := workload.Generate(cfg)
	if err != nil {
		return nil, err
	}

	// Join prescriptions with residents demographics (QI source).
	joined, err := relation.Join(relation.Rename(ds.Prescriptions, "p"), relation.Rename(ds.Residents, "r"),
		relation.Eq(relation.ColRefExpr("p.patient"), relation.ColRefExpr("r.patient")), relation.InnerJoin)
	if err != nil {
		return nil, err
	}
	wide, err := relation.Project(joined, relation.P("p.patient"), relation.P("p.drug"),
		relation.P("p.disease"), relation.P("r.age"), relation.P("r.zip"))
	if err != nil {
		return nil, err
	}
	if unq, uerr := wide.Schema.Unqualify(); uerr == nil {
		wide.Schema = unq
	}
	wide.Name = "wide"

	baseline := drugCounts(wide)
	res.addf("%-6s %-4s %-10s %-12s %-14s %s", "k", "l", "rows-out", "suppressed", "agg-error(%)", "k-check/l-check")
	for _, k := range []int{2, 5, 10, 25} {
		for _, l := range []int{0, 2, 3} {
			ld, _, err := anon.KAnonymize(wide, k, []string{"age", "zip"})
			if err != nil {
				return nil, err
			}
			if l > 0 {
				ld, _, err = anon.EnforceLDiversity(ld, l, []string{"age", "zip"}, "disease")
				if err != nil {
					return nil, err
				}
			}
			okK, _, err := anon.CheckKAnonymity(ld, k, []string{"age", "zip"})
			if err != nil {
				return nil, err
			}
			okL := true
			if l > 0 {
				okL, err = anon.CheckLDiversity(ld, l, []string{"age", "zip"}, "disease")
				if err != nil {
					return nil, err
				}
			}
			errPct := aggError(baseline, drugCounts(ld))
			res.addf("%-6d %-4d %-10d %-12d %-14.2f %v/%v", k, l, ld.NumRows(), wide.NumRows()-ld.NumRows(), errPct, okK, okL)
			if !okK || !okL {
				return nil, fmt.Errorf("E8: guarantee violated at k=%d l=%d", k, l)
			}
		}
	}

	// Perturbation preserves the aggregate exactly (zero-sum noise).
	costT := ds.DrugCost
	perturbed, err := anon.PerturbColumn(costT, "cost", 20, 99)
	if err != nil {
		return nil, err
	}
	var sumBefore, sumAfter, changed float64
	for i := 0; i < costT.NumRows(); i++ {
		b, _ := costT.Get(i, "cost").AsFloat()
		a, _ := perturbed.Get(i, "cost").AsFloat()
		sumBefore += b
		sumAfter += a
		if a != b {
			changed++
		}
	}
	res.addf("perturbation (±20%% noise): %.0f%% of values changed, total cost %.0f -> %.0f (drift %.2f%%)",
		100*changed/float64(costT.NumRows()), sumBefore, sumAfter,
		100*math.Abs(sumAfter-sumBefore)/sumBefore)
	return res, nil
}

func drugCounts(t *relation.Table) map[string]int64 {
	out := map[string]int64{}
	ci := t.Schema.Index("drug")
	for _, r := range t.Rows {
		out[r[ci].S]++
	}
	return out
}

// aggError computes the mean absolute percentage error of the anonymized
// aggregate against the baseline.
func aggError(base, got map[string]int64) float64 {
	var sum float64
	var n int
	for _, k := range sortedKeys(base) {
		b := base[k]
		if b == 0 {
			continue
		}
		sum += math.Abs(float64(got[k]-b)) / float64(b)
		n++
	}
	if n == 0 {
		return 0
	}
	return 100 * sum / float64(n)
}

// E9Placement compares the runtime overhead of the three enforcement
// placements on identical query workloads: source-level VPD rewriting,
// plain warehouse queries guarded at ETL time, and report-level cell
// enforcement.
func E9Placement() (*Result, error) {
	res := &Result{}
	res.addf("%-8s %-24s %-12s %s", "facts", "placement", "time/query", "result-rows")
	for _, n := range []int{1000, 10000, 100000} {
		cfg := workload.DefaultConfig(42)
		cfg.Prescriptions = n
		cfg.Patients = n / 10
		e, _, err := core.BuildHealthcareEngine(cfg)
		if err != nil {
			return nil, err
		}
		queries := []string{
			"SELECT drug, COUNT(*) AS consumption FROM rx_wide GROUP BY drug",
			"SELECT disease, YEAR(date) AS yr, COUNT(*) AS n FROM rx_wide GROUP BY disease, YEAR(date)",
			"SELECT drug, SUM(cost) AS spend FROM rx_wide GROUP BY drug",
		}
		// Each placement is timed as the best of three rounds to damp GC
		// noise; the reported figure is per query.
		const rounds = 3
		minOf := func(run func() (int, error)) (time.Duration, int, error) {
			best := time.Duration(0)
			rows := 0
			for r := 0; r < rounds; r++ {
				start := time.Now()
				n, err := run()
				if err != nil {
					return 0, 0, err
				}
				d := time.Since(start)
				if r == 0 || d < best {
					best = d
				}
				rows = n
			}
			return best / time.Duration(len(queries)), rows, nil
		}

		// (a) Source-level: rewrite then execute.
		rw := e.QueryRewriter()
		durA, rowsA, err := minOf(func() (int, error) {
			rows := 0
			for _, q := range queries {
				out, _, err := rw.RewriteSQL(q, "analyst", "quality")
				if err != nil {
					return 0, err
				}
				if out == "" {
					continue
				}
				t, err := e.Catalog.Query(out)
				if err != nil {
					return 0, err
				}
				rows += t.NumRows()
			}
			return rows, nil
		})
		if err != nil {
			return nil, err
		}

		// (b) Warehouse-level: raw execution (joins were guarded at ETL
		// time; per-query cost is the baseline).
		durB, rowsB, err := minOf(func() (int, error) {
			rows := 0
			for _, q := range queries {
				t, err := e.Catalog.Query(q)
				if err != nil {
					return 0, err
				}
				rows += t.NumRows()
			}
			return rows, nil
		})
		if err != nil {
			return nil, err
		}

		// (c) Report-level: full cell enforcement with provenance.
		enfc := e.Enforcer()
		durC, rowsC, err := minOf(func() (int, error) {
			rows := 0
			for i, q := range queries {
				def := &report.Definition{ID: fmt.Sprintf("e9-%d", i), Query: q}
				enf, err := enfc.Render(def, report.Consumer{Role: "analyst", Purpose: "quality"})
				if err != nil {
					return 0, err
				}
				rows += enf.Table.NumRows()
			}
			return rows, nil
		})
		if err != nil {
			return nil, err
		}

		res.addf("%-8d %-24s %-12s %d", n, "source-rewrite (VPD)", durA, rowsA)
		res.addf("%-8d %-24s %-12s %d", n, "warehouse (ETL-guarded)", durB, rowsB)
		res.addf("%-8d %-24s %-12s %d", n, "report-cell (provenance)", durC, rowsC)
	}
	res.addf("trade-off: warehouse placement is cheapest per query (checks paid at load time); report-level pays per-cell provenance but needs no source cooperation — the engineering face of Fig. 5")
	return res, nil
}
