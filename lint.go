package plabi

import (
	"fmt"
	"io"
	"os"

	"plabi/internal/lint"
	"plabi/internal/policy"
)

// Static analysis ("plalint"): the paper's pre-deployment compliance
// check (§5). Lint walks the whole engine state — agreements, catalog,
// reports, meta-report assignments and recorded ETL plans — and proves
// properties about the deployment without executing any data flow.
// Findings carry stable codes (PL001…), source positions and, where an
// edit provably cannot weaken enforcement, a machine-applicable fix.

// Re-exported lint vocabulary.
type (
	// LintFinding is one defect discovered by the static analyzer.
	LintFinding = lint.Finding
	// LintFix is a machine-applicable remediation attached to a finding.
	LintFix = lint.Fix
	// LintSeverity ranks findings (info < warning < error).
	LintSeverity = lint.Severity
	// LintAnalyzer is one registered static pass.
	LintAnalyzer = lint.Analyzer
)

// Lint severities.
const (
	LintInfo    = lint.SevInfo
	LintWarning = lint.SevWarning
	LintError   = lint.SevError
)

// Lint statically analyzes a deployment and returns the findings in
// deterministic order. Metrics are emitted to the engine's registry
// under lint.*.
func Lint(e *Engine) []LintFinding { return e.core.Lint() }

// Lint is the method form of the package-level Lint.
func (e *Engine) Lint() []LintFinding { return e.core.Lint() }

// LintFiles parses and lints standalone PLA DSL documents. Without an
// engine there is no catalog, report set or ETL plan, so only the
// agreement-level analyzers apply (dead rules, conflicts); the returned
// error covers unreadable files, parse failures and duplicate PLA ids.
func LintFiles(paths ...string) ([]LintFinding, error) {
	reg := policy.NewRegistry()
	var plas []*policy.PLA
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		parsed, err := policy.ParseFileNamed(path, string(src))
		if err != nil {
			return nil, err
		}
		for _, p := range parsed {
			if err := reg.Add(p); err != nil {
				return nil, fmt.Errorf("lint: %s: %w", path, err)
			}
			plas = append(plas, p)
		}
	}
	return lint.Run(&lint.Pass{PLAs: plas, Registry: reg}), nil
}

// LintAnalyzers lists the registered analyzers, ordered by code.
func LintAnalyzers() []LintAnalyzer { return lint.Analyzers() }

// MaxLintSeverity returns the highest severity among the findings, and
// false when there are none.
func MaxLintSeverity(fs []LintFinding) (LintSeverity, bool) { return lint.MaxSeverity(fs) }

// WriteLintText renders findings one per line in the canonical text
// form.
func WriteLintText(w io.Writer, fs []LintFinding) error { return lint.WriteText(w, fs) }

// WriteLintJSON renders findings as a JSON array ([] when clean).
func WriteLintJSON(w io.Writer, fs []LintFinding) error { return lint.WriteJSON(w, fs) }
