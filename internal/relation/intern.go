package relation

import (
	"encoding/binary"
	"math"
)

// ValKey is a comparable canonical key for a Value, usable directly as a
// Go map key. Two values share a ValKey exactly when their Value.Key()
// strings are equal, so hash joins, grouping and distinct-counting through
// ValKey keep the string-keyed semantics of the original operators while
// skipping the per-value string allocation.
type ValKey struct {
	kind uint8
	i    int64
	f    float64
	s    string
}

// ValKey kind tags. Distinct tags keep the value spaces disjoint the same
// way Key()'s "s:"/"i:"/... prefixes do.
const (
	vkNull uint8 = iota
	vkStr
	vkInt
	vkFloat
	vkBool
	vkDate
	vkNaN
)

// MapKey returns the canonical comparable key of v. The canonicalization
// mirrors Value.Key() exactly: integral floats below 1e15 collapse onto
// the matching integer key, dates key by calendar day, and every NaN maps
// to one shared key (NaN is not equal to itself, so a raw float64 field
// would make map lookups miss).
func MapKey(v Value) ValKey {
	switch v.Kind {
	case TNull:
		return ValKey{kind: vkNull}
	case TString:
		return ValKey{kind: vkStr, s: v.S}
	case TInt:
		return ValKey{kind: vkInt, i: v.I}
	case TFloat:
		if math.IsNaN(v.F) {
			return ValKey{kind: vkNaN}
		}
		if v.F == math.Trunc(v.F) && math.Abs(v.F) < 1e15 {
			return ValKey{kind: vkInt, i: int64(v.F)}
		}
		return ValKey{kind: vkFloat, f: v.F}
	case TBool:
		if v.B {
			return ValKey{kind: vkBool, i: 1}
		}
		return ValKey{kind: vkBool, i: 0}
	case TDate:
		y, m, d := v.T.Date()
		return ValKey{kind: vkDate, i: int64(y)*10000 + int64(m)*100 + int64(d)}
	default:
		return ValKey{kind: vkNull}
	}
}

// interner assigns small dense ids to distinct ValKeys. Ids start at 1 so
// composite keys can reserve 0 if they ever need a sentinel. Strings — the
// overwhelmingly common grouping key kind — get their own map so lookups
// take the runtime's specialized string-map fast paths instead of hashing
// a ValKey struct; MapKey sends strings nowhere else (vkStr only), so the
// two maps partition the key space and can share one id counter.
type interner struct {
	ids  map[ValKey]uint32
	strs map[string]uint32
}

func newInterner(capacity int) *interner {
	return &interner{
		ids:  make(map[ValKey]uint32),
		strs: make(map[string]uint32, capacity),
	}
}

// id returns the dense id of v, allocating one on first sight.
func (in *interner) id(v Value) uint32 {
	if v.Kind == TString {
		if id, ok := in.strs[v.S]; ok {
			return id
		}
		id := uint32(len(in.ids) + len(in.strs) + 1)
		in.strs[v.S] = id
		return id
	}
	k := MapKey(v)
	if id, ok := in.ids[k]; ok {
		return id
	}
	id := uint32(len(in.ids) + len(in.strs) + 1)
	in.ids[k] = id
	return id
}

// rowKeyer builds composite grouping keys over a fixed set of columns by
// interning each column value to a dense id and packing the ids. Up to two
// columns pack into a uint64 (no allocation); wider keys fall back to a
// byte-string of the ids.
type rowKeyer struct {
	cols []int
	ins  []*interner
	buf  []byte
}

func newRowKeyer(cols []int, capacity int) *rowKeyer {
	k := &rowKeyer{cols: cols, ins: make([]*interner, len(cols))}
	for i := range k.ins {
		k.ins[i] = newInterner(capacity)
	}
	if len(cols) > 2 {
		k.buf = make([]byte, 4*len(cols))
	}
	return k
}

// compositeKey is the packed grouping key: wide holds up to two 32-bit ids;
// str holds the byte-packed ids for wider keys.
type compositeKey struct {
	wide uint64
	str  string
}

// key computes the composite key of row r over the keyer's columns.
func (k *rowKeyer) key(r Row) compositeKey {
	if len(k.cols) <= 2 {
		var wide uint64
		for i, ci := range k.cols {
			wide |= uint64(k.ins[i].id(r[ci])) << (32 * uint(i))
		}
		return compositeKey{wide: wide}
	}
	for i, ci := range k.cols {
		binary.LittleEndian.PutUint32(k.buf[4*i:], k.ins[i].id(r[ci]))
	}
	return compositeKey{str: string(k.buf)}
}
