package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"plabi"
)

// instance is one built engine serving one tenant's policy-bundle
// version. Requests acquire the instance for their duration, so a swap
// can drain it (wait for the in-flight count to reach zero) before
// closing the engine and its audit sink.
type instance struct {
	eng     *plabi.Engine
	version int
	// inflight counts acquired references; drained closes once it can
	// never rise again (the instance is no longer reachable from the
	// tenant pointer and the count hit zero).
	mu       sync.Mutex
	inflight int
	retired  bool
	drained  chan struct{}
}

// acquire registers an in-flight request against the instance.
func (in *instance) acquire() {
	in.mu.Lock()
	in.inflight++
	in.mu.Unlock()
}

// release ends one in-flight request, completing a pending drain when it
// was the last.
func (in *instance) release() {
	in.mu.Lock()
	in.inflight--
	done := in.retired && in.inflight == 0
	in.mu.Unlock()
	if done {
		close(in.drained)
	}
}

// retire marks the instance unreachable and returns a channel closed
// when the last in-flight request releases (immediately when idle).
func (in *instance) retire() <-chan struct{} {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.retired {
		return in.drained
	}
	in.retired = true
	in.drained = make(chan struct{})
	if in.inflight == 0 {
		close(in.drained)
	}
	return in.drained
}

// tenant is one isolation domain: its manifest config, its rate bucket,
// and the atomically swappable engine instance currently serving it.
type tenant struct {
	name    string
	limiter *bucket

	mu          sync.Mutex // serializes swaps, not requests
	cfg         TenantConfig
	fingerprint string
	cur         atomic.Pointer[instance]
}

// buildInstance constructs the engine a tenant config describes: open
// (append) the audit sink file, build the scenario engine with the
// tenant's tuning, and register its extra PLA bundle. The audit file is
// owned by the engine from here on — Engine.Close closes it.
func buildInstance(cfg TenantConfig, version int, auditDir string) (*instance, error) {
	path := cfg.AuditPath
	if path == "" {
		if auditDir == "" {
			auditDir = os.TempDir()
		}
		path = filepath.Join(auditDir, cfg.Name+".audit.jsonl")
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: tenant %s: open audit sink: %w", cfg.Name, err)
	}
	opts := []plabi.Option{plabi.WithAuditSink(f)}
	if cfg.CacheSize > 0 {
		opts = append(opts, plabi.WithCacheSize(cfg.CacheSize))
	}
	if cfg.Workers > 0 {
		opts = append(opts, plabi.WithWorkers(cfg.Workers))
	}
	if cfg.FailClosed {
		opts = append(opts, plabi.WithFailClosed())
	}
	eng, err := plabi.OpenHealthcare(plabi.HealthcareConfig{
		Seed: cfg.Seed, Prescriptions: cfg.Prescriptions,
	}, opts...)
	if err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("serve: tenant %s: build engine: %w", cfg.Name, err)
	}
	if cfg.ExtraPLAs != "" {
		if err := eng.AddPLAs(cfg.ExtraPLAs); err != nil {
			_ = eng.Close()
			return nil, fmt.Errorf("serve: tenant %s: extra PLAs: %w", cfg.Name, err)
		}
	}
	// Compile every (report, role) residual program before the instance
	// serves a single request: a bundle swap therefore recompiles — the
	// first post-reload render executes an already-specialized program
	// instead of paying compilation (or a cold cache) on the hot path.
	if _, err := eng.Precompile(); err != nil {
		_ = eng.Close()
		return nil, fmt.Errorf("serve: tenant %s: precompile: %w", cfg.Name, err)
	}
	return &instance{eng: eng, version: version}, nil
}

// swap atomically replaces the serving instance, then (asynchronously)
// drains and closes the old one: in-flight requests against the old
// engine finish against the old policy bundle and their audit events
// reach the old sink before it is flushed and closed.
func (t *tenant) swap(ni *instance) {
	old := t.cur.Swap(ni)
	if old == nil {
		return
	}
	go func() {
		<-old.retire()
		_ = old.eng.Close()
	}()
}

// close retires the current instance synchronously: drains in-flight
// requests and closes the engine. Used at server shutdown.
func (t *tenant) close() error {
	old := t.cur.Swap(nil)
	if old == nil {
		return nil
	}
	<-old.retire()
	return old.eng.Close()
}

// acquire returns the serving instance with an in-flight reference held,
// or nil when the tenant is shut down. Callers must call the returned
// release exactly once.
func (t *tenant) acquire() (*instance, func()) {
	for {
		in := t.cur.Load()
		if in == nil {
			return nil, nil
		}
		in.acquire()
		// The pointer may have been swapped between Load and acquire; the
		// reference is still safe (retire waits for it), but prefer the
		// live instance so new requests land on the new bundle.
		if t.cur.Load() == in {
			return in, in.release
		}
		in.release()
	}
}
