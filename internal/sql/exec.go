package sql

import (
	"fmt"
	"strings"

	"plabi/internal/relation"
)

// exec evaluates a SELECT against the catalog. The result is a derived
// relation.Table carrying full lineage and column origins.
func (c *Catalog) exec(s *SelectStmt, seen map[string]bool) (*relation.Table, error) {
	// 1. FROM: resolve and qualify each input in declaration order.
	inputs := make([]*relation.Table, 0, 1+len(s.Joins))
	first, err := c.resolve(s.From.Name, seen)
	if err != nil {
		return nil, err
	}
	inputs = append(inputs, relation.Rename(first, strings.ToLower(s.From.EffName())))
	for _, j := range s.Joins {
		rt, err := c.resolve(j.Table.Name, seen)
		if err != nil {
			return nil, err
		}
		inputs = append(inputs, relation.Rename(rt, strings.ToLower(j.Table.EffName())))
	}

	// Push single-relation WHERE conjuncts below the joins (see
	// pushdown.go for the soundness conditions), then join left to right.
	pushed, residual := planPushdown(s, inputs)
	for k, parts := range pushed {
		if len(parts) == 0 {
			continue
		}
		inputs[k], err = relation.Select(inputs[k], foldAnd(parts))
		if err != nil {
			return nil, err
		}
	}
	cur := inputs[0]
	for i, j := range s.Joins {
		cur, err = relation.Join(cur, inputs[i+1], j.On, j.Kind)
		if err != nil {
			return nil, err
		}
	}

	// 2. WHERE (conjuncts not claimed by the pushdown).
	if residual != nil {
		cur, err = relation.Select(cur, residual)
		if err != nil {
			return nil, err
		}
	}

	// 3. Grouping / aggregation.
	grouped := len(s.GroupBy) > 0 || s.HasAggregates()
	if grouped {
		cur, err = execGrouped(cur, s)
		if err != nil {
			return nil, err
		}
	} else {
		cur, err = execProjection(cur, s)
		if err != nil {
			return nil, err
		}
	}

	// 4. DISTINCT.
	if s.Distinct {
		cur = relation.Distinct(cur)
	}

	// 5. ORDER BY over output columns.
	if len(s.OrderBy) > 0 {
		keys := make([]relation.SortKey, len(s.OrderBy))
		for i, o := range s.OrderBy {
			keys[i] = relation.SortKey{Col: o.Col, Desc: o.Desc}
		}
		cur, err = relation.Sort(cur, keys...)
		if err != nil {
			return nil, err
		}
	}

	// 6. LIMIT.
	if s.Limit >= 0 {
		cur = relation.Limit(cur, s.Limit)
	}
	cur.Name = "result"
	return cur, nil
}

// execProjection handles the non-aggregated SELECT list.
func execProjection(cur *relation.Table, s *SelectStmt) (*relation.Table, error) {
	var cols []relation.ProjCol
	for _, it := range s.Items {
		switch {
		case it.Star:
			for _, col := range cur.Schema.Columns {
				cols = append(cols, relation.P(col.Name))
			}
		case it.Agg != nil:
			return nil, fmt.Errorf("sql: internal: aggregate in plain projection")
		default:
			cols = append(cols, relation.PAs(it.Expr, it.OutName()))
		}
	}
	out, err := relation.Project(cur, cols...)
	if err != nil {
		return nil, err
	}
	// Star projections keep qualified names only when ambiguous;
	// prefer clean unqualified output names when possible.
	if unq, uerr := out.Schema.Unqualify(); uerr == nil {
		out.Schema = unq
	}
	return out, nil
}

// execGrouped handles GROUP BY + aggregates (including the implicit single
// group when aggregates appear without GROUP BY), then HAVING, then the
// final projection to the SELECT list order.
func execGrouped(cur *relation.Table, s *SelectStmt) (*relation.Table, error) {
	// Materialize computed group keys and aggregate arguments as columns.
	type keyInfo struct {
		col string // column name in the extended input
	}
	var err error
	keys := make([]keyInfo, len(s.GroupBy))
	synth := 0
	for i, g := range s.GroupBy {
		if ce, ok := g.(*relation.ColExpr); ok {
			keys[i] = keyInfo{col: ce.Name}
			continue
		}
		name := fmt.Sprintf("_gk%d", synth)
		synth++
		cur, err = relation.Extend(cur, name, g)
		if err != nil {
			return nil, err
		}
		keys[i] = keyInfo{col: name}
	}

	type aggInfo struct {
		spec    relation.AggSpec
		outName string
	}
	var aggs []aggInfo
	for _, it := range s.Items {
		if it.Agg == nil {
			continue
		}
		spec := relation.AggSpec{Kind: it.Agg.Kind, As: it.OutName()}
		if it.Agg.Arg != nil {
			if ce, ok := it.Agg.Arg.(*relation.ColExpr); ok {
				spec.Col = ce.Name
			} else {
				name := fmt.Sprintf("_ga%d", synth)
				synth++
				cur, err = relation.Extend(cur, name, it.Agg.Arg)
				if err != nil {
					return nil, err
				}
				spec.Col = name
			}
			if it.Agg.Distinct && it.Agg.Kind != relation.AggCountDistinct {
				return nil, fmt.Errorf("sql: DISTINCT is only supported with COUNT")
			}
		}
		aggs = append(aggs, aggInfo{spec: spec, outName: spec.As})
	}

	keyCols := make([]string, len(keys))
	keyByExpr := make(map[string]string, len(keys))
	for i, k := range keys {
		keyCols[i] = k.col
		keyByExpr[s.GroupBy[i].String()] = k.col
	}
	specs := make([]relation.AggSpec, len(aggs))
	for i, a := range aggs {
		specs[i] = a.spec
	}
	grouped, err := relation.GroupBy(cur, keyCols, specs)
	if err != nil {
		return nil, err
	}

	// HAVING evaluates against the grouped schema (keys + agg outputs).
	if s.Having != nil {
		grouped, err = relation.Select(grouped, s.Having)
		if err != nil {
			return nil, err
		}
	}

	// Final projection: select-list order. Non-aggregate items must be
	// group keys (or expressions over them, re-evaluated on the grouped
	// row).
	var cols []relation.ProjCol
	for _, it := range s.Items {
		switch {
		case it.Star:
			return nil, fmt.Errorf("sql: SELECT * cannot be combined with GROUP BY")
		case it.Agg != nil:
			cols = append(cols, relation.PAs(relation.ColRefExpr(it.OutName()), it.OutName()))
		default:
			// An expression textually identical to a GROUP BY expression
			// maps to that key column (e.g. SELECT YEAR(d) ... GROUP BY
			// YEAR(d)).
			if kc, ok := keyByExpr[it.Expr.String()]; ok {
				cols = append(cols, relation.PAs(relation.ColRefExpr(kc), it.OutName()))
				continue
			}
			// A bare column must be one of the group keys.
			if ce, ok := it.Expr.(*relation.ColExpr); ok {
				if grouped.Schema.Index(ce.Name) < 0 {
					return nil, fmt.Errorf("sql: column %q is neither aggregated nor grouped", ce.Name)
				}
				cols = append(cols, relation.PAs(relation.ColRefExpr(ce.Name), it.OutName()))
				continue
			}
			// Expression over grouped columns: check it only references
			// grouped output columns.
			for _, ref := range relation.ColumnsOf(it.Expr) {
				if grouped.Schema.Index(ref) < 0 {
					return nil, fmt.Errorf("sql: expression %s references non-grouped column %q", it.Expr, ref)
				}
			}
			cols = append(cols, relation.PAs(it.Expr, it.OutName()))
		}
	}
	out, err := relation.Project(grouped, cols...)
	if err != nil {
		return nil, err
	}
	if unq, uerr := out.Schema.Unqualify(); uerr == nil {
		out.Schema = unq
	}
	return out, nil
}
