// Command pladiff runs semantic policy-change impact analysis between
// two deployment states: NEW-ALLOW privilege expansions, NEW-DENY
// regressions, loosened/tightened aggregation thresholds, weakened row
// filters and widened column release plans, computed per (report, role,
// purpose) triple over the compiled residual render programs (codes
// PD001…PD005; see docs/DIFF.md).
//
// Usage:
//
//	pladiff [flags] old.pla new.pla       # two bundles in the healthcare context
//	pladiff [flags] - new.pla             # "-" is the bare scenario (no bundle)
//	pladiff [flags] -manifest old.json new.json   # two plabid manifests, per tenant
//	pladiff -validate [bundle.pla]        # PD000 translation validation of one state
//
// Exit codes: 0 no impacts at or above -severity, 1 impacts reported,
// 2 unreadable input, parse failure or bad configuration.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"plabi"
	"plabi/internal/lint"
	"plabi/internal/serve"
)

func main() {
	asJSON := flag.Bool("json", false, "emit impacts as JSON")
	sevName := flag.String("severity", "warning", "minimum severity to report and gate on (info|warning|error)")
	manifests := flag.Bool("manifest", false, "treat the two arguments as plabid manifests and diff each tenant's effective bundle")
	validate := flag.Bool("validate", false, "run PD000 translation validation over one deployment (one bundle argument, or none for the bare healthcare scenario) instead of diffing")
	flag.Parse()

	minSev, err := lint.ParseSeverity(*sevName)
	if err != nil {
		fail(err)
	}
	if *validate {
		validateBundle(*asJSON)
		return
	}
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "pladiff: exactly two inputs required (old, new)")
		flag.Usage()
		os.Exit(2)
	}
	oldPath, newPath := flag.Arg(0), flag.Arg(1)

	if *manifests {
		diffManifests(oldPath, newPath, minSev, *asJSON)
		return
	}
	// "-" names the bare scenario, so a single bundle can be diffed
	// against its deployment context without a second file.
	if oldPath == "-" {
		oldPath = ""
	}
	if newPath == "-" {
		newPath = ""
	}

	imps, err := plabi.DiffFiles(oldPath, newPath)
	if err != nil {
		fail(err)
	}
	shown := plabi.FilterImpacts(imps, minSev)
	if *asJSON {
		err = plabi.WriteImpactsJSON(os.Stdout, shown)
	} else {
		err = plabi.WriteImpactsText(os.Stdout, shown)
	}
	if err != nil {
		fail(err)
	}
	if len(shown) > 0 {
		os.Exit(1)
	}
}

// validateBundle runs the PD000 compiler-soundness pass over a single
// deployment state. Any finding is a divergence between the compiled
// residual program and its independent recomputation — always exit 1,
// regardless of -severity.
func validateBundle(asJSON bool) {
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "pladiff: -validate takes at most one bundle argument")
		os.Exit(2)
	}
	bundle := ""
	if flag.NArg() == 1 {
		bundle = flag.Arg(0)
	}
	imps, err := plabi.ValidateBundle(bundle)
	if err != nil {
		fail(err)
	}
	if asJSON {
		err = plabi.WriteImpactsJSON(os.Stdout, imps)
	} else {
		err = plabi.WriteImpactsText(os.Stdout, imps)
	}
	if err != nil {
		fail(err)
	}
	if len(imps) > 0 {
		os.Exit(1)
	}
}

// diffManifests compares the effective per-tenant deployments of two
// plabid manifests: each tenant state is its scenario engine with the
// manifest's extra agreements layered on top. Tenants present in only
// one manifest are reported as wholesale additions or removals.
func diffManifests(oldPath, newPath string, minSev lint.Severity, asJSON bool) {
	oldM, err := readManifest(oldPath)
	if err != nil {
		fail(err)
	}
	newM, err := readManifest(newPath)
	if err != nil {
		fail(err)
	}
	oldT := tenantMap(oldM)
	newT := tenantMap(newM)
	names := map[string]bool{}
	for n := range oldT {
		names[n] = true
	}
	for n := range newT {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	perTenant := map[string][]plabi.LintFinding{}
	total := 0
	for _, name := range sorted {
		oc, oldOK := oldT[name]
		nc, newOK := newT[name]
		switch {
		case !oldOK:
			fmt.Fprintf(os.Stderr, "pladiff: tenant %q is new (no old state to compare)\n", name)
			continue
		case !newOK:
			fmt.Fprintf(os.Stderr, "pladiff: tenant %q removed\n", name)
			continue
		}
		oldE, err := buildTenant(oc)
		if err != nil {
			fail(fmt.Errorf("tenant %s (old): %w", name, err))
		}
		newE, err := buildTenant(nc)
		if err != nil {
			oldE.Close()
			fail(fmt.Errorf("tenant %s (new): %w", name, err))
		}
		imps, err := plabi.Diff(oldE, newE)
		oldE.Close()
		newE.Close()
		if err != nil {
			fail(fmt.Errorf("tenant %s: %w", name, err))
		}
		shown := plabi.FilterImpacts(imps, minSev)
		perTenant[name] = plabi.ImpactFindings(shown)
		total += len(shown)
		if !asJSON && len(shown) > 0 {
			fmt.Printf("# tenant %s\n", name)
			if err := plabi.WriteImpactsText(os.Stdout, shown); err != nil {
				fail(err)
			}
		}
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(perTenant); err != nil {
			fail(err)
		}
	}
	if total > 0 {
		os.Exit(1)
	}
}

func readManifest(path string) (*serve.Manifest, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return serve.ParseManifest(src)
}

func tenantMap(m *serve.Manifest) map[string]serve.TenantConfig {
	out := map[string]serve.TenantConfig{}
	for _, tc := range m.Tenants {
		out[tc.Name] = tc
	}
	return out
}

func buildTenant(tc serve.TenantConfig) (*plabi.Engine, error) {
	e, err := plabi.OpenHealthcare(plabi.HealthcareConfig{Seed: tc.Seed, Prescriptions: tc.Prescriptions})
	if err != nil {
		return nil, err
	}
	if tc.ExtraPLAs != "" {
		if err := e.AddPLAs(tc.ExtraPLAs); err != nil {
			e.Close()
			return nil, err
		}
	}
	return e, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "pladiff:", err)
	os.Exit(2)
}
