package policy

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"plabi/internal/relation"
)

// Conflict records an explicit allow/deny disagreement between two PLAs on
// the same subject — surfaced to the requirements engineer rather than
// silently resolved (§2 challenge ii).
type Conflict struct {
	Kind    string // "access" | "join" | "integration"
	Subject string // attribute, relation, or beneficiary
	AllowBy string // PLA id granting
	DenyBy  string // PLA id denying
}

// String renders the conflict.
func (c Conflict) String() string {
	return fmt.Sprintf("%s conflict on %q: allowed by %s, denied by %s",
		c.Kind, c.Subject, c.AllowBy, c.DenyBy)
}

// Composite is the integration of several PLAs governing the same data.
// All decision methods apply most-restrictive-wins: a deny in any member
// PLA dominates, thresholds take the maximum, conditions conjoin.
type Composite struct {
	PLAs      []*PLA
	Conflicts []Conflict
}

// Compose integrates PLAs from multiple sources. Conflicts are detected
// eagerly (explicit allow in one PLA vs explicit deny in another for the
// same subject) and recorded; decisions still resolve restrictively.
func Compose(plas ...*PLA) *Composite {
	c := &Composite{PLAs: plas}
	c.detectConflicts()
	return c
}

func (c *Composite) detectConflicts() {
	type ad struct{ allowBy, denyBy string }
	access := map[string]*ad{}
	joins := map[string]*ad{}
	integ := map[string]*ad{}

	record := func(m map[string]*ad, key, id string, e Effect) {
		entry := m[key]
		if entry == nil {
			entry = &ad{}
			m[key] = entry
		}
		if e == Allow && entry.allowBy == "" {
			entry.allowBy = id
		}
		if e == Deny && entry.denyBy == "" {
			entry.denyBy = id
		}
	}

	for _, p := range c.PLAs {
		for _, r := range p.Access {
			key := strings.ToLower(r.Attribute)
			// Role-specific rules conflict only when role sets overlap;
			// approximate with attribute+role keys.
			if len(r.Roles) == 0 {
				record(access, key, p.ID, r.Effect)
			} else {
				for _, role := range r.Roles {
					record(access, key+"/"+strings.ToLower(role), p.ID, r.Effect)
				}
			}
		}
		for _, r := range p.Joins {
			record(joins, strings.ToLower(r.Other), p.ID, r.Effect)
		}
		for _, r := range p.Integrations {
			record(integ, strings.ToLower(r.Beneficiary), p.ID, r.Effect)
		}
	}
	emit := func(kind string, m map[string]*ad) {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			e := m[k]
			if e.allowBy != "" && e.denyBy != "" && e.allowBy != e.denyBy {
				c.Conflicts = append(c.Conflicts, Conflict{
					Kind: kind, Subject: k, AllowBy: e.allowBy, DenyBy: e.denyBy,
				})
			}
		}
	}
	emit("access", access)
	emit("join", joins)
	emit("integration", integ)
}

// DecideAttribute integrates attribute access across all member PLAs whose
// scope covers the data: every PLA with matching rules must allow; any
// deny dominates; PLAs with no matching rule abstain, and if every PLA
// abstains the result is deny (closed world). Conditions from all
// allowing PLAs conjoin.
func (c *Composite) DecideAttribute(attr, role, purpose string) AccessDecision {
	out := AccessDecision{Effect: Deny}
	sawAllow := false
	for _, p := range c.PLAs {
		d := p.DecideAttribute(attr, role, purpose)
		if len(d.Matched) == 0 {
			continue // abstain
		}
		out.Matched = append(out.Matched, d.Matched...)
		out.PLAs = mergeIDs(out.PLAs, d.PLAs)
		if d.Effect == Deny {
			return AccessDecision{Effect: Deny, Matched: d.Matched, PLAs: d.PLAs}
		}
		sawAllow = true
		out.Conditions = append(out.Conditions, d.Conditions...)
	}
	if sawAllow {
		out.Effect = Allow
	}
	return out
}

// AttrRef names an attribute together with the base table it originates
// from; Table "" denotes a report-level output name with no single
// origin.
type AttrRef struct {
	Name  string
	Table string
}

// DecideAttributeRefs integrates attribute access across the composite
// with *scoped* matching: source- and warehouse-level PLAs only govern
// attributes originating from their own scope table (a drugcost PLA's
// "allow attribute *" says nothing about prescription columns), while
// meta-report- and report-level PLAs speak about any referenced name.
// Deny dominates; no matching rule anywhere means deny (closed world).
func (c *Composite) DecideAttributeRefs(refs []AttrRef, role, purpose string) AccessDecision {
	out := AccessDecision{Effect: Deny}
	sawAllow := false
	for _, p := range c.PLAs {
		for _, ref := range refs {
			if p.Level == LevelSource || p.Level == LevelWarehouse {
				if ref.Table == "" || (p.Scope != "*" && !strings.EqualFold(p.Scope, ref.Table)) {
					continue
				}
			}
			d := p.DecideAttribute(ref.Name, role, purpose)
			if len(d.Matched) == 0 {
				continue
			}
			out.Matched = append(out.Matched, d.Matched...)
			out.PLAs = mergeIDs(out.PLAs, d.PLAs)
			if d.Effect == Deny {
				return AccessDecision{Effect: Deny, Matched: d.Matched, PLAs: d.PLAs}
			}
			sawAllow = true
			out.Conditions = append(out.Conditions, d.Conditions...)
		}
	}
	if sawAllow {
		out.Effect = Allow
	}
	return out
}

// JoinAllowed integrates join permissions: denied if any PLA denies.
func (c *Composite) JoinAllowed(other string) (bool, string) {
	for _, p := range c.PLAs {
		ok, rule := p.JoinAllowed(other)
		if !ok {
			reason := p.ID
			if rule != nil {
				reason = fmt.Sprintf("%s (forbid join with %s)", p.ID, rule.Other)
			}
			return false, reason
		}
	}
	return true, ""
}

// IntegrationAllowed integrates cleaning permissions: denied if any PLA
// denies.
func (c *Composite) IntegrationAllowed(beneficiary string) (bool, string) {
	for _, p := range c.PLAs {
		ok, rule := p.IntegrationAllowed(beneficiary)
		if !ok {
			reason := p.ID
			if rule != nil {
				reason = fmt.Sprintf("%s (forbid integration for %s)", p.ID, rule.Beneficiary)
			}
			return false, reason
		}
	}
	return true, ""
}

// MinAggregation integrates aggregation thresholds: the maximum across
// member PLAs.
func (c *Composite) MinAggregation(by string) int {
	best := 0
	for _, p := range c.PLAs {
		if m := p.MinAggregation(by); m > best {
			best = m
		}
	}
	return best
}

// AggregationRules returns the union of member aggregation rules.
func (c *Composite) AggregationRules() []AggregationRule {
	var out []AggregationRule
	for _, p := range c.PLAs {
		out = append(out, p.Aggregations...)
	}
	return out
}

// AggregationPLAs returns the ids of the member PLAs imposing aggregation
// thresholds — the deciding agreements behind a threshold block.
func (c *Composite) AggregationPLAs() []string {
	var out []string
	for _, p := range c.PLAs {
		if len(p.Aggregations) > 0 {
			out = mergeIDs(out, []string{p.ID})
		}
	}
	return out
}

// FilterPLAs returns the ids of the member PLAs imposing row filters.
func (c *Composite) FilterPLAs() []string {
	var out []string
	for _, p := range c.PLAs {
		if len(p.Filters) > 0 {
			out = mergeIDs(out, []string{p.ID})
		}
	}
	return out
}

// DenyingJoinPLA returns the id of the first member PLA forbidding a join
// with the named relation ("" when the join is allowed).
func (c *Composite) DenyingJoinPLA(other string) string {
	for _, p := range c.PLAs {
		if ok, _ := p.JoinAllowed(other); !ok {
			return p.ID
		}
	}
	return ""
}

// mergeIDs appends the ids not already present, preserving order.
func mergeIDs(dst, add []string) []string {
	for _, id := range add {
		found := false
		for _, have := range dst {
			if have == id {
				found = true
				break
			}
		}
		if !found {
			dst = append(dst, id)
		}
	}
	return dst
}

// AnonymizeRules returns the union of member anonymization rules.
func (c *Composite) AnonymizeRules() []AnonymizeRule {
	var out []AnonymizeRule
	for _, p := range c.PLAs {
		out = append(out, p.Anonymize...)
	}
	return out
}

// ReleaseRules returns the union of member release (k-anonymity) rules.
func (c *Composite) ReleaseRules() []ReleaseRule {
	var out []ReleaseRule
	for _, p := range c.PLAs {
		out = append(out, p.Release...)
	}
	return out
}

// Filters returns the conjunction of member row filters (all must hold).
func (c *Composite) Filters() []relation.Expr {
	var out []relation.Expr
	for _, p := range c.PLAs {
		for _, f := range p.Filters {
			out = append(out, f.When)
		}
	}
	return out
}

// Retention integrates retention: the minimum number of days across
// members (strictest), or 0 when none constrains it.
func (c *Composite) Retention() int {
	best := 0
	for _, p := range c.PLAs {
		if p.Retention == nil {
			continue
		}
		if best == 0 || p.Retention.Days < best {
			best = p.Retention.Days
		}
	}
	return best
}

// Registry indexes PLAs by scope and level; the per-deployment store of
// agreed requirements. It is safe for concurrent use: reads take a shared
// lock and every successful Add bumps the registry generation, which
// downstream decision caches key on for invalidation.
type Registry struct {
	mu   sync.RWMutex
	gen  atomic.Uint64
	plas []*PLA
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Generation returns a counter that increases whenever the set of agreed
// PLAs changes. A cached decision computed at generation g is valid only
// while Generation() == g.
func (r *Registry) Generation() uint64 { return r.gen.Load() }

// Add validates and stores a PLA.
func (r *Registry) Add(p *PLA) error {
	if err := p.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, existing := range r.plas {
		if existing.ID == p.ID {
			return fmt.Errorf("policy: duplicate PLA id %q", p.ID)
		}
	}
	r.plas = append(r.plas, p)
	r.gen.Add(1)
	return nil
}

// All returns every stored PLA.
func (r *Registry) All() []*PLA {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]*PLA(nil), r.plas...)
}

// ByID returns the PLA with the given id.
func (r *Registry) ByID(id string) (*PLA, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, p := range r.plas {
		if p.ID == id {
			return p, true
		}
	}
	return nil, false
}

// ForScope returns the composite of all PLAs at the given level whose
// scope matches name (case-insensitive; "*" scopes match everything).
// Selected PLAs are ordered by id, never by registration order, so that
// composition — and in particular which of two equally specific
// agreements is reported as the deciding one — is identical across runs
// regardless of load order.
func (r *Registry) ForScope(level Level, name string) *Composite {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var sel []*PLA
	for _, p := range r.plas {
		if p.Level != level {
			continue
		}
		if p.Scope == "*" || strings.EqualFold(p.Scope, name) {
			sel = append(sel, p)
		}
	}
	sortByID(sel)
	return Compose(sel...)
}

// ForScopes returns the composite of all PLAs at the given level matching
// any of the names (e.g. every base table a report reads), ordered by id
// for run-to-run determinism.
func (r *Registry) ForScopes(level Level, names []string) *Composite {
	var sel []*PLA
	seen := map[string]bool{}
	for _, n := range names {
		for _, p := range r.ForScope(level, n).PLAs {
			if !seen[p.ID] {
				seen[p.ID] = true
				sel = append(sel, p)
			}
		}
	}
	sortByID(sel)
	return Compose(sel...)
}

// sortByID orders PLAs lexicographically by id — the deterministic
// tie-break applied before composition.
func sortByID(plas []*PLA) {
	sort.Slice(plas, func(i, j int) bool { return plas[i].ID < plas[j].ID })
}

// AtomCount sums elicited atoms across all PLAs at a level (Fig. 5 and E6
// metric).
func (r *Registry) AtomCount(level Level) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, p := range r.plas {
		if p.Level == level {
			n += p.Atoms()
		}
	}
	return n
}
