package plavet

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// wantMarkers reads the `// want PVnnn` annotations out of a source
// file: line number -> expected code.
func wantMarkers(t *testing.T, path string) map[int]string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	want := map[int]string{}
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		_, marker, ok := strings.Cut(sc.Text(), "// want ")
		if !ok {
			continue
		}
		want[line] = strings.Fields(marker)[0]
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return want
}

// TestSamplePackage type-checks the testdata package and compares the
// findings line-by-line against its `// want` annotations — both
// directions: every marker fires, nothing unmarked fires.
func TestSamplePackage(t *testing.T) {
	dir := filepath.Join("testdata", "src", "sample")
	findings, err := NewChecker().Dir(dir)
	if err != nil {
		t.Fatalf("Dir(%s): %v", dir, err)
	}
	want := wantMarkers(t, filepath.Join(dir, "sample.go"))
	got := map[int]string{}
	for _, f := range findings {
		if prev, dup := got[f.Pos.Line]; dup {
			t.Errorf("line %d: two findings (%s, %s)", f.Pos.Line, prev, f.Code)
		}
		got[f.Pos.Line] = f.Code
		if f.Message == "" || f.Pos.Filename == "" {
			t.Errorf("finding %v lacks message or position", f)
		}
	}
	for line, code := range want {
		if got[line] != code {
			t.Errorf("line %d: want %s, got %q", line, code, got[line])
		}
	}
	for line, code := range got {
		if want[line] == "" {
			t.Errorf("line %d: unexpected finding %s", line, code)
		}
	}
}

// TestRepoClean runs the pass over the whole repository — the gate the
// Makefile lint target enforces. Production code must not regress to
// the unchecked audit writers.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the full repo; skipped in -short")
	}
	findings, err := NewChecker().Tree(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatalf("Tree(repo root): %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestFindingOrderDeterministic vets the same directory twice and
// requires identical output, line for line.
func TestFindingOrderDeterministic(t *testing.T) {
	dir := filepath.Join("testdata", "src", "sample")
	render := func() string {
		findings, err := NewChecker().Dir(dir)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, f := range findings {
			b.WriteString(f.String())
			b.WriteByte('\n')
		}
		return b.String()
	}
	if a, b := render(), render(); a != b {
		t.Fatalf("non-deterministic findings:\n--- first\n%s--- second\n%s", a, b)
	}
}
