package elicit

import (
	"fmt"
	"strings"

	"plabi/internal/metareport"
	"plabi/internal/policy"
	"plabi/internal/relation"
	"plabi/internal/report"
	"plabi/internal/sql"
)

// EventKind enumerates the evolution events the simulator draws (§2 iii:
// "BI reports are in constant evolution").
type EventKind int

// Evolution event kinds.
const (
	// EvNewReportCovered creates a report over attributes the approved
	// meta-reports already expose.
	EvNewReportCovered EventKind = iota
	// EvNewReportUncovered creates a report needing a warehouse column no
	// meta-report exposes yet.
	EvNewReportUncovered
	// EvAddColumnCovered adds a covered column to an existing report.
	EvAddColumnCovered
	// EvAddColumnUncovered adds an uncovered warehouse column.
	EvAddColumnUncovered
	// EvChangeFilter changes a report's WHERE clause within covered
	// attributes.
	EvChangeFilter
	// EvDeleteReport removes a report.
	EvDeleteReport
	// EvNewDataRequirement needs a source column not yet loaded into the
	// warehouse (DW schema extension).
	EvNewDataRequirement
	// EvNewSource onboards an entirely new data source.
	EvNewSource
)

var eventKindNames = map[EventKind]string{
	EvNewReportCovered: "new-report-covered", EvNewReportUncovered: "new-report-uncovered",
	EvAddColumnCovered: "add-column-covered", EvAddColumnUncovered: "add-column-uncovered",
	EvChangeFilter: "change-filter", EvDeleteReport: "delete-report",
	EvNewDataRequirement: "new-data-requirement", EvNewSource: "new-source",
}

// String returns the event kind name.
func (k EventKind) String() string { return eventKindNames[k] }

// Mix is the probability mass of each event kind.
type Mix map[EventKind]float64

// DefaultMix reflects the paper's observation: most churn is new or
// modified reports over already-agreed data; schema-extending events are
// rare and new sources rarer still.
func DefaultMix() Mix {
	return Mix{
		EvNewReportCovered:   0.30,
		EvNewReportUncovered: 0.08,
		EvAddColumnCovered:   0.22,
		EvAddColumnUncovered: 0.08,
		EvChangeFilter:       0.20,
		EvDeleteReport:       0.05,
		EvNewDataRequirement: 0.05,
		EvNewSource:          0.02,
	}
}

// StabilityResult reports, for one level, how often the simulated
// evolution forced going back to the source owners — the vertical axis of
// Fig. 5 (stability decreases toward the report level).
type StabilityResult struct {
	Level          policy.Level
	Events         int
	Reelicitations int
	// Stability is 1 - Reelicitations/Events.
	Stability float64
	// ByKind breaks re-elicitations down by triggering event kind.
	ByKind map[string]int
}

// SimulateEvolution applies n random evolution events to the scenario and
// counts, per level, the events that would have required renegotiating
// PLAs with the source owners. The scenario is mutated (reports evolve,
// meta-reports are re-derived on meta-level re-elicitations, the
// warehouse schema grows on data-requirement events).
func SimulateEvolution(s *Scenario, n int, mix Mix) ([]StabilityResult, error) {
	if mix == nil {
		mix = DefaultMix()
	}
	results := map[policy.Level]*StabilityResult{}
	for _, lvl := range policy.Levels() {
		results[lvl] = &StabilityResult{Level: lvl, ByKind: map[string]int{}}
	}
	record := func(lvl policy.Level, kind EventKind) {
		results[lvl].Reelicitations++
		results[lvl].ByKind[kind.String()]++
	}

	dwhWidth := func() int {
		t, ok := s.Cat.Table(s.Warehouse)
		if !ok {
			return 0
		}
		return t.Schema.Len()
	}

	for i := 0; i < n; i++ {
		kind := s.drawEvent(mix)
		widthBefore := dwhWidth()
		touched, err := s.apply(kind, i)
		if err != nil {
			return nil, fmt.Errorf("elicit: event %d (%s): %w", i, kind, err)
		}
		for _, lvl := range policy.Levels() {
			results[lvl].Events++
		}

		// Report level: every event that creates or modifies a delivered
		// report needs a fresh agreement on that report.
		switch kind {
		case EvNewReportCovered, EvNewReportUncovered, EvAddColumnCovered,
			EvAddColumnUncovered, EvChangeFilter, EvNewDataRequirement, EvNewSource:
			record(policy.LevelReport, kind)
		}

		// Meta-report level: re-elicit only when a touched report is no
		// longer derivable from the approved metas (checked with the real
		// containment machinery); then extend the metas.
		metaReelicit := false
		for _, id := range touched {
			d, ok := s.Reports.Get(id)
			if !ok {
				continue
			}
			covering, _, err := metareport.CoveringMeta(s.Cat, d, s.Metas)
			if err != nil {
				return nil, err
			}
			if covering == nil {
				metaReelicit = true
			}
		}
		if metaReelicit {
			record(policy.LevelMetaReport, kind)
			if err := s.rederiveMetas(); err != nil {
				return nil, err
			}
			s.rebuildPools()
		}

		// Warehouse level: re-elicit when the DW schema actually grew
		// (re-requesting an already-loaded column costs nothing).
		if (kind == EvNewDataRequirement || kind == EvNewSource) && dwhWidth() > widthBefore {
			record(policy.LevelWarehouse, kind)
		}
		// Source level: re-elicit only when a new source (new owner /
		// new agreement partner) appears.
		if kind == EvNewSource {
			record(policy.LevelSource, kind)
		}
	}

	out := make([]StabilityResult, 0, 4)
	for _, lvl := range policy.Levels() {
		r := results[lvl]
		if r.Events > 0 {
			r.Stability = 1 - float64(r.Reelicitations)/float64(r.Events)
		}
		out = append(out, *r)
	}
	return out, nil
}

func (s *Scenario) drawEvent(mix Mix) EventKind {
	x := s.rng.Float64()
	acc := 0.0
	kinds := []EventKind{EvNewReportCovered, EvNewReportUncovered, EvAddColumnCovered,
		EvAddColumnUncovered, EvChangeFilter, EvDeleteReport, EvNewDataRequirement, EvNewSource}
	for _, k := range kinds {
		acc += mix[k]
		if x < acc {
			return k
		}
	}
	return EvNewReportCovered
}

func (s *Scenario) pick(pool []string) (string, bool) {
	if len(pool) == 0 {
		return "", false
	}
	return pool[s.rng.Intn(len(pool))], true
}

func (s *Scenario) randomReportID() (string, bool) {
	all := s.Reports.All()
	if len(all) == 0 {
		return "", false
	}
	return all[s.rng.Intn(len(all))].ID, true
}

// apply executes one event against the scenario, returning the report ids
// whose definitions changed (for derivability checking).
func (s *Scenario) apply(kind EventKind, seq int) ([]string, error) {
	switch kind {
	case EvNewReportCovered, EvNewReportUncovered:
		pool := s.coveredCols
		if kind == EvNewReportUncovered {
			if len(s.dwUnusedCols) == 0 {
				pool = s.coveredCols // degraded to covered
			} else {
				pool = s.dwUnusedCols
			}
		}
		col, ok := s.pick(pool)
		if !ok {
			return nil, nil
		}
		group, ok := s.pick(s.coveredCols)
		if !ok {
			group = col
		}
		s.nextID++
		id := fmt.Sprintf("evo-report-%d", s.nextID)
		q := fmt.Sprintf("SELECT %s, COUNT(*) AS n FROM %s GROUP BY %s", col, s.Warehouse, col)
		if group != col {
			q = fmt.Sprintf("SELECT %s, %s, COUNT(*) AS n FROM %s GROUP BY %s, %s",
				group, col, s.Warehouse, group, col)
		}
		if err := s.Reports.Create(&report.Definition{ID: id, Title: id, Query: q}); err != nil {
			return nil, err
		}
		return []string{id}, nil

	case EvAddColumnCovered, EvAddColumnUncovered:
		id, ok := s.randomReportID()
		if !ok {
			return nil, nil
		}
		pool := s.coveredCols
		if kind == EvAddColumnUncovered && len(s.dwUnusedCols) > 0 {
			pool = s.dwUnusedCols
		}
		col, ok := s.pick(pool)
		if !ok {
			return nil, nil
		}
		d, _ := s.Reports.Get(id)
		if strings.Contains(d.Query, col) {
			// Already present; treat as a minimum-change event.
			return []string{id}, nil
		}
		// Aggregated reports get an aggregate column; append as
		// COUNT(DISTINCT col) which is always valid.
		if err := s.Reports.AddColumn(id, "COUNT(DISTINCT "+col+")", "d_"+col+itoa(seq)); err != nil {
			return nil, err
		}
		return []string{id}, nil

	case EvChangeFilter:
		id, ok := s.randomReportID()
		if !ok {
			return nil, nil
		}
		col, ok := s.pick(s.coveredCols)
		if !ok {
			return nil, nil
		}
		if err := s.Reports.SetFilter(id, col+" IS NOT NULL"); err != nil {
			return nil, err
		}
		return []string{id}, nil

	case EvDeleteReport:
		id, ok := s.randomReportID()
		if !ok || s.Reports == nil {
			return nil, nil
		}
		all := s.Reports.All()
		if len(all) <= 2 {
			return nil, nil // keep a minimal portfolio alive
		}
		if err := s.Reports.Delete(id); err != nil {
			return nil, err
		}
		return nil, nil

	case EvNewDataRequirement:
		// Load a source-only column into the warehouse, then use it in a
		// new report.
		qualified, ok := s.pick(s.sourceOnlyCols)
		if !ok {
			return s.apply(EvNewReportUncovered, seq)
		}
		parts := strings.SplitN(qualified, ".", 2)
		col := parts[1]
		if err := s.extendWarehouse(col); err != nil {
			return nil, err
		}
		s.nextID++
		id := fmt.Sprintf("evo-report-%d", s.nextID)
		q := fmt.Sprintf("SELECT %s, COUNT(*) AS n FROM %s GROUP BY %s", col, s.Warehouse, col)
		if err := s.Reports.Create(&report.Definition{ID: id, Title: id, Query: q}); err != nil {
			return nil, err
		}
		s.rebuildPools()
		return []string{id}, nil

	case EvNewSource:
		// A new owner's table appears and is loaded + reported on.
		s.nextID++
		name := fmt.Sprintf("newsource%d", s.nextID)
		col := name + "_metric"
		t := relation.NewBase(name, relation.NewSchema(
			relation.Col("patient", relation.TString),
			relation.Col(col, relation.TInt),
		))
		t.AppendVals(relation.Str("Alice Rossi"), relation.Int(1))
		s.Cat.Register(t)
		s.SourceTables = append(s.SourceTables, name)
		if err := s.extendWarehouse(col); err != nil {
			return nil, err
		}
		id := fmt.Sprintf("evo-report-%d", s.nextID)
		q := fmt.Sprintf("SELECT %s, COUNT(*) AS n FROM %s GROUP BY %s", col, s.Warehouse, col)
		if err := s.Reports.Create(&report.Definition{ID: id, Title: id, Query: q}); err != nil {
			return nil, err
		}
		s.rebuildPools()
		return []string{id}, nil
	}
	return nil, nil
}

// extendWarehouse adds a (synthetic NULL-filled) column to the warehouse
// table, modelling a DW schema extension.
func (s *Scenario) extendWarehouse(col string) error {
	dwh, ok := s.Cat.Table(s.Warehouse)
	if !ok {
		return fmt.Errorf("elicit: warehouse %q missing", s.Warehouse)
	}
	if dwh.Schema.HasColumn(col) {
		return nil
	}
	next := relation.NewBase(s.Warehouse, &relation.Schema{
		Columns: append(append([]relation.Column(nil), dwh.Schema.Columns...),
			relation.Col(col, relation.TString)),
	})
	for _, r := range dwh.Rows {
		nr := make(relation.Row, len(r)+1)
		copy(nr, r)
		nr[len(r)] = relation.Str("x")
		next.Rows = append(next.Rows, nr)
	}
	s.Cat.Register(next)
	return nil
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }

// profileOK is a test hook verifying a query still profiles.
func profileOK(cat *sql.Catalog, q string) bool {
	_, err := sql.ProfileSQL(cat, q)
	return err == nil
}
