# Developer entry points. CI (.github/workflows/ci.yml) runs `make ci`.

GO ?= go

.PHONY: build vet test race bench-smoke bench ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One-iteration benchmark pass: catches bitrot in the bench harness
# without paying for a full measurement run. BENCH_OBS makes the render
# benchmarks dump the engine's metrics snapshot alongside the timings.
bench-smoke:
	BENCH_OBS=BENCH_obs.json $(GO) test -run XXX -bench 'ConcurrentRender' -benchtime=1x .

bench:
	BENCH_OBS=BENCH_obs.json $(GO) test -run XXX -bench . -benchtime=2s .

ci: vet build race bench-smoke
