package metadata

import (
	"testing"

	"plabi/internal/relation"
	"plabi/internal/sql"
)

func prescriptions() *relation.Table {
	t := relation.NewBase("prescriptions", relation.NewSchema(
		relation.Col("patient", relation.TString),
		relation.Col("disease", relation.TString),
	))
	t.AppendVals(relation.Str("Alice"), relation.Str("HIV"))
	t.AppendVals(relation.Str("Bob"), relation.Str("asthma"))
	t.AppendVals(relation.Str("Math"), relation.Str("diabetes"))
	return t
}

// policies is the paper's Fig. 2b Policies metadata table.
func policies() *relation.Table {
	t := relation.NewBase("policies", relation.NewSchema(
		relation.Col("patient", relation.TString),
		relation.Col("ShowName", relation.TBool),
		relation.Col("ShowDisease", relation.TBool),
	))
	t.AppendVals(relation.Str("Alice"), relation.Bool(true), relation.Bool(false))
	t.AppendVals(relation.Str("Bob"), relation.Bool(true), relation.Bool(false))
	t.AppendVals(relation.Str("Math"), relation.Bool(false), relation.Bool(false))
	return t
}

func hivAssociation(t *testing.T) *Association {
	t.Helper()
	pred, err := sql.ParseExpr("disease = 'HIV'")
	if err != nil {
		t.Fatal(err)
	}
	return &Association{
		Name: "hiv-restriction",
		Data: "prescriptions",
		When: pred,
		Metadata: map[string]relation.Value{
			"ShowDisease": relation.Bool(false),
			"ShowName":    relation.Bool(false),
		},
		PLARef: "hospital-prescriptions",
	}
}

func TestIntensionalAssociation(t *testing.T) {
	s := NewStore()
	if err := s.AddAssociation(hivAssociation(t)); err != nil {
		t.Fatal(err)
	}
	data := prescriptions()

	tags, err := s.RowMetadata(data, 0) // Alice, HIV
	if err != nil {
		t.Fatal(err)
	}
	if len(tags) != 2 || tags[0].Source != "hiv-restriction" {
		t.Errorf("tags = %v", tags)
	}
	tags, err = s.RowMetadata(data, 1) // Bob, asthma
	if err != nil {
		t.Fatal(err)
	}
	if len(tags) != 0 {
		t.Errorf("Bob should have no intensional tags: %v", tags)
	}
}

// TestNewRowAutomaticallyCovered reproduces the paper's key property:
// inserting a new HIV patient automatically associates the restriction,
// with no metadata modification.
func TestNewRowAutomaticallyCovered(t *testing.T) {
	s := NewStore()
	if err := s.AddAssociation(hivAssociation(t)); err != nil {
		t.Fatal(err)
	}
	data := prescriptions()
	data.AppendVals(relation.Str("Dana"), relation.Str("HIV"))

	tags, err := s.RowMetadata(data, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tags) != 2 {
		t.Fatalf("new HIV row not covered: %v", tags)
	}
	rows, err := s.MatchingRows(data, "hiv-restriction")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0] != 0 || rows[1] != 3 {
		t.Errorf("matching rows = %v", rows)
	}
}

func TestKeyedMetadata(t *testing.T) {
	s := NewStore()
	if err := s.AddKeyed(&KeyedMetadata{
		Name: "patient-policies", Data: "prescriptions", DataKey: "patient",
		Meta: policies(), MetaKey: "patient",
	}); err != nil {
		t.Fatal(err)
	}
	data := prescriptions()

	v, ok, err := s.Lookup(data, 0, "ShowName") // Alice
	if err != nil || !ok || !v.B {
		t.Errorf("Alice ShowName = %v %v %v", v, ok, err)
	}
	v, ok, err = s.Lookup(data, 2, "ShowName") // Math
	if err != nil || !ok || v.B {
		t.Errorf("Math ShowName = %v %v %v", v, ok, err)
	}
	_, ok, err = s.Lookup(data, 0, "Nope")
	if err != nil || ok {
		t.Errorf("unknown key should not resolve")
	}
}

func TestMostRestrictiveBooleanWins(t *testing.T) {
	s := NewStore()
	if err := s.AddAssociation(hivAssociation(t)); err != nil {
		t.Fatal(err)
	}
	// Keyed metadata says ShowName=true for Alice; intensional HIV rule
	// says false. The restrictive false must win.
	if err := s.AddKeyed(&KeyedMetadata{
		Name: "patient-policies", Data: "prescriptions", DataKey: "patient",
		Meta: policies(), MetaKey: "patient",
	}); err != nil {
		t.Fatal(err)
	}
	data := prescriptions()
	v, ok, err := s.Lookup(data, 0, "ShowName")
	if err != nil || !ok {
		t.Fatal(err)
	}
	if v.B {
		t.Error("restrictive false must win over true")
	}
}

func TestStoreValidation(t *testing.T) {
	s := NewStore()
	if err := s.AddAssociation(&Association{}); err == nil {
		t.Error("empty association must fail")
	}
	a := hivAssociation(t)
	if err := s.AddAssociation(a); err != nil {
		t.Fatal(err)
	}
	if err := s.AddAssociation(hivAssociation(t)); err == nil {
		t.Error("duplicate name must fail")
	}
	if err := s.AddKeyed(&KeyedMetadata{Name: "bad", Meta: policies(), MetaKey: "ghost"}); err == nil {
		t.Error("bad meta key must fail")
	}
	if _, err := s.MatchingRows(prescriptions(), "unknown"); err == nil {
		t.Error("unknown association must fail")
	}
	if _, err := s.RowMetadata(prescriptions(), 99); err == nil {
		t.Error("row out of range must fail")
	}
}

func TestAssociationScopedToTable(t *testing.T) {
	s := NewStore()
	if err := s.AddAssociation(hivAssociation(t)); err != nil {
		t.Fatal(err)
	}
	other := relation.NewBase("labresults", relation.NewSchema(
		relation.Col("patient", relation.TString),
		relation.Col("disease", relation.TString),
	))
	other.AppendVals(relation.Str("Zoe"), relation.Str("HIV"))
	tags, err := s.RowMetadata(other, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tags) != 0 {
		t.Errorf("association must not leak across tables: %v", tags)
	}
}
