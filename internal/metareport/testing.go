package metareport

import (
	"fmt"
	"strings"

	"plabi/internal/policy"
	"plabi/internal/provenance"
	"plabi/internal/relation"
	"plabi/internal/report"
	"plabi/internal/sql"
)

// ComplianceTest is one executable check generated from an approved PLA:
// it verifies that a produced report output honours one requirement atom.
// Generated suites give the paper's §6 property — privacy policies tested
// before the system goes into operation — and detect non-compliant
// implementations regardless of where the bug sits (ETL, rendering, or
// enforcement).
type ComplianceTest struct {
	Name string
	// Kind is the requirement kind probed: "access", "condition",
	// "aggregation", "filter", "join".
	Kind string
	// Verify inspects a produced output table (with lineage) and reports
	// compliance.
	Verify func(produced *relation.Table) (bool, string)
}

// MaskValue must match the enforcement layer's placeholder.
var MaskValue = relation.Str("***")

// GenerateTests derives the compliance test suite for one report under
// the PLAs in scope (the report's covering meta-report, its base tables'
// source PLAs, and its own report-level PLAs).
func GenerateTests(reg *policy.Registry, cat *sql.Catalog, tr *provenance.Tracer,
	def *report.Definition, consumer report.Consumer, metaScopes []string) ([]ComplianceTest, error) {

	prof, err := sql.ProfileSQL(cat, def.Query)
	if err != nil {
		return nil, fmt.Errorf("metareport: generate tests: %w", err)
	}
	var plas []*policy.PLA
	seen := map[string]bool{}
	add := func(c *policy.Composite) {
		for _, p := range c.PLAs {
			if !seen[p.ID] {
				seen[p.ID] = true
				plas = append(plas, p)
			}
		}
	}
	add(reg.ForScopes(policy.LevelSource, prof.BaseTables))
	add(reg.ForScopes(policy.LevelWarehouse, prof.BaseTables))
	add(reg.ForScopes(policy.LevelMetaReport, metaScopes))
	add(reg.ForScope(policy.LevelReport, def.ID))
	comp := policy.Compose(plas...)

	sel, err := def.Parse()
	if err != nil {
		return nil, err
	}
	aggCols := map[string]bool{}
	for _, it := range sel.Items {
		if it.Agg != nil {
			aggCols[strings.ToLower(it.OutName())] = true
		}
	}

	var tests []ComplianceTest

	// 1. Access tests: one per output column. Denied or default-denied
	// columns must be fully masked; conditionally allowed columns must be
	// masked wherever a supporting source row violates the condition.
	for name, origins := range prof.OutputNames {
		if aggCols[name] {
			continue
		}
		name := name
		refs := []policy.AttrRef{{Name: name}}
		for _, o := range origins {
			refs = append(refs, policy.AttrRef{Name: o.Column, Table: o.Table})
		}
		d := comp.DecideAttributeRefs(refs, consumer.Role, consumer.Purpose)
		conditions := d.Conditions
		switch {
		case d.Effect == policy.Deny:
			tests = append(tests, ComplianceTest{
				Name: fmt.Sprintf("%s: column %q fully masked for role %s", def.ID, name, consumer.Role),
				Kind: "access",
				Verify: func(produced *relation.Table) (bool, string) {
					ci := produced.Schema.Index(name)
					if ci < 0 {
						return true, "column absent"
					}
					for ri := range produced.Rows {
						if v := produced.Rows[ri][ci]; !v.IsNull() && !v.Equal(MaskValue) {
							return false, fmt.Sprintf("row %d exposes %q", ri, v)
						}
					}
					return true, ""
				},
			})
		case len(conditions) > 0:
			conds := dedupeExprs(conditions)
			tests = append(tests, ComplianceTest{
				Name: fmt.Sprintf("%s: column %q masked when supporting rows violate conditions", def.ID, name),
				Kind: "condition",
				Verify: func(produced *relation.Table) (bool, string) {
					ci := produced.Schema.Index(name)
					if ci < 0 {
						return true, "column absent"
					}
					for ri := range produced.Rows {
						v := produced.Rows[ri][ci]
						if v.IsNull() || v.Equal(MaskValue) {
							continue
						}
						ok, detail := supportSatisfies(tr, produced, ri, conds)
						if !ok {
							return false, fmt.Sprintf("row %d shows %q although %s", ri, v, detail)
						}
					}
					return true, ""
				},
			})
		}
	}

	// 2. Aggregation-threshold tests.
	for _, rule := range comp.AggregationRules() {
		rule := rule
		tests = append(tests, ComplianceTest{
			Name: fmt.Sprintf("%s: every row supported by >= %d distinct %s", def.ID, rule.MinCount, byName(rule.By)),
			Kind: "aggregation",
			Verify: func(produced *relation.Table) (bool, string) {
				for ri := range produced.Rows {
					rt, err := tr.TraceRow(produced, ri)
					if err != nil {
						return false, err.Error()
					}
					support := 0
					if rule.By == "" {
						support = len(rt.Rows)
					} else {
						for table := range rt.Support {
							if n := tr.DistinctSupport(rt, table, rule.By); n > support {
								support = n
							}
						}
					}
					if support < rule.MinCount {
						return false, fmt.Sprintf("row %d has support %d < %d", ri, support, rule.MinCount)
					}
				}
				return true, ""
			},
		})
	}

	// 3. Row-filter tests (non-aggregated outputs).
	if !prof.Aggregated {
		for _, f := range comp.Filters() {
			f := f
			tests = append(tests, ComplianceTest{
				Name: fmt.Sprintf("%s: no row violates filter %s", def.ID, f),
				Kind: "filter",
				Verify: func(produced *relation.Table) (bool, string) {
					for ri := range produced.Rows {
						ok, detail := supportSatisfies(tr, produced, ri, []relation.Expr{f})
						if !ok {
							return false, fmt.Sprintf("row %d: %s", ri, detail)
						}
					}
					return true, ""
				},
			})
		}
	}

	// 4. Join-permission tests (static: the definition must not join
	// forbidden pairs; verified on the produced table's own origins too).
	for _, jp := range prof.JoinPairs {
		jp := jp
		a := perTableComposite(reg, jp.A)
		b := perTableComposite(reg, jp.B)
		okA, _ := a.JoinAllowed(jp.B)
		okB, _ := b.JoinAllowed(jp.A)
		if okA && okB {
			continue
		}
		tests = append(tests, ComplianceTest{
			Name: fmt.Sprintf("%s: forbidden join %s-%s yields no data", def.ID, jp.A, jp.B),
			Kind: "join",
			Verify: func(produced *relation.Table) (bool, string) {
				if produced.NumRows() == 0 {
					return true, ""
				}
				// Any produced row combining lineage from both tables is
				// a violation.
				for ri := range produced.Rows {
					support := map[string]bool{}
					for _, ref := range produced.RowLineage(ri) {
						support[ref.Table] = true
					}
					if support[jp.A] && support[jp.B] {
						return false, fmt.Sprintf("row %d combines %s and %s", ri, jp.A, jp.B)
					}
				}
				return true, ""
			},
		})
	}
	return tests, nil
}

// RunTests evaluates a suite against a produced table, returning the
// failures.
func RunTests(tests []ComplianceTest, produced *relation.Table) []string {
	var failures []string
	for _, tc := range tests {
		if ok, detail := tc.Verify(produced); !ok {
			failures = append(failures, tc.Name+": "+detail)
		}
	}
	return failures
}

func perTableComposite(reg *policy.Registry, table string) *policy.Composite {
	var plas []*policy.PLA
	for _, lvl := range []policy.Level{policy.LevelSource, policy.LevelWarehouse} {
		plas = append(plas, reg.ForScope(lvl, table).PLAs...)
	}
	return policy.Compose(plas...)
}

func byName(by string) string {
	if by == "" {
		return "rows"
	}
	return by
}

func dedupeExprs(in []relation.Expr) []relation.Expr {
	seen := map[string]bool{}
	var out []relation.Expr
	for _, e := range in {
		k := e.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, e)
		}
	}
	return out
}

// supportSatisfies mirrors the enforcement layer's semantics: every
// supporting base row whose table carries the referenced columns must
// satisfy every condition.
func supportSatisfies(tr *provenance.Tracer, produced *relation.Table, ri int, conds []relation.Expr) (bool, string) {
	rt, err := tr.TraceRow(produced, ri)
	if err != nil {
		return false, err.Error()
	}
	for _, cond := range conds {
		refs := relation.ColumnsOf(cond)
		for _, ref := range rt.Rows {
			vals := make(relation.Row, len(refs))
			applicable := true
			for i, col := range refs {
				v, ok := tr.BaseValue(ref, col)
				if !ok {
					applicable = false
					break
				}
				vals[i] = v
			}
			if !applicable {
				continue
			}
			cols := make([]relation.Column, len(refs))
			for i, c := range refs {
				cols[i] = relation.Column{Name: c, Type: vals[i].Kind}
			}
			ok, err := relation.EvalPredicate(cond, vals, &relation.Schema{Columns: cols})
			if err != nil || !ok {
				return false, fmt.Sprintf("%s violates %s", ref, cond)
			}
		}
	}
	return true, ""
}
