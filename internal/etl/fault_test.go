package etl

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"plabi/internal/fault"
	"plabi/internal/relation"
)

// panicStep panics when run — the organic worker-crash case.
type panicStep struct {
	baseStep
}

func (p *panicStep) Op() string           { return "panic" }
func (p *panicStep) Inputs() []string     { return nil }
func (p *panicStep) Output() string       { return "out-" + p.name }
func (p *panicStep) Run(c *Context) error { panic("step exploded") }

// noopStep writes an empty output, to fill waves around a panicking step.
type noopStep struct {
	baseStep
	out string
}

func (s *noopStep) Op() string       { return "noop" }
func (s *noopStep) Inputs() []string { return nil }
func (s *noopStep) Output() string   { return s.out }
func (s *noopStep) Run(c *Context) error {
	c.Put(s.out, relation.NewBase(s.out, relation.NewSchema(relation.Col("x", relation.TInt))))
	return nil
}

func TestStepPanicIsolatedSerial(t *testing.T) {
	c := NewContext(nil)
	p := &Pipeline{Workers: 1, Steps: []Step{&panicStep{baseStep{"boom"}}}}
	_, err := p.Run(c, false)
	var ie *fault.InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("want InternalError, got %v", err)
	}
	if ie.Site != "etl.step(boom)" || len(ie.Stack) == 0 {
		t.Fatalf("InternalError = %+v", ie)
	}
}

func TestStepPanicIsolatedInWorkerPool(t *testing.T) {
	// A panicking step sharing a wave with healthy steps must fail the
	// run as a typed error while the pool drains cleanly.
	c := NewContext(nil)
	steps := []Step{&panicStep{baseStep{"boom"}}}
	for i := 0; i < 6; i++ {
		steps = append(steps, &noopStep{baseStep{fmt.Sprintf("ok%d", i)}, fmt.Sprintf("t%d", i)})
	}
	p := &Pipeline{Workers: 4, Steps: steps}
	_, err := p.Run(c, false)
	if !errors.Is(err, fault.ErrInternal) {
		t.Fatalf("want ErrInternal, got %v", err)
	}
}

// trippingCtx reports Canceled after its Err method has been called n
// times — a deterministic stand-in for cancellation arriving mid-step.
type trippingCtx struct {
	context.Context
	mu   sync.Mutex
	left int
}

func newTrippingCtx(n int) *trippingCtx {
	return &trippingCtx{Context: context.Background(), left: n}
}

func (c *trippingCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.left <= 0 {
		return context.Canceled
	}
	c.left--
	return nil
}

func (c *trippingCtx) Deadline() (time.Time, bool) { return time.Time{}, false }

func TestCancellationLandsMidStep(t *testing.T) {
	// One cleanse over a table large enough for several in-loop polls.
	// The ctx trips after the run's first few checks, so the only place
	// the cancellation can land is inside the row loop — a run that only
	// polls between waves would complete instead.
	big := relation.NewBase("big", relation.NewSchema(relation.Col("name", relation.TString)))
	for i := 0; i < 8*cancelCheckRows; i++ {
		big.AppendVals(relation.Str(fmt.Sprintf("  name %d ", i)))
	}
	src := NewSource("s", "s", big)
	c := NewContext(nil)
	p := &Pipeline{Workers: 1, Steps: []Step{
		NewExtract("e", src, "big", ""),
		NewCleanse("c", "big", "clean", "name"),
	}}
	// Budget: wave-top checks and the extract's sleep check pass; the
	// trip happens within the cleanse's row loop.
	_, err := p.RunContext(newTrippingCtx(4), c, false)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled from inside the row loop, got %v", err)
	}
	if _, gerr := c.Get("clean"); gerr == nil {
		t.Fatal("cancelled cleanse must not publish its output")
	}
}

func TestExtractRetriesTransientFaults(t *testing.T) {
	hosp, _, _ := sources()
	fi := fault.NewInjector(9)
	fi.Enable(fault.SiteETLExtract, fault.SiteConfig{ErrorRate: 1, Transient: true, Times: 2})
	c := NewContext(nil)
	c.Faults = fi
	c.Retry = fault.RetryPolicy{MaxAttempts: 4, Base: time.Microsecond, Max: 10 * time.Microsecond}
	p := &Pipeline{Steps: []Step{NewExtract("e", hosp, "prescriptions", "")}}
	if _, err := p.Run(c, false); err != nil {
		t.Fatalf("extraction must recover within the retry budget: %v", err)
	}
	if _, err := c.Get("prescriptions"); err != nil {
		t.Fatal("extracted table missing after retried success")
	}
	if fires := len(fi.Schedule()); fires != 2 {
		t.Fatalf("fires = %d, want 2", fires)
	}
}

func TestExtractExhaustsRetryBudget(t *testing.T) {
	hosp, _, _ := sources()
	fi := fault.NewInjector(9)
	fi.Enable(fault.SiteETLExtract, fault.SiteConfig{ErrorRate: 1, Transient: true})
	c := NewContext(nil)
	c.Faults = fi
	c.Retry = fault.RetryPolicy{MaxAttempts: 3, Base: time.Microsecond}
	p := &Pipeline{Steps: []Step{NewExtract("e", hosp, "prescriptions", "")}}
	_, err := p.Run(c, false)
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("want exhausted injected error, got %v", err)
	}
}

func TestExtractMissingTableIsPermanent(t *testing.T) {
	hosp, _, _ := sources()
	c := NewContext(nil)
	c.Retry = fault.RetryPolicy{MaxAttempts: 4, Base: time.Hour} // a retry would hang
	p := &Pipeline{Steps: []Step{NewExtract("e", hosp, "no-such-table", "")}}
	done := make(chan error, 1)
	go func() {
		_, err := p.Run(c, false)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("want error for missing table")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("missing-table extract retried instead of failing permanently")
	}
}

func TestInjectedStepErrorFailsRun(t *testing.T) {
	hosp, _, _ := sources()
	fi := fault.NewInjector(2)
	fi.Enable(fault.SiteETLStep, fault.SiteConfig{ErrorRate: 1, Times: 1})
	c := NewContext(nil)
	c.Faults = fi
	p := &Pipeline{Steps: []Step{NewExtract("e", hosp, "prescriptions", "")}}
	_, err := p.Run(c, false)
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("want injected step error, got %v", err)
	}
}

func TestInjectedStepPanicIsolated(t *testing.T) {
	hosp, _, _ := sources()
	fi := fault.NewInjector(2)
	fi.Enable(fault.SiteETLStep, fault.SiteConfig{PanicRate: 1, Times: 1})
	c := NewContext(nil)
	c.Faults = fi
	p := &Pipeline{Workers: 4, Steps: []Step{NewExtract("e", hosp, "prescriptions", "")}}
	_, err := p.Run(c, false)
	if !errors.Is(err, fault.ErrInternal) {
		t.Fatalf("want isolated injected panic, got %v", err)
	}
}
