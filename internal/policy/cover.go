package policy

import "strings"

// RuleCovers reports whether rule s matches every (attribute, role,
// purpose) triple rule r matches. It is the covering relation behind
// plalint's PL001 dead-rule analysis and the compile-time pruning of
// residual render programs: under most-restrictive-wins composition, an
// allow rule covered by an unconditional deny can never influence a
// decision, and a rule covered by an earlier unconditional rule of the
// same effect is redundant.
func RuleCovers(s, r AccessRule) bool {
	if s.Attribute != "*" && !strings.EqualFold(s.Attribute, r.Attribute) {
		return false
	}
	return SetCovers(s.Roles, r.Roles) && SetCovers(s.Purposes, r.Purposes)
}

// SetCovers reports whether the matcher set sup (empty = everything)
// accepts at least everything sub accepts. Matching is case-insensitive,
// mirroring rule evaluation.
func SetCovers(sup, sub []string) bool {
	if len(sup) == 0 {
		return true
	}
	if len(sub) == 0 {
		return false
	}
	for _, v := range sub {
		found := false
		for _, w := range sup {
			if strings.EqualFold(v, w) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
