package relation

import (
	"time"
)

// Vector is one column of a Batch decomposed into typed storage. A column
// whose non-null values all share one Kind is stored in the matching flat
// array (plus a null mask), so predicate and aggregation kernels run tight
// loops over contiguous memory instead of loading the full Value struct
// per cell. Mixed-kind columns (possible because schemas are advisory —
// e.g. masked cells drop strings into numeric columns) fall back to a
// generic []Value representation with identical semantics.
type Vector struct {
	// Kind is the homogeneous value kind, or TNull when the column is
	// mixed-kind (generic fallback) or entirely null.
	Kind Type
	// Null flags null cells; nil when the column has no nulls.
	Null []bool

	I []int64
	F []float64
	S []string
	B []bool
	T []time.Time

	// V is the generic fallback storage for mixed-kind columns.
	V []Value

	n int
}

// Len returns the number of elements.
func (v *Vector) Len() int { return v.n }

// Value reconstructs element i as a Value.
func (v *Vector) Value(i int) Value {
	if v.V != nil {
		return v.V[i]
	}
	if v.Null != nil && v.Null[i] {
		return Null()
	}
	switch v.Kind {
	case TString:
		return Str(v.S[i])
	case TInt:
		return Int(v.I[i])
	case TFloat:
		return Float(v.F[i])
	case TBool:
		return Bool(v.B[i])
	case TDate:
		return Value{Kind: TDate, T: v.T[i]}
	default:
		return Null()
	}
}

// IsNull reports whether element i is NULL.
func (v *Vector) IsNull(i int) bool {
	if v.V != nil {
		return v.V[i].IsNull()
	}
	return v.Null != nil && v.Null[i]
}

// NewVector decomposes column ci of t into typed storage.
func NewVector(t *Table, ci int) *Vector {
	n := len(t.Rows)
	v := &Vector{n: n}
	kind := TNull
	for _, r := range t.Rows {
		k := r[ci].Kind
		if k == TNull {
			continue
		}
		if kind == TNull {
			kind = k
		} else if kind != k {
			kind = -1 // mixed
			break
		}
	}
	if kind == TNull || kind == -1 {
		// All-null or mixed: generic storage.
		v.V = make([]Value, n)
		for i, r := range t.Rows {
			v.V[i] = r[ci]
		}
		return v
	}
	v.Kind = kind
	var nulls []bool
	setNull := func(i int) {
		if nulls == nil {
			nulls = make([]bool, n)
		}
		nulls[i] = true
	}
	switch kind {
	case TString:
		v.S = make([]string, n)
		for i, r := range t.Rows {
			if c := r[ci]; c.Kind == TString {
				v.S[i] = c.S
			} else {
				setNull(i)
			}
		}
	case TInt:
		v.I = make([]int64, n)
		for i, r := range t.Rows {
			if c := r[ci]; c.Kind == TInt {
				v.I[i] = c.I
			} else {
				setNull(i)
			}
		}
	case TFloat:
		v.F = make([]float64, n)
		for i, r := range t.Rows {
			if c := r[ci]; c.Kind == TFloat {
				v.F[i] = c.F
			} else {
				setNull(i)
			}
		}
	case TBool:
		v.B = make([]bool, n)
		for i, r := range t.Rows {
			if c := r[ci]; c.Kind == TBool {
				v.B[i] = c.B
			} else {
				setNull(i)
			}
		}
	case TDate:
		v.T = make([]time.Time, n)
		for i, r := range t.Rows {
			if c := r[ci]; c.Kind == TDate {
				v.T[i] = c.T
			} else {
				setNull(i)
			}
		}
	}
	v.Null = nulls
	return v
}

// truth is a vector of SQL three-valued logic outcomes.
type truth []int8

// Three-valued logic outcomes.
const (
	tF int8 = iota // FALSE (includes "non-bool operand" at logic level)
	tT             // TRUE
	tN             // NULL / unknown
)

// truthOf maps a Value to its predicate outcome under evalLogic's rules:
// exactly-true booleans are TRUE, false booleans FALSE, everything else
// (NULL or non-bool) NULL.
func truthOf(v Value) int8 {
	if v.Kind == TBool {
		if v.B {
			return tT
		}
		return tF
	}
	return tN
}

// cmpTruth converts a comparison result to a truth value for the operator.
func cmpTruth(op BinOp, c int) int8 {
	var b bool
	switch op {
	case OpEq:
		b = c == 0
	case OpNe:
		b = c != 0
	case OpLt:
		b = c < 0
	case OpLe:
		b = c <= 0
	case OpGt:
		b = c > 0
	default:
		b = c >= 0
	}
	if b {
		return tT
	}
	return tF
}

// cmpValues evaluates `a op b` for a comparison operator with the exact
// semantics of BinExpr.Eval: NULL operands and incomparable kinds yield
// NULL.
func cmpValues(op BinOp, a, b Value) int8 {
	if a.IsNull() || b.IsNull() {
		return tN
	}
	c, ok := a.Compare(b)
	if !ok {
		return tN
	}
	return cmpTruth(op, c)
}

// cmpVecLit compares every element of v with the literal lit.
func cmpVecLit(op BinOp, v *Vector, lit Value) truth {
	out := make(truth, v.n)
	if lit.IsNull() {
		for i := range out {
			out[i] = tN
		}
		return out
	}
	if v.V != nil {
		for i := range out {
			out[i] = cmpValues(op, v.V[i], lit)
		}
		return out
	}
	switch {
	case v.Kind == TString && lit.Kind == TString:
		ls := lit.S
		for i, s := range v.S {
			if v.Null != nil && v.Null[i] {
				out[i] = tN
				continue
			}
			switch {
			case s < ls:
				out[i] = cmpTruth(op, -1)
			case s > ls:
				out[i] = cmpTruth(op, 1)
			default:
				out[i] = cmpTruth(op, 0)
			}
		}
	case v.Kind == TInt && lit.Kind == TInt:
		li := lit.I
		for i, x := range v.I {
			if v.Null != nil && v.Null[i] {
				out[i] = tN
				continue
			}
			switch {
			case x < li:
				out[i] = cmpTruth(op, -1)
			case x > li:
				out[i] = cmpTruth(op, 1)
			default:
				out[i] = cmpTruth(op, 0)
			}
		}
	case (v.Kind == TInt || v.Kind == TFloat) && (lit.Kind == TInt || lit.Kind == TFloat):
		// Mixed numeric: coerce to float64 like Value.Compare.
		lf, _ := lit.AsFloat()
		get := func(i int) float64 {
			if v.Kind == TInt {
				return float64(v.I[i])
			}
			return v.F[i]
		}
		for i := 0; i < v.n; i++ {
			if v.Null != nil && v.Null[i] {
				out[i] = tN
				continue
			}
			x := get(i)
			switch {
			case x < lf:
				out[i] = cmpTruth(op, -1)
			case x > lf:
				out[i] = cmpTruth(op, 1)
			case x == lf:
				out[i] = cmpTruth(op, 0)
			default: // NaN involved: incomparable under <,>; Compare says equal
				out[i] = cmpTruth(op, 0)
			}
		}
	default:
		// Kind mismatch or per-element semantics (dates, bools): generic.
		for i := 0; i < v.n; i++ {
			out[i] = cmpValues(op, v.Value(i), lit)
		}
	}
	return out
}

// cmpVecVec compares two vectors element-wise.
func cmpVecVec(op BinOp, a, b *Vector) truth {
	out := make(truth, a.n)
	if a.V == nil && b.V == nil && a.Kind == TString && b.Kind == TString {
		for i := range out {
			if (a.Null != nil && a.Null[i]) || (b.Null != nil && b.Null[i]) {
				out[i] = tN
				continue
			}
			x, y := a.S[i], b.S[i]
			switch {
			case x < y:
				out[i] = cmpTruth(op, -1)
			case x > y:
				out[i] = cmpTruth(op, 1)
			default:
				out[i] = cmpTruth(op, 0)
			}
		}
		return out
	}
	if a.V == nil && b.V == nil && a.Kind == TInt && b.Kind == TInt {
		for i := range out {
			if (a.Null != nil && a.Null[i]) || (b.Null != nil && b.Null[i]) {
				out[i] = tN
				continue
			}
			x, y := a.I[i], b.I[i]
			switch {
			case x < y:
				out[i] = cmpTruth(op, -1)
			case x > y:
				out[i] = cmpTruth(op, 1)
			default:
				out[i] = cmpTruth(op, 0)
			}
		}
		return out
	}
	for i := range out {
		out[i] = cmpValues(op, a.Value(i), b.Value(i))
	}
	return out
}

// likeVec evaluates `v LIKE pattern` element-wise (BinExpr OpLike
// semantics: non-string operands yield NULL).
func likeVec(v *Vector, pattern Value) truth {
	out := make(truth, v.n)
	if pattern.IsNull() {
		for i := range out {
			out[i] = tN
		}
		return out
	}
	for i := 0; i < v.n; i++ {
		lv := v.Value(i)
		if lv.IsNull() {
			out[i] = tN
			continue
		}
		if lv.Kind != TString || pattern.Kind != TString {
			out[i] = tN
			continue
		}
		if likeMatch(pattern.S, lv.S) {
			out[i] = tT
		} else {
			out[i] = tF
		}
	}
	return out
}

// isNullVec evaluates IS [NOT] NULL element-wise.
func isNullVec(v *Vector, negate bool) truth {
	out := make(truth, v.n)
	for i := 0; i < v.n; i++ {
		if v.IsNull(i) != negate {
			out[i] = tT
		} else {
			out[i] = tF
		}
	}
	return out
}

// inVec evaluates `v IN (lits...)` element-wise with InExpr semantics.
func inVec(v *Vector, lits []Value, negate bool) truth {
	out := make(truth, v.n)
	for i := 0; i < v.n; i++ {
		el := v.Value(i)
		if el.IsNull() {
			out[i] = tN
			continue
		}
		sawNull := false
		res := tF
		for _, lv := range lits {
			if lv.IsNull() {
				sawNull = true
				continue
			}
			if el.Equal(lv) {
				res = tT
				break
			}
		}
		switch {
		case res == tT && negate:
			out[i] = tF
		case res == tT:
			out[i] = tT
		case sawNull:
			out[i] = tN
		case negate:
			out[i] = tT
		default:
			out[i] = tF
		}
	}
	return out
}

// boolVec maps a vector to predicate outcomes (bare column used as a
// boolean): exactly-true booleans are TRUE, false FALSE, all else NULL.
func boolVec(v *Vector) truth {
	out := make(truth, v.n)
	if v.V == nil && v.Kind == TBool && v.Null == nil {
		for i, b := range v.B {
			if b {
				out[i] = tT
			}
		}
		return out
	}
	for i := 0; i < v.n; i++ {
		out[i] = truthOf(v.Value(i))
	}
	return out
}

// andTruth combines two truth vectors with SQL AND (in place into a).
func andTruth(a, b truth) truth {
	for i := range a {
		x, y := a[i], b[i]
		switch {
		case x == tF || y == tF:
			a[i] = tF
		case x == tN || y == tN:
			a[i] = tN
		default:
			a[i] = tT
		}
	}
	return a
}

// orTruth combines two truth vectors with SQL OR (in place into a).
func orTruth(a, b truth) truth {
	for i := range a {
		x, y := a[i], b[i]
		switch {
		case x == tT || y == tT:
			a[i] = tT
		case x == tN || y == tN:
			a[i] = tN
		default:
			a[i] = tF
		}
	}
	return a
}

// notTruth negates a truth vector in place (NULL stays NULL).
func notTruth(a truth) truth {
	for i := range a {
		switch a[i] {
		case tT:
			a[i] = tF
		case tF:
			a[i] = tT
		}
	}
	return a
}
