package relation

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden segment files under testdata/")

// TestGoldenSegmentBytes pins the on-disk segment format: encoding the
// fixed fixture must reproduce the checked-in file byte for byte, so any
// format change is an explicit decision (run with -update to accept it),
// and the same input encoded twice is bitwise deterministic.
func TestGoldenSegmentBytes(t *testing.T) {
	tab := typesFixture()
	data, zones, err := encodeSegment("alltypes", 0, 0, tab.Schema, tab.Rows)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "alltypes.seg")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/relation -run Golden -update`): %v", err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("segment encoding drifted from %s (%d vs %d bytes); rerun with -update if intended",
			golden, len(data), len(want))
	}

	// Two-run determinism.
	data2, _, err := encodeSegment("alltypes", 0, 0, tab.Schema, tab.Rows)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("encoding is not deterministic across runs")
	}

	// The golden bytes decode back to the fixture.
	h, rows, err := decodeSegment(want)
	if err != nil {
		t.Fatal(err)
	}
	if h.Rows != len(tab.Rows) || h.Table != "alltypes" {
		t.Fatalf("header = %+v", h)
	}
	for i := range tab.Rows {
		if !sameRow(rows[i], tab.Rows[i]) {
			t.Fatalf("row %d: got %v want %v", i, rows[i], tab.Rows[i])
		}
	}

	// Zone sanity on the golden fixture: the int column has bounds, the
	// NaN/Inf-polluted float column and the all-null column do not.
	ii := tab.Schema.Index("i")
	if !zones[ii].hasZone || zones[ii].min.I != -3 || zones[ii].max.I != 42 {
		t.Errorf("int zone = %+v", zones[ii])
	}
	if zones[tab.Schema.Index("f")].hasZone {
		t.Error("NaN/Inf float column must not carry a zone")
	}
	az := zones[tab.Schema.Index("allnull")]
	if !az.allNull || az.hasZone {
		t.Errorf("all-null zone = %+v", az)
	}

	// A flipped bit in the header region is caught by the header CRC and
	// surfaces as the typed corruption error.
	c := append([]byte(nil), want...)
	c[len(segMagic)+6] ^= 0x01
	if _, _, err := decodeSegment(c); !errors.Is(err, ErrSegmentCorrupt) {
		t.Fatalf("header corruption: err = %v, want ErrSegmentCorrupt", err)
	}
	var ce *CorruptError
	if _, _, err := decodeSegment(c); !errors.As(err, &ce) {
		t.Fatalf("header corruption: err = %T, want *CorruptError", err)
	}
}

// FuzzSegmentDecode drives the decoder over arbitrary bytes: it must
// return rows consistent with its header or a typed corruption error —
// never panic, never allocate unboundedly, never return junk silently.
func FuzzSegmentDecode(f *testing.F) {
	// Seeds: one segment per encoding family plus corrupt variants.
	seedTables := []*Table{typesFixture()}
	one := NewBase("one", NewSchema(Col("a", TInt), Col("b", TString)))
	one.AppendVals(Int(1), Str("x"))
	one.AppendVals(Null(), Str("x"))
	seedTables = append(seedTables, one)
	empty := NewBase("empty", NewSchema(Col("a", TBool)))
	seedTables = append(seedTables, empty)
	for _, tab := range seedTables {
		data, _, err := encodeSegment(tab.Name, 0, 0, tab.Schema, tab.Rows)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		if len(data) > 16 {
			trunc := data[:len(data)-7]
			f.Add(trunc)
			flip := append([]byte(nil), data...)
			flip[len(flip)/2] ^= 0xff
			f.Add(flip)
		}
	}
	f.Add([]byte(segMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, rows, err := decodeSegment(data)
		if err != nil {
			if !errors.Is(err, ErrSegmentCorrupt) {
				t.Fatalf("non-typed decode error: %v", err)
			}
			return
		}
		if h.Rows != len(rows) {
			t.Fatalf("header says %d rows, decoded %d", h.Rows, len(rows))
		}
		for _, r := range rows {
			if len(r) != len(h.Cols) {
				t.Fatalf("row arity %d, header has %d columns", len(r), len(h.Cols))
			}
		}
	})
}
