package plabi

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"

	"plabi/internal/audit"
	"plabi/internal/compile"
	"plabi/internal/core"
	"plabi/internal/enforce"
	"plabi/internal/etl"
	"plabi/internal/fault"
	"plabi/internal/metareport"
	"plabi/internal/obs"
	"plabi/internal/relation"
	"plabi/internal/report"
	"plabi/internal/sql"
	"plabi/internal/workload"
)

// Sentinel errors, matched with errors.Is. Render and RunETL failures
// caused by PLA enforcement wrap ErrPLAViolation; the concrete blocking
// decisions are recovered with errors.As on *BlockedError.
var (
	// ErrUnknownReport is returned by Render, CheckReportCompliance and
	// ComplianceSuite for an unregistered report id.
	ErrUnknownReport = report.ErrUnknownReport
	// ErrUnknownTable is returned when a query names an unregistered
	// relation.
	ErrUnknownTable = sql.ErrUnknownTable
	// ErrPLAViolation is the sentinel behind every enforcement refusal.
	ErrPLAViolation = enforce.ErrPLAViolation
	// ErrAuditUnavailable marks an audit-sink write that failed past the
	// retry budget; under WithFailClosed, Render errors wrap it instead
	// of delivering un-audited data.
	ErrAuditUnavailable = audit.ErrAuditUnavailable
	// ErrInternal is the sentinel behind recovered worker panics; the
	// concrete site and stack are recovered with errors.As on
	// *InternalError.
	ErrInternal = fault.ErrInternal
	// ErrInjected is the sentinel behind every injected fault, for chaos
	// harnesses distinguishing injected failures from organic ones.
	ErrInjected = fault.ErrInjected
)

// Re-exported types: the public vocabulary of the engine. The underlying
// packages stay internal; these aliases are the supported surface.
type (
	// Consumer identifies who is asking for a report and why.
	Consumer = report.Consumer
	// ReportDefinition is a registered report (id, title, SQL, roles).
	ReportDefinition = report.Definition
	// Source is one data provider: an owning institution and its tables.
	Source = etl.Source
	// Pipeline is a guarded ETL pipeline.
	Pipeline = etl.Pipeline
	// Step is one ETL operation.
	Step = etl.Step
	// ETLResult reports one pipeline run.
	ETLResult = etl.Result
	// Delta is one source-table change set: inserts, in-place updates
	// and deletes addressed by pre-delta row index.
	Delta = etl.Delta
	// RowUpdate replaces the values of one existing row in a delta.
	RowUpdate = etl.RowUpdate
	// DeltaBatch groups the deltas applied and committed together.
	DeltaBatch = etl.Batch
	// DeltaChange summarizes how one relation changed during a delta.
	DeltaChange = etl.Change
	// DeltaResult reports one incremental refresh: per-step recompute
	// accounting and the set of changed relations.
	DeltaResult = etl.DeltaResult
	// Enforced is a rendered report after PLA enforcement.
	Enforced = enforce.Enforced
	// Decision is one enforcement decision (mask, suppress, block, ...).
	Decision = enforce.Decision
	// BlockedError carries the decisions behind a refused operation.
	BlockedError = enforce.BlockedError
	// CacheStats snapshots the render decision-cache counters.
	CacheStats = enforce.CacheStats
	// MetaReport is an owner-approved upper bound on disclosure.
	MetaReport = metareport.MetaReport
	// ComplianceTest is one PLA-derived test over a rendered report.
	ComplianceTest = metareport.ComplianceTest
	// Table is an in-memory relation with lineage.
	Table = relation.Table
	// Row is one relation row, as carried by delta batches.
	Row = relation.Row
	// AuditEvent is one audit-log record.
	AuditEvent = audit.Event
	// AuditLog is the append-only audit trail.
	AuditLog = audit.Log
	// ReleaseReport documents one source-level release (Fig. 2a):
	// anonymization, suppression and consent filtering applied.
	ReleaseReport = enforce.ReleaseReport
	// Metrics is an observability registry: counters, gauges, latency
	// histograms and span tracing. A nil *Metrics is a valid no-op
	// registry.
	Metrics = obs.Metrics
	// MetricsSnapshot is a point-in-time copy of every metric.
	MetricsSnapshot = obs.Snapshot
	// HistogramSnapshot is the frozen state of one latency histogram.
	HistogramSnapshot = obs.HistogramSnapshot
	// SpanRecord is one completed span: name, correlation id, duration
	// and attributes.
	SpanRecord = obs.SpanRecord
	// FaultInjector drives deterministic, seedable fault schedules
	// through the engine's operational boundaries (chaos testing).
	FaultInjector = fault.Injector
	// FaultConfig configures injection at one site (rates, latency,
	// transience, fire bound).
	FaultConfig = fault.SiteConfig
	// RetryPolicy bounds retries with exponential backoff and jitter at
	// the engine's retryable sites.
	RetryPolicy = fault.RetryPolicy
	// InternalError is a recovered worker panic carrying site and stack.
	InternalError = fault.InternalError
	// CompiledReport is the residual render program one (report, role,
	// purpose) triple compiles to: static verdicts folded, thresholds
	// baked, row filters pre-bound, dead rules pruned. Inspect it via
	// its fields or Explain.
	CompiledReport = compile.Program
)

// NewMetrics returns an empty observability registry, for sharing one
// registry across engines or publishing it before Open.
func NewMetrics() *Metrics { return obs.New() }

// NewFaultInjector returns an injector with no enabled sites. Enable
// sites with Enable or EnableSpec and attach it with WithFaultInjector
// (or Engine-level wiring in internal harnesses). A fixed seed replays
// the same fault schedule.
func NewFaultInjector(seed int64) *FaultInjector { return fault.NewInjector(seed) }

// FaultSites lists the canonical injection-site names the engine
// consults: etl.extract, etl.step, etl.delta, render.worker,
// audit.sink.write, release.source, segment.read.
func FaultSites() []string { return fault.Sites() }

// DefaultRetryPolicy is the engine-wide default for retryable sites:
// 4 attempts, 5ms base backoff doubling to a 200ms cap, half-width
// jitter.
func DefaultRetryPolicy() RetryPolicy { return fault.DefaultRetryPolicy() }

// CorrelationID returns the correlation id carried by ctx ("" when none).
// Every Render / RunETL / CheckReportCompliance call stamps its span's id
// into the audit events it appends, so logs, spans and metrics join on it.
func CorrelationID(ctx context.Context) string { return obs.CorrelationID(ctx) }

// WithCorrelationID returns a ctx carrying an externally chosen
// correlation id (e.g. a request id); spans started under it adopt the id
// instead of minting one.
func WithCorrelationID(ctx context.Context, id string) context.Context {
	return obs.WithCorrelationID(ctx, id)
}

// NewSource builds a source from tables, keyed by table name.
func NewSource(name, owner string, tables ...*Table) *Source {
	return etl.NewSource(name, owner, tables...)
}

// Option configures an Engine at Open time.
type Option func(*options)

type options struct {
	auditSink  io.Writer
	cacheSize  int
	workers    int
	metrics    *obs.Metrics
	metricsSet bool
	faults     *fault.Injector
	faultsSet  bool
	retry      *fault.RetryPolicy
	retrySites map[string]fault.RetryPolicy
	failClosed bool
	compiled   bool
	segmentDir string
	segmentSet bool
	spillRows  int
	// allowNilMetrics preserves Open's documented WithMetrics(nil)
	// semantics (disable instrumentation) through validation.
	allowNilMetrics bool
}

// validate reports the first option misuse: values no engine
// configuration can mean. Open forgives these by clamping (see
// clampMisuse); OpenHealthcare surfaces them as a returned error.
func (o *options) validate() error {
	if o.workers < 0 {
		return fmt.Errorf("plabi: WithWorkers(%d): worker count cannot be negative", o.workers)
	}
	if o.cacheSize < 0 {
		return fmt.Errorf("plabi: WithCacheSize(%d): cache size cannot be negative", o.cacheSize)
	}
	if o.metricsSet && o.metrics == nil && !o.allowNilMetrics {
		return fmt.Errorf("plabi: WithMetrics(nil): detaching instrumentation is an Open-only convenience; pass a registry (NewMetrics()) here")
	}
	if o.faultsSet && o.faults == nil {
		return fmt.Errorf("plabi: WithFaultInjector(nil): injector cannot be nil; omit the option instead")
	}
	if o.retry != nil {
		if err := validRetry("WithRetryPolicy", *o.retry); err != nil {
			return err
		}
	}
	if o.segmentSet && o.segmentDir == "" {
		return fmt.Errorf("plabi: WithSegmentStore(\"\"): directory cannot be empty; omit the option instead")
	}
	if o.spillRows < 0 {
		return fmt.Errorf("plabi: WithSpillThreshold(%d): threshold cannot be negative", o.spillRows)
	}
	known := map[string]bool{}
	for _, s := range fault.Sites() {
		known[s] = true
	}
	for site, p := range o.retrySites {
		if !known[site] {
			return fmt.Errorf("plabi: WithRetryPolicyFor(%q): unknown site (want one of %v)", site, fault.Sites())
		}
		if err := validRetry("WithRetryPolicyFor("+site+")", p); err != nil {
			return err
		}
	}
	return nil
}

func validRetry(opt string, p RetryPolicy) error {
	switch {
	case p.Base < 0 || p.Max < 0 || p.AttemptTimeout < 0:
		return fmt.Errorf("plabi: %s: durations cannot be negative", opt)
	case p.Jitter < 0 || p.Jitter > 1:
		return fmt.Errorf("plabi: %s: jitter %v outside [0, 1]", opt, p.Jitter)
	case p.Multiplier < 0:
		return fmt.Errorf("plabi: %s: multiplier cannot be negative", opt)
	}
	return nil
}

// clampMisuse normalizes the values validate rejects, implementing
// Open's documented clamp rules: negative worker and cache bounds fall
// back to the defaults (as if 0 were passed), a nil fault injector is
// ignored, retry overrides for unknown sites are dropped, and negative
// retry-policy fields reset to the zero policy. WithMetrics(nil) is NOT
// clamped — for Open it keeps its documented meaning of disabling
// instrumentation entirely.
func (o *options) clampMisuse() {
	o.allowNilMetrics = true
	if o.workers < 0 {
		o.workers = 0
	}
	if o.cacheSize < 0 {
		o.cacheSize = 0
	}
	if o.faultsSet && o.faults == nil {
		o.faultsSet = false
	}
	if o.segmentSet && o.segmentDir == "" {
		o.segmentSet = false
	}
	if o.spillRows < 0 {
		o.spillRows = 0
	}
	if o.retry != nil && validRetry("", *o.retry) != nil {
		o.retry = &RetryPolicy{}
	}
	known := map[string]bool{}
	for _, s := range fault.Sites() {
		known[s] = true
	}
	for site, p := range o.retrySites {
		if !known[site] {
			delete(o.retrySites, site)
			continue
		}
		if validRetry("", p) != nil {
			o.retrySites[site] = RetryPolicy{}
		}
	}
}

// apply configures a core engine from the collected options.
func (o *options) apply(ce *core.Engine) {
	if o.metricsSet {
		ce.SetMetrics(o.metrics)
	}
	if o.auditSink != nil {
		ce.Audit.SetSink(o.auditSink)
	}
	if o.cacheSize > 0 {
		ce.SetCacheSize(o.cacheSize)
	}
	if o.workers > 0 {
		ce.SetWorkers(o.workers)
	}
	if o.retry != nil {
		ce.SetRetryPolicy(*o.retry)
	}
	for site, p := range o.retrySites {
		ce.SetRetryPolicyFor(site, p)
	}
	if o.failClosed {
		ce.SetFailClosed(true)
	}
	if o.compiled {
		ce.SetCompiledRenders(true)
	}
	if o.faultsSet && o.faults != nil {
		ce.SetFaults(o.faults)
	}
	// After metrics/faults/retry so the store inherits the final wiring.
	if o.segmentSet {
		ce.SetSegmentStore(o.segmentDir)
	}
	if o.spillRows > 0 {
		ce.SetSpillThreshold(o.spillRows)
	}
}

// newEngine is the single constructor both Open and OpenHealthcare route
// through: collect options, validate them, and build the engine via the
// supplied hook (an empty core for Open, the scenario builder for
// OpenHealthcare), with the options applied before the hook runs any
// data flow.
func newEngine(build func(configure func(*core.Engine)) (*core.Engine, error), opts ...Option) (*Engine, error) {
	var o options
	for _, fn := range opts {
		fn(&o)
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	ce, err := build(o.apply)
	if err != nil {
		return nil, err
	}
	return &Engine{core: ce}, nil
}

// WithAuditSink streams every audit event to w as one JSON line at append
// time, in sequence order, so the trail reaches stable storage while the
// in-memory log stays queryable.
func WithAuditSink(w io.Writer) Option {
	return func(o *options) { o.auditSink = w }
}

// WithCacheSize bounds the render decision cache at roughly n entries
// (0 keeps the default of 1024).
func WithCacheSize(n int) Option {
	return func(o *options) { o.cacheSize = n }
}

// WithWorkers bounds the worker pools used for ETL waves and render row
// enforcement (0 keeps the default of one worker per CPU; 1 forces
// serial execution).
func WithWorkers(n int) Option {
	return func(o *options) { o.workers = n }
}

// WithMetrics attaches an observability registry at Open time, replacing
// the registry every engine otherwise creates for itself. Use it to share
// one registry across engines or to pre-publish it (expvar, /metrics).
// Passing nil disables instrumentation entirely.
func WithMetrics(m *Metrics) Option {
	return func(o *options) { o.metrics = m; o.metricsSet = true }
}

// WithRetryPolicy replaces the default bounded-backoff policy applied at
// the engine's retryable sites (audit-sink writes, ETL source reads).
// The zero policy disables retries entirely.
func WithRetryPolicy(p RetryPolicy) Option {
	return func(o *options) { o.retry = &p }
}

// WithRetryPolicyFor overrides the retry policy at one named site (see
// FaultSites: etl.extract, audit.sink.write, ...), leaving the default —
// or a WithRetryPolicy replacement — in force everywhere else. A
// fail-closed deployment typically retries audit.sink.write far harder
// than etl.extract, because an unavailable sink blocks every render:
//
//	plabi.Open(
//	    plabi.WithFailClosed(),
//	    plabi.WithRetryPolicyFor("audit.sink.write", plabi.RetryPolicy{
//	        MaxAttempts: 10, Base: 5 * time.Millisecond, Max: time.Second}),
//	)
//
// OpenHealthcare rejects unknown site names; Open drops them (see the
// clamp rules on Open).
func WithRetryPolicyFor(site string, p RetryPolicy) Option {
	return func(o *options) {
		if o.retrySites == nil {
			o.retrySites = map[string]fault.RetryPolicy{}
		}
		o.retrySites[site] = p
	}
}

// WithFailClosed makes audit unavailability block delivery: when the
// audit sink stays down past the retry budget, Render returns an error
// wrapping ErrAuditUnavailable instead of serving data whose release
// would leave no trace. The default is fail-open (drops are counted in
// audit.sink_drops and delivery proceeds).
func WithFailClosed() Option {
	return func(o *options) { o.failClosed = true }
}

// WithCompiledRenders makes this engine execute every render through its
// residual compiled program (see CompileReport), independent of the
// process-wide execution mode. Outputs are byte-identical to the other
// modes; repeated renders at unchanged policy/catalog generations replay
// the constant-folded result.
func WithCompiledRenders() Option {
	return func(o *options) { o.compiled = true }
}

// WithSegmentStore roots the engine's out-of-core columnar storage at
// dir: ETL staging tables that reach the WithSpillThreshold row count
// are written out as partitioned, zone-mapped segment files and queried
// from disk with partition-pruned parallel scans, byte-identically to
// the in-memory path. The directory is created lazily on first spill.
// Omitting the option (the default) keeps every relation in memory.
// OpenHealthcare rejects an empty dir; Open drops the option.
func WithSegmentStore(dir string) Option {
	return func(o *options) { o.segmentDir = dir; o.segmentSet = true }
}

// WithSpillThreshold sets the staging-table row count at or above which
// ETL outputs spill to the WithSegmentStore directory. 0 (the default)
// disables spilling even when a store is configured. OpenHealthcare
// rejects negative thresholds; Open clamps them to 0.
func WithSpillThreshold(n int) Option {
	return func(o *options) { o.spillRows = n }
}

// WithFaultInjector attaches a fault injector to every instrumented
// boundary — ETL extraction and steps, render workers, audit-sink
// writes. For chaos tests and failure drills; production deployments
// simply omit it. In OpenHealthcare the injector is active during the
// scenario's own ETL build, so construction can be chaos-tested too.
func WithFaultInjector(fi *FaultInjector) Option {
	return func(o *options) { o.faults = fi; o.faultsSet = true }
}

// Engine is one privacy-aware BI deployment: sources, PLAs, guarded ETL,
// reports, meta-reports, enforcement, audit. All methods are safe for
// concurrent use.
type Engine struct {
	core *core.Engine
}

// Open builds an empty engine. Open cannot fail: option misuse is
// clamped rather than reported — negative WithWorkers and WithCacheSize
// values fall back to the defaults (as if 0 were passed), a nil
// WithFaultInjector is ignored, WithRetryPolicyFor overrides naming an
// unknown site are dropped, and retry policies with negative durations
// reset to the zero (no-retry) policy. WithMetrics(nil) keeps its
// documented meaning of disabling instrumentation. Use OpenHealthcare —
// or validate inputs before calling — when misuse should surface as an
// error instead.
func Open(opts ...Option) *Engine {
	e, err := newEngine(func(configure func(*core.Engine)) (*core.Engine, error) {
		ce := core.New()
		configure(ce)
		return ce, nil
	}, append(opts, func(o *options) { o.clampMisuse() })...)
	if err != nil {
		// Unreachable: clampMisuse normalizes everything validate rejects.
		panic(err)
	}
	return e
}

// HealthcareConfig sizes the synthetic workload behind OpenHealthcare.
type HealthcareConfig struct {
	// Seed drives the deterministic generator (0 selects 42).
	Seed int64
	// Prescriptions is the fact-table size (0 selects 5000).
	Prescriptions int
}

// OpenHealthcare builds the paper's Fig. 1 healthcare deployment over a
// synthetic workload: five source owners, the scenario PLAs, guarded ETL
// into the warehouse, the standard report portfolio, and derived,
// approved meta-reports.
//
// Unlike Open, which clamps, OpenHealthcare reports option misuse as an
// error: negative WithWorkers/WithCacheSize values, WithMetrics(nil),
// WithFaultInjector(nil), retry policies with negative durations or
// jitter outside [0, 1], and WithRetryPolicyFor overrides naming an
// unknown site are all rejected before any data flow runs.
func OpenHealthcare(cfg HealthcareConfig, opts ...Option) (*Engine, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	if cfg.Prescriptions == 0 {
		cfg.Prescriptions = 5000
	}
	wcfg := workload.DefaultConfig(cfg.Seed)
	wcfg.Prescriptions = cfg.Prescriptions
	wcfg.Patients = cfg.Prescriptions / 10
	// Options apply before the scenario ETL runs, so fault injection,
	// retry policies and metrics cover engine construction itself.
	return newEngine(func(configure func(*core.Engine)) (*core.Engine, error) {
		ce, _, err := core.BuildHealthcareEngineWith(wcfg, configure)
		return ce, err
	}, opts...)
}

// AddSource registers a data provider; its tables become queryable and
// traceable.
func (e *Engine) AddSource(src *Source) { e.core.AddSource(src) }

// Source returns a registered provider by name.
func (e *Engine) Source(name string) (*Source, bool) { return e.core.Source(name) }

// AddPLAs parses a PLA DSL document and registers every agreement.
// Cached render decisions built under the previous policy set stop
// validating immediately.
func (e *Engine) AddPLAs(dsl string) error { return e.core.AddPLAs(dsl) }

// RunETL executes a pipeline under the PLA guard. Independent steps run
// in parallel waves; ctx cancels between waves. Violations are collected
// in the result when continueOnViolation is true, otherwise the first
// one aborts the run with an error wrapping ErrPLAViolation.
func (e *Engine) RunETL(ctx context.Context, p *Pipeline, continueOnViolation bool) (ETLResult, error) {
	return e.core.RunETLContext(ctx, p, continueOnViolation)
}

// ApplyDelta applies a batch of source deltas and incrementally
// refreshes every previously run pipeline's outputs derived from them:
// untouched steps are skipped, row-wise steps splice only the changed
// rows, append-only joins and filters extend their previous output, and
// aggregates re-emit from retained state. The application is atomic —
// on any error (including injected faults at the etl.delta site)
// sources and staging roll back and the previous state keeps serving —
// and a successful commit bumps per-table data epochs rather than the
// catalog generation, so cached render plans survive and only folded
// renders reading a changed table recompute.
func (e *Engine) ApplyDelta(ctx context.Context, b DeltaBatch) (DeltaResult, error) {
	return e.core.ApplyDelta(ctx, b)
}

// DefineReport registers a report definition.
func (e *Engine) DefineReport(d *ReportDefinition) error { return e.core.DefineReport(d) }

// Reports lists the registered report definitions.
func (e *Engine) Reports() []*ReportDefinition { return e.core.Reports.All() }

// DeriveMetaReports computes and approves the minimal covering
// meta-report set for the current portfolio.
func (e *Engine) DeriveMetaReports() ([]*MetaReport, error) { return e.core.DeriveMetaReports() }

// MetaReports returns the approved meta-report set.
func (e *Engine) MetaReports() []*MetaReport { return e.core.MetaReports() }

// Meta returns one meta-report by id.
func (e *Engine) Meta(id string) (*MetaReport, bool) { return e.core.Meta(id) }

// Assignment returns the id of the meta-report a report is assigned to
// ("" when unassigned).
func (e *Engine) Assignment(reportID string) string { return e.core.Assignment(reportID) }

// CheckReportCompliance statically checks a report for a consumer:
// derivability from an approved meta-report and PLA compliance of the
// definition. An empty slice means statically compliant. Unknown ids
// wrap ErrUnknownReport.
func (e *Engine) CheckReportCompliance(ctx context.Context, reportID string, c Consumer) ([]Decision, error) {
	return e.core.CheckReportComplianceContext(ctx, reportID, c)
}

// Render renders a report with full enforcement for the consumer,
// recording every decision in the audit log. When static PLA checks
// block the report, the returned Enforced carries the (empty) table and
// the blocking decisions, and the error is a *BlockedError wrapping
// ErrPLAViolation. Unknown ids wrap ErrUnknownReport. Render is safe to
// call from many goroutines; repeated renders of the same (report, role,
// purpose) are served from the decision cache.
func (e *Engine) Render(ctx context.Context, reportID string, c Consumer) (*Enforced, error) {
	enf, err := e.core.RenderContext(ctx, reportID, c)
	if err != nil {
		return nil, err
	}
	if blocked := enforce.Blocked(enf.Decisions); len(blocked) > 0 {
		return enf, &BlockedError{Op: "render", Subject: reportID, Decisions: blocked}
	}
	return enf, nil
}

// CompileReport specializes one (report, role, purpose) triple into its
// residual render program — the partial evaluation of the composed PLA
// set against the current policy, catalog and scope generations. The
// returned program is the exact object compiled renders execute: it
// lands in the generation-keyed decision cache, and any policy change
// (AddPLAs, DeriveMetaReports, hot reload) invalidates it and forces a
// recompile. Unknown ids wrap ErrUnknownReport.
func (e *Engine) CompileReport(reportID string, c Consumer) (*CompiledReport, error) {
	return e.core.CompileReport(reportID, c)
}

// ExplainCompiled renders the residual program for one (report, role,
// purpose) triple as a deterministic, human-readable plan: pinned
// generations, governing PLAs, pruned rules, folded verdicts, baked
// thresholds, pre-bound filters and the per-column classification.
func (e *Engine) ExplainCompiled(reportID string, c Consumer) (string, error) {
	return e.core.ExplainCompiled(reportID, c)
}

// Precompile eagerly compiles the residual program for every registered
// report × delivery role, returning the number of programs compiled.
// plabid calls this on tenant construction and after every hot reload so
// the first post-reload render pays no compilation cost.
func (e *Engine) Precompile() (int, error) { return e.core.Precompile() }

// ProgramGeneration counts residual programs compiled over the engine's
// lifetime; a bump after AddPLAs or a reload proves recompilation.
func (e *Engine) ProgramGeneration() uint64 { return e.core.ProgramGeneration() }

// SetCompiledRenders toggles compiled-program execution at runtime (see
// WithCompiledRenders).
func (e *Engine) SetCompiledRenders(on bool) { e.core.SetCompiledRenders(on) }

// ComplianceSuite generates the PLA-derived test suite for one report
// and consumer.
func (e *Engine) ComplianceSuite(reportID string, c Consumer) ([]ComplianceTest, error) {
	return e.core.ComplianceSuite(reportID, c)
}

// RunComplianceTests runs a generated suite against a produced table and
// returns the failures (empty means compliant).
func RunComplianceTests(tests []ComplianceTest, produced *Table) []string {
	return metareport.RunTests(tests, produced)
}

// RenderUnenforced executes a report's query with no PLA enforcement —
// the "buggy implementation" a compliance suite is meant to catch. Not
// audited. Unknown ids wrap ErrUnknownReport.
func (e *Engine) RenderUnenforced(reportID string) (*Table, error) {
	d, ok := e.core.Reports.Get(reportID)
	if !ok {
		return nil, fmt.Errorf("plabi: %w %q", ErrUnknownReport, reportID)
	}
	return d.Render(e.core.Catalog)
}

// ResolveDispute reconstructs, for one cell of a rendered table, the
// source cells it derives from, the transformation chain, and the PLAs
// in force — the paper's provenance-backed dispute resolution.
func (e *Engine) ResolveDispute(rendered *Table, row int, col string) (*audit.DisputeReport, error) {
	return e.core.Auditor().ResolveDispute(rendered, row, col)
}

// ReleaseSource applies the Fig. 2a source-level release filter to a
// table under its source PLAs: consent and retention filtering,
// pseudonymization, k-anonymity/l-diversity generalization.
func (e *Engine) ReleaseSource(t *Table) (*Table, *ReleaseReport, error) {
	return e.core.SourceEnforcer().Release(t)
}

// Explain renders the provenance transformation chain that produced the
// named relation (one line per upstream ETL step).
func (e *Engine) Explain(name string) string { return e.core.Graph.Explain(name) }

// Audit returns the engine's audit log.
func (e *Engine) Audit() *AuditLog { return e.core.Audit }

// Table returns any registered relation (source, staging or view).
func (e *Engine) Table(name string) (*Table, bool) { return e.core.Table(name) }

// CacheStats snapshots the render decision-cache counters.
func (e *Engine) CacheStats() CacheStats { return e.core.CacheStats() }

// Metrics returns the engine's observability registry (nil when
// instrumentation was disabled with WithMetrics(nil)).
func (e *Engine) Metrics() *Metrics { return e.core.Obs() }

// MetricsSnapshot captures every counter, gauge and histogram, with the
// decision-cache counters (cache.*) folded in. Safe to call concurrently
// with renders.
func (e *Engine) MetricsSnapshot() MetricsSnapshot { return e.core.MetricsSnapshot() }

// Spans returns the most recent completed spans (render / etl / check),
// oldest first, each carrying its correlation id, duration and the
// deciding rule and PLA for blocks.
func (e *Engine) Spans() []SpanRecord { return e.core.Obs().Spans() }

// WriteMetricsJSON writes the merged metrics snapshot as indented JSON —
// the same document /metrics serves.
func (e *Engine) WriteMetricsJSON(w io.Writer) error {
	return obs.WriteSnapshotJSON(w, e.core.MetricsSnapshot())
}

// DebugHandler serves the engine's observability surface over HTTP:
// GET /metrics returns the merged snapshot as JSON, and /debug/pprof/*
// exposes the standard Go profiles. Mount it on a private listener:
//
//	go http.ListenAndServe("localhost:6060", eng.DebugHandler())
func (e *Engine) DebugHandler() http.Handler {
	return obs.DebugMux(e.core.MetricsSnapshot)
}

// SetWorkers re-bounds the worker pools at runtime (0 restores the
// default of one worker per CPU).
func (e *Engine) SetWorkers(n int) { e.core.SetWorkers(n) }

// SetFailClosed switches the audit-unavailability policy at runtime (see
// WithFailClosed).
func (e *Engine) SetFailClosed(on bool) { e.core.SetFailClosed(on) }

// Faults returns the attached fault injector (nil when none), exposing
// its fired-fault schedule for chaos-run artifacts.
func (e *Engine) Faults() *FaultInjector { return e.core.Faults() }

// Close releases the engine's operational resources: the audit sink is
// flushed (when it implements Flush() error) and closed (when it
// implements io.Closer), then detached, so the trail reaches stable
// storage before the process lets the engine go. Worker pools are
// per-operation and drain with their operations, so Close does not
// interrupt in-flight Render/RunETL calls — callers should stop issuing
// work and let it drain first, as plabid does on tenant bundle swaps.
// The engine stays queryable after Close (in-memory audit log, metrics,
// tables); only sink streaming stops. Close is idempotent.
func (e *Engine) Close() error { return e.core.Close() }

// IsBlocked reports whether err is an enforcement refusal and returns
// the blocking decisions.
func IsBlocked(err error) ([]Decision, bool) {
	var be *BlockedError
	if errors.As(err, &be) {
		return be.Decisions, true
	}
	if errors.Is(err, ErrPLAViolation) {
		return nil, true
	}
	return nil, false
}

// FormatTable renders a table for terminal display.
func FormatTable(title string, t *Table) string { return report.FormatTable(title, t) }
