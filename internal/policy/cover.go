package policy

import (
	"fmt"
	"strings"
)

// RuleCovers reports whether rule s matches every (attribute, role,
// purpose) triple rule r matches. It is the covering relation behind
// plalint's PL001 dead-rule analysis and the compile-time pruning of
// residual render programs: under most-restrictive-wins composition, an
// allow rule covered by an unconditional deny can never influence a
// decision, and a rule covered by an earlier unconditional rule of the
// same effect is redundant.
func RuleCovers(s, r AccessRule) bool {
	if s.Attribute != "*" && !strings.EqualFold(s.Attribute, r.Attribute) {
		return false
	}
	return SetCovers(s.Roles, r.Roles) && SetCovers(s.Purposes, r.Purposes)
}

// RuleCoversWhen is RuleCovers refined with intensional conditions: a
// conditioned rule releases (or denies) strictly less than an
// unconditional one, so s only covers r when s is unconditional or both
// carry the same condition. pladiff's expansion analysis uses this
// stricter relation — a new allow guarded only by a *different* condition
// than the old one is a potential widening, not a covered rewrite.
func RuleCoversWhen(s, r AccessRule) bool {
	if !RuleCovers(s, r) {
		return false
	}
	if s.When == nil {
		return true
	}
	if r.When == nil {
		return false
	}
	return fmt.Sprint(s.When) == fmt.Sprint(r.When)
}

// SetCovers reports whether the matcher set sup (empty = everything)
// accepts at least everything sub accepts. Matching is case-insensitive,
// mirroring rule evaluation.
func SetCovers(sup, sub []string) bool {
	if len(sup) == 0 {
		return true
	}
	if len(sub) == 0 {
		return false
	}
	for _, v := range sub {
		found := false
		for _, w := range sup {
			if strings.EqualFold(v, w) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
