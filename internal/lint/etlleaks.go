package lint

import (
	"fmt"
	"sort"
	"strings"

	"plabi/internal/etl"
	"plabi/internal/policy"
)

// etlLeaks (PL006) analyzes ETL plans without running them: base-table
// provenance is propagated symbolically through the steps, and every
// join, integration and extraction is checked against the same
// source/warehouse composites the runtime guard consults. A plan that
// would trip the guard at run time — or that loads an attribute no role
// may ever see — is reported at lint time, the paper's level-2 compliance
// check (§5, Fig. 3) moved before deployment.
type etlLeaks struct{}

func init() { Register(etlLeaks{}) }

func (etlLeaks) Code() string { return "PL006" }
func (etlLeaks) Name() string { return "etl-leak-paths" }
func (etlLeaks) Doc() string {
	return "ETL steps whose symbolic data flow violates join or integration permissions, " +
		"or that extract attributes denied to every role into the warehouse."
}

func (etlLeaks) Run(p *Pass) []Finding {
	var out []Finding
	for _, pipe := range p.Pipelines {
		out = append(out, analyzePipeline(p, pipe)...)
	}
	return out
}

func analyzePipeline(p *Pass, pipe *etl.Pipeline) []Finding {
	var out []Finding
	// bases maps each staging name to the source base tables feeding it.
	bases := map[string]map[string]bool{}
	get := func(name string) map[string]bool {
		if bases[name] == nil {
			bases[name] = map[string]bool{}
		}
		return bases[name]
	}
	// Steps are listed in producer order; a second sweep covers plans
	// listed out of order (the scheduler runs them by dependency anyway).
	for sweep := 0; sweep < 2; sweep++ {
		emit := sweep == 1
		for _, s := range pipe.Steps {
			switch st := s.(type) {
			case *etl.Extract:
				get(st.As)[strings.ToLower(st.Table)] = true
				if emit {
					out = append(out, extractLeaks(p, pipe, st)...)
				}
			case *etl.JoinStep:
				union(get(st.Out), bases[st.Left], bases[st.Right])
				if emit {
					out = append(out, joinLeaks(p, pipe, st, bases[st.Left], bases[st.Right])...)
				}
			case *etl.EntityResolution:
				union(get(s.Output()), bases[st.Input])
				if emit {
					out = append(out, integrationLeaks(p, pipe, st, bases[st.Canon])...)
				}
			default:
				// Transforms, aggregations and custom steps carry their
				// inputs' provenance through.
				for _, in := range s.Inputs() {
					union(get(s.Output()), bases[in])
				}
			}
		}
	}
	return out
}

func union(dst map[string]bool, srcs ...map[string]bool) {
	for _, src := range srcs {
		for t := range src {
			dst[t] = true
		}
	}
}

// joinLeaks checks every pair of base tables meeting in a join step
// against both sides' join permissions, exactly as the runtime guard
// would.
func joinLeaks(p *Pass, pipe *etl.Pipeline, st *etl.JoinStep, left, right map[string]bool) []Finding {
	var out []Finding
	for _, lt := range sortedSet(left) {
		for _, rt := range sortedSet(right) {
			if strings.EqualFold(lt, rt) {
				continue
			}
			denier, a, b := "", lt, rt
			if ok, reason := p.tableComposite(lt).JoinAllowed(rt); !ok {
				denier = reason
			} else if ok, reason := p.tableComposite(rt).JoinAllowed(lt); !ok {
				denier, a, b = reason, rt, lt
			}
			if denier == "" {
				continue
			}
			id := denierID(denier)
			out = append(out, Finding{
				Code: "PL006", Severity: SevError, Level: policy.LevelWarehouse,
				Pos:     joinRulePos(p, id, b),
				Subject: fmt.Sprintf("%s/%s: %s JOIN %s", pipe.Name, st.Name(), lt, rt),
				Message: fmt.Sprintf("ETL step %q of pipeline %q joins data from %q with %q, forbidden by PLA %s — the pipeline will be blocked at run time",
					st.Name(), pipe.Name, a, b, denier),
				PLAs: []string{id},
			})
		}
	}
	return out
}

// integrationLeaks checks an entity-resolution step: every donor table
// behind the canonical side must permit integration for the beneficiary.
func integrationLeaks(p *Pass, pipe *etl.Pipeline, st *etl.EntityResolution, donors map[string]bool) []Finding {
	var out []Finding
	for _, donor := range sortedSet(donors) {
		if ok, reason := p.tableComposite(donor).IntegrationAllowed(st.Beneficiary); !ok {
			id := denierID(reason)
			out = append(out, Finding{
				Code: "PL006", Severity: SevError, Level: policy.LevelWarehouse,
				Pos:     integrationRulePos(p, id, st.Beneficiary),
				Subject: fmt.Sprintf("%s/%s: %s for %s", pipe.Name, st.Name(), donor, st.Beneficiary),
				Message: fmt.Sprintf("ETL step %q of pipeline %q uses %q to clean data of owner %q, forbidden by PLA %s — the pipeline will be blocked at run time",
					st.Name(), pipe.Name, donor, st.Beneficiary, reason),
				PLAs: []string{id},
			})
		}
	}
	return out
}

// extractLeaks flags extraction of attributes that an unconditional,
// role-free deny rule makes invisible to every consumer: loading them
// into the warehouse creates a copy no report may ever release.
func extractLeaks(p *Pass, pipe *etl.Pipeline, st *etl.Extract) []Finding {
	t, ok := st.Source.Table(st.Table)
	if !ok {
		return nil
	}
	var out []Finding
	comp := p.Registry.ForScope(policy.LevelSource, st.Table)
	for _, col := range t.Schema.ColumnNames() {
		for _, pla := range comp.PLAs {
			for _, r := range pla.Access {
				if r.Effect != policy.Deny || len(r.Roles) > 0 || len(r.Purposes) > 0 {
					continue
				}
				if r.Attribute != "*" && !strings.EqualFold(r.Attribute, col) {
					continue
				}
				out = append(out, Finding{
					Code: "PL006", Severity: SevWarning, Level: policy.LevelWarehouse,
					Pos:     r.Pos,
					Subject: fmt.Sprintf("%s/%s: %s.%s", pipe.Name, st.Name(), st.Table, col),
					Message: fmt.Sprintf("ETL step %q of pipeline %q extracts attribute %q of %q into the warehouse although PLA %q denies it to every role — no report can ever release it; project it away before loading",
						st.Name(), pipe.Name, col, st.Table, pla.ID),
					PLAs: []string{pla.ID},
				})
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Subject < out[j].Subject })
	return out
}

// denierID strips the explanatory suffix JoinAllowed/IntegrationAllowed
// reasons carry ("id (forbid join with x)" -> "id").
func denierID(reason string) string {
	if i := strings.IndexByte(reason, ' '); i >= 0 {
		return reason[:i]
	}
	return reason
}

func joinRulePos(p *Pass, plaID, other string) policy.Pos {
	if pla, ok := p.Registry.ByID(plaID); ok {
		for _, r := range pla.Joins {
			if r.Effect == policy.Deny && (strings.EqualFold(r.Other, other) || r.Other == "*") {
				return r.Pos
			}
		}
		return pla.Pos
	}
	return policy.Pos{}
}

func integrationRulePos(p *Pass, plaID, beneficiary string) policy.Pos {
	if pla, ok := p.Registry.ByID(plaID); ok {
		for _, r := range pla.Integrations {
			if r.Effect == policy.Deny && (strings.EqualFold(r.Beneficiary, beneficiary) || r.Beneficiary == "*") {
				return r.Pos
			}
		}
		return pla.Pos
	}
	return policy.Pos{}
}
