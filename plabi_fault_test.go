package plabi

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"plabi/internal/fault"
)

func microRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, Base: time.Microsecond, Max: 10 * time.Microsecond, Multiplier: 2}
}

// failingSink refuses the first n writes, then accepts.
type failingSink struct {
	strings.Builder
	failures int
}

func (s *failingSink) Write(p []byte) (int, error) {
	if s.failures > 0 {
		s.failures--
		return 0, errors.New("sink down")
	}
	return s.Builder.Write(p)
}

func TestWithFaultInjectorDrivesPublicRenders(t *testing.T) {
	fi := NewFaultInjector(7)
	fi.Enable("render.worker", FaultConfig{ErrorRate: 1, Transient: true, Times: 1})
	e := quickEngine(t)
	e.core.SetFaults(fi)

	_, err := e.Render(context.Background(), "rx-list", Consumer{Role: "analyst"})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected through the public surface, got %v", err)
	}
	// The Times bound is spent; the engine serves again.
	if _, err := e.Render(context.Background(), "rx-list", Consumer{Role: "analyst"}); err != nil {
		t.Fatalf("render after fault budget: %v", err)
	}
	if len(fi.Schedule()) != 1 {
		t.Fatalf("schedule = %v, want one fire", fi.Schedule())
	}
}

func TestWithFailClosedBlocksOnDeadSink(t *testing.T) {
	sink := &failingSink{failures: 1000}
	e := Open(WithAuditSink(sink), WithFailClosed(), WithRetryPolicy(microRetry()))
	seedQuickScenario(t, e)

	_, err := e.Render(context.Background(), "rx-list", Consumer{Role: "analyst"})
	if !errors.Is(err, ErrAuditUnavailable) {
		t.Fatalf("want ErrAuditUnavailable, got %v", err)
	}

	// Sink recovers; the same render is delivered and audited.
	sink.failures = 0
	if _, err := e.Render(context.Background(), "rx-list", Consumer{Role: "analyst"}); err != nil {
		t.Fatalf("render after sink recovery: %v", err)
	}
	if !strings.Contains(sink.String(), `"kind":"render"`) {
		t.Fatal("recovered sink saw no render event")
	}
}

func TestOpenHealthcareWithFaultOptions(t *testing.T) {
	fi := NewFaultInjector(11)
	if err := fi.EnableSpec("etl.extract:error:1:transient"); err != nil {
		t.Fatal(err)
	}
	fi.Enable(fault.SiteETLExtract, FaultConfig{ErrorRate: 1, Transient: true, Times: 2})
	e, err := OpenHealthcare(HealthcareConfig{Seed: 3, Prescriptions: 300},
		WithRetryPolicy(microRetry()), WithFailClosed(), WithFaultInjector(fi))
	if err != nil {
		t.Fatalf("build must survive transient extract faults within the retry budget: %v", err)
	}
	if e.Faults() != fi {
		t.Fatal("injector not attached to the engine")
	}
	if len(fi.Schedule()) != 2 {
		t.Fatalf("schedule = %v, want the two bounded fires during ETL", fi.Schedule())
	}
	if _, err := e.Render(context.Background(), "drug-consumption",
		Consumer{Name: "ana", Role: "analyst", Purpose: "quality"}); err != nil {
		t.Fatalf("render on chaos-built engine: %v", err)
	}
}

func TestInternalErrorExposesSiteAndStack(t *testing.T) {
	fi := NewFaultInjector(5)
	fi.Enable("render.worker", FaultConfig{PanicRate: 1, Times: 1})
	e := quickEngine(t)
	e.core.SetFaults(fi)

	_, err := e.Render(context.Background(), "rx-list", Consumer{Role: "analyst"})
	var ie *InternalError
	if !errors.As(err, &ie) || !errors.Is(err, ErrInternal) {
		t.Fatalf("want *InternalError wrapping ErrInternal, got %v", err)
	}
	if ie.Site != "render.worker" || len(ie.Stack) == 0 {
		t.Fatalf("InternalError = %+v", ie)
	}
}

func TestFaultSitesStable(t *testing.T) {
	want := []string{"etl.extract", "etl.step", "etl.delta", "render.worker", "audit.sink.write", "release.source", "relation.segment.read"}
	got := FaultSites()
	if len(got) != len(want) {
		t.Fatalf("sites = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sites = %v, want %v", got, want)
		}
	}
}
