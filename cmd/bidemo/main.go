// Command bidemo runs the paper's Fig. 1 outsourcing scenario end to end:
// multi-owner sources, PLAs, guarded ETL, warehouse load, enforced report
// rendering for two consumer roles, and an audit-trail summary with one
// provenance-backed dispute resolution.
package main

import (
	"flag"
	"fmt"
	"os"

	"plabi/internal/core"
	"plabi/internal/report"
	"plabi/internal/workload"
)

func main() {
	seed := flag.Int64("seed", 42, "workload seed")
	n := flag.Int("n", 5000, "number of prescriptions")
	showAudit := flag.Bool("audit", false, "dump the full audit log (JSONL)")
	flag.Parse()

	cfg := workload.DefaultConfig(*seed)
	cfg.Prescriptions = *n
	cfg.Patients = *n / 10

	e, ds, err := core.BuildHealthcareEngine(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bidemo:", err)
		os.Exit(1)
	}
	fmt.Printf("sources: hospital(%d rx), familydoctors(%d), healthagency(%d drugs), laboratory(%d), municipality(%d)\n",
		ds.Prescriptions.NumRows(), ds.FamilyDoctor.NumRows(), ds.DrugCost.NumRows(),
		ds.LabResults.NumRows(), ds.Residents.NumRows())
	fmt.Printf("PLAs in force: %d, meta-reports approved: %d\n\n", len(e.Policies.All()), len(e.Metas))

	consumers := []report.Consumer{
		{Name: "ana", Role: "analyst", Purpose: "quality"},
		{Name: "aud", Role: "auditor", Purpose: "quality"},
	}
	for _, c := range consumers {
		fmt.Printf("--- consumer %s (role=%s) ---\n", c.Name, c.Role)
		for _, d := range e.Reports.All() {
			enf, err := e.Render(d.ID, c)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bidemo:", err)
				os.Exit(1)
			}
			fmt.Printf("%s: %d rows, %d cells masked, %d rows suppressed, %d decisions\n",
				d.ID, enf.Table.NumRows(), enf.MaskedCells, enf.SuppressedRows, len(enf.Decisions))
			if d.ID == "drug-consumption" && enf.Table.NumRows() > 0 {
				fmt.Println(report.FormatTable(d.Title, enf.Table))
			}
		}
		fmt.Println()
	}

	// Dispute resolution: where does the first drug-consumption number
	// come from, and under which agreements?
	enf, err := e.Render("drug-consumption", consumers[0])
	if err == nil && enf.Table.NumRows() > 0 {
		d, derr := e.Auditor().ResolveDispute(enf.Table, 0, "consumption")
		if derr == nil {
			fmt.Println(d)
		}
	}

	fmt.Printf("audit log: %d events (%d renders, %d transforms, %d violations)\n",
		e.Audit.Len(), len(e.Audit.ByKind("render")),
		len(e.Audit.ByKind("transform")), len(e.Audit.Violations()))
	if *showAudit {
		if err := e.Audit.WriteJSONL(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "bidemo:", err)
			os.Exit(1)
		}
	}
}
