package diff_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"plabi/internal/core"
	"plabi/internal/diff"
	"plabi/internal/workload"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// scenarioState builds the standard healthcare deployment with a corpus
// bundle layered on top and returns its diffable state. A small fixed
// workload keeps the corpus fast; impact analysis never reads data.
func scenarioState(t *testing.T, bundle string) *diff.State {
	t.Helper()
	cfg := workload.DefaultConfig(1)
	cfg.Prescriptions = 60
	cfg.Patients = 20
	e, _, err := core.BuildHealthcareEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	if bundle != "" {
		src, err := os.ReadFile(filepath.Join("testdata", bundle))
		if err != nil {
			t.Fatal(err)
		}
		if err := e.AddPLAs(string(src)); err != nil {
			t.Fatalf("layer %s: %v", bundle, err)
		}
	}
	return e.DiffState()
}

var corpus = []string{"pd001", "pd002", "pd003", "pd004", "pd005"}

// TestGoldenCorpus proves each impact class is detected by its code,
// with byte-identical output across two fully independent runs (fresh
// engines both times), pinned against a golden file.
func TestGoldenCorpus(t *testing.T) {
	for _, name := range corpus {
		t.Run(name, func(t *testing.T) {
			code := strings.ToUpper(name)
			var runs [2]string
			for i := range runs {
				oldS := scenarioState(t, name+".old.pla")
				newS := scenarioState(t, name+".new.pla")
				imps, err := diff.Diff(oldS, newS)
				if err != nil {
					t.Fatal(err)
				}
				var b bytes.Buffer
				if err := diff.WriteText(&b, imps); err != nil {
					t.Fatal(err)
				}
				runs[i] = b.String()
				if i == 0 {
					hit := false
					for _, im := range imps {
						if im.Code == code {
							hit = true
							break
						}
					}
					if !hit {
						t.Errorf("no %s impact emitted:\n%s", code, b.String())
					}
				}
			}
			if runs[0] != runs[1] {
				t.Fatalf("non-deterministic output:\n--- run 1 ---\n%s--- run 2 ---\n%s", runs[0], runs[1])
			}
			goldenPath := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(runs[0]), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatal(err)
			}
			if runs[0] != string(want) {
				t.Errorf("output differs from %s:\n--- got ---\n%s--- want ---\n%s", goldenPath, runs[0], want)
			}
		})
	}
}

// TestGoldenJSON pins the machine-readable output format on the PD001
// corpus pair.
func TestGoldenJSON(t *testing.T) {
	oldS := scenarioState(t, "pd001.old.pla")
	newS := scenarioState(t, "pd001.new.pla")
	imps, err := diff.Diff(oldS, newS)
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := diff.WriteJSON(&b, imps); err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "pd001.json.golden")
	if *update {
		if err := os.WriteFile(goldenPath, b.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if b.String() != string(want) {
		t.Errorf("JSON output differs:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// TestIdentityDiffSilent: a state diffed against an equally built state
// is empty, for the bare scenario and under every corpus bundle.
func TestIdentityDiffSilent(t *testing.T) {
	bundles := []string{""}
	for _, name := range corpus {
		bundles = append(bundles, name+".old.pla", name+".new.pla")
	}
	for _, bundle := range bundles {
		label := bundle
		if label == "" {
			label = "bare"
		}
		t.Run(label, func(t *testing.T) {
			a := scenarioState(t, bundle)
			b := scenarioState(t, bundle)
			imps, err := diff.Diff(a, b)
			if err != nil {
				t.Fatal(err)
			}
			if len(imps) != 0 {
				var buf bytes.Buffer
				_ = diff.WriteText(&buf, imps)
				t.Fatalf("identity diff produced %d impacts:\n%s", len(imps), buf.String())
			}
		})
	}
}

// TestExpansionsAsymmetric: reversing a restricting change turns its
// warnings into error-severity expansions — the property the plabid
// reload gate keys on.
func TestExpansionsAsymmetric(t *testing.T) {
	oldS := scenarioState(t, "pd005.old.pla")
	newS := scenarioState(t, "pd005.new.pla")
	forward, err := diff.Diff(oldS, newS)
	if err != nil {
		t.Fatal(err)
	}
	if len(diff.Expansions(forward)) == 0 {
		t.Error("mask drop produced no expansion impacts")
	}
	reverse, err := diff.Diff(newS, oldS)
	if err != nil {
		t.Fatal(err)
	}
	if exp := diff.Expansions(reverse); len(exp) != 0 {
		var b bytes.Buffer
		_ = diff.WriteText(&b, exp)
		t.Errorf("re-adding a mask must not count as expansion:\n%s", b.String())
	}
}

// TestValidateScenarioClean is the PD000 acceptance gate: the compiled
// residual program of every (report, role, purpose) triple in the full
// scenario — bare and under every corpus bundle — matches its
// independent interpreted recomputation.
func TestValidateScenarioClean(t *testing.T) {
	bundles := []string{""}
	for _, name := range corpus {
		bundles = append(bundles, name+".old.pla", name+".new.pla")
	}
	for _, bundle := range bundles {
		label := bundle
		if label == "" {
			label = "bare"
		}
		t.Run(label, func(t *testing.T) {
			s := scenarioState(t, bundle)
			imps, err := diff.Validate(s)
			if err != nil {
				t.Fatal(err)
			}
			if len(imps) != 0 {
				var b bytes.Buffer
				_ = diff.WriteText(&b, imps)
				t.Fatalf("PD000: %d compiler divergences:\n%s", len(imps), b.String())
			}
		})
	}
}

// TestFilterAndSeverity exercises the severity plumbing on a corpus
// pair with mixed severities.
func TestFilterAndSeverity(t *testing.T) {
	oldS := scenarioState(t, "pd003.old.pla")
	newS := scenarioState(t, "pd003.new.pla")
	imps, err := diff.Diff(oldS, newS)
	if err != nil {
		t.Fatal(err)
	}
	if len(imps) == 0 {
		t.Fatal("threshold loosening produced no impacts")
	}
	max := diff.MaxSeverity(imps)
	kept := diff.Filter(imps, max)
	if len(kept) == 0 {
		t.Fatalf("Filter at max severity %v dropped everything", max)
	}
	for _, im := range kept {
		if im.Severity < max {
			t.Errorf("Filter(%v) kept %v finding %s", max, im.Severity, im.Code)
		}
	}
	if got := len(diff.Filter(imps, 0)); got != len(imps) {
		t.Errorf("Filter(info) kept %d of %d", got, len(imps))
	}
}
