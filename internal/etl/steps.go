package etl

import (
	"context"
	"fmt"
	"strings"

	"plabi/internal/fault"
	"plabi/internal/relation"
)

// cancelCheckRows is how often per-row loops poll for cancellation: a
// balance between responsiveness and per-row overhead.
const cancelCheckRows = 512

// baseStep carries the common step fields.
type baseStep struct {
	name string
}

// Name implements Step.
func (b baseStep) Name() string { return b.name }

// Extract copies a source table into the staging area. The staging table
// keeps the source table's identity, so lineage traced from reports lands
// on the original source rows.
type Extract struct {
	baseStep
	Source *Source
	Table  string
	As     string // staging name; defaults to the table name
}

// NewExtract builds an extraction step.
func NewExtract(name string, src *Source, table, as string) *Extract {
	if as == "" {
		as = table
	}
	return &Extract{baseStep: baseStep{name}, Source: src, Table: table, As: as}
}

// Op implements Step.
func (e *Extract) Op() string { return "extract" }

// Inputs implements Step.
func (e *Extract) Inputs() []string { return []string{e.Source.Name + "." + e.Table} }

// Output implements Step.
func (e *Extract) Output() string { return e.As }

// Run implements Step. Source access is the etl.extract fault site and
// is retried under the context's policy; a missing table is permanent
// and fails without consuming the retry budget.
func (e *Extract) Run(c *Context) error {
	var t *relation.Table
	err := fault.Retry(c.Ctx(), c.Retry, c.Metrics, func(ctx context.Context) error {
		if err := c.Faults.Hit(ctx, fault.SiteETLExtract); err != nil {
			return err
		}
		src, ok := e.Source.Table(e.Table)
		if !ok {
			return fault.Permanent(fmt.Errorf("source %q has no table %q", e.Source.Name, e.Table))
		}
		t = src
		return nil
	})
	if err != nil {
		return err
	}
	c.Put(e.As, t)
	return nil
}

// DeltaKind classifies how a Transform's function distributes over row
// deltas, which decides how much of it ApplyDelta can recompute
// incrementally.
type DeltaKind int

const (
	// DeltaOpaque (the default) promises nothing: any input change reruns
	// the whole step.
	DeltaOpaque DeltaKind = iota
	// DeltaRowWise marks a 1:1 per-row function (cleanse, derive,
	// project): output row i depends only on input row i, so changed rows
	// are recomputed in isolation and spliced into the previous output.
	DeltaRowWise
	// DeltaFilter marks a row-wise row-dropping function (filter):
	// appended input rows are filtered independently and concatenated
	// onto the previous output; updates or deletes rerun the step.
	DeltaFilter
)

// Transform applies an arbitrary relational function to one staging table.
// It is the generic building block for cleansing and standardization.
type Transform struct {
	baseStep
	OpName string
	Input  string
	Out    string
	// Kind declares how Fn distributes over deltas (DeltaOpaque unless
	// the constructor knows better).
	Kind DeltaKind
	// Fn receives the run's context so long row loops can honour
	// cancellation mid-table.
	Fn func(context.Context, *relation.Table) (*relation.Table, error)
}

// NewTransform builds a generic transformation step.
func NewTransform(name, op, input, output string, fn func(context.Context, *relation.Table) (*relation.Table, error)) *Transform {
	return &Transform{baseStep: baseStep{name}, OpName: op, Input: input, Out: output, Fn: fn}
}

// Op implements Step.
func (t *Transform) Op() string { return t.OpName }

// Inputs implements Step.
func (t *Transform) Inputs() []string { return []string{t.Input} }

// Output implements Step.
func (t *Transform) Output() string { return t.Out }

// Run implements Step.
func (t *Transform) Run(c *Context) error {
	in, err := c.Get(t.Input)
	if err != nil {
		return err
	}
	out, err := t.Fn(c.Ctx(), in)
	if err != nil {
		return err
	}
	c.Put(t.Out, out)
	return nil
}

// NewCleanse builds a transform that trims whitespace in the given string
// columns — the canonical data-quality step.
func NewCleanse(name, input, output string, cols ...string) *Transform {
	return newKindedTransform(name, "cleanse", input, output, DeltaRowWise, func(ctx context.Context, t *relation.Table) (*relation.Table, error) {
		out := t
		var err error
		for _, col := range cols {
			i := out.Schema.Index(col)
			if i < 0 {
				return nil, fmt.Errorf("cleanse: unknown column %q", col)
			}
			out, err = mapCol(ctx, out, i, func(v relation.Value) relation.Value {
				if v.Kind != relation.TString {
					return v
				}
				return relation.Str(strings.Join(strings.Fields(v.S), " "))
			})
			if err != nil {
				return nil, err
			}
		}
		return out, nil
	})
}

// newKindedTransform is NewTransform plus a delta-kind declaration.
func newKindedTransform(name, op, input, output string, kind DeltaKind, fn func(context.Context, *relation.Table) (*relation.Table, error)) *Transform {
	t := NewTransform(name, op, input, output, fn)
	t.Kind = kind
	return t
}

// NewFilter builds a row-filtering step.
func NewFilter(name, input, output string, pred relation.Expr) *Transform {
	return newKindedTransform(name, "filter", input, output, DeltaFilter, func(_ context.Context, t *relation.Table) (*relation.Table, error) {
		return relation.Select(t, pred)
	})
}

// NewDerive builds a computed-column step.
func NewDerive(name, input, output, col string, e relation.Expr) *Transform {
	return newKindedTransform(name, "derive", input, output, DeltaRowWise, func(_ context.Context, t *relation.Table) (*relation.Table, error) {
		return relation.Extend(t, col, e)
	})
}

// NewProject builds a column-selection step.
func NewProject(name, input, output string, cols ...string) *Transform {
	return newKindedTransform(name, "project", input, output, DeltaRowWise, func(_ context.Context, t *relation.Table) (*relation.Table, error) {
		return relation.ProjectCols(t, cols...)
	})
}

// JoinStep joins two staging tables. Before running, the guard's
// CheckJoin is consulted with the *base tables* each side derives from —
// so a forbidden pair is caught even after intermediate transformations
// (Fig. 3b: the ETL annotation forbidding Prescriptions ⋈ Familydoctor).
type JoinStep struct {
	baseStep
	Left, Right string
	On          relation.Expr
	Kind        relation.JoinKind
	Out         string
}

// NewJoin builds a guarded join step.
func NewJoin(name, left, right string, on relation.Expr, kind relation.JoinKind, output string) *JoinStep {
	return &JoinStep{baseStep: baseStep{name}, Left: left, Right: right, On: on, Kind: kind, Out: output}
}

// Op implements Step.
func (j *JoinStep) Op() string { return "join" }

// Inputs implements Step.
func (j *JoinStep) Inputs() []string { return []string{j.Left, j.Right} }

// Output implements Step.
func (j *JoinStep) Output() string { return j.Out }

// Run implements Step.
func (j *JoinStep) Run(c *Context) error {
	l, err := c.Get(j.Left)
	if err != nil {
		return err
	}
	r, err := c.Get(j.Right)
	if err != nil {
		return err
	}
	for _, lb := range baseTablesOf(l) {
		for _, rb := range baseTablesOf(r) {
			if lb == rb {
				continue
			}
			if err := c.Guard.CheckJoin(lb, rb); err != nil {
				return &ViolationError{Step: j.name, Rule: "join-permission",
					Detail: fmt.Sprintf("%s join %s: %v", lb, rb, err), Cause: err}
			}
		}
	}
	out, err := relation.Join(relation.Rename(l, "l"), relation.Rename(r, "r"), j.On, j.Kind)
	if err != nil {
		return err
	}
	if unq, uerr := out.Schema.Unqualify(); uerr == nil {
		out.Schema = unq
	}
	out.Name = j.Out
	c.Put(j.Out, out)
	return nil
}

// baseTablesOf returns the base tables a relation derives from; for base
// tables, the table itself.
func baseTablesOf(t *relation.Table) []string {
	if t.Base {
		return []string{strings.ToLower(t.Name)}
	}
	return t.BaseTables()
}

// AggregateStep groups a staging table.
type AggregateStep struct {
	baseStep
	Input string
	Out   string
	Keys  []string
	Aggs  []relation.AggSpec

	// state is the retained GroupBy accumulator the delta path extends
	// and re-emits from. Run drops it: after a full recompute the next
	// delta rebuilds the state from the refreshed input. Access is
	// serialized by the pipeline (one run or delta at a time).
	state *relation.GroupByState
}

// NewAggregate builds an aggregation step.
func NewAggregate(name, input, output string, keys []string, aggs []relation.AggSpec) *AggregateStep {
	return &AggregateStep{baseStep: baseStep{name}, Input: input, Out: output, Keys: keys, Aggs: aggs}
}

// Op implements Step.
func (a *AggregateStep) Op() string { return "aggregate" }

// Inputs implements Step.
func (a *AggregateStep) Inputs() []string { return []string{a.Input} }

// Output implements Step.
func (a *AggregateStep) Output() string { return a.Out }

// Run implements Step.
func (a *AggregateStep) Run(c *Context) error {
	a.state = nil
	in, err := c.Get(a.Input)
	if err != nil {
		return err
	}
	out, err := relation.GroupBy(in, a.Keys, a.Aggs)
	if err != nil {
		return err
	}
	out.Name = a.Out
	c.Put(a.Out, out)
	return nil
}

// mapCol rewrites one column of a table, preserving lineage and origins.
// The row loop polls ctx so cancellation lands mid-step on large tables,
// not only at the next wave boundary.
func mapCol(ctx context.Context, t *relation.Table, ci int, fn func(relation.Value) relation.Value) (*relation.Table, error) {
	t, err := t.Materialize() // column rewrites read every row anyway
	if err != nil {
		return nil, err
	}
	out := &relation.Table{Name: t.Name, Schema: t.Schema.Clone()}
	out.ColOrigin = make([]relation.ColRefSet, t.Schema.Len())
	for c := range out.ColOrigin {
		out.ColOrigin[c] = t.ColumnOrigin(c)
	}
	for ri, r := range t.Rows {
		if ri%cancelCheckRows == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		nr := r.Clone()
		nr[ci] = fn(r[ci])
		out.Rows = append(out.Rows, nr)
		out.Lineage = append(out.Lineage, t.RowLineage(ri))
	}
	return out, nil
}
