// Command plabid serves plabi policy decisions over HTTP: a multi-tenant
// server where every tenant of a manifest gets its own isolated engine
// (policy registry, decision cache, audit sink file), bearer tokens map
// to tenants, and a token bucket bounds each tenant's request rate.
//
// Usage:
//
//	plabid -manifest manifest.json [-addr :8087] [-audit-dir DIR]
//
// The manifest (see docs/API.md) declares the tenants; editing it and
// either sending SIGHUP or POSTing /admin/reload with an admin token
// hot-reloads the policy bundles: tenants whose bundle changed get a
// fresh engine built and atomically swapped in while in-flight requests
// drain against the old one.
//
// Endpoints: POST /v1/tenants/{tenant}/{render,check,lint},
// GET /v1/tenants/{tenant}/reports, GET /healthz, GET /metrics,
// /debug/pprof, POST /admin/reload. The wire contract is plabi/api/v1.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"plabi/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8087", "listen address")
	manifestPath := flag.String("manifest", "", "tenant manifest file (required)")
	auditDir := flag.String("audit-dir", "", "directory for per-tenant audit trails (default: OS temp dir)")
	flag.Parse()

	if *manifestPath == "" {
		fmt.Fprintln(os.Stderr, "plabid: -manifest is required")
		flag.Usage()
		os.Exit(2)
	}
	m, err := serve.LoadManifest(*manifestPath)
	if err != nil {
		log.Fatalf("plabid: %v", err)
	}
	s, err := serve.New(m, serve.Options{AuditDir: *auditDir, ManifestPath: *manifestPath})
	if err != nil {
		log.Fatalf("plabid: %v", err)
	}

	srv := &http.Server{Addr: *addr, Handler: s.Handler()}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGHUP, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for sig := range sigs {
			switch sig {
			case syscall.SIGHUP:
				if err := s.ReloadFromManifestFile(); err != nil {
					log.Printf("plabid: reload: %v", err)
				} else {
					log.Printf("plabid: manifest reloaded")
				}
			default:
				log.Printf("plabid: %v: shutting down", sig)
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				_ = srv.Shutdown(ctx)
				cancel()
				return
			}
		}
	}()

	log.Printf("plabid: serving %d tenants on %s (manifest %s)", len(m.Tenants), *addr, *manifestPath)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("plabid: %v", err)
	}
	<-done
	if err := s.Close(); err != nil {
		log.Fatalf("plabid: close: %v", err)
	}
}
