// Package compile is the policy-change-time partial evaluator behind
// compiled renders: it specializes the composed PLA set governing one
// (report, role, purpose) triple into a residual program the render hot
// path executes without interpreting a single policy rule.
//
// The idea is OPA-style partial evaluation applied to the paper's
// composition semantics (§5): everything that is constant once the
// policy world is fixed — static verdicts, merged aggregation
// thresholds, row-filter predicates, per-column access decisions — is
// folded into the program when the plan is built, and rules that can
// never influence a decision (plalint's PL001 dead-rule analysis, via
// policy.RuleCovers) are pruned from the residual rule set. The program
// is pinned to the exact generations of the report definition, policy
// registry, catalog and enforcer configuration it was specialized
// against; any policy change moves a generation and forces a recompile.
//
// Because the pinned generations include the *catalog* generation and
// registered relations are immutable between catalog generations, a
// valid program implies unchanged data: the enforcement layer may fold
// the entire enforced render result to a constant on first execution and
// replay it thereafter (see internal/enforce). That is the compiled
// mode's dominant speedup — partial evaluation taken to its limit when
// every input is static.
//
// compile sits below enforce (which executes programs) and is
// independent of lint (which reports the same dead rules to authors);
// both share the covering primitives exported by internal/policy.
package compile

import (
	"sort"
	"strings"

	"plabi/internal/policy"
	"plabi/internal/relation"
)

// Generations pins the world state a program was specialized against. A
// program is valid only at exactly these generations.
type Generations struct {
	// Version is the report definition version.
	Version int
	// Policy is the policy.Registry generation (bumped by AddPLAs).
	Policy uint64
	// Catalog is the sql.Catalog generation (bumped by table loads).
	Catalog uint64
	// Scope is the enforcer configuration generation (levels, extra
	// meta-report scopes).
	Scope uint64
}

// Verdict is a constant decision folded at compile time: the residual
// program needs no data to reach it. A program with verdicts renders to
// an empty result carrying exactly these decisions.
type Verdict struct {
	Outcome string
	Rule    string
	Subject string
	Detail  string
	PLAs    []string
}

// Threshold is one aggregation threshold baked into the program: the
// most-restrictive merge (maximum) of every governing rule per grouping
// attribute, pre-sorted so runtime evaluation needs no map iteration or
// per-row sorting.
type Threshold struct {
	// By is the lowercased grouping attribute ("" counts supporting rows).
	By string
	// Min is the merged minimum support.
	Min int
	// PLAs names the agreements imposing thresholds on this report.
	PLAs []string
}

// BoundPredicate is a PLA predicate (row filter or intensional
// condition) specialized for batch evaluation: referenced columns are
// pre-resolved and the expression is bound to a fixed column layout, so
// per-support-row evaluation performs no name lookups. Selected
// reproduces relation.EvalPredicate byte for byte.
type BoundPredicate struct {
	// Expr is the original predicate, retained for evidence strings and
	// Explain output.
	Expr relation.Expr
	// Cols are the referenced columns in binding order; runtime resolves
	// base values positionally into a row of this layout.
	Cols []string
	// Pred is the pre-bound evaluator.
	Pred relation.CompiledPredicate
	// Safe reports that evaluation can never error for any row.
	Safe bool
}

// BindPredicate specializes one predicate: column references resolved
// once against the fixed layout ColumnsOf defines.
func BindPredicate(e relation.Expr) BoundPredicate {
	cols := relation.ColumnsOf(e)
	sch := &relation.Schema{Columns: make([]relation.Column, len(cols))}
	for i, c := range cols {
		sch.Columns[i] = relation.Column{Name: c, Type: relation.TString}
	}
	p := relation.CompilePredicate(e, sch)
	return BoundPredicate{Expr: e, Cols: cols, Pred: p, Safe: p.Safe()}
}

// ColumnPlan is the compile-time classification of one output column.
type ColumnPlan struct {
	Name string
	// Aggregate marks columns produced by aggregate functions, governed
	// by thresholds rather than attribute access.
	Aggregate bool
	// Masked marks columns the consumer may never see; Rule and PLAs
	// carry the folded decision.
	Masked bool
	Rule   string
	PLAs   []string
	// Conditions renders the intensional conditions attached to a
	// conditionally released column.
	Conditions []string
}

// PrunedRule records one access rule removed from the residual rule set
// because it can never influence a decision (PL001 dead-rule analysis).
// Pruning is decision-neutral: the residual program behaves identically
// with or without the rule; recording it documents how much of the
// composite survives specialization.
type PrunedRule struct {
	PLA       string
	Effect    string
	Attribute string
	Reason    string
}

// Program is the residual render program for one (report, role, purpose)
// triple: the complete output of partial evaluation, inspectable via
// Explain. The enforcement layer stores programs in its generation-keyed
// plan cache and executes them in compiled mode.
type Program struct {
	Report  string
	Role    string
	Purpose string
	At      Generations

	// PLAs lists the governing agreement ids in composition order.
	PLAs []string
	// Aggregated reports whether the query aggregates (thresholds apply
	// per group; row filters only apply to non-aggregated reports).
	Aggregated bool
	// Static holds the folded constant verdicts; non-empty means the
	// render folds to an empty result without touching data.
	Static []Verdict
	// Thresholds are the baked aggregation thresholds, sorted by By.
	Thresholds []Threshold
	// Filters are the pre-bound row filters in composition order.
	Filters []BoundPredicate
	// FilterPLAs names the agreements behind the row filters.
	FilterPLAs []string
	// Columns is the static classification of output columns (by query
	// select list), for Explain; runtime masking binds against the
	// executed schema with identical decisions.
	Columns []ColumnPlan
	// Pruned lists the dead rules removed from the residual rule set.
	Pruned []PrunedRule
	// TotalRules and LiveRules count the composite's access rules before
	// and after pruning.
	TotalRules int
	LiveRules  int
}

// Blocked reports whether the program folds to a refusal: any static
// block verdict means the render returns an error without touching data.
// Mask verdicts keep the render alive (cells blank, rows survive).
func (p *Program) Blocked() bool {
	for _, v := range p.Static {
		if v.Outcome == "block" {
			return true
		}
	}
	return false
}

// Input is everything Compile specializes against. The enforcement layer
// supplies the already-composed PLA set together with its own folded
// products (static verdicts, column classification) so the two layers
// can never disagree on decision semantics.
type Input struct {
	Report  string
	Role    string
	Purpose string
	At      Generations

	Composite  *policy.Composite
	Aggregated bool
	Static     []Verdict
	Columns    []ColumnPlan
}

// Compile partially evaluates the composite into a residual program:
// thresholds merged and sorted, filters pre-bound, dead rules pruned.
func Compile(in Input) *Program {
	p := &Program{
		Report: in.Report, Role: in.Role, Purpose: in.Purpose, At: in.At,
		Aggregated: in.Aggregated,
		Static:     in.Static,
		Columns:    in.Columns,
		FilterPLAs: in.Composite.FilterPLAs(),
	}
	for _, pla := range in.Composite.PLAs {
		p.PLAs = append(p.PLAs, pla.ID)
	}

	// Fold thresholds: most-restrictive merge per grouping attribute,
	// sorted once at compile time (the interpreter re-sorted per row).
	// A non-aggregated report under a threshold folds to a static block
	// instead (already present in Static), so thresholds only survive
	// into programs that aggregate.
	if in.Aggregated {
		merged := map[string]int{}
		for _, rule := range in.Composite.AggregationRules() {
			key := strings.ToLower(rule.By)
			if rule.MinCount > merged[key] {
				merged[key] = rule.MinCount
			}
		}
		aggPLAs := in.Composite.AggregationPLAs()
		for by, min := range merged {
			p.Thresholds = append(p.Thresholds, Threshold{By: by, Min: min, PLAs: aggPLAs})
		}
		sort.Slice(p.Thresholds, func(i, j int) bool { return p.Thresholds[i].By < p.Thresholds[j].By })
	}

	// Pre-bind row filters (predicate pushdown into the support scan).
	for _, f := range in.Composite.Filters() {
		p.Filters = append(p.Filters, BindPredicate(f))
	}

	p.Pruned = pruneDeadRules(in.Composite)
	for _, pla := range in.Composite.PLAs {
		p.TotalRules += len(pla.Access)
	}
	p.LiveRules = p.TotalRules - len(p.Pruned)
	return p
}

// pruneDeadRules runs PL001 over the composite's rule set: allow rules
// fully covered by an unconditional deny in a co-governing agreement
// (shadowed — most-restrictive-wins makes them unreachable) and rules
// covered by an earlier unconditional rule of the same effect in the
// same agreement (redundant).
func pruneDeadRules(comp *policy.Composite) []PrunedRule {
	var out []PrunedRule
	for _, pla := range comp.PLAs {
		for i, r := range pla.Access {
			if r.Effect == policy.Allow {
				if by := shadowingDeny(comp, pla, r); by != "" {
					out = append(out, PrunedRule{
						PLA: pla.ID, Effect: r.Effect.String(), Attribute: r.Attribute,
						Reason: "shadowed by unconditional deny in " + by,
					})
					continue
				}
			}
			if j := coveredEarlier(pla, i); j >= 0 {
				out = append(out, PrunedRule{
					PLA: pla.ID, Effect: r.Effect.String(), Attribute: r.Attribute,
					Reason: "subsumed by earlier " + pla.Access[j].Effect.String() +
						" rule for " + pla.Access[j].Attribute,
				})
			}
		}
	}
	return out
}

// shadowingDeny returns the id of a co-governing agreement whose deny
// covers every triple r matches ("" when none does). Scoped levels only
// shadow within their own scope; report- and meta-report-level rules
// speak about any referenced name, so their denies shadow everywhere.
func shadowingDeny(comp *policy.Composite, owner *policy.PLA, r policy.AccessRule) string {
	for _, q := range comp.PLAs {
		if !coGoverns(q, owner) {
			continue
		}
		for _, s := range q.Access {
			// A deny's condition is ignored by decision composition, so
			// any covering deny shadows unconditionally.
			if s.Effect == policy.Deny && policy.RuleCovers(s, r) {
				return q.ID
			}
		}
	}
	return ""
}

// coGoverns reports whether q's rules are guaranteed to govern every
// attribute reference p's rules govern. Conservative: cross-scope
// shadowing at the source/warehouse levels is never assumed.
func coGoverns(q, p *policy.PLA) bool {
	if q.Level != policy.LevelSource && q.Level != policy.LevelWarehouse {
		return true
	}
	if q.Level != p.Level {
		return false
	}
	return q.Scope == "*" || p.Scope == "*" || strings.EqualFold(q.Scope, p.Scope)
}

// coveredEarlier returns the index of an earlier unconditional rule in
// the same PLA with the same effect covering rule i (-1 when none).
func coveredEarlier(pla *policy.PLA, i int) int {
	r := pla.Access[i]
	if r.When != nil {
		return -1
	}
	for j := 0; j < i; j++ {
		s := pla.Access[j]
		if s.Effect == r.Effect && s.When == nil && policy.RuleCovers(s, r) {
			return j
		}
	}
	return -1
}
