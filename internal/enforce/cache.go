package enforce

import (
	"hash/fnv"
	"sync"
	"sync/atomic"

	"plabi/internal/compile"
	"plabi/internal/policy"
	"plabi/internal/relation"
	"plabi/internal/sql"
)

// CacheStats is a snapshot of the decision-cache counters.
type CacheStats struct {
	// Hits counts lookups answered from a valid cached plan.
	Hits uint64
	// Misses counts lookups that had to build a plan (including the
	// first render of every (report, role, purpose) triple).
	Misses uint64
	// Invalidations counts cached plans discarded because a PLA, catalog
	// or scope generation moved underneath them.
	Invalidations uint64
	// Entries is the number of currently cached plans.
	Entries int
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// planKey identifies one cached enforcement plan: the paper's report
// enforcement is a pure function of (report definition, consumer role,
// consumer purpose) for a fixed set of PLAs, catalog and meta-report
// assignment — exactly what the generations guard.
type planKey struct {
	report  string
	role    string
	purpose string
}

// gens captures the world state a plan was computed against.
type gens struct {
	version int    // report definition version
	policy  uint64 // policy.Registry generation
	catalog uint64 // sql.Catalog generation
	scope   uint64 // enforcer config generation (extra scopes, levels)
}

// colPlan is the cached per-output-column decision: either masked (with
// the decision to replay into each render's audit trail) or released
// subject to intensional conditions, pre-bound for batch evaluation.
type colPlan struct {
	masked     bool
	decision   Decision
	conditions []compile.BoundPredicate
}

// renderPlan is everything about one (report, role, purpose) triple that
// does not depend on the data: parsed AST, query profile, composed PLAs,
// static decisions, baked aggregation thresholds, pre-bound row filters,
// the compiled residual program, and — filled on first render —
// per-column access decisions. All fields are immutable after
// construction (cols after the sync.Once fires, fold under foldMu), so a
// plan is shared freely across concurrent renders.
type renderPlan struct {
	at   gens
	sel  *sql.SelectStmt
	prof *sql.Profile
	comp *policy.Composite

	// reads is the plan's data read set: every relation the query names
	// in FROM plus every base table it derives from (thresholds and
	// intensional conditions read base rows through the tracer). Folded
	// renders validate against the catalog epochs of exactly this set, so
	// a delta to an unrelated table leaves the fold untouched.
	reads []string

	static  []Decision // static-check outcomes for role/purpose
	aggCols map[string]bool
	// thresholds are the merged aggregation thresholds, sorted by
	// grouping attribute at plan-build time (compile.Threshold order), so
	// per-row evaluation needs no map iteration or sorting.
	thresholds []compile.Threshold
	// filters are the row filters pre-bound to their referenced columns.
	filters    []compile.BoundPredicate
	aggregated bool
	// aggPLAs / filterPLAs name the agreements behind the thresholds and
	// row filters, replayed into runtime suppression decisions.
	aggPLAs    []string
	filterPLAs []string

	// prog is the residual program this plan was specialized into; it is
	// built in every execution mode (the decision cache stores compiled
	// programs) and executed in compiled mode.
	prog *compile.Program

	colOnce sync.Once
	cols    []colPlan // per output-column index; nil until first render

	// fold is the constant-folded render result (compiled mode): the
	// plan generations include the catalog generation and registered
	// relations are immutable between catalog generations, so within a
	// valid plan the enforced result is a constant — computed once,
	// replayed per render.
	foldMu sync.Mutex
	fold   *foldedRender
}

// foldedRender is the memoized constant a residual program folds to: a
// private deep copy of the enforced output, replayed (deep-copied back
// out) on every compiled render at the same generations.
type foldedRender struct {
	static     bool
	table      *relation.Table
	decisions  []Decision
	masked     int
	suppressed int
	rowsIn     int
	// epochs snapshots the catalog epochs of the plan's read set at fold
	// time. A replay first re-reads the current epochs: any movement —
	// i.e. a committed delta touching a table this render depends on —
	// invalidates the fold (and only the fold; the plan survives).
	epochs map[string]uint64
}

// epochsEqual reports whether two epoch snapshots over the same read set
// agree.
func epochsEqual(a, b map[string]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

const defaultCacheShards = 16

// planCache is a sharded map of render plans with generation-checked
// lookups. Sharding keeps lock contention negligible under b.RunParallel
// style workloads; staleness is detected at lookup time by comparing the
// stored generations with the caller's current ones, so AddPLAs or
// DeriveMetaReports invalidate without touching the cache at all.
type planCache struct {
	shards        [defaultCacheShards]planShard
	capPerShard   int
	hits          atomic.Uint64
	misses        atomic.Uint64
	invalidations atomic.Uint64
}

type planShard struct {
	mu      sync.RWMutex
	entries map[planKey]*renderPlan
}

// newPlanCache builds a cache bounded at roughly capacity entries
// (capacity <= 0 selects the default of 1024).
func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		capacity = 1024
	}
	per := capacity / defaultCacheShards
	if per < 1 {
		per = 1
	}
	c := &planCache{capPerShard: per}
	for i := range c.shards {
		c.shards[i].entries = map[planKey]*renderPlan{}
	}
	return c
}

func (c *planCache) shard(k planKey) *planShard {
	h := fnv.New32a()
	h.Write([]byte(k.report))
	h.Write([]byte{0})
	h.Write([]byte(k.role))
	h.Write([]byte{0})
	h.Write([]byte(k.purpose))
	return &c.shards[h.Sum32()%defaultCacheShards]
}

// get returns the cached plan for k if it was computed at exactly the
// given generations; a stale entry is evicted and counted as an
// invalidation.
func (c *planCache) get(k planKey, at gens) (*renderPlan, bool) {
	s := c.shard(k)
	s.mu.RLock()
	p, ok := s.entries[k]
	s.mu.RUnlock()
	if ok && p.at == at {
		c.hits.Add(1)
		return p, true
	}
	if ok {
		s.mu.Lock()
		// Re-check: a concurrent put may have refreshed the entry to
		// exactly the caller's generations — in that race the refreshed
		// plan is the answer, not a miss that forces a redundant rebuild.
		if cur, still := s.entries[k]; still {
			if cur.at == at {
				s.mu.Unlock()
				c.hits.Add(1)
				return cur, true
			}
			delete(s.entries, k)
			c.invalidations.Add(1)
		}
		s.mu.Unlock()
	}
	c.misses.Add(1)
	return nil, false
}

// put stores a plan, evicting an arbitrary entry when the shard is full
// (the workload is a small set of hot reports; FIFO/LRU refinement is not
// worth the bookkeeping).
func (c *planCache) put(k planKey, p *renderPlan) {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.entries[k]; !exists && len(s.entries) >= c.capPerShard {
		for victim := range s.entries {
			delete(s.entries, victim)
			break
		}
	}
	s.entries[k] = p
}

// stats snapshots the counters.
func (c *planCache) stats() CacheStats {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.RLock()
		n += len(c.shards[i].entries)
		c.shards[i].mu.RUnlock()
	}
	return CacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Invalidations: c.invalidations.Load(),
		Entries:       n,
	}
}
