package relation

import (
	"fmt"
	"math"
	"strings"
)

// Expr is a scalar expression evaluated against one row of a schema.
// Expressions use SQL three-valued logic: comparisons with NULL yield NULL,
// and a NULL predicate does not select a row.
type Expr interface {
	// Eval computes the expression value for row r of schema s.
	Eval(r Row, s *Schema) (Value, error)
	// String renders the expression in SQL-like syntax.
	String() string
	// ColumnRefs appends the column names referenced by the expression.
	ColumnRefs(dst []string) []string
}

// ColumnsOf returns the distinct column names referenced by an expression.
func ColumnsOf(e Expr) []string {
	if e == nil {
		return nil
	}
	refs := e.ColumnRefs(nil)
	seen := map[string]bool{}
	var out []string
	for _, r := range refs {
		k := strings.ToLower(r)
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}

// LitExpr is a literal value.
type LitExpr struct{ V Value }

// Lit builds a literal expression.
func Lit(v Value) *LitExpr { return &LitExpr{V: v} }

// Eval implements Expr.
func (e *LitExpr) Eval(Row, *Schema) (Value, error) { return e.V, nil }

// String implements Expr.
func (e *LitExpr) String() string {
	if e.V.Kind == TString {
		return "'" + strings.ReplaceAll(e.V.S, "'", "''") + "'"
	}
	if e.V.Kind == TDate {
		return "DATE '" + e.V.String() + "'"
	}
	return e.V.String()
}

// ColumnRefs implements Expr.
func (e *LitExpr) ColumnRefs(dst []string) []string { return dst }

// ColExpr references a column by (possibly qualified) name.
type ColExpr struct{ Name string }

// ColRefExpr builds a column reference expression.
func ColRefExpr(name string) *ColExpr { return &ColExpr{Name: name} }

// Eval implements Expr.
func (e *ColExpr) Eval(r Row, s *Schema) (Value, error) {
	i := s.Index(e.Name)
	if i < 0 {
		return Null(), fmt.Errorf("relation: unknown column %q in %s", e.Name, s)
	}
	return r[i], nil
}

// String implements Expr.
func (e *ColExpr) String() string { return QuoteIdent(e.Name) }

// QuoteIdent renders a column or table identifier for display and SQL
// round-tripping: plain identifiers (optionally dot-qualified) pass
// through, anything else is double-quoted so that re-parsing the rendered
// form yields the same name instead of an alias or a syntax error.
func QuoteIdent(name string) string {
	plain := name != ""
	segStart := true
	for i := 0; plain && i < len(name); i++ {
		c := name[i]
		switch {
		case c == '.':
			plain = !segStart && i != len(name)-1 // no empty segments
			segStart = true
		case c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'):
			segStart = false
		case c >= '0' && c <= '9':
			plain = !segStart // segments must not start with a digit
		default:
			plain = false
		}
	}
	if plain {
		for rest := name; plain; {
			seg := rest
			if i := strings.IndexByte(rest, '.'); i >= 0 {
				seg, rest = rest[:i], rest[i+1:]
			} else {
				rest = ""
			}
			if ReservedWord(seg) {
				plain = false
			}
			if rest == "" {
				break
			}
		}
	}
	if plain {
		return name
	}
	return `"` + name + `"`
}

// reservedWords are the keywords of the SQL dialect built over this
// expression language (internal/sql's lexer treats them as reserved, never
// as identifiers). They live here so the renderer and the lexer agree on
// exactly one list.
var reservedWords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "AS": true, "JOIN": true,
	"LEFT": true, "INNER": true, "ON": true, "AND": true, "OR": true,
	"NOT": true, "IN": true, "IS": true, "NULL": true, "LIKE": true,
	"DISTINCT": true, "ASC": true, "DESC": true, "CREATE": true,
	"VIEW": true, "TRUE": true, "FALSE": true, "DATE": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"BETWEEN": true, "UNION": true, "ALL": true,
}

// ReservedWord reports whether s (case-insensitively) is a SQL keyword.
func ReservedWord(s string) bool { return reservedWords[strings.ToUpper(s)] }

// ColumnRefs implements Expr.
func (e *ColExpr) ColumnRefs(dst []string) []string { return append(dst, e.Name) }

// BinOp enumerates binary operators.
type BinOp int

// Binary operators.
const (
	OpEq BinOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpLike
	OpConcat
)

var binOpNames = map[BinOp]string{
	OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "AND", OpOr: "OR", OpAdd: "+", OpSub: "-", OpMul: "*",
	OpDiv: "/", OpMod: "%", OpLike: "LIKE", OpConcat: "||",
}

// String returns the SQL spelling of the operator.
func (op BinOp) String() string { return binOpNames[op] }

// BinExpr applies a binary operator to two sub-expressions.
type BinExpr struct {
	Op   BinOp
	L, R Expr
}

// Bin builds a binary expression.
func Bin(op BinOp, l, r Expr) *BinExpr { return &BinExpr{Op: op, L: l, R: r} }

// Eq builds l = r.
func Eq(l, r Expr) *BinExpr { return Bin(OpEq, l, r) }

// And builds l AND r.
func And(l, r Expr) *BinExpr { return Bin(OpAnd, l, r) }

// Or builds l OR r.
func Or(l, r Expr) *BinExpr { return Bin(OpOr, l, r) }

// ColEqStr builds col = 'lit', the most common predicate shape.
func ColEqStr(col, lit string) *BinExpr { return Eq(ColRefExpr(col), Lit(Str(lit))) }

// Eval implements Expr.
func (e *BinExpr) Eval(r Row, s *Schema) (Value, error) {
	// AND/OR implement SQL three-valued logic with short-circuiting where
	// sound.
	if e.Op == OpAnd || e.Op == OpOr {
		lv, err := e.L.Eval(r, s)
		if err != nil {
			return Null(), err
		}
		rv, err := e.R.Eval(r, s)
		if err != nil {
			return Null(), err
		}
		return evalLogic(e.Op, lv, rv)
	}
	lv, err := e.L.Eval(r, s)
	if err != nil {
		return Null(), err
	}
	rv, err := e.R.Eval(r, s)
	if err != nil {
		return Null(), err
	}
	if lv.IsNull() || rv.IsNull() {
		return Null(), nil
	}
	switch e.Op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		c, ok := lv.Compare(rv)
		if !ok {
			return Null(), nil
		}
		switch e.Op {
		case OpEq:
			return Bool(c == 0), nil
		case OpNe:
			return Bool(c != 0), nil
		case OpLt:
			return Bool(c < 0), nil
		case OpLe:
			return Bool(c <= 0), nil
		case OpGt:
			return Bool(c > 0), nil
		default:
			return Bool(c >= 0), nil
		}
	case OpAdd, OpSub, OpMul, OpDiv, OpMod:
		return evalArith(e.Op, lv, rv)
	case OpLike:
		if lv.Kind != TString || rv.Kind != TString {
			return Null(), nil
		}
		return Bool(likeMatch(rv.S, lv.S)), nil
	case OpConcat:
		return Str(lv.String() + rv.String()), nil
	default:
		return Null(), fmt.Errorf("relation: unknown operator %v", e.Op)
	}
}

func evalLogic(op BinOp, l, r Value) (Value, error) {
	toB := func(v Value) (b, null bool) {
		if v.IsNull() {
			return false, true
		}
		if v.Kind != TBool {
			return false, true
		}
		return v.B, false
	}
	lb, ln := toB(l)
	rb, rn := toB(r)
	if op == OpAnd {
		if (!ln && !lb) || (!rn && !rb) {
			return Bool(false), nil
		}
		if ln || rn {
			return Null(), nil
		}
		return Bool(true), nil
	}
	if (!ln && lb) || (!rn && rb) {
		return Bool(true), nil
	}
	if ln || rn {
		return Null(), nil
	}
	return Bool(false), nil
}

func evalArith(op BinOp, l, r Value) (Value, error) {
	if l.Kind == TInt && r.Kind == TInt {
		switch op {
		case OpAdd:
			return Int(l.I + r.I), nil
		case OpSub:
			return Int(l.I - r.I), nil
		case OpMul:
			return Int(l.I * r.I), nil
		case OpDiv:
			if r.I == 0 {
				return Null(), nil
			}
			return Int(l.I / r.I), nil
		case OpMod:
			if r.I == 0 {
				return Null(), nil
			}
			return Int(l.I % r.I), nil
		}
	}
	lf, lok := l.AsFloat()
	rf, rok := r.AsFloat()
	if !lok || !rok {
		return Null(), nil
	}
	switch op {
	case OpAdd:
		return Float(lf + rf), nil
	case OpSub:
		return Float(lf - rf), nil
	case OpMul:
		return Float(lf * rf), nil
	case OpDiv:
		if rf == 0 {
			return Null(), nil
		}
		return Float(lf / rf), nil
	case OpMod:
		if rf == 0 {
			return Null(), nil
		}
		return Float(math.Mod(lf, rf)), nil
	}
	return Null(), fmt.Errorf("relation: bad arithmetic op %v", op)
}

// likeMatch implements SQL LIKE with % and _ wildcards.
func likeMatch(pattern, s string) bool {
	p, str := strings.ToLower(pattern), strings.ToLower(s)
	return likeRec(p, str)
}

func likeRec(p, s string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '%':
			p = p[1:]
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(p, s[i:]) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			p, s = p[1:], s[1:]
		default:
			if len(s) == 0 || p[0] != s[0] {
				return false
			}
			p, s = p[1:], s[1:]
		}
	}
	return len(s) == 0
}

// String implements Expr.
func (e *BinExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R)
}

// ColumnRefs implements Expr.
func (e *BinExpr) ColumnRefs(dst []string) []string {
	return e.R.ColumnRefs(e.L.ColumnRefs(dst))
}

// NotExpr negates a boolean sub-expression (NULL stays NULL).
type NotExpr struct{ E Expr }

// Not builds NOT e.
func Not(e Expr) *NotExpr { return &NotExpr{E: e} }

// Eval implements Expr.
func (e *NotExpr) Eval(r Row, s *Schema) (Value, error) {
	v, err := e.E.Eval(r, s)
	if err != nil || v.IsNull() {
		return Null(), err
	}
	if v.Kind != TBool {
		return Null(), nil
	}
	return Bool(!v.B), nil
}

// String implements Expr.
func (e *NotExpr) String() string { return "(NOT " + e.E.String() + ")" }

// ColumnRefs implements Expr.
func (e *NotExpr) ColumnRefs(dst []string) []string { return e.E.ColumnRefs(dst) }

// NegExpr is unary numeric minus.
type NegExpr struct{ E Expr }

// Neg builds -e.
func Neg(e Expr) *NegExpr { return &NegExpr{E: e} }

// Eval implements Expr.
func (e *NegExpr) Eval(r Row, s *Schema) (Value, error) {
	v, err := e.E.Eval(r, s)
	if err != nil || v.IsNull() {
		return Null(), err
	}
	switch v.Kind {
	case TInt:
		return Int(-v.I), nil
	case TFloat:
		return Float(-v.F), nil
	default:
		return Null(), nil
	}
}

// String implements Expr.
func (e *NegExpr) String() string { return "(-" + e.E.String() + ")" }

// ColumnRefs implements Expr.
func (e *NegExpr) ColumnRefs(dst []string) []string { return e.E.ColumnRefs(dst) }

// IsNullExpr tests for NULL (IS NULL / IS NOT NULL).
type IsNullExpr struct {
	E      Expr
	Negate bool
}

// IsNull builds e IS NULL.
func IsNull(e Expr) *IsNullExpr { return &IsNullExpr{E: e} }

// IsNotNull builds e IS NOT NULL.
func IsNotNull(e Expr) *IsNullExpr { return &IsNullExpr{E: e, Negate: true} }

// Eval implements Expr.
func (e *IsNullExpr) Eval(r Row, s *Schema) (Value, error) {
	v, err := e.E.Eval(r, s)
	if err != nil {
		return Null(), err
	}
	return Bool(v.IsNull() != e.Negate), nil
}

// String implements Expr.
func (e *IsNullExpr) String() string {
	if e.Negate {
		return "(" + e.E.String() + " IS NOT NULL)"
	}
	return "(" + e.E.String() + " IS NULL)"
}

// ColumnRefs implements Expr.
func (e *IsNullExpr) ColumnRefs(dst []string) []string { return e.E.ColumnRefs(dst) }

// InExpr tests membership in a literal list.
type InExpr struct {
	E      Expr
	List   []Expr
	Negate bool
}

// In builds e IN (list...).
func In(e Expr, list ...Expr) *InExpr { return &InExpr{E: e, List: list} }

// Eval implements Expr.
func (e *InExpr) Eval(r Row, s *Schema) (Value, error) {
	v, err := e.E.Eval(r, s)
	if err != nil {
		return Null(), err
	}
	if v.IsNull() {
		return Null(), nil
	}
	sawNull := false
	for _, le := range e.List {
		lv, err := le.Eval(r, s)
		if err != nil {
			return Null(), err
		}
		if lv.IsNull() {
			sawNull = true
			continue
		}
		if v.Equal(lv) {
			return Bool(!e.Negate), nil
		}
	}
	if sawNull {
		return Null(), nil
	}
	return Bool(e.Negate), nil
}

// String implements Expr.
func (e *InExpr) String() string {
	parts := make([]string, len(e.List))
	for i, le := range e.List {
		parts[i] = le.String()
	}
	op := "IN"
	if e.Negate {
		op = "NOT IN"
	}
	return fmt.Sprintf("(%s %s (%s))", e.E, op, strings.Join(parts, ", "))
}

// ColumnRefs implements Expr.
func (e *InExpr) ColumnRefs(dst []string) []string {
	dst = e.E.ColumnRefs(dst)
	for _, le := range e.List {
		dst = le.ColumnRefs(dst)
	}
	return dst
}

// FuncExpr applies a named scalar function.
type FuncExpr struct {
	Name string
	Args []Expr
}

// Fn builds a scalar function call.
func Fn(name string, args ...Expr) *FuncExpr {
	return &FuncExpr{Name: strings.ToUpper(name), Args: args}
}

// Eval implements Expr.
func (e *FuncExpr) Eval(r Row, s *Schema) (Value, error) {
	args := make([]Value, len(e.Args))
	for i, a := range e.Args {
		v, err := a.Eval(r, s)
		if err != nil {
			return Null(), err
		}
		args[i] = v
	}
	return callScalar(e.Name, args)
}

func callScalar(name string, args []Value) (Value, error) {
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("relation: %s expects %d arguments, got %d", name, n, len(args))
		}
		return nil
	}
	switch name {
	case "UPPER":
		if err := need(1); err != nil {
			return Null(), err
		}
		if args[0].Kind != TString {
			return Null(), nil
		}
		return Str(strings.ToUpper(args[0].S)), nil
	case "LOWER":
		if err := need(1); err != nil {
			return Null(), err
		}
		if args[0].Kind != TString {
			return Null(), nil
		}
		return Str(strings.ToLower(args[0].S)), nil
	case "LENGTH":
		if err := need(1); err != nil {
			return Null(), err
		}
		if args[0].Kind != TString {
			return Null(), nil
		}
		return Int(int64(len(args[0].S))), nil
	case "TRIM":
		if err := need(1); err != nil {
			return Null(), err
		}
		if args[0].Kind != TString {
			return Null(), nil
		}
		return Str(strings.TrimSpace(args[0].S)), nil
	case "SUBSTR":
		if err := need(3); err != nil {
			return Null(), err
		}
		if args[0].Kind != TString {
			return Null(), nil
		}
		start, ok1 := args[1].AsInt()
		n, ok2 := args[2].AsInt()
		if !ok1 || !ok2 {
			return Null(), nil
		}
		str := args[0].S
		// SQL-style 1-based start.
		i := int(start) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(str) || n <= 0 {
			return Str(""), nil
		}
		end := i + int(n)
		if end > len(str) {
			end = len(str)
		}
		return Str(str[i:end]), nil
	case "COALESCE":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return Null(), nil
	case "ABS":
		if err := need(1); err != nil {
			return Null(), err
		}
		switch args[0].Kind {
		case TInt:
			if args[0].I < 0 {
				return Int(-args[0].I), nil
			}
			return args[0], nil
		case TFloat:
			return Float(math.Abs(args[0].F)), nil
		}
		return Null(), nil
	case "ROUND":
		if err := need(1); err != nil {
			return Null(), err
		}
		if f, ok := args[0].AsFloat(); ok {
			return Float(math.Round(f)), nil
		}
		return Null(), nil
	case "YEAR":
		if err := need(1); err != nil {
			return Null(), err
		}
		if args[0].Kind != TDate {
			return Null(), nil
		}
		return Int(int64(args[0].T.Year())), nil
	case "MONTH":
		if err := need(1); err != nil {
			return Null(), err
		}
		if args[0].Kind != TDate {
			return Null(), nil
		}
		return Int(int64(args[0].T.Month())), nil
	case "DAY":
		if err := need(1); err != nil {
			return Null(), err
		}
		if args[0].Kind != TDate {
			return Null(), nil
		}
		return Int(int64(args[0].T.Day())), nil
	case "QUARTER":
		if err := need(1); err != nil {
			return Null(), err
		}
		if args[0].Kind != TDate {
			return Null(), nil
		}
		return Int(int64((int(args[0].T.Month())-1)/3 + 1)), nil
	case "DATE":
		if err := need(1); err != nil {
			return Null(), err
		}
		v, ok := args[0].Coerce(TDate)
		if !ok {
			return Null(), nil
		}
		return v, nil
	case "CAST_INT":
		if err := need(1); err != nil {
			return Null(), err
		}
		v, ok := args[0].Coerce(TInt)
		if !ok {
			return Null(), nil
		}
		return v, nil
	case "CAST_FLOAT":
		if err := need(1); err != nil {
			return Null(), err
		}
		v, ok := args[0].Coerce(TFloat)
		if !ok {
			return Null(), nil
		}
		return v, nil
	case "CAST_STRING":
		if err := need(1); err != nil {
			return Null(), err
		}
		v, ok := args[0].Coerce(TString)
		if !ok {
			return Null(), nil
		}
		return v, nil
	default:
		return Null(), fmt.Errorf("relation: unknown function %s", name)
	}
}

// String implements Expr.
func (e *FuncExpr) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return e.Name + "(" + strings.Join(parts, ", ") + ")"
}

// ColumnRefs implements Expr.
func (e *FuncExpr) ColumnRefs(dst []string) []string {
	for _, a := range e.Args {
		dst = a.ColumnRefs(dst)
	}
	return dst
}

// EvalPredicate evaluates e as a row predicate: the row is selected only
// when the result is exactly TRUE.
func EvalPredicate(e Expr, r Row, s *Schema) (bool, error) {
	if e == nil {
		return true, nil
	}
	v, err := e.Eval(r, s)
	if err != nil {
		return false, err
	}
	return v.Kind == TBool && v.B, nil
}

// InferType computes the static result type of an expression against a
// schema. Unknown shapes infer as TNull (dynamically typed).
func InferType(e Expr, s *Schema) Type {
	switch ex := e.(type) {
	case *LitExpr:
		return ex.V.Kind
	case *ColExpr:
		if i := s.Index(ex.Name); i >= 0 {
			return s.Columns[i].Type
		}
		return TNull
	case *BinExpr:
		switch ex.Op {
		case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpAnd, OpOr, OpLike:
			return TBool
		case OpConcat:
			return TString
		default:
			lt, rt := InferType(ex.L, s), InferType(ex.R, s)
			if lt == TFloat || rt == TFloat {
				return TFloat
			}
			if lt == TInt && rt == TInt {
				return TInt
			}
			return TFloat
		}
	case *NotExpr, *IsNullExpr, *InExpr:
		return TBool
	case *NegExpr:
		return InferType(ex.E, s)
	case *FuncExpr:
		switch ex.Name {
		case "UPPER", "LOWER", "TRIM", "SUBSTR", "CAST_STRING":
			return TString
		case "LENGTH", "YEAR", "MONTH", "DAY", "QUARTER", "CAST_INT":
			return TInt
		case "ABS", "ROUND", "CAST_FLOAT":
			return TFloat
		case "DATE":
			return TDate
		case "COALESCE":
			if len(ex.Args) > 0 {
				return InferType(ex.Args[0], s)
			}
		}
		return TNull
	default:
		return TNull
	}
}
