package relation

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered list of columns. Column names are matched
// case-insensitively, and may optionally be qualified ("table.column");
// an unqualified lookup matches the unqualified part.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema from name/type pairs.
func NewSchema(cols ...Column) *Schema {
	return &Schema{Columns: cols}
}

// Col is a convenience constructor for a Column.
func Col(name string, t Type) Column { return Column{Name: name, Type: t} }

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Columns) }

// baseName strips an optional qualifier from a column name.
func baseName(name string) string {
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		return name[i+1:]
	}
	return name
}

// Index returns the position of the named column, or -1 if absent.
// Qualified lookups ("t.c") match only columns with that exact qualified
// name (case-insensitive); unqualified lookups match the first column whose
// unqualified name matches.
func (s *Schema) Index(name string) int {
	if strings.ContainsRune(name, '.') {
		for i, c := range s.Columns {
			if strings.EqualFold(c.Name, name) {
				return i
			}
		}
		return -1
	}
	for i, c := range s.Columns {
		if strings.EqualFold(baseName(c.Name), name) {
			return i
		}
	}
	return -1
}

// HasColumn reports whether the named column exists.
func (s *Schema) HasColumn(name string) bool { return s.Index(name) >= 0 }

// ColumnNames returns the column names in order.
func (s *Schema) ColumnNames() []string {
	names := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		names[i] = c.Name
	}
	return names
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	cols := make([]Column, len(s.Columns))
	copy(cols, s.Columns)
	return &Schema{Columns: cols}
}

// Qualify returns a copy of the schema with every column name prefixed by
// the given qualifier (existing qualifiers are replaced).
func (s *Schema) Qualify(q string) *Schema {
	cols := make([]Column, len(s.Columns))
	for i, c := range s.Columns {
		cols[i] = Column{Name: q + "." + baseName(c.Name), Type: c.Type}
	}
	return &Schema{Columns: cols}
}

// Unqualify returns a copy of the schema with all qualifiers stripped.
// It returns an error if stripping would create duplicate names.
func (s *Schema) Unqualify() (*Schema, error) {
	seen := make(map[string]bool, len(s.Columns))
	cols := make([]Column, len(s.Columns))
	for i, c := range s.Columns {
		n := strings.ToLower(baseName(c.Name))
		if seen[n] {
			return nil, fmt.Errorf("relation: unqualify would duplicate column %q", n)
		}
		seen[n] = true
		cols[i] = Column{Name: baseName(c.Name), Type: c.Type}
	}
	return &Schema{Columns: cols}, nil
}

// String renders the schema as "(a STRING, b INT)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Type)
	}
	b.WriteByte(')')
	return b.String()
}

// Equal reports whether two schemas have identical column names (ignoring
// case and qualifiers) and types, in order.
func (s *Schema) Equal(o *Schema) bool {
	if len(s.Columns) != len(o.Columns) {
		return false
	}
	for i := range s.Columns {
		if !strings.EqualFold(baseName(s.Columns[i].Name), baseName(o.Columns[i].Name)) ||
			s.Columns[i].Type != o.Columns[i].Type {
			return false
		}
	}
	return true
}
