package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// WriteCSV streams the table as CSV with a header row. NULLs are written
// as empty fields.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Schema.ColumnNames()); err != nil {
		return fmt.Errorf("relation: write csv header: %w", err)
	}
	record := make([]string, t.Schema.Len())
	for _, row := range t.Rows {
		for i, v := range row {
			if v.IsNull() {
				record[i] = ""
			} else {
				record[i] = v.String()
			}
		}
		if err := cw.Write(record); err != nil {
			return fmt.Errorf("relation: write csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV loads a base table from CSV. The first record is the header.
// Column types are taken from the provided schema when non-nil (columns
// are matched by header name); otherwise every value is parsed with type
// inference: INT, then FLOAT, then DATE (ISO), then BOOL, else STRING —
// with the inferred type fixed per column from its first non-empty value.
// Empty fields load as NULL.
func ReadCSV(name string, r io.Reader, schema *Schema) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: read csv header: %w", err)
	}
	for i := range header {
		header[i] = strings.TrimSpace(header[i])
		if header[i] == "" {
			return nil, fmt.Errorf("relation: empty column name at position %d", i)
		}
	}

	types := make([]Type, len(header))
	if schema != nil {
		for i, h := range header {
			ci := schema.Index(h)
			if ci < 0 {
				return nil, fmt.Errorf("relation: csv column %q not in schema %s", h, schema)
			}
			types[i] = schema.Columns[ci].Type
		}
	}

	var records [][]string
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: read csv: %w", err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("relation: csv row has %d fields, want %d", len(rec), len(header))
		}
		records = append(records, rec)
	}

	if schema == nil {
		for c := range header {
			types[c] = inferCSVType(records, c)
		}
	}

	cols := make([]Column, len(header))
	for i, h := range header {
		cols[i] = Column{Name: h, Type: types[i]}
	}
	out := NewBase(name, &Schema{Columns: cols})
	for ri, rec := range records {
		row := make(Row, len(header))
		for c, field := range rec {
			v, err := parseCSVValue(field, types[c])
			if err != nil {
				return nil, fmt.Errorf("relation: csv row %d column %q: %w", ri+1, header[c], err)
			}
			row[c] = v
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// inferCSVType picks the narrowest type every non-empty value of the
// column coerces to.
func inferCSVType(records [][]string, col int) Type {
	candidates := []Type{TInt, TFloat, TDate, TBool}
	viable := map[Type]bool{TInt: true, TFloat: true, TDate: true, TBool: true}
	seen := false
	for _, rec := range records {
		field := strings.TrimSpace(rec[col])
		if field == "" {
			continue
		}
		seen = true
		for t := range viable {
			if _, ok := Str(field).Coerce(t); !ok {
				delete(viable, t)
			}
		}
		if len(viable) == 0 {
			return TString
		}
	}
	if !seen {
		return TString
	}
	for _, t := range candidates {
		if viable[t] {
			return t
		}
	}
	return TString
}

func parseCSVValue(field string, t Type) (Value, error) {
	field = strings.TrimSpace(field)
	if field == "" {
		return Null(), nil
	}
	if t == TString || t == TNull {
		return Str(field), nil
	}
	v, ok := Str(field).Coerce(t)
	if !ok {
		return Null(), fmt.Errorf("cannot parse %q as %s", field, t)
	}
	return v, nil
}
