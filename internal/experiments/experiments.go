// Package experiments regenerates every figure-level claim of the paper
// as a measured result (DESIGN.md experiment index E1–E11). Each
// experiment returns the text block recorded in EXPERIMENTS.md; the root
// bench_test.go exposes one benchmark per experiment.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Result is one experiment's output.
type Result struct {
	ID    string
	Title string
	Lines []string
}

// String renders the result block.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", strings.ToUpper(r.ID), r.Title)
	for _, l := range r.Lines {
		b.WriteString(l + "\n")
	}
	return b.String()
}

func (r *Result) addf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// runner executes one experiment.
type runner struct {
	id    string
	title string
	fn    func() (*Result, error)
}

var registry = []runner{
	{"e1", "Fig. 1 — end-to-end outsourced BI pipeline under PLAs", E1Pipeline},
	{"e2", "Fig. 2 — source-level enforcement (metadata, intensional associations, release filter)", E2Source},
	{"e3", "Fig. 3 — warehouse/ETL-level enforcement (join & integration permissions)", E3ETL},
	{"e4", "Fig. 4 — report-level enforcement (golden drug-consumption reproduction)", E4Report},
	{"e5", "Fig. 5 — ease-of-elicitation vs stability continuum", E5Continuum},
	{"e6", "§3 — over-engineering by level", E6OverEngineering},
	{"e7", "§5–6 — PLA-derived compliance tests detect injected bugs", E7TestGeneration},
	{"e8", "§3 — anonymizing release: privacy vs aggregate utility", E8Anonymization},
	{"e9", "§3–5 — enforcement placement ablation", E9Placement},
	{"e10", "§5 — meta-report granularity ablation", E10Granularity},
	{"e11", "§3 — linkage-attack evaluation of the anonymizing release", E11Linkage},
}

// IDs returns the experiment ids in order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, r := range registry {
		out[i] = r.id
	}
	return out
}

// Run executes one experiment by id.
func Run(id string) (*Result, error) {
	id = strings.ToLower(strings.TrimSpace(id))
	for _, r := range registry {
		if r.id == id {
			res, err := r.fn()
			if err != nil {
				return nil, fmt.Errorf("experiment %s: %w", id, err)
			}
			res.ID, res.Title = r.id, r.title
			return res, nil
		}
	}
	return nil, fmt.Errorf("unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
}

// RunAll executes every experiment in order.
func RunAll() ([]*Result, error) {
	out := make([]*Result, 0, len(registry))
	for _, r := range registry {
		res, err := Run(r.id)
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}

// sortedKeys returns map keys in sorted order (deterministic output).
func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
