package plabi

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"plabi/internal/etl"
	"plabi/internal/relation"
	"plabi/internal/workload"
)

func quickEngine(t *testing.T) *Engine {
	t.Helper()
	e := Open()
	seedQuickScenario(t, e)
	return e
}

// seedQuickScenario loads the paper's literal prescriptions fixture, a
// source-level PLA and one report into an already-opened engine.
func seedQuickScenario(t *testing.T, e *Engine) {
	t.Helper()
	e.AddSource(NewSource("hospital", "hospital", workload.PrescriptionsFixture()))
	err := e.AddPLAs(`
pla "src" { owner "hospital"; level source; scope "prescriptions";
    allow attribute drug; allow attribute date;
    allow attribute patient when disease <> 'HIV'; }`)
	if err != nil {
		t.Fatal(err)
	}
	err = e.DefineReport(&ReportDefinition{ID: "rx-list", Title: "Rx",
		Query: "SELECT patient, drug, date FROM prescriptions ORDER BY date"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIRoundTrip(t *testing.T) {
	var sink strings.Builder
	e := Open(WithAuditSink(&sink), WithCacheSize(64), WithWorkers(2))
	e.AddSource(NewSource("hospital", "hospital", workload.PrescriptionsFixture()))
	if err := e.AddPLAs(`pla "p" { owner "hospital"; level source; scope "prescriptions"; allow attribute *; }`); err != nil {
		t.Fatal(err)
	}
	if err := e.DefineReport(&ReportDefinition{ID: "r", Query: "SELECT drug FROM prescriptions"}); err != nil {
		t.Fatal(err)
	}
	enf, err := e.Render(context.Background(), "r", Consumer{Name: "u", Role: "analyst"})
	if err != nil {
		t.Fatal(err)
	}
	if enf.Table.NumRows() == 0 {
		t.Fatal("no rows rendered")
	}
	if sink.Len() == 0 {
		t.Error("audit sink saw nothing")
	}
	if _, ok := e.Source("hospital"); !ok {
		t.Error("Source accessor failed")
	}
}

func TestTypedErrors(t *testing.T) {
	e := quickEngine(t)
	ctx := context.Background()

	if _, err := e.Render(ctx, "nope", Consumer{Role: "analyst"}); !errors.Is(err, ErrUnknownReport) {
		t.Errorf("Render unknown: %v, want ErrUnknownReport", err)
	}
	if _, err := e.CheckReportCompliance(ctx, "nope", Consumer{Role: "analyst"}); !errors.Is(err, ErrUnknownReport) {
		t.Errorf("CheckReportCompliance unknown: %v", err)
	}
	if err := e.DefineReport(&ReportDefinition{ID: "bad", Query: "SELECT x FROM missing"}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Render(ctx, "bad", Consumer{Role: "analyst"}); !errors.Is(err, ErrUnknownTable) {
		t.Errorf("Render over missing table: %v, want ErrUnknownTable", err)
	}
}

func TestRenderBlockedError(t *testing.T) {
	e := quickEngine(t)
	// A non-aggregated report under an aggregation threshold is statically
	// blocked.
	err := e.AddPLAs(`pla "thresh" { owner "hospital"; level report; scope "rx-list";
		aggregate min 3 by patient; }`)
	if err != nil {
		t.Fatal(err)
	}
	enf, err := e.Render(context.Background(), "rx-list", Consumer{Name: "u", Role: "analyst"})
	if err == nil {
		t.Fatal("blocked render returned nil error")
	}
	if !errors.Is(err, ErrPLAViolation) {
		t.Errorf("blocked render error %v does not wrap ErrPLAViolation", err)
	}
	var be *BlockedError
	if !errors.As(err, &be) || len(be.Decisions) == 0 {
		t.Fatalf("blocked render error %v does not expose decisions", err)
	}
	if enf == nil || enf.Table.NumRows() != 0 {
		t.Error("blocked render should still return the empty enforced table")
	}
	if decs, ok := IsBlocked(err); !ok || len(decs) == 0 {
		t.Error("IsBlocked should recognize the refusal")
	}
}

func TestETLViolationWrapsSentinel(t *testing.T) {
	e, err := OpenHealthcare(HealthcareConfig{Prescriptions: 300})
	if err != nil {
		t.Fatal(err)
	}
	hosp, _ := e.Source("hospital")
	fam, _ := e.Source("familydoctors")
	p := &Pipeline{Name: "forbidden", Steps: []Step{
		etl.NewExtract("x1", hosp, "prescriptions", ""),
		etl.NewExtract("x2", fam, "familydoctor", ""),
		etl.NewJoin("bad-join", "prescriptions", "familydoctor",
			relation.Eq(relation.ColRefExpr("l.patient"), relation.ColRefExpr("r.patient")),
			relation.InnerJoin, "fd_joined"),
	}}
	_, err = e.RunETL(context.Background(), p, false)
	if err == nil {
		t.Fatal("forbidden join did not error")
	}
	if !errors.Is(err, ErrPLAViolation) {
		t.Errorf("ETL violation %v does not wrap ErrPLAViolation", err)
	}
	var be *BlockedError
	if !errors.As(err, &be) {
		t.Errorf("ETL violation %v does not carry a *BlockedError", err)
	}
}

func TestContextCancellation(t *testing.T) {
	e := quickEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Render(ctx, "rx-list", Consumer{Role: "analyst"}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled render: %v, want context.Canceled", err)
	}
	if _, err := e.CheckReportCompliance(ctx, "rx-list", Consumer{Role: "analyst"}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled compliance check: %v", err)
	}
}

func TestConcurrentPublicRenders(t *testing.T) {
	e, err := OpenHealthcare(HealthcareConfig{Prescriptions: 500})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				_, err := e.Render(context.Background(), "drug-consumption",
					Consumer{Name: "u", Role: "analyst", Purpose: "quality"})
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if stats := e.CacheStats(); stats.Hits == 0 {
		t.Errorf("concurrent renders produced no cache hits: %+v", stats)
	}
}
