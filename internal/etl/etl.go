// Package etl implements the extract-transform-load pipeline of the
// outsourced BI scenario (§2, §4): extraction from per-owner sources into
// a staging area, cleansing, entity resolution across sources, joins and
// derivations, with every step recorded in the provenance transformation
// graph and guarded by PLA enforcement hooks (join permissions,
// integration permissions — Fig. 3).
package etl

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"plabi/internal/fault"
	"plabi/internal/obs"
	"plabi/internal/provenance"
	"plabi/internal/relation"
)

// Source is one data provider: an owning institution and its tables.
type Source struct {
	Name   string // e.g. "hospital"
	Owner  string // owning institution (often equal to Name)
	Tables map[string]*relation.Table
}

// NewSource builds a source from tables, keyed by table name.
func NewSource(name, owner string, tables ...*relation.Table) *Source {
	s := &Source{Name: name, Owner: owner, Tables: map[string]*relation.Table{}}
	for _, t := range tables {
		s.Tables[strings.ToLower(t.Name)] = t
	}
	return s
}

// Table returns the named table of the source.
func (s *Source) Table(name string) (*relation.Table, bool) {
	t, ok := s.Tables[strings.ToLower(name)]
	return t, ok
}

// Guard is consulted before privacy-relevant ETL operations. The enforce
// package provides the PLA-backed implementation; AllowAll is the null
// guard.
type Guard interface {
	// CheckJoin is consulted before joining data deriving from the two
	// base tables.
	CheckJoin(left, right string) error
	// CheckIntegration is consulted before donor data is used to
	// clean/resolve data belonging to the beneficiary owner (§5 v).
	CheckIntegration(donorTable, beneficiaryOwner string) error
}

// AllowAll is a Guard that permits every operation.
type AllowAll struct{}

// CheckJoin implements Guard.
func (AllowAll) CheckJoin(_, _ string) error { return nil }

// CheckIntegration implements Guard.
func (AllowAll) CheckIntegration(_, _ string) error { return nil }

// Context carries pipeline state: the staging area, the provenance graph,
// the guard, and an optional event sink. Get and Put are safe for
// concurrent use; direct access to Staging is only safe while no pipeline
// is running.
type Context struct {
	mu      sync.RWMutex
	Staging map[string]*relation.Table
	Graph   *provenance.Graph
	Guard   Guard
	// Observe, when non-nil, receives one event per executed step. It is
	// always called sequentially, in pipeline step order, even when steps
	// execute in parallel waves.
	Observe func(step, op, output string, rowsIn, rowsOut int, err error)
	// Metrics, when non-nil, receives per-wave durations and step /
	// violation counters (etl.* names).
	Metrics *obs.Metrics
	// Faults, when non-nil, injects faults at the etl.* sites; chaos
	// runs use it to drive failure schedules through the pipeline.
	Faults *fault.Injector
	// Retry bounds retries at the retryable source-extraction boundary.
	// The zero policy performs a single attempt.
	Retry fault.RetryPolicy
	// SpillStore, when non-nil and SpillThreshold > 0, receives staging
	// tables of at least SpillThreshold rows as on-disk columnar
	// segments: Put swaps the in-memory rows for a segment-backed view,
	// so wide intermediates stop occupying heap between steps. A failed
	// spill keeps the in-memory table (fail-open) and counts
	// etl.spill.errors on Metrics.
	SpillStore     *relation.SegmentStore
	SpillThreshold int

	// runCtx is the context of the executing pipeline run, exposed to
	// steps via Ctx so long row loops can honour cancellation.
	runCtx context.Context
}

// NewContext returns a context with an empty staging area and the given
// guard (nil means AllowAll).
func NewContext(g Guard) *Context {
	if g == nil {
		g = AllowAll{}
	}
	return &Context{Staging: map[string]*relation.Table{}, Graph: provenance.NewGraph(), Guard: g}
}

// Get fetches a staging table.
func (c *Context) Get(name string) (*relation.Table, error) {
	c.mu.RLock()
	t, ok := c.Staging[strings.ToLower(name)]
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("etl: staging table %q not found", name)
	}
	return t, nil
}

// Put stores a staging table under the given name, spilling it to the
// configured segment store first when it crosses the spill threshold.
func (c *Context) Put(name string, t *relation.Table) {
	if c.SpillStore != nil && c.SpillThreshold > 0 && t.NumRows() >= c.SpillThreshold {
		if spilled, err := c.SpillStore.Spill(t); err == nil {
			t = spilled
		} else {
			c.Metrics.Counter("etl.spill.errors").Inc()
		}
	}
	c.mu.Lock()
	c.Staging[strings.ToLower(name)] = t
	c.mu.Unlock()
}

// Ctx returns the context of the pipeline run currently executing
// against this Context (context.Background outside a run). Steps use it
// to honour cancellation inside per-row loops.
func (c *Context) Ctx() context.Context {
	c.mu.RLock()
	ctx := c.runCtx
	c.mu.RUnlock()
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

func (c *Context) setCtx(ctx context.Context) {
	c.mu.Lock()
	c.runCtx = ctx
	c.mu.Unlock()
}

func (c *Context) rows(name string) (int, bool) {
	c.mu.RLock()
	t, ok := c.Staging[strings.ToLower(name)]
	c.mu.RUnlock()
	if !ok {
		return 0, false
	}
	return t.NumRows(), true
}

// Step is one pipeline operation.
type Step interface {
	// Name identifies the step instance for annotations and audits.
	Name() string
	// Op is the operation kind (extract, cleanse, join, ...).
	Op() string
	// Inputs and Output name the staging relations involved.
	Inputs() []string
	Output() string
	// Run executes the step against the context.
	Run(c *Context) error
}

// Pipeline is an ordered list of steps. PLA annotations attach to steps by
// name via the policy registry (scope = step name).
//
// Run schedules steps in dependency waves: two steps may execute
// concurrently when neither reads the other's output, they write distinct
// outputs, and neither overwrites a relation the other reads. Observable
// behaviour (Observe callbacks, provenance graph recording, violation
// ordering) is identical to a sequential run.
type Pipeline struct {
	Name  string
	Steps []Step
	// Workers bounds per-wave parallelism (0 = one per CPU, 1 = serial).
	Workers int
}

// Result reports one pipeline run.
type Result struct {
	StepsRun int
	// Violations collects the enforcement errors of failed steps
	// (the run stops at the first one unless ContinueOnViolation).
	Violations []error
	// Skipped counts steps not executed because a transitive upstream
	// step was blocked by a violation and its output never materialized
	// (continue-on-violation runs only). Each is recorded via Observe
	// with a *SkippedError and counted under the etl.skipped metric.
	Skipped int
}

// Run executes the pipeline. Enforcement errors (etl.ViolationError)
// abort the offending step; when continueOnViolation is true the pipeline
// carries on with the remaining steps (the blocked step's output is
// absent), otherwise it stops.
func (p *Pipeline) Run(c *Context, continueOnViolation bool) (Result, error) {
	return p.RunContext(context.Background(), c, continueOnViolation)
}

// stepOutcome is the raw result of executing one step inside a wave,
// recorded into the context sequentially afterwards.
type stepOutcome struct {
	rowsIn, rowsOut int
	err             error
}

// RunContext executes the pipeline, honouring ctx between waves.
// Independent steps run concurrently on a bounded worker pool; results
// are recorded (Observe, provenance, violation accounting) in original
// step order after each wave, so audit trails and the transformation
// graph are deterministic regardless of scheduling.
func (p *Pipeline) RunContext(ctx context.Context, c *Context, continueOnViolation bool) (Result, error) {
	var res Result
	c.setCtx(ctx)
	defer c.setCtx(nil)
	n := len(p.Steps)
	deps := p.dependencies()
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	done := make([]bool, n)    // step recorded (success, violation or skip)
	// blockedOut marks staging relations whose producer was blocked by a
	// violation (or skipped downstream of one) without leaving any output.
	// A ready step reading such a relation cannot run — its Get would fail
	// with an operational "staging table not found" error and abort a
	// continue-on-violation run — so it is skipped and recorded instead.
	blockedOut := map[string]bool{}
	completed := 0
	for completed < n {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		// Collect the next wave: every unfinished step whose dependencies
		// are all done. Steps downstream of a blocked producer are skipped
		// inline (marking them done immediately lets a whole dependent
		// chain cascade within one collection pass, in step order).
		var wave []int
		for i := 0; i < n; i++ {
			if done[i] {
				continue
			}
			ready := true
			for _, d := range deps[i] {
				if !done[d] {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			if up := p.blockedInput(c, blockedOut, i); up != "" {
				s := p.Steps[i]
				serr := &SkippedError{Step: s.Name(), Upstream: up}
				if c.Observe != nil {
					c.Observe(s.Name(), s.Op(), s.Output(), 0, 0, serr)
				}
				res.Skipped++
				c.Metrics.Counter("etl.skipped").Inc()
				if _, ok := c.rows(s.Output()); !ok {
					blockedOut[strings.ToLower(s.Output())] = true
				}
				done[i] = true
				completed++
				continue
			}
			wave = append(wave, i)
		}
		if len(wave) == 0 {
			// The whole remainder of the pipeline was skipped.
			continue
		}
		// Dependencies only point backwards, so a wave is never empty.
		waveStart := time.Now()
		outcomes := make([]stepOutcome, len(wave))
		// rowsIn is stable across the wave: no step in a wave writes a
		// relation another wave member reads.
		for wi, si := range wave {
			outcomes[wi].rowsIn = countRows(c, p.Steps[si].Inputs())
		}
		if workers == 1 || len(wave) == 1 {
			for wi, si := range wave {
				p.execStep(ctx, c, si, &outcomes[wi])
			}
		} else {
			sem := make(chan struct{}, workers)
			var wg sync.WaitGroup
			for wi, si := range wave {
				wg.Add(1)
				sem <- struct{}{}
				go func(wi, si int) {
					defer wg.Done()
					defer func() { <-sem }()
					p.execStep(ctx, c, si, &outcomes[wi])
				}(wi, si)
			}
			wg.Wait()
		}
		c.Metrics.Histogram("etl.wave.duration").Observe(time.Since(waveStart))
		c.Metrics.Counter("etl.waves").Inc()
		// Record outcomes sequentially in original step order — identical
		// observable trace to a sequential run.
		for wi, si := range wave {
			s := p.Steps[si]
			o := outcomes[wi]
			if c.Observe != nil {
				c.Observe(s.Name(), s.Op(), s.Output(), o.rowsIn, o.rowsOut, o.err)
			}
			if o.err != nil {
				if IsViolation(o.err) {
					res.Violations = append(res.Violations, o.err)
					c.Metrics.Counter("etl.violations").Inc()
					if ve := violationOf(o.err); ve != nil && ve.Rule != "" {
						c.Metrics.Counter("etl.block." + ve.Rule).Inc()
					}
					if continueOnViolation {
						done[si] = true
						completed++
						// A blocked step that produced no output poisons its
						// readers; one that overwrote an existing relation
						// leaves the previous version for them (identical to
						// sequential semantics, where their Get succeeds).
						if _, ok := c.rows(s.Output()); !ok {
							blockedOut[strings.ToLower(s.Output())] = true
						}
						continue
					}
					return res, o.err
				}
				return res, fmt.Errorf("etl: step %q: %w", s.Name(), o.err)
			}
			c.Graph.AddStep(s.Op(), s.Inputs(), s.Output(), s.Name(), o.rowsIn, o.rowsOut)
			res.StepsRun++
			c.Metrics.Counter("etl.steps").Inc()
			done[si] = true
			completed++
		}
	}
	return res, nil
}

// execStep runs one step under panic isolation and the etl.step fault
// site: a panicking step (organic or injected) fails its wave as a typed
// *fault.InternalError instead of killing the process, whether the step
// ran serially or on a pool goroutine.
func (p *Pipeline) execStep(ctx context.Context, c *Context, si int, o *stepOutcome) {
	s := p.Steps[si]
	o.err = fault.Safely("etl.step("+s.Name()+")", c.Metrics, func() error {
		if err := c.Faults.Hit(ctx, fault.SiteETLStep); err != nil {
			return err
		}
		return s.Run(c)
	})
	// Only a successful step owns its output's row count: a failed step
	// that would have overwritten an existing staging relation must not
	// report the stale table's rows to Observe and the audit trail.
	if o.err == nil {
		if rows, ok := c.rows(s.Output()); ok {
			o.rowsOut = rows
		}
	}
}

// blockedInput returns the first input of step si that is both absent
// from staging and marked as the output of a blocked producer ("" when
// the step can run).
func (p *Pipeline) blockedInput(c *Context, blockedOut map[string]bool, si int) string {
	for _, in := range p.Steps[si].Inputs() {
		key := strings.ToLower(in)
		if !blockedOut[key] {
			continue
		}
		if _, ok := c.rows(key); !ok {
			return in
		}
	}
	return ""
}

// dependencies computes, per step, the indices of earlier steps it must
// wait for: producers of its inputs (read-after-write), earlier writers of
// its output (write-after-write), and earlier readers of a relation it
// overwrites (write-after-read).
func (p *Pipeline) dependencies() [][]int {
	n := len(p.Steps)
	ins := make([]map[string]bool, n)
	outs := make([]string, n)
	for i, s := range p.Steps {
		ins[i] = map[string]bool{}
		for _, in := range s.Inputs() {
			ins[i][strings.ToLower(in)] = true
		}
		outs[i] = strings.ToLower(s.Output())
	}
	deps := make([][]int, n)
	for j := 0; j < n; j++ {
		for i := 0; i < j; i++ {
			if ins[j][outs[i]] || outs[i] == outs[j] || ins[i][outs[j]] {
				deps[j] = append(deps[j], i)
			}
		}
	}
	return deps
}

func countRows(c *Context, names []string) int {
	n := 0
	for _, name := range names {
		if rows, ok := c.rows(name); ok {
			n += rows
		}
	}
	return n
}

// SkippedError marks a step that was not executed because a transitive
// upstream step was blocked by a privacy violation and left no output
// for it to read. It is recorded via Observe (so audit trails show the
// cascade) but is neither a violation nor an operational failure: a
// continue-on-violation run carries on past it.
type SkippedError struct {
	Step     string
	Upstream string // missing staging relation whose producer was blocked
}

// Error implements error.
func (e *SkippedError) Error() string {
	return fmt.Sprintf("etl: step %q skipped: upstream relation %q blocked by violation", e.Step, e.Upstream)
}

// IsSkipped reports whether err is (or wraps) a SkippedError.
func IsSkipped(err error) bool {
	var se *SkippedError
	return errors.As(err, &se)
}

// ViolationError marks a privacy-enforcement failure (as opposed to an
// operational error).
type ViolationError struct {
	Step   string
	Rule   string
	Detail string
	// Cause is the underlying enforcement error (typically a
	// *enforce.BlockedError wrapping enforce.ErrPLAViolation), exposed via
	// Unwrap so errors.Is/As see through the ETL wrapper.
	Cause error
}

// Error implements error.
func (e *ViolationError) Error() string {
	return fmt.Sprintf("etl: privacy violation in step %q: %s: %s", e.Step, e.Rule, e.Detail)
}

// Unwrap returns the underlying enforcement error, if any.
func (e *ViolationError) Unwrap() error { return e.Cause }

// IsViolation reports whether err is (or wraps) a ViolationError.
func IsViolation(err error) bool {
	return violationOf(err) != nil
}

// violationOf unwraps err to its *ViolationError (nil when it is not
// one).
func violationOf(err error) *ViolationError {
	for err != nil {
		if ve, ok := err.(*ViolationError); ok {
			return ve
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return nil
		}
		err = u.Unwrap()
	}
	return nil
}
