package apiv1

import (
	"encoding/json"
	"reflect"
	"testing"
)

// The golden documents below ARE the /v1 wire contract: if one of these
// assertions breaks, the change is wire-visible and belongs in /v2 (or,
// for a pure addition, the golden text is extended here, never edited).
var goldenCases = []struct {
	name   string
	value  any
	golden string
}{
	{
		name: "RenderRequest",
		value: &RenderRequest{
			Report:   "drug-consumption",
			Consumer: Consumer{Name: "alice", Role: "analyst", Purpose: "quality"},
			MaxRows:  10,
			OmitRows: false,
		},
		golden: `{"report":"drug-consumption","consumer":{"name":"alice","role":"analyst","purpose":"quality"},"max_rows":10}`,
	},
	{
		name: "RenderResponse",
		value: &RenderResponse{
			Tenant:        "alpha",
			Report:        "drug-consumption",
			CorrelationID: "alpha-r00000001",
			Columns:       []Column{{Name: "drug", Type: "STRING"}, {Name: "consumption", Type: "INT"}},
			Rows:          [][]string{{"aspirin", "12"}, {"ibuprofen", "7"}},
			TotalRows:     2,
			Decisions: []Decision{{
				Outcome: "mask", Rule: "access-deny", Subject: "patient",
				PLAs: []string{"hospital-prescriptions"}, Detail: "attribute not released to analysts",
			}},
			MaskedCells:    4,
			SuppressedRows: 1,
			CacheHit:       true,
		},
		golden: `{"tenant":"alpha","report":"drug-consumption","correlation_id":"alpha-r00000001","columns":[{"name":"drug","type":"STRING"},{"name":"consumption","type":"INT"}],"rows":[["aspirin","12"],["ibuprofen","7"]],"total_rows":2,"decisions":[{"outcome":"mask","rule":"access-deny","subject":"patient","plas":["hospital-prescriptions"],"detail":"attribute not released to analysts"}],"masked_cells":4,"suppressed_rows":1,"cache_hit":true}`,
	},
	{
		name: "CheckRequest",
		value: &CheckRequest{
			Report:   "patient-activity",
			Consumer: Consumer{Role: "auditor"},
		},
		golden: `{"report":"patient-activity","consumer":{"role":"auditor"}}`,
	},
	{
		name: "CheckResponse",
		value: &CheckResponse{
			Tenant: "alpha", Report: "patient-activity", CorrelationID: "alpha-r00000002",
			Compliant: false,
			Findings: []Decision{{
				Outcome: "block", Rule: "access-default-deny", Subject: "patient",
			}},
		},
		golden: `{"tenant":"alpha","report":"patient-activity","correlation_id":"alpha-r00000002","compliant":false,"findings":[{"outcome":"block","rule":"access-default-deny","subject":"patient"}]}`,
	},
	{
		name: "LintRequest",
		value: &LintRequest{
			Source:      `pla "p" { owner "o"; level source; scope "t"; allow attribute a; }`,
			MinSeverity: "warning",
		},
		golden: `{"source":"pla \"p\" { owner \"o\"; level source; scope \"t\"; allow attribute a; }","min_severity":"warning"}`,
	},
	{
		name: "LintResponse",
		value: &LintResponse{
			Tenant: "alpha", CorrelationID: "alpha-r00000003", Clean: false,
			Findings: []LintFinding{{
				Code: "PL001", Severity: "info", Level: "source", Pos: "policy.pla:3:5",
				Subject: "a", Message: "rule is dead", PLAs: []string{"p"},
			}},
		},
		golden: `{"tenant":"alpha","correlation_id":"alpha-r00000003","clean":false,"findings":[{"code":"PL001","severity":"info","level":"source","pos":"policy.pla:3:5","subject":"a","message":"rule is dead","plas":["p"]}]}`,
	},
	{
		name: "ReportsResponse",
		value: &ReportsResponse{
			Tenant: "alpha", CorrelationID: "alpha-r00000004",
			Reports: []ReportInfo{{
				ID: "drug-consumption", Title: "Drug consumption",
				Query: "SELECT drug, COUNT(*) AS consumption FROM rx_wide GROUP BY drug",
				Roles: []string{"analyst"}, Purpose: "quality", Version: 1, Meta: "meta-1",
			}},
		},
		golden: `{"tenant":"alpha","correlation_id":"alpha-r00000004","reports":[{"id":"drug-consumption","title":"Drug consumption","query":"SELECT drug, COUNT(*) AS consumption FROM rx_wide GROUP BY drug","roles":["analyst"],"purpose":"quality","version":1,"meta":"meta-1"}]}`,
	},
	{
		name: "HealthResponse",
		value: &HealthResponse{
			Status:  "ok",
			Tenants: []TenantHealth{{Name: "alpha", Version: 2, Reports: 5}},
		},
		golden: `{"status":"ok","tenants":[{"name":"alpha","version":2,"reports":5}]}`,
	},
	{
		name: "ErrorEnvelope",
		value: &ErrorEnvelope{Error: &Error{
			Code: CodeBlocked, Message: `render "patient-activity" blocked`,
			CorrelationID: "alpha-r00000005",
			Decisions:     []Decision{{Outcome: "block", Rule: "access-default-deny"}},
		}},
		golden: `{"error":{"code":"pla_blocked","message":"render \"patient-activity\" blocked","correlation_id":"alpha-r00000005","decisions":[{"outcome":"block","rule":"access-default-deny"}]}}`,
	},
}

func TestGoldenRoundTrip(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := json.Marshal(tc.value)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			if string(got) != tc.golden {
				t.Fatalf("wire form drifted\n got: %s\nwant: %s", got, tc.golden)
			}
			// Decode the golden text into a fresh value of the same type
			// and require equality: every field survives the round trip.
			back := reflect.New(reflect.TypeOf(tc.value).Elem()).Interface()
			if err := json.Unmarshal([]byte(tc.golden), back); err != nil {
				t.Fatalf("unmarshal golden: %v", err)
			}
			if !reflect.DeepEqual(tc.value, back) {
				t.Fatalf("round trip lost data\n got: %#v\nwant: %#v", back, tc.value)
			}
		})
	}
}

func TestErrorCodeHTTPStatus(t *testing.T) {
	want := map[ErrorCode]int{
		CodeBadRequest:       400,
		CodeUnauthorized:     401,
		CodeUnknownTenant:    404,
		CodeUnknownReport:    404,
		CodeBlocked:          403,
		CodeAuditUnavailable: 503,
		CodeRateLimited:      429,
		CodeInternal:         500,
		ErrorCode("future"):  500,
	}
	for code, status := range want {
		if got := code.HTTPStatus(); got != status {
			t.Errorf("%s.HTTPStatus() = %d, want %d", code, got, status)
		}
	}
}

func TestErrorImplementsError(t *testing.T) {
	var err error = &Error{Code: CodeUnknownReport, Message: `no report "x"`, CorrelationID: "t-r1"}
	const want = `plabid: unknown_report: no report "x" [t-r1]`
	if err.Error() != want {
		t.Fatalf("Error() = %q, want %q", err.Error(), want)
	}
}
