package experiments

import (
	"strings"
	"testing"
)

func TestIDs(t *testing.T) {
	ids := IDs()
	if len(ids) != 11 || ids[0] != "e1" || ids[10] != "e11" {
		t.Errorf("ids = %v", ids)
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("e99"); err == nil {
		t.Error("unknown experiment must fail")
	}
}

// The fast experiments run as part of the test suite; the heavy ones
// (E1, E5, E7, E8, E9) are covered by the root benchmarks.
func TestFastExperiments(t *testing.T) {
	for _, id := range []string{"e2", "e3", "e4"} {
		res, err := Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(res.Lines) == 0 {
			t.Errorf("%s: empty result", id)
		}
		if res.Title == "" || res.ID != id {
			t.Errorf("%s: header = %q/%q", id, res.ID, res.Title)
		}
	}
}

func TestE4GoldenOutput(t *testing.T) {
	res, err := Run("e4")
	if err != nil {
		t.Fatal(err)
	}
	text := res.String()
	for _, want := range []string{"DH    20", "DV    28", "DR    89", "DM    2", "PASS"} {
		if !strings.Contains(text, want) {
			t.Errorf("E4 output missing %q:\n%s", want, text)
		}
	}
}

func TestE6Monotone(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res, err := Run("e6")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.String(), "PASS") {
		t.Errorf("E6 did not pass:\n%s", res)
	}
}

// Experiments must be bit-for-bit deterministic (their outputs are
// recorded in EXPERIMENTS.md).
func TestExperimentDeterminism(t *testing.T) {
	for _, id := range []string{"e3", "e4"} {
		a, err := Run(id)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(id)
		if err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Errorf("%s not deterministic", id)
		}
	}
}
