package enforce

import (
	"errors"
	"fmt"
	"strings"
)

// ErrPLAViolation is the sentinel behind every enforcement failure that
// blocks an operation outright — a statically non-compliant report, a
// forbidden ETL join, a denied integration. Callers match it with
// errors.Is and recover the concrete decisions with errors.As on
// *BlockedError.
var ErrPLAViolation = errors.New("PLA violation")

// BlockedError reports that an operation was refused by PLA enforcement.
// It wraps ErrPLAViolation and carries the blocking decisions as
// first-class audit evidence.
type BlockedError struct {
	// Op names the refused operation ("render", "join", "integration").
	Op string
	// Subject is the element the operation targeted (report id, join
	// pair, donor table).
	Subject string
	// Decisions lists the enforcement decisions with Outcome == Block.
	Decisions []Decision
}

// Error implements error.
func (e *BlockedError) Error() string {
	if len(e.Decisions) == 0 {
		return fmt.Sprintf("enforce: %s %s blocked: %v", e.Op, e.Subject, ErrPLAViolation)
	}
	parts := make([]string, len(e.Decisions))
	for i, d := range e.Decisions {
		parts[i] = d.String()
	}
	return fmt.Sprintf("enforce: %s %s blocked: %s", e.Op, e.Subject, strings.Join(parts, "; "))
}

// Unwrap lets errors.Is(err, ErrPLAViolation) succeed.
func (e *BlockedError) Unwrap() error { return ErrPLAViolation }

// Blocked filters the decisions with Outcome == Block.
func Blocked(decisions []Decision) []Decision {
	var out []Decision
	for _, d := range decisions {
		if d.Outcome == Block {
			out = append(out, d)
		}
	}
	return out
}
