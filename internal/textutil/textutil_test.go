package textutil

import (
	"testing"
	"testing/quick"
)

func TestNormalize(t *testing.T) {
	cases := map[string]string{
		"  Alice   Rossi ": "alice rossi",
		"ALICE":            "alice",
		"":                 "",
		"a  b\tc":          "a b c",
	}
	for in, want := range cases {
		if got := Normalize(in); got != want {
			t.Errorf("Normalize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStripDiacriticsASCII(t *testing.T) {
	if got := StripDiacriticsASCII("Rossi-Verdi 3"); got != "rossiverdi 3" {
		t.Errorf("got %q", got)
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"alice", "alice", 0},
		{"alice", "alcie", 2},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinSymmetric(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 30 {
			a = a[:30]
		}
		if len(b) > 30 {
			b = b[:30]
		}
		return Levenshtein(a, b) == Levenshtein(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinTriangle(t *testing.T) {
	f := func(a, b, c string) bool {
		if len(a) > 15 {
			a = a[:15]
		}
		if len(b) > 15 {
			b = b[:15]
		}
		if len(c) > 15 {
			c = c[:15]
		}
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJaro(t *testing.T) {
	if Jaro("", "") != 1 {
		t.Error("empty strings should have similarity 1")
	}
	if Jaro("abc", "") != 0 {
		t.Error("empty vs non-empty should be 0")
	}
	if Jaro("abc", "abc") != 1 {
		t.Error("identical should be 1")
	}
	if Jaro("abc", "xyz") != 0 {
		t.Error("disjoint should be 0")
	}
	// Classic example: MARTHA vs MARHTA ≈ 0.944.
	got := Jaro("martha", "marhta")
	if got < 0.94 || got > 0.95 {
		t.Errorf("Jaro(martha, marhta) = %f", got)
	}
}

func TestJaroWinkler(t *testing.T) {
	// Winkler boosts shared prefixes.
	if JaroWinkler("martha", "marhta") <= Jaro("martha", "marhta") {
		t.Error("Winkler should boost prefix matches")
	}
	got := JaroWinkler("martha", "marhta")
	if got < 0.96 || got > 0.97 { // canonical 0.961
		t.Errorf("JaroWinkler(martha, marhta) = %f", got)
	}
}

func TestJaroWinklerBounds(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 20 {
			a = a[:20]
		}
		if len(b) > 20 {
			b = b[:20]
		}
		s := JaroWinkler(a, b)
		return s >= 0 && s <= 1.0000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSimilar(t *testing.T) {
	if !Similar("Alice Rossi", "alice  rossi", 0.9) {
		t.Error("normalized-equal names must match")
	}
	if !Similar("Alice Rossi", "Alice Rosi", 0.9) {
		t.Error("near-duplicate must match at 0.9")
	}
	if Similar("Alice Rossi", "Bruno Verdi", 0.9) {
		t.Error("different names must not match")
	}
}
