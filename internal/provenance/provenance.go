// Package provenance builds on the relation engine's lineage propagation to
// offer the tracing facilities the paper requires for compliance checking
// and dispute resolution (§2 iv, §4): given any cell of a delivered report,
// trace back to the exact source cells it was computed from, and explain
// the chain of transformations that produced it. It implements
// where-provenance at cell granularity and a transformation graph over ETL
// steps (cf. Cui–Widom lineage and DBNotes-style annotation propagation).
package provenance

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"plabi/internal/relation"
)

// SourceCell is one concrete base-table cell with its current value.
type SourceCell struct {
	Table  string
	Row    int
	Column string
	Value  relation.Value
}

// String renders the cell as table#row.column=value.
func (s SourceCell) String() string {
	return fmt.Sprintf("%s#%d.%s=%v", s.Table, s.Row, s.Column, s.Value)
}

// CellTrace is the full where-provenance of one derived cell.
type CellTrace struct {
	Column  string
	Row     int
	Value   relation.Value
	Origins relation.ColRefSet // base columns the value derives from
	Rows    relation.LineageSet
	Cells   []SourceCell // intersection of origin columns and lineage rows
}

// String renders a one-line explanation suitable for audit evidence.
func (c CellTrace) String() string {
	parts := make([]string, len(c.Cells))
	for i, s := range c.Cells {
		parts[i] = s.String()
	}
	return fmt.Sprintf("cell[%d].%s=%v <- {%s}", c.Row, c.Column, c.Value, strings.Join(parts, ", "))
}

// RowTrace is the row-level lineage of one derived row, with per-table
// support counts (the quantity aggregation thresholds are enforced on).
type RowTrace struct {
	Row     int
	Rows    relation.LineageSet
	Support map[string]int // base table -> number of contributing rows
}

// DistinctSupport returns the number of distinct values of column col among
// the base rows of table that support this row — e.g. the number of
// distinct patients behind an aggregate group.
func (t *Tracer) DistinctSupport(rt RowTrace, table, col string) int {
	base, ok := t.base(table)
	if !ok {
		return 0
	}
	ci := base.Schema.Index(col)
	if ci < 0 {
		return 0
	}
	if relation.CurrentExecMode() == relation.ExecRowAtATime {
		return t.distinctSupportRows(rt, base, table, ci)
	}
	// Vectorized path: dictionary-encode the column once per (table,
	// column) — relation.MapKey partitions values into exactly Value.Key's
	// equivalence classes, so dense codes count the same distincts — and
	// every subsequent threshold check is a branch-free array scan over a
	// seen-bitmap instead of one hash probe per supporting row.
	d := t.colDict(table, base, ci)
	if d == nil {
		// Segment-backed base whose store failed mid-build: fall back to
		// the per-ref path, which degrades per cell instead of per column.
		return t.distinctSupportRows(rt, base, table, ci)
	}
	seen := make([]bool, d.card)
	n := 0
	for _, ref := range rt.Rows {
		if ref.Table != table || ref.Row < 0 || ref.Row >= base.NumRows() {
			continue
		}
		if c := d.codes[ref.Row]; !seen[c] {
			seen[c] = true
			n++
		}
	}
	return n
}

// distinctSupportRows is the reference distinct count: canonical string
// keys, one lookup per supporting ref. ValueAt streams segment-backed
// bases one partition at a time; an unreadable cell is skipped, which
// can only lower the count — the fail-closed direction for thresholds.
func (t *Tracer) distinctSupportRows(rt RowTrace, base *relation.Table, table string, ci int) int {
	seen := map[string]bool{}
	for _, ref := range rt.Rows {
		if ref.Table != table || ref.Row < 0 || ref.Row >= base.NumRows() {
			continue
		}
		v, err := base.ValueAt(ref.Row, ci)
		if err != nil {
			continue
		}
		seen[v.Key()] = true
	}
	return len(seen)
}

// colDict is an immutable dictionary encoding of one base-table column:
// codes[row] is a dense id of the value's Key-equivalence class. ids
// retains the value-to-code assignment so an append-only base refresh
// can extend the encoding instead of rebuilding it; readers only ever
// touch codes/card.
type colDict struct {
	codes []int32
	card  int
	ids   map[relation.ValKey]int32
}

// extend returns a new dictionary covering base's rows, reusing this
// dictionary's prefix (rows [0, from)) and encoding the appended rows
// with the retained id assignment — first-seen code order is identical
// to rebuilding from scratch. Copy-on-write: concurrent readers keep
// using the old dictionary safely.
func (d *colDict) extend(base *relation.Table, ci, from int) (*colDict, bool) {
	n := base.NumRows()
	codes := make([]int32, n)
	copy(codes, d.codes[:from])
	ids := make(map[relation.ValKey]int32, len(d.ids))
	for k, v := range d.ids {
		ids[k] = v
	}
	for ri := from; ri < n; ri++ {
		v, err := base.ValueAt(ri, ci)
		if err != nil {
			return nil, false
		}
		k := relation.MapKey(v)
		id, ok := ids[k]
		if !ok {
			id = int32(len(ids))
			ids[k] = id
		}
		codes[ri] = id
	}
	return &colDict{codes: codes, card: len(ids), ids: ids}, true
}

// colDict returns (building and caching on first use) the dictionary
// encoding of column ci of the registered base table. The cache is
// invalidated when RegisterBase replaces the table. The returned dict is
// immutable, so concurrent enforcement workers share it safely.
func (t *Tracer) colDict(table string, base *relation.Table, ci int) *colDict {
	key := strings.ToLower(table)
	t.mu.RLock()
	if cols, ok := t.dicts[key]; ok {
		if d, ok := cols[ci]; ok {
			t.mu.RUnlock()
			return d
		}
	}
	t.mu.RUnlock()
	n := base.NumRows()
	ids := make(map[relation.ValKey]int32, n)
	d := &colDict{codes: make([]int32, n), ids: ids}
	// ValueAt walks a segment-backed base sequentially, keeping one
	// decoded partition resident; an in-memory base reads its rows
	// directly. First-seen code order is identical either way.
	for ri := 0; ri < n; ri++ {
		v, err := base.ValueAt(ri, ci)
		if err != nil {
			return nil
		}
		k := relation.MapKey(v)
		id, ok := ids[k]
		if !ok {
			id = int32(len(ids))
			ids[k] = id
		}
		d.codes[ri] = id
	}
	d.card = len(ids)
	t.mu.Lock()
	if t.dicts == nil {
		t.dicts = map[string]map[int]*colDict{}
	}
	if t.dicts[key] == nil {
		t.dicts[key] = map[int]*colDict{}
	}
	t.dicts[key][ci] = d
	t.mu.Unlock()
	return d
}

// Tracer resolves lineage references against registered base tables.
// It is safe for concurrent use.
type Tracer struct {
	mu     sync.RWMutex
	bases  map[string]*relation.Table
	dicts map[string]map[int]*colDict // table -> column index -> encoding
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer {
	return &Tracer{bases: map[string]*relation.Table{}}
}

// RegisterBase registers (or replaces) a base table so its cells can be
// resolved during tracing.
func (t *Tracer) RegisterBase(tb *relation.Table) {
	t.mu.Lock()
	defer t.mu.Unlock()
	key := strings.ToLower(tb.Name)
	t.bases[key] = tb
	delete(t.dicts, key) // cached encodings no longer describe the table
}

// RefreshBase swaps in a new version of a registered base table. When
// appendFrom >= 0 and the new version is the old one with rows appended
// starting at that index, the cached column dictionaries are extended
// copy-on-write instead of dropped; any other shape of change (or an
// unregistered name) degrades to RegisterBase semantics. The table and
// its dictionaries swap under one critical section, so a reader that
// sees the new table also sees dictionaries covering all of its rows.
func (t *Tracer) RefreshBase(tb *relation.Table, appendFrom int) {
	key := strings.ToLower(tb.Name)
	t.mu.Lock()
	defer t.mu.Unlock()
	old, ok := t.bases[key]
	if !ok || appendFrom < 0 || appendFrom > tb.NumRows() || old.NumRows() != appendFrom {
		t.bases[key] = tb
		delete(t.dicts, key)
		return
	}
	t.bases[key] = tb
	for ci, d := range t.dicts[key] {
		nd, ok := d.extend(tb, ci, appendFrom)
		if !ok {
			delete(t.dicts[key], ci)
			continue
		}
		t.dicts[key][ci] = nd
	}
}

func (t *Tracer) base(name string) (*relation.Table, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	b, ok := t.bases[strings.ToLower(name)]
	return b, ok
}

// TraceCell computes the where-provenance of cell (row, col) of tab.
func (t *Tracer) TraceCell(tab *relation.Table, row int, col string) (CellTrace, error) {
	ci := tab.Schema.Index(col)
	if ci < 0 {
		return CellTrace{}, fmt.Errorf("provenance: unknown column %q", col)
	}
	if row < 0 || row >= tab.NumRows() {
		return CellTrace{}, fmt.Errorf("provenance: row %d out of range", row)
	}
	v, err := tab.ValueAt(row, ci)
	if err != nil {
		return CellTrace{}, fmt.Errorf("provenance: reading cell (%d, %s): %w", row, col, err)
	}
	trace := CellTrace{
		Column:  col,
		Row:     row,
		Value:   v,
		Origins: tab.ColumnOrigin(ci),
		Rows:    tab.RowLineage(row),
	}
	for _, ref := range trace.Rows {
		base, ok := t.base(ref.Table)
		if !ok {
			continue
		}
		for _, origin := range trace.Origins {
			if origin.Table != ref.Table {
				continue
			}
			bci := base.Schema.Index(origin.Column)
			if bci < 0 || ref.Row < 0 || ref.Row >= base.NumRows() {
				continue
			}
			bv, err := base.ValueAt(ref.Row, bci)
			if err != nil {
				return CellTrace{}, fmt.Errorf("provenance: reading %s#%d.%s: %w", ref.Table, ref.Row, origin.Column, err)
			}
			trace.Cells = append(trace.Cells, SourceCell{
				Table:  ref.Table,
				Row:    ref.Row,
				Column: origin.Column,
				Value:  bv,
			})
		}
	}
	return trace, nil
}

// TraceRow computes the row-level lineage of row i of tab.
func (t *Tracer) TraceRow(tab *relation.Table, i int) (RowTrace, error) {
	if i < 0 || i >= tab.NumRows() {
		return RowTrace{}, fmt.Errorf("provenance: row %d out of range", i)
	}
	rt := RowTrace{Row: i, Rows: tab.RowLineage(i), Support: map[string]int{}}
	for _, ref := range rt.Rows {
		rt.Support[ref.Table]++
	}
	return rt, nil
}

// BaseValue fetches a registered base cell's current value; ok reports
// whether the reference resolved.
func (t *Tracer) BaseValue(ref relation.RowRef, col string) (relation.Value, bool) {
	base, ok := t.base(ref.Table)
	if !ok {
		return relation.Null(), false
	}
	ci := base.Schema.Index(col)
	if ci < 0 || ref.Row < 0 || ref.Row >= base.NumRows() {
		return relation.Null(), false
	}
	v, err := base.ValueAt(ref.Row, ci)
	if err != nil {
		return relation.Null(), false
	}
	return v, true
}

// Step records one transformation in the ETL/reporting pipeline: an
// operation reading input relations and producing an output relation.
type Step struct {
	ID      int
	Op      string
	Inputs  []string
	Output  string
	Note    string
	RowsIn  int
	RowsOut int
}

// String renders the step as "op(inputs) -> output".
func (s Step) String() string {
	return fmt.Sprintf("#%d %s(%s) -> %s [%d->%d rows]%s",
		s.ID, s.Op, strings.Join(s.Inputs, ", "), s.Output, s.RowsIn, s.RowsOut, noteSuffix(s.Note))
}

func noteSuffix(n string) string {
	if n == "" {
		return ""
	}
	return " // " + n
}

// Graph is an append-only transformation graph. It is safe for concurrent
// use.
type Graph struct {
	mu       sync.RWMutex
	steps    []Step
	byOutput map[string][]int
}

// NewGraph returns an empty transformation graph.
func NewGraph() *Graph {
	return &Graph{byOutput: map[string][]int{}}
}

// AddStep appends a transformation step and returns its id.
func (g *Graph) AddStep(op string, inputs []string, output, note string, rowsIn, rowsOut int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	id := len(g.steps)
	s := Step{ID: id, Op: op, Inputs: append([]string(nil), inputs...), Output: output,
		Note: note, RowsIn: rowsIn, RowsOut: rowsOut}
	g.steps = append(g.steps, s)
	key := strings.ToLower(output)
	g.byOutput[key] = append(g.byOutput[key], id)
	return id
}

// Steps returns a copy of all recorded steps in order.
func (g *Graph) Steps() []Step {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return append([]Step(nil), g.steps...)
}

// Upstream returns every step that transitively feeds the named output, in
// topological (insertion) order.
func (g *Graph) Upstream(output string) []Step {
	g.mu.RLock()
	defer g.mu.RUnlock()
	seenStep := map[int]bool{}
	seenRel := map[string]bool{}
	var visit func(rel string)
	visit = func(rel string) {
		rel = strings.ToLower(rel)
		if seenRel[rel] {
			return
		}
		seenRel[rel] = true
		for _, id := range g.byOutput[rel] {
			if seenStep[id] {
				continue
			}
			seenStep[id] = true
			for _, in := range g.steps[id].Inputs {
				visit(in)
			}
		}
	}
	visit(output)
	ids := make([]int, 0, len(seenStep))
	for id := range seenStep {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]Step, len(ids))
	for i, id := range ids {
		out[i] = g.steps[id]
	}
	return out
}

// Explain renders a human-readable derivation of the named output — the
// textual analogue of the elicitation tool's provenance display (§5).
func (g *Graph) Explain(output string) string {
	steps := g.Upstream(output)
	if len(steps) == 0 {
		return fmt.Sprintf("%s: base relation (no recorded transformations)", output)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "derivation of %s:\n", output)
	for _, s := range steps {
		b.WriteString("  " + s.String() + "\n")
	}
	return b.String()
}

// SourceTables returns the set of relations that appear only as inputs
// (never as outputs) upstream of the named output — i.e. the original data
// sources feeding it.
func (g *Graph) SourceTables(output string) []string {
	steps := g.Upstream(output)
	produced := map[string]bool{}
	for _, s := range steps {
		produced[strings.ToLower(s.Output)] = true
	}
	srcSet := map[string]bool{}
	for _, s := range steps {
		for _, in := range s.Inputs {
			if !produced[strings.ToLower(in)] {
				srcSet[strings.ToLower(in)] = true
			}
		}
	}
	out := make([]string, 0, len(srcSet))
	for s := range srcSet {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
