package core

import (
	"fmt"

	"plabi/internal/etl"
	"plabi/internal/relation"
	"plabi/internal/report"
	"plabi/internal/workload"
)

// ScenarioPLAs is the PLA document of the standard healthcare scenario
// (Fig. 1): one agreement per source owner plus report-level agreements,
// exercising every annotation kind of §5.
const ScenarioPLAs = `
# Hospital: prescriptions are the most sensitive source.
pla "hospital-prescriptions" {
    owner "hospital"; level source; scope "prescriptions";
    purpose "reimbursement", "quality";
    allow attribute drug;
    allow attribute disease to roles auditor;
    allow attribute date;
    allow attribute patient to roles analyst when disease <> 'HIV';
    allow attribute doctor to roles auditor;
    aggregate min 3 by patient;
    forbid join with familydoctor;
    allow join with drugcost;
    allow join with residents;
    forbid integration for municipality;
    allow integration for familydoctors;
    retain 730 days;
}

# Health agency: drug costs are public within the consortium.
pla "agency-drugcost" {
    owner "healthagency"; level source; scope "drugcost";
    allow attribute *;
}

# Municipality: resident demographics may be used, but only k-anonymized.
pla "municipality-residents" {
    owner "municipality"; level source; scope "residents";
    allow attribute age; allow attribute zip; allow attribute municipality;
    allow attribute patient to roles analyst;
    release kanonymity 5 quasi age, zip;
    allow join with prescriptions;
    allow join with drugcost;
    allow integration for familydoctors;
}

# Family doctors: assignments may be cleaned with others' data but the
# doctor-patient link must not reach analysts.
pla "familydoctors-assignments" {
    owner "familydoctors"; level source; scope "familydoctor";
    allow attribute patient to roles auditor;
    allow attribute doctor to roles auditor;
    forbid join with prescriptions;
}

# Report-level agreement for the flagship drug-consumption report.
pla "report-drug-consumption" {
    owner "hospital"; level report; scope "drug-consumption";
    allow attribute drug;
    aggregate min 3 by patient;
}
`

// BuildHealthcareEngine assembles the full Fig. 1 deployment over the
// synthetic workload: sources registered, PLAs attached, guarded ETL run
// (extraction, cleansing, entity resolution, permitted joins), and the
// standard report portfolio defined.
func BuildHealthcareEngine(cfg workload.Config) (*Engine, *workload.Dataset, error) {
	return BuildHealthcareEngineWith(cfg, nil)
}

// BuildHealthcareEngineWith is BuildHealthcareEngine with a hook that
// configures the fresh engine (fault injectors, retry policies, metrics)
// before the scenario ETL runs, so injected faults and observability
// cover the build itself.
func BuildHealthcareEngineWith(cfg workload.Config, configure func(*Engine)) (*Engine, *workload.Dataset, error) {
	ds, err := workload.Generate(cfg)
	if err != nil {
		return nil, nil, err
	}
	e := New()
	if configure != nil {
		configure(e)
	}

	e.AddSource(etl.NewSource("hospital", "hospital", ds.Prescriptions))
	e.AddSource(etl.NewSource("familydoctors", "familydoctors", ds.FamilyDoctor))
	e.AddSource(etl.NewSource("healthagency", "healthagency", ds.DrugCost))
	e.AddSource(etl.NewSource("laboratory", "laboratory", ds.LabResults))
	e.AddSource(etl.NewSource("municipality", "municipality", ds.Residents))

	if err := e.AddPLAs(ScenarioPLAs); err != nil {
		return nil, nil, err
	}

	p := HealthcarePipeline(e)
	if _, err := e.RunETL(p, false); err != nil {
		return nil, nil, fmt.Errorf("core: scenario ETL: %w", err)
	}

	for _, d := range StandardReports() {
		if err := e.DefineReport(d); err != nil {
			return nil, nil, err
		}
	}
	if _, err := e.DeriveMetaReports(); err != nil {
		return nil, nil, err
	}
	return e, ds, nil
}

// HealthcarePipeline builds the scenario's guarded ETL pipeline: extract
// all sources, cleanse names, resolve family-doctor patients against the
// municipality registry (permitted integration), and join prescriptions
// with costs and demographics (permitted joins) into the wide staging
// table "rx_wide" the warehouse reports run on.
func HealthcarePipeline(e *Engine) *etl.Pipeline {
	hosp, _ := e.Source("hospital")
	fam, _ := e.Source("familydoctors")
	agency, _ := e.Source("healthagency")
	muni, _ := e.Source("municipality")
	return &etl.Pipeline{Name: "healthcare", Steps: []etl.Step{
		etl.NewExtract("ext-prescriptions", hosp, "prescriptions", ""),
		etl.NewExtract("ext-familydoctor", fam, "familydoctor", ""),
		etl.NewExtract("ext-drugcost", agency, "drugcost", ""),
		etl.NewExtract("ext-residents", muni, "residents", ""),
		etl.NewCleanse("cleanse-fd", "familydoctor", "familydoctor_clean", "patient"),
		etl.NewEntityResolution("resolve-fd", "familydoctor_clean", "patient",
			"residents", "patient", "familydoctors", 0.88, "familydoctor_resolved"),
		etl.NewJoin("join-costs", "prescriptions", "drugcost",
			relation.Eq(relation.ColRefExpr("l.drug"), relation.ColRefExpr("r.drug")),
			relation.InnerJoin, "rx_cost"),
		etl.NewJoin("join-residents", "rx_cost", "residents",
			relation.Eq(relation.ColRefExpr("l.patient"), relation.ColRefExpr("r.patient")),
			relation.InnerJoin, "rx_wide"),
	}}
}

// StandardReports is the scenario's initial report portfolio.
func StandardReports() []*report.Definition {
	return []*report.Definition{
		{ID: "drug-consumption", Title: "Drug consumption",
			Query:   "SELECT drug, COUNT(*) AS consumption FROM rx_wide GROUP BY drug ORDER BY drug",
			Roles:   []string{"analyst"},
			Purpose: "quality"},
		{ID: "drug-spend", Title: "Drug spend",
			Query:   "SELECT drug, SUM(cost) AS spend FROM rx_wide GROUP BY drug ORDER BY spend DESC",
			Roles:   []string{"analyst"},
			Purpose: "reimbursement"},
		{ID: "disease-by-year", Title: "Disease incidence by year",
			Query:   "SELECT disease, YEAR(date) AS yr, COUNT(*) AS n FROM rx_wide GROUP BY disease, YEAR(date) ORDER BY disease, yr",
			Roles:   []string{"auditor"},
			Purpose: "quality"},
		{ID: "age-profile", Title: "Age profile per drug",
			Query:   "SELECT drug, AVG(age) AS avg_age, COUNT(*) AS n FROM rx_wide GROUP BY drug ORDER BY drug",
			Roles:   []string{"analyst"},
			Purpose: "quality"},
		{ID: "patient-activity", Title: "Per-patient prescription list",
			Query:   "SELECT patient, drug, date FROM rx_wide ORDER BY patient LIMIT 50",
			Roles:   []string{"analyst"},
			Purpose: "reimbursement"},
	}
}
