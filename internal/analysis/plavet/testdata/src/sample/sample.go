// Package sample exercises every plavet rule: the `want` comments below
// are matched against the checker's findings by plavet_test.go. The
// directory lives under testdata so the go tool never builds it.
package sample

import (
	"context"

	"plabi/internal/audit"
	"plabi/internal/enforce"
)

func bad(l *audit.Log) {
	l.Append(audit.Event{Kind: "render"})                                 // want PV001
	l.Decision("ana", "rep", enforce.Decision{})                          // want PV001
	l.DecisionTraced("ana", "rep", "t1", enforce.Decision{})              // want PV001
	l.AppendChecked(context.Background(), audit.Event{Kind: "render"})    // want PV002
	go l.AppendChecked(context.Background(), audit.Event{Kind: "render"}) // want PV002
	defer l.DecisionTracedChecked(context.Background(), "ana", "rep", "t1", enforce.Decision{}) // want PV002
}

func good(l *audit.Log) error {
	_, _ = l.AppendChecked(context.Background(), audit.Event{Kind: "render"})
	if _, err := l.AppendChecked(context.Background(), audit.Event{Kind: "render"}); err != nil {
		return err
	}
	seq, err := l.DecisionTracedChecked(context.Background(), "ana", "rep", "t1", enforce.Decision{})
	_ = seq
	return err
}

// notAudit proves matching is type-based: an unrelated Append method on
// another type must never trip PV001.
type notAudit struct{}

func (notAudit) Append(s string) int { return len(s) }

func alsoGood() {
	notAudit{}.Append("x")
}
