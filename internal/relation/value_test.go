package relation

import (
	"testing"
	"testing/quick"
	"time"
)

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{Str("alice"), "alice"},
		{Int(42), "42"},
		{Float(2.5), "2.5"},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{DateYMD(2007, time.February, 12), "2007-02-12"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.v.Kind, got, c.want)
		}
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
		ok   bool
	}{
		{Int(1), Int(2), -1, true},
		{Int(2), Int(2), 0, true},
		{Int(3), Int(2), 1, true},
		{Int(2), Float(2.0), 0, true},
		{Float(1.5), Int(2), -1, true},
		{Str("a"), Str("b"), -1, true},
		{Bool(false), Bool(true), -1, true},
		{DateYMD(2007, 1, 1), DateYMD(2008, 1, 1), -1, true},
		{Null(), Int(1), 0, false},
		{Int(1), Null(), 0, false},
		{Str("a"), Int(1), 0, false},
	}
	for _, c := range cases {
		got, ok := c.a.Compare(c.b)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("Compare(%v, %v) = %d,%v want %d,%v", c.a, c.b, got, ok, c.want, c.ok)
		}
	}
}

func TestNullEqualsNothing(t *testing.T) {
	if Null().Equal(Null()) {
		t.Error("NULL must not equal NULL")
	}
	if Null().Equal(Int(0)) || Int(0).Equal(Null()) {
		t.Error("NULL must not equal any value")
	}
}

func TestValueKeyDistinguishes(t *testing.T) {
	vals := []Value{
		Null(), Str("1"), Int(1), Float(1.5), Bool(true), Bool(false),
		Str(""), Str("NULL"), DateYMD(2020, 5, 1), Str("2020-05-01"),
	}
	seen := map[string]Value{}
	for _, v := range vals {
		k := v.Key()
		if prev, ok := seen[k]; ok {
			t.Errorf("key collision: %v (%v) and %v (%v) share key %q", prev, prev.Kind, v, v.Kind, k)
		}
		seen[k] = v
	}
	// But INT 2 and FLOAT 2.0 must intentionally share a key.
	if Int(2).Key() != Float(2.0).Key() {
		t.Error("Int(2) and Float(2.0) should group together")
	}
}

func TestValueKeyEqualConsistent(t *testing.T) {
	// Property: equal values have equal keys.
	f := func(a, b int64) bool {
		va, vb := Int(a), Int(b)
		if va.Equal(vb) {
			return va.Key() == vb.Key()
		}
		return va.Key() != vb.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareAntisymmetric(t *testing.T) {
	f := func(a, b float64) bool {
		va, vb := Float(a), Float(b)
		c1, ok1 := va.Compare(vb)
		c2, ok2 := vb.Compare(va)
		if ok1 != ok2 {
			return false
		}
		if !ok1 {
			return true
		}
		return c1 == -c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCoerce(t *testing.T) {
	cases := []struct {
		in   Value
		to   Type
		want Value
		ok   bool
	}{
		{Str("42"), TInt, Int(42), true},
		{Str(" 42 "), TInt, Int(42), true},
		{Str("x"), TInt, Null(), false},
		{Int(42), TString, Str("42"), true},
		{Int(3), TFloat, Float(3), true},
		{Float(3.7), TInt, Int(3), true},
		{Str("yes"), TBool, Bool(true), true},
		{Str("no"), TBool, Bool(false), true},
		{Str("2020-05-01"), TDate, DateYMD(2020, 5, 1), true},
		{Str("01/05/2020"), TDate, Null(), false},
		{Null(), TInt, Null(), true},
	}
	for _, c := range cases {
		got, ok := c.in.Coerce(c.to)
		if ok != c.ok {
			t.Errorf("Coerce(%v, %v) ok = %v, want %v", c.in, c.to, ok, c.ok)
			continue
		}
		if ok && got.Kind != c.want.Kind {
			t.Errorf("Coerce(%v, %v) kind = %v, want %v", c.in, c.to, got.Kind, c.want.Kind)
		}
		if ok && !got.IsNull() && got.String() != c.want.String() {
			t.Errorf("Coerce(%v, %v) = %v, want %v", c.in, c.to, got, c.want)
		}
	}
}

func TestParseDate(t *testing.T) {
	v, err := ParseDate("2007-02-12")
	if err != nil {
		t.Fatal(err)
	}
	if v.T.Year() != 2007 || v.T.Month() != time.February || v.T.Day() != 12 {
		t.Errorf("ParseDate = %v", v)
	}
	if _, err := ParseDate("12/02/2007"); err == nil {
		t.Error("expected error for non-ISO date")
	}
}

func TestDateTruncation(t *testing.T) {
	v := Date(time.Date(2020, 5, 1, 13, 45, 0, 0, time.UTC))
	if !v.T.Equal(time.Date(2020, 5, 1, 0, 0, 0, 0, time.UTC)) {
		t.Errorf("Date not truncated: %v", v.T)
	}
}

func TestTypeString(t *testing.T) {
	for ty, want := range map[Type]string{
		TNull: "NULL", TString: "STRING", TInt: "INT",
		TFloat: "FLOAT", TBool: "BOOL", TDate: "DATE",
	} {
		if ty.String() != want {
			t.Errorf("Type(%d).String() = %q, want %q", int(ty), ty.String(), want)
		}
	}
}
