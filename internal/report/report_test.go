package report

import (
	"strings"
	"testing"

	"plabi/internal/sql"
	"plabi/internal/workload"
)

func catalog() *sql.Catalog {
	c := sql.NewCatalog()
	c.Register(workload.PrescriptionsFixture())
	c.Register(workload.DrugCostFixture())
	return c
}

func drugConsumption() *Definition {
	return &Definition{
		ID:      "drug-consumption",
		Title:   "Drug consumption",
		Query:   "SELECT drug, COUNT(*) AS consumption FROM prescriptions GROUP BY drug ORDER BY drug",
		Roles:   []string{"analyst"},
		Purpose: "quality",
	}
}

func TestCreateAndRender(t *testing.T) {
	r := NewRegistry()
	if err := r.Create(drugConsumption()); err != nil {
		t.Fatal(err)
	}
	d, ok := r.Get("drug-consumption")
	if !ok || d.Version != 1 {
		t.Fatalf("get = %v %v", d, ok)
	}
	res, err := d.Render(catalog())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 4 || res.Name != "drug-consumption" {
		t.Errorf("res = %v", res.Rows)
	}
	out := FormatTable(d.Title, res)
	if !strings.Contains(out, "Drug consumption") || !strings.Contains(out, "DR") {
		t.Errorf("formatted = %s", out)
	}
}

func TestCreateValidation(t *testing.T) {
	r := NewRegistry()
	if err := r.Create(&Definition{ID: "", Query: "SELECT 1 FROM t"}); err == nil {
		t.Error("empty id must fail")
	}
	if err := r.Create(&Definition{ID: "x", Query: "NOT SQL"}); err == nil {
		t.Error("bad query must fail")
	}
	if err := r.Create(drugConsumption()); err != nil {
		t.Fatal(err)
	}
	if err := r.Create(drugConsumption()); err == nil {
		t.Error("duplicate must fail")
	}
}

func TestAddRemoveColumn(t *testing.T) {
	r := NewRegistry()
	if err := r.Create(drugConsumption()); err != nil {
		t.Fatal(err)
	}
	if err := r.AddColumn("drug-consumption", "COUNT(DISTINCT patient)", "patients"); err != nil {
		t.Fatal(err)
	}
	d, _ := r.Get("drug-consumption")
	if d.Version != 2 || !strings.Contains(d.Query, "patients") {
		t.Errorf("after add: v%d %q", d.Version, d.Query)
	}
	res, err := d.Render(catalog())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schema.HasColumn("patients") {
		t.Errorf("schema = %s", res.Schema)
	}
	if err := r.RemoveColumn("drug-consumption", "patients"); err != nil {
		t.Fatal(err)
	}
	d, _ = r.Get("drug-consumption")
	if d.Version != 3 || strings.Contains(d.Query, "patients") {
		t.Errorf("after remove: %q", d.Query)
	}
	if err := r.RemoveColumn("drug-consumption", "ghost"); err == nil {
		t.Error("removing unknown column must fail")
	}
}

func TestRemoveLastColumnFails(t *testing.T) {
	r := NewRegistry()
	if err := r.Create(&Definition{ID: "one", Query: "SELECT drug FROM prescriptions"}); err != nil {
		t.Fatal(err)
	}
	if err := r.RemoveColumn("one", "drug"); err == nil {
		t.Error("must not remove last column")
	}
}

func TestRemoveColumnDropsOrderBy(t *testing.T) {
	r := NewRegistry()
	if err := r.Create(&Definition{ID: "x",
		Query: "SELECT drug, disease FROM prescriptions ORDER BY disease"}); err != nil {
		t.Fatal(err)
	}
	if err := r.RemoveColumn("x", "disease"); err != nil {
		t.Fatal(err)
	}
	d, _ := r.Get("x")
	if strings.Contains(strings.ToUpper(d.Query), "ORDER BY") {
		t.Errorf("ORDER BY not dropped: %q", d.Query)
	}
	if _, err := d.Render(catalog()); err != nil {
		t.Errorf("mutated query does not run: %v", err)
	}
}

func TestSetFilter(t *testing.T) {
	r := NewRegistry()
	if err := r.Create(drugConsumption()); err != nil {
		t.Fatal(err)
	}
	if err := r.SetFilter("drug-consumption", "disease = 'asthma'"); err != nil {
		t.Fatal(err)
	}
	d, _ := r.Get("drug-consumption")
	res, err := d.Render(catalog())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 || res.Get(0, "drug").S != "DR" {
		t.Errorf("filtered = %v", res.Rows)
	}
	if err := r.SetFilter("drug-consumption", ""); err != nil {
		t.Fatal(err)
	}
	d, _ = r.Get("drug-consumption")
	if strings.Contains(strings.ToUpper(d.Query), "WHERE") {
		t.Errorf("filter not cleared: %q", d.Query)
	}
	if err := r.SetFilter("drug-consumption", "((("); err == nil {
		t.Error("bad filter must fail")
	}
}

func TestSetGrouping(t *testing.T) {
	r := NewRegistry()
	if err := r.Create(&Definition{ID: "g",
		Query: "SELECT disease, COUNT(*) AS n FROM prescriptions GROUP BY disease"}); err != nil {
		t.Fatal(err)
	}
	// Regroup by drug: must also adjust the select list first.
	if err := r.RemoveColumn("g", "disease"); err != nil {
		t.Fatal(err)
	}
	if err := r.AddColumn("g", "drug", ""); err != nil {
		t.Fatal(err)
	}
	if err := r.SetGrouping("g", []string{"drug"}); err != nil {
		t.Fatal(err)
	}
	d, _ := r.Get("g")
	res, err := d.Render(catalog())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 4 {
		t.Errorf("groups = %d (%q)", res.NumRows(), d.Query)
	}
}

func TestEventsLog(t *testing.T) {
	r := NewRegistry()
	if err := r.Create(drugConsumption()); err != nil {
		t.Fatal(err)
	}
	if err := r.AddColumn("drug-consumption", "COUNT(DISTINCT patient)", "p"); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete("drug-consumption"); err != nil {
		t.Fatal(err)
	}
	ev := r.Events()
	if len(ev) != 3 {
		t.Fatalf("events = %d", len(ev))
	}
	kinds := []EventKind{EvCreate, EvAddColumn, EvDelete}
	for i, k := range kinds {
		if ev[i].Kind != k || ev[i].Seq != i {
			t.Errorf("event %d = %v", i, ev[i])
		}
	}
	if EvChangeFilter.String() != "change-filter" {
		t.Errorf("kind name = %s", EvChangeFilter)
	}
}

func TestDeleteUnknown(t *testing.T) {
	r := NewRegistry()
	if err := r.Delete("nope"); err == nil {
		t.Error("expected error")
	}
}

func TestAll(t *testing.T) {
	r := NewRegistry()
	for _, id := range []string{"b", "a", "c"} {
		if err := r.Create(&Definition{ID: id, Query: "SELECT drug FROM prescriptions"}); err != nil {
			t.Fatal(err)
		}
	}
	all := r.All()
	if len(all) != 3 || all[0].ID != "a" || all[2].ID != "c" {
		t.Errorf("all = %v", all)
	}
}

func TestMutationKeepsQueriesRunnable(t *testing.T) {
	// Every mutation must leave a parseable, executable query behind.
	r := NewRegistry()
	if err := r.Create(&Definition{ID: "m",
		Query: "SELECT drug, COUNT(*) AS n FROM prescriptions WHERE disease <> 'HIV' GROUP BY drug HAVING n >= 1 ORDER BY n DESC LIMIT 10"}); err != nil {
		t.Fatal(err)
	}
	steps := []func() error{
		func() error { return r.AddColumn("m", "MIN(date)", "first_seen") },
		func() error { return r.SetFilter("m", "disease = 'asthma'") },
		func() error { return r.RemoveColumn("m", "first_seen") },
		func() error { return r.SetGrouping("m", []string{"drug"}) },
	}
	for i, step := range steps {
		if err := step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		d, _ := r.Get("m")
		if _, err := d.Render(catalog()); err != nil {
			t.Fatalf("step %d left broken query %q: %v", i, d.Query, err)
		}
	}
	d, _ := r.Get("m")
	if d.Version != 5 {
		t.Errorf("version = %d", d.Version)
	}
}
