package diff

import (
	"io"

	"plabi/internal/lint"
)

// WriteText renders impacts one per line through the lint text renderer.
func WriteText(w io.Writer, imps []Impact) error {
	return lint.WriteText(w, Findings(imps))
}

// WriteJSON renders impacts as an indented JSON array through the lint
// JSON renderer ("[]" when clean).
func WriteJSON(w io.Writer, imps []Impact) error {
	return lint.WriteJSON(w, Findings(imps))
}

// Filter returns the impacts at or above the given severity.
func Filter(imps []Impact, min lint.Severity) []Impact {
	var out []Impact
	for _, im := range imps {
		if im.Severity >= min {
			out = append(out, im)
		}
	}
	return out
}
