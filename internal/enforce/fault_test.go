package enforce

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"plabi/internal/fault"
	"plabi/internal/provenance"
	"plabi/internal/relation"
	"plabi/internal/report"
	"plabi/internal/sql"
)

// bulkEnforcer builds an enforcer over a synthetic table large enough to
// take the chunked worker-pool path (n >= minParallelRows with workers > 1).
func bulkEnforcer(t *testing.T, rows int) (*ReportEnforcer, *report.Definition) {
	t.Helper()
	bulk := relation.NewBase("bulk", relation.NewSchema(
		relation.Col("patient", relation.TString),
		relation.Col("drug", relation.TString),
	))
	for i := 0; i < rows; i++ {
		bulk.AppendVals(
			relation.Str(fmt.Sprintf("patient-%d", i)),
			relation.Str(fmt.Sprintf("D%d", i%7)),
		)
	}
	cat := sql.NewCatalog()
	tr := provenance.NewTracer()
	cat.Register(bulk)
	tr.RegisterBase(bulk)
	reg := registryWith(t, `
pla "r" { owner "hospital"; level report; scope "bulk-report";
    deny attribute patient to roles analyst;
}
pla "s" { owner "hospital"; level source; scope "bulk"; allow attribute *; }
`)
	e := NewReportEnforcer(reg, cat, tr)
	e.SetWorkers(4)
	def := &report.Definition{ID: "bulk-report",
		Query: "SELECT patient, drug FROM bulk"}
	return e, def
}

func consumer() report.Consumer {
	return report.Consumer{Name: "ana", Role: "analyst", Purpose: "quality"}
}

func TestRenderWorkerPanicIsolated(t *testing.T) {
	defer fault.CheckLeaks(t)()
	e, def := bulkEnforcer(t, 8*minParallelRows)
	baseline, err := e.Render(def, consumer())
	if err != nil {
		t.Fatal(err)
	}
	fi := fault.NewInjector(4)
	fi.Enable(fault.SiteRenderWorker, fault.SiteConfig{PanicRate: 1, Times: 1})
	e.SetFaults(fi)

	_, err = e.Render(def, consumer())
	var ie *fault.InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("want InternalError from panicking worker, got %v", err)
	}
	if ie.Site != fault.SiteRenderWorker || len(ie.Stack) == 0 {
		t.Fatalf("InternalError = %+v", ie)
	}

	// The Times cap is spent; the next render must succeed and be
	// byte-identical to the no-fault baseline.
	again, err := e.Render(def, consumer())
	if err != nil {
		t.Fatalf("re-render after isolated panic: %v", err)
	}
	if again.Table.String() != baseline.Table.String() {
		t.Fatal("post-panic render diverges from baseline")
	}
	if again.MaskedCells != baseline.MaskedCells {
		t.Fatalf("masked = %d, want %d", again.MaskedCells, baseline.MaskedCells)
	}
}

func TestRenderWorkerInjectedErrorFailsRender(t *testing.T) {
	defer fault.CheckLeaks(t)()
	e, def := bulkEnforcer(t, 8*minParallelRows)
	fi := fault.NewInjector(4)
	fi.Enable(fault.SiteRenderWorker, fault.SiteConfig{ErrorRate: 1, Transient: true, Times: 1})
	e.SetFaults(fi)
	if _, err := e.Render(def, consumer()); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("want injected worker error, got %v", err)
	}
	if _, err := e.Render(def, consumer()); err != nil {
		t.Fatalf("render after fault budget spent: %v", err)
	}
}

// renderTrippingCtx reports Canceled after n Err calls, landing the
// cancellation inside a worker's row loop deterministically.
type renderTrippingCtx struct {
	context.Context
	mu   sync.Mutex
	left int
}

func (c *renderTrippingCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.left <= 0 {
		return context.Canceled
	}
	c.left--
	return nil
}

func (c *renderTrippingCtx) Deadline() (time.Time, bool) { return time.Time{}, false }

func TestRenderCancelledMidChunk(t *testing.T) {
	defer fault.CheckLeaks(t)()
	e, def := bulkEnforcer(t, 8*minParallelRows)
	// Budget: the RenderContext entry check plus the first few chunk-top
	// checks pass; with 2048 rows and in-chunk polling every
	// cancelCheckRows rows the trip can only land inside a row loop.
	ctx := &renderTrippingCtx{Context: context.Background(), left: 4}
	if _, err := e.RenderContext(ctx, def, consumer()); !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled from inside a chunk, got %v", err)
	}
}
