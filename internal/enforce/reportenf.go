package enforce

import (
	"fmt"
	"strings"

	"plabi/internal/policy"
	"plabi/internal/provenance"
	"plabi/internal/relation"
	"plabi/internal/report"
	"plabi/internal/sql"
)

// ReportEnforcer enforces PLAs on delivered reports (§5, Fig. 4): static
// compliance checking of report definitions, and runtime enforcement on
// rendered results — attribute access per role/purpose, intensional
// conditions resolved through provenance against the supporting source
// rows (the paper's HIV example), aggregation thresholds counted on
// lineage support, and row filters.
type ReportEnforcer struct {
	Registry *policy.Registry
	Catalog  *sql.Catalog
	Tracer   *provenance.Tracer
	// Levels are the PLA levels consulted; defaults to source, warehouse
	// and report.
	Levels []policy.Level
	// ExtraScopes maps a report id to additional PLA scopes that govern
	// it (e.g. the meta-reports it derives from).
	ExtraScopes map[string][]string
}

// NewReportEnforcer builds an enforcer consulting every level.
func NewReportEnforcer(reg *policy.Registry, cat *sql.Catalog, tr *provenance.Tracer) *ReportEnforcer {
	return &ReportEnforcer{
		Registry: reg, Catalog: cat, Tracer: tr,
		Levels: []policy.Level{policy.LevelSource, policy.LevelWarehouse,
			policy.LevelMetaReport, policy.LevelReport},
		ExtraScopes: map[string][]string{},
	}
}

// Enforced is a rendered report after enforcement.
type Enforced struct {
	Def   *report.Definition
	Table *relation.Table
	// Decisions lists every non-permit decision taken.
	Decisions []Decision
	// MaskedCells / SuppressedRows count the runtime interventions.
	MaskedCells    int
	SuppressedRows int
}

// CompositeFor assembles the PLAs governing a report: source-level PLAs of
// every base table it reads, warehouse-level PLAs of those tables,
// meta-report PLAs of its registered scopes, and report-level PLAs of the
// report id itself.
func (e *ReportEnforcer) CompositeFor(def *report.Definition) (*policy.Composite, *sql.Profile, error) {
	prof, err := sql.ProfileSQL(e.Catalog, def.Query)
	if err != nil {
		return nil, nil, fmt.Errorf("enforce: profile %s: %w", def.ID, err)
	}
	var plas []*policy.PLA
	seen := map[string]bool{}
	add := func(comp *policy.Composite) {
		for _, p := range comp.PLAs {
			if !seen[p.ID] {
				seen[p.ID] = true
				plas = append(plas, p)
			}
		}
	}
	for _, lvl := range e.levels() {
		switch lvl {
		case policy.LevelSource:
			add(e.Registry.ForScopes(lvl, prof.BaseTables))
		case policy.LevelWarehouse:
			// Warehouse-level PLAs may be scoped either to the base
			// tables or to the warehouse relations the query names in
			// its FROM clause (e.g. the wide staging table).
			add(e.Registry.ForScopes(lvl, prof.BaseTables))
			if sel, perr := def.Parse(); perr == nil {
				add(e.Registry.ForScopes(lvl, fromNames(sel)))
			}
		case policy.LevelMetaReport:
			add(e.Registry.ForScopes(lvl, e.ExtraScopes[def.ID]))
		case policy.LevelReport:
			add(e.Registry.ForScope(lvl, def.ID))
		}
	}
	return policy.Compose(plas...), prof, nil
}

func (e *ReportEnforcer) levels() []policy.Level {
	if len(e.Levels) > 0 {
		return e.Levels
	}
	return policy.Levels()
}

// StaticCheck verifies a report definition against the PLAs without
// executing it: forbidden joins, denied attributes, and missing
// aggregation for threshold-protected data are reported. An empty result
// means the definition is statically compliant — the paper's "testable
// before put in operation" property (§6).
func (e *ReportEnforcer) StaticCheck(def *report.Definition, role, purpose string) ([]Decision, error) {
	comp, prof, err := e.CompositeFor(def)
	if err != nil {
		return nil, err
	}
	var out []Decision

	// Join permissions.
	for _, jp := range prof.JoinPairs {
		a := e.perTableComposite(jp.A)
		b := e.perTableComposite(jp.B)
		if ok, reason := a.JoinAllowed(jp.B); !ok {
			out = append(out, Decision{Outcome: Block, Rule: "join-permission",
				Subject: jp.A + " JOIN " + jp.B, Detail: reason})
		} else if ok, reason := b.JoinAllowed(jp.A); !ok {
			out = append(out, Decision{Outcome: Block, Rule: "join-permission",
				Subject: jp.B + " JOIN " + jp.A, Detail: reason})
		}
	}

	// Attribute access on non-aggregated output columns.
	sel, err := def.Parse()
	if err != nil {
		return nil, err
	}
	aggCols := aggregateColumns(sel)
	fromRels := fromNames(sel)
	for name, origins := range prof.OutputNames {
		if aggCols[name] {
			continue
		}
		refs := e.columnRefs(fromRels, name, origins)
		if d, _ := e.decideColumn(comp, refs, name, role, purpose); d != nil {
			out = append(out, *d)
		}
	}

	// Aggregation thresholds: a non-aggregated report exposing data under
	// a threshold rule violates it statically.
	if !prof.Aggregated {
		for _, rule := range comp.AggregationRules() {
			subject := rule.By
			if subject == "" {
				subject = "rows"
			}
			out = append(out, Decision{Outcome: Block, Rule: "aggregation-threshold",
				Subject: subject,
				Detail:  fmt.Sprintf("report is not aggregated but a min-%d threshold applies", rule.MinCount)})
		}
	}
	return out, nil
}

func (e *ReportEnforcer) perTableComposite(table string) *policy.Composite {
	var plas []*policy.PLA
	for _, lvl := range []policy.Level{policy.LevelSource, policy.LevelWarehouse} {
		plas = append(plas, e.Registry.ForScope(lvl, table).PLAs...)
	}
	return policy.Compose(plas...)
}

// attrRefs builds the scoped attribute references for one output column:
// the output name (report vocabulary) plus every origin (base table +
// column), so source-level PLAs only speak about their own columns.
func attrRefs(name string, origins relation.ColRefSet) []policy.AttrRef {
	refs := []policy.AttrRef{{Name: strings.ToLower(name)}}
	for _, o := range origins {
		refs = append(refs, policy.AttrRef{Name: o.Column, Table: o.Table})
	}
	return refs
}

// columnRefs extends attrRefs with warehouse-relation references: for
// every relation the query names in FROM that carries a candidate column,
// a (column, relation) ref is added so warehouse-level PLAs scoped to
// e.g. the wide staging table can govern it.
func (e *ReportEnforcer) columnRefs(fromRels []string, name string, origins relation.ColRefSet) []policy.AttrRef {
	refs := attrRefs(name, origins)
	candidates := map[string]bool{strings.ToLower(name): true}
	for _, o := range origins {
		candidates[o.Column] = true
	}
	for _, rel := range fromRels {
		t, ok := e.Catalog.Table(rel)
		if !ok {
			continue
		}
		for c := range candidates {
			if t.Schema.HasColumn(c) {
				refs = append(refs, policy.AttrRef{Name: c, Table: rel})
			}
		}
	}
	return refs
}

// decideColumn returns the masking decision for one output column (nil
// when access is permitted) and the intensional conditions attached to
// the matching allow rules.
func (e *ReportEnforcer) decideColumn(comp *policy.Composite, refs []policy.AttrRef, name, role, purpose string) (*Decision, []relation.Expr) {
	d := comp.DecideAttributeRefs(refs, role, purpose)
	if d.Effect == policy.Deny {
		if len(d.Matched) > 0 {
			return &Decision{Outcome: Mask, Rule: "access-deny", Subject: name,
				Detail: fmt.Sprintf("attribute %q denied to role %q", name, role)}, nil
		}
		return &Decision{Outcome: Mask, Rule: "access-default-deny", Subject: name,
			Detail: fmt.Sprintf("no PLA allows attribute %q for role %q (closed world)", name, role)}, nil
	}
	seen := map[string]bool{}
	var conds []relation.Expr
	for _, c := range d.Conditions {
		if key := c.String(); !seen[key] {
			seen[key] = true
			conds = append(conds, c)
		}
	}
	return nil, conds
}

// Render executes the report and enforces the PLAs on the result for the
// given consumer.
func (e *ReportEnforcer) Render(def *report.Definition, consumer report.Consumer) (*Enforced, error) {
	comp, prof, err := e.CompositeFor(def)
	if err != nil {
		return nil, err
	}
	sel, err := def.Parse()
	if err != nil {
		return nil, err
	}
	raw, err := def.Render(e.Catalog)
	if err != nil {
		return nil, err
	}
	enf := &Enforced{Def: def}

	// Static blocks abort rendering entirely.
	static, err := e.StaticCheck(def, consumer.Role, consumer.Purpose)
	if err != nil {
		return nil, err
	}
	for _, d := range static {
		if d.Outcome == Block {
			enf.Decisions = append(enf.Decisions, d)
		}
	}
	if len(enf.Decisions) > 0 {
		empty := raw.Clone()
		empty.Rows = nil
		empty.Lineage = nil
		enf.Table = empty
		return enf, nil
	}

	aggCols := aggregateColumns(sel)
	out := raw.Clone()
	out.Name = def.ID

	// Column-level access decisions and per-column conditions.
	type colPlan struct {
		masked     bool
		conditions []relation.Expr
	}
	plans := make([]colPlan, out.Schema.Len())
	fromRels := fromNames(sel)
	for ci, col := range out.Schema.Columns {
		name := strings.ToLower(col.Name)
		origins := raw.ColumnOrigin(ci)
		if aggCols[name] {
			continue // aggregate columns governed by thresholds
		}
		refs := e.columnRefs(fromRels, name, origins)
		d, conds := e.decideColumn(comp, refs, name, consumer.Role, consumer.Purpose)
		if d != nil {
			plans[ci].masked = true
			enf.Decisions = append(enf.Decisions, *d)
			continue
		}
		plans[ci].conditions = conds
	}

	// Aggregation thresholds per output row (counted on lineage support).
	minBy := map[string]int{}
	for _, rule := range comp.AggregationRules() {
		if prof.Aggregated {
			key := strings.ToLower(rule.By)
			if rule.MinCount > minBy[key] {
				minBy[key] = rule.MinCount
			}
		}
	}

	// Row filters apply to non-aggregated reports via supporting rows.
	filters := comp.Filters()

	var keptRows []relation.Row
	var keptLineage []relation.LineageSet
	for ri := range out.Rows {
		rt, err := e.Tracer.TraceRow(raw, ri)
		if err != nil {
			return nil, err
		}
		// Aggregation thresholds.
		suppress := false
		for by, k := range minBy {
			var support int
			if by == "" {
				support = len(rt.Rows)
			} else {
				support = 0
				for table := range rt.Support {
					if n := e.Tracer.DistinctSupport(rt, table, by); n > support {
						support = n
					}
				}
			}
			if support < k {
				suppress = true
				enf.Decisions = append(enf.Decisions, Decision{
					Outcome: SuppressGroup, Rule: "aggregation-threshold",
					Subject:  fmt.Sprintf("%s[%d]", def.ID, ri),
					Detail:   fmt.Sprintf("support %d < min %d (by %q)", support, k, by),
					Evidence: lineageEvidence(rt),
				})
				break
			}
		}
		if suppress {
			enf.SuppressedRows++
			continue
		}
		// Row filters (non-aggregated reports): every supporting source
		// row must satisfy every filter.
		if !prof.Aggregated && len(filters) > 0 {
			ok, evidence := e.supportSatisfies(rt, filters)
			if !ok {
				enf.SuppressedRows++
				enf.Decisions = append(enf.Decisions, Decision{
					Outcome: SuppressRow, Rule: "row-filter",
					Subject:  fmt.Sprintf("%s[%d]", def.ID, ri),
					Evidence: evidence,
				})
				continue
			}
		}
		// Cell-level masking: denied columns, then intensional conditions
		// evaluated against the supporting source rows (§5 HIV example).
		row := out.Rows[ri].Clone()
		for ci := range row {
			if plans[ci].masked {
				row[ci] = MaskValue
				enf.MaskedCells++
				continue
			}
			if len(plans[ci].conditions) == 0 {
				continue
			}
			ok, evidence := e.supportSatisfies(rt, plans[ci].conditions)
			if !ok {
				row[ci] = MaskValue
				enf.MaskedCells++
				enf.Decisions = append(enf.Decisions, Decision{
					Outcome: Mask, Rule: "condition",
					Subject:  fmt.Sprintf("%s[%d].%s", def.ID, ri, out.Schema.Columns[ci].Name),
					Evidence: evidence,
				})
			}
		}
		keptRows = append(keptRows, row)
		keptLineage = append(keptLineage, raw.RowLineage(ri))
	}
	out.Rows = keptRows
	out.Lineage = keptLineage
	// Masked columns may hold strings now.
	for ci := range out.Schema.Columns {
		if plans[ci].masked {
			out.Schema.Columns[ci].Type = relation.TString
		}
	}
	enf.Table = out
	return enf, nil
}

// supportSatisfies evaluates conditions on every source row supporting an
// output row. A condition only applies to base rows whose table carries
// all referenced columns; rows failing any applicable condition make the
// whole support fail, and their provenance is returned as evidence.
func (e *ReportEnforcer) supportSatisfies(rt provenance.RowTrace, conds []relation.Expr) (bool, []string) {
	for _, cond := range conds {
		refs := relation.ColumnsOf(cond)
		for _, ref := range rt.Rows {
			vals := make(relation.Row, len(refs))
			applicable := true
			for i, col := range refs {
				v, ok := e.Tracer.BaseValue(ref, col)
				if !ok {
					applicable = false
					break
				}
				vals[i] = v
			}
			if !applicable {
				continue
			}
			schema := condSchema(refs, vals)
			ok, err := relation.EvalPredicate(cond, vals, schema)
			if err != nil || !ok {
				return false, []string{fmt.Sprintf("%s fails %s", ref, cond)}
			}
		}
	}
	return true, nil
}

func condSchema(cols []string, vals relation.Row) *relation.Schema {
	out := make([]relation.Column, len(cols))
	for i, c := range cols {
		out[i] = relation.Column{Name: c, Type: vals[i].Kind}
	}
	return &relation.Schema{Columns: out}
}

func lineageEvidence(rt provenance.RowTrace) []string {
	out := make([]string, 0, len(rt.Rows))
	for i, ref := range rt.Rows {
		if i >= 8 {
			out = append(out, fmt.Sprintf("... %d more", len(rt.Rows)-i))
			break
		}
		out = append(out, ref.String())
	}
	return out
}

// fromNames returns the relation names a SELECT names in its FROM clause.
func fromNames(sel *sql.SelectStmt) []string {
	out := []string{strings.ToLower(sel.From.Name)}
	for _, j := range sel.Joins {
		out = append(out, strings.ToLower(j.Table.Name))
	}
	return out
}

// aggregateColumns returns the lowercase output names of aggregate select
// items.
func aggregateColumns(sel *sql.SelectStmt) map[string]bool {
	out := map[string]bool{}
	for _, it := range sel.Items {
		if it.Agg != nil {
			out[strings.ToLower(it.OutName())] = true
		}
	}
	return out
}
