package relation

import "math/bits"

// Bitmap is a fixed-size selection bitmap over the rows of a Batch.
type Bitmap struct {
	bits []uint64
	n    int
}

// NewBitmap returns an empty bitmap over n rows.
func NewBitmap(n int) *Bitmap {
	return &Bitmap{bits: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of addressable rows.
func (b *Bitmap) Len() int { return b.n }

// Set marks row i as selected.
func (b *Bitmap) Set(i int) { b.bits[i>>6] |= 1 << uint(i&63) }

// Get reports whether row i is selected.
func (b *Bitmap) Get(i int) bool { return b.bits[i>>6]&(1<<uint(i&63)) != 0 }

// Count returns the number of selected rows.
func (b *Bitmap) Count() int {
	n := 0
	for _, w := range b.bits {
		n += bits.OnesCount64(w)
	}
	return n
}

// Batch is the columnar view of a Table: column vectors extracted lazily
// (a kernel touching two columns of a twelve-column table decomposes only
// those two) plus selection bitmaps produced by the filter kernels. It is
// the execution representation behind the vectorized operators; the
// row-oriented Table API stays the interchange format between packages.
type Batch struct {
	src  *Table
	cols []*Vector
}

// NewBatch wraps t for columnar execution. The underlying table must not
// be mutated while the batch is in use.
func NewBatch(t *Table) *Batch {
	return &Batch{src: t, cols: make([]*Vector, t.Schema.Len())}
}

// Len returns the row count.
func (b *Batch) Len() int { return len(b.src.Rows) }

// Schema returns the batch schema.
func (b *Batch) Schema() *Schema { return b.src.Schema }

// Col returns the vector of column ci, decomposing it on first use.
func (b *Batch) Col(ci int) *Vector {
	if b.cols[ci] == nil {
		b.cols[ci] = NewVector(b.src, ci)
	}
	return b.cols[ci]
}

// Filter evaluates pred over the batch with the vectorized kernels and
// returns the selection bitmap of rows where the predicate is exactly
// TRUE. ok is false when the predicate shape has no kernel (the caller
// falls back to compiled row-at-a-time evaluation); a nil predicate
// selects every row.
func (b *Batch) Filter(pred Expr) (*Bitmap, bool) {
	n := b.Len()
	sel := NewBitmap(n)
	if pred == nil {
		for i := 0; i < n; i++ {
			sel.Set(i)
		}
		return sel, true
	}
	tv, ok := evalVecPred(pred, b)
	if !ok {
		return nil, false
	}
	for i, t := range tv {
		if t == tT {
			sel.Set(i)
		}
	}
	return sel, true
}

// ToTable materializes the selected rows as a derived table. Rows are
// shared with the source (not copied), matching the row-at-a-time Select.
func (b *Batch) ToTable(name string, sel *Bitmap) *Table {
	out := b.src.derived(name)
	for i := 0; i < sel.Len(); i++ {
		if sel.Get(i) {
			out.Rows = append(out.Rows, b.src.Rows[i])
			out.Lineage = append(out.Lineage, b.src.RowLineage(i))
		}
	}
	return out
}

// evalVecPred evaluates a predicate tree over the batch using the truth
// kernels. It supports comparison/logic trees over column references and
// literals; any other shape reports ok=false.
func evalVecPred(e Expr, b *Batch) (truth, bool) {
	s := b.Schema()
	switch ex := e.(type) {
	case *LitExpr:
		return broadcast(b.Len(), truthOf(ex.V)), true
	case *ColExpr:
		ci := s.Index(ex.Name)
		if ci < 0 {
			return nil, false
		}
		return boolVec(b.Col(ci)), true
	case *BinExpr:
		switch ex.Op {
		case OpAnd, OpOr:
			lt, ok := evalVecPred(ex.L, b)
			if !ok {
				return nil, false
			}
			rt, ok := evalVecPred(ex.R, b)
			if !ok {
				return nil, false
			}
			if ex.Op == OpAnd {
				return andTruth(lt, rt), true
			}
			return orTruth(lt, rt), true
		case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
			lc, lIsCol := ex.L.(*ColExpr)
			rc, rIsCol := ex.R.(*ColExpr)
			ll, lIsLit := ex.L.(*LitExpr)
			rl, rIsLit := ex.R.(*LitExpr)
			switch {
			case lIsCol && rIsCol:
				li, ri := s.Index(lc.Name), s.Index(rc.Name)
				if li < 0 || ri < 0 {
					return nil, false
				}
				return cmpVecVec(ex.Op, b.Col(li), b.Col(ri)), true
			case lIsCol && rIsLit:
				ci := s.Index(lc.Name)
				if ci < 0 {
					return nil, false
				}
				return cmpVecLit(ex.Op, b.Col(ci), rl.V), true
			case lIsLit && rIsCol:
				ci := s.Index(rc.Name)
				if ci < 0 {
					return nil, false
				}
				return cmpVecLit(flipCmp(ex.Op), b.Col(ci), ll.V), true
			case lIsLit && rIsLit:
				return broadcast(b.Len(), cmpValues(ex.Op, ll.V, rl.V)), true
			default:
				return nil, false
			}
		case OpLike:
			lc, lIsCol := ex.L.(*ColExpr)
			rl, rIsLit := ex.R.(*LitExpr)
			if !lIsCol || !rIsLit {
				return nil, false
			}
			ci := s.Index(lc.Name)
			if ci < 0 {
				return nil, false
			}
			return likeVec(b.Col(ci), rl.V), true
		default:
			return nil, false
		}
	case *NotExpr:
		sub, ok := evalVecPred(ex.E, b)
		if !ok {
			return nil, false
		}
		return notTruth(sub), true
	case *IsNullExpr:
		switch inner := ex.E.(type) {
		case *ColExpr:
			ci := s.Index(inner.Name)
			if ci < 0 {
				return nil, false
			}
			return isNullVec(b.Col(ci), ex.Negate), true
		case *LitExpr:
			if inner.V.IsNull() != ex.Negate {
				return broadcast(b.Len(), tT), true
			}
			return broadcast(b.Len(), tF), true
		default:
			return nil, false
		}
	case *InExpr:
		inner, isCol := ex.E.(*ColExpr)
		if !isCol {
			return nil, false
		}
		ci := s.Index(inner.Name)
		if ci < 0 {
			return nil, false
		}
		lits := make([]Value, len(ex.List))
		for i, le := range ex.List {
			lt, isLit := le.(*LitExpr)
			if !isLit {
				return nil, false
			}
			lits[i] = lt.V
		}
		return inVec(b.Col(ci), lits, ex.Negate), true
	default:
		return nil, false
	}
}

// flipCmp mirrors a comparison operator for swapped operands.
func flipCmp(op BinOp) BinOp {
	switch op {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	default: // Eq, Ne are symmetric
		return op
	}
}

func broadcast(n int, t int8) truth {
	out := make(truth, n)
	if t != tF {
		for i := range out {
			out[i] = t
		}
	}
	return out
}
