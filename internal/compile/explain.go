package compile

import (
	"fmt"
	"sort"
	"strings"
)

// Explain renders the residual program as a deterministic, human-readable
// plan — the compiled-mode analogue of an EXPLAIN statement. The output
// shows what survived partial evaluation: the pinned generations, the
// pruned rule set, folded verdicts, baked thresholds, pre-bound filters
// and the per-column classification.
func (p *Program) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "residual program %s (role %s, purpose %s)\n", p.Report, orAny(p.Role), orAny(p.Purpose))
	fmt.Fprintf(&b, "  generations: report v%d, policy %d, catalog %d, scope %d\n",
		p.At.Version, p.At.Policy, p.At.Catalog, p.At.Scope)
	fmt.Fprintf(&b, "  governing PLAs (%d): %s\n", len(p.PLAs), strings.Join(p.PLAs, ", "))
	fmt.Fprintf(&b, "  rules: %d total, %d live, %d pruned (PL001)\n",
		p.TotalRules, p.LiveRules, len(p.Pruned))
	for _, pr := range p.Pruned {
		fmt.Fprintf(&b, "    - %s: %s %s — %s\n", pr.PLA, pr.Effect, pr.Attribute, pr.Reason)
	}

	if len(p.Static) > 0 {
		fmt.Fprintf(&b, "  folded verdicts (%d): render is a compile-time constant (empty result)\n", len(p.Static))
		for _, v := range p.Static {
			line := fmt.Sprintf("    - %s %s (%s)", v.Outcome, v.Subject, v.Rule)
			if len(v.PLAs) > 0 {
				line += " pla=[" + strings.Join(v.PLAs, ",") + "]"
			}
			if v.Detail != "" {
				line += ": " + v.Detail
			}
			b.WriteString(line + "\n")
		}
		return b.String()
	}

	if len(p.Thresholds) == 0 {
		b.WriteString("  thresholds: none\n")
	} else {
		fmt.Fprintf(&b, "  thresholds (baked, %d):\n", len(p.Thresholds))
		for _, t := range p.Thresholds {
			by := t.By
			if by == "" {
				by = "<rows>"
			}
			fmt.Fprintf(&b, "    - min %d by %q pla=[%s]\n", t.Min, by, strings.Join(t.PLAs, ","))
		}
	}

	if len(p.Filters) == 0 {
		b.WriteString("  row filters: none\n")
	} else {
		fmt.Fprintf(&b, "  row filters (pre-bound, %d) pla=[%s]:\n",
			len(p.Filters), strings.Join(p.FilterPLAs, ","))
		for _, f := range p.Filters {
			safety := "safe"
			if !f.Safe {
				safety = "fallible"
			}
			fmt.Fprintf(&b, "    - %s over (%s) [%s]\n", f.Expr, strings.Join(f.Cols, ", "), safety)
		}
	}

	if len(p.Columns) > 0 {
		fmt.Fprintf(&b, "  columns (%d):\n", len(p.Columns))
		cols := append([]ColumnPlan(nil), p.Columns...)
		sort.Slice(cols, func(i, j int) bool { return cols[i].Name < cols[j].Name })
		for _, c := range cols {
			switch {
			case c.Aggregate:
				fmt.Fprintf(&b, "    - %s: aggregate (threshold-governed)\n", c.Name)
			case c.Masked:
				line := fmt.Sprintf("    - %s: mask (%s)", c.Name, c.Rule)
				if len(c.PLAs) > 0 {
					line += " pla=[" + strings.Join(c.PLAs, ",") + "]"
				}
				b.WriteString(line + "\n")
			case len(c.Conditions) > 0:
				fmt.Fprintf(&b, "    - %s: release when %s\n", c.Name, strings.Join(c.Conditions, " AND "))
			default:
				fmt.Fprintf(&b, "    - %s: release\n", c.Name)
			}
		}
	}

	b.WriteString("  pipeline: exec")
	if len(p.Thresholds) > 0 {
		b.WriteString(" -> thresholds")
	}
	if !p.Aggregated && len(p.Filters) > 0 {
		b.WriteString(" -> filters")
	}
	b.WriteString(" -> mask -> fold(result)\n")
	return b.String()
}

func orAny(s string) string {
	if s == "" {
		return "*"
	}
	return s
}
