// Command benchjson turns the output of the core benchmark suite
//
//	go test -run '^$' -bench '^BenchmarkCore' -benchmem .
//
// into BENCH_core.json: one record per benchmark plus the speedups of
// each execution mode over the reference baseline measured in the same
// run — vectorized over the seed's row-at-a-time operators (mode=row),
// vectorized join over the nested-loop baseline
// (BenchmarkCoreJoinNested), and the compiled residual-program render
// (mode=compiled) over the vectorized render. Recording both sides of
// every ratio in a single run keeps the perf trajectory honest: no number
// in the file was taken on a different machine, commit, or load.
//
// With -check, the tool enforces the acceptance floors at the largest
// scale: the hash join must beat the nested-loop reference and the
// batched render must beat the row-at-a-time reference by at least -min
// (default 5.0), and the compiled render must beat the vectorized render
// by at least -min-compiled (default 1.5). CI fails the bench job on a
// violation.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Family      string  `json:"family"`
	N           int     `json:"n"`
	Mode        string  `json:"mode,omitempty"`
	Storage     string  `json:"storage,omitempty"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric units (pruned_segments,
	// peak_alloc_bytes, pruned_frac, ...) keyed by unit name.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Speedup is one mode-over-baseline ratio at one scale.
type Speedup struct {
	Family string `json:"family"`
	N      int    `json:"n"`
	// Baseline names the denominator: "row" or "nested" under the
	// vectorized numerator, "vectorized" under the compiled one.
	Baseline   string  `json:"baseline"`
	FastNs     float64 `json:"fast_ns"`
	BaselineNs float64 `json:"baseline_ns"`
	Speedup    float64 `json:"speedup"`
}

// Report is the BENCH_core.json / BENCH_scale.json document.
type Report struct {
	Suite      string      `json:"suite"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Benchmarks []Benchmark `json:"benchmarks"`
	Speedups   []Speedup   `json:"speedups"`
	Scale      *ScaleRow   `json:"scale,omitempty"`
}

// ScaleRow condenses the out-of-core suite at its largest measured scale
// into the numbers the scale-bench lane gates on and the README quotes.
type ScaleRow struct {
	N int `json:"n"`
	// SegmentNs / MemoryNs are the storage=segment and storage=memory
	// render times from the same run.
	SegmentNs float64 `json:"segment_ns"`
	MemoryNs  float64 `json:"memory_ns,omitempty"`
	// Peak sampled HeapAlloc during each render loop.
	PeakAllocBytes       float64 `json:"peak_alloc_bytes,omitempty"`
	MemoryPeakAllocBytes float64 `json:"memory_peak_alloc_bytes,omitempty"`
	// Zone-map pruning on the selective-filter scan.
	PrunedSegments float64 `json:"pruned_segments"`
	SegmentsTotal  float64 `json:"segments_total"`
	PruneFraction  float64 `json:"prune_fraction"`
}

func parse(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		if b, ok := parseLine(sc.Text()); ok {
			out = append(out, b)
		}
	}
	return out, sc.Err()
}

// parseLine parses one go-test benchmark result line — the name, the
// iteration count, then value/unit pairs, e.g.
//
//	BenchmarkCoreScanPruned/n=50000-8  2  8109238 ns/op  0.75 pruned_frac  14018960 B/op  21879 allocs/op
//
// ns/op, B/op and allocs/op land in dedicated fields; any other unit
// (custom b.ReportMetric output, which go test interleaves between
// ns/op and the -benchmem columns) goes into Metrics keyed by unit.
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.Atoi(f[1])
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: trimProcs(f[0]), Iterations: iters}
	seenNs := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsPerOp, seenNs = v, true
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		case "MB/s":
			// throughput of bytes-processing benchmarks; not used here
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	if !seenNs {
		return Benchmark{}, false
	}
	for _, seg := range strings.Split(b.Name, "/") {
		switch {
		case strings.HasPrefix(seg, "Benchmark"):
			// Core families drop the whole BenchmarkCore prefix; other
			// suites (BenchmarkDeltaRefresh) just drop Benchmark.
			b.Family = strings.TrimPrefix(strings.TrimPrefix(seg, "BenchmarkCore"), "Benchmark")
		case strings.HasPrefix(seg, "n="):
			b.N, _ = strconv.Atoi(seg[2:])
		case strings.HasPrefix(seg, "mode="):
			b.Mode = seg[5:]
		case strings.HasPrefix(seg, "storage="):
			b.Storage = seg[8:]
		}
	}
	return b, true
}

// trimProcs drops the trailing -<GOMAXPROCS> go test appends to the last
// name segment.
func trimProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// speedups derives every same-run ratio the suite supports: vectorized
// vs row for each (family, n), vectorized join vs the nested-loop
// baseline family, a compiled family (e.g. RenderCompiled) vs the
// vectorized mode of the family it specializes (Render), and the
// segment-backed storage mode vs its in-memory twin (a ratio below 1.0
// is the expected out-of-core slowdown, recorded, not gated).
func speedups(benchmarks []Benchmark) []Speedup {
	type key struct {
		family  string
		n       int
		mode    string
		storage string
	}
	ns := map[key]float64{}
	for _, b := range benchmarks {
		ns[key{b.Family, b.N, b.Mode, b.Storage}] = b.NsPerOp
	}
	var out []Speedup
	for _, b := range benchmarks {
		if b.Storage == "segment" {
			if base, ok := ns[key{b.Family, b.N, b.Mode, "memory"}]; ok && base > 0 {
				out = append(out, Speedup{Family: b.Family, N: b.N, Baseline: "memory",
					FastNs: b.NsPerOp, BaselineNs: base, Speedup: base / b.NsPerOp})
			}
			continue
		}
		switch b.Mode {
		case "vectorized":
			if base, ok := ns[key{b.Family, b.N, "row", ""}]; ok && base > 0 {
				out = append(out, Speedup{Family: b.Family, N: b.N, Baseline: "row",
					FastNs: b.NsPerOp, BaselineNs: base, Speedup: base / b.NsPerOp})
			}
			if base, ok := ns[key{b.Family + "Nested", b.N, "", ""}]; ok && base > 0 {
				out = append(out, Speedup{Family: b.Family, N: b.N, Baseline: "nested",
					FastNs: b.NsPerOp, BaselineNs: base, Speedup: base / b.NsPerOp})
			}
		case "compiled":
			parent := strings.TrimSuffix(b.Family, "Compiled")
			if base, ok := ns[key{parent, b.N, "vectorized", ""}]; ok && base > 0 {
				out = append(out, Speedup{Family: b.Family, N: b.N, Baseline: "vectorized",
					FastNs: b.NsPerOp, BaselineNs: base, Speedup: base / b.NsPerOp})
			}
		case "delta":
			if base, ok := ns[key{b.Family, b.N, "rebuild", ""}]; ok && base > 0 {
				out = append(out, Speedup{Family: b.Family, N: b.N, Baseline: "rebuild",
					FastNs: b.NsPerOp, BaselineNs: base, Speedup: base / b.NsPerOp})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Family != out[j].Family {
			return out[i].Family < out[j].Family
		}
		if out[i].N != out[j].N {
			return out[i].N < out[j].N
		}
		return out[i].Baseline < out[j].Baseline
	})
	return out
}

// scaleSummary condenses the out-of-core families at their largest
// measured scale into one ScaleRow, or nil when the input has none.
func scaleSummary(benchmarks []Benchmark) *ScaleRow {
	maxN := 0
	for _, b := range benchmarks {
		if (b.Family == "RenderSegment" || b.Family == "ScanPruned") && b.N > maxN {
			maxN = b.N
		}
	}
	if maxN == 0 {
		return nil
	}
	row := &ScaleRow{N: maxN}
	for _, b := range benchmarks {
		if b.N != maxN {
			continue
		}
		switch {
		case b.Family == "RenderSegment" && b.Storage == "segment":
			row.SegmentNs = b.NsPerOp
			row.PeakAllocBytes = b.Metrics["peak_alloc_bytes"]
		case b.Family == "RenderSegment" && b.Storage == "memory":
			row.MemoryNs = b.NsPerOp
			row.MemoryPeakAllocBytes = b.Metrics["peak_alloc_bytes"]
		case b.Family == "ScanPruned":
			row.PrunedSegments = b.Metrics["pruned_segments"]
			row.SegmentsTotal = b.Metrics["segments_total"]
			row.PruneFraction = b.Metrics["pruned_frac"]
		}
	}
	return row
}

// checkScale enforces the scale-bench lane's floors: the segment-backed
// render must have been measured, and zone-map pruning must skip at
// least minPrune of the partitions on the selective-filter scan.
func checkScale(row *ScaleRow, minPrune float64) error {
	if row == nil {
		return fmt.Errorf("no RenderSegment/ScanPruned benchmarks in input")
	}
	if row.SegmentNs == 0 {
		return fmt.Errorf("missing segment-backed render measurement at n=%d", row.N)
	}
	if row.SegmentsTotal == 0 {
		return fmt.Errorf("missing pruned-scan measurement at n=%d", row.N)
	}
	if row.PruneFraction < minPrune {
		return fmt.Errorf("pruning skipped only %.0f%% of segments at n=%d (%g of %g, floor %.0f%%)",
			row.PruneFraction*100, row.N, row.PrunedSegments, row.SegmentsTotal, minPrune*100)
	}
	return nil
}

// checkDelta enforces the incremental-refresh floors at the largest
// measured scale: the delta-mode refresh must be at least minDelta× the
// full rebuild measured in the same run, and the render plan cache must
// have retained at least minRetained of its entries across a delta
// batch (per-table-epoch invalidation; generation-keyed discard would
// score zero).
func checkDelta(benchmarks []Benchmark, sp []Speedup, minDelta, minRetained float64) error {
	if err := enforceFloor(sp, "DeltaRefresh", "rebuild", minDelta); err != nil {
		return err
	}
	maxN, retained := 0, -1.0
	for _, b := range benchmarks {
		if b.Family == "DeltaRefresh" && b.Mode == "delta" && b.N > maxN {
			if v, ok := b.Metrics["cache_retained"]; ok {
				maxN, retained = b.N, v
			}
		}
	}
	if retained < 0 {
		return fmt.Errorf("missing cache_retained metric on the delta-mode benchmark")
	}
	if retained < minRetained {
		return fmt.Errorf("plan cache retained only %.0f%% of entries across a delta at n=%d (floor %.0f%%)",
			retained*100, maxN, minRetained*100)
	}
	return nil
}

// check enforces the acceptance floors: at the largest measured scale,
// the hash join must be ≥ min× the nested-loop baseline, the batched
// render ≥ min× the row-at-a-time baseline, and the compiled render
// ≥ minCompiled× the vectorized render.
func check(sp []Speedup, min, minCompiled float64) error {
	floors := []struct {
		family, baseline string
		floor            float64
	}{
		{"Join", "nested", min},
		{"Render", "row", min},
		{"RenderCompiled", "vectorized", minCompiled},
	}
	for _, f := range floors {
		if err := enforceFloor(sp, f.family, f.baseline, f.floor); err != nil {
			return err
		}
	}
	return nil
}

// enforceFloor checks one family's speedup over one baseline at the
// largest measured scale.
func enforceFloor(sp []Speedup, family, baseline string, floor float64) error {
	best := Speedup{}
	for _, s := range sp {
		if s.Family == family && s.Baseline == baseline && s.N > best.N {
			best = s
		}
	}
	if best.N == 0 {
		return fmt.Errorf("missing %s-vs-%s measurement", family, baseline)
	}
	if best.Speedup < floor {
		return fmt.Errorf("%s at n=%d is only %.2fx the %s baseline (floor %.1fx)",
			family, best.N, best.Speedup, baseline, floor)
	}
	return nil
}

func main() {
	in := flag.String("in", "-", "benchmark output to parse ('-' for stdin)")
	out := flag.String("out", "BENCH_core.json", "where to write the JSON report")
	suite := flag.String("suite", "core", "suite label recorded in the report")
	doCheck := flag.Bool("check", false, "fail unless the 100k join/render speedup floors hold")
	doCheckCompiled := flag.Bool("check-compiled", false, "fail unless the 100k compiled-render floor holds (for runs without the join families)")
	doCheckScale := flag.Bool("check-scale", false, "fail unless the segment render was measured and the pruning floor holds")
	doCheckDelta := flag.Bool("check-delta", false, "fail unless the delta-over-rebuild refresh floor and the plan-cache retention floor hold")
	min := flag.Float64("min", 5.0, "vectorized-over-reference speedup floor enforced by -check")
	minCompiled := flag.Float64("min-compiled", 1.5, "compiled-over-vectorized render floor enforced by -check and -check-compiled")
	minPrune := flag.Float64("min-prune", 0.5, "pruned-segment fraction floor enforced by -check-scale")
	minRetained := flag.Float64("min-retained", 0.5, "plan-cache retention floor across a delta enforced by -check-delta")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	benchmarks, err := parse(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found in input")
		os.Exit(1)
	}
	rep := Report{
		Suite:      *suite,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: benchmarks,
		Speedups:   speedups(benchmarks),
		Scale:      scaleSummary(benchmarks),
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	for _, s := range rep.Speedups {
		fmt.Printf("%-10s n=%-7d vs %-6s %6.2fx\n", s.Family, s.N, s.Baseline, s.Speedup)
	}
	if rep.Scale != nil {
		fmt.Printf("scale n=%d: segment render %.0f ns, pruning %.0f/%.0f segments (%.0f%%), peak heap %.1f MB (in-memory %.1f MB)\n",
			rep.Scale.N, rep.Scale.SegmentNs, rep.Scale.PrunedSegments, rep.Scale.SegmentsTotal,
			rep.Scale.PruneFraction*100, rep.Scale.PeakAllocBytes/1e6, rep.Scale.MemoryPeakAllocBytes/1e6)
	}
	if *doCheckScale {
		if err := checkScale(rep.Scale, *minPrune); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: FAIL:", err)
			os.Exit(1)
		}
		fmt.Printf("scale floors hold (pruning >= %.0f%%)\n", *minPrune*100)
	}
	if *doCheckDelta {
		if err := checkDelta(rep.Benchmarks, rep.Speedups, *min, *minRetained); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: FAIL:", err)
			os.Exit(1)
		}
		fmt.Printf("delta floors hold (>= %.1fx vs rebuild, cache retention >= %.0f%%)\n", *min, *minRetained*100)
	}
	if *doCheck {
		if err := check(rep.Speedups, *min, *minCompiled); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: FAIL:", err)
			os.Exit(1)
		}
		fmt.Printf("speedup floors hold (>= %.1fx, compiled >= %.1fx)\n", *min, *minCompiled)
	}
	if *doCheckCompiled && !*doCheck {
		if err := enforceFloor(rep.Speedups, "RenderCompiled", "vectorized", *minCompiled); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: FAIL:", err)
			os.Exit(1)
		}
		fmt.Printf("compiled-render floor holds (>= %.1fx)\n", *minCompiled)
	}
}
