package lint

import (
	"fmt"
	"strings"

	"plabi/internal/policy"
)

// deadRules (PL001) finds access rules that can never influence a
// decision under compose.go's most-restrictive-wins semantics: an allow
// rule fully covered by an unconditional deny in any co-governing
// agreement (shadowed — the author believes access is granted, the
// runtime always refuses), and a rule fully covered by an earlier,
// broader rule of the same effect in the same agreement (redundant).
type deadRules struct{}

func init() { Register(deadRules{}) }

func (deadRules) Code() string { return "PL001" }
func (deadRules) Name() string { return "dead-rules" }
func (deadRules) Doc() string {
	return "Access rules that are unreachable under most-restrictive-wins composition: " +
		"allow rules always overridden by an unconditional deny (shadowed), and rules " +
		"subsumed by an earlier broader rule of the same effect (redundant)."
}

func (deadRules) Run(p *Pass) []Finding {
	var out []Finding
	for _, g := range p.scopeGroups() {
		for _, pla := range g.plas {
			for i, r := range pla.Access {
				if r.Effect == policy.Allow {
					if by, s := shadowedBy(g, r); by != nil {
						out = append(out, shadowFinding(pla, i, r, by, s))
						continue
					}
				}
				if j := coveredEarlier(pla, i); j >= 0 {
					out = append(out, redundantFinding(pla, i, j))
				}
			}
		}
	}
	return out
}

// shadowedBy returns the agreement and rule whose unconditional deny
// covers every (attribute, role, purpose) the allow rule r matches. The
// covering relation itself (policy.RuleCovers) is shared with
// internal/compile, whose residual programs prune exactly the rules this
// analyzer reports.
func shadowedBy(g group, r policy.AccessRule) (*policy.PLA, *policy.AccessRule) {
	for _, pla := range g.plas {
		for i, s := range pla.Access {
			// A deny's condition is ignored by DecideAttribute, so any
			// covering deny shadows unconditionally.
			if s.Effect == policy.Deny && policy.RuleCovers(s, r) {
				return pla, &pla.Access[i]
			}
		}
	}
	return nil, nil
}

// coveredEarlier returns the index of an earlier rule in the same PLA
// with the same effect, no condition, covering rule i (which must itself
// be unconditional for the subsumption to be outcome-neutral).
func coveredEarlier(pla *policy.PLA, i int) int {
	r := pla.Access[i]
	if r.When != nil {
		return -1
	}
	for j := 0; j < i; j++ {
		s := pla.Access[j]
		if s.Effect == r.Effect && s.When == nil && policy.RuleCovers(s, r) {
			return j
		}
	}
	return -1
}

func shadowFinding(pla *policy.PLA, idx int, r policy.AccessRule, by *policy.PLA, s *policy.AccessRule) Finding {
	at := ""
	if s.Pos.IsValid() {
		at = fmt.Sprintf(" at %s", s.Pos)
	}
	return Finding{
		Code: "PL001", Severity: SevWarning, Level: pla.Level, Pos: r.Pos,
		Subject: pla.ID + "/" + r.Attribute,
		Message: fmt.Sprintf("allow rule for attribute %q%s in PLA %q is dead: always overridden by the deny rule%s in PLA %q (most-restrictive-wins)",
			r.Attribute, ruleScopeSuffix(r), pla.ID, at, by.ID),
		PLAs: plaIDs(pla, by),
		SuggestedFix: &Fix{
			Summary: fmt.Sprintf("remove the shadowed allow rule for %q from PLA %q", r.Attribute, pla.ID),
			PLAID:   pla.ID, Kind: "access", Index: idx, Action: "remove",
		},
	}
}

func redundantFinding(pla *policy.PLA, i, j int) Finding {
	r, s := pla.Access[i], pla.Access[j]
	return Finding{
		Code: "PL001", Severity: SevInfo, Level: pla.Level, Pos: r.Pos,
		Subject: pla.ID + "/" + r.Attribute,
		Message: fmt.Sprintf("%s rule for attribute %q%s in PLA %q is redundant: already covered by the broader %s rule for %q",
			r.Effect, r.Attribute, ruleScopeSuffix(r), pla.ID, s.Effect, s.Attribute),
		PLAs: []string{pla.ID},
		SuggestedFix: &Fix{
			Summary: fmt.Sprintf("remove the redundant %s rule for %q from PLA %q", r.Effect, r.Attribute, pla.ID),
			PLAID:   pla.ID, Kind: "access", Index: i, Action: "remove",
		},
	}
}

// ruleScopeSuffix renders the role/purpose restriction of a rule for
// messages (" (roles analyst)", "").
func ruleScopeSuffix(r policy.AccessRule) string {
	var parts []string
	if len(r.Roles) > 0 {
		parts = append(parts, "roles "+strings.Join(r.Roles, ", "))
	}
	if len(r.Purposes) > 0 {
		parts = append(parts, "purpose "+strings.Join(r.Purposes, ", "))
	}
	if len(parts) == 0 {
		return ""
	}
	return " (" + strings.Join(parts, "; ") + ")"
}

func plaIDs(plas ...*policy.PLA) []string {
	var out []string
	seen := map[string]bool{}
	for _, p := range plas {
		if !seen[p.ID] {
			seen[p.ID] = true
			out = append(out, p.ID)
		}
	}
	return out
}
