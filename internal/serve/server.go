package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"plabi"
	apiv1 "plabi/api/v1"
	"plabi/internal/lint"
	"plabi/internal/obs"
	"plabi/internal/policy"
)

// maxBodyBytes bounds every request body: decision requests are small;
// anything larger is a mistake or an attack.
const maxBodyBytes = 1 << 20

// Options configures a Server.
type Options struct {
	// AuditDir is where tenants without an explicit AuditPath stream
	// their audit trail ("<dir>/<tenant>.audit.jsonl"). Empty falls back
	// to the OS temp directory.
	AuditDir string
	// ManifestPath, when set, lets ReloadFromManifestFile (and the
	// /admin/reload endpoint) re-read the manifest from disk.
	ManifestPath string
	// Metrics is the server-level observability registry (one is created
	// when nil). Tenant engines keep their own registries; /metrics
	// serves the merged view.
	Metrics *obs.Metrics
}

// Server hosts isolated plabi engines behind the /v1 HTTP surface.
type Server struct {
	metrics      *obs.Metrics
	auditDir     string
	manifestPath string

	mu          sync.RWMutex
	tenants     map[string]*tenant
	tokens      map[string]string // bearer token -> tenant name
	adminTokens map[string]bool

	reqSeq atomic.Uint64
	closed atomic.Bool
}

// New builds a server from a validated manifest, constructing every
// tenant's engine (scenario ETL included) before returning. On error,
// engines already built are closed.
func New(m *Manifest, opts Options) (*Server, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	s := &Server{
		metrics:      opts.Metrics,
		auditDir:     opts.AuditDir,
		manifestPath: opts.ManifestPath,
		tenants:      map[string]*tenant{},
		tokens:       map[string]string{},
		adminTokens:  map[string]bool{},
	}
	if s.metrics == nil {
		s.metrics = obs.New()
	}
	for _, cfg := range m.Tenants {
		in, err := buildInstance(cfg, 1, s.auditDir)
		if err != nil {
			_ = s.Close()
			return nil, err
		}
		t := &tenant{name: cfg.Name, cfg: cfg, fingerprint: cfg.bundleFingerprint(),
			limiter: newBucket(cfg.RateRPS, cfg.RateBurst)}
		t.cur.Store(in)
		s.tenants[cfg.Name] = t
		for _, tok := range cfg.Tokens {
			s.tokens[tok] = cfg.Name
		}
	}
	for _, tok := range m.AdminTokens {
		s.adminTokens[tok] = true
	}
	s.metrics.Gauge("serve.tenants").Set(int64(len(s.tenants)))
	return s, nil
}

// ReloadRejectedError is returned when the policy-change gate refuses a
// reload: the staged manifest contains error-severity privilege
// expansions for a tenant that has neither allow_expansion set nor the
// force flag passed. No swap has happened; the server keeps serving the
// old state.
type ReloadRejectedError struct {
	// Tenant is the first tenant whose staged bundle expands privileges.
	Tenant string
	// Impacts are the expansion findings for that tenant.
	Impacts []plabi.Impact
}

func (e *ReloadRejectedError) Error() string {
	return fmt.Sprintf("serve: reload rejected: tenant %q: %d privilege expansion(s); set allow_expansion or force the reload",
		e.Tenant, len(e.Impacts))
}

// Reload applies a new manifest with the expansion gate armed (see
// ReloadGated).
func (s *Server) Reload(m *Manifest) error {
	_, err := s.ReloadGated(m, false)
	return err
}

// ReloadGated applies a new manifest: tenants whose policy bundle
// changed get a fresh engine built and atomically swapped in (the old
// engine drains its in-flight requests, then its audit sink is flushed
// and closed); unchanged tenants keep serving without interruption;
// removed tenants drain and close; added tenants are built. The token
// and rate-limit maps always follow the new manifest. Engines are built
// BEFORE any swap, so a manifest whose build fails leaves the server
// fully on the old state.
//
// Between build and swap, every staged engine is diffed against the one
// it replaces (pladiff). Error-severity impacts — privilege expansions —
// abort the whole reload with *ReloadRejectedError unless the tenant's
// manifest entry sets allow_expansion or force is true. The per-tenant
// impact lists are returned in the response either way, so operators see
// what a forced reload shipped.
func (s *Server) ReloadGated(m *Manifest, force bool) (*apiv1.ReloadResponse, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	// Phase 1: build every engine the new manifest needs.
	type staged struct {
		cfg     TenantConfig
		in      *instance // nil = keep the running instance
		impacts []plabi.Impact
	}
	var plan []staged
	abort := func(plan []staged) {
		for _, st := range plan {
			if st.in != nil {
				_ = st.in.eng.Close()
			}
		}
	}
	for _, cfg := range m.Tenants {
		old, exists := s.tenants[cfg.Name]
		if exists && old.fingerprint == cfg.bundleFingerprint() {
			plan = append(plan, staged{cfg: cfg})
			continue
		}
		version := 1
		if exists {
			if cur := old.cur.Load(); cur != nil {
				version = cur.version + 1
			}
		}
		in, err := buildInstance(cfg, version, s.auditDir)
		if err != nil {
			abort(plan)
			return nil, err
		}
		plan = append(plan, staged{cfg: cfg, in: in})
	}

	// Gate: diff each staged engine against the instance it replaces.
	for i, st := range plan {
		if st.in == nil {
			continue
		}
		old, exists := s.tenants[st.cfg.Name]
		if !exists {
			continue // new tenant: nothing served before, nothing to widen
		}
		cur := old.cur.Load()
		if cur == nil {
			continue
		}
		imps, err := plabi.Diff(cur.eng, st.in.eng)
		if err != nil {
			abort(plan)
			return nil, fmt.Errorf("serve: reload diff %s: %w", st.cfg.Name, err)
		}
		plan[i].impacts = imps
		if exp := plabi.Expansions(imps); len(exp) > 0 && !st.cfg.AllowExpansion && !force {
			abort(plan)
			s.metrics.Counter("serve.reloads_rejected").Inc()
			return nil, &ReloadRejectedError{Tenant: st.cfg.Name, Impacts: exp}
		}
	}

	// Phase 2: swap. From here nothing can fail.
	resp := &apiv1.ReloadResponse{Status: "reloaded"}
	kept := map[string]bool{}
	for _, st := range plan {
		kept[st.cfg.Name] = true
		t, exists := s.tenants[st.cfg.Name]
		if !exists {
			t = &tenant{name: st.cfg.Name}
			s.tenants[st.cfg.Name] = t
		}
		if t.cfg.RateRPS != st.cfg.RateRPS || t.cfg.RateBurst != st.cfg.RateBurst || !exists {
			t.limiter = newBucket(st.cfg.RateRPS, st.cfg.RateBurst)
		}
		t.cfg = st.cfg
		t.fingerprint = st.cfg.bundleFingerprint()
		if st.in != nil {
			t.swap(st.in)
			s.metrics.Counter("serve.bundle_swaps").Inc()
		}
		cur := t.cur.Load()
		tr := apiv1.TenantReload{Name: st.cfg.Name, Swapped: st.in != nil,
			Impacts: wireFindings(plabi.ImpactFindings(st.impacts))}
		if cur != nil {
			tr.Version = cur.version
			tr.ProgramGeneration = cur.eng.ProgramGeneration()
		}
		resp.Tenants = append(resp.Tenants, tr)
	}
	for name, t := range s.tenants {
		if !kept[name] {
			delete(s.tenants, name)
			go func(t *tenant) { _ = t.close() }(t)
		}
	}
	s.tokens = map[string]string{}
	for _, cfg := range m.Tenants {
		for _, tok := range cfg.Tokens {
			s.tokens[tok] = cfg.Name
		}
	}
	s.adminTokens = map[string]bool{}
	for _, tok := range m.AdminTokens {
		s.adminTokens[tok] = true
	}
	s.metrics.Gauge("serve.tenants").Set(int64(len(s.tenants)))
	s.metrics.Counter("serve.reloads").Inc()
	return resp, nil
}

// ReloadFromManifestFile re-reads the manifest the server was started
// from and applies it (SIGHUP and /admin/reload both land here).
func (s *Server) ReloadFromManifestFile() error {
	_, err := s.reloadFromManifestFile(false)
	return err
}

func (s *Server) reloadFromManifestFile(force bool) (*apiv1.ReloadResponse, error) {
	if s.manifestPath == "" {
		return nil, fmt.Errorf("serve: no manifest path configured")
	}
	m, err := LoadManifest(s.manifestPath)
	if err != nil {
		return nil, err
	}
	return s.ReloadGated(m, force)
}

// Close drains and closes every tenant engine. The server rejects
// requests afterwards.
func (s *Server) Close() error {
	s.closed.Store(true)
	s.mu.Lock()
	tenants := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		tenants = append(tenants, t)
	}
	s.tenants = map[string]*tenant{}
	s.tokens = map[string]string{}
	s.mu.Unlock()
	var first error
	for _, t := range tenants {
		if err := t.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// engineFor exposes a tenant's live engine to in-package tests (cache
// and audit isolation assertions). Production access goes through
// acquire/release only.
func (s *Server) engineFor(name string) *plabi.Engine {
	s.mu.RLock()
	t := s.tenants[name]
	s.mu.RUnlock()
	if t == nil {
		return nil
	}
	in := t.cur.Load()
	if in == nil {
		return nil
	}
	return in.eng
}

// Handler returns the server's HTTP surface: the /v1 tenant routes,
// /healthz, /admin/reload, and the observability endpoints (/metrics,
// /debug/pprof).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("POST /v1/tenants/{tenant}/render", s.tenantHandler("render", s.handleRender))
	mux.HandleFunc("POST /v1/tenants/{tenant}/check", s.tenantHandler("check", s.handleCheck))
	mux.HandleFunc("POST /v1/tenants/{tenant}/lint", s.tenantHandler("lint", s.handleLint))
	mux.HandleFunc("GET /v1/tenants/{tenant}/reports", s.tenantHandler("reports", s.handleReports))
	mux.HandleFunc("POST /admin/reload", s.handleReload)
	dm := obs.DebugMux(s.MetricsSnapshot)
	mux.Handle("GET /metrics", dm)
	mux.Handle("/debug/pprof/", dm)
	return mux
}

// MetricsSnapshot merges the server-level registry with every tenant
// engine's snapshot, tenant metrics prefixed "tenant.<name>." — one
// scrape shows the transport and each isolation domain side by side.
func (s *Server) MetricsSnapshot() obs.Snapshot {
	snap := s.metrics.Snapshot()
	s.mu.RLock()
	tenants := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		tenants = append(tenants, t)
	}
	s.mu.RUnlock()
	for _, t := range tenants {
		in, release := t.acquire()
		if in == nil {
			continue
		}
		es := in.eng.MetricsSnapshot()
		release()
		prefix := "tenant." + t.name + "."
		for k, v := range es.Counters {
			snap.Counters[prefix+k] = v
		}
		for k, v := range es.Gauges {
			snap.Gauges[prefix+k] = v
		}
		for k, v := range es.Histograms {
			snap.Histograms[prefix+k] = v
		}
	}
	return snap
}

// requestContext carries everything a tenant handler needs.
type requestContext struct {
	tenant *tenant
	inst   *instance
	corr   string
	ctx    context.Context
}

// tenantHandler wraps a handler with the full request discipline: auth,
// tenant resolution, rate limiting, correlation id, instance acquisition
// and latency/error accounting.
func (s *Server) tenantHandler(op string, h func(http.ResponseWriter, *http.Request, *requestContext) *apiv1.Error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.metrics.Counter("serve.requests").Inc()
		corr := r.Header.Get("X-Correlation-Id")
		pathTenant := r.PathValue("tenant")
		if corr == "" {
			corr = fmt.Sprintf("%s-r%08d", pathTenant, s.reqSeq.Add(1))
		}
		w.Header().Set("X-Correlation-Id", corr)

		fail := func(e *apiv1.Error) {
			s.metrics.Counter("serve.errors").Inc()
			s.metrics.Counter("serve.errors." + string(e.Code)).Inc()
			e.CorrelationID = corr
			writeError(w, e)
		}

		tok, ok := bearerToken(r)
		if !ok {
			s.metrics.Counter("serve.unauthorized").Inc()
			fail(&apiv1.Error{Code: apiv1.CodeUnauthorized, Message: "missing or malformed bearer token"})
			return
		}
		s.mu.RLock()
		tokTenant, tokOK := s.tokens[tok]
		t := s.tenants[pathTenant]
		s.mu.RUnlock()
		if !tokOK {
			s.metrics.Counter("serve.unauthorized").Inc()
			fail(&apiv1.Error{Code: apiv1.CodeUnauthorized, Message: "unknown bearer token"})
			return
		}
		// A valid token scoped to another tenant gets the same answer as
		// a nonexistent tenant: no cross-tenant existence probing.
		if t == nil || tokTenant != pathTenant {
			fail(&apiv1.Error{Code: apiv1.CodeUnknownTenant,
				Message: fmt.Sprintf("no tenant %q for this token", pathTenant)})
			return
		}
		if !t.limiter.allow(time.Now()) {
			s.metrics.Counter("serve.rate_limited").Inc()
			w.Header().Set("Retry-After", strconv.Itoa(int(t.limiter.retryAfter()/time.Second)))
			fail(&apiv1.Error{Code: apiv1.CodeRateLimited,
				Message: fmt.Sprintf("tenant %q over its request rate", pathTenant)})
			return
		}
		in, release := t.acquire()
		if in == nil {
			fail(&apiv1.Error{Code: apiv1.CodeInternal, Message: "tenant shutting down"})
			return
		}
		defer release()
		s.metrics.Counter("serve.tenant." + pathTenant + ".requests").Inc()

		r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
		rc := &requestContext{tenant: t, inst: in, corr: corr,
			ctx: plabi.WithCorrelationID(r.Context(), corr)}
		if e := h(w, r, rc); e != nil {
			fail(e)
		}
		s.metrics.Histogram("serve." + op).Observe(time.Since(start))
	}
}

// bearerToken extracts the Authorization bearer token.
func bearerToken(r *http.Request) (string, bool) {
	auth := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if len(auth) <= len(prefix) || !strings.EqualFold(auth[:len(prefix)], prefix) {
		return "", false
	}
	return auth[len(prefix):], true
}

// writeError serves a typed error envelope with the code's HTTP status.
func writeError(w http.ResponseWriter, e *apiv1.Error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(e.Code.HTTPStatus())
	_ = json.NewEncoder(w).Encode(apiv1.ErrorEnvelope{Error: e})
}

// writeJSON serves a 200 JSON body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// decodeBody decodes a JSON request body strictly.
func decodeBody(r *http.Request, v any) *apiv1.Error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return &apiv1.Error{Code: apiv1.CodeBadRequest, Message: "invalid request body: " + err.Error()}
	}
	return nil
}

// engineError maps an engine failure onto the wire contract.
func engineError(op string, err error) *apiv1.Error {
	var be *plabi.BlockedError
	switch {
	case errors.As(err, &be):
		return &apiv1.Error{Code: apiv1.CodeBlocked,
			Message:   fmt.Sprintf("%s refused by PLA enforcement", op),
			Decisions: wireDecisions(be.Decisions)}
	case errors.Is(err, plabi.ErrPLAViolation):
		return &apiv1.Error{Code: apiv1.CodeBlocked,
			Message: fmt.Sprintf("%s refused by PLA enforcement", op)}
	case errors.Is(err, plabi.ErrUnknownReport):
		return &apiv1.Error{Code: apiv1.CodeUnknownReport, Message: err.Error()}
	case errors.Is(err, plabi.ErrAuditUnavailable):
		return &apiv1.Error{Code: apiv1.CodeAuditUnavailable,
			Message: "audit sink unavailable; fail-closed tenant refuses un-audited delivery"}
	default:
		return &apiv1.Error{Code: apiv1.CodeInternal, Message: err.Error()}
	}
}

// wireDecisions converts engine decisions to their wire form.
func wireDecisions(ds []plabi.Decision) []apiv1.Decision {
	out := make([]apiv1.Decision, len(ds))
	for i, d := range ds {
		out[i] = apiv1.Decision{
			Outcome: d.Outcome.String(),
			Rule:    d.Rule,
			Subject: d.Subject,
			PLAs:    append([]string(nil), d.PLAs...),
			Detail:  d.Detail,
		}
	}
	return out
}

func (s *Server) handleRender(w http.ResponseWriter, r *http.Request, rc *requestContext) *apiv1.Error {
	var req apiv1.RenderRequest
	if e := decodeBody(r, &req); e != nil {
		return e
	}
	if req.Report == "" || req.Consumer.Role == "" {
		return &apiv1.Error{Code: apiv1.CodeBadRequest, Message: "report and consumer.role are required"}
	}
	if req.MaxRows < 0 {
		return &apiv1.Error{Code: apiv1.CodeBadRequest, Message: "max_rows cannot be negative"}
	}
	enf, err := rc.inst.eng.Render(rc.ctx, req.Report, plabi.Consumer{
		Name: req.Consumer.Name, Role: req.Consumer.Role, Purpose: req.Consumer.Purpose})
	if err != nil {
		return engineError("render "+req.Report, err)
	}
	resp := apiv1.RenderResponse{
		Tenant:         rc.tenant.name,
		Report:         req.Report,
		CorrelationID:  rc.corr,
		TotalRows:      enf.Table.NumRows(),
		Decisions:      wireDecisions(enf.Decisions),
		MaskedCells:    enf.MaskedCells,
		SuppressedRows: enf.SuppressedRows,
		CacheHit:       enf.CacheHit,
	}
	if !req.OmitRows {
		for _, c := range enf.Table.Schema.Columns {
			resp.Columns = append(resp.Columns, apiv1.Column{Name: c.Name, Type: c.Type.String()})
		}
		n := enf.Table.NumRows()
		if req.MaxRows > 0 && n > req.MaxRows {
			n = req.MaxRows
			resp.Truncated = true
		}
		resp.Rows = make([][]string, n)
		for i := 0; i < n; i++ {
			row := make([]string, len(enf.Table.Rows[i]))
			for j, v := range enf.Table.Rows[i] {
				row[j] = v.String()
			}
			resp.Rows[i] = row
		}
	}
	s.metrics.Counter("serve.render.rows").Add(uint64(len(resp.Rows)))
	writeJSON(w, &resp)
	return nil
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request, rc *requestContext) *apiv1.Error {
	var req apiv1.CheckRequest
	if e := decodeBody(r, &req); e != nil {
		return e
	}
	if req.Report == "" || req.Consumer.Role == "" {
		return &apiv1.Error{Code: apiv1.CodeBadRequest, Message: "report and consumer.role are required"}
	}
	findings, err := rc.inst.eng.CheckReportCompliance(rc.ctx, req.Report, plabi.Consumer{
		Name: req.Consumer.Name, Role: req.Consumer.Role, Purpose: req.Consumer.Purpose})
	if err != nil {
		return engineError("check "+req.Report, err)
	}
	writeJSON(w, &apiv1.CheckResponse{
		Tenant: rc.tenant.name, Report: req.Report, CorrelationID: rc.corr,
		Compliant: len(findings) == 0, Findings: wireDecisions(findings),
	})
	return nil
}

func (s *Server) handleLint(w http.ResponseWriter, r *http.Request, rc *requestContext) *apiv1.Error {
	var req apiv1.LintRequest
	if e := decodeBody(r, &req); e != nil {
		return e
	}
	min := lint.SevInfo
	if req.MinSeverity != "" {
		var err error
		if min, err = lint.ParseSeverity(req.MinSeverity); err != nil {
			return &apiv1.Error{Code: apiv1.CodeBadRequest, Message: err.Error()}
		}
	}
	var findings []lint.Finding
	if req.Source == "" {
		findings = rc.inst.eng.Lint()
	} else {
		// Standalone document: agreement-level analyzers only, same as
		// plalint over a file that is not attached to a deployment.
		plas, err := policy.ParseFileNamed("request.pla", req.Source)
		if err != nil {
			return &apiv1.Error{Code: apiv1.CodeBadRequest, Message: err.Error()}
		}
		reg := policy.NewRegistry()
		for _, p := range plas {
			if err := reg.Add(p); err != nil {
				return &apiv1.Error{Code: apiv1.CodeBadRequest, Message: err.Error()}
			}
		}
		findings = lint.Run(&lint.Pass{PLAs: plas, Registry: reg})
	}
	resp := apiv1.LintResponse{Tenant: rc.tenant.name, CorrelationID: rc.corr, Clean: true}
	for _, f := range findings {
		if f.Severity < min {
			continue
		}
		resp.Clean = false
		resp.Findings = append(resp.Findings, apiv1.LintFinding{
			Code: f.Code, Severity: f.Severity.String(), Level: f.Level.String(),
			Pos: f.Pos.String(), Subject: f.Subject, Message: f.Message,
			PLAs: append([]string(nil), f.PLAs...),
		})
	}
	writeJSON(w, &resp)
	return nil
}

func (s *Server) handleReports(w http.ResponseWriter, _ *http.Request, rc *requestContext) *apiv1.Error {
	defs := rc.inst.eng.Reports()
	infos := make([]apiv1.ReportInfo, 0, len(defs))
	for _, d := range defs {
		infos = append(infos, apiv1.ReportInfo{
			ID: d.ID, Title: d.Title, Query: d.Query,
			Roles: append([]string(nil), d.Roles...), Purpose: d.Purpose, Version: d.Version,
			Meta: rc.inst.eng.Assignment(d.ID),
		})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	writeJSON(w, &apiv1.ReportsResponse{
		Tenant: rc.tenant.name, CorrelationID: rc.corr, Reports: infos,
	})
	return nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	resp := apiv1.HealthResponse{Status: "ok"}
	if s.closed.Load() {
		resp.Status = "shutting-down"
	}
	s.mu.RLock()
	tenants := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		tenants = append(tenants, t)
	}
	s.mu.RUnlock()
	for _, t := range tenants {
		in, release := t.acquire()
		if in == nil {
			continue
		}
		resp.Tenants = append(resp.Tenants, apiv1.TenantHealth{
			Name: t.name, Version: in.version, Reports: len(in.eng.Reports()),
		})
		release()
	}
	sort.Slice(resp.Tenants, func(i, j int) bool { return resp.Tenants[i].Name < resp.Tenants[j].Name })
	writeJSON(w, &resp)
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	tok, ok := bearerToken(r)
	s.mu.RLock()
	admin := ok && s.adminTokens[tok]
	s.mu.RUnlock()
	if !admin {
		writeError(w, &apiv1.Error{Code: apiv1.CodeUnauthorized, Message: "admin token required"})
		return
	}
	force := r.URL.Query().Get("force") == "1"
	resp, err := s.reloadFromManifestFile(force)
	if err != nil {
		var rej *ReloadRejectedError
		if errors.As(err, &rej) {
			writeError(w, &apiv1.Error{Code: apiv1.CodeReloadRejected,
				Message: rej.Error(),
				Impacts: wireFindings(plabi.ImpactFindings(rej.Impacts))})
			return
		}
		writeError(w, &apiv1.Error{Code: apiv1.CodeInternal, Message: err.Error()})
		return
	}
	writeJSON(w, resp)
}

// wireFindings converts lint findings to their /v1 wire shape.
func wireFindings(fs []lint.Finding) []apiv1.LintFinding {
	var out []apiv1.LintFinding
	for _, f := range fs {
		out = append(out, apiv1.LintFinding{
			Code: f.Code, Severity: f.Severity.String(), Level: f.Level.String(),
			Pos: f.Pos.String(), Subject: f.Subject, Message: f.Message,
			PLAs: append([]string(nil), f.PLAs...),
		})
	}
	return out
}
