// Scale benchmarks for the out-of-core storage layer: the flagship
// render and the prescriptions join run side-by-side fully in-memory and
// segment-backed (storage=memory vs storage=segment in the same run),
// plus a zone-map pruning benchmark over a selective filter and a
// memory-ceiling test that streams rows through a SegmentWriter and
// asserts the scan working set stays under a budget far below the
// table's in-memory footprint.
//
// Scales: 50k rows by default (so the suite is cheap enough for the
// ordinary test lane), 1M with PLABI_SCALE=1 (the CI scale-bench lane),
// 10M with PLABI_SCALE_10M=1 (opt-in, for the README trajectory).
// cmd/benchjson parses the output of
//
//	go test -run '^$' -bench '^BenchmarkCore(RenderSegment|JoinSegment|ScanPruned)' -benchmem
//
// into BENCH_scale.json; -check-scale enforces the pruning floor and the
// segment-vs-memory peak-heap ordering.
package plabi

import (
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"testing"
	"time"
	"unsafe"

	"plabi/internal/core"
	"plabi/internal/obs"
	"plabi/internal/relation"
	"plabi/internal/report"
	"plabi/internal/workload"
)

// scaleRows picks the row count for the scale suite.
func scaleRows() int {
	if os.Getenv("PLABI_SCALE_10M") == "1" {
		return 10_000_000
	}
	if os.Getenv("PLABI_SCALE") == "1" {
		return 1_000_000
	}
	return 50_000
}

// heapWatcher samples runtime.ReadMemStats in the background and records
// the peak HeapAlloc seen. Sampling every 10ms keeps the stop-the-world
// cost low while still catching the steady-state working set; short
// transient spikes between samples are invisible, so peaks are a floor,
// not an exact maximum.
type heapWatcher struct {
	stop chan struct{}
	done chan struct{}
	peak uint64
}

func watchHeap() *heapWatcher {
	w := &heapWatcher{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(w.done)
		var ms runtime.MemStats
		t := time.NewTicker(10 * time.Millisecond)
		defer t.Stop()
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > w.peak {
				w.peak = ms.HeapAlloc
			}
			select {
			case <-w.stop:
				return
			case <-t.C:
			}
		}
	}()
	return w
}

// Peak stops the watcher and returns the highest HeapAlloc sampled.
func (w *heapWatcher) Peak() uint64 {
	close(w.stop)
	<-w.done
	return w.peak
}

// storageModes pairs the sub-benchmark label with the segment-store hook
// it applies. storage=memory is measured in the same run as
// storage=segment so the BENCH_scale.json ratios never compare across
// machines or commits.
var storageModes = []struct {
	name    string
	segment bool
}{
	{"memory", false},
	{"segment", true},
}

// scaleEngines caches the expensive 1M-row engines across benchmark
// re-invocations: go test re-runs the leaf function for the warmup and
// every measured b.N, and a full ETL build at scale costs minutes.
// Sharing one engine means the measured renders are steady-state
// (plan/provenance caches warm) for both storage modes alike. Segment
// directories go to os.MkdirTemp because b.TempDir is cleaned between
// invocations; the OS temp dir reclaims them.
var scaleEngines sync.Map // "n/storage" -> *core.Engine

func scaleEngineFor(b *testing.B, n int, segment bool) *core.Engine {
	b.Helper()
	key := fmt.Sprintf("%d/%v", n, segment)
	// Drop engines of other configurations first: leaf benchmarks run to
	// completion one after another, and a cached sibling engine resident
	// in the heap would inflate this one's peak_alloc_bytes sample.
	scaleEngines.Range(func(k, v any) bool {
		if k.(string) != key {
			scaleEngines.Delete(k)
		}
		return true
	})
	if v, ok := scaleEngines.Load(key); ok {
		return v.(*core.Engine)
	}
	cfg := workload.DefaultConfig(42)
	cfg.Prescriptions = n
	cfg.Patients = n / 10
	cfg.LabResults = n / 10
	e, _, err := core.BuildHealthcareEngineWith(cfg, func(e *core.Engine) {
		if segment {
			dir, err := os.MkdirTemp("", "plabi-scale-")
			if err != nil {
				b.Fatal(err)
			}
			e.SetSegmentStore(dir)
			e.SetSpillThreshold(1)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
	scaleEngines.Store(key, e)
	return e
}

// BenchmarkCoreRenderSegment measures the full enforced render of the
// flagship drug-consumption report with every ETL staging table spilled
// to on-disk columnar segments, against the identical fully in-memory
// engine. Both sides report peak_alloc_bytes; at scale the segment side
// must peak below the in-memory side (enforced by benchjson
// -check-scale).
func BenchmarkCoreRenderSegment(b *testing.B) {
	n := scaleRows()
	b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
		for _, st := range storageModes {
			b.Run("storage="+st.name, func(b *testing.B) {
				prev := relation.SetExecMode(relation.ExecVectorized)
				defer relation.SetExecMode(prev)
				e := scaleEngineFor(b, n, st.segment)
				consumer := report.Consumer{Name: "bench", Role: "analyst", Purpose: "quality"}
				runtime.GC()
				w := watchHeap()
				b.ResetTimer()
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					enf, err := e.Render("drug-consumption", consumer)
					if err != nil {
						b.Fatal(err)
					}
					if enf.Table.NumRows() == 0 {
						b.Fatal("all rows suppressed")
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(w.Peak()), "peak_alloc_bytes")
			})
		}
	})
}

// BenchmarkCoreJoinSegment measures the prescriptions ⋈ drugcost hash
// join with the probe side segment-backed (streamed partition-wise
// through the scan path) against the fully in-memory join.
func BenchmarkCoreJoinSegment(b *testing.B) {
	n := scaleRows()
	b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
		ds := benchDataset(b, n)
		for _, st := range storageModes {
			b.Run("storage="+st.name, func(b *testing.B) {
				prev := relation.SetExecMode(relation.ExecVectorized)
				defer relation.SetExecMode(prev)
				left := ds.Prescriptions
				if st.segment {
					s := relation.NewSegmentStore(b.TempDir())
					spilled, err := s.Spill(left)
					if err != nil {
						b.Fatal(err)
					}
					left = spilled
				}
				l := relation.Rename(left, "p")
				r := relation.Rename(ds.DrugCost, "c")
				pred := relation.Eq(relation.ColRefExpr("p.drug"), relation.ColRefExpr("c.drug"))
				b.ResetTimer()
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					out, err := relation.Join(l, r, pred, relation.InnerJoin)
					if err != nil {
						b.Fatal(err)
					}
					if out.NumRows() == 0 {
						b.Fatal("empty join")
					}
				}
			})
		}
	})
}

// scaleSchema is the synthetic wide-ish fact table used by the pruning
// benchmark and the memory-ceiling test: a monotone int key plus string
// and float payload.
func scaleSchema() *relation.Schema {
	return relation.NewSchema(
		relation.Col("id", relation.TInt),
		relation.Col("patient", relation.TString),
		relation.Col("drug", relation.TString),
		relation.Col("cost", relation.TFloat),
	)
}

func scaleRow(i int) relation.Row {
	return relation.Row{
		relation.Int(int64(i)),
		relation.Str(fmt.Sprintf("patient-%07d", i%100000)),
		relation.Str(fmt.Sprintf("drug-%03d", i%500)),
		relation.Float(float64(i%997) * 1.25),
	}
}

// streamScaleTable streams n synthetic rows into a fresh segment writer
// without ever materializing the table in memory; only one partition is
// buffered at a time.
func streamScaleTable(tb testing.TB, s *relation.SegmentStore, n int) *relation.Table {
	tb.Helper()
	w, err := s.NewWriter("facts", scaleSchema())
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := w.Append(scaleRow(i)); err != nil {
			tb.Fatal(err)
		}
	}
	t, err := w.Close()
	if err != nil {
		tb.Fatal(err)
	}
	return t
}

// BenchmarkCoreScanPruned measures a selective filter (id < n/4) over a
// segment-backed table cut into 64 partitions: the monotone key gives
// every partition a tight zone map, so ~3/4 of the segments are skipped
// without touching disk. Reports pruned_segments / segments_total /
// pruned_frac per op; benchjson -check-scale enforces the ≥50% floor.
func BenchmarkCoreScanPruned(b *testing.B) {
	n := scaleRows()
	b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
		prev := relation.SetExecMode(relation.ExecVectorized)
		defer relation.SetExecMode(prev)
		m := obs.New()
		s := relation.NewSegmentStore(b.TempDir())
		s.SetMetrics(m)
		s.SetPartitionRows((n + 63) / 64)
		tab := streamScaleTable(b, s, n)
		pred := relation.Bin(relation.OpLt, relation.ColRefExpr("id"), relation.Lit(relation.Int(int64(n/4))))
		segs := m.Counter("segment.read.segments")
		pruned := m.Counter("segment.read.pruned")
		segs0, pruned0 := segs.Value(), pruned.Value()
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, err := relation.Select(tab, pred)
			if err != nil {
				b.Fatal(err)
			}
			if got := out.NumRows(); got != n/4 {
				b.Fatalf("selected %d rows, want %d", got, n/4)
			}
		}
		b.StopTimer()
		// segment.read.segments counts scanned (surviving) segments only;
		// the partition total is scanned + pruned.
		scannedPerOp := float64(segs.Value()-segs0) / float64(b.N)
		prunedPerOp := float64(pruned.Value()-pruned0) / float64(b.N)
		totalPerOp := scannedPerOp + prunedPerOp
		b.ReportMetric(prunedPerOp, "pruned_segments")
		b.ReportMetric(totalPerOp, "segments_total")
		if totalPerOp > 0 {
			b.ReportMetric(prunedPerOp/totalPerOp, "pruned_frac")
		}
	})
}

// TestScaleMemoryCeiling streams a 1M-row (10M with PLABI_SCALE_10M=1)
// table through a SegmentWriter and scans it back — a selective pruned
// filter plus a full unpruned pass — while sampling peak HeapAlloc. The
// peak must stay under a budget of half the table's estimated in-memory
// footprint, with the Go runtime's soft memory limit pinned to the
// budget for the duration: out-of-core means the working set is bounded
// by partitions in flight, not by table size. Skipped unless
// PLABI_SCALE=1 (the CI scale-bench lane) so the ordinary test lane
// stays fast.
func TestScaleMemoryCeiling(t *testing.T) {
	if os.Getenv("PLABI_SCALE") != "1" && os.Getenv("PLABI_SCALE_10M") != "1" {
		t.Skip("set PLABI_SCALE=1 to run the memory-ceiling check")
	}
	n := scaleRows()
	// Estimated fully-materialized footprint: slice header + Value array
	// per row, plus the string payload bytes. Deliberately conservative
	// (ignores allocator overhead and lineage), so the budget it halves is
	// an under- not over-estimate of what the in-memory path would need.
	valSize := int(unsafe.Sizeof(relation.Value{}))
	cols := scaleSchema().Len()
	inMem := uint64(n) * uint64(24+cols*valSize+len("patient-0000000")+len("drug-000"))
	budget := inMem / 2
	prevLimit := debug.SetMemoryLimit(int64(budget))
	defer debug.SetMemoryLimit(prevLimit)

	s := relation.NewSegmentStore(t.TempDir())
	s.SetPartitionRows(1 << 14)
	s.SetScanWorkers(4)
	runtime.GC()
	w := watchHeap()

	tab := streamScaleTable(t, s, n)
	pred := relation.Bin(relation.OpLt, relation.ColRefExpr("id"), relation.Lit(relation.Int(int64(n/10))))
	out, err := relation.Select(tab, pred)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.NumRows(); got != n/10 {
		t.Fatalf("pruned select: %d rows, want %d", got, n/10)
	}
	// Full unpruned pass: every partition decoded, streamed, discarded.
	sc := relation.NewScanner(tab, nil)
	scanned := 0
	for {
		batch, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if batch == nil {
			break
		}
		scanned += batch.Len()
	}
	sc.Close()
	if scanned != n {
		t.Fatalf("full scan saw %d rows, want %d", scanned, n)
	}
	// Render-shaped pass: a full aggregation over every row, streamed
	// partition-wise — the report path's access pattern without the
	// engine around it.
	agg, err := relation.GroupBy(tab, []string{"drug"}, []relation.AggSpec{
		{Kind: relation.AggCount}, {Kind: relation.AggSum, Col: "cost"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if agg.NumRows() != 500 {
		t.Fatalf("aggregate has %d groups, want 500", agg.NumRows())
	}

	peak := w.Peak()
	t.Logf("n=%d estimated in-memory footprint %.1f MB, budget %.1f MB, peak heap %.1f MB",
		n, float64(inMem)/1e6, float64(budget)/1e6, float64(peak)/1e6)
	if peak >= budget {
		t.Fatalf("peak heap %d bytes exceeds out-of-core budget %d (in-memory estimate %d)", peak, budget, inMem)
	}
}
