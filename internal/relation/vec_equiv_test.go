package relation

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// The vectorized kernels must be observationally identical to the
// row-at-a-time reference implementations: same rows in the same order,
// same lineage sets, same column origins, same schema types, same errors.
// These property tests compare both paths on randomized tables and
// predicates. The compiled mode is checked alongside: inside the
// relational kernels ExecCompiled must behave exactly as ExecVectorized
// (residual-program specialization lives in the enforcement layer above).

// withBothModes runs op under each execution mode and returns the
// vectorized and row-at-a-time results; the compiled-mode run is
// asserted identical to the vectorized one in place.
func withBothModes(t *testing.T, op func() (*Table, error)) (vec, row *Table, vecErr, rowErr error) {
	t.Helper()
	prev := SetExecMode(ExecVectorized)
	vec, vecErr = op()
	SetExecMode(ExecCompiled)
	compiled, compiledErr := op()
	SetExecMode(ExecRowAtATime)
	row, rowErr = op()
	SetExecMode(prev)
	requireSameOutcome(t, "compiled-vs-vectorized", vec, compiled, vecErr, compiledErr)
	return vec, row, vecErr, rowErr
}

// requireSameOutcome fails the test unless the two paths produced the
// same table (or the same error).
func requireSameOutcome(t *testing.T, label string, vec, row *Table, vecErr, rowErr error) {
	t.Helper()
	if (vecErr == nil) != (rowErr == nil) {
		t.Fatalf("%s: error mismatch: vectorized=%v row=%v", label, vecErr, rowErr)
	}
	if vecErr != nil {
		if vecErr.Error() != rowErr.Error() {
			t.Fatalf("%s: error text mismatch:\n  vectorized: %v\n  row:        %v", label, vecErr, rowErr)
		}
		return
	}
	requireSameTable(t, label, vec, row)
}

func requireSameTable(t *testing.T, label string, vec, row *Table) {
	t.Helper()
	if !reflect.DeepEqual(vec.Schema, row.Schema) {
		t.Fatalf("%s: schema mismatch:\n  vectorized: %v\n  row:        %v", label, vec.Schema, row.Schema)
	}
	if len(vec.Rows) != len(row.Rows) {
		t.Fatalf("%s: row count mismatch: vectorized=%d row=%d", label, len(vec.Rows), len(row.Rows))
	}
	for i := range vec.Rows {
		if !sameRow(vec.Rows[i], row.Rows[i]) {
			t.Fatalf("%s: row %d mismatch:\n  vectorized: %v\n  row:        %v", label, i, vec.Rows[i], row.Rows[i])
		}
	}
	if len(vec.Lineage) != len(row.Lineage) {
		t.Fatalf("%s: lineage length mismatch: %d vs %d", label, len(vec.Lineage), len(row.Lineage))
	}
	for i := range vec.Lineage {
		if !reflect.DeepEqual(vec.Lineage[i], row.Lineage[i]) {
			t.Fatalf("%s: lineage %d mismatch:\n  vectorized: %v\n  row:        %v", label, i, vec.Lineage[i], row.Lineage[i])
		}
	}
	if len(vec.ColOrigin) != len(row.ColOrigin) {
		t.Fatalf("%s: origin length mismatch: %d vs %d", label, len(vec.ColOrigin), len(row.ColOrigin))
	}
	for i := range vec.ColOrigin {
		if !reflect.DeepEqual(vec.ColOrigin[i], row.ColOrigin[i]) {
			t.Fatalf("%s: column origin %d mismatch:\n  vectorized: %v\n  row:        %v", label, i, vec.ColOrigin[i], row.ColOrigin[i])
		}
	}
	// Rendering covers Value.String of every cell.
	if vec.String() != row.String() {
		t.Fatalf("%s: rendered table mismatch:\n%s\nvs\n%s", label, vec.String(), row.String())
	}
}

// sameRow compares cells bitwise-for-floats: reflect.DeepEqual rejects
// NaN == NaN, but for equivalence purposes identical bit patterns (and
// identical time instants) are the same cell.
func sameRow(a, b Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Kind != y.Kind {
			return false
		}
		switch x.Kind {
		case TFloat:
			if math.Float64bits(x.F) != math.Float64bits(y.F) {
				return false
			}
		case TDate:
			if !x.T.Equal(y.T) {
				return false
			}
		default:
			if x != y {
				return false
			}
		}
	}
	return true
}

// randValue draws a value of roughly the given kind with a small domain so
// joins and groups collide often. Edge values (NaN, integral floats,
// negative zero, empty strings) appear deliberately.
func randValue(rng *rand.Rand, kind Type) Value {
	if rng.Intn(8) == 0 {
		return Null()
	}
	switch kind {
	case TString:
		pool := []string{"", "a", "b", "ab", "HIV", "flu", "x y", "aspirin"}
		return Str(pool[rng.Intn(len(pool))])
	case TInt:
		return Int(int64(rng.Intn(7) - 3))
	case TFloat:
		pool := []float64{0, math.Copysign(0, -1), 1, 2, 2.5, -3.25, 2, math.NaN(), math.Inf(1), 1e16}
		return Float(pool[rng.Intn(len(pool))])
	case TBool:
		return Bool(rng.Intn(2) == 0)
	case TDate:
		return DateYMD(2007, time.Month(1+rng.Intn(3)), 1+rng.Intn(5))
	default:
		return Null()
	}
}

// randTable builds a table with typed columns; with some probability a
// column is polluted with a mixed-kind value (schemas are advisory), and
// with some probability the table is derived with synthetic lineage.
func randTable(rng *rand.Rand, name string, nCols, nRows int) *Table {
	kinds := []Type{TString, TInt, TFloat, TBool, TDate}
	cols := make([]Column, nCols)
	colKinds := make([]Type, nCols)
	for c := 0; c < nCols; c++ {
		colKinds[c] = kinds[rng.Intn(len(kinds))]
		cols[c] = Column{Name: fmt.Sprintf("c%d", c), Type: colKinds[c]}
	}
	t := NewBase(name, &Schema{Columns: cols})
	for r := 0; r < nRows; r++ {
		row := make(Row, nCols)
		for c := 0; c < nCols; c++ {
			if rng.Intn(20) == 0 { // mixed-kind pollution
				row[c] = randValue(rng, kinds[rng.Intn(len(kinds))])
			} else {
				row[c] = randValue(rng, colKinds[c])
			}
		}
		t.Rows = append(t.Rows, row)
	}
	if rng.Intn(3) == 0 {
		// Make it a derived table with synthetic multi-ref lineage.
		t.Base = false
		t.Lineage = make([]LineageSet, nRows)
		t.ColOrigin = make([]ColRefSet, nCols)
		for r := 0; r < nRows; r++ {
			var ls LineageSet
			for k := 0; k <= rng.Intn(3); k++ {
				ls = append(ls, RowRef{Table: "src" + string(rune('a'+rng.Intn(2))), Row: rng.Intn(10)})
			}
			t.Lineage[r] = ls.normalize()
		}
		for c := 0; c < nCols; c++ {
			t.ColOrigin[c] = ColRefSet{{Table: "srca", Column: fmt.Sprintf("o%d", c)}}.normalize()
		}
	}
	return t
}

// randPredicate builds a random predicate over s, spanning both the
// kernel-supported shapes and fallback shapes (arithmetic, functions,
// occasionally an unknown column to exercise error equivalence).
func randPredicate(rng *rand.Rand, s *Schema, depth int) Expr {
	col := func() Expr {
		if rng.Intn(12) == 0 {
			return ColRefExpr("no_such_col")
		}
		return ColRefExpr(s.Columns[rng.Intn(len(s.Columns))].Name)
	}
	lit := func() Expr {
		kinds := []Type{TString, TInt, TFloat, TBool, TDate}
		return Lit(randValue(rng, kinds[rng.Intn(len(kinds))]))
	}
	cmps := []BinOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
	if depth <= 0 {
		switch rng.Intn(8) {
		case 0:
			return Bin(cmps[rng.Intn(len(cmps))], col(), col())
		case 1:
			return Bin(cmps[rng.Intn(len(cmps))], lit(), col())
		case 2:
			return IsNull(col())
		case 3:
			return IsNotNull(col())
		case 4:
			return In(col(), lit(), lit(), lit())
		case 5:
			return Bin(OpLike, col(), Lit(Str("a%")))
		case 6:
			// Arithmetic comparison: no kernel, exercises the compiled
			// fallback.
			return Bin(cmps[rng.Intn(len(cmps))], Bin(OpAdd, col(), lit()), lit())
		default:
			return Bin(cmps[rng.Intn(len(cmps))], col(), lit())
		}
	}
	switch rng.Intn(4) {
	case 0:
		return And(randPredicate(rng, s, depth-1), randPredicate(rng, s, depth-1))
	case 1:
		return Or(randPredicate(rng, s, depth-1), randPredicate(rng, s, depth-1))
	case 2:
		return Not(randPredicate(rng, s, depth-1))
	default:
		return randPredicate(rng, s, depth-1)
	}
}

func TestSelectEquivalence(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tab := randTable(rng, "t", 2+rng.Intn(3), rng.Intn(40))
		pred := randPredicate(rng, tab.Schema, rng.Intn(3))
		vec, row, ve, re := withBothModes(t, func() (*Table, error) { return Select(tab, pred) })
		requireSameOutcome(t, fmt.Sprintf("select seed=%d pred=%s", seed, pred), vec, row, ve, re)
	}
}

func TestProjectExtendEquivalence(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed + 1000))
		tab := randTable(rng, "t", 3+rng.Intn(2), rng.Intn(40))
		cols := []ProjCol{
			P("c0"),
			PAs(Bin(OpAdd, ColRefExpr("c1"), Lit(Int(1))), "c1p"),
			PAs(Fn("COALESCE", ColRefExpr("c2"), Lit(Str("?"))), "c2c"),
		}
		if rng.Intn(6) == 0 {
			cols = append(cols, P("missing"))
		}
		vec, row, ve, re := withBothModes(t, func() (*Table, error) { return Project(tab, cols...) })
		requireSameOutcome(t, fmt.Sprintf("project seed=%d", seed), vec, row, ve, re)

		ext := randPredicate(rng, tab.Schema, 1)
		vec, row, ve, re = withBothModes(t, func() (*Table, error) { return Extend(tab, "x", ext) })
		requireSameOutcome(t, fmt.Sprintf("extend seed=%d expr=%s", seed, ext), vec, row, ve, re)
	}
}

func TestJoinEquivalence(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed + 2000))
		l := randTable(rng, "l", 2+rng.Intn(2), rng.Intn(25))
		r := randTable(rng, "r", 2+rng.Intn(2), rng.Intn(25))
		lq := Rename(l, "l")
		rq := Rename(r, "r")
		kind := InnerJoin
		if rng.Intn(3) == 0 {
			kind = LeftJoin
		}
		var pred Expr
		switch rng.Intn(5) {
		case 0: // single equi pair (reference fast path)
			pred = Eq(ColRefExpr("l.c0"), ColRefExpr("r.c0"))
		case 1: // two pairs
			pred = And(Eq(ColRefExpr("l.c0"), ColRefExpr("r.c0")),
				Eq(ColRefExpr("l.c1"), ColRefExpr("r.c1")))
		case 2: // pair + residual
			pred = And(Eq(ColRefExpr("l.c0"), ColRefExpr("r.c0")),
				Bin(OpNe, ColRefExpr("l.c1"), Lit(Int(0))))
		case 3: // non-equi
			pred = Bin(OpLt, ColRefExpr("l.c0"), ColRefExpr("r.c1"))
		default: // pair + unsafe residual (unknown column -> nested loop)
			pred = And(Eq(ColRefExpr("l.c0"), ColRefExpr("r.c0")),
				Eq(ColRefExpr("l.zzz"), Lit(Int(1))))
		}
		vec, row, ve, re := withBothModes(t, func() (*Table, error) { return Join(lq, rq, pred, kind) })
		requireSameOutcome(t, fmt.Sprintf("join seed=%d kind=%d pred=%s", seed, kind, pred), vec, row, ve, re)

		// The hash paths must also agree with the nested-loop baseline
		// whenever the predicate is total (no unknown columns).
		if ve == nil && rng.Intn(5) != 4 {
			nl, nlErr := NestedLoopJoin(lq, rq, pred, kind)
			if nlErr != nil {
				t.Fatalf("join seed=%d: nested-loop baseline errored: %v", seed, nlErr)
			}
			if pred != nil {
				if _, _, single := equiJoinCols(pred, lq.Schema, rq.Schema); !single {
					requireSameTable(t, fmt.Sprintf("join-vs-nested seed=%d pred=%s", seed, pred), vec, nl)
				}
			}
		}
	}
}

func TestGroupByEquivalence(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed + 3000))
		tab := randTable(rng, "t", 4, rng.Intn(60))
		var keys []string
		for k := 0; k <= rng.Intn(3); k++ {
			keys = append(keys, fmt.Sprintf("c%d", rng.Intn(3)))
		}
		if rng.Intn(5) == 0 {
			keys = nil // implicit single group
		}
		aggs := []AggSpec{
			{Kind: AggCount},
			{Kind: AggSum, Col: "c1"},
			{Kind: AggAvg, Col: "c2"},
			{Kind: AggMin, Col: "c3"},
			{Kind: AggMax, Col: "c3"},
			{Kind: AggCountDistinct, Col: "c0", As: "nd"},
		}
		if rng.Intn(8) == 0 {
			aggs = append(aggs, AggSpec{Kind: AggSum, Col: "missing"})
		}
		vec, row, ve, re := withBothModes(t, func() (*Table, error) { return GroupBy(tab, keys, aggs) })
		requireSameOutcome(t, fmt.Sprintf("groupby seed=%d keys=%v", seed, keys), vec, row, ve, re)
	}
}

func TestDistinctEquivalence(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed + 4000))
		tab := randTable(rng, "t", 1+rng.Intn(3), rng.Intn(60))
		vec, row, ve, re := withBothModes(t, func() (*Table, error) { return Distinct(tab), nil })
		requireSameOutcome(t, fmt.Sprintf("distinct seed=%d", seed), vec, row, ve, re)
	}
}

// TestPipelineEquivalence chains operators the way the SQL executor does:
// join, filter, group, distinct, sort — results must match end to end.
func TestPipelineEquivalence(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed + 5000))
		l := randTable(rng, "lhs", 3, 5+rng.Intn(30))
		r := randTable(rng, "rhs", 3, 5+rng.Intn(15))
		run := func() (*Table, error) {
			j, err := Join(Rename(l, "l"), Rename(r, "r"),
				Eq(ColRefExpr("l.c0"), ColRefExpr("r.c0")), InnerJoin)
			if err != nil {
				return nil, err
			}
			f, err := Select(j, IsNotNull(ColRefExpr("l.c1")))
			if err != nil {
				return nil, err
			}
			g, err := GroupBy(f, []string{"l.c0"}, []AggSpec{
				{Kind: AggCount, As: "n"}, {Kind: AggMin, Col: "l.c2", As: "lo"}})
			if err != nil {
				return nil, err
			}
			d := Distinct(g)
			return Sort(d, SortKey{Col: "n", Desc: true}, SortKey{Col: "c0"})
		}
		vec, row, ve, re := withBothModes(t, func() (*Table, error) { return run() })
		requireSameOutcome(t, fmt.Sprintf("pipeline seed=%d", seed), vec, row, ve, re)
	}
}

// TestSafePredicate pins the planner gate: safe predicates resolve every
// column and scalar call; unsafe ones don't.
func TestSafePredicate(t *testing.T) {
	s := NewSchema(Col("a", TInt), Col("b", TString))
	cases := []struct {
		e    Expr
		safe bool
	}{
		{nil, true},
		{ColEqStr("b", "x"), true},
		{Eq(ColRefExpr("missing"), Lit(Int(1))), false},
		{Fn("UPPER", ColRefExpr("b")), true},
		{Fn("UPPER", ColRefExpr("b"), ColRefExpr("b")), false},
		{Fn("NOPE", ColRefExpr("b")), false},
		{And(ColEqStr("b", "x"), Bin(OpGt, ColRefExpr("a"), Lit(Int(0)))), true},
		{In(ColRefExpr("a"), Lit(Int(1)), Lit(Int(2))), true},
	}
	for i, c := range cases {
		if got := SafePredicate(c.e, s); got != c.safe {
			t.Errorf("case %d (%v): SafePredicate=%v, want %v", i, c.e, got, c.safe)
		}
	}
}

// TestBatchFilterKernels pins that the common predicate shapes actually
// take the kernel path (guarding against silent fallback regressions).
func TestBatchFilterKernels(t *testing.T) {
	tab := NewBase("t", NewSchema(Col("s", TString), Col("n", TInt)))
	tab.AppendVals(Str("a"), Int(1))
	tab.AppendVals(Str("b"), Int(2))
	tab.AppendVals(Null(), Int(3))
	b := NewBatch(tab)
	kernels := []Expr{
		ColEqStr("s", "a"),
		Bin(OpGt, ColRefExpr("n"), Lit(Int(1))),
		And(ColEqStr("s", "a"), Bin(OpLe, ColRefExpr("n"), Lit(Int(5)))),
		IsNull(ColRefExpr("s")),
		In(ColRefExpr("n"), Lit(Int(1)), Lit(Int(3))),
		Not(ColEqStr("s", "b")),
		Bin(OpLike, ColRefExpr("s"), Lit(Str("a%"))),
		Eq(ColRefExpr("s"), ColRefExpr("s")),
	}
	for i, e := range kernels {
		if _, ok := b.Filter(e); !ok {
			t.Errorf("kernel %d (%s): expected vectorized support", i, e)
		}
	}
	if _, ok := b.Filter(Bin(OpGt, Bin(OpAdd, ColRefExpr("n"), Lit(Int(1))), Lit(Int(1)))); ok {
		t.Error("arithmetic predicate should not claim kernel support")
	}
	sel, ok := b.Filter(ColEqStr("s", "a"))
	if !ok || sel.Count() != 1 || !sel.Get(0) {
		t.Errorf("filter bitmap wrong: ok=%v count=%d", ok, sel.Count())
	}
}
