package sql

import (
	"fmt"
	"math/rand"
	"testing"

	"plabi/internal/relation"
)

// TestImpliesSoundness is the key property of the implication engine:
// whenever Implies(r, m) holds, every concrete value satisfying r must
// satisfy m. (Completeness is not required — false negatives only force
// an unnecessary re-elicitation.)
func TestImpliesSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	col := relation.ColRef{Table: "t", Column: "x"}
	randPred := func() SimplePred {
		switch rng.Intn(4) {
		case 0:
			return SimplePred{Col: col, Op: relation.OpEq, Val: relation.Int(int64(rng.Intn(10)))}
		case 1:
			ops := []relation.BinOp{relation.OpLt, relation.OpLe, relation.OpGt, relation.OpGe, relation.OpNe}
			return SimplePred{Col: col, Op: ops[rng.Intn(len(ops))], Val: relation.Int(int64(rng.Intn(10)))}
		case 2:
			n := 1 + rng.Intn(3)
			vals := make([]relation.Value, n)
			for i := range vals {
				vals[i] = relation.Int(int64(rng.Intn(10)))
			}
			return SimplePred{Col: col, In: vals}
		default:
			n := 1 + rng.Intn(3)
			vals := make([]relation.Value, n)
			for i := range vals {
				vals[i] = relation.Int(int64(rng.Intn(10)))
			}
			return SimplePred{Col: col, In: vals, NotP: true}
		}
	}
	checked, implications := 0, 0
	for trial := 0; trial < 5000; trial++ {
		r, m := randPred(), randPred()
		if !Implies(r, m) {
			continue
		}
		implications++
		for v := int64(-2); v <= 12; v++ {
			val := relation.Int(v)
			if satisfies(val, r) && !satisfies(val, m) {
				t.Fatalf("unsound: %v implies %v but value %d satisfies only the premise", r, m, v)
			}
			checked++
		}
	}
	if implications < 100 {
		t.Fatalf("too few implications exercised: %d", implications)
	}
	t.Logf("checked %d values over %d implications", checked, implications)
}

// TestImpliesReflexiveTransitive: implication is reflexive on concrete
// predicate shapes, and transitive whenever the chain exists.
func TestImpliesReflexiveTransitive(t *testing.T) {
	col := relation.ColRef{Table: "t", Column: "x"}
	preds := []SimplePred{
		{Col: col, Op: relation.OpEq, Val: relation.Int(5)},
		{Col: col, Op: relation.OpGt, Val: relation.Int(3)},
		{Col: col, Op: relation.OpGe, Val: relation.Int(4)},
		{Col: col, Op: relation.OpNe, Val: relation.Int(0)},
		{Col: col, In: []relation.Value{relation.Int(4), relation.Int(5)}},
	}
	for _, p := range preds {
		if !Implies(p, p) {
			t.Errorf("not reflexive: %v", p)
		}
	}
	for _, a := range preds {
		for _, b := range preds {
			for _, c := range preds {
				if Implies(a, b) && Implies(b, c) && !Implies(a, c) {
					t.Errorf("not transitive: %v => %v => %v", a, b, c)
				}
			}
		}
	}
}

// TestGeneratedQueryRoundTrip: random queries from a small grammar must
// parse, render, re-parse to the identical rendering, and execute to the
// same result.
func TestGeneratedQueryRoundTrip(t *testing.T) {
	cat := testCatalog()
	rng := rand.New(rand.NewSource(7))
	cols := []string{"patient", "doctor", "drug", "disease"}
	filters := []string{
		"", "disease = 'HIV'", "disease <> 'HIV' AND drug = 'DR'",
		"patient LIKE 'A%'", "drug IN ('DH', 'DV', 'DM')",
		"date >= DATE '2007-06-01'", "doctor IS NOT NULL",
	}
	for trial := 0; trial < 200; trial++ {
		col := cols[rng.Intn(len(cols))]
		filter := filters[rng.Intn(len(filters))]
		shape := rng.Intn(3)
		var q string
		switch shape {
		case 0:
			q = fmt.Sprintf("SELECT %s FROM prescriptions", col)
		case 1:
			q = fmt.Sprintf("SELECT %s, COUNT(*) AS n FROM prescriptions", col)
		default:
			q = fmt.Sprintf("SELECT DISTINCT %s FROM prescriptions", col)
		}
		if filter != "" {
			q += " WHERE " + filter
		}
		if shape == 1 {
			q += " GROUP BY " + col
		}
		q += " ORDER BY " + col
		if rng.Intn(2) == 0 {
			q += fmt.Sprintf(" LIMIT %d", 1+rng.Intn(5))
		}

		sel, err := ParseSelect(q)
		if err != nil {
			t.Fatalf("Parse(%q): %v", q, err)
		}
		rendered := sel.String()
		again, err := ParseSelect(rendered)
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", rendered, err)
		}
		if again.String() != rendered {
			t.Fatalf("unstable rendering: %q -> %q", rendered, again.String())
		}
		r1, err := cat.Query(q)
		if err != nil {
			t.Fatalf("Query(%q): %v", q, err)
		}
		r2, err := cat.Query(rendered)
		if err != nil {
			t.Fatalf("Query(rendered %q): %v", rendered, err)
		}
		if r1.NumRows() != r2.NumRows() {
			t.Fatalf("row mismatch for %q: %d vs %d", q, r1.NumRows(), r2.NumRows())
		}
		for i := range r1.Rows {
			for c := range r1.Rows[i] {
				if r1.Rows[i][c].Key() != r2.Rows[i][c].Key() {
					t.Fatalf("cell mismatch for %q at (%d,%d)", q, i, c)
				}
			}
		}
	}
}

// TestProfileStableUnderRendering: profiling a query and profiling its
// canonical rendering yield the same structural summary.
func TestProfileStableUnderRendering(t *testing.T) {
	cat := testCatalog()
	queries := []string{
		"SELECT patient, drug FROM prescriptions WHERE disease = 'HIV'",
		"SELECT p.patient FROM prescriptions p JOIN drugcost d ON p.drug = d.drug WHERE d.cost > 20",
		"SELECT drug, COUNT(*) AS n FROM prescriptions GROUP BY drug",
	}
	for _, q := range queries {
		sel, err := ParseSelect(q)
		if err != nil {
			t.Fatal(err)
		}
		p1, err := ProfileQuery(cat, sel)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := ProfileSQL(cat, sel.String())
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprintf("%v", p1.BaseTables) != fmt.Sprintf("%v", p2.BaseTables) ||
			fmt.Sprintf("%v", p1.OutputCols) != fmt.Sprintf("%v", p2.OutputCols) ||
			len(p1.Conjuncts) != len(p2.Conjuncts) ||
			p1.Aggregated != p2.Aggregated {
			t.Errorf("profile drift for %q", q)
		}
	}
}
