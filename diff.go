package plabi

import (
	"fmt"
	"io"
	"os"
	"strings"

	"plabi/internal/diff"
	"plabi/internal/policy"
)

// Semantic policy-change impact analysis ("pladiff"): compares two
// deployment states and reports, per (report, role, purpose) triple, how
// the change moves the privacy boundary — NEW-ALLOW expansions, NEW-DENY
// regressions, loosened thresholds, weakened row filters, widened column
// release plans. The comparison runs over the compiled residual render
// programs, not the raw rule text. Codes are stable (PD000…PD005); see
// docs/DIFF.md.

// Impact is one semantic policy-change finding.
type Impact = diff.Impact

// Impact codes.
const (
	DiffTranslation = diff.CodeTranslation // PD000 compiler divergence
	DiffNewAllow    = diff.CodeNewAllow    // PD001 privilege expansion
	DiffNewDeny     = diff.CodeNewDeny     // PD002 new-deny regression
	DiffThreshold   = diff.CodeThreshold   // PD003 threshold change
	DiffRowFilter   = diff.CodeRowFilter   // PD004 row filter change
	DiffColumnPlan  = diff.CodeColumnPlan  // PD005 column plan widening
)

// Diff compares two engines' deployment states and returns the impact
// records in deterministic order.
func Diff(oldE, newE *Engine) ([]Impact, error) {
	return diff.Diff(oldE.core.DiffState(), newE.core.DiffState())
}

// DiffFiles compares two PLA bundles in the healthcare deployment
// context: each state is the standard scenario with the bundle's
// agreements layered on top (mirroring how plabid tenants compose a
// scenario with manifest extra PLAs). A tiny fixed workload keeps the
// comparison fast; impact analysis never reads data.
func DiffFiles(oldPath, newPath string) ([]Impact, error) {
	oldE, err := openDiffContext(oldPath)
	if err != nil {
		return nil, err
	}
	defer oldE.Close()
	newE, err := openDiffContext(newPath)
	if err != nil {
		return nil, err
	}
	defer newE.Close()
	return Diff(oldE, newE)
}

func openDiffContext(bundle string) (*Engine, error) {
	e, err := OpenHealthcare(HealthcareConfig{Seed: 1, Prescriptions: 60})
	if err != nil {
		return nil, err
	}
	if bundle != "" {
		src, err := os.ReadFile(bundle)
		if err != nil {
			e.Close()
			return nil, fmt.Errorf("diff: %w", err)
		}
		// A bundle with no agreements diffs against the bare scenario.
		if plas, perr := policy.ParseFileNamed(bundle, string(src)); perr != nil && len(plas) == 0 && strings.Contains(perr.Error(), "no PLA blocks") {
			return e, nil
		}
		if err := e.AddPLAs(string(src)); err != nil {
			e.Close()
			return nil, fmt.Errorf("diff: %s: %w", bundle, err)
		}
	}
	return e, nil
}

// ValidateBundle runs the PD000 translation validation over one
// deployment: the healthcare context with the named bundle layered on
// top (empty path validates the bare scenario). It is DiffFiles'
// single-state sibling, behind `pladiff -validate`.
func ValidateBundle(bundle string) ([]Impact, error) {
	e, err := openDiffContext(bundle)
	if err != nil {
		return nil, err
	}
	defer e.Close()
	return ValidateCompiled(e)
}

// ValidateCompiled is the translation-validation pass: for every
// (report, role, purpose) triple it cross-checks the compiled residual
// program against an independent recomputation from the interpreted
// composite, reporting any divergence as a PD000 compiler-soundness
// finding. An empty result proves the partial evaluator is faithful for
// this deployment.
func ValidateCompiled(e *Engine) ([]Impact, error) {
	return diff.Validate(e.core.DiffState())
}

// ImpactFindings converts impacts to lint findings (canonical order) so
// they flow through the lint renderers and severity filters.
func ImpactFindings(imps []Impact) []LintFinding { return diff.Findings(imps) }

// MaxImpactSeverity returns the highest severity among the impacts
// (LintInfo when empty).
func MaxImpactSeverity(imps []Impact) LintSeverity { return diff.MaxSeverity(imps) }

// FilterImpacts returns the impacts at or above the given severity.
func FilterImpacts(imps []Impact, min LintSeverity) []Impact { return diff.Filter(imps, min) }

// Expansions returns the error-severity impacts — the privilege
// expansions the plabid reload gate refuses.
func Expansions(imps []Impact) []Impact { return diff.Expansions(imps) }

// WriteImpactsText renders impacts one per line in the lint text form.
func WriteImpactsText(w io.Writer, imps []Impact) error { return diff.WriteText(w, imps) }

// WriteImpactsJSON renders impacts as a JSON array ([] when clean).
func WriteImpactsJSON(w io.Writer, imps []Impact) error { return diff.WriteJSON(w, imps) }
