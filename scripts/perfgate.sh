#!/usr/bin/env bash
# Perf-regression gate: compare two `go test -bench` outputs with benchstat
# and fail when the sec/op geomean regressed by more than LIMIT percent.
# Usage: perfgate.sh base_bench.txt pr_bench.txt
set -euo pipefail

BASE="$1"
PR="$2"
LIMIT="${PERF_REGRESSION_LIMIT:-15}"
# BENCHSTAT is overridable so the gate logic can be exercised without
# network access (tests feed it a stub that prints canned output).
BENCHSTAT="${BENCHSTAT:-go run golang.org/x/perf/cmd/benchstat@latest}"

out=$($BENCHSTAT "$BASE" "$PR")
echo "$out"

# benchstat prints one geomean row per metric table; the first table is
# sec/op. Its delta column looks like "+4.32%", "-1.10%", or "~".
delta=$(echo "$out" | awk '/^geomean/ { print $4; exit }')
if [ -z "$delta" ] || [ "$delta" = "~" ]; then
    echo "perfgate: no measurable geomean delta (ok)"
    exit 0
fi
num=$(echo "$delta" | tr -d '+%')
exceeds=$(awk -v d="$num" -v l="$LIMIT" 'BEGIN { print (d > l) ? 1 : 0 }')
case "$delta" in
+*)
    if [ "$exceeds" = "1" ]; then
        echo "perfgate: FAIL: sec/op geomean regressed by $delta (limit +${LIMIT}%)" >&2
        echo "perfgate: apply the 'perf-regression-ok' label if this is intentional" >&2
        exit 1
    fi
    ;;
esac
echo "perfgate: geomean delta $delta within +${LIMIT}% (ok)"
