package obs

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// correlationKey carries the correlation id through context.Context.
type correlationKey struct{}

// CorrelationID returns the correlation id attached to ctx ("" when the
// context carries none).
func CorrelationID(ctx context.Context) string {
	id, _ := ctx.Value(correlationKey{}).(string)
	return id
}

// WithCorrelationID returns a context carrying the given correlation id.
// Spans started under it — and the audit events of the operations they
// cover — share that id, so callers can stitch a request id from an
// outer system into the engine's telemetry.
func WithCorrelationID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, correlationKey{}, id)
}

// Attr is one span attribute (e.g. the deciding PLA id, the decision).
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one in-flight traced operation. Set attaches attributes; End
// records the duration into the "span.<name>" histogram and publishes
// the completed record to the registry's span ring. The nil span is a
// no-op.
type Span struct {
	m     *Metrics
	name  string
	id    string
	start time.Time

	mu    sync.Mutex
	attrs []Attr
	done  bool
}

// StartSpan opens a span named name. The returned context carries the
// span's correlation id: an id already present in ctx is reused (child
// spans correlate with their parent), otherwise a fresh deterministic id
// is drawn from the registry's atomic sequence. A nil registry returns
// ctx unchanged and a nil span.
func (m *Metrics) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if m == nil {
		return ctx, nil
	}
	id := CorrelationID(ctx)
	if id == "" {
		id = fmt.Sprintf("c%08d", m.tracer.seq.Add(1))
		ctx = WithCorrelationID(ctx, id)
	}
	return ctx, &Span{m: m, name: name, id: id, start: time.Now()}
}

// ID returns the span's correlation id ("" on the nil span).
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// Set attaches one attribute (last write for a key wins at read time via
// SpanRecord.Attr).
func (s *Span) Set(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// End completes the span: the duration is observed into the
// "span.<name>" histogram and the record enters the span ring. End is
// idempotent; only the first call records.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	attrs := append([]Attr(nil), s.attrs...)
	s.mu.Unlock()
	d := time.Since(s.start)
	s.m.Histogram("span." + s.name).Observe(d)
	s.m.tracer.ring.add(SpanRecord{Name: s.name, CorrelationID: s.id, Duration: d, Attrs: attrs})
}

// SpanRecord is one completed span.
type SpanRecord struct {
	Name          string        `json:"name"`
	CorrelationID string        `json:"correlation_id"`
	Duration      time.Duration `json:"duration_ns"`
	Attrs         []Attr        `json:"attrs,omitempty"`
}

// Attr returns the value of the last attribute set under key ("" when
// absent).
func (r SpanRecord) Attr(key string) string {
	for i := len(r.Attrs) - 1; i >= 0; i-- {
		if r.Attrs[i].Key == key {
			return r.Attrs[i].Value
		}
	}
	return ""
}

// Spans returns the most recent completed spans, oldest first (bounded
// by the internal ring size).
func (m *Metrics) Spans() []SpanRecord {
	if m == nil {
		return nil
	}
	return m.tracer.ring.snapshot()
}

// tracer is the per-registry span state: the correlation-id sequence and
// the bounded ring of completed spans.
type tracer struct {
	seq  atomic.Uint64
	ring spanRing
}

// spanRingSize bounds the retained completed spans; heavy traffic
// overwrites the oldest records.
const spanRingSize = 256

type spanRing struct {
	mu  sync.Mutex
	buf [spanRingSize]SpanRecord
	n   uint64 // total records ever added
}

func (r *spanRing) add(rec SpanRecord) {
	r.mu.Lock()
	r.buf[r.n%spanRingSize] = rec
	r.n++
	r.mu.Unlock()
}

func (r *spanRing) snapshot() []SpanRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	size := r.n
	if size > spanRingSize {
		size = spanRingSize
	}
	out := make([]SpanRecord, 0, size)
	start := r.n - size
	for i := start; i < r.n; i++ {
		out = append(out, r.buf[i%spanRingSize])
	}
	return out
}
