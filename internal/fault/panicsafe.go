package fault

import (
	"errors"
	"fmt"
	"runtime/debug"

	"plabi/internal/obs"
)

// ErrInternal is the sentinel behind every recovered panic, matched
// with errors.Is.
var ErrInternal = errors.New("internal error")

// InternalError is a panic converted into an error at a worker-pool or
// sink boundary: the run that contained it fails, the process does not.
// It carries the site and the stack of the panicking goroutine as
// first-class debugging evidence, and is never retried.
type InternalError struct {
	// Site names the boundary that recovered the panic, optionally
	// qualified with the failing unit (e.g. "etl.step(join-costs)").
	Site string
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

// Error implements error.
func (e *InternalError) Error() string {
	return fmt.Sprintf("fault: panic at %s: %v", e.Site, e.Value)
}

// Unwrap lets errors.Is(err, ErrInternal) succeed.
func (e *InternalError) Unwrap() error { return ErrInternal }

// Safely runs fn, converting a panic into a returned *InternalError
// carrying site and stack, and counting it under fault.panics. Worker
// pools wrap each unit of work with Safely so a panicking row or step
// fails the enclosing run instead of killing the process.
func Safely(site string, m *obs.Metrics, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			m.Counter("fault.panics").Inc()
			err = &InternalError{Site: site, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn()
}
