// Package enforce implements PLA enforcement at every level the paper
// studies: source-level release filtering and anonymization (§3, Fig. 2a),
// VPD-style query rewriting (§3), warehouse/ETL guarding of joins and
// integrations (§4, Fig. 3), and report-level static checking plus
// runtime cell/row/group enforcement with provenance-resolved intensional
// conditions (§5, Fig. 4). Every decision is a value carrying the rule,
// the PLAs involved, and provenance evidence, so audits are self-contained.
package enforce

import (
	"fmt"
	"strings"
)

// Outcome is the effect of one enforcement decision.
type Outcome int

// Decision outcomes.
const (
	// Permit releases the element unchanged.
	Permit Outcome = iota
	// Mask blanks a cell or column but keeps the row.
	Mask
	// SuppressRow removes a row.
	SuppressRow
	// SuppressGroup removes an aggregate row below its threshold.
	SuppressGroup
	// Block refuses the whole operation (query, join, report).
	Block
)

var outcomeNames = map[Outcome]string{
	Permit: "permit", Mask: "mask", SuppressRow: "suppress-row",
	SuppressGroup: "suppress-group", Block: "block",
}

// String returns the outcome name.
func (o Outcome) String() string { return outcomeNames[o] }

// Decision is one enforcement decision with its justification.
type Decision struct {
	Outcome Outcome
	// Rule names the requirement kind that fired, e.g. "access-deny",
	// "access-default-deny", "condition", "aggregation-threshold",
	// "join-permission", "row-filter", "integration-permission".
	Rule string
	// Subject is the element decided on (column, row index, join pair).
	Subject string
	// PLAs lists the ids of the PLAs that matched.
	PLAs []string
	// Detail is a human-readable explanation.
	Detail string
	// Evidence carries provenance strings backing the decision.
	Evidence []string
}

// String renders the decision as one audit line.
func (d Decision) String() string {
	s := fmt.Sprintf("%s %s (%s)", d.Outcome, d.Subject, d.Rule)
	if len(d.PLAs) > 0 {
		s += " pla=[" + strings.Join(d.PLAs, ",") + "]"
	}
	if d.Detail != "" {
		s += ": " + d.Detail
	}
	return s
}

// Summary aggregates decisions by outcome for reporting.
type Summary struct {
	Permitted  int
	Masked     int
	RowsOut    int
	GroupsOut  int
	Blocked    int
	TotalCells int
}

// Summarize counts decisions by outcome.
func Summarize(decisions []Decision) Summary {
	var s Summary
	for _, d := range decisions {
		switch d.Outcome {
		case Permit:
			s.Permitted++
		case Mask:
			s.Masked++
		case SuppressRow:
			s.RowsOut++
		case SuppressGroup:
			s.GroupsOut++
		case Block:
			s.Blocked++
		}
	}
	return s
}
