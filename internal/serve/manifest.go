// Package serve is the plabid policy-decision server: the HTTP/JSON
// transport over the plabi engine. Each tenant of the server gets a
// fully isolated engine — its own policy registry, decision cache and
// audit sink file — built from a manifest entry; requests authenticate
// with bearer tokens mapped to tenants, a token bucket rate-limits each
// tenant, and policy bundles hot-reload by building a fresh engine,
// atomically swapping the serving pointer, draining the old engine's
// in-flight requests and closing it. The wire contract is plabi/api/v1.
package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strings"
)

// Manifest declares the tenants a plabid server hosts. The on-disk form
// is JSON; Reload re-reads it and swaps changed tenants in place.
type Manifest struct {
	// Tenants are the hosted deployments. Names must be unique.
	Tenants []TenantConfig `json:"tenants"`
	// AdminTokens authorize the /admin endpoints (reload). Empty
	// disables remote administration; plabid then reloads on SIGHUP only.
	AdminTokens []string `json:"admin_tokens,omitempty"`
}

// TenantConfig is one tenant's manifest entry: who may call it, how its
// engine is built, and how hard it may drive the server.
type TenantConfig struct {
	// Name keys the tenant's URL space (/v1/tenants/{name}/...).
	// Lowercase letters, digits and dashes.
	Name string `json:"name"`
	// Tokens are the bearer tokens mapped to this tenant. At least one;
	// tokens must be unique across the whole manifest.
	Tokens []string `json:"tokens"`
	// Scenario selects the engine build. Only "healthcare" (the paper's
	// Fig. 1 deployment) is available today; Seed and Prescriptions size
	// its synthetic workload.
	Scenario      string `json:"scenario,omitempty"`
	Seed          int64  `json:"seed,omitempty"`
	Prescriptions int    `json:"prescriptions,omitempty"`
	// ExtraPLAs is an inline PLA DSL document registered after the
	// scenario build — the tenant's own policy bundle on top of the
	// scenario agreements. Editing it and reloading is how policies
	// evolve without a restart.
	ExtraPLAs string `json:"extra_plas,omitempty"`
	// AuditPath is the tenant's audit sink file (JSONL, append). Empty
	// derives "<audit-dir>/<name>.audit.jsonl" from the server option.
	AuditPath string `json:"audit_path,omitempty"`
	// RateRPS and RateBurst bound the tenant's request rate with a token
	// bucket (0 RPS = unlimited; burst defaults to RateRPS).
	RateRPS   float64 `json:"rate_rps,omitempty"`
	RateBurst float64 `json:"rate_burst,omitempty"`
	// Engine tuning, passed through to the plabi options.
	CacheSize  int  `json:"cache_size,omitempty"`
	Workers    int  `json:"workers,omitempty"`
	FailClosed bool `json:"fail_closed,omitempty"`
	// AllowExpansion lets a reload through even when pladiff finds
	// error-severity privilege expansions between the running engine and
	// the staged one. Off by default: expansions are refused unless the
	// admin endpoint is called with ?force=1. Deliberately excluded from
	// the bundle fingerprint — it gates the swap, it does not change the
	// engine.
	AllowExpansion bool `json:"allow_expansion,omitempty"`
}

var tenantNameRE = regexp.MustCompile(`^[a-z0-9][a-z0-9-]{0,63}$`)

// Validate checks the manifest's internal consistency: tenant names are
// well-formed and unique, every tenant has at least one token, and no
// token is shared between tenants (a shared token would alias two
// isolation domains).
func (m *Manifest) Validate() error {
	if len(m.Tenants) == 0 {
		return fmt.Errorf("serve: manifest declares no tenants")
	}
	names := map[string]bool{}
	tokens := map[string]string{}
	for i := range m.Tenants {
		t := &m.Tenants[i]
		if !tenantNameRE.MatchString(t.Name) {
			return fmt.Errorf("serve: tenant %d: invalid name %q (want lowercase letters, digits, dashes)", i, t.Name)
		}
		if names[t.Name] {
			return fmt.Errorf("serve: duplicate tenant %q", t.Name)
		}
		names[t.Name] = true
		if len(t.Tokens) == 0 {
			return fmt.Errorf("serve: tenant %q has no tokens", t.Name)
		}
		for _, tok := range t.Tokens {
			if tok == "" {
				return fmt.Errorf("serve: tenant %q has an empty token", t.Name)
			}
			if other, dup := tokens[tok]; dup {
				return fmt.Errorf("serve: token shared between tenants %q and %q", other, t.Name)
			}
			tokens[tok] = t.Name
		}
		for _, tok := range m.AdminTokens {
			if tokens[tok] != "" {
				return fmt.Errorf("serve: admin token also mapped to tenant %q", tokens[tok])
			}
		}
		switch t.Scenario {
		case "", "healthcare":
		default:
			return fmt.Errorf("serve: tenant %q: unknown scenario %q (want \"healthcare\")", t.Name, t.Scenario)
		}
		if t.Seed < 0 || t.Prescriptions < 0 {
			return fmt.Errorf("serve: tenant %q: negative workload sizing", t.Name)
		}
		if t.RateRPS < 0 || t.RateBurst < 0 {
			return fmt.Errorf("serve: tenant %q: negative rate limit", t.Name)
		}
	}
	return nil
}

// ParseManifest decodes and validates a manifest document.
func ParseManifest(data []byte) (*Manifest, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var m Manifest
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("serve: parse manifest: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// LoadManifest reads, decodes and validates a manifest file.
func LoadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("serve: read manifest: %w", err)
	}
	m, err := ParseManifest(data)
	if err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	return m, nil
}

// bundleFingerprint summarizes the engine-relevant part of a tenant
// config: when it is unchanged across a reload, the running engine is
// kept instead of being rebuilt and swapped.
func (t *TenantConfig) bundleFingerprint() string {
	b, _ := json.Marshal(struct {
		Scenario      string
		Seed          int64
		Prescriptions int
		ExtraPLAs     string
		AuditPath     string
		CacheSize     int
		Workers       int
		FailClosed    bool
	}{t.Scenario, t.Seed, t.Prescriptions, t.ExtraPLAs, t.AuditPath, t.CacheSize, t.Workers, t.FailClosed})
	return string(b)
}
