package policy

import (
	"encoding/json"
	"fmt"

	"plabi/internal/sql"
)

// The JSON form of a PLA is the interchange format for third-party
// auditing tools (the paper's auditing agencies, §2): conditions are
// carried as SQL expression strings, everything else structurally.

type accessJSON struct {
	Effect    string   `json:"effect"`
	Attribute string   `json:"attribute"`
	Roles     []string `json:"roles,omitempty"`
	Purposes  []string `json:"purposes,omitempty"`
	When      string   `json:"when,omitempty"`
}

type aggregationJSON struct {
	MinCount int    `json:"min_count"`
	By       string `json:"by,omitempty"`
}

type anonymizeJSON struct {
	Attribute string `json:"attribute"`
	Method    string `json:"method"`
	Param     int    `json:"param,omitempty"`
}

type releaseJSON struct {
	K         int      `json:"k"`
	L         int      `json:"l,omitempty"`
	Quasi     []string `json:"quasi"`
	Sensitive string   `json:"sensitive,omitempty"`
}

type effectOtherJSON struct {
	Effect string `json:"effect"`
	Other  string `json:"other"`
}

type plaJSON struct {
	ID           string            `json:"id"`
	Owner        string            `json:"owner,omitempty"`
	Level        string            `json:"level"`
	Scope        string            `json:"scope"`
	Purposes     []string          `json:"purposes,omitempty"`
	Access       []accessJSON      `json:"access,omitempty"`
	Aggregations []aggregationJSON `json:"aggregations,omitempty"`
	Anonymize    []anonymizeJSON   `json:"anonymize,omitempty"`
	Release      []releaseJSON     `json:"release,omitempty"`
	Joins        []effectOtherJSON `json:"joins,omitempty"`
	Integrations []effectOtherJSON `json:"integrations,omitempty"`
	Retention    int               `json:"retention_days,omitempty"`
	Filters      []string          `json:"filters,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (p *PLA) MarshalJSON() ([]byte, error) {
	out := plaJSON{
		ID: p.ID, Owner: p.Owner, Level: p.Level.String(), Scope: p.Scope,
		Purposes: p.Purposes,
	}
	for _, r := range p.Access {
		a := accessJSON{Effect: r.Effect.String(), Attribute: r.Attribute,
			Roles: r.Roles, Purposes: r.Purposes}
		if r.When != nil {
			a.When = r.When.String()
		}
		out.Access = append(out.Access, a)
	}
	for _, r := range p.Aggregations {
		out.Aggregations = append(out.Aggregations, aggregationJSON{MinCount: r.MinCount, By: r.By})
	}
	for _, r := range p.Anonymize {
		out.Anonymize = append(out.Anonymize, anonymizeJSON{
			Attribute: r.Attribute, Method: r.Method.String(), Param: r.Param})
	}
	for _, r := range p.Release {
		out.Release = append(out.Release, releaseJSON{K: r.K, L: r.L, Quasi: r.Quasi, Sensitive: r.Sensitive})
	}
	for _, r := range p.Joins {
		out.Joins = append(out.Joins, effectOtherJSON{Effect: r.Effect.String(), Other: r.Other})
	}
	for _, r := range p.Integrations {
		out.Integrations = append(out.Integrations, effectOtherJSON{Effect: r.Effect.String(), Other: r.Beneficiary})
	}
	if p.Retention != nil {
		out.Retention = p.Retention.Days
	}
	for _, f := range p.Filters {
		out.Filters = append(out.Filters, f.When.String())
	}
	return json.Marshal(out)
}

func parseEffect(s string) (Effect, error) {
	switch s {
	case "allow":
		return Allow, nil
	case "deny", "forbid":
		return Deny, nil
	default:
		return 0, fmt.Errorf("policy: unknown effect %q", s)
	}
}

// UnmarshalJSON implements json.Unmarshaler; the result is validated.
func (p *PLA) UnmarshalJSON(data []byte) error {
	var in plaJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	lvl, err := ParseLevel(in.Level)
	if err != nil {
		return err
	}
	out := PLA{ID: in.ID, Owner: in.Owner, Level: lvl, Scope: in.Scope, Purposes: in.Purposes}
	for _, a := range in.Access {
		eff, err := parseEffect(a.Effect)
		if err != nil {
			return err
		}
		rule := AccessRule{Effect: eff, Attribute: a.Attribute, Roles: a.Roles, Purposes: a.Purposes}
		if a.When != "" {
			rule.When, err = sql.ParseExpr(a.When)
			if err != nil {
				return fmt.Errorf("policy: access condition %q: %w", a.When, err)
			}
		}
		out.Access = append(out.Access, rule)
	}
	for _, a := range in.Aggregations {
		out.Aggregations = append(out.Aggregations, AggregationRule{MinCount: a.MinCount, By: a.By})
	}
	for _, a := range in.Anonymize {
		m, err := ParseAnonMethod(a.Method)
		if err != nil {
			return err
		}
		out.Anonymize = append(out.Anonymize, AnonymizeRule{Attribute: a.Attribute, Method: m, Param: a.Param})
	}
	for _, r := range in.Release {
		out.Release = append(out.Release, ReleaseRule{K: r.K, L: r.L, Quasi: r.Quasi, Sensitive: r.Sensitive})
	}
	for _, j := range in.Joins {
		eff, err := parseEffect(j.Effect)
		if err != nil {
			return err
		}
		out.Joins = append(out.Joins, JoinRule{Effect: eff, Other: j.Other})
	}
	for _, j := range in.Integrations {
		eff, err := parseEffect(j.Effect)
		if err != nil {
			return err
		}
		out.Integrations = append(out.Integrations, IntegrationRule{Effect: eff, Beneficiary: j.Other})
	}
	if in.Retention > 0 {
		out.Retention = &RetentionRule{Days: in.Retention}
	}
	for _, f := range in.Filters {
		e, err := sql.ParseExpr(f)
		if err != nil {
			return fmt.Errorf("policy: filter %q: %w", f, err)
		}
		out.Filters = append(out.Filters, RowFilterRule{When: e})
	}
	if err := out.Validate(); err != nil {
		return err
	}
	*p = out
	return nil
}
