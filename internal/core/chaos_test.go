package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"plabi/internal/audit"
	"plabi/internal/fault"
	"plabi/internal/obs"
	"plabi/internal/relation"
	"plabi/internal/report"
	"plabi/internal/workload"
)

// chaosSeeds returns the fixed seed matrix, overridable with a
// comma-separated CHAOS_SEEDS environment variable.
func chaosSeeds(t *testing.T) []int64 {
	t.Helper()
	spec := os.Getenv("CHAOS_SEEDS")
	if spec == "" {
		return []int64{101, 202, 303}
	}
	var seeds []int64
	for _, f := range strings.Split(spec, ",") {
		n, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEEDS: %v", err)
		}
		seeds = append(seeds, n)
	}
	return seeds
}

// chaosInjector enables the full fault schedule over every boundary site.
func chaosInjector(seed int64) *fault.Injector {
	fi := fault.NewInjector(seed)
	fi.Enable(fault.SiteAuditSink, fault.SiteConfig{ErrorRate: 0.2, Transient: true})
	fi.Enable(fault.SiteETLExtract, fault.SiteConfig{ErrorRate: 0.1, Transient: true})
	fi.Enable(fault.SiteETLStep, fault.SiteConfig{ErrorRate: 0.02, PanicRate: 0.01})
	fi.Enable(fault.SiteETLDelta, fault.SiteConfig{ErrorRate: 0.08, PanicRate: 0.02})
	fi.Enable(fault.SiteRenderWorker, fault.SiteConfig{
		ErrorRate: 0.02, PanicRate: 0.02,
		LatencyRate: 0.05, Latency: 200 * time.Microsecond,
	})
	fi.Enable(fault.SiteReleaseSource, fault.SiteConfig{ErrorRate: 0.1, Transient: true})
	fi.Enable(fault.SiteSegmentRead, fault.SiteConfig{ErrorRate: 0.05, Transient: true})
	return fi
}

func chaosRetry() fault.RetryPolicy {
	return fault.RetryPolicy{MaxAttempts: 4, Base: 5 * time.Microsecond,
		Max: 100 * time.Microsecond, Multiplier: 2, Jitter: 0.5}
}

// tolerable reports whether err is an expected chaos outcome: an injected
// fault, an isolated panic, or a fail-closed audit block. Anything else is
// a robustness bug.
func tolerable(err error) bool {
	return errors.Is(err, fault.ErrInjected) ||
		errors.Is(err, fault.ErrInternal) ||
		errors.Is(err, audit.ErrAuditUnavailable)
}

// TestChaosHealthcareScenario drives the full healthcare deployment under
// randomized (but seed-deterministic) fault schedules and asserts the
// fail-closed invariants:
//
//  1. faults never kill the process — every failure surfaces as a typed
//     error, and the engine keeps serving afterwards;
//  2. no goroutine leaks across the whole run;
//  3. every line the audit sink received is valid JSONL;
//  4. every successful render's correlation id is present in the sink —
//     no un-audited data release under fail-closed;
//  5. successful renders are byte-identical to the no-fault baseline.
//
// The chaos engines run segment-backed (every staging table spilled to
// disk, small partitions, transient faults injected at
// relation.segment.read), while the baseline stays fully in-memory and
// fault-free — so invariant 5 proves equality across fault schedules AND
// storage modes at once.
func TestChaosHealthcareScenario(t *testing.T) {
	cfg := workload.DefaultConfig(7)
	cfg.Prescriptions = 600
	cfg.Patients = 60
	consumers := []report.Consumer{
		{Name: "a1", Role: "analyst", Purpose: "quality"},
		{Name: "a2", Role: "auditor", Purpose: "quality"},
		{Name: "a3", Role: "analyst", Purpose: "reimbursement"},
	}

	// No-fault baseline: the byte-exact expected output per (report,
	// consumer) pair, plus the source-level release of the residents table
	// (the release.source site's ground truth).
	base, baseDS, err := BuildHealthcareEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	baseline := map[string]string{}
	for _, d := range base.Reports.All() {
		for _, c := range consumers {
			enf, err := base.Render(d.ID, c)
			if err != nil {
				t.Fatalf("baseline %s/%s: %v", d.ID, c.Name, err)
			}
			baseline[d.ID+"/"+c.Name] = enf.Table.String()
		}
	}
	baseRel, _, err := base.SourceEnforcer().Release(baseDS.Residents)
	if err != nil {
		t.Fatalf("baseline release: %v", err)
	}
	releaseBaseline := baseRel.String()

	for _, seed := range chaosSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			defer fault.CheckLeaks(t)()
			fi := chaosInjector(seed)
			var sink bytes.Buffer
			t.Cleanup(func() { dumpChaosArtifacts(t, seed, fi, &sink) })

			// The scenario build itself runs under fault injection; ETL
			// failures are tolerated and retried from scratch.
			var e *Engine
			var ds *workload.Dataset
			segDir := t.TempDir()
			for attempt := 0; ; attempt++ {
				var err error
				e, ds, err = BuildHealthcareEngineWith(cfg, func(e *Engine) {
					e.SetRetryPolicy(chaosRetry())
					e.SetFailClosed(true)
					e.Audit.SetSink(&sink)
					e.SetFaults(fi)
					s := e.SetSegmentStore(segDir)
					s.SetPartitionRows(64)
					e.SetSpillThreshold(1)
				})
				if err == nil {
					break
				}
				if !tolerable(err) {
					t.Fatalf("build attempt %d: intolerable error: %v", attempt, err)
				}
				if attempt >= 50 {
					t.Fatalf("scenario build did not survive chaos in %d attempts: %v", attempt, err)
				}
			}

			const rounds = 4
			successes, failures := 0, 0
			var mustTrace []string
			for r := 0; r < rounds; r++ {
				for _, d := range e.Reports.All() {
					for _, c := range consumers {
						corr := fmt.Sprintf("chaos-s%d-r%d-%s-%s", seed, r, d.ID, c.Name)
						ctx := obs.WithCorrelationID(context.Background(), corr)
						enf, err := e.RenderContext(ctx, d.ID, c)
						if err != nil {
							if !tolerable(err) {
								t.Fatalf("render %s: intolerable error: %v", corr, err)
							}
							failures++
							continue
						}
						successes++
						mustTrace = append(mustTrace, corr)
						if got, want := enf.Table.String(), baseline[d.ID+"/"+c.Name]; got != want {
							t.Fatalf("render %s diverges from no-fault baseline:\n got:\n%s\nwant:\n%s", corr, got, want)
						}
					}
				}
				// Source-level release under the release.source site: an
				// injected fault degrades to a typed error with no partial
				// release; a successful release is byte-identical to the
				// no-fault baseline.
				rel, _, err := e.SourceEnforcer().Release(ds.Residents)
				if err != nil {
					if !tolerable(err) {
						t.Fatalf("release round %d: intolerable error: %v", r, err)
					}
					failures++
				} else {
					successes++
					if got := rel.String(); got != releaseBaseline {
						t.Fatalf("release round %d diverges from no-fault baseline:\n got:\n%s\nwant:\n%s", r, got, releaseBaseline)
					}
				}
			}
			if successes == 0 {
				t.Fatal("chaos schedule starved every render; lower the rates")
			}
			t.Logf("seed %d: %d renders ok, %d failed closed, %s", seed, successes, failures, fi)

			// The sink must hold only whole, parseable JSONL lines, and
			// every successful render's trace must be among them.
			traces := map[string]bool{}
			for _, line := range strings.Split(sink.String(), "\n") {
				if strings.TrimSpace(line) == "" {
					continue
				}
				var ev audit.Event
				if err := json.Unmarshal([]byte(line), &ev); err != nil {
					t.Fatalf("corrupt audit sink line %q: %v", line, err)
				}
				traces[ev.Trace] = true
			}
			for _, corr := range mustTrace {
				if !traces[corr] {
					t.Fatalf("successful render %s has no audit trace in the sink", corr)
				}
			}
		})
	}
}

// TestChaosReplaySchedule proves the chaos artifact is replayable: a
// run under a seeded random fault schedule, re-executed with
// fault.ReplaySchedule over the recorded fires, reproduces the exact
// same behavior — byte-identical audit sink, identical re-recorded
// schedule, identical per-render outcomes — even though the replay
// injector is configured with completely different rates. Workers is
// pinned to 1: replay pins faults to per-site call ordinals, so the
// engine's call order must be deterministic.
func TestChaosReplaySchedule(t *testing.T) {
	cfg := workload.DefaultConfig(7)
	cfg.Prescriptions = 200
	cfg.Patients = 40
	consumers := []report.Consumer{
		{Name: "a1", Role: "analyst", Purpose: "quality"},
		{Name: "a2", Role: "auditor", Purpose: "quality"},
	}

	// run builds the engine clean (deterministic ETL, no faults), then
	// attaches the injector and sink and drives a fixed render sequence.
	run := func(t *testing.T, fi *fault.Injector) (sinkBytes string, sched []fault.Fire, outs []string) {
		t.Helper()
		e, _, err := BuildHealthcareEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		e.SetWorkers(1)
		e.SetRetryPolicy(chaosRetry())
		e.SetFailClosed(true)
		var sink bytes.Buffer
		e.Audit.SetSink(&sink)
		e.SetFaults(fi)
		for r := 0; r < 3; r++ {
			for _, d := range e.Reports.All() {
				for _, c := range consumers {
					corr := fmt.Sprintf("replay-r%d-%s-%s", r, d.ID, c.Name)
					ctx := obs.WithCorrelationID(context.Background(), corr)
					enf, err := e.RenderContext(ctx, d.ID, c)
					switch {
					case err == nil:
						outs = append(outs, corr+"=ok:"+enf.Table.String())
					case tolerable(err):
						outs = append(outs, corr+"=err:"+err.Error())
					default:
						t.Fatalf("render %s: intolerable error: %v", corr, err)
					}
				}
			}
		}
		return sink.String(), fi.Schedule(), outs
	}

	orig := fault.NewInjector(404)
	orig.Enable(fault.SiteAuditSink, fault.SiteConfig{ErrorRate: 0.15, Transient: true})
	orig.Enable(fault.SiteRenderWorker, fault.SiteConfig{ErrorRate: 0.05, PanicRate: 0.03})
	wantSink, recorded, wantOuts := run(t, orig)
	if len(recorded) == 0 {
		t.Fatal("seeded run fired nothing; raise the rates so the replay is meaningful")
	}

	rep := fault.NewInjector(1)
	// Deliberately different (and absurd) configuration: replay must
	// pin the schedule regardless.
	rep.Enable(fault.SiteAuditSink, fault.SiteConfig{ErrorRate: 1})
	rep.Enable(fault.SiteETLStep, fault.SiteConfig{PanicRate: 1})
	rep.ReplaySchedule(recorded)
	gotSink, replayed, gotOuts := run(t, rep)

	if !reflect.DeepEqual(wantOuts, gotOuts) {
		t.Fatalf("replay render outcomes diverge:\noriginal %v\nreplay   %v", wantOuts, gotOuts)
	}
	if !reflect.DeepEqual(recorded, replayed) {
		t.Fatalf("replay re-recorded a different fault schedule:\noriginal %v\nreplay   %v", recorded, replayed)
	}
	if wantSink != gotSink {
		t.Fatalf("replay audit sink is not byte-identical:\noriginal:\n%s\nreplay:\n%s", wantSink, gotSink)
	}
	t.Logf("replayed %d fires, %d renders, %d sink bytes byte-identical", len(recorded), len(wantOuts), len(wantSink))
}

// dumpChaosArtifacts writes the fault schedule and the audit sink contents
// to CHAOS_ARTIFACT_DIR when a chaos subtest fails, so a CI failure is
// replayable offline.
func dumpChaosArtifacts(t *testing.T, seed int64, fi *fault.Injector, sink *bytes.Buffer) {
	if !t.Failed() {
		return
	}
	dir := os.Getenv("CHAOS_ARTIFACT_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("chaos artifacts: %v", err)
		return
	}
	sched, err := json.MarshalIndent(fi.Schedule(), "", "  ")
	if err == nil {
		path := filepath.Join(dir, fmt.Sprintf("chaos_schedule_seed%d.json", seed))
		if werr := os.WriteFile(path, sched, 0o644); werr != nil {
			t.Logf("chaos artifacts: %v", werr)
		} else {
			t.Logf("chaos schedule written to %s", path)
		}
	}
	path := filepath.Join(dir, fmt.Sprintf("chaos_audit_seed%d.jsonl", seed))
	if werr := os.WriteFile(path, sink.Bytes(), 0o644); werr != nil {
		t.Logf("chaos artifacts: %v", werr)
	} else {
		t.Logf("chaos audit log written to %s", path)
	}
}

// materializedRetry decodes a possibly segment-backed table, retrying
// injected segment-read faults.
func materializedRetry(t *testing.T, tb *relation.Table) *relation.Table {
	t.Helper()
	for attempt := 0; attempt < 100; attempt++ {
		m, err := tb.Materialize()
		if err == nil {
			return m
		}
		if !tolerable(err) {
			t.Fatalf("materialize: intolerable error: %v", err)
		}
	}
	t.Fatal("table never materialized under the chaos schedule")
	return nil
}

// TestChaosDeltaConvergence streams delta batches through a fail-closed,
// segment-backed deployment while faults fire mid-delta at the etl.delta
// site (plus the extract/step/segment/audit boundaries), and asserts the
// incremental-refresh invariants hold under chaos:
//
//  1. a failed delta is atomic — the retry applies the identical batch
//     against identical pre-delta state;
//  2. after the stream, every warehouse table and every render is
//     byte-identical to a fresh no-fault engine built from the final
//     source versions (delta refresh converges with full rebuild);
//  3. renders keep serving between batches.
func TestChaosDeltaConvergence(t *testing.T) {
	cfg := workload.DefaultConfig(13)
	cfg.Prescriptions = 500
	cfg.Patients = 60
	cfg.LabResults = 30
	consumers := []report.Consumer{
		{Name: "a1", Role: "analyst", Purpose: "quality"},
		{Name: "a2", Role: "auditor", Purpose: "quality"},
		{Name: "a3", Role: "analyst", Purpose: "reimbursement"},
	}
	for _, seed := range chaosSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			defer fault.CheckLeaks(t)()
			fi := chaosInjector(seed)
			var sink bytes.Buffer
			t.Cleanup(func() { dumpChaosArtifacts(t, seed, fi, &sink) })

			var e *Engine
			var ds *workload.Dataset
			segDir := t.TempDir()
			for attempt := 0; ; attempt++ {
				var err error
				e, ds, err = BuildHealthcareEngineWith(cfg, func(e *Engine) {
					e.SetRetryPolicy(chaosRetry())
					e.SetFailClosed(true)
					e.Audit.SetSink(&sink)
					e.SetFaults(fi)
					s := e.SetSegmentStore(segDir)
					s.SetPartitionRows(64)
					e.SetSpillThreshold(1)
				})
				if err == nil {
					break
				}
				if !tolerable(err) {
					t.Fatalf("build attempt %d: intolerable error: %v", attempt, err)
				}
				if attempt >= 50 {
					t.Fatalf("scenario build did not survive chaos in %d attempts: %v", attempt, err)
				}
			}

			rng := rand.New(rand.NewSource(seed))
			served := 0
			for round := 0; round < 4; round++ {
				applyWithRetry(t, e, randomBatch(t, rng, ds, e, round))
				// The engine keeps serving mid-stream; chaos failures
				// degrade to typed errors, never wrong data.
				for _, c := range consumers {
					if _, err := e.Render("drug-consumption", c); err == nil {
						served++
					} else if !tolerable(err) {
						t.Fatalf("round %d render: intolerable error: %v", round, err)
					}
				}
			}
			if served == 0 {
				t.Fatal("chaos schedule starved every mid-stream render")
			}

			// Fresh no-fault, in-memory mirror from the final sources.
			final := func(source, table string) *relation.Table {
				src, _ := e.Source(source)
				tb, _ := src.Table(table)
				return materializedRetry(t, tb).Clone()
			}
			mirror, err := buildEngineFromTables(
				final("hospital", "prescriptions"),
				final("familydoctors", "familydoctor"),
				final("healthagency", "drugcost"),
				final("laboratory", "labresults"),
				final("municipality", "residents"),
			)
			if err != nil {
				t.Fatalf("mirror build: %v", err)
			}

			for _, name := range []string{"prescriptions", "familydoctor", "drugcost",
				"familydoctor_resolved", "rx_cost", "rx_wide"} {
				lt, lok := e.Table(name)
				mt, mok := mirror.Table(name)
				if !lok || !mok {
					t.Fatalf("table %q: live=%v mirror=%v", name, lok, mok)
				}
				if got, want := materializedRetry(t, lt).String(), mt.String(); got != want {
					t.Fatalf("table %q diverges from full rebuild after chaos deltas:\n got:\n%s\nwant:\n%s", name, got, want)
				}
			}
			for _, def := range StandardReports() {
				for _, c := range consumers {
					if !containsRole(def.Roles, c.Role) {
						continue
					}
					want := renderKey(mirror, def.ID, c)
					for attempt := 0; ; attempt++ {
						enf, err := e.Render(def.ID, c)
						if err != nil {
							if !tolerable(err) {
								t.Fatalf("render %s/%s: intolerable error: %v", def.ID, c.Name, err)
							}
							if attempt >= 100 {
								t.Fatalf("render %s/%s never succeeded", def.ID, c.Name)
							}
							continue
						}
						if got := renderString(enf); got != want {
							t.Fatalf("render %s/%s diverges from full rebuild:\n got:\n%s\nwant:\n%s", def.ID, c.Name, got, want)
						}
						break
					}
				}
			}
		})
	}
}

func containsRole(roles []string, role string) bool {
	for _, r := range roles {
		if r == role {
			return true
		}
	}
	return false
}
