// Package attack implements the adversary the paper's anonymizing release
// defends against (§3: data "that could be used to drill down from the
// provided data to the data of an actual individual"): a linkage attacker
// who holds an identified external registry (e.g. the municipal
// population) and tries to re-identify rows of the released, generalized
// table by matching quasi-identifier values, and to disclose sensitive
// attributes through equivalence-class homogeneity (the attack
// l-diversity exists to stop).
package attack

import (
	"fmt"
	"strconv"
	"strings"

	"plabi/internal/relation"
)

// Linkage describes one attack: the released table (QI possibly
// generalized by the Mondrian anonymizer), the attacker's identified
// external table with raw QI values, and the columns involved.
type Linkage struct {
	// Released is the table the BI provider published.
	Released *relation.Table
	// External is the attacker's identified side information.
	External *relation.Table
	// QI are the quasi-identifier columns present in both tables.
	QI []string
	// IdentityCol names the identifying column of the external table.
	IdentityCol string
	// SensitiveCol optionally names a sensitive column of the released
	// table for attribute-disclosure measurement ("" skips it).
	SensitiveCol string
}

// Result quantifies the attack.
type Result struct {
	ReleasedRows int
	// Reidentified counts released rows whose candidate set in the
	// external table has exactly one member.
	Reidentified int
	// ReidentRate is Reidentified / ReleasedRows.
	ReidentRate float64
	// AvgCandidates is the mean candidate-set size over matched rows
	// (higher = safer; k-anonymity aims for >= k).
	AvgCandidates float64
	// MinCandidates is the smallest non-zero candidate set observed.
	MinCandidates int
	// AttributeDisclosed counts external individuals whose sensitive
	// value the attacker learns with certainty: every released row they
	// are a candidate for shares one sensitive value (homogeneity).
	AttributeDisclosed int
	// AttributeRate is AttributeDisclosed / external individuals that are
	// candidates of at least one released row.
	AttributeRate float64
}

// String renders the result.
func (r Result) String() string {
	return fmt.Sprintf("released=%d reidentified=%d (%.1f%%) avg-candidates=%.1f min=%d attr-disclosed=%d (%.1f%%)",
		r.ReleasedRows, r.Reidentified, 100*r.ReidentRate, r.AvgCandidates,
		r.MinCandidates, r.AttributeDisclosed, 100*r.AttributeRate)
}

// Run executes the linkage attack.
func Run(l Linkage) (Result, error) {
	var res Result
	qiRel := make([]int, len(l.QI))
	qiExt := make([]int, len(l.QI))
	for i, q := range l.QI {
		ri := l.Released.Schema.Index(q)
		ei := l.External.Schema.Index(q)
		if ri < 0 || ei < 0 {
			return res, fmt.Errorf("attack: QI column %q missing (released %v, external %v)", q, ri >= 0, ei >= 0)
		}
		qiRel[i] = ri
		qiExt[i] = ei
	}
	idIdx := l.External.Schema.Index(l.IdentityCol)
	if idIdx < 0 {
		return res, fmt.Errorf("attack: identity column %q missing from external table", l.IdentityCol)
	}
	sensIdx := -1
	if l.SensitiveCol != "" {
		sensIdx = l.Released.Schema.Index(l.SensitiveCol)
		if sensIdx < 0 {
			return res, fmt.Errorf("attack: sensitive column %q missing from released table", l.SensitiveCol)
		}
	}

	res.ReleasedRows = l.Released.NumRows()
	totalCandidates := 0
	matchedRows := 0
	// sensitive values each external individual is consistent with.
	indivSens := map[string]map[string]bool{}

	for ri := range l.Released.Rows {
		var candidates []int
		for ei := range l.External.Rows {
			match := true
			for qi := range l.QI {
				if !GeneralizedMatch(l.Released.Rows[ri][qiRel[qi]], l.External.Rows[ei][qiExt[qi]]) {
					match = false
					break
				}
			}
			if match {
				candidates = append(candidates, ei)
			}
		}
		if len(candidates) == 0 {
			continue
		}
		matchedRows++
		totalCandidates += len(candidates)
		if res.MinCandidates == 0 || len(candidates) < res.MinCandidates {
			res.MinCandidates = len(candidates)
		}
		if len(candidates) == 1 {
			res.Reidentified++
		}
		if sensIdx >= 0 {
			sv := l.Released.Rows[ri][sensIdx].Key()
			for _, ei := range candidates {
				id := l.External.Rows[ei][idIdx].Key()
				if indivSens[id] == nil {
					indivSens[id] = map[string]bool{}
				}
				indivSens[id][sv] = true
			}
		}
	}
	if res.ReleasedRows > 0 {
		res.ReidentRate = float64(res.Reidentified) / float64(res.ReleasedRows)
	}
	if matchedRows > 0 {
		res.AvgCandidates = float64(totalCandidates) / float64(matchedRows)
	}
	if sensIdx >= 0 && len(indivSens) > 0 {
		for _, vals := range indivSens {
			if len(vals) == 1 {
				res.AttributeDisclosed++
			}
		}
		res.AttributeRate = float64(res.AttributeDisclosed) / float64(len(indivSens))
	}
	return res, nil
}

// GeneralizedMatch reports whether a released (possibly generalized)
// value is consistent with a raw value: exact equality, "*", "{a,b,c}"
// sets, "[lo-hi]" / "[lo-hi)" numeric ranges, and "381**" prefix masks.
func GeneralizedMatch(released, raw relation.Value) bool {
	if released.IsNull() || raw.IsNull() {
		return false
	}
	if released.Equal(raw) {
		return true
	}
	if released.Kind != relation.TString {
		// Coerced comparison (e.g. INT raw vs numeric-string released).
		if c, ok := released.Coerce(raw.Kind); ok && c.Equal(raw) {
			return true
		}
		return false
	}
	s := released.S
	switch {
	case s == "*":
		return true
	case strings.HasPrefix(s, "{") && strings.HasSuffix(s, "}"):
		for _, part := range strings.Split(s[1:len(s)-1], ",") {
			if strings.TrimSpace(part) == raw.String() {
				return true
			}
		}
		return false
	case strings.HasPrefix(s, "["):
		lo, hi, hiOpen, ok := parseRange(s)
		if !ok {
			return false
		}
		f, okF := raw.AsFloat()
		if !okF {
			return false
		}
		if hiOpen {
			return f >= lo && f < hi
		}
		return f >= lo && f <= hi
	case strings.ContainsRune(s, '*'):
		prefix := s[:strings.IndexRune(s, '*')]
		return strings.HasPrefix(raw.String(), prefix)
	default:
		return s == raw.String()
	}
}

// parseRange parses "[lo-hi]" or "[lo-hi)"; hiOpen reports the ')' form.
func parseRange(s string) (lo, hi float64, hiOpen, ok bool) {
	if len(s) < 5 || s[0] != '[' {
		return 0, 0, false, false
	}
	hiOpen = s[len(s)-1] == ')'
	if !hiOpen && s[len(s)-1] != ']' {
		return 0, 0, false, false
	}
	body := s[1 : len(s)-1]
	// Split at the dash separating the bounds (mind negative numbers).
	sep := -1
	for i := 1; i < len(body); i++ {
		if body[i] == '-' && body[i-1] != 'e' && body[i-1] != 'E' {
			sep = i
			break
		}
	}
	if sep < 0 {
		return 0, 0, false, false
	}
	var err1, err2 error
	lo, err1 = strconv.ParseFloat(strings.TrimSpace(body[:sep]), 64)
	hi, err2 = strconv.ParseFloat(strings.TrimSpace(body[sep+1:]), 64)
	if err1 != nil || err2 != nil {
		return 0, 0, false, false
	}
	return lo, hi, hiOpen, true
}
