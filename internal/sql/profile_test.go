package sql

import (
	"testing"

	"plabi/internal/relation"
)

func mustProfile(t *testing.T, c *Catalog, q string) *Profile {
	t.Helper()
	p, err := ProfileSQL(c, q)
	if err != nil {
		t.Fatalf("ProfileSQL(%q): %v", q, err)
	}
	return p
}

func TestProfileBasics(t *testing.T) {
	c := testCatalog()
	p := mustProfile(t, c, "SELECT patient, drug FROM prescriptions WHERE disease = 'HIV'")
	if len(p.BaseTables) != 1 || p.BaseTables[0] != "prescriptions" {
		t.Errorf("tables = %v", p.BaseTables)
	}
	if !p.OutputCols.Contains(relation.ColRef{Table: "prescriptions", Column: "patient"}) {
		t.Errorf("outputs = %v", p.OutputCols)
	}
	if p.OutputCols.Contains(relation.ColRef{Table: "prescriptions", Column: "disease"}) {
		t.Error("disease should not be an output")
	}
	if len(p.Conjuncts) != 1 || p.Conjuncts[0].Col.Column != "disease" || p.Conjuncts[0].Val.S != "HIV" {
		t.Errorf("conjuncts = %v", p.Conjuncts)
	}
	if p.Opaque || p.Aggregated {
		t.Error("should be transparent and non-aggregated")
	}
}

func TestProfileJoinPairs(t *testing.T) {
	c := testCatalog()
	p := mustProfile(t, c, `SELECT p.patient, d.cost FROM prescriptions p
		JOIN drugcost d ON p.drug = d.drug`)
	if len(p.JoinPairs) != 1 || p.JoinPairs[0] != NewJoinPair("prescriptions", "drugcost") {
		t.Errorf("joins = %v", p.JoinPairs)
	}
	if len(p.BaseTables) != 2 {
		t.Errorf("tables = %v", p.BaseTables)
	}
}

func TestProfileAggregation(t *testing.T) {
	c := testCatalog()
	p := mustProfile(t, c, "SELECT drug, COUNT(*) AS n FROM prescriptions GROUP BY drug")
	if !p.Aggregated {
		t.Error("should be aggregated")
	}
	if !p.GroupKeys.Contains(relation.ColRef{Table: "prescriptions", Column: "drug"}) {
		t.Errorf("group keys = %v", p.GroupKeys)
	}
}

func TestProfileOpacity(t *testing.T) {
	c := testCatalog()
	p := mustProfile(t, c, "SELECT patient FROM prescriptions WHERE disease = 'HIV' OR disease = 'asthma'")
	if !p.Opaque {
		t.Error("OR should be opaque")
	}
	p = mustProfile(t, c, "SELECT patient FROM prescriptions WHERE disease IN ('HIV', 'asthma')")
	if p.Opaque {
		t.Error("IN should be transparent")
	}
	if p.Conjuncts[0].In == nil || len(p.Conjuncts[0].In) != 2 {
		t.Errorf("conjuncts = %v", p.Conjuncts)
	}
}

func TestProfileThroughView(t *testing.T) {
	c := testCatalog()
	if _, err := c.Run(`CREATE VIEW recent AS SELECT patient, drug, disease FROM prescriptions WHERE date >= DATE '2007-06-01'`); err != nil {
		t.Fatal(err)
	}
	p := mustProfile(t, c, "SELECT patient FROM recent WHERE disease = 'asthma'")
	if len(p.BaseTables) != 1 || p.BaseTables[0] != "prescriptions" {
		t.Errorf("tables = %v", p.BaseTables)
	}
	// Both the view's filter and the outer filter must be visible.
	if len(p.Conjuncts) != 2 {
		t.Errorf("conjuncts = %v", p.Conjuncts)
	}
}

func TestImplies(t *testing.T) {
	col := relation.ColRef{Table: "t", Column: "x"}
	eq := func(v relation.Value) SimplePred { return SimplePred{Col: col, Op: relation.OpEq, Val: v} }
	cmp := func(op relation.BinOp, v relation.Value) SimplePred {
		return SimplePred{Col: col, Op: op, Val: v}
	}
	in := func(vals ...relation.Value) SimplePred { return SimplePred{Col: col, In: vals} }
	notin := func(vals ...relation.Value) SimplePred { return SimplePred{Col: col, In: vals, NotP: true} }

	cases := []struct {
		r, m SimplePred
		want bool
	}{
		{eq(relation.Int(5)), eq(relation.Int(5)), true},
		{eq(relation.Int(5)), eq(relation.Int(6)), false},
		{eq(relation.Int(5)), cmp(relation.OpGt, relation.Int(3)), true},
		{eq(relation.Int(5)), cmp(relation.OpGt, relation.Int(5)), false},
		{cmp(relation.OpGt, relation.Int(5)), cmp(relation.OpGt, relation.Int(3)), true},
		{cmp(relation.OpGt, relation.Int(3)), cmp(relation.OpGt, relation.Int(5)), false},
		{cmp(relation.OpGe, relation.Int(5)), cmp(relation.OpGt, relation.Int(3)), true},
		{cmp(relation.OpGe, relation.Int(4)), cmp(relation.OpGe, relation.Int(4)), true},
		{cmp(relation.OpLt, relation.Int(3)), cmp(relation.OpLe, relation.Int(3)), true},
		{cmp(relation.OpLe, relation.Int(3)), cmp(relation.OpLt, relation.Int(3)), false},
		{eq(relation.Str("HIV")), in(relation.Str("HIV"), relation.Str("flu")), true},
		{eq(relation.Str("x")), in(relation.Str("HIV")), false},
		{in(relation.Str("a")), in(relation.Str("a"), relation.Str("b")), true},
		{in(relation.Str("a"), relation.Str("c")), in(relation.Str("a"), relation.Str("b")), false},
		{eq(relation.Str("flu")), notin(relation.Str("HIV")), true},
		{eq(relation.Str("HIV")), notin(relation.Str("HIV")), false},
		{notin(relation.Str("HIV"), relation.Str("flu")), notin(relation.Str("HIV")), true},
		{notin(relation.Str("flu")), notin(relation.Str("HIV")), false},
		{eq(relation.Int(5)), cmp(relation.OpNe, relation.Int(6)), true},
		{eq(relation.Int(5)), cmp(relation.OpNe, relation.Int(5)), false},
		{cmp(relation.OpGt, relation.Int(5)), cmp(relation.OpNe, relation.Int(3)), true},
		{cmp(relation.OpNe, relation.Int(3)), cmp(relation.OpNe, relation.Int(3)), true},
		{in(relation.Int(4), relation.Int(5)), cmp(relation.OpGt, relation.Int(3)), true},
		{in(relation.Int(2), relation.Int(5)), cmp(relation.OpGt, relation.Int(3)), false},
		{eq(relation.Str("Alice")), SimplePred{Col: col, Op: relation.OpLike, Val: relation.Str("A%")}, true},
		{eq(relation.Str("Bob")), SimplePred{Col: col, Op: relation.OpLike, Val: relation.Str("A%")}, false},
		// Different columns never imply each other.
		{SimplePred{Col: relation.ColRef{Table: "t", Column: "y"}, Op: relation.OpEq, Val: relation.Int(5)}, eq(relation.Int(5)), false},
	}
	for _, cse := range cases {
		if got := Implies(cse.r, cse.m); got != cse.want {
			t.Errorf("Implies(%v, %v) = %v, want %v", cse.r, cse.m, got, cse.want)
		}
	}
}

func TestConjunctionImplies(t *testing.T) {
	col := func(c string) relation.ColRef { return relation.ColRef{Table: "t", Column: c} }
	rs := []SimplePred{
		{Col: col("x"), Op: relation.OpEq, Val: relation.Int(5)},
		{Col: col("y"), Op: relation.OpGt, Val: relation.Int(10)},
	}
	ms := []SimplePred{{Col: col("x"), Op: relation.OpGt, Val: relation.Int(0)}}
	if !ConjunctionImplies(rs, ms) {
		t.Error("x=5 AND y>10 should imply x>0")
	}
	ms2 := []SimplePred{{Col: col("z"), Op: relation.OpGt, Val: relation.Int(0)}}
	if ConjunctionImplies(rs, ms2) {
		t.Error("no information about z")
	}
	if !ConjunctionImplies(rs, nil) {
		t.Error("anything implies the empty conjunction")
	}
}

func TestProfileAmbiguousColumnSkipped(t *testing.T) {
	c := testCatalog()
	// "drug" exists in both tables; unqualified output falls back to
	// qualified-only resolution and must not panic.
	p := mustProfile(t, c, `SELECT p.drug FROM prescriptions p JOIN drugcost d ON p.drug = d.drug`)
	if !p.OutputCols.Contains(relation.ColRef{Table: "prescriptions", Column: "drug"}) {
		t.Errorf("outputs = %v", p.OutputCols)
	}
}
