// Package textutil provides small text utilities shared across the
// library: string-similarity metrics used by the ETL entity-resolution
// step, and name normalization helpers.
package textutil

import (
	"strings"
	"unicode"
)

// Normalize lowercases, trims, and collapses internal whitespace — the
// canonical form compared during entity resolution.
func Normalize(s string) string {
	fields := strings.Fields(strings.ToLower(strings.TrimSpace(s)))
	return strings.Join(fields, " ")
}

// StripDiacriticsASCII removes characters outside [a-z0-9 ] after
// normalization; a cheap stand-in for full Unicode folding that is
// sufficient for the synthetic workload.
func StripDiacriticsASCII(s string) string {
	var b strings.Builder
	for _, r := range Normalize(s) {
		if r == ' ' || unicode.IsDigit(r) || (r >= 'a' && r <= 'z') {
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Levenshtein computes the edit distance between two strings.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// Jaro computes the Jaro similarity in [0,1].
func Jaro(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	window := len(ra)
	if len(rb) > window {
		window = len(rb)
	}
	window = window/2 - 1
	if window < 0 {
		window = 0
	}
	matchA := make([]bool, len(ra))
	matchB := make([]bool, len(rb))
	matches := 0
	for i := range ra {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > len(rb) {
			hi = len(rb)
		}
		for j := lo; j < hi; j++ {
			if matchB[j] || ra[i] != rb[j] {
				continue
			}
			matchA[i] = true
			matchB[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions.
	trans := 0
	j := 0
	for i := range ra {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if ra[i] != rb[j] {
			trans++
		}
		j++
	}
	m := float64(matches)
	return (m/float64(len(ra)) + m/float64(len(rb)) + (m-float64(trans)/2)/m) / 3
}

// JaroWinkler computes the Jaro-Winkler similarity in [0,1] with the
// standard prefix scale 0.1 and max prefix 4.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	prefix := 0
	ra, rb := []rune(a), []rune(b)
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// Similar reports whether two names refer to the same entity under the
// threshold used by the ETL matcher (Jaro-Winkler on normalized forms).
func Similar(a, b string, threshold float64) bool {
	na, nb := Normalize(a), Normalize(b)
	if na == nb {
		return true
	}
	return JaroWinkler(na, nb) >= threshold
}
