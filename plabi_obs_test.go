package plabi

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// lastSpan returns the most recent completed span with the given name.
func lastSpan(t *testing.T, e *Engine, name string) SpanRecord {
	t.Helper()
	spans := e.Spans()
	for i := len(spans) - 1; i >= 0; i-- {
		if spans[i].Name == name {
			return spans[i]
		}
	}
	t.Fatalf("no %q span recorded (have %d spans)", name, len(spans))
	return SpanRecord{}
}

// TestBlockedRenderObservability is the regression contract of the
// observability layer: a blocked render must increment the block
// counters, produce a "render" span carrying the deciding rule and PLA,
// and stamp the span's correlation id onto the matching audit events.
func TestBlockedRenderObservability(t *testing.T) {
	var sink strings.Builder
	e := quickEngine2(t, WithAuditSink(&sink))
	if err := e.AddPLAs(`pla "thresh" { owner "hospital"; level report; scope "rx-list";
		aggregate min 3 by patient; }`); err != nil {
		t.Fatal(err)
	}
	_, err := e.Render(context.Background(), "rx-list", Consumer{Name: "u", Role: "analyst"})
	if _, ok := IsBlocked(err); !ok {
		t.Fatalf("render was not blocked: %v", err)
	}

	s := e.MetricsSnapshot()
	if got := s.Counters["render.total"]; got != 1 {
		t.Errorf("render.total = %d, want 1", got)
	}
	if got := s.Counters["render.blocked"]; got != 1 {
		t.Errorf("render.blocked = %d, want 1", got)
	}
	if got := s.Counters["enforce.block.aggregation-threshold"]; got == 0 {
		t.Error("enforce.block.aggregation-threshold not incremented")
	}
	if got := s.Counters["enforce.static_blocks"]; got == 0 {
		t.Error("enforce.static_blocks not incremented")
	}

	span := lastSpan(t, e, "render")
	if span.CorrelationID == "" {
		t.Fatal("render span has no correlation id")
	}
	if got := span.Attr("decision"); got != "block" {
		t.Errorf("span decision = %q, want \"block\"", got)
	}
	if got := span.Attr("rule"); got != "aggregation-threshold" {
		t.Errorf("span rule = %q, want \"aggregation-threshold\"", got)
	}
	if got := span.Attr("pla"); !strings.Contains(got, "thresh") {
		t.Errorf("span pla = %q, want it to name \"thresh\"", got)
	}

	// The violation audit event carries the same correlation id and the
	// deciding PLA.
	var found bool
	for _, ev := range e.Audit().Violations() {
		if ev.Object != "rx-list" {
			continue
		}
		found = true
		if ev.Trace != span.CorrelationID {
			t.Errorf("violation trace = %q, span id = %q", ev.Trace, span.CorrelationID)
		}
		hasPLA := false
		for _, id := range ev.PLAs {
			if id == "thresh" {
				hasPLA = true
			}
		}
		if !hasPLA {
			t.Errorf("violation PLAs = %v, want to include \"thresh\"", ev.PLAs)
		}
	}
	if !found {
		t.Fatal("no violation audit event for the blocked render")
	}
	// And the correlation id reaches the streamed JSONL sink.
	if !strings.Contains(sink.String(), `"trace":"`+span.CorrelationID+`"`) {
		t.Error("audit sink JSONL does not carry the correlation id")
	}
}

// TestAllowedRenderObservability checks the allow path: counters move,
// the span records decision=allow, and the render audit event shares the
// span's correlation id.
func TestAllowedRenderObservability(t *testing.T) {
	e := quickEngine2(t)
	enf, err := e.Render(context.Background(), "rx-list", Consumer{Name: "u", Role: "analyst"})
	if err != nil {
		t.Fatal(err)
	}

	s := e.MetricsSnapshot()
	if got := s.Counters["render.total"]; got != 1 {
		t.Errorf("render.total = %d, want 1", got)
	}
	if got := s.Counters["render.blocked"]; got != 0 {
		t.Errorf("render.blocked = %d, want 0", got)
	}
	if got := s.Counters["render.rows"]; got != uint64(enf.Table.NumRows()) {
		t.Errorf("render.rows = %d, want %d", got, enf.Table.NumRows())
	}
	if h, ok := s.Histograms["span.render"]; !ok || h.Count != 1 {
		t.Errorf("span.render histogram = %+v, want one observation", h)
	}

	span := lastSpan(t, e, "render")
	if got := span.Attr("decision"); got != "allow" {
		t.Errorf("span decision = %q, want \"allow\"", got)
	}
	renders := e.Audit().ByKind("render")
	if len(renders) != 1 {
		t.Fatalf("render audit events = %d, want 1", len(renders))
	}
	if renders[0].Trace != span.CorrelationID {
		t.Errorf("render audit trace = %q, span id = %q", renders[0].Trace, span.CorrelationID)
	}
}

// TestExternalCorrelationID checks that an id stitched in from an outer
// system (a request id) flows through the span into the audit trail.
func TestExternalCorrelationID(t *testing.T) {
	e := quickEngine2(t)
	ctx := WithCorrelationID(context.Background(), "req-7")
	if got := CorrelationID(ctx); got != "req-7" {
		t.Fatalf("CorrelationID round-trip = %q", got)
	}
	if _, err := e.Render(ctx, "rx-list", Consumer{Name: "u", Role: "analyst"}); err != nil {
		t.Fatal(err)
	}
	if span := lastSpan(t, e, "render"); span.CorrelationID != "req-7" {
		t.Errorf("span id = %q, want the external \"req-7\"", span.CorrelationID)
	}
	renders := e.Audit().ByKind("render")
	if len(renders) != 1 || renders[0].Trace != "req-7" {
		t.Errorf("render audit trace = %v, want \"req-7\"", renders)
	}
}

// TestMetricsEndpoint drives the HTTP surface: /metrics serves the merged
// snapshot (including the cache.* fold-in) and /debug/pprof responds.
func TestMetricsEndpoint(t *testing.T) {
	e := quickEngine2(t)
	if _, err := e.Render(context.Background(), "rx-list", Consumer{Name: "u", Role: "analyst"}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(e.DebugHandler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	var s MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["render.total"] != 1 {
		t.Errorf("served render.total = %d, want 1", s.Counters["render.total"])
	}
	if _, ok := s.Counters["cache.misses"]; !ok {
		t.Error("served snapshot lacks the folded-in cache counters")
	}

	pprofResp, err := http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, pprofResp.Body)
	pprofResp.Body.Close()
	if pprofResp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d", pprofResp.StatusCode)
	}
}

// TestETLObservability checks the warehouse level: a guarded pipeline run
// produces an "etl" span whose correlation id is stamped on every
// transform audit event, and moves the etl.* counters.
func TestETLObservability(t *testing.T) {
	e, err := OpenHealthcare(HealthcareConfig{Prescriptions: 300})
	if err != nil {
		t.Fatal(err)
	}
	base := e.MetricsSnapshot().Counters["etl.steps"] // scenario build runs ETL too
	span := lastSpan(t, e, "etl")
	if span.CorrelationID == "" {
		t.Fatal("etl span has no correlation id")
	}
	if base == 0 {
		t.Error("etl.steps counter did not move during the scenario build")
	}
	transforms := e.Audit().ByKind("transform")
	if len(transforms) == 0 {
		t.Fatal("no transform audit events")
	}
	for _, ev := range transforms {
		if ev.Trace == "" {
			t.Fatalf("transform event %d has no trace id", ev.Seq)
		}
	}
	if h, ok := e.MetricsSnapshot().Histograms["etl.wave.duration"]; !ok || h.Count == 0 {
		t.Error("etl.wave.duration histogram has no observations")
	}
}

// quickEngine2 mirrors quickEngine but accepts Open options (the obs
// tests need an audit sink alongside the standard fixture scenario).
func quickEngine2(t *testing.T, opts ...Option) *Engine {
	t.Helper()
	e := Open(opts...)
	seedQuickScenario(t, e)
	return e
}
