// Package core ties the substrates together into the paper's workflow —
// register per-owner sources, attach PLAs at any of the four levels, run
// guarded ETL into the warehouse, define reports, derive and approve
// meta-reports, render reports with full enforcement and auditing, check
// compliance statically, generate PLA-derived test suites, and resolve
// disputes via provenance. The root package plabi is the public façade
// over this engine.
package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"plabi/internal/audit"
	"plabi/internal/compile"
	"plabi/internal/enforce"
	"plabi/internal/etl"
	"plabi/internal/fault"
	"plabi/internal/metadata"
	"plabi/internal/metareport"
	"plabi/internal/obs"
	"plabi/internal/policy"
	"plabi/internal/provenance"
	"plabi/internal/relation"
	"plabi/internal/report"
	"plabi/internal/sql"
)

// Engine is one privacy-aware BI deployment. All methods are safe for
// concurrent use: the substrates lock themselves, and the engine's own
// mutable state (sources, meta-reports, assignments) sits behind mu.
type Engine struct {
	Policies *policy.Registry
	Metadata *metadata.Store
	Catalog  *sql.Catalog
	Tracer   *provenance.Tracer
	Graph    *provenance.Graph
	Reports  *report.Registry
	Audit    *audit.Log

	mu        sync.RWMutex
	sources   map[string]*etl.Source
	metas     []*metareport.MetaReport
	assign    map[string]string
	pipelines []*etl.Pipeline
	workers   int
	// etlCtxs retains the latest staging context per pipeline name; it is
	// the base state ApplyDelta propagates source deltas through.
	etlCtxs map[string]*etl.Context

	// deltaMu serializes pipeline runs and delta applications: both
	// mutate the retained staging contexts and the per-step incremental
	// state. Renders are unaffected — they read the catalog, whose
	// tables swap atomically at commit.
	deltaMu sync.Mutex

	enforcer   *enforce.ReportEnforcer
	obsp       atomic.Pointer[obs.Metrics]
	faults     atomic.Pointer[fault.Injector]
	failClosed atomic.Bool
	retryp     atomic.Pointer[fault.RetryPolicy]
	retrySites atomic.Pointer[map[string]fault.RetryPolicy]
	segStore   atomic.Pointer[relation.SegmentStore]
	spillRows  atomic.Int64
	closed     atomic.Bool
}

// New returns an empty engine with its own observability registry.
func New() *Engine {
	e := &Engine{
		Policies: policy.NewRegistry(),
		Metadata: metadata.NewStore(),
		Catalog:  sql.NewCatalog(),
		Tracer:   provenance.NewTracer(),
		Graph:    provenance.NewGraph(),
		Reports:  report.NewRegistry(),
		Audit:    audit.NewLog(),
		sources:  map[string]*etl.Source{},
		assign:   map[string]string{},
		etlCtxs:  map[string]*etl.Context{},
	}
	e.enforcer = enforce.NewReportEnforcer(e.Policies, e.Catalog, e.Tracer)
	e.SetMetrics(obs.New())
	e.SetRetryPolicy(fault.DefaultRetryPolicy())
	return e
}

// SetMetrics replaces the engine's observability registry and rewires the
// audit log and the report enforcer to record into it. Passing nil
// disables instrumentation (every emission point degrades to a no-op).
func (e *Engine) SetMetrics(m *obs.Metrics) {
	e.obsp.Store(m)
	e.Audit.SetMetrics(m)
	e.enforcer.SetMetrics(m)
	if s := e.segStore.Load(); s != nil {
		s.SetMetrics(m)
	}
}

// Obs returns the engine's observability registry (nil when detached; a
// nil registry is safe to record into).
func (e *Engine) Obs() *obs.Metrics { return e.obsp.Load() }

// SetFaults attaches a fault injector to every instrumented boundary —
// ETL steps and extraction, render workers, audit-sink writes — and
// wires the engine's metrics into it. Passing nil detaches injection.
func (e *Engine) SetFaults(fi *fault.Injector) {
	fi.SetMetrics(e.Obs())
	e.faults.Store(fi)
	e.Audit.SetFaults(fi)
	e.enforcer.SetFaults(fi)
	if s := e.segStore.Load(); s != nil {
		s.SetFaults(fi)
	}
}

// Faults returns the attached injector (nil when none).
func (e *Engine) Faults() *fault.Injector { return e.faults.Load() }

// SetRetryPolicy replaces the default bounded-backoff policy applied at
// the engine's retryable sites: audit-sink writes and ETL source reads.
// Per-site overrides installed with SetRetryPolicyFor keep precedence.
func (e *Engine) SetRetryPolicy(p fault.RetryPolicy) {
	e.retryp.Store(&p)
	e.Audit.SetRetryPolicy(e.RetryPolicyFor(fault.SiteAuditSink))
	if s := e.segStore.Load(); s != nil {
		s.SetRetryPolicy(e.RetryPolicyFor(fault.SiteSegmentRead))
	}
}

// SetRetryPolicyFor overrides the retry policy at one named site
// (fault.SiteAuditSink, fault.SiteETLExtract, ...), leaving the default
// in force everywhere else — deployments that must retry audit-sink
// writes harder than source reads tune each boundary independently.
// Unknown site names install silently and simply never match.
func (e *Engine) SetRetryPolicyFor(site string, p fault.RetryPolicy) {
	for {
		old := e.retrySites.Load()
		next := map[string]fault.RetryPolicy{}
		if old != nil {
			for k, v := range *old {
				next[k] = v
			}
		}
		next[site] = p
		if e.retrySites.CompareAndSwap(old, &next) {
			break
		}
	}
	if site == fault.SiteAuditSink {
		e.Audit.SetRetryPolicy(p)
	}
	if site == fault.SiteSegmentRead {
		if s := e.segStore.Load(); s != nil {
			s.SetRetryPolicy(p)
		}
	}
}

// SetSegmentStore roots the engine's out-of-core columnar storage at
// dir and returns the store, pre-wired into the engine's metrics, fault
// injector and segment-read retry policy. ETL staging tables that cross
// the spill threshold (SetSpillThreshold) move into it, and later
// reconfiguration of metrics/faults/retry follows through automatically.
func (e *Engine) SetSegmentStore(dir string) *relation.SegmentStore {
	s := relation.NewSegmentStore(dir)
	s.SetMetrics(e.Obs())
	s.SetFaults(e.Faults())
	s.SetRetryPolicy(e.RetryPolicyFor(fault.SiteSegmentRead))
	e.segStore.Store(s)
	return s
}

// SegmentStore returns the configured segment store (nil when the
// engine is fully in-memory).
func (e *Engine) SegmentStore() *relation.SegmentStore { return e.segStore.Load() }

// SetSpillThreshold sets the staging-table row count at or above which
// ETL outputs spill to the segment store; 0 (the default) disables
// spilling even when a store is configured.
func (e *Engine) SetSpillThreshold(n int) { e.spillRows.Store(int64(n)) }

// SpillThreshold returns the configured spill threshold.
func (e *Engine) SpillThreshold() int { return int(e.spillRows.Load()) }

// RetryPolicy returns the engine's default retry policy.
func (e *Engine) RetryPolicy() fault.RetryPolicy {
	if p := e.retryp.Load(); p != nil {
		return *p
	}
	return fault.RetryPolicy{}
}

// RetryPolicyFor returns the policy in force at one site: the per-site
// override when installed, the engine default otherwise.
func (e *Engine) RetryPolicyFor(site string) fault.RetryPolicy {
	if m := e.retrySites.Load(); m != nil {
		if p, ok := (*m)[site]; ok {
			return p
		}
	}
	return e.RetryPolicy()
}

// Close flushes and closes the engine's audit sink and marks the engine
// closed. In-flight operations complete normally — Close does not
// interrupt them — but the trail they stream stops at the sink boundary,
// so callers should drain before closing. Idempotent: the second and
// later calls return nil without touching the sink.
func (e *Engine) Close() error {
	if !e.closed.CompareAndSwap(false, true) {
		return nil
	}
	return e.Audit.CloseSink()
}

// SetFailClosed selects the audit-unavailability policy for renders.
// Fail-closed deployments refuse to deliver report data whose render
// cannot be recorded in the audit sink: Render returns an error wrapping
// audit.ErrAuditUnavailable instead of the enforced table. The default
// is fail-open (the drop is counted and delivery proceeds).
func (e *Engine) SetFailClosed(on bool) { e.failClosed.Store(on) }

// FailClosed reports whether audit unavailability blocks renders.
func (e *Engine) FailClosed() bool { return e.failClosed.Load() }

// MetricsSnapshot captures the engine's metrics, folding in the render
// decision-cache counters (cache.*) which are kept authoritative inside
// the cache itself rather than instrumented on the hot path, plus the
// residual-program generation (compile.generation) so operators can see
// that a policy change actually recompiled.
func (e *Engine) MetricsSnapshot() obs.Snapshot {
	s := e.Obs().Snapshot()
	cs := e.CacheStats()
	s.Counters["cache.hits"] = cs.Hits
	s.Counters["cache.misses"] = cs.Misses
	s.Counters["cache.invalidations"] = cs.Invalidations
	s.Gauges["cache.entries"] = int64(cs.Entries)
	s.Gauges["compile.generation"] = int64(e.enforcer.ProgramGeneration())
	return s
}

// SetWorkers bounds parallelism for ETL waves and render row enforcement
// (0 restores the default of one worker per CPU).
func (e *Engine) SetWorkers(n int) {
	e.mu.Lock()
	e.workers = n
	e.mu.Unlock()
	e.enforcer.SetWorkers(n)
}

// SetCacheSize bounds the render decision cache (0 restores the default).
func (e *Engine) SetCacheSize(n int) { e.enforcer.SetCacheSize(n) }

// CacheStats snapshots the render decision-cache counters.
func (e *Engine) CacheStats() enforce.CacheStats { return e.enforcer.CacheStats() }

// SetCompiledRenders forces this engine's renders through the residual
// compiled programs regardless of the process-wide execution mode.
func (e *Engine) SetCompiledRenders(on bool) { e.enforcer.SetCompiledRenders(on) }

// ProgramGeneration counts the residual programs compiled over this
// engine's lifetime. It moves on every plan build — including the
// rebuilds a policy change (AddPLAs, DeriveMetaReports, hot reload)
// forces — so a bump after a reload proves recompilation happened.
func (e *Engine) ProgramGeneration() uint64 { return e.enforcer.ProgramGeneration() }

// CompileReport specializes one (report, role, purpose) triple into its
// residual render program and returns it for inspection. The program is
// the same object compiled renders execute: it lands in the
// generation-keyed decision cache, so a subsequent render at unchanged
// generations reuses it. The unknown-report case wraps
// report.ErrUnknownReport.
func (e *Engine) CompileReport(reportID string, c report.Consumer) (*compile.Program, error) {
	d, ok := e.Reports.Get(reportID)
	if !ok {
		return nil, fmt.Errorf("core: %w %q", report.ErrUnknownReport, reportID)
	}
	prog, _, err := e.enforcer.ProgramFor(d, c.Role, c.Purpose)
	return prog, err
}

// ExplainCompiled renders the residual program for one (report, role,
// purpose) triple as a deterministic, human-readable plan.
func (e *Engine) ExplainCompiled(reportID string, c report.Consumer) (string, error) {
	prog, err := e.CompileReport(reportID, c)
	if err != nil {
		return "", err
	}
	return prog.Explain(), nil
}

// Precompile eagerly compiles the residual program for every registered
// report × delivery role (under the report's declared purpose), so the
// first render after a policy change or hot reload pays no compilation
// cost. It returns the number of (report, role) pairs compiled. Reports
// with no declared roles compile once under the empty role.
func (e *Engine) Precompile() (int, error) {
	n := 0
	for _, d := range e.Reports.All() {
		roles := d.Roles
		if len(roles) == 0 {
			roles = []string{""}
		}
		for _, role := range roles {
			if err := e.enforcer.Precompile(d, role, d.Purpose); err != nil {
				return n, fmt.Errorf("core: precompile %s for role %q: %w", d.ID, role, err)
			}
			n++
		}
	}
	return n, nil
}

// AddSource registers a data provider; its tables become traceable
// provenance bases and queryable catalog entries.
func (e *Engine) AddSource(src *etl.Source) {
	e.mu.Lock()
	e.sources[strings.ToLower(src.Name)] = src
	e.mu.Unlock()
	for _, t := range src.Tables {
		e.Catalog.Register(t)
		e.Tracer.RegisterBase(t)
		_, _ = e.Audit.AppendChecked(context.Background(), audit.Event{Kind: "register", Actor: src.Owner, Object: t.Name,
			Detail: fmt.Sprintf("%d rows", t.NumRows())})
	}
}

// Source returns a registered data provider by name.
func (e *Engine) Source(name string) (*etl.Source, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	s, ok := e.sources[strings.ToLower(name)]
	return s, ok
}

// SourceNames lists the registered providers in registration-independent
// sorted order.
func (e *Engine) SourceNames() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.sources))
	for name := range e.sources {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// SourceOwners lists the distinct owners behind the registered
// providers, sorted — the universe of legitimate integration
// beneficiaries.
func (e *Engine) SourceOwners() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	seen := map[string]bool{}
	var out []string
	for _, s := range e.sources {
		if !seen[s.Owner] {
			seen[s.Owner] = true
			out = append(out, s.Owner)
		}
	}
	sort.Strings(out)
	return out
}

// AddPLAs parses a PLA DSL document and registers every block. Cached
// render decisions computed under the previous policy set stop validating
// immediately (the registry generation moves).
func (e *Engine) AddPLAs(dsl string) error {
	plas, err := policy.ParseFile(dsl)
	if err != nil {
		return err
	}
	for _, p := range plas {
		if err := e.Policies.Add(p); err != nil {
			return err
		}
		_, _ = e.Audit.AppendChecked(context.Background(), audit.Event{Kind: "pla", Actor: p.Owner, Object: p.ID,
			Detail: fmt.Sprintf("level=%s scope=%s atoms=%d", p.Level, p.Scope, p.Atoms())})
	}
	return nil
}

// RunETL executes a pipeline with the PLA guard, recording every step in
// the audit log and registering staging outputs in the catalog and
// tracer. When continueOnViolation is true, blocked steps are skipped and
// recorded while the rest of the pipeline proceeds.
func (e *Engine) RunETL(p *etl.Pipeline, continueOnViolation bool) (etl.Result, error) {
	return e.RunETLContext(context.Background(), p, continueOnViolation)
}

// RunETLContext is RunETL honouring ctx between pipeline waves.
func (e *Engine) RunETLContext(ctx context.Context, p *etl.Pipeline, continueOnViolation bool) (etl.Result, error) {
	e.deltaMu.Lock()
	defer e.deltaMu.Unlock()
	m := e.Obs()
	ctx, span := m.StartSpan(ctx, "etl")
	span.Set("pipeline", p.Name)
	defer span.End()
	ectx := e.newETLContext()
	ectx.Observe = e.observeETL(ctx, span.ID())
	if p.Workers == 0 {
		e.mu.RLock()
		p.Workers = e.workers
		e.mu.RUnlock()
	}
	e.recordPipeline(p)
	res, err := p.RunContext(ctx, ectx, continueOnViolation)
	span.Set("violations", fmt.Sprint(len(res.Violations)))
	// Retain the staging context as the base state for ApplyDelta — even
	// after a failed run, so the retained state always matches whatever
	// the registration loop below published to the catalog.
	e.mu.Lock()
	e.etlCtxs[p.Name] = ectx
	e.mu.Unlock()
	// Register every staging output for reporting and tracing.
	for name, t := range ectx.Staging {
		reg := t
		if reg.Name != name {
			reg = t.Clone()
			reg.Name = name
		}
		e.Catalog.Register(reg)
		if reg.Base {
			e.Tracer.RegisterBase(reg)
		}
	}
	return res, err
}

// newETLContext builds a fresh staging context wired to the engine's
// guard, provenance graph, metrics, fault injector and spill config.
func (e *Engine) newETLContext() *etl.Context {
	ectx := etl.NewContext(enforce.NewPLAGuard(e.Policies))
	ectx.Graph = e.Graph
	ectx.Metrics = e.Obs()
	ectx.Faults = e.Faults()
	ectx.Retry = e.RetryPolicyFor(fault.SiteETLExtract)
	ectx.SpillStore = e.SegmentStore()
	ectx.SpillThreshold = e.SpillThreshold()
	return ectx
}

// observeETL builds the Observe callback that streams pipeline events
// into the audit trail under one trace id.
func (e *Engine) observeETL(ctx context.Context, trace string) func(step, op, output string, rowsIn, rowsOut int, err error) {
	return func(step, op, output string, rowsIn, rowsOut int, err error) {
		ev := audit.Event{Kind: "transform", Actor: step, Object: output,
			Detail: fmt.Sprintf("%s %d->%d rows", op, rowsIn, rowsOut),
			Trace:  trace}
		if err != nil {
			ev.Kind = "violation"
			ev.Detail = err.Error()
			if etl.IsSkipped(err) {
				ev.Kind = "skip"
			}
		}
		_, _ = e.Audit.AppendChecked(ctx, ev)
	}
}

// ApplyDelta applies a batch of source deltas — inserts, in-place
// updates and deletes keyed per source table — and incrementally
// refreshes every recorded pipeline's staging state derived from them.
// Steps untouched by the changes are skipped entirely; row-wise
// transforms, filters, left-append joins, entity resolution over an
// unchanged canon and retained aggregates recompute only the delta;
// everything else reruns. Nothing commits until the whole batch
// succeeds: on any error (injected fault at the etl.delta site, a
// violation from a guard re-check, validation) the sources and staging
// areas are restored and the previous catalog state keeps serving.
//
// On success the new source versions and changed staging outputs commit
// via Catalog.Refresh — bumping per-table data epochs, not the catalog
// generation — so cached render plans survive and only folded renders
// whose read set moved recompute. The provenance tracer extends its
// column dictionaries in place for append-only changes.
func (e *Engine) ApplyDelta(ctx context.Context, b etl.Batch) (etl.DeltaResult, error) {
	m := e.Obs()
	ctx, span := m.StartSpan(ctx, "delta")
	defer span.End()
	e.deltaMu.Lock()
	defer e.deltaMu.Unlock()
	m.Counter("delta.total").Inc()

	var zero etl.DeltaResult
	fail := func(err error) (etl.DeltaResult, error) {
		m.Counter("delta.errors").Inc()
		span.Set("decision", "error")
		return zero, err
	}

	// Phase 1: compute the new source-table versions copy-on-write;
	// nothing observable changes yet.
	type swap struct {
		src  *etl.Source
		key  string // table key inside src.Tables
		old  *relation.Table
		next *relation.Table
		ch   etl.Change
	}
	swaps := map[string]*swap{} // keyed "source.table", lower-cased
	var order []string
	for i := range b.Deltas {
		d := &b.Deltas[i]
		src, ok := e.Source(d.Source)
		if !ok {
			return fail(fmt.Errorf("core: delta for unknown source %q", d.Source))
		}
		qk := strings.ToLower(d.Source + "." + d.Table)
		sw := swaps[qk]
		if sw == nil {
			cur, ok := src.Table(d.Table)
			if !ok {
				return fail(fmt.Errorf("core: source %q has no table %q", d.Source, d.Table))
			}
			sw = &swap{src: src, key: strings.ToLower(d.Table), old: cur, next: cur}
			swaps[qk] = sw
			order = append(order, qk)
		}
		next, ch, err := d.Apply(sw.next)
		if err != nil {
			return fail(err)
		}
		sw.next = next
		sw.ch = sw.ch.Merge(ch)
	}
	changes := map[string]etl.Change{}
	for qk, sw := range swaps {
		sw.ch = sw.ch.Normalize(sw.next.NumRows())
		changes[qk] = sw.ch
	}

	// Phase 2: swap the sources in place so extract steps re-point at
	// the new versions; rolled back wholesale on any pipeline failure.
	for _, sw := range swaps {
		sw.src.Tables[sw.key] = sw.next
	}
	rollbackSources := func() {
		for _, sw := range swaps {
			sw.src.Tables[sw.key] = sw.old
		}
	}

	// Phase 3: propagate through every pipeline with a retained staging
	// context. Each pipeline's ApplyDelta is atomic over its own staging;
	// if a later pipeline fails, earlier ones have already refreshed
	// their staging against the rolled-back sources, so their retained
	// contexts are dropped — the next run or delta rebuilds them — while
	// the catalog (nothing committed) keeps serving the old state.
	agg := etl.DeltaResult{Changed: map[string]etl.Change{}}
	for k, v := range changes {
		agg.Changed[k] = v
	}
	type refreshed struct {
		ectx *etl.Context
		res  etl.DeltaResult
	}
	var applied []refreshed
	var appliedNames []string
	abort := func(err error) (etl.DeltaResult, error) {
		rollbackSources()
		e.mu.Lock()
		for _, name := range appliedNames {
			delete(e.etlCtxs, name)
		}
		e.mu.Unlock()
		return fail(err)
	}
	for _, p := range e.Pipelines() {
		e.mu.RLock()
		ectx := e.etlCtxs[p.Name]
		e.mu.RUnlock()
		var res etl.DeltaResult
		if ectx == nil {
			// A previously failed delta dropped this pipeline's retained
			// state; rebuild it with a full run against the swapped
			// sources and commit its whole staging as rebuilt.
			ectx = e.newETLContext()
			ectx.Observe = e.observeETL(ctx, span.ID())
			if _, err := p.RunContext(ctx, ectx, false); err != nil {
				return abort(fmt.Errorf("core: delta rebuild of pipeline %q: %w", p.Name, err))
			}
			e.mu.Lock()
			e.etlCtxs[p.Name] = ectx
			e.mu.Unlock()
			res = etl.DeltaResult{StepsRebuilt: len(p.Steps), Changed: map[string]etl.Change{}}
			for name := range ectx.Staging {
				res.Changed[name] = etl.Change{Rebuilt: true}
			}
		} else {
			ectx.Observe = e.observeETL(ctx, span.ID())
			var err error
			res, err = p.ApplyDelta(ctx, ectx, changes)
			if err != nil {
				return abort(fmt.Errorf("core: delta through pipeline %q: %w", p.Name, err))
			}
		}
		applied = append(applied, refreshed{ectx, res})
		appliedNames = append(appliedNames, p.Name)
		agg.StepsIncremental += res.StepsIncremental
		agg.StepsRebuilt += res.StepsRebuilt
		agg.StepsUntouched += res.StepsUntouched
		for k, v := range res.Changed {
			if prev, ok := agg.Changed[k]; ok {
				v = prev.Merge(v)
			}
			agg.Changed[k] = v
		}
	}

	// Phase 4: commit. Changed source tables and staging outputs swap
	// into the catalog via Refresh (epoch bump, no generation bump) and
	// into the tracer (append-only changes extend the cached column
	// dictionaries instead of dropping them).
	committed := map[string]bool{}
	refreshTable := func(t *relation.Table, ch etl.Change) {
		key := strings.ToLower(t.Name)
		if committed[key] {
			return
		}
		committed[key] = true
		if err := e.Catalog.Refresh(t); err != nil {
			e.Catalog.Register(t)
		}
		if t.Base {
			appendFrom := -1
			if ch.AppendOnly() {
				appendFrom = t.NumRows() - ch.Appended
			}
			e.Tracer.RefreshBase(t, appendFrom)
		}
	}
	for _, qk := range order {
		sw := swaps[qk]
		refreshTable(sw.next, sw.ch)
		detail := fmt.Sprintf("+%d rows, %d updated", sw.ch.Appended, len(sw.ch.Updated))
		if sw.ch.Rebuilt {
			detail = fmt.Sprintf("rebuilt at %d rows", sw.next.NumRows())
		}
		_, _ = e.Audit.AppendChecked(ctx, audit.Event{Kind: "delta", Actor: sw.src.Owner,
			Object: sw.next.Name, Detail: detail, Trace: span.ID()})
	}
	for _, r := range applied {
		for name, ch := range r.res.Changed {
			t, err := r.ectx.Get(name)
			if err != nil {
				continue // source-qualified inputs are not staging entries
			}
			reg := t
			if reg.Name != name {
				reg = t.Clone()
				reg.Name = name
			}
			refreshTable(reg, ch)
		}
	}
	m.Counter("delta.steps.incremental").Add(uint64(agg.StepsIncremental))
	m.Counter("delta.steps.rebuilt").Add(uint64(agg.StepsRebuilt))
	span.Set("tables", fmt.Sprint(len(order)))
	span.Set("decision", "applied")
	return agg, nil
}

// recordPipeline keeps the plan of every pipeline the engine has run
// (latest per name) so the static analyzer can re-check ETL data flow
// against evolved agreements without re-executing it.
func (e *Engine) recordPipeline(p *etl.Pipeline) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, have := range e.pipelines {
		if have.Name == p.Name {
			e.pipelines[i] = p
			return
		}
	}
	e.pipelines = append(e.pipelines, p)
}

// Pipelines returns the recorded ETL plans, sorted by name.
func (e *Engine) Pipelines() []*etl.Pipeline {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := append([]*etl.Pipeline(nil), e.pipelines...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Assignments returns a copy of the full report-to-meta-report
// assignment map.
func (e *Engine) Assignments() map[string]string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make(map[string]string, len(e.assign))
	for k, v := range e.assign {
		out[k] = v
	}
	return out
}

// DefineReport registers a report definition.
func (e *Engine) DefineReport(d *report.Definition) error {
	if err := e.Reports.Create(d); err != nil {
		return err
	}
	_, _ = e.Audit.AppendChecked(context.Background(), audit.Event{Kind: "report", Object: d.ID, Detail: d.Query})
	return nil
}

// DeriveMetaReports computes the minimal covering meta-report set for the
// current portfolio and marks the metas approved (standing in for the
// owners' sign-off). Cached render decisions keyed to the previous
// assignment stop validating (the enforcer configuration generation
// moves).
func (e *Engine) DeriveMetaReports() ([]*metareport.MetaReport, error) {
	metas, assign, err := metareport.Derive(e.Catalog, e.Reports.All())
	if err != nil {
		return nil, err
	}
	for _, m := range metas {
		m.Approved = true
	}
	e.mu.Lock()
	e.metas = metas
	e.assign = assign
	scopes := assignToScopes(assign)
	e.mu.Unlock()
	e.enforcer.SetExtraScopes(scopes)
	for _, m := range metas {
		_, _ = e.Audit.AppendChecked(context.Background(), audit.Event{Kind: "metareport", Object: m.ID, Detail: m.Query})
	}
	return metas, nil
}

// MetaReports returns the approved meta-report set.
func (e *Engine) MetaReports() []*metareport.MetaReport {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return append([]*metareport.MetaReport(nil), e.metas...)
}

// Meta returns one meta-report by id.
func (e *Engine) Meta(id string) (*metareport.MetaReport, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	for _, m := range e.metas {
		if m.ID == id {
			return m, true
		}
	}
	return nil, false
}

// Assignment returns the id of the meta-report a report is assigned to
// ("" when unassigned).
func (e *Engine) Assignment(reportID string) string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.assign[reportID]
}

// SetAssignment pins a report to a meta-report, overriding the derived
// assignment (used by evolution harnesses replaying historic decisions).
func (e *Engine) SetAssignment(reportID, metaID string) {
	e.mu.Lock()
	e.assign[reportID] = metaID
	scopes := assignToScopes(e.assign)
	e.mu.Unlock()
	e.enforcer.SetExtraScopes(scopes)
}

// Assign2Scopes converts the report->meta assignment into the enforcer's
// extra-scope map.
func (e *Engine) Assign2Scopes() map[string][]string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return assignToScopes(e.assign)
}

func assignToScopes(assign map[string]string) map[string][]string {
	out := map[string][]string{}
	for rid, mid := range assign {
		out[rid] = append(out[rid], mid)
	}
	return out
}

// CheckReportCompliance statically checks a report (by id) for the given
// consumer: derivability from an approved meta-report (when metas exist)
// and PLA compliance of the definition. The unknown-report case wraps
// report.ErrUnknownReport.
func (e *Engine) CheckReportCompliance(reportID string, c report.Consumer) ([]enforce.Decision, error) {
	return e.CheckReportComplianceContext(context.Background(), reportID, c)
}

// CheckReportComplianceContext is CheckReportCompliance honouring ctx.
func (e *Engine) CheckReportComplianceContext(ctx context.Context, reportID string, c report.Consumer) ([]enforce.Decision, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m := e.Obs()
	_, span := m.StartSpan(ctx, "check")
	span.Set("report", reportID)
	span.Set("role", c.Role)
	defer span.End()
	m.Counter("check.total").Inc()
	d, ok := e.Reports.Get(reportID)
	if !ok {
		return nil, fmt.Errorf("core: %w %q", report.ErrUnknownReport, reportID)
	}
	var out []enforce.Decision
	metas := e.MetaReports()
	if len(metas) > 0 {
		covering, cont, err := metareport.CoveringMeta(e.Catalog, d, metas)
		if err != nil {
			return nil, err
		}
		if covering == nil {
			out = append(out, enforce.Decision{
				Outcome: enforce.Block, Rule: "meta-derivability", Subject: d.ID,
				Detail: strings.Join(cont.Reasons, "; "),
			})
		} else {
			e.mu.Lock()
			if e.assign[d.ID] == "" {
				e.assign[d.ID] = covering.ID
				scopes := assignToScopes(e.assign)
				e.mu.Unlock()
				e.enforcer.SetExtraScopes(scopes)
			} else {
				e.mu.Unlock()
			}
		}
	}
	static, err := e.enforcer.StaticCheck(d, c.Role, c.Purpose)
	if err != nil {
		return nil, err
	}
	out = append(out, static...)
	if len(out) > 0 {
		m.Counter("check.noncompliant").Inc()
		span.Set("decision", "noncompliant")
	} else {
		span.Set("decision", "compliant")
	}
	return out, nil
}

// Render renders a report with full enforcement for the consumer,
// recording the render and every decision in the audit log.
func (e *Engine) Render(reportID string, c report.Consumer) (*enforce.Enforced, error) {
	return e.RenderContext(context.Background(), reportID, c)
}

// RenderContext is Render honouring ctx during row enforcement. Safe to
// call from many goroutines at once; repeated renders of the same
// (report, role, purpose) are served from the decision cache. The
// unknown-report case wraps report.ErrUnknownReport.
func (e *Engine) RenderContext(ctx context.Context, reportID string, c report.Consumer) (*enforce.Enforced, error) {
	m := e.Obs()
	ctx, span := m.StartSpan(ctx, "render")
	span.Set("report", reportID)
	span.Set("role", c.Role)
	span.Set("purpose", c.Purpose)
	defer span.End()
	m.Counter("render.total").Inc()

	d, ok := e.Reports.Get(reportID)
	if !ok {
		m.Counter("render.errors").Inc()
		span.Set("decision", "error")
		return nil, fmt.Errorf("core: %w %q", report.ErrUnknownReport, reportID)
	}
	enf, err := e.enforcer.RenderContext(ctx, d, c)
	if err != nil {
		m.Counter("render.errors").Inc()
		span.Set("decision", "error")
		return nil, err
	}
	if sel, perr := d.Parse(); perr == nil {
		inputs := []string{strings.ToLower(sel.From.Name)}
		for _, j := range sel.Joins {
			inputs = append(inputs, strings.ToLower(j.Table.Name))
		}
		e.Graph.AddStep("render", inputs, d.ID, "consumer "+c.Name, 0, enf.Table.NumRows())
	}
	// The span records the verdict and — for blocks — the deciding rule
	// and PLA, so the span stream, the metrics and the audit trail all
	// agree on one correlation id per render.
	span.Set("decision", "allow")
	if blocked := enforce.Blocked(enf.Decisions); len(blocked) > 0 {
		m.Counter("render.blocked").Inc()
		span.Set("decision", "block")
		for _, dec := range blocked {
			m.Counter("enforce.block." + dec.Rule).Inc()
			span.Set("rule", dec.Rule)
			if len(dec.PLAs) > 0 {
				span.Set("pla", strings.Join(dec.PLAs, ","))
			}
		}
	}
	m.Counter("render.rows").Add(uint64(enf.Table.NumRows()))
	m.Counter("render.masked_cells").Add(uint64(enf.MaskedCells))
	m.Counter("render.suppressed_rows").Add(uint64(enf.SuppressedRows))
	// The render and its decisions must reach the audit trail; under the
	// fail-closed policy an un-auditable render is not delivered (§2 iv:
	// no data release without a monitorable trace).
	var sinkErr error
	if _, err := e.Audit.AppendChecked(ctx, audit.Event{Kind: "render", Actor: c.Name, Object: reportID,
		Detail: fmt.Sprintf("role=%s purpose=%s rows=%d masked=%d suppressed=%d",
			c.Role, c.Purpose, enf.Table.NumRows(), enf.MaskedCells, enf.SuppressedRows),
		Trace: span.ID()}); err != nil {
		sinkErr = err
	}
	for _, dec := range enf.Decisions {
		if _, err := e.Audit.DecisionTracedChecked(ctx, c.Name, reportID, span.ID(), dec); err != nil && sinkErr == nil {
			sinkErr = err
		}
	}
	if sinkErr != nil && e.FailClosed() {
		m.Counter("render.audit_blocked").Inc()
		span.Set("decision", "audit-blocked")
		return nil, fmt.Errorf("core: render %q blocked fail-closed: %w", reportID, sinkErr)
	}
	return enf, nil
}

// ComplianceSuite generates the PLA-derived test suite for one report and
// consumer (§6: policies testable before operation).
func (e *Engine) ComplianceSuite(reportID string, c report.Consumer) ([]metareport.ComplianceTest, error) {
	d, ok := e.Reports.Get(reportID)
	if !ok {
		return nil, fmt.Errorf("core: %w %q", report.ErrUnknownReport, reportID)
	}
	var scope string
	if mid := e.Assignment(reportID); mid != "" {
		scope = mid
	}
	return metareport.GenerateTests(e.Policies, e.Catalog, e.Tracer, d, c, scopeList(scope))
}

func scopeList(scope string) []string {
	if scope == "" {
		return nil
	}
	return []string{scope}
}

// Auditor returns the dispute-resolution auditor over this engine's
// state.
func (e *Engine) Auditor() *audit.Auditor {
	return &audit.Auditor{Registry: e.Policies, Tracer: e.Tracer, Graph: e.Graph}
}

// SourceEnforcer returns the Fig. 2a release filter over this engine's
// policies and metadata.
func (e *Engine) SourceEnforcer() *enforce.SourceEnforcer {
	return &enforce.SourceEnforcer{Registry: e.Policies, Metadata: e.Metadata, Metrics: e.Obs(), Faults: e.Faults()}
}

// QueryRewriter returns the VPD-style rewriter over this engine's
// policies and catalog.
func (e *Engine) QueryRewriter() *enforce.QueryRewriter {
	return enforce.NewQueryRewriter(e.Policies, e.Catalog)
}

// ViewManager returns the §3 view-based access-control manager: per-role
// views over the registered tables embodying the PLA rewriting.
func (e *Engine) ViewManager() *enforce.ViewManager {
	return enforce.NewViewManager(e.Policies, e.Catalog)
}

// Enforcer exposes the report enforcer (for advanced callers and the
// experiment harness).
func (e *Engine) Enforcer() *enforce.ReportEnforcer { return e.enforcer }

// Table is a convenience accessor for any registered relation.
func (e *Engine) Table(name string) (*relation.Table, bool) { return e.Catalog.Table(name) }
