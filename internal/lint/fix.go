package lint

import (
	"fmt"
	"sort"
	"strings"

	"plabi/internal/policy"
)

// Fixes extracts the suggested fixes from a set of findings.
func Fixes(fs []Finding) []Fix {
	var out []Fix
	for _, f := range fs {
		if f.SuggestedFix != nil {
			out = append(out, *f.SuggestedFix)
		}
	}
	return out
}

// ApplyFixes applies machine-applicable fixes to parsed PLAs in place
// and returns how many were applied. Fixes address rules by parse-time
// index; removals within one PLA/kind are applied highest index first so
// earlier indices stay valid. Fixes for unknown PLAs, kinds or indices
// are skipped, never guessed.
//
// Every suggested fix is restriction-neutral by construction: removing a
// shadowed or redundant rule, or raising a threshold to the value
// composition enforces anyway, cannot release more data.
func ApplyFixes(plas []*policy.PLA, fixes []Fix) int {
	byID := map[string]*policy.PLA{}
	for _, p := range plas {
		byID[p.ID] = p
	}
	// Group removals so descending-index application is safe even when
	// several target the same slice.
	sort.SliceStable(fixes, func(i, j int) bool {
		if fixes[i].PLAID != fixes[j].PLAID {
			return fixes[i].PLAID < fixes[j].PLAID
		}
		if fixes[i].Kind != fixes[j].Kind {
			return fixes[i].Kind < fixes[j].Kind
		}
		return fixes[i].Index > fixes[j].Index
	})
	applied := 0
	for _, fx := range fixes {
		pla := byID[fx.PLAID]
		if pla == nil {
			continue
		}
		switch {
		case fx.Kind == "access" && fx.Action == "remove":
			if fx.Index >= 0 && fx.Index < len(pla.Access) {
				pla.Access = append(pla.Access[:fx.Index], pla.Access[fx.Index+1:]...)
				applied++
			}
		case fx.Kind == "aggregation" && fx.Action == "set-min":
			if fx.Index >= 0 && fx.Index < len(pla.Aggregations) && fx.Value > 0 {
				pla.Aggregations[fx.Index].MinCount = fx.Value
				applied++
			}
		}
	}
	return applied
}

// FormatPLAs renders PLAs back to DSL text in canonical form (the
// pretty-printer's output; comments and original layout are not
// preserved).
func FormatPLAs(plas []*policy.PLA) string {
	var b strings.Builder
	for i, p := range plas {
		if i > 0 {
			b.WriteString("\n")
		}
		fmt.Fprintln(&b, p.String())
	}
	return b.String()
}
