// Command plalint statically analyzes PLA deployments: dead and
// shadowed rules, cross-agreement conflicts, schema drift, reports no
// consumer can ever see, threshold contradictions across levels, ETL
// plans that leak, and conditions the runtime cannot evaluate.
//
// Usage:
//
//	plalint [flags] file.pla [file2.pla ...]
//	plalint -healthcare            # lint the built-in Fig. 1 deployment
//
// Exit codes: 0 no findings at or above -severity, 1 findings reported,
// 2 unreadable input, parse failure or bad configuration.
package main

import (
	"flag"
	"fmt"
	"os"

	"plabi"
	"plabi/internal/lint"
	"plabi/internal/policy"
)

func main() {
	asJSON := flag.Bool("json", false, "emit findings as a JSON array")
	sevName := flag.String("severity", "warning", "minimum severity to report and gate on (info|warning|error)")
	applyFix := flag.Bool("fix", false, "apply machine-applicable suggested fixes to the input files (rewrites them in canonical form)")
	healthcare := flag.Bool("healthcare", false, "lint the built-in healthcare scenario deployment (catalog, reports, ETL plan and meta-reports included)")
	flag.Parse()

	minSev, err := lint.ParseSeverity(*sevName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "plalint:", err)
		os.Exit(2)
	}
	if flag.NArg() == 0 && !*healthcare {
		fmt.Fprintln(os.Stderr, "plalint: no PLA files given (and -healthcare not set)")
		flag.Usage()
		os.Exit(2)
	}

	var findings []plabi.LintFinding
	if flag.NArg() > 0 {
		fs, err := plabi.LintFiles(flag.Args()...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "plalint:", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	if *healthcare {
		// A small workload suffices: lint inspects agreements, schemas and
		// plans, never row counts.
		e, err := plabi.OpenHealthcare(plabi.HealthcareConfig{Seed: 1, Prescriptions: 200})
		if err != nil {
			fmt.Fprintln(os.Stderr, "plalint:", err)
			os.Exit(2)
		}
		findings = append(findings, plabi.Lint(e)...)
	}
	lint.Sort(findings)

	if *applyFix && flag.NArg() > 0 {
		if err := fixFiles(flag.Args(), lint.Fixes(findings)); err != nil {
			fmt.Fprintln(os.Stderr, "plalint:", err)
			os.Exit(2)
		}
	}

	shown := lint.Filter(findings, minSev)
	if *asJSON {
		err = plabi.WriteLintJSON(os.Stdout, shown)
	} else {
		err = plabi.WriteLintText(os.Stdout, shown)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "plalint:", err)
		os.Exit(2)
	}
	if len(shown) > 0 {
		os.Exit(1)
	}
}

// fixFiles rewrites each input file whose PLAs have applicable fixes.
// Files are re-parsed individually so fixes land in the file that
// declared the agreement; untouched files are left byte-identical.
func fixFiles(paths []string, fixes []lint.Fix) error {
	if len(fixes) == 0 {
		return nil
	}
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		plas, err := policy.ParseFileNamed(path, string(src))
		if err != nil {
			return err
		}
		local := map[string]bool{}
		for _, p := range plas {
			local[p.ID] = true
		}
		var mine []lint.Fix
		for _, fx := range fixes {
			if local[fx.PLAID] {
				mine = append(mine, fx)
			}
		}
		applied := lint.ApplyFixes(plas, mine)
		if applied == 0 {
			continue
		}
		if err := os.WriteFile(path, []byte(lint.FormatPLAs(plas)), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "plalint: %s: applied %d fix(es)\n", path, applied)
	}
	return nil
}
