package core

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"plabi/internal/enforce"
	"plabi/internal/etl"
	"plabi/internal/fault"
	"plabi/internal/relation"
	"plabi/internal/report"
	"plabi/internal/workload"
)

// dumpTable renders a table with its per-row lineage, so convergence
// checks cover provenance byte-for-byte, not just cell values.
func dumpTable(t *relation.Table) string {
	var b strings.Builder
	b.WriteString(t.String())
	for i := 0; i < t.NumRows(); i++ {
		for _, ref := range t.RowLineage(i) {
			b.WriteString(ref.String())
			b.WriteByte(' ')
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// buildEngineFromTables assembles the full healthcare deployment over
// explicit source-table versions — the fresh-rebuild oracle an
// incrementally refreshed engine must converge to.
func buildEngineFromTables(rx, fd, dc, lr, res *relation.Table) (*Engine, error) {
	e := New()
	e.AddSource(etl.NewSource("hospital", "hospital", rx))
	e.AddSource(etl.NewSource("familydoctors", "familydoctors", fd))
	e.AddSource(etl.NewSource("healthagency", "healthagency", dc))
	e.AddSource(etl.NewSource("laboratory", "laboratory", lr))
	e.AddSource(etl.NewSource("municipality", "municipality", res))
	if err := e.AddPLAs(ScenarioPLAs); err != nil {
		return nil, err
	}
	if _, err := e.RunETL(HealthcarePipeline(e), false); err != nil {
		return nil, err
	}
	for _, d := range StandardReports() {
		if err := e.DefineReport(d); err != nil {
			return nil, err
		}
	}
	if _, err := e.DeriveMetaReports(); err != nil {
		return nil, err
	}
	return e, nil
}

// sourceTable fetches the current version of a source table.
func sourceTable(t *testing.T, e *Engine, source, table string) *relation.Table {
	t.Helper()
	src, ok := e.Source(source)
	if !ok {
		t.Fatalf("no source %q", source)
	}
	tb, ok := src.Table(table)
	if !ok {
		t.Fatalf("source %q has no table %q", source, table)
	}
	return tb
}

// randRxRow synthesizes a prescriptions row referencing existing
// patients and drugs, so joins and thresholds stay exercised.
func randRxRow(rng *rand.Rand, ds *workload.Dataset, id int) relation.Row {
	return relation.Row{
		relation.Int(int64(1_000_000 + id)),
		relation.Str(ds.PatientNames[rng.Intn(len(ds.PatientNames))]),
		relation.Str("Dr. " + ds.PatientNames[rng.Intn(len(ds.PatientNames))]),
		relation.Str(ds.DrugNames[rng.Intn(len(ds.DrugNames))]),
		relation.Str(ds.Diseases[rng.Intn(len(ds.Diseases))]),
		relation.DateYMD(2008, time.Month(1+rng.Intn(12)), 1+rng.Intn(28)),
	}
}

// dirtyName re-cases a canonical patient name the way the workload's
// dirty references do, so entity resolution has real work on deltas.
func dirtyName(rng *rand.Rand, name string) string {
	switch rng.Intn(3) {
	case 0:
		return strings.ToUpper(name)
	case 1:
		return strings.ToLower(name)
	default:
		return " " + name + "  "
	}
}

// randomBatch builds one seed-deterministic delta batch: insert-heavy
// prescriptions traffic, dirty family-doctor references, occasional
// in-place updates and (every third round) deletes.
func randomBatch(t *testing.T, rng *rand.Rand, ds *workload.Dataset, e *Engine, round int) etl.Batch {
	t.Helper()
	var b etl.Batch
	rx := sourceTable(t, e, "hospital", "prescriptions")
	n := rx.NumRows()
	d := etl.Delta{Source: "hospital", Table: "prescriptions"}
	for i := 0; i < 10+rng.Intn(10); i++ {
		d.Inserts = append(d.Inserts, randRxRow(rng, ds, round*1000+i))
	}
	for i := 0; i < rng.Intn(3); i++ {
		d.Updates = append(d.Updates, etl.RowUpdate{Row: rng.Intn(n), Vals: randRxRow(rng, ds, round*1000+500+i)})
	}
	if round%3 == 2 {
		d.Deletes = append(d.Deletes, rng.Intn(n), rng.Intn(n))
	}
	b.Deltas = append(b.Deltas, d)

	fd := etl.Delta{Source: "familydoctors", Table: "familydoctor"}
	for i := 0; i < 2+rng.Intn(3); i++ {
		fd.Inserts = append(fd.Inserts, relation.Row{
			relation.Str(dirtyName(rng, ds.PatientNames[rng.Intn(len(ds.PatientNames))])),
			relation.Str("Dr. " + ds.PatientNames[rng.Intn(len(ds.PatientNames))]),
		})
	}
	b.Deltas = append(b.Deltas, fd)

	if round%2 == 1 {
		dc := sourceTable(t, e, "healthagency", "drugcost")
		ri := rng.Intn(dc.NumRows())
		b.Deltas = append(b.Deltas, etl.Delta{Source: "healthagency", Table: "drugcost",
			Updates: []etl.RowUpdate{{Row: ri, Vals: relation.Row{
				dc.Get(ri, "drug"), relation.Int(int64(5 + rng.Intn(95)))}}},
		})
	}
	return b
}

// applyWithRetry pushes one batch through ApplyDelta, retrying the
// tolerable chaos outcomes (injected faults, isolated panics); every
// failed attempt must have rolled back, so the retry applies the same
// pre-delta row indices.
func applyWithRetry(t *testing.T, e *Engine, b etl.Batch) etl.DeltaResult {
	t.Helper()
	for attempt := 0; attempt < 100; attempt++ {
		res, err := e.ApplyDelta(context.Background(), b)
		if err == nil {
			return res
		}
		if !tolerable(err) {
			t.Fatalf("attempt %d: intolerable delta error: %v", attempt, err)
		}
	}
	t.Fatal("delta batch never applied within the retry budget")
	return etl.DeltaResult{}
}

// deltaChaosInjector enables faults on the boundaries a delta crosses:
// the per-step etl.delta site (errors and panics), the full-rebuild
// path's step/extract sites, and the audit sink.
func deltaChaosInjector(seed int64) *fault.Injector {
	fi := fault.NewInjector(seed)
	fi.Enable(fault.SiteETLDelta, fault.SiteConfig{ErrorRate: 0.1, PanicRate: 0.03})
	fi.Enable(fault.SiteETLStep, fault.SiteConfig{ErrorRate: 0.02})
	fi.Enable(fault.SiteETLExtract, fault.SiteConfig{ErrorRate: 0.05, Transient: true})
	fi.Enable(fault.SiteAuditSink, fault.SiteConfig{ErrorRate: 0.05, Transient: true})
	return fi
}

// oracleConsumers enumerates every (report, consumer) pair of the
// standard portfolio.
func oracleConsumers(def *report.Definition) []report.Consumer {
	var out []report.Consumer
	for _, role := range def.Roles {
		out = append(out, report.Consumer{Name: "probe-" + role, Role: role, Purpose: def.Purpose})
	}
	return out
}

// renderString serializes everything observable about one render: the
// enforced table, every decision, and the suppression counters.
func renderString(enf *enforce.Enforced) string {
	var b strings.Builder
	b.WriteString(dumpTable(enf.Table))
	for _, d := range enf.Decisions {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "masked=%d suppressed=%d\n", enf.MaskedCells, enf.SuppressedRows)
	return b.String()
}

// renderKey renders and serializes, folding errors into the key so a
// blocked render must be blocked identically on both engines.
func renderKey(e *Engine, id string, c report.Consumer) string {
	enf, err := e.Render(id, c)
	if err != nil {
		return "err:" + err.Error()
	}
	return renderString(enf)
}

// TestDeltaConvergenceOracle streams randomized delta batches — under
// fault injection at the delta boundary — into the live healthcare
// deployment, then rebuilds a fresh engine from the final source tables
// and asserts byte-identical state: every staging and source table in
// the catalog (values and lineage), every render of every report for
// every consumer (tables, decisions, counters), and provenance traces
// sampled from the wide table. Run under -race in CI.
func TestDeltaConvergenceOracle(t *testing.T) {
	for _, seed := range []int64{11, 22, 33} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runDeltaOracle(t, seed)
		})
	}
}

func runDeltaOracle(t *testing.T, seed int64) {
	cfg := workload.DefaultConfig(seed)
	cfg.Prescriptions = 800
	cfg.Patients = 120
	cfg.LabResults = 50

	fi := deltaChaosInjector(seed)
	var live *Engine
	var ds *workload.Dataset
	for attempt := 0; ; attempt++ {
		var err error
		live, ds, err = BuildHealthcareEngineWith(cfg, func(e *Engine) {
			e.SetRetryPolicy(chaosRetry())
			e.SetFaults(fi)
		})
		if err == nil {
			break
		}
		if !tolerable(err) {
			t.Fatalf("build attempt %d: intolerable error: %v", attempt, err)
		}
		if attempt > 20 {
			t.Fatalf("build never succeeded: %v", err)
		}
	}

	probe := report.Consumer{Name: "ana", Role: "analyst", Purpose: "quality"}
	rng := rand.New(rand.NewSource(seed * 7))
	incremental := 0
	for round := 0; round < 6; round++ {
		res := applyWithRetry(t, live, randomBatch(t, rng, ds, live, round))
		incremental += res.StepsIncremental
		// Keep renders interleaved with the stream: plans and folds must
		// keep serving between (and across) deltas.
		if _, err := live.Render("drug-consumption", probe); err != nil {
			t.Fatalf("round %d render: %v", round, err)
		}
	}
	if incremental == 0 {
		t.Error("no step ever recomputed incrementally across the stream")
	}

	mirror, err := buildEngineFromTables(
		sourceTable(t, live, "hospital", "prescriptions").Clone(),
		sourceTable(t, live, "familydoctors", "familydoctor").Clone(),
		sourceTable(t, live, "healthagency", "drugcost").Clone(),
		sourceTable(t, live, "laboratory", "labresults").Clone(),
		sourceTable(t, live, "municipality", "residents").Clone(),
	)
	if err != nil {
		t.Fatalf("mirror build: %v", err)
	}

	// 1. Catalog state: every source and staging table byte-identical.
	for _, name := range []string{
		"prescriptions", "familydoctor", "drugcost", "residents",
		"familydoctor_clean", "familydoctor_resolved", "rx_cost", "rx_wide",
	} {
		lt, lok := live.Table(name)
		mt, mok := mirror.Table(name)
		if !lok || !mok {
			t.Fatalf("table %q: live=%v mirror=%v", name, lok, mok)
		}
		if dumpTable(lt) != dumpTable(mt) {
			t.Errorf("table %q diverges from full rebuild (%d vs %d rows)",
				name, lt.NumRows(), mt.NumRows())
		}
	}

	// 2. Every render of every report for every consumer.
	for _, def := range StandardReports() {
		for _, c := range oracleConsumers(def) {
			lk := renderKey(live, def.ID, c)
			mk := renderKey(mirror, def.ID, c)
			if lk != mk {
				t.Errorf("render %s/%s diverges:\nlive:\n%s\nmirror:\n%s", def.ID, c.Role, lk, mk)
			}
		}
	}

	// 3. Provenance traces sampled across the wide table.
	lw, _ := live.Table("rx_wide")
	mw, _ := mirror.Table("rx_wide")
	for _, ri := range []int{0, lw.NumRows() / 2, lw.NumRows() - 1} {
		lrt, lerr := live.Tracer.TraceRow(lw, ri)
		mrt, merr := mirror.Tracer.TraceRow(mw, ri)
		if (lerr == nil) != (merr == nil) {
			t.Fatalf("TraceRow(%d): live err=%v mirror err=%v", ri, lerr, merr)
		}
		if fmt.Sprint(lrt.Rows) != fmt.Sprint(mrt.Rows) || fmt.Sprint(lrt.Support) != fmt.Sprint(mrt.Support) {
			t.Errorf("row %d lineage diverges: %v vs %v", ri, lrt, mrt)
		}
		lct, lerr := live.Tracer.TraceCell(lw, ri, "drug")
		mct, merr := mirror.Tracer.TraceCell(mw, ri, "drug")
		if (lerr == nil) != (merr == nil) {
			t.Fatalf("TraceCell(%d): live err=%v mirror err=%v", ri, lerr, merr)
		}
		if lct.String() != mct.String() {
			t.Errorf("cell trace %d diverges: %s vs %s", ri, lct, mct)
		}
	}

	// 4. The stream left an audit trail of committed deltas.
	if len(live.Audit.ByKind("delta")) == 0 {
		t.Error("no delta audit events recorded")
	}

	// 5. Plan-cache survival: a delta bumps data epochs, not the plan
	// generations — cached plans must outlive it and keep hitting.
	for _, def := range StandardReports() {
		for _, c := range oracleConsumers(def) {
			_ = renderKey(live, def.ID, c)
		}
	}
	before := live.CacheStats()
	applyWithRetry(t, live, etl.Batch{Deltas: []etl.Delta{{
		Source: "hospital", Table: "prescriptions",
		Inserts: []relation.Row{randRxRow(rng, ds, 999_000)},
	}}})
	after := live.CacheStats()
	if after.Entries*2 < before.Entries {
		t.Errorf("plan cache lost %d -> %d entries across a delta", before.Entries, after.Entries)
	}
	if _, err := live.Render("drug-consumption", probe); err != nil {
		t.Fatalf("post-delta render: %v", err)
	}
	final := live.CacheStats()
	if final.Hits <= after.Hits {
		t.Errorf("post-delta render missed the plan cache: hits %d -> %d", after.Hits, final.Hits)
	}
}

// TestFoldEpochGranularInvalidation pins the partition-granular fold
// invalidation: a delta to a table outside a report's read set leaves
// its folded render untouched, while a delta to a table it reads drops
// only the fold — the plan survives and re-folds over the new data.
func TestFoldEpochGranularInvalidation(t *testing.T) {
	cfg := workload.DefaultConfig(5)
	cfg.Prescriptions = 400
	cfg.Patients = 80
	cfg.LabResults = 20
	e, ds, err := BuildHealthcareEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.SetCompiledRenders(true)
	probe := report.Consumer{Name: "ana", Role: "analyst", Purpose: "quality"}

	first, err := e.Render("drug-consumption", probe)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := e.Render("drug-consumption", probe)
	if err != nil {
		t.Fatal(err)
	}
	if replay.Table.String() != first.Table.String() {
		t.Fatal("fold replay diverges")
	}
	snap := e.Obs().Snapshot().Counters
	if snap["compile.fold.hits"] == 0 {
		t.Fatalf("no fold replay recorded: %v", snap)
	}

	// Unrelated delta: familydoctor feeds familydoctor_resolved only —
	// drug-consumption reads rx_wide and its base tables, none of which
	// move — so the fold must keep replaying with zero invalidations.
	if _, err := e.ApplyDelta(context.Background(), etl.Batch{Deltas: []etl.Delta{{
		Source: "familydoctors", Table: "familydoctor",
		Inserts: []relation.Row{{relation.Str(ds.PatientNames[0]), relation.Str("Dr. New")}},
	}}}); err != nil {
		t.Fatal(err)
	}
	afterUnrelated, err := e.Render("drug-consumption", probe)
	if err != nil {
		t.Fatal(err)
	}
	snap = e.Obs().Snapshot().Counters
	if snap["compile.fold.invalidations"] != 0 {
		t.Fatalf("unrelated delta invalidated the fold: %v", snap["compile.fold.invalidations"])
	}
	if afterUnrelated.Table.String() != first.Table.String() {
		t.Fatal("render changed after an unrelated delta")
	}

	// Touching delta: a prescriptions insert moves rx_wide's epoch. The
	// fold drops, the plan survives (no cache invalidation), and the
	// re-fold serves the new data.
	statsBefore := e.CacheStats()
	if _, err := e.ApplyDelta(context.Background(), etl.Batch{Deltas: []etl.Delta{{
		Source: "hospital", Table: "prescriptions",
		Inserts: []relation.Row{{
			relation.Int(2_000_000), relation.Str(ds.PatientNames[0]), relation.Str("Dr. A"),
			relation.Str(ds.DrugNames[0]), relation.Str(ds.Diseases[0]), relation.DateYMD(2008, 9, 9),
		}},
	}}}); err != nil {
		t.Fatal(err)
	}
	refolded, err := e.Render("drug-consumption", probe)
	if err != nil {
		t.Fatal(err)
	}
	snap = e.Obs().Snapshot().Counters
	if snap["compile.fold.invalidations"] != 1 {
		t.Fatalf("fold invalidations = %d, want 1", snap["compile.fold.invalidations"])
	}
	statsAfter := e.CacheStats()
	if statsAfter.Invalidations != statsBefore.Invalidations {
		t.Errorf("delta invalidated render plans: %d -> %d",
			statsBefore.Invalidations, statsAfter.Invalidations)
	}
	if statsAfter.Entries < statsBefore.Entries {
		t.Errorf("delta dropped plan entries: %d -> %d", statsBefore.Entries, statsAfter.Entries)
	}

	// The re-fold must equal a fresh rebuild's render.
	mirror, err := buildEngineFromTables(
		sourceTable(t, e, "hospital", "prescriptions").Clone(),
		sourceTable(t, e, "familydoctors", "familydoctor").Clone(),
		sourceTable(t, e, "healthagency", "drugcost").Clone(),
		sourceTable(t, e, "laboratory", "labresults").Clone(),
		sourceTable(t, e, "municipality", "residents").Clone(),
	)
	if err != nil {
		t.Fatal(err)
	}
	want, err := mirror.Render("drug-consumption", probe)
	if err != nil {
		t.Fatal(err)
	}
	if refolded.Table.String() != want.Table.String() {
		t.Fatalf("re-fold diverges from rebuild:\n%s\nvs\n%s", refolded.Table, want.Table)
	}
}

// TestDeltaRecoveryAfterDroppedContext: when a failed delta drops a
// pipeline's retained staging context, the next delta must rebuild the
// pipeline wholesale instead of silently skipping it.
func TestDeltaRecoveryAfterDroppedContext(t *testing.T) {
	cfg := workload.DefaultConfig(9)
	cfg.Prescriptions = 300
	cfg.Patients = 60
	cfg.LabResults = 20
	e, ds, err := BuildHealthcareEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the post-failure state: the retained context is gone.
	e.mu.Lock()
	delete(e.etlCtxs, "healthcare")
	e.mu.Unlock()

	res, err := e.ApplyDelta(context.Background(), etl.Batch{Deltas: []etl.Delta{{
		Source: "hospital", Table: "prescriptions",
		Inserts: []relation.Row{randRxRow(rand.New(rand.NewSource(1)), ds, 1)},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.StepsRebuilt == 0 {
		t.Fatalf("dropped context not rebuilt: %+v", res)
	}
	// The catalog serves the refreshed wide table.
	mirror, err := buildEngineFromTables(
		sourceTable(t, e, "hospital", "prescriptions").Clone(),
		sourceTable(t, e, "familydoctors", "familydoctor").Clone(),
		sourceTable(t, e, "healthagency", "drugcost").Clone(),
		sourceTable(t, e, "laboratory", "labresults").Clone(),
		sourceTable(t, e, "municipality", "residents").Clone(),
	)
	if err != nil {
		t.Fatal(err)
	}
	lt, _ := e.Table("rx_wide")
	mt, _ := mirror.Table("rx_wide")
	if dumpTable(lt) != dumpTable(mt) {
		t.Fatal("rebuilt pipeline state diverges from fresh build")
	}
}
