// Package etl implements the extract-transform-load pipeline of the
// outsourced BI scenario (§2, §4): extraction from per-owner sources into
// a staging area, cleansing, entity resolution across sources, joins and
// derivations, with every step recorded in the provenance transformation
// graph and guarded by PLA enforcement hooks (join permissions,
// integration permissions — Fig. 3).
package etl

import (
	"fmt"
	"strings"

	"plabi/internal/provenance"
	"plabi/internal/relation"
)

// Source is one data provider: an owning institution and its tables.
type Source struct {
	Name   string // e.g. "hospital"
	Owner  string // owning institution (often equal to Name)
	Tables map[string]*relation.Table
}

// NewSource builds a source from tables, keyed by table name.
func NewSource(name, owner string, tables ...*relation.Table) *Source {
	s := &Source{Name: name, Owner: owner, Tables: map[string]*relation.Table{}}
	for _, t := range tables {
		s.Tables[strings.ToLower(t.Name)] = t
	}
	return s
}

// Table returns the named table of the source.
func (s *Source) Table(name string) (*relation.Table, bool) {
	t, ok := s.Tables[strings.ToLower(name)]
	return t, ok
}

// Guard is consulted before privacy-relevant ETL operations. The enforce
// package provides the PLA-backed implementation; AllowAll is the null
// guard.
type Guard interface {
	// CheckJoin is consulted before joining data deriving from the two
	// base tables.
	CheckJoin(left, right string) error
	// CheckIntegration is consulted before donor data is used to
	// clean/resolve data belonging to the beneficiary owner (§5 v).
	CheckIntegration(donorTable, beneficiaryOwner string) error
}

// AllowAll is a Guard that permits every operation.
type AllowAll struct{}

// CheckJoin implements Guard.
func (AllowAll) CheckJoin(_, _ string) error { return nil }

// CheckIntegration implements Guard.
func (AllowAll) CheckIntegration(_, _ string) error { return nil }

// Context carries pipeline state: the staging area, the provenance graph,
// the guard, and an optional event sink.
type Context struct {
	Staging map[string]*relation.Table
	Graph   *provenance.Graph
	Guard   Guard
	// Observe, when non-nil, receives one event per executed step.
	Observe func(step, op, output string, rowsIn, rowsOut int, err error)
}

// NewContext returns a context with an empty staging area and the given
// guard (nil means AllowAll).
func NewContext(g Guard) *Context {
	if g == nil {
		g = AllowAll{}
	}
	return &Context{Staging: map[string]*relation.Table{}, Graph: provenance.NewGraph(), Guard: g}
}

// Get fetches a staging table.
func (c *Context) Get(name string) (*relation.Table, error) {
	t, ok := c.Staging[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("etl: staging table %q not found", name)
	}
	return t, nil
}

// Put stores a staging table under the given name.
func (c *Context) Put(name string, t *relation.Table) {
	c.Staging[strings.ToLower(name)] = t
}

// Step is one pipeline operation.
type Step interface {
	// Name identifies the step instance for annotations and audits.
	Name() string
	// Op is the operation kind (extract, cleanse, join, ...).
	Op() string
	// Inputs and Output name the staging relations involved.
	Inputs() []string
	Output() string
	// Run executes the step against the context.
	Run(c *Context) error
}

// Pipeline is an ordered list of steps. PLA annotations attach to steps by
// name via the policy registry (scope = step name).
type Pipeline struct {
	Name  string
	Steps []Step
}

// Result reports one pipeline run.
type Result struct {
	StepsRun int
	// Violations collects the enforcement errors of failed steps
	// (the run stops at the first one unless ContinueOnViolation).
	Violations []error
}

// Run executes the pipeline. Enforcement errors (etl.ViolationError)
// abort the offending step; when continueOnViolation is true the pipeline
// carries on with the remaining steps (the blocked step's output is
// absent), otherwise it stops.
func (p *Pipeline) Run(c *Context, continueOnViolation bool) (Result, error) {
	var res Result
	for _, s := range p.Steps {
		rowsIn := countRows(c, s.Inputs())
		err := s.Run(c)
		rowsOut := 0
		if t, ok := c.Staging[strings.ToLower(s.Output())]; ok {
			rowsOut = t.NumRows()
		}
		if c.Observe != nil {
			c.Observe(s.Name(), s.Op(), s.Output(), rowsIn, rowsOut, err)
		}
		if err != nil {
			if IsViolation(err) {
				res.Violations = append(res.Violations, err)
				if continueOnViolation {
					continue
				}
				return res, err
			}
			return res, fmt.Errorf("etl: step %q: %w", s.Name(), err)
		}
		c.Graph.AddStep(s.Op(), s.Inputs(), s.Output(), s.Name(), rowsIn, rowsOut)
		res.StepsRun++
	}
	return res, nil
}

func countRows(c *Context, names []string) int {
	n := 0
	for _, name := range names {
		if t, ok := c.Staging[strings.ToLower(name)]; ok {
			n += t.NumRows()
		}
	}
	return n
}

// ViolationError marks a privacy-enforcement failure (as opposed to an
// operational error).
type ViolationError struct {
	Step   string
	Rule   string
	Detail string
}

// Error implements error.
func (e *ViolationError) Error() string {
	return fmt.Sprintf("etl: privacy violation in step %q: %s: %s", e.Step, e.Rule, e.Detail)
}

// IsViolation reports whether err is (or wraps) a ViolationError.
func IsViolation(err error) bool {
	for err != nil {
		if _, ok := err.(*ViolationError); ok {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
