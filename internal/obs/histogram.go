package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// DefaultLatencyBuckets spans 50µs to 5s in roughly 1-2.5-5 decades —
// wide enough for a cached render hit and a full warehouse ETL run on
// one scale.
var DefaultLatencyBuckets = []time.Duration{
	50 * time.Microsecond, 100 * time.Microsecond, 250 * time.Microsecond,
	500 * time.Microsecond, 1 * time.Millisecond, 2500 * time.Microsecond,
	5 * time.Millisecond, 10 * time.Millisecond, 25 * time.Millisecond,
	50 * time.Millisecond, 100 * time.Millisecond, 250 * time.Millisecond,
	500 * time.Millisecond, 1 * time.Second, 2500 * time.Millisecond,
	5 * time.Second,
}

// Histogram is a fixed-bucket latency histogram. Observations at most
// bounds[i] land in bucket i; larger ones land in the overflow bucket.
// All operations are lock-free; the nil histogram is a no-op.
type Histogram struct {
	bounds []time.Duration
	counts []atomic.Uint64 // len(bounds)+1; last is overflow
	count  atomic.Uint64
	sum    atomic.Int64 // nanoseconds
}

// NewHistogram builds a histogram over the given bucket upper bounds
// (sorted ascending; empty selects DefaultLatencyBuckets).
func NewHistogram(bounds ...time.Duration) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	cp := append([]time.Duration(nil), bounds...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	return &Histogram{bounds: cp, counts: make([]atomic.Uint64, len(cp)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return d <= h.bounds[i] })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Bucket is one histogram bucket in a snapshot: the count of
// observations in (previous bound, UpperBound].
type Bucket struct {
	UpperBound time.Duration `json:"le_ns"`
	Count      uint64        `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram. Bucket
// counts are per-bucket (not cumulative); Overflow counts observations
// above the largest bound.
type HistogramSnapshot struct {
	Count    uint64        `json:"count"`
	Sum      time.Duration `json:"sum_ns"`
	Buckets  []Bucket      `json:"buckets,omitempty"`
	Overflow uint64        `json:"overflow,omitempty"`
}

// Snapshot copies the current counts. Concurrent Observe calls may land
// between bucket reads; the snapshot is still internally plausible
// (every counted observation is in some bucket it was added to).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count:    h.count.Load(),
		Sum:      time.Duration(h.sum.Load()),
		Buckets:  make([]Bucket, len(h.bounds)),
		Overflow: h.counts[len(h.bounds)].Load(),
	}
	for i, b := range h.bounds {
		s.Buckets[i] = Bucket{UpperBound: b, Count: h.counts[i].Load()}
	}
	return s
}

// Mean returns the average observed duration (0 when empty).
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear
// interpolation within the containing bucket. Observations in the
// overflow bucket resolve to the largest bound.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(s.Count))
	if target == 0 {
		target = 1
	}
	var cum uint64
	lower := time.Duration(0)
	for _, b := range s.Buckets {
		if cum+b.Count >= target {
			frac := float64(target-cum) / float64(b.Count)
			return lower + time.Duration(frac*float64(b.UpperBound-lower))
		}
		cum += b.Count
		lower = b.UpperBound
	}
	return s.Buckets[len(s.Buckets)-1].UpperBound
}
