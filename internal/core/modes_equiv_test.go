package core

import (
	"fmt"
	"testing"

	"plabi/internal/enforce"
	"plabi/internal/relation"
	"plabi/internal/report"
	"plabi/internal/workload"
)

// scenarioRun captures everything observable about one full scenario run:
// rendered tables, enforcement decisions, intervention counters, and the
// audit trail. The vectorized and row-at-a-time execution modes must
// produce identical runs — the acceptance bar for the batch kernel layer.
type scenarioRun struct {
	tables     map[string]string
	decisions  map[string][]string
	masked     map[string]int
	suppressed map[string]int
	auditKinds map[string]int
	etlTables  map[string]string
}

func runScenario(t *testing.T, mode relation.ExecMode) scenarioRun {
	t.Helper()
	prev := relation.SetExecMode(mode)
	defer relation.SetExecMode(prev)

	e, _, err := BuildHealthcareEngine(workload.DefaultConfig(7))
	if err != nil {
		t.Fatalf("mode %v: build: %v", mode, err)
	}
	run := scenarioRun{
		tables:     map[string]string{},
		decisions:  map[string][]string{},
		masked:     map[string]int{},
		suppressed: map[string]int{},
		auditKinds: map[string]int{},
		etlTables:  map[string]string{},
	}
	for _, name := range []string{"rx_cost", "rx_wide", "familydoctor_resolved"} {
		tab, ok := e.Table(name)
		if !ok {
			t.Fatalf("mode %v: warehouse table %s missing", mode, name)
		}
		run.etlTables[name] = tab.String()
	}
	consumers := []report.Consumer{
		{Name: "alice", Role: "analyst", Purpose: "quality"},
		{Name: "audrey", Role: "auditor", Purpose: "quality"},
		{Name: "rob", Role: "analyst", Purpose: "reimbursement"},
	}
	for _, d := range StandardReports() {
		for _, c := range consumers {
			key := d.ID + "/" + c.Role + "/" + c.Purpose
			enf, err := e.Render(d.ID, c)
			if err != nil {
				run.tables[key] = "ERR: " + err.Error()
				continue
			}
			run.tables[key] = enf.Table.String()
			run.masked[key] = enf.MaskedCells
			run.suppressed[key] = enf.SuppressedRows
			for _, dec := range enf.Decisions {
				run.decisions[key] = append(run.decisions[key],
					fmt.Sprintf("%v|%s|%s|%s", dec.Outcome, dec.Rule, dec.Subject, dec.Detail))
			}
			_ = enforce.Blocked(enf.Decisions)
		}
	}
	for _, ev := range e.Audit.Events() {
		run.auditKinds[ev.Kind]++
	}
	return run
}

// TestScenarioModeEquivalence runs the complete healthcare scenario —
// synthetic workload, guarded ETL with entity resolution, every standard
// report for three consumers — under both execution modes and requires
// byte-identical tables, identical decision streams, identical
// mask/suppression counters and identical audit event counts.
func TestScenarioModeEquivalence(t *testing.T) {
	vec := runScenario(t, relation.ExecVectorized)
	row := runScenario(t, relation.ExecRowAtATime)

	for name, vs := range vec.etlTables {
		if rs := row.etlTables[name]; vs != rs {
			t.Errorf("ETL table %s diverged between modes:\nvectorized:\n%s\nrow:\n%s", name, vs, rs)
		}
	}
	for key, vs := range vec.tables {
		if rs, ok := row.tables[key]; !ok || vs != rs {
			t.Errorf("report %s diverged between modes:\nvectorized:\n%s\nrow:\n%s", key, vs, row.tables[key])
		}
	}
	if len(vec.tables) != len(row.tables) {
		t.Errorf("rendered report sets differ: %d vs %d", len(vec.tables), len(row.tables))
	}
	for key := range vec.tables {
		if vec.masked[key] != row.masked[key] {
			t.Errorf("%s: masked cells %d (vectorized) vs %d (row)", key, vec.masked[key], row.masked[key])
		}
		if vec.suppressed[key] != row.suppressed[key] {
			t.Errorf("%s: suppressed rows %d (vectorized) vs %d (row)", key, vec.suppressed[key], row.suppressed[key])
		}
		vd, rd := vec.decisions[key], row.decisions[key]
		if len(vd) != len(rd) {
			t.Errorf("%s: decision count %d vs %d", key, len(vd), len(rd))
			continue
		}
		for i := range vd {
			if vd[i] != rd[i] {
				t.Errorf("%s: decision %d diverged:\n  vectorized: %s\n  row:        %s", key, i, vd[i], rd[i])
			}
		}
	}
	for kind, n := range vec.auditKinds {
		if row.auditKinds[kind] != n {
			t.Errorf("audit events %q: %d (vectorized) vs %d (row)", kind, n, row.auditKinds[kind])
		}
	}
}
