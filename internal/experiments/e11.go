package experiments

import (
	"fmt"

	"plabi/internal/anon"
	"plabi/internal/attack"
	"plabi/internal/relation"
	"plabi/internal/workload"
)

// E11Linkage evaluates the Fig. 2a release filter against the adversary
// it exists for: a linkage attacker holding the identified municipal
// registry. Re-identification and attribute-disclosure rates are
// measured on the raw release and on k-anonymized releases with and
// without l-diversity.
func E11Linkage() (*Result, error) {
	res := &Result{}
	cfg := workload.DefaultConfig(5)
	cfg.Patients = 800
	cfg.Prescriptions = 4000
	ds, err := workload.Generate(cfg)
	if err != nil {
		return nil, err
	}

	// The released table carries demographics (QI) and a sensitive
	// attribute: each resident's dominant disease (residents without
	// prescriptions count as "healthy" — also sensitive).
	disease := map[string]string{}
	for i := 0; i < ds.Prescriptions.NumRows(); i++ {
		p := ds.Prescriptions.Get(i, "patient").S
		if _, ok := disease[p]; !ok {
			disease[p] = ds.Prescriptions.Get(i, "disease").S
		}
	}
	wd := relation.NewBase("release_candidate", relation.NewSchema(
		relation.Col("patient", relation.TString),
		relation.Col("age", relation.TInt),
		relation.Col("zip", relation.TString),
		relation.Col("disease", relation.TString),
	))
	for i := 0; i < ds.Residents.NumRows(); i++ {
		name := ds.Residents.Get(i, "patient").S
		d, ok := disease[name]
		if !ok {
			d = "healthy"
		}
		wd.AppendVals(relation.Str(name), ds.Residents.Get(i, "age"),
			ds.Residents.Get(i, "zip"), relation.Str(d))
	}
	// The attacker never sees names: drop the identity column before any
	// release variant.
	anonInput, err := relation.ProjectCols(wd, "age", "zip", "disease")
	if err != nil {
		return nil, err
	}

	res.addf("%-11s %-13s %-15s %-16s %s", "release", "reident-rate", "min-candidates", "avg-candidates", "attr-disclosure")
	for _, variant := range []struct {
		name string
		k, l int
	}{
		{"raw", 0, 0},
		{"k=2", 2, 0},
		{"k=5", 5, 0},
		{"k=10", 10, 0},
		{"k=5,l=2", 5, 2},
		{"k=10,l=2", 10, 2},
	} {
		released := anonInput
		if variant.k > 0 {
			released, _, err = anon.KAnonymize(anonInput, variant.k, []string{"age", "zip"})
			if err != nil {
				return nil, err
			}
			if variant.l > 0 {
				released, _, err = anon.EnforceLDiversity(released, variant.l, []string{"age", "zip"}, "disease")
				if err != nil {
					return nil, err
				}
			}
		}
		r, err := attack.Run(attack.Linkage{
			Released: released, External: ds.Residents,
			QI: []string{"age", "zip"}, IdentityCol: "patient", SensitiveCol: "disease",
		})
		if err != nil {
			return nil, err
		}
		res.addf("%-11s %-13.3f %-15d %-16.1f %.3f", variant.name, r.ReidentRate,
			r.MinCandidates, r.AvgCandidates, r.AttributeRate)
		if variant.k == 0 {
			if r.ReidentRate < 0.5 {
				return nil, fmt.Errorf("E11: raw release unexpectedly safe (%.3f)", r.ReidentRate)
			}
			continue
		}
		if r.Reidentified != 0 {
			return nil, fmt.Errorf("E11: %s re-identified %d rows", variant.name, r.Reidentified)
		}
		if r.MinCandidates < variant.k {
			return nil, fmt.Errorf("E11: %s min candidates %d < k", variant.name, r.MinCandidates)
		}
	}
	res.addf("claim check: raw release is massively linkable; k-anonymized releases yield zero re-identifications with candidate sets >= k; l-diversity drives attribute disclosure down -> PASS")
	return res, nil
}
