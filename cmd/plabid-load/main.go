// Command plabid-load drives mixed traffic against a plabid server and
// records the latency distribution to BENCH_serve.json: several tenants,
// a render/check mix, fixed concurrency, exact p50/p99 computed from the
// full sorted latency sample (no streaming sketch).
//
// With -addr it targets a running server (tenant tokens supplied via
// -tenants "name=token,..."); without it the harness self-hosts a
// two-tenant server in-process on a loopback listener, so CI can gate the
// serving path with no external orchestration.
//
// Exit status is non-zero when an SLO floor is violated: total p99 above
// -slo-p99-ms or error rate above -slo-error-rate. Policy refusals
// (pla_blocked) are correct service, not errors.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"plabi/api"
	apiv1 "plabi/api/v1"
	"plabi/internal/serve"
)

// selfHostManifest is the workload the harness serves when no -addr is
// given: two tenants with distinct bundles, one of them rate-unlimited.
func selfHostManifest() *serve.Manifest {
	return &serve.Manifest{Tenants: []serve.TenantConfig{
		{Name: "alpha", Tokens: []string{"alpha-tok"}, Scenario: "healthcare",
			Seed: 1, Prescriptions: 1200},
		{Name: "beta", Tokens: []string{"beta-tok"}, Scenario: "healthcare",
			Seed: 2, Prescriptions: 800,
			ExtraPLAs: `pla "beta-mask" { owner "hospital"; level report;
				scope "drug-consumption"; deny attribute drug; }`},
	}}
}

// opStats is the recorded distribution for one operation kind.
type opStats struct {
	Count      int     `json:"count"`
	P50Ms      float64 `json:"p50_ms"`
	P99Ms      float64 `json:"p99_ms"`
	MeanMs     float64 `json:"mean_ms"`
	MaxMs      float64 `json:"max_ms"`
	Blocked    int     `json:"blocked,omitempty"`
	RateLimits int     `json:"rate_limited,omitempty"`
}

// Result is the BENCH_serve.json document.
type Result struct {
	Concurrency int                `json:"concurrency"`
	DurationSec float64            `json:"duration_sec"`
	Tenants     []string           `json:"tenants"`
	RenderMix   float64            `json:"render_mix"`
	GoVersion   string             `json:"go_version"`
	Requests    int                `json:"requests"`
	Errors      int                `json:"errors"`
	ErrorRate   float64            `json:"error_rate"`
	Throughput  float64            `json:"throughput_rps"`
	Ops         map[string]opStats `json:"ops"`
	Total       opStats            `json:"total"`
	SLOP99Ms    float64            `json:"slo_p99_ms"`
	SLOErrRate  float64            `json:"slo_error_rate"`
	SLOPass     bool               `json:"slo_pass"`
}

// sample is one completed request.
type sample struct {
	op      string
	latency time.Duration
	blocked bool
	limited bool
	err     bool
}

func main() {
	addr := flag.String("addr", "", "base URL of a running plabid (empty: self-host in-process)")
	tenantsFlag := flag.String("tenants", "alpha=alpha-tok,beta=beta-tok", `tenant tokens as "name=token,..."`)
	concurrency := flag.Int("concurrency", 8, "concurrent workers")
	duration := flag.Duration("duration", 5*time.Second, "load duration")
	mix := flag.Float64("mix", 0.7, "fraction of requests that are renders (rest are checks)")
	out := flag.String("out", "BENCH_serve.json", "output file")
	sloP99 := flag.Float64("slo-p99-ms", 500, "fail when total p99 exceeds this many ms (0 disables)")
	sloErr := flag.Float64("slo-error-rate", 0.01, "fail when the error rate exceeds this fraction")
	flag.Parse()

	tenants, err := parseTenants(*tenantsFlag)
	if err != nil {
		log.Fatalf("plabid-load: %v", err)
	}

	base := *addr
	if base == "" {
		srv, url, err := selfHost()
		if err != nil {
			log.Fatalf("plabid-load: self-host: %v", err)
		}
		defer srv.close()
		base = url
		log.Printf("plabid-load: self-hosted plabid on %s", base)
	}

	clients := make(map[string]*api.Client, len(tenants))
	var names []string
	for name, tok := range tenants {
		clients[name] = api.NewClient(base, tok)
		names = append(names, name)
	}
	sort.Strings(names)

	// Warm up each tenant's decision cache and ETL-backed tables once so
	// the measured window reflects steady-state serving.
	for _, name := range names {
		if _, err := clients[name].Reports(context.Background(), name); err != nil {
			log.Fatalf("plabid-load: warmup %s: %v", name, err)
		}
	}

	renders := []apiv1.RenderRequest{
		{Report: "drug-consumption", Consumer: apiv1.Consumer{Name: "load", Role: "analyst", Purpose: "quality"}},
		{Report: "age-profile", Consumer: apiv1.Consumer{Name: "load", Role: "analyst", Purpose: "quality"}},
		{Report: "drug-spend", Consumer: apiv1.Consumer{Name: "load", Role: "analyst", Purpose: "reimbursement"}},
		{Report: "patient-activity", Consumer: apiv1.Consumer{Name: "load", Role: "analyst", Purpose: "reimbursement"}}, // blocked: exercises the envelope path
	}
	checks := []apiv1.CheckRequest{
		{Report: "drug-consumption", Consumer: apiv1.Consumer{Name: "load", Role: "analyst", Purpose: "quality"}},
		{Report: "disease-by-year", Consumer: apiv1.Consumer{Name: "load", Role: "analyst", Purpose: "quality"}},
	}

	deadline := time.Now().Add(*duration)
	perWorker := make([][]sample, *concurrency)
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			var local []sample
			ctx := context.Background()
			for time.Now().Before(deadline) {
				tenant := names[rng.Intn(len(names))]
				c := clients[tenant]
				var s sample
				start := time.Now()
				if rng.Float64() < *mix {
					s.op = "render"
					req := renders[rng.Intn(len(renders))]
					req.OmitRows = true // measure decisions, not row shipping
					_, err = c.Render(ctx, tenant, req)
				} else {
					s.op = "check"
					_, err = c.Check(ctx, tenant, checks[rng.Intn(len(checks))])
				}
				s.latency = time.Since(start)
				if err != nil {
					var apiErr *apiv1.Error
					switch {
					case errors.As(err, &apiErr) && apiErr.Code == apiv1.CodeBlocked:
						s.blocked = true // correct enforcement, not a failure
					case errors.As(err, &apiErr) && apiErr.Code == apiv1.CodeRateLimited:
						s.limited = true
					default:
						s.err = true
					}
				}
				local = append(local, s)
			}
			perWorker[w] = local
		}(w)
	}
	started := time.Now()
	wg.Wait()
	elapsed := time.Since(started)

	var all []sample
	for _, ws := range perWorker {
		all = append(all, ws...)
	}
	if len(all) == 0 {
		log.Fatal("plabid-load: no requests completed")
	}

	res := Result{
		Concurrency: *concurrency,
		DurationSec: elapsed.Seconds(),
		Tenants:     names,
		RenderMix:   *mix,
		GoVersion:   runtime.Version(),
		Requests:    len(all),
		Ops:         map[string]opStats{},
		SLOP99Ms:    *sloP99,
		SLOErrRate:  *sloErr,
	}
	byOp := map[string][]sample{}
	for _, s := range all {
		byOp[s.op] = append(byOp[s.op], s)
		if s.err {
			res.Errors++
		}
	}
	for op, ss := range byOp {
		res.Ops[op] = distill(ss)
	}
	res.Total = distill(all)
	res.ErrorRate = float64(res.Errors) / float64(res.Requests)
	res.Throughput = float64(res.Requests) / elapsed.Seconds()
	res.SLOPass = (*sloP99 <= 0 || res.Total.P99Ms <= *sloP99) && res.ErrorRate <= *sloErr

	data, err := json.MarshalIndent(&res, "", "  ")
	if err != nil {
		log.Fatalf("plabid-load: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatalf("plabid-load: %v", err)
	}

	fmt.Printf("plabid-load: %d requests in %.1fs (%.0f rps, %d workers)\n",
		res.Requests, res.DurationSec, res.Throughput, res.Concurrency)
	for _, op := range []string{"render", "check"} {
		if st, ok := res.Ops[op]; ok {
			fmt.Printf("  %-6s n=%-6d p50=%.2fms p99=%.2fms mean=%.2fms blocked=%d\n",
				op, st.Count, st.P50Ms, st.P99Ms, st.MeanMs, st.Blocked)
		}
	}
	fmt.Printf("  total  p50=%.2fms p99=%.2fms errors=%d (rate %.4f) -> %s\n",
		res.Total.P50Ms, res.Total.P99Ms, res.Errors, res.ErrorRate, map[bool]string{true: "SLO pass", false: "SLO FAIL"}[res.SLOPass])

	if !res.SLOPass {
		fmt.Fprintf(os.Stderr, "plabid-load: SLO violated: p99 %.2fms (floor %.0fms), error rate %.4f (floor %.4f)\n",
			res.Total.P99Ms, *sloP99, res.ErrorRate, *sloErr)
		os.Exit(1)
	}
}

// distill sorts a sample set and extracts the exact percentiles.
func distill(ss []sample) opStats {
	lat := make([]time.Duration, len(ss))
	st := opStats{Count: len(ss)}
	var sum time.Duration
	for i, s := range ss {
		lat[i] = s.latency
		sum += s.latency
		if s.blocked {
			st.Blocked++
		}
		if s.limited {
			st.RateLimits++
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	st.P50Ms = ms(percentile(lat, 0.50))
	st.P99Ms = ms(percentile(lat, 0.99))
	st.MeanMs = ms(sum / time.Duration(len(ss)))
	st.MaxMs = ms(lat[len(lat)-1])
	return st
}

// percentile returns the exact q-quantile of a sorted sample
// (nearest-rank method).
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(float64(len(sorted))*q+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// parseTenants decodes the -tenants flag.
func parseTenants(s string) (map[string]string, error) {
	out := map[string]string{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, tok, ok := strings.Cut(part, "=")
		if !ok || name == "" || tok == "" {
			return nil, fmt.Errorf(`bad -tenants entry %q (want "name=token")`, part)
		}
		out[name] = tok
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-tenants declares no tenants")
	}
	return out, nil
}

// selfHosted is the in-process server used when no -addr is given.
type selfHosted struct {
	s   *serve.Server
	h   *http.Server
	lis net.Listener
}

func (sh *selfHosted) close() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = sh.h.Shutdown(ctx)
	_ = sh.s.Close()
}

// selfHost builds the default two-tenant server on a loopback listener.
func selfHost() (*selfHosted, string, error) {
	dir, err := os.MkdirTemp("", "plabid-load-*")
	if err != nil {
		return nil, "", err
	}
	s, err := serve.New(selfHostManifest(), serve.Options{AuditDir: dir})
	if err != nil {
		return nil, "", err
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		_ = s.Close()
		return nil, "", err
	}
	h := &http.Server{Handler: s.Handler()}
	go func() { _ = h.Serve(lis) }()
	return &selfHosted{s: s, h: h, lis: lis}, "http://" + lis.Addr().String(), nil
}
