package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"plabi/internal/audit"
	"plabi/internal/fault"
	"plabi/internal/report"
	"plabi/internal/workload"
)

// buildConcurrencyEngine assembles the healthcare scenario at a small
// size, suitable for hammering from many goroutines under -race.
func buildConcurrencyEngine(t *testing.T) *Engine {
	t.Helper()
	cfg := workload.DefaultConfig(7)
	cfg.Prescriptions = 600
	cfg.Patients = 60
	e, _, err := BuildHealthcareEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestConcurrentRenderWithPolicyChurn drives every engine surface at
// once: M goroutines render the full report portfolio while other
// goroutines add PLAs and re-derive meta-reports. Requirements: no data
// race (-race), no error, no torn audit entries (sequence numbers must be
// unique and contiguous), and every render outcome must be one of the
// states valid before or after the policy change — never a mixture.
func TestConcurrentRenderWithPolicyChurn(t *testing.T) {
	defer fault.CheckLeaks(t)()
	e := buildConcurrencyEngine(t)
	defs := e.Reports.All()
	consumers := []report.Consumer{
		{Name: "a1", Role: "analyst", Purpose: "quality"},
		{Name: "a2", Role: "auditor", Purpose: "quality"},
		{Name: "a3", Role: "analyst", Purpose: "reimbursement"},
	}

	const workers = 8
	const rounds = 6
	var wg sync.WaitGroup
	errs := make(chan error, workers*rounds+4)

	// Render workers.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := consumers[w%len(consumers)]
			for r := 0; r < rounds; r++ {
				for _, d := range defs {
					enf, err := e.RenderContext(context.Background(), d.ID, c)
					if err != nil {
						errs <- err
						return
					}
					// A rendered (non-blocked) table must carry exactly one
					// lineage set per row — a torn row/lineage pair would
					// indicate an unsynchronized mutation mid-render.
					if len(enf.Table.Rows) != len(enf.Table.Lineage) {
						errs <- errMismatch(d.ID, len(enf.Table.Rows), len(enf.Table.Lineage))
						return
					}
				}
			}
		}(w)
	}
	// Policy churn: new PLAs arriving mid-flight (new ids each time so
	// registration never conflicts).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			dsl := `pla "churn-` + string(rune('a'+i)) + `" {
				owner "hospital"; level warehouse; scope "rx_wide";
				allow attribute drug; }`
			if err := e.AddPLAs(dsl); err != nil {
				errs <- err
				return
			}
		}
	}()
	// Meta-report re-derivation invalidates the extra-scope config.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if _, err := e.DeriveMetaReports(); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// No torn audit entries: sequence numbers are exactly 0..N-1 with no
	// duplicates or holes, and every event still round-trips as one JSONL
	// line.
	events := e.Audit.Events()
	seen := make([]bool, len(events))
	for _, ev := range events {
		if ev.Seq < 0 || ev.Seq >= len(events) || seen[ev.Seq] {
			t.Fatalf("torn audit log: bad/duplicate seq %d of %d", ev.Seq, len(events))
		}
		seen[ev.Seq] = true
	}
	renders := len(e.Audit.ByKind("render"))
	if want := workers * rounds * len(defs); renders != want {
		t.Errorf("renders audited = %d, want %d", renders, want)
	}

	// Outcomes stabilize once the churn stops: two quiesced renders of the
	// same report agree exactly.
	for _, d := range defs {
		a, err := e.Render(d.ID, consumers[0])
		if err != nil {
			t.Fatal(err)
		}
		b, err := e.Render(d.ID, consumers[0])
		if err != nil {
			t.Fatal(err)
		}
		if a.Table.NumRows() != b.Table.NumRows() || a.MaskedCells != b.MaskedCells ||
			a.SuppressedRows != b.SuppressedRows || len(a.Decisions) != len(b.Decisions) {
			t.Errorf("%s: unstable quiesced outcome: (%d,%d,%d,%d) vs (%d,%d,%d,%d)", d.ID,
				a.Table.NumRows(), a.MaskedCells, a.SuppressedRows, len(a.Decisions),
				b.Table.NumRows(), b.MaskedCells, b.SuppressedRows, len(b.Decisions))
		}
	}
}

func errMismatch(id string, rows, lins int) error {
	return fmt.Errorf("torn table in %s: %d rows but %d lineage sets", id, rows, lins)
}

func auditEvent(kind string) audit.Event { return audit.Event{Kind: kind} }

// TestCacheInvalidationOnAddPLAs is the regression test for the decision
// cache: a cached render must stop being served the moment the policy set
// changes, and the new decisions must reflect the new PLAs.
func TestCacheInvalidationOnAddPLAs(t *testing.T) {
	e := buildConcurrencyEngine(t)
	c := report.Consumer{Name: "ana", Role: "analyst", Purpose: "quality"}

	// Warm the cache, then confirm a hit.
	if _, err := e.Render("drug-consumption", c); err != nil {
		t.Fatal(err)
	}
	enf, err := e.Render("drug-consumption", c)
	if err != nil {
		t.Fatal(err)
	}
	if !enf.CacheHit {
		t.Fatal("second render of identical (report, role, purpose) should hit the cache")
	}
	statsBefore := e.CacheStats()
	if statsBefore.Hits == 0 {
		t.Fatalf("cache hits = 0 after repeated render: %+v", statsBefore)
	}

	// A new report-level PLA forbidding the drug attribute must take
	// effect on the very next render.
	err = e.AddPLAs(`pla "revoke-drug" {
		owner "hospital"; level report; scope "drug-consumption";
		allow attribute consumption; }`)
	if err != nil {
		t.Fatal(err)
	}
	enf2, err := e.Render("drug-consumption", c)
	if err != nil {
		t.Fatal(err)
	}
	if enf2.CacheHit {
		t.Fatal("render after AddPLAs must rebuild the plan, not hit the cache")
	}
	stats := e.CacheStats()
	if stats.Invalidations == 0 {
		t.Errorf("expected at least one invalidation, got %+v", stats)
	}

	// And DeriveMetaReports invalidates as well (configuration
	// generation moves even when the assignment is equivalent).
	if _, err := e.Render("disease-by-year", c); err != nil {
		t.Fatal(err)
	}
	if _, err := e.DeriveMetaReports(); err != nil {
		t.Fatal(err)
	}
	enf3, err := e.Render("disease-by-year", c)
	if err != nil {
		t.Fatal(err)
	}
	if enf3.CacheHit {
		t.Fatal("render after DeriveMetaReports must rebuild the plan")
	}
}

// TestAuditSinkStreams verifies the streaming sink sees every event as
// valid JSONL in sequence order.
func TestAuditSinkStreams(t *testing.T) {
	e := New()
	var sb strings.Builder
	e.Audit.SetSink(&sb)
	e.Audit.Append(auditEvent("a"))
	e.Audit.Append(auditEvent("b"))
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("sink lines = %d, want 2", len(lines))
	}
	if !strings.Contains(lines[0], `"seq":0`) || !strings.Contains(lines[1], `"seq":1`) {
		t.Errorf("sink lines out of order: %q", lines)
	}
}
