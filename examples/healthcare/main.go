// Healthcare: the paper's full Fig. 1 outsourcing scenario — five source
// owners, per-owner PLAs covering every §5 annotation kind, guarded ETL
// with entity resolution, meta-report derivation, and enforced rendering
// for two roles, ending with the Fig. 4b drug-consumption report.
package main

import (
	"fmt"
	"log"

	"plabi/internal/core"
	"plabi/internal/report"
	"plabi/internal/workload"
)

func main() {
	cfg := workload.DefaultConfig(42)
	cfg.Prescriptions = 4000
	cfg.Patients = 400

	engine, ds, err := core.BuildHealthcareEngine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario: %d prescriptions from %d patients across 5 institutions\n",
		ds.Prescriptions.NumRows(), len(ds.PatientNames))
	fmt.Printf("agreements: %d PLAs; meta-reports approved: %d\n\n",
		len(engine.Policies.All()), len(engine.Metas))

	// The ETL ran under the PLA guard: the forbidden familydoctor join
	// never happened, the permitted drugcost/residents joins did.
	fmt.Println(engine.Graph.Explain("rx_wide"))

	analyst := report.Consumer{Name: "ana", Role: "analyst", Purpose: "quality"}
	auditor := report.Consumer{Name: "aud", Role: "auditor", Purpose: "quality"}

	// The flagship aggregate report: permitted for analysts, with the
	// per-group patient threshold enforced via lineage support.
	enf, err := engine.Render("drug-consumption", analyst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.FormatTable("Drug consumption (analyst)", enf.Table))
	fmt.Printf("groups suppressed below the patient threshold: %d\n\n", enf.SuppressedRows)

	// Disease incidence: the hospital releases disease only to auditors.
	for _, c := range []report.Consumer{analyst, auditor} {
		enf, err := engine.Render("disease-by-year", c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("disease-by-year for %s: %d rows, %d cells masked\n",
			c.Role, enf.Table.NumRows(), enf.MaskedCells)
	}

	// The per-patient listing is statically non-compliant for analysts
	// (aggregation threshold on a non-aggregated report): it renders
	// empty with a block decision.
	enf, err = engine.Render("patient-activity", analyst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npatient-activity for analyst: %d rows (blocked: %v)\n",
		enf.Table.NumRows(), enf.Decisions[0].Rule)

	fmt.Printf("\naudit log: %d events, %d violations recorded\n",
		engine.Audit.Len(), len(engine.Audit.Violations()))
}
