package relation

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"plabi/internal/fault"
	"plabi/internal/obs"
)

// segSpill writes tab into a fresh store with the given partition size
// and returns the segment-backed view plus its store.
func segSpill(t *testing.T, tab *Table, partRows int) (*Table, *SegmentStore) {
	t.Helper()
	store := NewSegmentStore(t.TempDir())
	store.SetPartitionRows(partRows)
	seg, err := store.Spill(tab)
	if err != nil {
		t.Fatal(err)
	}
	return seg, store
}

// typesFixture covers every encoding: typed columns of each kind,
// null-bearing columns, an all-null column, a mixed-kind column and
// float edge values (NaN, ±Inf, -0) that the zone maps must refuse.
func typesFixture() *Table {
	tab := NewBase("alltypes", NewSchema(
		Col("s", TString),
		Col("i", TInt),
		Col("f", TFloat),
		Col("b", TBool),
		Col("d", TDate),
		Col("allnull", TString),
		Col("mixed", TString),
	))
	tab.AppendVals(Str(""), Int(-3), Float(math.NaN()), Bool(true), DateYMD(2007, 2, 12), Null(), Str("x"))
	tab.AppendVals(Str("alice"), Int(0), Float(math.Inf(1)), Bool(false), DateYMD(2008, 4, 15), Null(), Int(7))
	tab.AppendVals(Null(), Null(), Null(), Null(), Null(), Null(), Null())
	tab.AppendVals(Str("alice"), Int(42), Float(math.Copysign(0, -1)), Bool(true), DateYMD(2007, 10, 15), Null(), Float(1.5))
	tab.AppendVals(Str("bob"), Int(7), Float(-2.25), Bool(false), DateYMD(2007, 3, 10), Null(), Bool(true))
	return tab
}

func TestSegmentRoundTripAllTypes(t *testing.T) {
	tab := typesFixture()
	for _, partRows := range []int{1, 2, 5, 100} {
		seg, _ := segSpill(t, tab, partRows)
		if seg.NumRows() != tab.NumRows() {
			t.Fatalf("partRows=%d: NumRows=%d, want %d", partRows, seg.NumRows(), tab.NumRows())
		}
		mt, err := seg.Materialize()
		if err != nil {
			t.Fatal(err)
		}
		for i := range tab.Rows {
			if !sameRow(mt.Rows[i], tab.Rows[i]) {
				t.Fatalf("partRows=%d row %d: got %v want %v", partRows, i, mt.Rows[i], tab.Rows[i])
			}
		}
	}
}

func TestSegmentRoundTripRandom(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed + 7000))
		tab := randTable(rng, "rt", 2+rng.Intn(4), rng.Intn(60))
		seg, _ := segSpill(t, tab, 1+rng.Intn(9))
		mt, err := seg.Materialize()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		requireSameTable(t, fmt.Sprintf("roundtrip seed=%d", seed), mt, tab)
	}
}

func TestSegmentWriterPartitionBoundaries(t *testing.T) {
	tab := NewBase("n", NewSchema(Col("id", TInt)))
	for i := 0; i < 10; i++ {
		tab.AppendVals(Int(int64(i)))
	}
	seg, _ := segSpill(t, tab, 3)
	parts := seg.seg.parts
	if len(parts) != 4 {
		t.Fatalf("parts = %d, want 4", len(parts))
	}
	wantStart := []int{0, 3, 6, 9}
	wantRows := []int{3, 3, 3, 1}
	for i, p := range parts {
		if p.start != wantStart[i] || p.rows != wantRows[i] {
			t.Errorf("part %d: start=%d rows=%d, want %d/%d", i, p.start, p.rows, wantStart[i], wantRows[i])
		}
	}
	// Point access across partitions, including the short tail.
	for i := 0; i < 10; i++ {
		if got := seg.Get(i, "id"); got.I != int64(i) {
			t.Errorf("Get(%d) = %v", i, got)
		}
	}
	if !seg.Get(10, "id").IsNull() || !seg.Get(-1, "id").IsNull() || !seg.Get(0, "nope").IsNull() {
		t.Error("out-of-range Get must be NULL")
	}
}

func TestSegmentSpillPreservesProvenance(t *testing.T) {
	p := prescriptionsFixture()
	der, err := Select(p, ColEqStr("disease", "HIV"))
	if err != nil {
		t.Fatal(err)
	}
	seg, _ := segSpill(t, der, 1)
	if seg.Base {
		t.Error("spilled derived table must stay derived")
	}
	for i := 0; i < der.NumRows(); i++ {
		if got, want := seg.RowLineage(i), der.RowLineage(i); !got.Contains(want[0]) || len(got) != len(want) {
			t.Errorf("row %d lineage = %v, want %v", i, got, want)
		}
	}
	for c := range der.Schema.Columns {
		if got, want := seg.ColumnOrigin(c), der.ColumnOrigin(c); !got.Contains(want[0]) {
			t.Errorf("col %d origin = %v, want %v", c, got, want)
		}
	}
	// Spilling a base table keeps it base with implicit lineage.
	segBase, _ := segSpill(t, p, 2)
	if !segBase.Base {
		t.Error("spilled base table must stay base")
	}
	if got := segBase.RowLineage(3); !got.Contains(RowRef{"prescriptions", 3}) {
		t.Errorf("base lineage = %v", got)
	}
	// Already segment-backed: Spill is the identity.
	again, err := segBase.seg.store.Spill(segBase)
	if err != nil || again != segBase {
		t.Errorf("re-spill = (%p, %v), want identity", again, err)
	}
}

// TestSegmentOpsEquivalence is the load-bearing property: every operator
// over a segment-backed table must be byte-identical — rows, lineage,
// origins, errors — to the same operator over the in-memory original, at
// every execution mode.
func TestSegmentOpsEquivalence(t *testing.T) {
	modes := []struct {
		name string
		m    ExecMode
	}{{"row", ExecRowAtATime}, {"vec", ExecVectorized}, {"compiled", ExecCompiled}}
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed + 9000))
		mem := randTable(rng, "t", 2+rng.Intn(3), rng.Intn(50))
		other := randTable(rng, "u", 2, rng.Intn(20))
		seg, _ := segSpill(t, mem, 1+rng.Intn(7))
		pred := randPredicate(rng, mem.Schema, rng.Intn(3))
		joinPred := Bin(OpEq, ColRefExpr(mem.Schema.Columns[0].Name), ColRefExpr(other.Schema.Columns[1].Name))
		aggs := []AggSpec{
			{Kind: AggCount},
			{Kind: AggSum, Col: mem.Schema.Columns[1].Name},
			{Kind: AggMin, Col: mem.Schema.Columns[0].Name},
			{Kind: AggCountDistinct, Col: mem.Schema.Columns[1].Name},
		}
		keys := []string{mem.Schema.Columns[0].Name}
		ops := []struct {
			name string
			run  func(*Table) (*Table, error)
		}{
			{"select", func(x *Table) (*Table, error) { return Select(x, pred) }},
			{"project", func(x *Table) (*Table, error) { return ProjectCols(x, mem.Schema.Columns[0].Name) }},
			{"extend", func(x *Table) (*Table, error) { return Extend(x, "x", pred) }},
			{"groupby", func(x *Table) (*Table, error) { return GroupBy(x, keys, aggs) }},
			{"join-left", func(x *Table) (*Table, error) { return Join(x, other, joinPred, InnerJoin) }},
			{"leftjoin", func(x *Table) (*Table, error) { return Join(x, other, joinPred, LeftJoin) }},
			{"sort", func(x *Table) (*Table, error) {
				return Sort(x, SortKey{Col: mem.Schema.Columns[0].Name}, SortKey{Col: mem.Schema.Columns[1].Name, Desc: true})
			}},
			{"distinct", func(x *Table) (*Table, error) { return Distinct(x), nil }},
			{"limit", func(x *Table) (*Table, error) { return Limit(x, 5), nil }},
			{"union", func(x *Table) (*Table, error) { return Union(x, mem) }},
			{"rename", func(x *Table) (*Table, error) { return Rename(x, "rn").Materialize() }},
		}
		for _, mode := range modes {
			prev := SetExecMode(mode.m)
			for _, op := range ops {
				want, wantErr := op.run(mem)
				got, gotErr := op.run(seg)
				label := fmt.Sprintf("%s/%s seed=%d", op.name, mode.name, seed)
				requireSameOutcome(t, label, got, want, gotErr, wantErr)
			}
			// Segment table on the probe (right) side of a join.
			want, wantErr := Join(other, mem, joinPred, InnerJoin)
			got, gotErr := Join(other, seg, joinPred, InnerJoin)
			requireSameOutcome(t, fmt.Sprintf("join-right/%s seed=%d", mode.name, seed), got, want, gotErr, wantErr)
			SetExecMode(prev)
		}
	}
}

func TestSegmentRenameLineage(t *testing.T) {
	p := prescriptionsFixture()
	seg, _ := segSpill(t, p, 2)
	rn := Rename(seg, "rx")
	if rn.seg == nil {
		t.Fatal("rename must stay segment-backed")
	}
	memRn := Rename(p, "rx")
	for i := 0; i < p.NumRows(); i++ {
		if got, want := rn.RowLineage(i), memRn.RowLineage(i); len(got) != 1 || got[0] != want[0] {
			t.Fatalf("row %d: lineage %v, want %v", i, got, want)
		}
	}
	// Double rename keeps pointing at the original base rows.
	rn2, err := Rename(rn, "ry").Materialize()
	if err != nil {
		t.Fatal(err)
	}
	memRn2, _ := Rename(memRn, "ry").Materialize()
	requireSameTable(t, "double rename", rn2, memRn2)
	if !rn2.RowLineage(0).Contains(RowRef{"prescriptions", 0}) {
		t.Errorf("double-rename lineage = %v", rn2.RowLineage(0))
	}
}

func TestSegmentPruning(t *testing.T) {
	tab := NewBase("events", NewSchema(Col("id", TInt), Col("tag", TString)))
	for i := 0; i < 100; i++ {
		tab.AppendVals(Int(int64(i)), Str(fmt.Sprintf("t%d", i%7)))
	}
	store := NewSegmentStore(t.TempDir())
	store.SetPartitionRows(10)
	m := obs.New()
	store.SetMetrics(m)
	seg, err := store.Spill(tab)
	if err != nil {
		t.Fatal(err)
	}

	pred := Bin(OpLt, ColRefExpr("id"), Lit(Int(25)))
	sc := NewScanner(seg, pred)
	defer sc.Close()
	if sc.Pruned() != 7 {
		t.Fatalf("pruned = %d, want 7", sc.Pruned())
	}
	var rows int
	for {
		b, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		rows += b.Len()
	}
	if rows != 30 { // three surviving partitions, unfiltered
		t.Fatalf("scanned %d rows, want 30", rows)
	}
	if got := m.Counter("segment.read.pruned").Value(); got != 7 {
		t.Errorf("segment.read.pruned = %d", got)
	}
	if got := m.Counter("segment.read.segments").Value(); got != 3 {
		t.Errorf("segment.read.segments = %d", got)
	}

	// The filtered result itself is still exact.
	out, err := Select(seg, pred)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Select(tab, pred)
	requireSameTable(t, "pruned select", out, want)

	// Equality on the string dictionary column prunes nothing (every
	// partition holds all seven tags) but stays correct.
	out2, err := Select(seg, ColEqStr("tag", "t3"))
	if err != nil {
		t.Fatal(err)
	}
	want2, _ := Select(tab, ColEqStr("tag", "t3"))
	requireSameTable(t, "tag select", out2, want2)
}

// TestZonePruningNeverUnderScans is the one-sided soundness property:
// whenever zonesMayMatch says "prune", a brute-force Select over exactly
// that partition's rows must come back empty.
func TestZonePruningNeverUnderScans(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed + 11000))
		tab := randTable(rng, "z", 2+rng.Intn(3), 1+rng.Intn(40))
		seg, _ := segSpill(t, tab, 1+rng.Intn(6))
		pred := randPredicate(rng, tab.Schema, rng.Intn(3))
		if !predTotal(pred, tab.Schema) {
			continue
		}
		for _, p := range seg.seg.parts {
			if zonesMayMatch(pred, tab.Schema, p.zones) {
				continue
			}
			sub := NewBase("sub", tab.Schema)
			sub.Rows = tab.Rows[p.start : p.start+p.rows]
			out, err := Select(sub, pred)
			if err != nil {
				t.Fatalf("seed %d: total predicate %s errored: %v", seed, pred, err)
			}
			if len(out.Rows) > 0 {
				t.Fatalf("seed %d: pruned partition [%d,%d) has %d matches for %s",
					seed, p.start, p.start+p.rows, len(out.Rows), pred)
			}
		}
	}
}

func TestPredTotal(t *testing.T) {
	s := NewSchema(Col("a", TInt), Col("b", TString))
	cases := []struct {
		pred Expr
		want bool
	}{
		{ColEqStr("b", "x"), true},
		{Bin(OpLt, ColRefExpr("a"), Lit(Int(3))), true},
		{Bin(OpEq, ColRefExpr("missing"), Lit(Int(3))), false},
		{And(Bin(OpGt, ColRefExpr("a"), Lit(Int(100))), ColRefExpr("missing")), false},
		{Fn("UPPER", ColRefExpr("b")), false}, // functions: conservatively non-total
		{In(ColRefExpr("a"), Lit(Int(1)), Lit(Int(2))), true},
		{IsNull(ColRefExpr("a")), true},
		{Not(Bin(OpAdd, ColRefExpr("a"), Lit(Int(1)))), true},
	}
	for i, c := range cases {
		if got := predTotal(c.pred, s); got != c.want {
			t.Errorf("case %d %s: predTotal = %v, want %v", i, c.pred, got, c.want)
		}
	}
}

// TestPruningDoesNotSuppressErrors pins the error-transparency contract:
// a predicate that errors must error identically on the segment path even
// when its prunable half rejects every partition.
func TestPruningDoesNotSuppressErrors(t *testing.T) {
	tab := NewBase("e", NewSchema(Col("a", TInt)))
	for i := 0; i < 10; i++ {
		tab.AppendVals(Int(int64(i)))
	}
	seg, _ := segSpill(t, tab, 2)
	// a > 1000 alone would prune every partition; the unknown column must
	// still surface, exactly as in memory.
	pred := And(Bin(OpGt, ColRefExpr("a"), Lit(Int(1000))), ColRefExpr("missing"))
	_, memErr := Select(tab, pred)
	_, segErr := Select(seg, pred)
	if memErr == nil || segErr == nil {
		t.Fatalf("want errors, got mem=%v seg=%v", memErr, segErr)
	}
	if memErr.Error() != segErr.Error() {
		t.Fatalf("error mismatch:\n  mem: %v\n  seg: %v", memErr, segErr)
	}
}

func TestScannerParallelDeterministicOrder(t *testing.T) {
	tab := NewBase("big", NewSchema(Col("id", TInt)))
	for i := 0; i < 1000; i++ {
		tab.AppendVals(Int(int64(i)))
	}
	store := NewSegmentStore(t.TempDir())
	store.SetPartitionRows(10) // 100 partitions
	store.SetScanWorkers(8)
	seg, err := store.Spill(tab)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		sc := NewScanner(seg, nil)
		next := int64(0)
		for {
			b, err := sc.Next()
			if err != nil {
				t.Fatal(err)
			}
			if b == nil {
				break
			}
			for _, r := range b.src.Rows {
				if r[0].I != next {
					t.Fatalf("run %d: got id %d, want %d", run, r[0].I, next)
				}
				next++
			}
		}
		sc.Close()
		if next != 1000 {
			t.Fatalf("run %d: scanned %d rows", run, next)
		}
	}
}

func TestScannerEarlyClose(t *testing.T) {
	tab := NewBase("big", NewSchema(Col("id", TInt)))
	for i := 0; i < 500; i++ {
		tab.AppendVals(Int(int64(i)))
	}
	store := NewSegmentStore(t.TempDir())
	store.SetPartitionRows(5)
	store.SetScanWorkers(4)
	seg, err := store.Spill(tab)
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScanner(seg, nil)
	if _, err := sc.Next(); err != nil {
		t.Fatal(err)
	}
	sc.Close()
	sc.Close() // idempotent
	if b, err := sc.Next(); b != nil || err != nil {
		t.Fatalf("Next after Close = (%v, %v)", b, err)
	}
	// In-memory scanner yields exactly one batch.
	ms := NewScanner(tab, nil)
	b1, _ := ms.Next()
	b2, _ := ms.Next()
	if b1 == nil || b1.Len() != 500 || b2 != nil || ms.Pruned() != 0 {
		t.Fatalf("in-memory scan: %v %v", b1, b2)
	}
}

func TestSegmentCorruptionFailsClosed(t *testing.T) {
	tab := typesFixture()
	store := NewSegmentStore(t.TempDir())
	store.SetPartitionRows(100)
	seg, err := store.Spill(tab)
	if err != nil {
		t.Fatal(err)
	}
	path := seg.seg.parts[0].path
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corruptions := map[string]func([]byte) []byte{
		"bad magic":    func(b []byte) []byte { c := append([]byte(nil), b...); c[0] ^= 0xff; return c },
		"truncated":    func(b []byte) []byte { return b[:len(b)/2] },
		"header flip":  func(b []byte) []byte { c := append([]byte(nil), b...); c[14] ^= 0x01; return c },
		"body flip":    func(b []byte) []byte { c := append([]byte(nil), b...); c[len(c)-3] ^= 0x01; return c },
		"trailing":     func(b []byte) []byte { return append(append([]byte(nil), b...), 0) },
		"empty":        func([]byte) []byte { return nil },
	}
	for name, mut := range corruptions {
		if err := os.WriteFile(path, mut(orig), 0o644); err != nil {
			t.Fatal(err)
		}
		seg.seg.cache.all = nil // defeat the materialization cache
		seg.seg.cache.lastPart = -1
		_, err := seg.Materialize()
		if err == nil {
			t.Fatalf("%s: corruption not detected", name)
		}
		if !errors.Is(err, ErrSegmentCorrupt) {
			t.Fatalf("%s: err = %v, want ErrSegmentCorrupt", name, err)
		}
		var ce *CorruptError
		if !errors.As(err, &ce) || ce.Path == "" {
			t.Fatalf("%s: err = %v, want *CorruptError with path", name, err)
		}
	}
	// Restore and confirm the table reads clean again.
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := seg.Materialize(); err != nil {
		t.Fatalf("restored segment unreadable: %v", err)
	}
}

func TestSegmentRowCountMismatchFailsClosed(t *testing.T) {
	tab := NewBase("m", NewSchema(Col("a", TInt)))
	for i := 0; i < 6; i++ {
		tab.AppendVals(Int(int64(i)))
	}
	seg, _ := segSpill(t, tab, 3)
	// Swap the two partition files: each decodes cleanly but disagrees
	// with the manifest row offsets.
	p0, p1 := seg.seg.parts[0].path, seg.seg.parts[1].path
	d0, _ := os.ReadFile(p0)
	d1, _ := os.ReadFile(p1)
	os.WriteFile(p0, d1, 0o644)
	os.WriteFile(p1, d0, 0o644)
	seg.seg.cache.all = nil
	_, err := seg.Materialize()
	// Same row counts on both sides: header start offsets differ is not
	// tracked, but equal-count swaps decode; this test uses unequal parts.
	_ = err
	// Rebuild with unequal partition sizes to force the count check.
	tab2 := NewBase("m2", NewSchema(Col("a", TInt)))
	for i := 0; i < 5; i++ {
		tab2.AppendVals(Int(int64(i)))
	}
	seg2, _ := segSpill(t, tab2, 3) // parts of 3 and 2 rows
	q0, q1 := seg2.seg.parts[0].path, seg2.seg.parts[1].path
	e0, _ := os.ReadFile(q0)
	if err := os.WriteFile(q1, e0, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = seg2.Materialize()
	if !errors.Is(err, ErrSegmentCorrupt) {
		t.Fatalf("row-count mismatch: err = %v, want ErrSegmentCorrupt", err)
	}
}

func TestSegmentWriterMisuse(t *testing.T) {
	store := NewSegmentStore(t.TempDir())
	if _, err := store.NewWriter("t", nil); err == nil {
		t.Error("nil schema must fail")
	}
	s := NewSchema(Col("a", TInt))
	w, err := store.NewWriter("t", s)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Row{Int(1), Int(2)}); err == nil {
		t.Error("arity mismatch must fail")
	}
	if err := w.Append(Row{Int(1)}); err != nil {
		t.Fatal(err)
	}
	seg, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Row{Int(2)}); err == nil {
		t.Error("append after close must fail")
	}
	if _, err := w.Close(); err == nil {
		t.Error("double close must fail")
	}
	if err := seg.Append(Row{Int(3)}); err == nil {
		t.Error("append to segment-backed table must fail")
	}
	// Abort removes the directory of a fresh writer.
	w2, _ := store.NewWriter("gone", s)
	w2.Append(Row{Int(1)})
	dir := w2.dir
	w2.flush()
	w2.Abort()
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Errorf("abort left %s behind", dir)
	}
}

func TestSegmentCloneSharesBacking(t *testing.T) {
	tab := prescriptionsFixture()
	seg, _ := segSpill(t, tab, 2)
	c := seg.Clone()
	if c.seg != seg.seg {
		t.Fatal("clone must share the immutable backing")
	}
	if c.NumRows() != tab.NumRows() {
		t.Fatalf("clone rows = %d", c.NumRows())
	}
	mt, err := c.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if seg.seg.cache.all == nil {
		t.Error("materialization must populate the shared cache")
	}
	mt2, _ := seg.Materialize()
	if &mt.Rows[0][0] != &mt2.Rows[0][0] {
		t.Error("shared cache must serve both views")
	}
}

func TestSegmentReadRetryTransient(t *testing.T) {
	tab := NewBase("r", NewSchema(Col("a", TInt)))
	for i := 0; i < 4; i++ {
		tab.AppendVals(Int(int64(i)))
	}
	store := NewSegmentStore(t.TempDir())
	store.SetPartitionRows(2)
	seg, err := store.Spill(tab)
	if err != nil {
		t.Fatal(err)
	}
	// Two deterministic transient failures per site; policy allows three
	// attempts, so every read eventually succeeds.
	inj := fault.NewInjector(1)
	inj.Enable(fault.SiteSegmentRead, fault.SiteConfig{ErrorRate: 1, Transient: true, Times: 2})
	store.SetFaults(inj)
	store.SetRetryPolicy(fault.RetryPolicy{MaxAttempts: 3, Base: time.Millisecond, Max: time.Millisecond})
	mt, err := seg.Materialize()
	if err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if len(mt.Rows) != 4 {
		t.Fatalf("rows = %d", len(mt.Rows))
	}
	if got := len(inj.Schedule()); got != 2 {
		t.Errorf("fires = %d, want 2", got)
	}

	// Without a retry policy a transient fault surfaces immediately.
	store2 := NewSegmentStore(t.TempDir())
	store2.SetPartitionRows(2)
	seg2, _ := store2.Spill(tab)
	inj2 := fault.NewInjector(1)
	inj2.Enable(fault.SiteSegmentRead, fault.SiteConfig{ErrorRate: 1, Transient: true, Times: 1})
	store2.SetFaults(inj2)
	if _, err := seg2.Materialize(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
}

func TestSegmentMetricsCounters(t *testing.T) {
	tab := typesFixture()
	store := NewSegmentStore(t.TempDir())
	store.SetPartitionRows(2)
	m := obs.New()
	store.SetMetrics(m)
	seg, err := store.Spill(tab)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Counter("segment.write.partitions").Value(); got != 3 {
		t.Errorf("write.partitions = %d", got)
	}
	if got := m.Counter("segment.write.rows").Value(); got != 5 {
		t.Errorf("write.rows = %d", got)
	}
	if got := m.Counter("segment.spill.tables").Value(); got != 1 {
		t.Errorf("spill.tables = %d", got)
	}
	if _, err := seg.Materialize(); err != nil {
		t.Fatal(err)
	}
	if got := m.Counter("segment.read.partitions").Value(); got != 3 {
		t.Errorf("read.partitions = %d", got)
	}
	if got := m.Counter("segment.read.rows").Value(); got != 5 {
		t.Errorf("read.rows = %d", got)
	}
	if m.Counter("segment.write.bytes").Value() == 0 || m.Counter("segment.read.bytes").Value() == 0 {
		t.Error("byte counters must advance")
	}
}

func TestSegDirNameSanitizes(t *testing.T) {
	cases := map[string]string{
		"orders":        "orders",
		"weird/../name": "weird____name",
		"":              "table",
		"Ok-1_b":        "Ok-1_b",
	}
	for in, want := range cases {
		if got := segDirName(in); got != want {
			t.Errorf("segDirName(%q) = %q, want %q", in, got, want)
		}
	}
	// Two writers for the same table name land in distinct directories.
	store := NewSegmentStore(t.TempDir())
	s := NewSchema(Col("a", TInt))
	w1, _ := store.NewWriter("dup", s)
	w2, _ := store.NewWriter("dup", s)
	if w1.dir == w2.dir {
		t.Error("writer directories must not collide")
	}
	if filepath.Dir(w1.dir) != store.Dir() {
		t.Errorf("writer dir %s not under store root", w1.dir)
	}
}
