package workload

import (
	"fmt"
	"math/rand"
	"time"

	"plabi/internal/relation"
)

// PrescriptionsFixture returns the paper's literal Prescriptions example
// table (Fig. 2b / Fig. 3b / Fig. 4b; the paper's day-first dates are
// normalized to ISO).
func PrescriptionsFixture() *relation.Table {
	t := relation.NewBase("prescriptions", relation.NewSchema(
		relation.Col("patient", relation.TString),
		relation.Col("doctor", relation.TString),
		relation.Col("drug", relation.TString),
		relation.Col("disease", relation.TString),
		relation.Col("date", relation.TDate),
	))
	t.AppendVals(relation.Str("Alice"), relation.Str("Luis"), relation.Str("DH"), relation.Str("HIV"), relation.DateYMD(2007, 2, 12))
	t.AppendVals(relation.Str("Chris"), relation.Null(), relation.Str("DV"), relation.Str("HIV"), relation.DateYMD(2007, 3, 10))
	t.AppendVals(relation.Str("Bob"), relation.Str("Anne"), relation.Str("DR"), relation.Str("asthma"), relation.DateYMD(2007, 8, 10))
	t.AppendVals(relation.Str("Math"), relation.Str("Mark"), relation.Str("DM"), relation.Str("diabetes"), relation.DateYMD(2007, 10, 15))
	t.AppendVals(relation.Str("Alice"), relation.Str("Luis"), relation.Str("DR"), relation.Str("asthma"), relation.DateYMD(2008, 4, 15))
	return t
}

// PoliciesFixture returns the paper's literal Policies metadata table
// (Fig. 2b): per-patient consent on showing name and disease.
func PoliciesFixture() *relation.Table {
	t := relation.NewBase("policies", relation.NewSchema(
		relation.Col("patient", relation.TString),
		relation.Col("ShowName", relation.TBool),
		relation.Col("ShowDisease", relation.TBool),
	))
	t.AppendVals(relation.Str("Alice"), relation.Bool(true), relation.Bool(false))
	t.AppendVals(relation.Str("Bob"), relation.Bool(true), relation.Bool(false))
	t.AppendVals(relation.Str("Math"), relation.Bool(false), relation.Bool(false))
	t.AppendVals(relation.Str("Chris"), relation.Bool(true), relation.Bool(true))
	return t
}

// FamilyDoctorFixture returns the paper's literal Familydoctor table
// (Fig. 3b).
func FamilyDoctorFixture() *relation.Table {
	t := relation.NewBase("familydoctor", relation.NewSchema(
		relation.Col("patient", relation.TString),
		relation.Col("doctor", relation.TString),
	))
	t.AppendVals(relation.Str("Alice"), relation.Str("Luis"))
	t.AppendVals(relation.Str("Chris"), relation.Str("Anne"))
	t.AppendVals(relation.Str("Bob"), relation.Str("Anne"))
	t.AppendVals(relation.Str("Math"), relation.Str("Mark"))
	return t
}

// DrugCostFixture returns the paper's literal Drug Cost table (Fig. 3b).
func DrugCostFixture() *relation.Table {
	t := relation.NewBase("drugcost", relation.NewSchema(
		relation.Col("drug", relation.TString),
		relation.Col("cost", relation.TInt),
	))
	t.AppendVals(relation.Str("DD"), relation.Int(50))
	t.AppendVals(relation.Str("DM"), relation.Int(10))
	t.AppendVals(relation.Str("DH"), relation.Int(60))
	t.AppendVals(relation.Str("DV"), relation.Int(30))
	t.AppendVals(relation.Str("DR"), relation.Int(10))
	return t
}

// Fig4Consumption is the paper's literal Drug consumption report (Fig. 4b).
var Fig4Consumption = map[string]int64{"DH": 20, "DV": 28, "DR": 89, "DM": 2}

// Fig4Prescriptions generates a prescriptions table whose per-drug counts
// reproduce the Fig. 4b Drug consumption report exactly (DH 20, DV 28,
// DR 89, DM 2 = 139 prescriptions), with patients, doctors, diseases and
// dates filled in deterministically. HIV drugs (DH, DV) go to HIV
// patients, so the report-level HIV condition of §5 is exercised.
func Fig4Prescriptions(seed int64) *relation.Table {
	rng := rand.New(rand.NewSource(seed))
	t := relation.NewBase("prescriptions", relation.NewSchema(
		relation.Col("patient", relation.TString),
		relation.Col("doctor", relation.TString),
		relation.Col("drug", relation.TString),
		relation.Col("disease", relation.TString),
		relation.Col("date", relation.TDate),
	))
	drugDisease := map[string]string{"DH": "HIV", "DV": "HIV", "DR": "asthma", "DM": "diabetes"}
	doctors := []string{"Luis", "Anne", "Mark", "Rosa"}
	start := time.Date(2007, 1, 1, 0, 0, 0, 0, time.UTC)
	// Deterministic drug order so the table is reproducible.
	pid := 0
	for _, drug := range []string{"DH", "DV", "DR", "DM"} {
		for i := int64(0); i < Fig4Consumption[drug]; i++ {
			pid++
			t.AppendVals(
				relation.Str(fmt.Sprintf("%s %s", firstNames[pid%len(firstNames)], lastNames[(pid*3)%len(lastNames)])),
				relation.Str(doctors[rng.Intn(len(doctors))]),
				relation.Str(drug),
				relation.Str(drugDisease[drug]),
				relation.Date(start.AddDate(0, 0, rng.Intn(365))),
			)
		}
	}
	return t
}
