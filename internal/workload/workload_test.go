package workload

import (
	"math/rand"
	"testing"

	"plabi/internal/relation"
	"plabi/internal/textutil"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig(42)
	cfg.Patients, cfg.Prescriptions, cfg.LabResults = 50, 200, 50
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Prescriptions.NumRows() != b.Prescriptions.NumRows() {
		t.Fatal("row counts differ")
	}
	for i := range a.Prescriptions.Rows {
		for c := range a.Prescriptions.Rows[i] {
			if a.Prescriptions.Rows[i][c].Key() != b.Prescriptions.Rows[i][c].Key() {
				t.Fatalf("row %d col %d differs", i, c)
			}
		}
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	for _, cfg := range []Config{
		{},
		{Patients: 10},
		{Patients: 10, Doctors: 2, Prescriptions: -1},
		{Patients: 10, Doctors: 2, LabResults: -1},
		{Patients: 10, Doctors: 2, DirtyRate: 1.5},
	} {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("Generate(%+v) must fail", cfg)
		}
	}
	if err := DefaultConfig(1).Validate(); err != nil {
		t.Fatalf("default config must validate, got %v", err)
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := DefaultConfig(7)
	cfg.Patients, cfg.Prescriptions, cfg.LabResults = 100, 1000, 200
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Prescriptions.NumRows() != 1000 {
		t.Errorf("prescriptions = %d", ds.Prescriptions.NumRows())
	}
	if ds.FamilyDoctor.NumRows() != 100 || ds.Residents.NumRows() != 100 {
		t.Errorf("familydoctor = %d residents = %d", ds.FamilyDoctor.NumRows(), ds.Residents.NumRows())
	}
	if ds.DrugCost.NumRows() < cfg.Drugs {
		t.Errorf("drugcost = %d", ds.DrugCost.NumRows())
	}
	if len(ds.PatientNames) != 100 {
		t.Errorf("patient names = %d", len(ds.PatientNames))
	}
	// Every prescription's drug exists in drugcost.
	costs := map[string]bool{}
	for i := range ds.DrugCost.Rows {
		costs[ds.DrugCost.Get(i, "drug").S] = true
	}
	for i := 0; i < ds.Prescriptions.NumRows(); i++ {
		if d := ds.Prescriptions.Get(i, "drug").S; !costs[d] {
			t.Fatalf("prescription drug %q missing from drugcost", d)
		}
	}
	// Disease-drug coherence: most HIV prescriptions use DH or DV.
	hiv, hivLinked := 0, 0
	for i := 0; i < ds.Prescriptions.NumRows(); i++ {
		if ds.Prescriptions.Get(i, "disease").S != "HIV" {
			continue
		}
		hiv++
		if d := ds.Prescriptions.Get(i, "drug").S; d == "DH" || d == "DV" {
			hivLinked++
		}
	}
	if hiv == 0 || float64(hivLinked)/float64(hiv) < 0.7 {
		t.Errorf("HIV drug coherence: %d/%d", hivLinked, hiv)
	}
}

func TestDirtyNamesResolvable(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.Patients = 200
	cfg.DirtyRate = 0.5
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clean := map[string]bool{}
	for _, n := range ds.PatientNames {
		clean[n] = true
	}
	dirty, matchable := 0, 0
	for i := 0; i < ds.FamilyDoctor.NumRows(); i++ {
		name := ds.FamilyDoctor.Get(i, "patient").S
		if clean[name] {
			continue
		}
		dirty++
		// A dirty variant must still be recognizable at threshold 0.88.
		for _, c := range ds.PatientNames {
			if textutil.Similar(name, c, 0.88) {
				matchable++
				break
			}
		}
	}
	if dirty == 0 {
		t.Fatal("expected dirty names at rate 0.5")
	}
	if float64(matchable)/float64(dirty) < 0.95 {
		t.Errorf("only %d/%d dirty names matchable", matchable, dirty)
	}
}

func TestDirtyChangesName(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	changed := 0
	for i := 0; i < 100; i++ {
		if Dirty("Alice Rossi", rng) != "Alice Rossi" {
			changed++
		}
	}
	if changed < 90 {
		t.Errorf("Dirty changed only %d/100", changed)
	}
	if Dirty("ab", rng) != "ab" {
		t.Error("short names must pass through")
	}
}

func TestPaperFixtures(t *testing.T) {
	p := PrescriptionsFixture()
	if p.NumRows() != 5 {
		t.Errorf("prescriptions fixture rows = %d", p.NumRows())
	}
	if p.Get(0, "patient").S != "Alice" || p.Get(0, "disease").S != "HIV" {
		t.Errorf("row 0 = %v", p.Rows[0])
	}
	if !p.Get(1, "doctor").IsNull() {
		t.Error("Chris's doctor must be NULL as in the paper")
	}
	pol := PoliciesFixture()
	if pol.NumRows() != 4 || pol.Get(3, "ShowDisease").B != true {
		t.Errorf("policies fixture = %v", pol.Rows)
	}
	fd := FamilyDoctorFixture()
	if fd.NumRows() != 4 || fd.Get(1, "doctor").S != "Anne" {
		t.Errorf("familydoctor fixture = %v", fd.Rows)
	}
	dc := DrugCostFixture()
	if dc.NumRows() != 5 || dc.Get(2, "cost").I != 60 {
		t.Errorf("drugcost fixture = %v", dc.Rows)
	}
}

func TestFig4PrescriptionsReproducesFig4b(t *testing.T) {
	p := Fig4Prescriptions(1)
	counts := map[string]int64{}
	for i := 0; i < p.NumRows(); i++ {
		counts[p.Get(i, "drug").S]++
	}
	for drug, want := range Fig4Consumption {
		if counts[drug] != want {
			t.Errorf("%s = %d, want %d", drug, counts[drug], want)
		}
	}
	if p.NumRows() != 139 {
		t.Errorf("total = %d, want 139", p.NumRows())
	}
	// HIV condition coherence: all DH/DV prescriptions are HIV.
	for i := 0; i < p.NumRows(); i++ {
		d := p.Get(i, "drug").S
		dis := p.Get(i, "disease").S
		if (d == "DH" || d == "DV") && dis != "HIV" {
			t.Errorf("row %d: drug %s disease %s", i, d, dis)
		}
	}
}

func TestOwners(t *testing.T) {
	o := Owners()
	if o["prescriptions"] != "hospital" || o["drugcost"] != "healthagency" {
		t.Errorf("owners = %v", o)
	}
	if len(o) != 5 {
		t.Errorf("len = %d", len(o))
	}
}

func TestFixtureSchemasAlign(t *testing.T) {
	// Generated and fixture prescriptions must agree on the shared
	// columns so tests can swap one for the other.
	genDS, err := Generate(DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	gen := genDS.Prescriptions
	fix := PrescriptionsFixture()
	for _, col := range fix.Schema.ColumnNames() {
		if !gen.Schema.HasColumn(col) {
			t.Errorf("generated prescriptions missing column %q", col)
		}
	}
	var _ relation.Row = fix.Rows[0]
}
