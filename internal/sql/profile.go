package sql

import (
	"fmt"
	"sort"
	"strings"

	"plabi/internal/relation"
)

// SimplePred is a filter conjunct of the form col OP literal (or col IN
// (literals)), with the column resolved to its base-table origin. Simple
// predicates are the unit of the implication reasoning used by VPD
// rewriting and meta-report containment.
type SimplePred struct {
	Col  relation.ColRef
	Op   relation.BinOp // OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpLike
	Val  relation.Value
	In   []relation.Value // non-nil for IN predicates (Op ignored)
	NotP bool             // negated IN (NOT IN) or negated LIKE
}

// String renders the predicate.
func (p SimplePred) String() string {
	if p.In != nil {
		parts := make([]string, len(p.In))
		for i, v := range p.In {
			parts[i] = v.String()
		}
		op := "IN"
		if p.NotP {
			op = "NOT IN"
		}
		return fmt.Sprintf("%s %s (%s)", p.Col, op, strings.Join(parts, ", "))
	}
	return fmt.Sprintf("%s %s %v", p.Col, p.Op, p.Val)
}

// JoinPair records that two base tables are joined by a query, in sorted
// order — the unit of the paper's join permissions/prohibitions (§5 iv).
type JoinPair struct {
	A, B string
}

// NewJoinPair builds a normalized (sorted) pair.
func NewJoinPair(a, b string) JoinPair {
	a, b = strings.ToLower(a), strings.ToLower(b)
	if a > b {
		a, b = b, a
	}
	return JoinPair{A: a, B: b}
}

// Profile is the structural summary of a SELECT used for policy analysis:
// which base tables it reads, which base columns reach the output, which
// filter conjuncts constrain it, which tables it joins, and how it
// aggregates.
type Profile struct {
	BaseTables []string
	OutputCols relation.ColRefSet
	// OutputNames maps each output column name (lowercase) to its origins.
	OutputNames map[string]relation.ColRefSet
	Conjuncts   []SimplePred
	// Opaque is set when the WHERE clause contained structure beyond a
	// conjunction of simple predicates (ORs, NOT, expressions). Opaque
	// filters cannot be used to *prove* containment but do not forbid it
	// when the candidate's filters are a superset.
	Opaque     bool
	JoinPairs  []JoinPair
	GroupKeys  relation.ColRefSet
	Aggregated bool
}

// colEnv maps visible column names (qualified and unqualified, lowercase)
// to base-column origins during profiling.
type colEnv map[string]relation.ColRefSet

// ProfileQuery computes the profile of a SELECT against the catalog.
// Views in the FROM clause are profiled recursively; their filters and
// joins fold into the outer profile.
func ProfileQuery(c *Catalog, s *SelectStmt) (*Profile, error) {
	return profileSelect(c, s, map[string]bool{})
}

// ProfileSQL parses and profiles a SELECT string.
func ProfileSQL(c *Catalog, src string) (*Profile, error) {
	sel, err := ParseSelect(src)
	if err != nil {
		return nil, err
	}
	return ProfileQuery(c, sel)
}

// profileRel profiles one FROM-clause name: a base table or a view.
// It returns the environment of visible columns and the folded-in profile
// contributions (tables, conjuncts, joins, opacity).
func profileRel(c *Catalog, name string, seen map[string]bool) (colEnv, *Profile, error) {
	key := strings.ToLower(name)
	if t, ok := c.Table(key); ok {
		env := colEnv{}
		p := &Profile{}
		if t.Base || t.ColOrigin == nil {
			p.BaseTables = []string{key}
			for _, col := range t.Schema.Columns {
				cn := strings.ToLower(col.Name)
				env[cn] = relation.ColRefSet{{Table: key, Column: cn}}
			}
		} else {
			// A registered *derived* table (e.g. an ETL staging output)
			// carries its own column origins: profile through to the true
			// base tables so PLAs scoped to the sources keep applying.
			p.BaseTables = t.BaseTables()
			for i, col := range t.Schema.Columns {
				cn := strings.ToLower(col.Name)
				env[cn] = t.ColumnOrigin(i)
			}
		}
		return env, p, nil
	}
	if v, ok := c.View(key); ok {
		if seen[key] {
			return nil, nil, fmt.Errorf("sql: view cycle through %q", name)
		}
		seen[key] = true
		vp, err := profileSelect(c, v, seen)
		seen[key] = false
		if err != nil {
			return nil, nil, err
		}
		env := colEnv{}
		for n, refs := range vp.OutputNames {
			env[n] = refs
		}
		return env, vp, nil
	}
	return nil, nil, fmt.Errorf("sql: %w %q", ErrUnknownTable, name)
}

func profileSelect(c *Catalog, s *SelectStmt, seen map[string]bool) (*Profile, error) {
	p := &Profile{OutputNames: map[string]relation.ColRefSet{}}
	env := colEnv{}
	ambiguous := map[string]bool{}

	addRel := func(tr TableRef) error {
		relEnv, sub, err := profileRel(c, tr.Name, seen)
		if err != nil {
			return err
		}
		alias := strings.ToLower(tr.EffName())
		for n, refs := range relEnv {
			env[alias+"."+n] = refs
			if _, dup := env[n]; dup {
				ambiguous[n] = true
			} else {
				env[n] = refs
			}
		}
		p.BaseTables = append(p.BaseTables, sub.BaseTables...)
		p.Conjuncts = append(p.Conjuncts, sub.Conjuncts...)
		p.JoinPairs = append(p.JoinPairs, sub.JoinPairs...)
		if sub.Opaque {
			p.Opaque = true
		}
		if sub.Aggregated {
			// An aggregated view makes fine-grained filter reasoning on
			// the outer query unsound; mark opaque.
			p.Opaque = true
		}
		return nil
	}

	if err := addRel(s.From); err != nil {
		return nil, err
	}
	for _, j := range s.Joins {
		if err := addRel(j.Table); err != nil {
			return nil, err
		}
		profilePredicate(j.On, env, ambiguous, p)
	}
	if s.Where != nil {
		profilePredicate(s.Where, env, ambiguous, p)
	}

	resolve := func(name string) (relation.ColRefSet, bool) {
		n := strings.ToLower(name)
		if !strings.ContainsRune(n, '.') && ambiguous[n] {
			return nil, false
		}
		refs, ok := env[n]
		return refs, ok
	}

	originsOf := func(e relation.Expr) relation.ColRefSet {
		var out relation.ColRefSet
		for _, ref := range relation.ColumnsOf(e) {
			if refs, ok := resolve(ref); ok {
				out = out.Union(refs)
			}
		}
		return out
	}

	for _, it := range s.Items {
		switch {
		case it.Star:
			for n, refs := range env {
				if strings.ContainsRune(n, '.') || ambiguous[n] {
					continue
				}
				p.OutputNames[n] = refs
				p.OutputCols = p.OutputCols.Union(refs)
			}
		case it.Agg != nil:
			var refs relation.ColRefSet
			if it.Agg.Arg != nil {
				refs = originsOf(it.Agg.Arg)
			}
			p.OutputNames[strings.ToLower(it.OutName())] = refs
			p.OutputCols = p.OutputCols.Union(refs)
		default:
			refs := originsOf(it.Expr)
			p.OutputNames[strings.ToLower(it.OutName())] = refs
			p.OutputCols = p.OutputCols.Union(refs)
		}
	}

	if len(s.GroupBy) > 0 || s.HasAggregates() {
		p.Aggregated = true
		for _, g := range s.GroupBy {
			p.GroupKeys = p.GroupKeys.Union(originsOf(g))
		}
	}
	if s.Having != nil {
		p.Opaque = true
	}

	sort.Strings(p.BaseTables)
	p.BaseTables = dedupeStrings(p.BaseTables)
	p.JoinPairs = dedupeJoinPairs(p.JoinPairs)
	return p, nil
}

// profilePredicate decomposes a boolean expression into simple conjuncts,
// join pairs, and an opacity flag, folding results into p.
func profilePredicate(e relation.Expr, env colEnv, ambiguous map[string]bool, p *Profile) {
	resolveSingle := func(name string) (relation.ColRef, bool) {
		n := strings.ToLower(name)
		if !strings.ContainsRune(n, '.') && ambiguous[n] {
			return relation.ColRef{}, false
		}
		refs, ok := env[n]
		if !ok || len(refs) != 1 {
			return relation.ColRef{}, false
		}
		return refs[0], true
	}

	var walk func(e relation.Expr)
	walk = func(e relation.Expr) {
		switch ex := e.(type) {
		case *relation.BinExpr:
			if ex.Op == relation.OpAnd {
				walk(ex.L)
				walk(ex.R)
				return
			}
			// col OP literal?
			if ce, ok := ex.L.(*relation.ColExpr); ok {
				if le, ok := ex.R.(*relation.LitExpr); ok {
					if ref, ok := resolveSingle(ce.Name); ok && isSimpleCmp(ex.Op) {
						p.Conjuncts = append(p.Conjuncts, SimplePred{Col: ref, Op: ex.Op, Val: le.V})
						return
					}
				}
				// col = col join?
				if ce2, ok := ex.R.(*relation.ColExpr); ok && ex.Op == relation.OpEq {
					r1, ok1 := resolveSingle(ce.Name)
					r2, ok2 := resolveSingle(ce2.Name)
					if ok1 && ok2 && r1.Table != r2.Table {
						p.JoinPairs = append(p.JoinPairs, NewJoinPair(r1.Table, r2.Table))
						return
					}
				}
			}
			// literal OP col (flip).
			if le, ok := ex.L.(*relation.LitExpr); ok {
				if ce, ok := ex.R.(*relation.ColExpr); ok {
					if ref, ok := resolveSingle(ce.Name); ok && isSimpleCmp(ex.Op) {
						p.Conjuncts = append(p.Conjuncts, SimplePred{Col: ref, Op: flipCmp(ex.Op), Val: le.V})
						return
					}
				}
			}
			p.Opaque = true
		case *relation.InExpr:
			if ce, ok := ex.E.(*relation.ColExpr); ok {
				if ref, ok := resolveSingle(ce.Name); ok {
					var vals []relation.Value
					for _, le := range ex.List {
						lit, isLit := le.(*relation.LitExpr)
						if !isLit {
							p.Opaque = true
							return
						}
						vals = append(vals, lit.V)
					}
					p.Conjuncts = append(p.Conjuncts, SimplePred{Col: ref, In: vals, NotP: ex.Negate})
					return
				}
			}
			p.Opaque = true
		default:
			p.Opaque = true
		}
	}
	walk(e)
}

func isSimpleCmp(op relation.BinOp) bool {
	switch op {
	case relation.OpEq, relation.OpNe, relation.OpLt, relation.OpLe,
		relation.OpGt, relation.OpGe, relation.OpLike:
		return true
	}
	return false
}

func flipCmp(op relation.BinOp) relation.BinOp {
	switch op {
	case relation.OpLt:
		return relation.OpGt
	case relation.OpLe:
		return relation.OpGe
	case relation.OpGt:
		return relation.OpLt
	case relation.OpGe:
		return relation.OpLe
	default:
		return op
	}
}

func dedupeStrings(in []string) []string {
	out := in[:0]
	for i, s := range in {
		if i == 0 || s != in[i-1] {
			out = append(out, s)
		}
	}
	return out
}

func dedupeJoinPairs(in []JoinPair) []JoinPair {
	sort.Slice(in, func(i, j int) bool {
		if in[i].A != in[j].A {
			return in[i].A < in[j].A
		}
		return in[i].B < in[j].B
	})
	out := in[:0]
	for i, p := range in {
		if i == 0 || p != in[i-1] {
			out = append(out, p)
		}
	}
	return out
}

// Implies reports whether predicate r logically implies predicate m.
// Both must constrain the same base column; sound but incomplete (false
// negatives possible, never false positives).
func Implies(r, m SimplePred) bool {
	if r.Col != m.Col {
		return false
	}
	// IN-set reasoning.
	if m.In != nil && !m.NotP {
		if r.In != nil && !r.NotP {
			return valueSubset(r.In, m.In)
		}
		if r.In == nil && r.Op == relation.OpEq {
			return valueIn(r.Val, m.In)
		}
		return false
	}
	if m.In != nil && m.NotP {
		// r implies "col NOT IN S" when r pins col to values disjoint
		// from S.
		if r.In == nil && r.Op == relation.OpEq {
			return !valueIn(r.Val, m.In)
		}
		if r.In != nil && !r.NotP {
			for _, v := range r.In {
				if valueIn(v, m.In) {
					return false
				}
			}
			return true
		}
		if r.In != nil && r.NotP {
			return valueSubset(m.In, r.In)
		}
		return false
	}
	if r.In != nil {
		// r is an IN; m is a comparison: every member of r's set must
		// satisfy m.
		if r.NotP {
			return false
		}
		for _, v := range r.In {
			if !satisfies(v, m) {
				return false
			}
		}
		return true
	}
	// Comparison vs comparison.
	switch m.Op {
	case relation.OpLike:
		if r.Op == relation.OpLike {
			return r.Val.Equal(m.Val)
		}
		if r.Op == relation.OpEq {
			return satisfies(r.Val, m)
		}
		return false
	case relation.OpNe:
		if r.Op == relation.OpNe {
			return r.Val.Equal(m.Val)
		}
		if r.Op == relation.OpEq {
			return !r.Val.Equal(m.Val)
		}
		// Interval-based: r strictly excludes m.Val.
		return intervalExcludes(r, m.Val)
	case relation.OpEq:
		return r.Op == relation.OpEq && r.Val.Equal(m.Val)
	default:
		// m is an interval constraint; r must confine col within it.
		if r.Op == relation.OpEq {
			return satisfies(r.Val, m)
		}
		return intervalImplies(r, m)
	}
}

// satisfies reports whether a concrete value satisfies a simple predicate.
func satisfies(v relation.Value, p SimplePred) bool {
	if p.In != nil {
		in := valueIn(v, p.In)
		return in != p.NotP
	}
	c, ok := v.Compare(p.Val)
	if !ok {
		if p.Op == relation.OpLike && v.Kind == relation.TString && p.Val.Kind == relation.TString {
			e := relation.Bin(relation.OpLike, relation.Lit(v), relation.Lit(p.Val))
			res, err := e.Eval(nil, relation.NewSchema())
			return err == nil && res.Kind == relation.TBool && res.B
		}
		return false
	}
	switch p.Op {
	case relation.OpEq:
		return c == 0
	case relation.OpNe:
		return c != 0
	case relation.OpLt:
		return c < 0
	case relation.OpLe:
		return c <= 0
	case relation.OpGt:
		return c > 0
	case relation.OpGe:
		return c >= 0
	case relation.OpLike:
		if v.Kind == relation.TString && p.Val.Kind == relation.TString {
			e := relation.Bin(relation.OpLike, relation.Lit(v), relation.Lit(p.Val))
			res, err := e.Eval(nil, relation.NewSchema())
			return err == nil && res.Kind == relation.TBool && res.B
		}
		return false
	}
	return false
}

// intervalImplies: r and m are both order comparisons on the same column;
// does r's admissible interval lie within m's?
func intervalImplies(r, m SimplePred) bool {
	c, ok := r.Val.Compare(m.Val)
	if !ok {
		return false
	}
	switch m.Op {
	case relation.OpLt:
		return (r.Op == relation.OpLt && c <= 0) || (r.Op == relation.OpLe && c < 0)
	case relation.OpLe:
		return (r.Op == relation.OpLt || r.Op == relation.OpLe) && c <= 0
	case relation.OpGt:
		return (r.Op == relation.OpGt && c >= 0) || (r.Op == relation.OpGe && c > 0)
	case relation.OpGe:
		return (r.Op == relation.OpGt || r.Op == relation.OpGe) && c >= 0
	}
	return false
}

// intervalExcludes reports whether comparison r makes value v impossible.
func intervalExcludes(r SimplePred, v relation.Value) bool {
	c, ok := v.Compare(r.Val)
	if !ok {
		return false
	}
	switch r.Op {
	case relation.OpLt:
		return c >= 0
	case relation.OpLe:
		return c > 0
	case relation.OpGt:
		return c <= 0
	case relation.OpGe:
		return c < 0
	}
	return false
}

func valueIn(v relation.Value, set []relation.Value) bool {
	for _, s := range set {
		if v.Equal(s) {
			return true
		}
	}
	return false
}

func valueSubset(a, b []relation.Value) bool {
	for _, v := range a {
		if !valueIn(v, b) {
			return false
		}
	}
	return true
}

// ConjunctionImplies reports whether the conjunction rs implies the
// conjunction ms: every m must be implied by at least one r.
func ConjunctionImplies(rs, ms []SimplePred) bool {
	for _, m := range ms {
		ok := false
		for _, r := range rs {
			if Implies(r, m) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}
