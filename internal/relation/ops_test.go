package relation

import (
	"testing"
	"testing/quick"
)

// prescriptionsFixture builds the paper's Fig. 2b Prescriptions base table.
func prescriptionsFixture() *Table {
	t := NewBase("prescriptions", NewSchema(
		Col("patient", TString),
		Col("doctor", TString),
		Col("drug", TString),
		Col("disease", TString),
		Col("date", TDate),
	))
	t.AppendVals(Str("Alice"), Str("Luis"), Str("DH"), Str("HIV"), DateYMD(2007, 2, 12))
	t.AppendVals(Str("Chris"), Null(), Str("DV"), Str("HIV"), DateYMD(2007, 3, 10))
	t.AppendVals(Str("Bob"), Str("Anne"), Str("DR"), Str("asthma"), DateYMD(2007, 8, 10))
	t.AppendVals(Str("Math"), Str("Mark"), Str("DM"), Str("diabetes"), DateYMD(2007, 10, 15))
	t.AppendVals(Str("Alice"), Str("Luis"), Str("DR"), Str("asthma"), DateYMD(2008, 4, 15))
	return t
}

func drugCostFixture() *Table {
	t := NewBase("drugcost", NewSchema(Col("drug", TString), Col("cost", TInt)))
	t.AppendVals(Str("DD"), Int(50))
	t.AppendVals(Str("DM"), Int(10))
	t.AppendVals(Str("DH"), Int(60))
	t.AppendVals(Str("DV"), Int(30))
	t.AppendVals(Str("DR"), Int(10))
	return t
}

func TestSelect(t *testing.T) {
	p := prescriptionsFixture()
	out, err := Select(p, ColEqStr("disease", "HIV"))
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 {
		t.Fatalf("got %d rows, want 2", out.NumRows())
	}
	// Lineage must point at base rows 0 and 1.
	if !out.RowLineage(0).Contains(RowRef{"prescriptions", 0}) {
		t.Errorf("row 0 lineage = %v", out.RowLineage(0))
	}
	if !out.RowLineage(1).Contains(RowRef{"prescriptions", 1}) {
		t.Errorf("row 1 lineage = %v", out.RowLineage(1))
	}
}

func TestSelectNullPredicate(t *testing.T) {
	p := prescriptionsFixture()
	// doctor = 'Anne' must skip the NULL-doctor row without selecting it.
	out, err := Select(p, ColEqStr("doctor", "Anne"))
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 1 || out.Get(0, "patient").S != "Bob" {
		t.Errorf("got %v", out.Rows)
	}
}

func TestProject(t *testing.T) {
	p := prescriptionsFixture()
	out, err := ProjectCols(p, "patient", "drug")
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema.Len() != 2 || out.NumRows() != 5 {
		t.Fatalf("schema %s rows %d", out.Schema, out.NumRows())
	}
	// Column origins track base columns.
	if !out.ColumnOrigin(0).Contains(ColRef{"prescriptions", "patient"}) {
		t.Errorf("origin = %v", out.ColumnOrigin(0))
	}
	if out.ColumnOrigin(1).Contains(ColRef{"prescriptions", "patient"}) {
		t.Error("drug column must not carry patient origin")
	}
}

func TestProjectComputedColumn(t *testing.T) {
	p := prescriptionsFixture()
	out, err := Project(p, P("patient"), PAs(Fn("YEAR", ColRefExpr("date")), "year"))
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema.Columns[1].Name != "year" || out.Schema.Columns[1].Type != TInt {
		t.Errorf("schema = %s", out.Schema)
	}
	if v := out.Get(0, "year"); v.I != 2007 {
		t.Errorf("year = %v", v)
	}
	// Computed column origin is the date column.
	if !out.ColumnOrigin(1).Contains(ColRef{"prescriptions", "date"}) {
		t.Errorf("origin = %v", out.ColumnOrigin(1))
	}
}

func TestProjectUnknownColumn(t *testing.T) {
	if _, err := ProjectCols(prescriptionsFixture(), "ghost"); err == nil {
		t.Error("expected error")
	}
}

func TestExtend(t *testing.T) {
	p := drugCostFixture()
	out, err := Extend(p, "double_cost", Bin(OpMul, ColRefExpr("cost"), Lit(Int(2))))
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema.Len() != 3 {
		t.Fatalf("schema = %s", out.Schema)
	}
	if v := out.Get(0, "double_cost"); v.I != 100 {
		t.Errorf("double_cost = %v", v)
	}
	if !out.ColumnOrigin(2).Contains(ColRef{"drugcost", "cost"}) {
		t.Errorf("origin = %v", out.ColumnOrigin(2))
	}
}

func TestJoinEquiHash(t *testing.T) {
	p := prescriptionsFixture()
	c := drugCostFixture()
	out, err := Join(Rename(p, "p"), Rename(c, "c"), Eq(ColRefExpr("p.drug"), ColRefExpr("c.drug")), InnerJoin)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 5 {
		t.Fatalf("rows = %d, want 5", out.NumRows())
	}
	// Alice/DH row joins with cost 60 and carries lineage from both bases.
	found := false
	for i := range out.Rows {
		if out.Get(i, "p.patient").S == "Alice" && out.Get(i, "p.drug").S == "DH" {
			found = true
			if out.Get(i, "c.cost").I != 60 {
				t.Errorf("cost = %v", out.Get(i, "c.cost"))
			}
			lin := out.RowLineage(i)
			if !lin.Contains(RowRef{"prescriptions", 0}) || !lin.Contains(RowRef{"drugcost", 2}) {
				t.Errorf("lineage = %v", lin)
			}
		}
	}
	if !found {
		t.Error("Alice/DH row missing")
	}
}

func TestJoinLeft(t *testing.T) {
	c := drugCostFixture() // has DD which never appears in prescriptions
	p := prescriptionsFixture()
	out, err := Join(Rename(c, "c"), Rename(p, "p"), Eq(ColRefExpr("c.drug"), ColRefExpr("p.drug")), LeftJoin)
	if err != nil {
		t.Fatal(err)
	}
	// DD row must survive with NULL right side.
	foundDD := false
	for i := range out.Rows {
		if out.Get(i, "c.drug").S == "DD" {
			foundDD = true
			if !out.Get(i, "p.patient").IsNull() {
				t.Error("DD should have NULL patient")
			}
		}
	}
	if !foundDD {
		t.Error("left join lost unmatched row")
	}
}

func TestJoinGeneralPredicate(t *testing.T) {
	c := drugCostFixture()
	out, err := Join(Rename(c, "a"), Rename(c, "b"),
		Bin(OpLt, ColRefExpr("a.cost"), ColRefExpr("b.cost")), InnerJoin)
	if err != nil {
		t.Fatal(err)
	}
	// Pairs with strictly smaller cost: costs are 50,10,60,30,10.
	// Sorted: 10,10,30,50,60 -> pairs (a<b): 10<30 x2,10<50 x2,10<60 x2,30<50,30<60,50<60 = 9.
	if out.NumRows() != 9 {
		t.Errorf("rows = %d, want 9", out.NumRows())
	}
}

func TestGroupByCountAndLineage(t *testing.T) {
	p := prescriptionsFixture()
	out, err := GroupBy(p, []string{"disease"}, []AggSpec{{Kind: AggCount}})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int64{}
	for i := range out.Rows {
		counts[out.Get(i, "disease").S] = out.Get(i, "count").I
	}
	if counts["HIV"] != 2 || counts["asthma"] != 2 || counts["diabetes"] != 1 {
		t.Errorf("counts = %v", counts)
	}
	// The HIV group's lineage must contain exactly base rows 0 and 1.
	for i := range out.Rows {
		if out.Get(i, "disease").S == "HIV" {
			lin := out.RowLineage(i)
			if len(lin) != 2 || !lin.Contains(RowRef{"prescriptions", 0}) || !lin.Contains(RowRef{"prescriptions", 1}) {
				t.Errorf("HIV lineage = %v", lin)
			}
		}
	}
}

func TestGroupByAggregates(t *testing.T) {
	c := drugCostFixture()
	all, err := GroupBy(c, nil, []AggSpec{
		{Kind: AggSum, Col: "cost"},
		{Kind: AggAvg, Col: "cost"},
		{Kind: AggMin, Col: "cost"},
		{Kind: AggMax, Col: "cost"},
		{Kind: AggCountDistinct, Col: "cost"},
		{Kind: AggCount},
	})
	if err != nil {
		t.Fatal(err)
	}
	if all.NumRows() != 1 {
		t.Fatalf("rows = %d", all.NumRows())
	}
	r := all.Rows[0]
	if r[0].I != 160 {
		t.Errorf("sum = %v", r[0])
	}
	if r[1].F != 32 {
		t.Errorf("avg = %v", r[1])
	}
	if r[2].I != 10 || r[3].I != 60 {
		t.Errorf("min/max = %v/%v", r[2], r[3])
	}
	if r[4].I != 4 { // 50,10,60,30 distinct
		t.Errorf("count distinct = %v", r[4])
	}
	if r[5].I != 5 {
		t.Errorf("count = %v", r[5])
	}
}

func TestGroupByNullsIgnoredInAggs(t *testing.T) {
	b := NewBase("t", NewSchema(Col("g", TString), Col("x", TInt)))
	b.AppendVals(Str("a"), Int(1))
	b.AppendVals(Str("a"), Null())
	out, err := GroupBy(b, []string{"g"}, []AggSpec{
		{Kind: AggCount, Col: "x", As: "cnt"},
		{Kind: AggSum, Col: "x", As: "s"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Get(0, "cnt").I != 1 || out.Get(0, "s").I != 1 {
		t.Errorf("rows = %v", out.Rows)
	}
}

func TestDistinctMergesLineage(t *testing.T) {
	p := prescriptionsFixture()
	proj, err := ProjectCols(p, "patient")
	if err != nil {
		t.Fatal(err)
	}
	d := Distinct(proj)
	if d.NumRows() != 4 { // Alice, Chris, Bob, Math
		t.Fatalf("rows = %d", d.NumRows())
	}
	// Alice appears at base rows 0 and 4; the surviving row carries both.
	for i := range d.Rows {
		if d.Get(i, "patient").S == "Alice" {
			lin := d.RowLineage(i)
			if !lin.Contains(RowRef{"prescriptions", 0}) || !lin.Contains(RowRef{"prescriptions", 4}) {
				t.Errorf("Alice lineage = %v", lin)
			}
		}
	}
}

func TestUnion(t *testing.T) {
	a := drugCostFixture()
	b := drugCostFixture()
	out, err := Union(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 10 {
		t.Errorf("rows = %d", out.NumRows())
	}
	if Distinct(out).NumRows() != 5 {
		t.Errorf("distinct rows = %d", Distinct(out).NumRows())
	}
}

func TestUnionArityMismatch(t *testing.T) {
	if _, err := Union(drugCostFixture(), prescriptionsFixture()); err == nil {
		t.Error("expected arity error")
	}
}

func TestSort(t *testing.T) {
	c := drugCostFixture()
	out, err := Sort(c, SortKey{Col: "cost"}, SortKey{Col: "drug"})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"DM", "DR", "DV", "DD", "DH"}
	for i, w := range want {
		if out.Get(i, "drug").S != w {
			t.Errorf("row %d = %v, want %s", i, out.Get(i, "drug"), w)
		}
	}
	desc, err := Sort(c, SortKey{Col: "cost", Desc: true})
	if err != nil {
		t.Fatal(err)
	}
	if desc.Get(0, "drug").S != "DH" {
		t.Errorf("desc first = %v", desc.Get(0, "drug"))
	}
}

func TestSortNullsFirst(t *testing.T) {
	b := NewBase("t", NewSchema(Col("x", TInt)))
	b.AppendVals(Int(2))
	b.AppendVals(Null())
	b.AppendVals(Int(1))
	out, err := Sort(b, SortKey{Col: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Rows[0][0].IsNull() || out.Rows[1][0].I != 1 {
		t.Errorf("rows = %v", out.Rows)
	}
}

func TestLimit(t *testing.T) {
	c := drugCostFixture()
	if Limit(c, 2).NumRows() != 2 {
		t.Error("limit 2")
	}
	if Limit(c, 99).NumRows() != 5 {
		t.Error("limit beyond size")
	}
	if Limit(c, 0).NumRows() != 0 {
		t.Error("limit 0")
	}
}

func TestBaseTables(t *testing.T) {
	p := prescriptionsFixture()
	c := drugCostFixture()
	j, err := Join(Rename(p, "p"), Rename(c, "c"), Eq(ColRefExpr("p.drug"), ColRefExpr("c.drug")), InnerJoin)
	if err != nil {
		t.Fatal(err)
	}
	bt := j.BaseTables()
	if len(bt) != 2 || bt[0] != "drugcost" || bt[1] != "prescriptions" {
		t.Errorf("BaseTables = %v", bt)
	}
}

func TestTableClone(t *testing.T) {
	p := prescriptionsFixture()
	sel, err := Select(p, ColEqStr("disease", "HIV"))
	if err != nil {
		t.Fatal(err)
	}
	c := sel.Clone()
	c.Rows[0][0] = Str("Mallory")
	if sel.Rows[0][0].S == "Mallory" {
		t.Error("clone aliases rows")
	}
}

func TestTableString(t *testing.T) {
	c := drugCostFixture()
	s := c.String()
	if s == "" || len(s) < 20 {
		t.Errorf("String too short: %q", s)
	}
}

func TestAppendArity(t *testing.T) {
	c := drugCostFixture()
	if err := c.Append(Row{Str("x")}); err == nil {
		t.Error("expected arity error")
	}
}

// Property: lineage of any selected row is a subset of the input's lineage
// for that row, and every output row of Select satisfies the predicate.
func TestSelectPropertyLineagePreserved(t *testing.T) {
	f := func(costs []int16) bool {
		b := NewBase("t", NewSchema(Col("x", TInt)))
		for _, c := range costs {
			b.AppendVals(Int(int64(c)))
		}
		out, err := Select(b, Bin(OpGt, ColRefExpr("x"), Lit(Int(0))))
		if err != nil {
			return false
		}
		for i := range out.Rows {
			if out.Rows[i][0].I <= 0 {
				return false
			}
			lin := out.RowLineage(i)
			if len(lin) != 1 || lin[0].Table != "t" {
				return false
			}
			// The referenced base row must hold the same value.
			if b.Rows[lin[0].Row][0].I != out.Rows[i][0].I {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: GroupBy count per group sums to the input cardinality, and the
// union of all group lineages covers every input row exactly once.
func TestGroupByPropertyPartition(t *testing.T) {
	f := func(keys []uint8) bool {
		b := NewBase("t", NewSchema(Col("k", TInt)))
		for _, k := range keys {
			b.AppendVals(Int(int64(k % 7)))
		}
		out, err := GroupBy(b, []string{"k"}, []AggSpec{{Kind: AggCount}})
		if err != nil {
			return false
		}
		var total int64
		covered := map[int]bool{}
		for i := range out.Rows {
			total += out.Get(i, "count").I
			for _, ref := range out.RowLineage(i) {
				if covered[ref.Row] {
					return false // overlap between groups
				}
				covered[ref.Row] = true
			}
		}
		return total == int64(len(keys)) && len(covered) == len(keys)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Distinct is idempotent.
func TestDistinctIdempotent(t *testing.T) {
	f := func(xs []uint8) bool {
		b := NewBase("t", NewSchema(Col("x", TInt)))
		for _, x := range xs {
			b.AppendVals(Int(int64(x % 5)))
		}
		d1 := Distinct(b)
		d2 := Distinct(d1)
		return d1.NumRows() == d2.NumRows()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
