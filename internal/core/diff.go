package core

import "plabi/internal/diff"

// DiffState snapshots the engine's deployment state — policy registry,
// catalog, report definitions and meta-report scope assignment — for
// cross-generation impact analysis (pladiff) and compiler translation
// validation. The snapshot shares the live registries; diff only reads.
func (e *Engine) DiffState() *diff.State {
	return &diff.State{
		Policies: e.Policies,
		Catalog:  e.Catalog,
		Reports:  e.Reports.All(),
		Scopes:   e.Assign2Scopes(),
	}
}
