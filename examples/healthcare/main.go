// Healthcare: the paper's full Fig. 1 outsourcing scenario — five source
// owners, per-owner PLAs covering every §5 annotation kind, guarded ETL
// with entity resolution, meta-report derivation, and enforced rendering
// for two roles, ending with the Fig. 4b drug-consumption report.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"plabi"
)

func main() {
	ctx := context.Background()
	engine, err := plabi.OpenHealthcare(plabi.HealthcareConfig{Seed: 42, Prescriptions: 4000})
	if err != nil {
		log.Fatal(err)
	}
	rx, _ := engine.Table("prescriptions")
	fmt.Printf("scenario: %d prescriptions across 5 institutions\n", rx.NumRows())
	fmt.Printf("meta-reports approved: %d\n\n", len(engine.MetaReports()))

	// The ETL ran under the PLA guard: the forbidden familydoctor join
	// never happened, the permitted drugcost/residents joins did.
	fmt.Println(engine.Explain("rx_wide"))

	analyst := plabi.Consumer{Name: "ana", Role: "analyst", Purpose: "quality"}
	auditor := plabi.Consumer{Name: "aud", Role: "auditor", Purpose: "quality"}

	// The flagship aggregate report: permitted for analysts, with the
	// per-group patient threshold enforced via lineage support.
	enf, err := engine.Render(ctx, "drug-consumption", analyst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plabi.FormatTable("Drug consumption (analyst)", enf.Table))
	fmt.Printf("groups suppressed below the patient threshold: %d\n\n", enf.SuppressedRows)

	// Disease incidence: the hospital releases disease only to auditors.
	for _, c := range []plabi.Consumer{analyst, auditor} {
		enf, err := engine.Render(ctx, "disease-by-year", c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("disease-by-year for %s: %d rows, %d cells masked\n",
			c.Role, enf.Table.NumRows(), enf.MaskedCells)
	}

	// The per-patient listing is statically non-compliant for analysts
	// (aggregation threshold on a non-aggregated report): Render returns
	// the blocking decisions as a typed error wrapping ErrPLAViolation.
	enf, err = engine.Render(ctx, "patient-activity", analyst)
	var blocked *plabi.BlockedError
	switch {
	case errors.As(err, &blocked):
		fmt.Printf("\npatient-activity for analyst: %d rows (blocked: %v)\n",
			enf.Table.NumRows(), blocked.Decisions[0].Rule)
	case err != nil:
		log.Fatal(err)
	default:
		log.Fatal("patient-activity unexpectedly rendered for analyst")
	}
	if !errors.Is(err, plabi.ErrPLAViolation) {
		log.Fatal("blocked render should wrap ErrPLAViolation")
	}

	stats := engine.CacheStats()
	fmt.Printf("\ndecision cache: %d hits, %d misses (hit rate %.0f%%)\n",
		stats.Hits, stats.Misses, 100*stats.HitRate())
	fmt.Printf("audit log: %d events, %d violations recorded\n",
		engine.Audit().Len(), len(engine.Audit().Violations()))
}
