package etl

import (
	"fmt"
	"strings"

	"plabi/internal/relation"
	"plabi/internal/textutil"
)

// EntityResolution resolves dirty entity references in one column of a
// staging table against a canonical list drawn from another (donor)
// table — the paper's "integration" use of data: information from one
// owner cleaning/resolving another owner's data (§5 v). The guard's
// CheckIntegration is consulted with the donor table and the beneficiary
// owner before any donor value is used.
type EntityResolution struct {
	baseStep
	// Input is the staging table whose Column gets resolved.
	Input  string
	Column string
	// Canon is the staging table supplying canonical values from
	// CanonColumn.
	Canon       string
	CanonColumn string
	// Beneficiary is the owner of the Input data (the party whose data is
	// being cleaned with the donor's values).
	Beneficiary string
	// Threshold is the Jaro-Winkler similarity above which a dirty value
	// snaps to its best canonical match.
	Threshold float64
	Out       string

	// Stats of the last run.
	Resolved  int
	Unmatched int
}

// NewEntityResolution builds a guarded entity-resolution step.
func NewEntityResolution(name, input, column, canon, canonColumn, beneficiary string, threshold float64, output string) *EntityResolution {
	return &EntityResolution{
		baseStep: baseStep{name}, Input: input, Column: column,
		Canon: canon, CanonColumn: canonColumn, Beneficiary: beneficiary,
		Threshold: threshold, Out: output,
	}
}

// Op implements Step.
func (e *EntityResolution) Op() string { return "entity-resolution" }

// Inputs implements Step.
func (e *EntityResolution) Inputs() []string { return []string{e.Input, e.Canon} }

// Output implements Step.
func (e *EntityResolution) Output() string { return e.Out }

// Run implements Step.
func (e *EntityResolution) Run(c *Context) error {
	in, err := c.Get(e.Input)
	if err != nil {
		return err
	}
	canon, err := c.Get(e.Canon)
	if err != nil {
		return err
	}
	for _, donor := range baseTablesOf(canon) {
		if err := c.Guard.CheckIntegration(donor, e.Beneficiary); err != nil {
			return &ViolationError{Step: e.name, Rule: "integration-permission",
				Detail: fmt.Sprintf("donor %s cleaning data of %s: %v", donor, e.Beneficiary, err), Cause: err}
		}
	}
	ci := canon.Schema.Index(e.CanonColumn)
	if ci < 0 {
		return fmt.Errorf("entity-resolution: canonical column %q not found", e.CanonColumn)
	}
	canon, err = canon.Materialize()
	if err != nil {
		return err
	}
	matcher := newMatcher()
	for _, r := range canon.Rows {
		if v := r[ci]; v.Kind == relation.TString {
			matcher.add(v.S)
		}
	}
	ti := in.Schema.Index(e.Column)
	if ti < 0 {
		return fmt.Errorf("entity-resolution: column %q not found", e.Column)
	}
	e.Resolved, e.Unmatched = 0, 0
	out, err := mapCol(c.Ctx(), in, ti, func(v relation.Value) relation.Value {
		if v.Kind != relation.TString {
			return v
		}
		best, ok := matcher.match(v.S, e.Threshold)
		if !ok {
			e.Unmatched++
			return v
		}
		if best != v.S {
			e.Resolved++
		}
		return relation.Str(best)
	})
	if err != nil {
		return err
	}
	out.Name = e.Out
	c.Put(e.Out, out)
	return nil
}

// matcher indexes canonical strings with cheap blocking (first letter of
// each word, normalized) so resolution stays near-linear. Candidates carry
// their normalized form, computed once at add time — normalization is
// re-done per dirty value but never per (dirty value, candidate) pair.
type matcher struct {
	exact  map[string]string      // normalized -> canonical
	blocks map[string][]candidate // block key -> canonical candidates
}

// candidate is a canonical string plus its cached normalization.
type candidate struct {
	canon string
	norm  string
}

func newMatcher() *matcher {
	return &matcher{exact: map[string]string{}, blocks: map[string][]candidate{}}
}

func blockKeys(norm string) []string {
	words := strings.Fields(norm)
	keys := make([]string, 0, len(words))
	for _, w := range words {
		keys = append(keys, w[:1])
	}
	if len(keys) == 0 {
		keys = append(keys, "")
	}
	return keys
}

func (m *matcher) add(canonical string) {
	norm := textutil.Normalize(canonical)
	if _, ok := m.exact[norm]; ok {
		return
	}
	m.exact[norm] = canonical
	for _, k := range blockKeys(norm) {
		m.blocks[k] = append(m.blocks[k], candidate{canon: canonical, norm: norm})
	}
}

// match finds the best canonical candidate above the threshold.
func (m *matcher) match(s string, threshold float64) (string, bool) {
	norm := textutil.Normalize(s)
	if c, ok := m.exact[norm]; ok {
		return c, true
	}
	seen := map[string]bool{}
	best, bestScore := "", 0.0
	for _, k := range blockKeys(norm) {
		for _, cand := range m.blocks[k] {
			if seen[cand.canon] {
				continue
			}
			seen[cand.canon] = true
			score := textutil.JaroWinkler(norm, cand.norm)
			if score > bestScore {
				best, bestScore = cand.canon, score
			}
		}
	}
	if bestScore >= threshold {
		return best, true
	}
	return "", false
}
