package relation

import "sync/atomic"

// ExecMode selects the execution strategy of the relational operators.
//
// The vectorized mode is the default: operators bind expressions to column
// indices once, hash and group through interned comparable keys, and
// materialize output rows out of flat arenas. The row-at-a-time mode keeps
// the original tuple-at-a-time implementations alive as an executable
// reference: the benchmark suite runs both in one invocation to record the
// perf trajectory, and the equivalence tests use it as the oracle the
// vectorized kernels must match byte for byte.
type ExecMode int32

// Execution modes.
const (
	// ExecVectorized runs the batch/columnar kernels (default).
	ExecVectorized ExecMode = iota
	// ExecRowAtATime runs the reference tuple-at-a-time implementations.
	ExecRowAtATime
	// ExecCompiled runs the vectorized kernels underneath residual
	// programs compiled by internal/compile: relational operators behave
	// exactly as in ExecVectorized, while the enforcement layer executes
	// pre-specialized programs instead of interpreting composites.
	ExecCompiled
)

// String names the mode for logs and benchmark labels.
func (m ExecMode) String() string {
	switch m {
	case ExecRowAtATime:
		return "row"
	case ExecCompiled:
		return "compiled"
	default:
		return "vectorized"
	}
}

var execMode atomic.Int32

// SetExecMode switches the process-wide execution mode and returns the
// previous one. Both modes produce identical results (rows, lineage,
// column origins, errors); only the execution strategy differs.
func SetExecMode(m ExecMode) ExecMode {
	return ExecMode(execMode.Swap(int32(m)))
}

// CurrentExecMode returns the process-wide execution mode.
func CurrentExecMode() ExecMode {
	return ExecMode(execMode.Load())
}
