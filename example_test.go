package plabi_test

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"plabi"
	"plabi/internal/workload"
)

// ExampleOpen builds a minimal deployment through the public API: one
// source, one source-level PLA, one report, one enforced render.
func ExampleOpen() {
	e := plabi.Open()
	e.AddSource(plabi.NewSource("hospital", "hospital", workload.PrescriptionsFixture()))
	if err := e.AddPLAs(`
pla "src" { owner "hospital"; level source; scope "prescriptions";
    allow attribute drug; allow attribute date; }`); err != nil {
		panic(err)
	}
	if err := e.DefineReport(&plabi.ReportDefinition{ID: "drugs",
		Query: "SELECT drug, date FROM prescriptions ORDER BY date"}); err != nil {
		panic(err)
	}
	enf, err := e.Render(context.Background(), "drugs",
		plabi.Consumer{Name: "ana", Role: "analyst", Purpose: "quality"})
	if err != nil {
		panic(err)
	}
	fmt.Printf("rows=%d masked=%d\n", enf.Table.NumRows(), enf.MaskedCells)
	// Output: rows=5 masked=0
}

// ExampleWithAuditSink streams the audit trail to stable storage as JSONL
// while keeping the in-memory log queryable.
func ExampleWithAuditSink() {
	var sink strings.Builder
	e := plabi.Open(plabi.WithAuditSink(&sink))
	e.AddSource(plabi.NewSource("hospital", "hospital", workload.PrescriptionsFixture()))
	if err := e.AddPLAs(`pla "p" { owner "hospital"; level source;
		scope "prescriptions"; allow attribute *; }`); err != nil {
		panic(err)
	}
	lines := strings.Count(sink.String(), "\n")
	fmt.Printf("sink lines=%d in-memory events=%d\n", lines, e.Audit().Len())
	// Output: sink lines=2 in-memory events=2
}

// ExampleEngine_Render shows typed error handling: enforcement refusals
// wrap ErrPLAViolation, and errors.As recovers the concrete blocking
// decisions from the *BlockedError.
func ExampleEngine_Render() {
	e := plabi.Open()
	e.AddSource(plabi.NewSource("hospital", "hospital", workload.PrescriptionsFixture()))
	// A report-level threshold over a non-aggregated report is statically
	// blocked.
	if err := e.AddPLAs(`
pla "src" { owner "hospital"; level source; scope "prescriptions"; allow attribute *; }
pla "thresh" { owner "hospital"; level report; scope "rx"; aggregate min 3 by patient; }`); err != nil {
		panic(err)
	}
	if err := e.DefineReport(&plabi.ReportDefinition{ID: "rx",
		Query: "SELECT patient, drug FROM prescriptions"}); err != nil {
		panic(err)
	}
	_, err := e.Render(context.Background(), "rx", plabi.Consumer{Name: "u", Role: "analyst"})
	if errors.Is(err, plabi.ErrPLAViolation) {
		var be *plabi.BlockedError
		if errors.As(err, &be) {
			fmt.Printf("blocked by %s (pla %s)\n", be.Decisions[0].Rule, be.Decisions[0].PLAs[0])
		}
	}
	// Output: blocked by aggregation-threshold (pla thresh)
}

// ExampleEngine_CompileReport specializes one (report, role, purpose)
// triple into its residual render program — thresholds baked, filters
// pre-bound, dead rules pruned — and prints the compiled plan the render
// hot path executes.
func ExampleEngine_CompileReport() {
	e := plabi.Open()
	e.AddSource(plabi.NewSource("hospital", "hospital", workload.PrescriptionsFixture()))
	if err := e.AddPLAs(`
pla "src" { owner "hospital"; level source; scope "prescriptions"; allow attribute *; }
pla "agg" { owner "hospital"; level report; scope "by-drug";
    deny attribute patient; aggregate min 2 by patient; }`); err != nil {
		panic(err)
	}
	if err := e.DefineReport(&plabi.ReportDefinition{ID: "by-drug",
		Query: "SELECT drug, COUNT(*) AS n FROM prescriptions GROUP BY drug"}); err != nil {
		panic(err)
	}
	c := plabi.Consumer{Name: "ana", Role: "analyst", Purpose: "quality"}
	prog, err := e.CompileReport("by-drug", c)
	if err != nil {
		panic(err)
	}
	fmt.Printf("plas=%v live=%d/%d thresholds=%d\n",
		prog.PLAs, prog.LiveRules, prog.TotalRules, len(prog.Thresholds))
	plan, err := e.ExplainCompiled("by-drug", c)
	if err != nil {
		panic(err)
	}
	fmt.Print(plan)
	// Output:
	// plas=[src agg] live=2/2 thresholds=1
	// residual program by-drug (role analyst, purpose quality)
	//   generations: report v1, policy 2, catalog 1, scope 0
	//   governing PLAs (2): src, agg
	//   rules: 2 total, 2 live, 0 pruned (PL001)
	//   thresholds (baked, 1):
	//     - min 2 by "patient" pla=[agg]
	//   row filters: none
	//   columns (2):
	//     - drug: release
	//     - n: aggregate (threshold-governed)
	//   pipeline: exec -> thresholds -> mask -> fold(result)
}

// ExampleEngine_MetricsSnapshot reads the enforcement counters after a
// render; the same snapshot is served by DebugHandler on /metrics.
func ExampleEngine_MetricsSnapshot() {
	e := plabi.Open()
	e.AddSource(plabi.NewSource("hospital", "hospital", workload.PrescriptionsFixture()))
	if err := e.AddPLAs(`pla "p" { owner "hospital"; level source;
		scope "prescriptions"; allow attribute *; }`); err != nil {
		panic(err)
	}
	if err := e.DefineReport(&plabi.ReportDefinition{ID: "r",
		Query: "SELECT drug FROM prescriptions"}); err != nil {
		panic(err)
	}
	ctx := context.Background()
	c := plabi.Consumer{Name: "u", Role: "analyst"}
	for i := 0; i < 3; i++ {
		if _, err := e.Render(ctx, "r", c); err != nil {
			panic(err)
		}
	}
	s := e.MetricsSnapshot()
	fmt.Printf("renders=%d cache hits=%d misses=%d spans=%d\n",
		s.Counters["render.total"], s.Counters["cache.hits"],
		s.Counters["cache.misses"], s.Histograms["span.render"].Count)
	// Output: renders=3 cache hits=2 misses=1 spans=3
}
