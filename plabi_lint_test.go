package plabi

import (
	"bytes"
	"strings"
	"testing"
)

func TestLintFilesSample(t *testing.T) {
	fs, err := LintFiles("docs/sample.pla")
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		var b bytes.Buffer
		_ = WriteLintText(&b, fs)
		t.Errorf("docs/sample.pla has findings:\n%s", b.String())
	}
}

func TestLintFilesErrors(t *testing.T) {
	if _, err := LintFiles("docs/no-such-file.pla"); err == nil {
		t.Error("missing file should error")
	}
}

func TestLintHealthcareEngine(t *testing.T) {
	e, err := OpenHealthcare(HealthcareConfig{Seed: 1, Prescriptions: 200})
	if err != nil {
		t.Fatal(err)
	}
	fs := Lint(e)
	if max, ok := MaxLintSeverity(fs); ok && max >= LintError {
		t.Errorf("scenario lints with errors: %v", fs)
	}
	var b bytes.Buffer
	if err := WriteLintJSON(&b, fs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "PL004") {
		t.Errorf("expected the PL004 always-blocked warning in %s", b.String())
	}
	if got := len(LintAnalyzers()); got != 7 {
		t.Errorf("analyzers = %d, want 7", got)
	}
}
