// Package apiv1 is the versioned wire contract of the plabid
// policy-decision server: the JSON request/response types of every /v1
// endpoint and the typed error envelope with stable machine codes. The
// server (internal/serve), the client (package api) and the load harness
// (cmd/plabid-load) all speak exactly these types — the schema lives
// here once, not as ad-hoc structs in each consumer.
//
// Compatibility contract: within /v1, fields are only ever added, never
// renamed, retyped or removed; error codes are append-only. A breaking
// change mints /v2 beside this package.
package apiv1

// Version is the wire-format version this package describes, the first
// path segment of every tenant route (/v1/tenants/{tenant}/render).
const Version = "v1"

// Consumer identifies who is asking for a report and why — the wire form
// of the engine's consumer triple.
type Consumer struct {
	// Name is the individual or system account making the request; it is
	// recorded as the actor of every audit event the request generates.
	Name string `json:"name,omitempty"`
	// Role is the access-control role (e.g. "analyst", "auditor").
	Role string `json:"role"`
	// Purpose is the declared processing purpose (e.g. "reimbursement").
	Purpose string `json:"purpose,omitempty"`
}

// RenderRequest asks for one report rendered under full PLA enforcement.
// POST /v1/tenants/{tenant}/render
type RenderRequest struct {
	// Report is the registered report id to render.
	Report string `json:"report"`
	// Consumer is who is asking; Role is required.
	Consumer Consumer `json:"consumer"`
	// MaxRows truncates the returned rows (0 returns every row). The
	// enforcement itself always runs over the full report; truncation is
	// a transport concern and is flagged in RenderResponse.Truncated.
	MaxRows int `json:"max_rows,omitempty"`
	// OmitRows suppresses row data entirely (decisions and counters are
	// still returned) — for callers probing enforcement outcomes.
	OmitRows bool `json:"omit_rows,omitempty"`
}

// Column describes one column of a rendered table.
type Column struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// Decision is one enforcement decision, the wire form of the engine's
// decision value: what happened, under which rule, backed by which PLAs.
type Decision struct {
	// Outcome is "permit", "mask", "suppress-row", "suppress-group" or
	// "block".
	Outcome string `json:"outcome"`
	// Rule names the requirement kind that fired (e.g. "access-deny",
	// "aggregation-threshold", "join-permission").
	Rule string `json:"rule"`
	// Subject is the element decided on (column, row index, join pair).
	Subject string `json:"subject,omitempty"`
	// PLAs lists the ids of the agreements that matched.
	PLAs []string `json:"plas,omitempty"`
	// Detail is a human-readable explanation.
	Detail string `json:"detail,omitempty"`
}

// RenderResponse is a delivered report: the enforced table plus every
// non-permit decision taken while producing it.
type RenderResponse struct {
	Tenant string `json:"tenant"`
	Report string `json:"report"`
	// CorrelationID joins this response with the audit events, spans and
	// metrics the render generated; it is also echoed in the
	// X-Correlation-Id response header.
	CorrelationID string `json:"correlation_id"`
	// Columns and Rows carry the enforced table. Cell values are
	// rendered in the engine's canonical text form ("NULL" for null).
	Columns []Column   `json:"columns,omitempty"`
	Rows    [][]string `json:"rows,omitempty"`
	// TotalRows is the enforced table's full row count, regardless of
	// MaxRows truncation.
	TotalRows int `json:"total_rows"`
	// Truncated reports that Rows was cut at MaxRows.
	Truncated bool `json:"truncated,omitempty"`
	// Decisions lists every non-permit enforcement decision.
	Decisions []Decision `json:"decisions,omitempty"`
	// MaskedCells and SuppressedRows count the runtime interventions.
	MaskedCells    int `json:"masked_cells"`
	SuppressedRows int `json:"suppressed_rows"`
	// CacheHit reports that the enforcement plan came from the tenant's
	// decision cache.
	CacheHit bool `json:"cache_hit"`
}

// CheckRequest asks for a static compliance check of one report for one
// consumer, with no data flow. POST /v1/tenants/{tenant}/check
type CheckRequest struct {
	Report   string   `json:"report"`
	Consumer Consumer `json:"consumer"`
}

// CheckResponse is the static compliance verdict.
type CheckResponse struct {
	Tenant        string `json:"tenant"`
	Report        string `json:"report"`
	CorrelationID string `json:"correlation_id"`
	// Compliant is true when no static check fired; Findings carries the
	// non-compliances otherwise.
	Compliant bool       `json:"compliant"`
	Findings  []Decision `json:"findings,omitempty"`
}

// LintRequest asks for static PLA analysis.
// POST /v1/tenants/{tenant}/lint
type LintRequest struct {
	// Source optionally carries a PLA DSL document to lint standalone
	// (agreement-level analyzers only). Empty lints the tenant's live
	// deployment with the full cross-level analyzer set.
	Source string `json:"source,omitempty"`
	// MinSeverity filters the findings: "info" (default), "warning" or
	// "error".
	MinSeverity string `json:"min_severity,omitempty"`
}

// LintFinding is one static-analysis finding.
type LintFinding struct {
	// Code is the stable analyzer code ("PL001"…).
	Code string `json:"code"`
	// Severity is "info", "warning" or "error".
	Severity string `json:"severity"`
	// Level is the abstraction level the finding concerns.
	Level string `json:"level,omitempty"`
	// Pos points at the offending DSL construct ("file:line:col", empty
	// when the finding has no source position).
	Pos string `json:"pos,omitempty"`
	// Subject is the defective element.
	Subject string `json:"subject,omitempty"`
	// Message explains the defect and its runtime consequence.
	Message string `json:"message"`
	// PLAs lists the ids of the agreements involved.
	PLAs []string `json:"plas,omitempty"`
}

// LintResponse is the analyzer verdict.
type LintResponse struct {
	Tenant        string `json:"tenant"`
	CorrelationID string `json:"correlation_id"`
	// Clean is true when no finding at or above MinSeverity remains.
	Clean    bool          `json:"clean"`
	Findings []LintFinding `json:"findings,omitempty"`
}

// ReportInfo describes one registered report.
type ReportInfo struct {
	ID      string   `json:"id"`
	Title   string   `json:"title,omitempty"`
	Query   string   `json:"query"`
	Roles   []string `json:"roles,omitempty"`
	Purpose string   `json:"purpose,omitempty"`
	Version int      `json:"version,omitempty"`
	// Meta is the id of the meta-report the report is assigned to
	// (empty when unassigned).
	Meta string `json:"meta,omitempty"`
}

// ReportsResponse lists a tenant's report portfolio, sorted by id.
// GET /v1/tenants/{tenant}/reports
type ReportsResponse struct {
	Tenant        string       `json:"tenant"`
	CorrelationID string       `json:"correlation_id"`
	Reports       []ReportInfo `json:"reports"`
}

// TenantHealth is one tenant's serving state.
type TenantHealth struct {
	Name string `json:"name"`
	// Version counts the policy-bundle swaps this tenant has served
	// (1 = the boot bundle).
	Version int `json:"version"`
	// Reports is the size of the registered report portfolio.
	Reports int `json:"reports"`
}

// HealthResponse is the unauthenticated liveness document.
// GET /healthz
type HealthResponse struct {
	// Status is "ok" while the server accepts requests.
	Status  string         `json:"status"`
	Tenants []TenantHealth `json:"tenants,omitempty"`
}

// TenantReload is one tenant's outcome inside a ReloadResponse.
type TenantReload struct {
	Name string `json:"name"`
	// Swapped is true when a new engine instance replaced the old one
	// (false = unchanged bundle fingerprint, old instance kept serving).
	Swapped bool `json:"swapped"`
	// Version counts the policy-bundle swaps this tenant has served
	// (1 = the boot bundle).
	Version int `json:"version"`
	// ProgramGeneration is the engine's compiled-program generation
	// counter after the reload; a swap recompiles every residual render
	// program, so it advances with the swap.
	ProgramGeneration uint64 `json:"program_generation"`
	// Impacts lists the semantic policy-change findings (pladiff PD
	// codes) between the old and new engine for swapped tenants. An
	// error-severity impact here means the expansion was explicitly let
	// through (allow_expansion or ?force=1).
	Impacts []LintFinding `json:"impacts,omitempty"`
}

// ReloadResponse is the admin reload outcome.
// POST /admin/reload[?force=1]
type ReloadResponse struct {
	// Status is "reloaded" when the swap went through.
	Status  string         `json:"status"`
	Tenants []TenantReload `json:"tenants,omitempty"`
}
