// Command plavet runs the repo's audit-discipline vet pass (PV001,
// PV002 — see internal/analysis/plavet) over one or more directory
// trees and exits 1 when any rule fires, 2 on operational errors.
//
// Usage:
//
//	plavet [dir ...]    (default ".")
package main

import (
	"flag"
	"fmt"
	"os"

	"plabi/internal/analysis/plavet"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: plavet [dir ...]\n\nVets every package under each dir (default \".\") for audit-write\ndiscipline: PV001 unchecked audit write, PV002 dropped Checked result.\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}
	c := plavet.NewChecker()
	bad := false
	for _, root := range roots {
		findings, err := c.Tree(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "plavet:", err)
			os.Exit(2)
		}
		for _, f := range findings {
			fmt.Println(f)
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
}
