package lint

import (
	"fmt"
	"sort"
	"strings"

	"plabi/internal/enforce"
	"plabi/internal/etl"
	"plabi/internal/metareport"
	"plabi/internal/obs"
	"plabi/internal/policy"
	"plabi/internal/provenance"
	"plabi/internal/relation"
	"plabi/internal/report"
	"plabi/internal/sql"
	"plabi/internal/textutil"
)

// Pass carries everything the analyzers may inspect. Only PLAs is
// mandatory: a bare-file lint has no catalog, reports, metas or
// pipelines, and analyzers abstain from checks whose inputs are absent.
type Pass struct {
	// PLAs are the agreements under analysis.
	PLAs []*policy.PLA
	// Registry indexes the same PLAs; built from PLAs when nil.
	Registry *policy.Registry
	// Catalog is the warehouse catalog (tables, views), or nil.
	Catalog *sql.Catalog
	// Reports are the defined reports, or nil.
	Reports []*report.Definition
	// Metas are the derived meta-reports, or nil.
	Metas []*metareport.MetaReport
	// Assign maps report id -> meta-report id.
	Assign map[string]string
	// Pipelines are the ETL plans to analyze statically, or nil.
	Pipelines []*etl.Pipeline
	// Owners are the known source-owner names (integration
	// beneficiaries); empty means "unknown", not "none".
	Owners []string
	// Metrics receives lint.* counters; nil is fine.
	Metrics *obs.Metrics

	profiles map[string]*sql.Profile
	enf      *enforce.ReportEnforcer
}

// prepare normalizes the pass before a run: a registry over the PLAs,
// deterministic PLA order, and lazy caches.
func (p *Pass) prepare() {
	if p.Registry == nil {
		reg := policy.NewRegistry()
		for _, pla := range p.PLAs {
			_ = reg.Add(pla) // duplicates are rejected by LintFiles before Run
		}
		p.Registry = reg
	}
	if len(p.PLAs) == 0 && p.Registry != nil {
		p.PLAs = p.Registry.All()
	}
	sort.SliceStable(p.PLAs, func(i, j int) bool { return p.PLAs[i].ID < p.PLAs[j].ID })
	p.profiles = map[string]*sql.Profile{}
}

// group is a set of PLAs that co-govern the same data: same level, same
// scope (case-insensitive), with "*"-scoped PLAs of the level joined in.
type group struct {
	level policy.Level
	scope string
	plas  []*policy.PLA
}

// scopeGroups partitions the PLAs into composition groups, in
// deterministic (level, scope) order, members ordered by id.
func (p *Pass) scopeGroups() []group {
	type key struct {
		level policy.Level
		scope string
	}
	concrete := map[key][]*policy.PLA{}
	stars := map[policy.Level][]*policy.PLA{}
	for _, pla := range p.PLAs {
		if pla.Scope == "*" {
			stars[pla.Level] = append(stars[pla.Level], pla)
			continue
		}
		k := key{pla.Level, strings.ToLower(pla.Scope)}
		concrete[k] = append(concrete[k], pla)
	}
	var keys []key
	for k := range concrete {
		keys = append(keys, k)
	}
	for lvl, plas := range stars {
		// A level with only "*" agreements still forms one group.
		found := false
		for k := range concrete {
			if k.level == lvl {
				found = true
				break
			}
		}
		if !found {
			concrete[key{lvl, "*"}] = plas
			keys = append(keys, key{lvl, "*"})
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].level != keys[j].level {
			return keys[i].level < keys[j].level
		}
		return keys[i].scope < keys[j].scope
	})
	var out []group
	for _, k := range keys {
		members := append([]*policy.PLA(nil), concrete[k]...)
		if k.scope != "*" {
			members = append(members, stars[k.level]...)
		}
		sort.SliceStable(members, func(i, j int) bool { return members[i].ID < members[j].ID })
		out = append(out, group{level: k.level, scope: k.scope, plas: members})
	}
	return out
}

// enforcer lazily builds a report enforcer over the pass state for
// static decision checks. Requires Catalog.
func (p *Pass) enforcer() *enforce.ReportEnforcer {
	if p.enf == nil {
		p.enf = enforce.NewReportEnforcer(p.Registry, p.Catalog, provenance.NewTracer())
		scopes := map[string][]string{}
		for rid, mid := range p.Assign {
			scopes[rid] = []string{mid}
		}
		p.enf.SetExtraScopes(scopes)
	}
	return p.enf
}

// profile returns the cached SQL profile of a report (nil when the query
// does not profile against the catalog).
func (p *Pass) profile(def *report.Definition) *sql.Profile {
	if p.Catalog == nil {
		return nil
	}
	if prof, ok := p.profiles[def.ID]; ok {
		return prof
	}
	prof, err := sql.ProfileSQL(p.Catalog, def.Query)
	if err != nil {
		prof = nil
	}
	p.profiles[def.ID] = prof
	return prof
}

// reportByID resolves a report id case-insensitively.
func (p *Pass) reportByID(id string) *report.Definition {
	for _, d := range p.Reports {
		if strings.EqualFold(d.ID, id) {
			return d
		}
	}
	return nil
}

// knownRelation reports whether name is a catalog table or view.
func (p *Pass) knownRelation(name string) bool {
	if p.Catalog == nil {
		return false
	}
	if _, ok := p.Catalog.Table(name); ok {
		return true
	}
	_, ok := p.Catalog.View(name)
	return ok
}

// relationColumns returns the lowercase column set of a catalog table or
// view (views are profiled for their output names).
func (p *Pass) relationColumns(name string) (map[string]bool, bool) {
	if p.Catalog == nil {
		return nil, false
	}
	if t, ok := p.Catalog.Table(name); ok {
		cols := map[string]bool{}
		for _, c := range t.Schema.ColumnNames() {
			cols[strings.ToLower(c)] = true
		}
		return cols, true
	}
	if _, ok := p.Catalog.View(name); ok {
		if prof, err := sql.ProfileSQL(p.Catalog, "SELECT * FROM "+name); err == nil {
			cols := map[string]bool{}
			for n := range prof.OutputNames {
				cols[n] = true
			}
			return cols, true
		}
	}
	return nil, false
}

// tableComposite composes the source- and warehouse-level agreements
// governing one base table — the same selection the runtime ETL guard
// and per-table render decisions use.
func (p *Pass) tableComposite(table string) *policy.Composite {
	var plas []*policy.PLA
	plas = append(plas, p.Registry.ForScope(policy.LevelSource, table).PLAs...)
	plas = append(plas, p.Registry.ForScope(policy.LevelWarehouse, table).PLAs...)
	return policy.Compose(plas...)
}

// plaPos returns the declaration position of the first named PLA that
// has one.
func (p *Pass) plaPos(ids []string) policy.Pos {
	for _, id := range ids {
		if pla, ok := p.Registry.ByID(id); ok && pla.Pos.IsValid() {
			return pla.Pos
		}
	}
	return policy.Pos{}
}

// rolesFor returns the role universe for a report: its delivery roles
// when declared, otherwise every role mentioned anywhere.
func (p *Pass) rolesFor(def *report.Definition) []string {
	if len(def.Roles) > 0 {
		return normalized(def.Roles)
	}
	return p.allRoles()
}

// purposesFor returns the purpose universe for a report: its declared
// purpose, otherwise every purpose mentioned anywhere plus "".
func (p *Pass) purposesFor(def *report.Definition) []string {
	if def.Purpose != "" {
		return []string{strings.ToLower(def.Purpose)}
	}
	set := map[string]bool{"": true}
	for _, pla := range p.PLAs {
		for _, v := range pla.Purposes {
			set[strings.ToLower(v)] = true
		}
		for _, r := range pla.Access {
			for _, v := range r.Purposes {
				set[strings.ToLower(v)] = true
			}
		}
	}
	return sortedSet(set)
}

// allRoles collects every role mentioned in PLAs or report definitions.
func (p *Pass) allRoles() []string {
	set := map[string]bool{}
	for _, pla := range p.PLAs {
		for _, r := range pla.Access {
			for _, v := range r.Roles {
				set[strings.ToLower(v)] = true
			}
		}
	}
	for _, d := range p.Reports {
		for _, v := range d.Roles {
			set[strings.ToLower(v)] = true
		}
	}
	return sortedSet(set)
}

func normalized(in []string) []string {
	set := map[string]bool{}
	for _, v := range in {
		set[strings.ToLower(v)] = true
	}
	return sortedSet(set)
}

func sortedSet(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// nearest suggests the closest candidate name, or "" when nothing is
// similar enough to be a plausible typo.
func nearest(name string, candidates []string) string {
	best, bestScore := "", 0.0
	for _, c := range candidates {
		if s := textutil.JaroWinkler(strings.ToLower(name), strings.ToLower(c)); s > bestScore {
			best, bestScore = c, s
		}
	}
	if bestScore >= 0.84 {
		return best
	}
	return ""
}

// didYouMean renders the suggestion suffix for nearest.
func didYouMean(name string, candidates []string) string {
	if s := nearest(name, candidates); s != "" {
		return fmt.Sprintf("; did you mean %q?", s)
	}
	return ""
}

// conditionColumns returns the unqualified lowercase column names an
// intensional condition references.
func conditionColumns(e relation.Expr) []string {
	var out []string
	for _, c := range relation.ColumnsOf(e) {
		if i := strings.LastIndexByte(c, '.'); i >= 0 {
			c = c[i+1:]
		}
		out = append(out, strings.ToLower(c))
	}
	sort.Strings(out)
	return out
}
