package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"plabi"
	apiv1 "plabi/api/v1"
)

// betaMask is beta's extra policy bundle: it denies the drug attribute
// on the drug-consumption report, so beta masks a column alpha serves in
// the clear — the two test tenants run visibly different policy bundles.
// (patient-activity is blocked for every tenant by the scenario's own
// aggregate-min-3 threshold; that covers the blocked-render envelope.)
const betaMask = `pla "beta-mask" { owner "hospital"; level report;
	scope "drug-consumption"; deny attribute drug; }`

func testManifest() *Manifest {
	return &Manifest{
		AdminTokens: []string{"admin-tok"},
		Tenants: []TenantConfig{
			{Name: "alpha", Tokens: []string{"alpha-tok"}, Scenario: "healthcare",
				Seed: 1, Prescriptions: 240},
			{Name: "beta", Tokens: []string{"beta-tok"}, Scenario: "healthcare",
				Seed: 2, Prescriptions: 320, ExtraPLAs: betaMask},
		},
	}
}

func newTestServer(t *testing.T, m *Manifest, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.AuditDir == "" {
		opts.AuditDir = t.TempDir()
	}
	s, err := New(m, opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := s.Close(); err != nil {
			t.Errorf("server Close: %v", err)
		}
	})
	return s, ts
}

// call performs one API request and decodes the response body into out
// (or into an error envelope when the status is not 2xx, returned as
// *apiv1.Error).
func call(t *testing.T, method, url, token string, body, out any) (*http.Response, *apiv1.Error) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatalf("%s %s: decode: %v", method, url, err)
			}
		}
		return resp, nil
	}
	var env apiv1.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error == nil {
		t.Fatalf("%s %s: status %d with undecodable envelope (%v)", method, url, resp.StatusCode, err)
	}
	env.Error.HTTP = resp.StatusCode
	return resp, env.Error
}

func TestHealthzListsTenants(t *testing.T) {
	_, ts := newTestServer(t, testManifest(), Options{})
	var h apiv1.HealthResponse
	if _, apiErr := call(t, "GET", ts.URL+"/healthz", "", nil, &h); apiErr != nil {
		t.Fatalf("healthz: %v", apiErr)
	}
	if h.Status != "ok" || len(h.Tenants) != 2 {
		t.Fatalf("health = %+v", h)
	}
	if h.Tenants[0].Name != "alpha" || h.Tenants[1].Name != "beta" {
		t.Fatalf("tenants not sorted: %+v", h.Tenants)
	}
	for _, th := range h.Tenants {
		if th.Version != 1 || th.Reports == 0 {
			t.Errorf("tenant %s: version=%d reports=%d", th.Name, th.Version, th.Reports)
		}
	}
}

func TestAuthFailures(t *testing.T) {
	_, ts := newTestServer(t, testManifest(), Options{})
	render := func(tenant, token string) *apiv1.Error {
		_, apiErr := call(t, "POST", ts.URL+"/v1/tenants/"+tenant+"/render", token,
			apiv1.RenderRequest{Report: "drug-consumption", Consumer: apiv1.Consumer{Role: "analyst", Purpose: "quality"}}, nil)
		return apiErr
	}
	cases := []struct {
		name, tenant, token string
		want                apiv1.ErrorCode
		status              int
	}{
		{"missing token", "alpha", "", apiv1.CodeUnauthorized, 401},
		{"unknown token", "alpha", "nope", apiv1.CodeUnauthorized, 401},
		{"cross-tenant token", "alpha", "beta-tok", apiv1.CodeUnknownTenant, 404},
		{"unknown tenant", "gamma", "alpha-tok", apiv1.CodeUnknownTenant, 404},
	}
	for _, tc := range cases {
		apiErr := render(tc.tenant, tc.token)
		if apiErr == nil {
			t.Fatalf("%s: request succeeded", tc.name)
		}
		if apiErr.Code != tc.want || apiErr.HTTP != tc.status {
			t.Errorf("%s: got code=%s http=%d, want %s/%d", tc.name, apiErr.Code, apiErr.HTTP, tc.want, tc.status)
		}
		if apiErr.CorrelationID == "" {
			t.Errorf("%s: error envelope missing correlation id", tc.name)
		}
	}
}

func TestRenderSuccessAndCache(t *testing.T) {
	_, ts := newTestServer(t, testManifest(), Options{})
	req := apiv1.RenderRequest{Report: "drug-consumption",
		Consumer: apiv1.Consumer{Name: "u", Role: "analyst", Purpose: "quality"}}
	var r1 apiv1.RenderResponse
	resp, apiErr := call(t, "POST", ts.URL+"/v1/tenants/alpha/render", "alpha-tok", req, &r1)
	if apiErr != nil {
		t.Fatalf("render: %v", apiErr)
	}
	if r1.Tenant != "alpha" || r1.Report != "drug-consumption" {
		t.Fatalf("response routing fields: %+v", r1)
	}
	if !strings.HasPrefix(r1.CorrelationID, "alpha-r") {
		t.Errorf("correlation id %q not tenant-prefixed", r1.CorrelationID)
	}
	if hdr := resp.Header.Get("X-Correlation-Id"); hdr != r1.CorrelationID {
		t.Errorf("header correlation %q != body %q", hdr, r1.CorrelationID)
	}
	if len(r1.Columns) == 0 || len(r1.Rows) == 0 || r1.TotalRows != len(r1.Rows) {
		t.Fatalf("rows not delivered: cols=%d rows=%d total=%d", len(r1.Columns), len(r1.Rows), r1.TotalRows)
	}
	var r2 apiv1.RenderResponse
	if _, apiErr := call(t, "POST", ts.URL+"/v1/tenants/alpha/render", "alpha-tok", req, &r2); apiErr != nil {
		t.Fatalf("second render: %v", apiErr)
	}
	if !r2.CacheHit {
		t.Error("second identical render should hit the decision cache")
	}
}

func TestRenderTruncationAndOmitRows(t *testing.T) {
	_, ts := newTestServer(t, testManifest(), Options{})
	req := apiv1.RenderRequest{Report: "drug-consumption", MaxRows: 1,
		Consumer: apiv1.Consumer{Role: "analyst", Purpose: "quality"}}
	var r apiv1.RenderResponse
	if _, apiErr := call(t, "POST", ts.URL+"/v1/tenants/alpha/render", "alpha-tok", req, &r); apiErr != nil {
		t.Fatalf("render: %v", apiErr)
	}
	if len(r.Rows) != 1 || !r.Truncated || r.TotalRows <= 1 {
		t.Fatalf("truncation: rows=%d truncated=%v total=%d", len(r.Rows), r.Truncated, r.TotalRows)
	}
	req.MaxRows, req.OmitRows = 0, true
	var r2 apiv1.RenderResponse
	if _, apiErr := call(t, "POST", ts.URL+"/v1/tenants/alpha/render", "alpha-tok", req, &r2); apiErr != nil {
		t.Fatalf("omit-rows render: %v", apiErr)
	}
	if len(r2.Rows) != 0 || len(r2.Columns) != 0 || r2.TotalRows <= 1 {
		t.Fatalf("omit_rows: rows=%d cols=%d total=%d", len(r2.Rows), len(r2.Columns), r2.TotalRows)
	}
}

func TestRenderBlockedEnvelope(t *testing.T) {
	_, ts := newTestServer(t, testManifest(), Options{})
	// patient-activity is non-aggregated under the scenario's
	// aggregate-min-3 threshold: statically blocked.
	_, apiErr := call(t, "POST", ts.URL+"/v1/tenants/alpha/render", "alpha-tok",
		apiv1.RenderRequest{Report: "patient-activity",
			Consumer: apiv1.Consumer{Role: "analyst", Purpose: "reimbursement"}}, nil)
	if apiErr == nil {
		t.Fatal("render under the aggregation threshold succeeded")
	}
	if apiErr.Code != apiv1.CodeBlocked || apiErr.HTTP != http.StatusForbidden {
		t.Fatalf("got code=%s http=%d, want pla_blocked/403", apiErr.Code, apiErr.HTTP)
	}
	if len(apiErr.Decisions) == 0 {
		t.Fatal("blocked envelope carries no decisions")
	}
	for _, d := range apiErr.Decisions {
		if d.Outcome == "" || d.Rule == "" {
			t.Errorf("decision missing fields: %+v", d)
		}
	}
}

func TestRenderErrorMapping(t *testing.T) {
	_, ts := newTestServer(t, testManifest(), Options{})
	_, apiErr := call(t, "POST", ts.URL+"/v1/tenants/alpha/render", "alpha-tok",
		apiv1.RenderRequest{Report: "no-such-report",
			Consumer: apiv1.Consumer{Role: "analyst"}}, nil)
	if apiErr == nil || apiErr.Code != apiv1.CodeUnknownReport || apiErr.HTTP != 404 {
		t.Fatalf("unknown report: %v", apiErr)
	}

	for name, body := range map[string]string{
		"invalid json":  `{"report":`,
		"unknown field": `{"report":"r","consumer":{"role":"analyst"},"surprise":1}`,
		"missing role":  `{"report":"drug-consumption","consumer":{"name":"u"}}`,
		"negative max":  `{"report":"drug-consumption","consumer":{"role":"analyst"},"max_rows":-1}`,
	} {
		req, _ := http.NewRequest("POST", ts.URL+"/v1/tenants/alpha/render", strings.NewReader(body))
		req.Header.Set("Authorization", "Bearer alpha-tok")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var env apiv1.ErrorEnvelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != 400 || env.Error == nil || env.Error.Code != apiv1.CodeBadRequest {
			t.Errorf("%s: status=%d envelope=%+v", name, resp.StatusCode, env.Error)
		}
	}
}

func TestCheckCompliance(t *testing.T) {
	_, ts := newTestServer(t, testManifest(), Options{})
	var ok apiv1.CheckResponse
	if _, apiErr := call(t, "POST", ts.URL+"/v1/tenants/alpha/check", "alpha-tok",
		apiv1.CheckRequest{Report: "drug-consumption",
			Consumer: apiv1.Consumer{Role: "analyst", Purpose: "quality"}}, &ok); apiErr != nil {
		t.Fatalf("check: %v", apiErr)
	}
	if !ok.Compliant || len(ok.Findings) != 0 {
		t.Fatalf("permitted consumer flagged: %+v", ok)
	}
	// disease-by-year restricts the disease attribute to auditors: an
	// analyst gets masking decisions, hence non-compliant.
	var bad apiv1.CheckResponse
	if _, apiErr := call(t, "POST", ts.URL+"/v1/tenants/alpha/check", "alpha-tok",
		apiv1.CheckRequest{Report: "disease-by-year",
			Consumer: apiv1.Consumer{Role: "analyst", Purpose: "quality"}}, &bad); apiErr != nil {
		t.Fatalf("check: %v", apiErr)
	}
	if bad.Compliant || len(bad.Findings) == 0 {
		t.Fatalf("analyst on auditor-only report passed compliance: %+v", bad)
	}
	for _, d := range bad.Findings {
		if d.Outcome == "" || d.Rule == "" {
			t.Errorf("finding missing wire fields: %+v", d)
		}
	}
}

func TestLintRoutes(t *testing.T) {
	_, ts := newTestServer(t, testManifest(), Options{})
	// Deployment lint: empty source analyzes the tenant's live engine.
	var dep apiv1.LintResponse
	if _, apiErr := call(t, "POST", ts.URL+"/v1/tenants/alpha/lint", "alpha-tok",
		apiv1.LintRequest{}, &dep); apiErr != nil {
		t.Fatalf("deployment lint: %v", apiErr)
	}
	if dep.Tenant != "alpha" || dep.CorrelationID == "" {
		t.Fatalf("deployment lint response: %+v", dep)
	}
	// Inline document with a dead rule (PL001: the allow is always
	// shadowed by the deny under most-restrictive-wins).
	var inline apiv1.LintResponse
	if _, apiErr := call(t, "POST", ts.URL+"/v1/tenants/alpha/lint", "alpha-tok",
		apiv1.LintRequest{Source: `pla "doc" { owner "o"; level source; scope "s";
			deny attribute patient;
			allow attribute patient to roles analyst; }`}, &inline); apiErr != nil {
		t.Fatalf("inline lint: %v", apiErr)
	}
	if inline.Clean || len(inline.Findings) == 0 {
		t.Fatalf("dead-rule document linted clean: %+v", inline)
	}
	for _, f := range inline.Findings {
		if f.Code == "" || f.Severity == "" || f.Message == "" {
			t.Errorf("finding missing wire fields: %+v", f)
		}
	}
	// Parse failure -> 400.
	_, apiErr := call(t, "POST", ts.URL+"/v1/tenants/alpha/lint", "alpha-tok",
		apiv1.LintRequest{Source: `pla "broken" {`}, nil)
	if apiErr == nil || apiErr.Code != apiv1.CodeBadRequest {
		t.Fatalf("broken source: %v", apiErr)
	}
	// Bad severity filter -> 400.
	_, apiErr = call(t, "POST", ts.URL+"/v1/tenants/alpha/lint", "alpha-tok",
		apiv1.LintRequest{MinSeverity: "fatal"}, nil)
	if apiErr == nil || apiErr.Code != apiv1.CodeBadRequest {
		t.Fatalf("bad severity: %v", apiErr)
	}
}

func TestReportsListing(t *testing.T) {
	_, ts := newTestServer(t, testManifest(), Options{})
	var r apiv1.ReportsResponse
	if _, apiErr := call(t, "GET", ts.URL+"/v1/tenants/alpha/reports", "alpha-tok", nil, &r); apiErr != nil {
		t.Fatalf("reports: %v", apiErr)
	}
	if len(r.Reports) == 0 {
		t.Fatal("no reports listed")
	}
	var ids []string
	for _, info := range r.Reports {
		ids = append(ids, info.ID)
		if info.Query == "" || len(info.Roles) == 0 {
			t.Errorf("report %s missing definition fields: %+v", info.ID, info)
		}
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("report ids not sorted: %v", ids)
		}
	}
	found := false
	for _, id := range ids {
		if id == "drug-consumption" {
			found = true
		}
	}
	if !found {
		t.Fatalf("scenario report missing from %v", ids)
	}
}

func TestRateLimit429(t *testing.T) {
	m := testManifest()
	m.Tenants[0].RateRPS, m.Tenants[0].RateBurst = 0.5, 1
	_, ts := newTestServer(t, m, Options{})
	if _, apiErr := call(t, "GET", ts.URL+"/v1/tenants/alpha/reports", "alpha-tok", nil, nil); apiErr != nil {
		t.Fatalf("first request rejected: %v", apiErr)
	}
	resp, apiErr := call(t, "GET", ts.URL+"/v1/tenants/alpha/reports", "alpha-tok", nil, nil)
	if apiErr == nil || apiErr.Code != apiv1.CodeRateLimited || apiErr.HTTP != 429 {
		t.Fatalf("second request not rate limited: %v", apiErr)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After = %q", ra)
	}
	// The unlimited beta tenant is unaffected.
	if _, apiErr := call(t, "GET", ts.URL+"/v1/tenants/beta/reports", "beta-tok", nil, nil); apiErr != nil {
		t.Fatalf("beta throttled by alpha's bucket: %v", apiErr)
	}
}

func TestCorrelationIDHeaderHonored(t *testing.T) {
	_, ts := newTestServer(t, testManifest(), Options{})
	req, _ := http.NewRequest("GET", ts.URL+"/v1/tenants/alpha/reports", nil)
	req.Header.Set("Authorization", "Bearer alpha-tok")
	req.Header.Set("X-Correlation-Id", "caller-supplied-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var r apiv1.ReportsResponse
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		t.Fatal(err)
	}
	if r.CorrelationID != "caller-supplied-7" || resp.Header.Get("X-Correlation-Id") != "caller-supplied-7" {
		t.Fatalf("correlation id not honored: body=%q header=%q", r.CorrelationID, resp.Header.Get("X-Correlation-Id"))
	}
}

func TestMetricsMergesTenantRegistries(t *testing.T) {
	_, ts := newTestServer(t, testManifest(), Options{})
	if _, apiErr := call(t, "POST", ts.URL+"/v1/tenants/alpha/render", "alpha-tok",
		apiv1.RenderRequest{Report: "drug-consumption",
			Consumer: apiv1.Consumer{Role: "analyst", Purpose: "quality"}}, nil); apiErr != nil {
		t.Fatalf("render: %v", apiErr)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["serve.requests"] == 0 {
		t.Error("serve.requests not counted")
	}
	foundTenant := false
	for k := range snap.Counters {
		if strings.HasPrefix(k, "tenant.alpha.") {
			foundTenant = true
			break
		}
	}
	if !foundTenant {
		t.Errorf("no tenant.alpha.* metrics in scrape: %v", keys(snap.Counters))
	}
}

func keys(m map[string]uint64) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestAdminReloadSwapsChangedBundle(t *testing.T) {
	dir := t.TempDir()
	m := testManifest()
	path := filepath.Join(dir, "manifest.json")
	writeManifest(t, path, m)
	_, ts := newTestServer(t, m, Options{AuditDir: dir, ManifestPath: path})

	// Unauthorized reload attempts bounce.
	if _, apiErr := call(t, "POST", ts.URL+"/admin/reload", "", nil, nil); apiErr == nil || apiErr.HTTP != 401 {
		t.Fatalf("anonymous reload: %v", apiErr)
	}
	if _, apiErr := call(t, "POST", ts.URL+"/admin/reload", "alpha-tok", nil, nil); apiErr == nil || apiErr.HTTP != 401 {
		t.Fatalf("tenant-token reload: %v", apiErr)
	}

	// Alpha's policy bundle gains the masking PLA; beta is unchanged.
	m.Tenants[0].ExtraPLAs = betaMask
	writeManifest(t, path, m)
	if _, apiErr := call(t, "POST", ts.URL+"/admin/reload", "admin-tok", nil, nil); apiErr != nil {
		t.Fatalf("reload: %v", apiErr)
	}

	var h apiv1.HealthResponse
	if _, apiErr := call(t, "GET", ts.URL+"/healthz", "", nil, &h); apiErr != nil {
		t.Fatalf("healthz: %v", apiErr)
	}
	versions := map[string]int{}
	for _, th := range h.Tenants {
		versions[th.Name] = th.Version
	}
	if versions["alpha"] != 2 || versions["beta"] != 1 {
		t.Fatalf("versions after reload = %v, want alpha=2 beta=1", versions)
	}

	// The new bundle is live: alpha now masks drug on drug-consumption.
	var r apiv1.RenderResponse
	if _, apiErr := call(t, "POST", ts.URL+"/v1/tenants/alpha/render", "alpha-tok",
		apiv1.RenderRequest{Report: "drug-consumption",
			Consumer: apiv1.Consumer{Role: "analyst", Purpose: "quality"}}, &r); apiErr != nil {
		t.Fatalf("post-reload render: %v", apiErr)
	}
	if r.MaskedCells == 0 {
		t.Fatalf("post-reload render not governed by the new bundle: %+v", r)
	}
}

func TestReloadRecompilesPrograms(t *testing.T) {
	dir := t.TempDir()
	m := testManifest()
	path := filepath.Join(dir, "manifest.json")
	writeManifest(t, path, m)
	s, ts := newTestServer(t, m, Options{AuditDir: dir, ManifestPath: path})

	// Tenant construction precompiles the report portfolio: residual
	// programs exist before the first request.
	before := s.engineFor("alpha")
	if g := before.ProgramGeneration(); g == 0 {
		t.Fatalf("fresh tenant has no compiled programs (generation %d)", g)
	}

	// A bundle change swaps in a new engine; the swap itself must
	// recompile — the program generation is non-zero on the new engine
	// BEFORE any post-reload render could lazily build a plan.
	m.Tenants[0].ExtraPLAs = betaMask
	writeManifest(t, path, m)
	var rr apiv1.ReloadResponse
	if _, apiErr := call(t, "POST", ts.URL+"/admin/reload", "admin-tok", nil, &rr); apiErr != nil {
		t.Fatalf("reload: %v", apiErr)
	}
	after := s.engineFor("alpha")
	if after == before {
		t.Fatal("reload did not swap the alpha engine")
	}
	if g := after.ProgramGeneration(); g == 0 {
		t.Fatalf("reloaded tenant not recompiled (generation %d)", g)
	}

	// The reload response reports the swap and the generations, so the
	// operator sees the recompile without probing the engine.
	if rr.Status != "reloaded" {
		t.Fatalf("reload status = %q", rr.Status)
	}
	got := map[string]apiv1.TenantReload{}
	for _, tr := range rr.Tenants {
		got[tr.Name] = tr
	}
	alpha, beta := got["alpha"], got["beta"]
	if !alpha.Swapped || alpha.Version != 2 {
		t.Fatalf("alpha reload entry = %+v, want swapped v2", alpha)
	}
	if alpha.ProgramGeneration == 0 || alpha.ProgramGeneration != after.ProgramGeneration() {
		t.Fatalf("alpha reload reports generation %d, engine at %d",
			alpha.ProgramGeneration, after.ProgramGeneration())
	}
	if beta.Swapped || beta.Version != 1 {
		t.Fatalf("beta reload entry = %+v, want unswapped v1", beta)
	}
	// The restriction shows up as non-error impacts (new deny, masked
	// column), so the gate let it through.
	if len(alpha.Impacts) == 0 {
		t.Fatal("alpha reload entry carries no impact findings for a bundle change")
	}
	for _, im := range alpha.Impacts {
		if im.Severity == "error" {
			t.Fatalf("restriction classified as expansion: %+v", im)
		}
	}

	// The recompiled program reflects the new bundle: drug is masked in
	// the residual plan, not just at render time.
	plan, err := after.ExplainCompiled("drug-consumption",
		plabi.Consumer{Role: "analyst", Purpose: "quality"})
	if err != nil {
		t.Fatalf("ExplainCompiled: %v", err)
	}
	if !strings.Contains(plan, "mask") {
		t.Fatalf("post-reload residual plan does not mask:\n%s", plan)
	}
}

// TestReloadGateRefusesExpansion is the end-to-end proof of the reload
// gate: alpha boots WITH the masking bundle, the staged manifest drops
// it — a privilege expansion (the drug column goes from masked to
// released). The reload is refused with the impact list in the error
// envelope; the same reload succeeds with ?force=1; and a manifest that
// sets allow_expansion passes without forcing.
func TestReloadGateRefusesExpansion(t *testing.T) {
	dir := t.TempDir()
	m := testManifest()
	m.Tenants[0].ExtraPLAs = betaMask // alpha starts masked
	path := filepath.Join(dir, "manifest.json")
	writeManifest(t, path, m)
	s, ts := newTestServer(t, m, Options{AuditDir: dir, ManifestPath: path})
	before := s.engineFor("alpha")

	// Stage the expansion: alpha's mask is dropped.
	m.Tenants[0].ExtraPLAs = ""
	writeManifest(t, path, m)

	_, apiErr := call(t, "POST", ts.URL+"/admin/reload", "admin-tok", nil, nil)
	if apiErr == nil {
		t.Fatal("expansion reload was not refused")
	}
	if apiErr.Code != apiv1.CodeReloadRejected || apiErr.HTTP != 409 {
		t.Fatalf("refusal = code %q http %d, want reload_rejected 409", apiErr.Code, apiErr.HTTP)
	}
	if len(apiErr.Impacts) == 0 {
		t.Fatal("refusal envelope carries no impact findings")
	}
	codes := map[string]bool{}
	for _, im := range apiErr.Impacts {
		if im.Severity != "error" {
			t.Fatalf("refusal lists non-error impact: %+v", im)
		}
		codes[im.Code] = true
	}
	if !codes["PD001"] {
		t.Fatalf("refusal does not name the PD001 expansion: %v", codes)
	}

	// Nothing swapped: alpha still serves the masked bundle.
	if s.engineFor("alpha") != before {
		t.Fatal("refused reload swapped the engine anyway")
	}
	var r apiv1.RenderResponse
	if _, apiErr := call(t, "POST", ts.URL+"/v1/tenants/alpha/render", "alpha-tok",
		apiv1.RenderRequest{Report: "drug-consumption",
			Consumer: apiv1.Consumer{Role: "analyst", Purpose: "quality"}}, &r); apiErr != nil {
		t.Fatalf("render after refusal: %v", apiErr)
	}
	if r.MaskedCells == 0 {
		t.Fatal("old bundle no longer governs after refused reload")
	}

	// The same reload goes through with ?force=1, reporting what it
	// shipped.
	var rr apiv1.ReloadResponse
	if _, apiErr := call(t, "POST", ts.URL+"/admin/reload?force=1", "admin-tok", nil, &rr); apiErr != nil {
		t.Fatalf("forced reload: %v", apiErr)
	}
	var forced apiv1.TenantReload
	for _, tr := range rr.Tenants {
		if tr.Name == "alpha" {
			forced = tr
		}
	}
	if !forced.Swapped || forced.Version != 2 {
		t.Fatalf("forced reload entry = %+v, want swapped v2", forced)
	}
	hasError := false
	for _, im := range forced.Impacts {
		if im.Severity == "error" {
			hasError = true
		}
	}
	if !hasError {
		t.Fatal("forced reload response does not list the expansion it shipped")
	}
	if r, _ := call(t, "POST", ts.URL+"/v1/tenants/alpha/render", "alpha-tok",
		apiv1.RenderRequest{Report: "drug-consumption",
			Consumer: apiv1.Consumer{Role: "analyst", Purpose: "quality"}}, &r); r == nil {
		t.Fatal("render after forced reload failed")
	}

	// allow_expansion in the manifest is the declarative override: the
	// reverse trip (mask back on, then off again with the flag set)
	// succeeds without forcing.
	m.Tenants[0].ExtraPLAs = betaMask
	writeManifest(t, path, m)
	if _, apiErr := call(t, "POST", ts.URL+"/admin/reload", "admin-tok", nil, nil); apiErr != nil {
		t.Fatalf("restriction reload refused: %v", apiErr)
	}
	m.Tenants[0].ExtraPLAs = ""
	m.Tenants[0].AllowExpansion = true
	writeManifest(t, path, m)
	if _, apiErr := call(t, "POST", ts.URL+"/admin/reload", "admin-tok", nil, nil); apiErr != nil {
		t.Fatalf("allow_expansion reload refused: %v", apiErr)
	}
}

func TestReloadRemovesTenantAndRevokesTokens(t *testing.T) {
	s, ts := newTestServer(t, testManifest(), Options{})
	m2 := testManifest()
	m2.Tenants = m2.Tenants[:1] // drop beta
	if err := s.Reload(m2); err != nil {
		t.Fatalf("Reload: %v", err)
	}
	// Beta's token no longer authenticates anywhere.
	_, apiErr := call(t, "GET", ts.URL+"/v1/tenants/beta/reports", "beta-tok", nil, nil)
	if apiErr == nil || apiErr.Code != apiv1.CodeUnauthorized {
		t.Fatalf("revoked token: %v", apiErr)
	}
	// Alpha is untouched.
	if _, apiErr := call(t, "GET", ts.URL+"/v1/tenants/alpha/reports", "alpha-tok", nil, nil); apiErr != nil {
		t.Fatalf("alpha after reload: %v", apiErr)
	}
}

func TestReloadFailureKeepsOldState(t *testing.T) {
	s, ts := newTestServer(t, testManifest(), Options{})
	bad := testManifest()
	bad.Tenants[1].ExtraPLAs = `pla "broken" {` // parse failure at build time
	if err := s.Reload(bad); err == nil {
		t.Fatal("reload with unparseable bundle succeeded")
	}
	// Both tenants still serve on their original bundles.
	var h apiv1.HealthResponse
	if _, apiErr := call(t, "GET", ts.URL+"/healthz", "", nil, &h); apiErr != nil || len(h.Tenants) != 2 {
		t.Fatalf("health after failed reload: %+v (%v)", h, apiErr)
	}
	for _, th := range h.Tenants {
		if th.Version != 1 {
			t.Errorf("tenant %s swapped to v%d after failed reload", th.Name, th.Version)
		}
	}
}

// TestConcurrentTenantIsolation is the acceptance proof: two tenants with
// disjoint policy bundles serve concurrent renders (run under -race), and
// afterwards neither tenant's audit trail or decision cache shows any
// trace of the other.
func TestConcurrentTenantIsolation(t *testing.T) {
	auditDir := t.TempDir()
	s, ts := newTestServer(t, testManifest(), Options{AuditDir: auditDir})

	// Alpha renders two distinct reports, beta one: asymmetric workloads
	// so the per-tenant decision caches end up with different footprints.
	// The same drug-consumption render must come back clear-text on alpha
	// and with the drug column masked on beta, concurrently.
	type job struct{ tenant, token, report string }
	jobs := []job{
		{"alpha", "alpha-tok", "drug-consumption"},
		{"alpha", "alpha-tok", "age-profile"},
		{"beta", "beta-tok", "drug-consumption"},
	}
	const perJob = 8
	var wg sync.WaitGroup
	errs := make(chan string, len(jobs)*perJob)
	for _, j := range jobs {
		for k := 0; k < perJob; k++ {
			wg.Add(1)
			go func(j job) {
				defer wg.Done()
				body, _ := json.Marshal(apiv1.RenderRequest{Report: j.report,
					Consumer: apiv1.Consumer{Role: "analyst", Purpose: "quality"}})
				req, _ := http.NewRequest("POST",
					ts.URL+"/v1/tenants/"+j.tenant+"/render", bytes.NewReader(body))
				req.Header.Set("Authorization", "Bearer "+j.token)
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					errs <- err.Error()
					return
				}
				defer resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("%s %s: status %d", j.tenant, j.report, resp.StatusCode)
					return
				}
				var r apiv1.RenderResponse
				if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
					errs <- err.Error()
					return
				}
				if j.report == "drug-consumption" {
					masked := j.tenant == "beta" // beta's extra PLA denies drug
					if masked && r.MaskedCells == 0 {
						errs <- "beta drug-consumption served unmasked"
					}
					if !masked && r.MaskedCells != 0 {
						errs <- "alpha drug-consumption masked by beta's bundle"
					}
				}
				if !strings.HasPrefix(r.CorrelationID, j.tenant+"-r") {
					errs <- fmt.Sprintf("%s render got foreign correlation id %q", j.tenant, r.CorrelationID)
				}
			}(j)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	// Per-tenant audit files: every event correlation id carries its own
	// tenant's prefix and never the other's.
	for _, tc := range []struct{ name, other string }{{"alpha", "beta"}, {"beta", "alpha"}} {
		data, err := os.ReadFile(filepath.Join(auditDir, tc.name+".audit.jsonl"))
		if err != nil {
			t.Fatalf("read %s audit: %v", tc.name, err)
		}
		if len(bytes.TrimSpace(data)) == 0 {
			t.Fatalf("%s audit trail empty", tc.name)
		}
		if !bytes.Contains(data, []byte(tc.name+"-r")) {
			t.Errorf("%s audit trail has no %s-prefixed correlation ids", tc.name, tc.name)
		}
		if bytes.Contains(data, []byte(tc.other+"-r")) {
			t.Errorf("%s audit trail leaked %s correlation ids", tc.name, tc.other)
		}
	}

	// Decision caches are per-tenant: both saw traffic, and alpha's
	// workload hits two reports per round against beta's one — a shared
	// cache could not produce diverging hit counts from this workload
	// (entry counts match by design: every tenant precompiles the same
	// report portfolio at build time).
	as, bs := s.engineFor("alpha").CacheStats(), s.engineFor("beta").CacheStats()
	if as.Hits+as.Misses == 0 || bs.Hits+bs.Misses == 0 {
		t.Fatalf("cache untouched: alpha=%+v beta=%+v", as, bs)
	}
	if as.Hits <= bs.Hits {
		t.Errorf("cache footprints not isolated: alpha=%+v beta=%+v", as, bs)
	}
}

func writeManifest(t *testing.T, path string, m *Manifest) {
	t.Helper()
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}
