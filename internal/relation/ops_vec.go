package relation

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// This file holds the vectorized implementations behind the public
// operators (see ops.go for the dispatch and the row-at-a-time reference
// bodies). Every function here must be observationally identical to its
// row-at-a-time counterpart: same rows in the same order, same lineage
// sets, same column origins, same errors. The equivalence property tests
// in vec_equiv_test.go enforce this on randomized inputs.

// selectVec is the vectorized Select: kernel filtering over column
// vectors when the predicate shape supports it, compiled (index-bound)
// row evaluation otherwise.
func selectVec(t *Table, pred Expr) (*Table, error) {
	b := NewBatch(t)
	if sel, ok := b.Filter(pred); ok {
		return b.ToTable(t.Name+"_sel", sel), nil
	}
	out := t.derived(t.Name + "_sel")
	p := compilePred(pred, t.Schema)
	for i, r := range t.Rows {
		ok, err := p.selected(r)
		if err != nil {
			return nil, err
		}
		if ok {
			out.Rows = append(out.Rows, r)
			out.Lineage = append(out.Lineage, t.RowLineage(i))
		}
	}
	return out, nil
}

// projectVec is the vectorized Project: expressions are bound to column
// indices once and output rows are carved out of one flat arena instead
// of being allocated per row.
func projectVec(t *Table, cols ...ProjCol) (*Table, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("relation: empty projection")
	}
	out := &Table{Name: t.Name + "_proj"}
	schemaCols := make([]Column, len(cols))
	out.ColOrigin = make([]ColRefSet, len(cols))
	for i, p := range cols {
		schemaCols[i] = Column{Name: p.outName(), Type: InferType(p.Expr, t.Schema)}
		var origin ColRefSet
		for _, ref := range ColumnsOf(p.Expr) {
			ci := t.Schema.Index(ref)
			if ci < 0 {
				return nil, fmt.Errorf("relation: projection references unknown column %q", ref)
			}
			origin = append(origin, t.ColumnOrigin(ci)...)
		}
		out.ColOrigin[i] = origin.normalize()
	}
	out.Schema = &Schema{Columns: schemaCols}

	k := len(cols)
	exprs := make([]compiledExpr, k)
	for j, p := range cols {
		exprs[j] = compileExpr(p.Expr, t.Schema)
	}
	flat := make([]Value, len(t.Rows)*k)
	out.Rows = make([]Row, 0, len(t.Rows))
	out.Lineage = make([]LineageSet, 0, len(t.Rows))
	for i, r := range t.Rows {
		nr := flat[i*k : i*k+k : i*k+k]
		for j := range exprs {
			v, err := exprs[j].eval(r)
			if err != nil {
				return nil, err
			}
			nr[j] = v
			if out.Schema.Columns[j].Type == TNull && !v.IsNull() {
				out.Schema.Columns[j].Type = v.Kind
			}
		}
		out.Rows = append(out.Rows, Row(nr))
		out.Lineage = append(out.Lineage, t.RowLineage(i))
	}
	return out, nil
}

// extendVec is the vectorized Extend: one bound expression, arena rows.
func extendVec(t *Table, name string, e Expr) (*Table, error) {
	out := t.derived(t.Name + "_ext")
	out.Schema.Columns = append(out.Schema.Columns, Column{Name: name, Type: InferType(e, t.Schema)})
	var origin ColRefSet
	for _, ref := range ColumnsOf(e) {
		ci := t.Schema.Index(ref)
		if ci < 0 {
			return nil, fmt.Errorf("relation: extend references unknown column %q", ref)
		}
		origin = append(origin, t.ColumnOrigin(ci)...)
	}
	out.ColOrigin = append(out.ColOrigin, origin.normalize())

	ce := compileExpr(e, t.Schema)
	w := t.Schema.Len() + 1
	flat := make([]Value, len(t.Rows)*w)
	out.Rows = make([]Row, 0, len(t.Rows))
	out.Lineage = make([]LineageSet, 0, len(t.Rows))
	for i, r := range t.Rows {
		v, err := ce.eval(r)
		if err != nil {
			return nil, err
		}
		nr := flat[i*w : i*w+w : i*w+w]
		copy(nr, r)
		nr[w-1] = v
		out.Rows = append(out.Rows, Row(nr))
		out.Lineage = append(out.Lineage, t.RowLineage(i))
	}
	return out, nil
}

// joinMapKey canonicalizes a join-key value for the verified hash join:
// key equality must be implied by Value.Compare equality (over-merging is
// fine — candidates are re-verified with Compare — but under-merging
// would drop matches the nested-loop reference produces). Numerics
// therefore collapse onto their float64 image beyond 2^53-adjacent
// territory, exactly like Compare's coercion.
func joinMapKey(v Value) ValKey {
	switch v.Kind {
	case TInt:
		if v.I > -1000000000000000 && v.I < 1000000000000000 {
			return ValKey{kind: vkInt, i: v.I}
		}
		return ValKey{kind: vkFloat, f: float64(v.I)}
	case TFloat:
		if math.IsNaN(v.F) {
			return ValKey{kind: vkNaN}
		}
		if v.F == math.Trunc(v.F) && math.Abs(v.F) < 1e15 {
			return ValKey{kind: vkInt, i: int64(v.F)}
		}
		return ValKey{kind: vkFloat, f: v.F}
	default:
		return MapKey(v)
	}
}

// joinEmitter materializes join output rows and lineage out of shared
// arenas, eliminating the per-row allocations of the reference join.
// Arenas grow in fixed-size chunks rather than by append-doubling: output
// size is unknown upfront, and doubling a multi-megabyte []Value arena
// re-copies every element through write barriers (Values carry pointers)
// and re-zeroes the new block — measurably slower than the per-row
// reference at 100k rows. A fresh chunk costs one allocation and leaves
// all previously emitted rows untouched.
type joinEmitter struct {
	out       *Table
	l, r      *Table
	lw, rw    int
	flatChunk int // value-arena chunk size, scaled to the expected output
	linChunk  int
	flat      []Value
	lin       []RowRef
	lBase     []RowRef // base-row refs arena when l is a lineage origin
	rBase     []RowRef
}

// Arena chunk-size ceilings (elements). Large enough to amortize
// allocation, small enough that a mostly-empty final chunk is cheap. The
// emitter starts from the foreign-key estimate (about one output row per
// probe row) so small joins never allocate a megabyte chunk.
const (
	maxFlatChunk = 1 << 15
	maxLinChunk  = 1 << 14
)

// rowSlot returns a zero-length slice with capacity n carved from the
// value arena, starting a new chunk when the current one is full.
func (e *joinEmitter) rowSlot(n int) []Value {
	if len(e.flat)+n > cap(e.flat) {
		c := e.flatChunk
		if n > c {
			c = n
		}
		e.flat = make([]Value, 0, c)
	}
	start := len(e.flat)
	e.flat = e.flat[:start+n]
	return e.flat[start : start : start+n]
}

// ensureLin guarantees the lineage arena can take n more refs without
// reallocating (which would detach previously returned slices' backing
// from e.lin growth, and re-copy on doubling).
func (e *joinEmitter) ensureLin(n int) {
	if len(e.lin)+n > cap(e.lin) {
		c := e.linChunk
		if n > c {
			c = n
		}
		e.lin = make([]RowRef, 0, c)
	}
}

func newJoinEmitter(out *Table, l, r *Table) *joinEmitter {
	e := &joinEmitter{out: out, l: l, r: r, lw: l.Schema.Len(), rw: r.Schema.Len()}
	e.flatChunk = len(l.Rows) * (e.lw + e.rw)
	if e.flatChunk > maxFlatChunk {
		e.flatChunk = maxFlatChunk
	} else if e.flatChunk < 64 {
		e.flatChunk = 64
	}
	e.linChunk = len(l.Rows) * 2
	if e.linChunk > maxLinChunk {
		e.linChunk = maxLinChunk
	} else if e.linChunk < 64 {
		e.linChunk = 64
	}
	if out.Rows == nil {
		// Foreign-key-shaped joins emit about one row per probe row; header
		// doubling from zero would re-copy the slice headers several times.
		out.Rows = make([]Row, 0, len(l.Rows))
		out.Lineage = make([]LineageSet, 0, len(l.Rows))
	}
	if l.Base || l.Lineage == nil {
		e.lBase = make([]RowRef, len(l.Rows))
		for i := range e.lBase {
			e.lBase[i] = RowRef{Table: l.Name, Row: i}
		}
	}
	if r.Base || r.Lineage == nil {
		e.rBase = make([]RowRef, len(r.Rows))
		for j := range e.rBase {
			e.rBase[j] = RowRef{Table: r.Name, Row: j}
		}
	}
	return e
}

func (e *joinEmitter) lLin(i int) LineageSet {
	if e.lBase != nil {
		return LineageSet(e.lBase[i : i+1 : i+1])
	}
	return e.l.Lineage[i]
}

func (e *joinEmitter) rLin(j int) LineageSet {
	if e.rBase != nil {
		return LineageSet(e.rBase[j : j+1 : j+1])
	}
	return e.r.Lineage[j]
}

// mergeLin merges two sorted lineage sets into the shared arena.
func (e *joinEmitter) mergeLin(a, b LineageSet) LineageSet {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	e.ensureLin(len(a) + len(b))
	start := len(e.lin)
	x, y := 0, 0
	for x < len(a) && y < len(b) {
		switch cmpRef(a[x], b[y]) {
		case -1:
			e.lin = append(e.lin, a[x])
			x++
		case 1:
			e.lin = append(e.lin, b[y])
			y++
		default:
			e.lin = append(e.lin, a[x])
			x++
			y++
		}
	}
	e.lin = append(e.lin, a[x:]...)
	e.lin = append(e.lin, b[y:]...)
	return LineageSet(e.lin[start:len(e.lin):len(e.lin)])
}

// emit appends the joined row (l[i] ++ r[j]) and its merged lineage.
func (e *joinEmitter) emit(i, j int) {
	nr := e.rowSlot(e.lw + e.rw)
	nr = append(nr, e.l.Rows[i]...)
	nr = append(nr, e.r.Rows[j]...)
	e.out.Rows = append(e.out.Rows, Row(nr))
	e.out.Lineage = append(e.out.Lineage, e.mergeLin(e.lLin(i), e.rLin(j)))
}

// emitRow appends a prebuilt joined row (already width lw+rw), copying it
// into the arena.
func (e *joinEmitter) emitRow(i, j int, row Row) {
	nr := e.rowSlot(len(row))
	nr = append(nr, row...)
	e.out.Rows = append(e.out.Rows, Row(nr))
	e.out.Lineage = append(e.out.Lineage, e.mergeLin(e.lLin(i), e.rLin(j)))
}

// emitLeftNull appends l[i] null-extended on the right (LEFT JOIN miss).
func (e *joinEmitter) emitLeftNull(i int) {
	nr := e.rowSlot(e.lw + e.rw)
	nr = append(nr, e.l.Rows[i]...)
	nr = nr[:e.lw+e.rw] // the null extension: fresh arena cells are zero Values
	e.out.Rows = append(e.out.Rows, Row(nr))
	e.out.Lineage = append(e.out.Lineage, e.lLin(i))
}

// joinVec is the vectorized Join. Single-column equi-joins hash on
// interned keys (the reference fast path's Key()-string semantics, minus
// the string allocations); conjunctions containing equality pairs hash on
// all pairs with Compare verification plus a compiled residual; anything
// else falls back to the nested-loop reference.
func joinVec(l, r *Table, pred Expr, kind JoinKind) (*Table, error) {
	out := newJoinShell(l, r)

	// Single equi pair: exactly the reference fast path, interned.
	if lc, rc, ok := equiJoinCols(pred, l.Schema, r.Schema); ok {
		idx := make(map[ValKey][]int32, len(r.Rows))
		for j, rr := range r.Rows {
			if rr[rc].IsNull() {
				continue
			}
			k := MapKey(rr[rc])
			idx[k] = append(idx[k], int32(j))
		}
		em := newJoinEmitter(out, l, r)
		for i, lr := range l.Rows {
			matched := false
			if !lr[lc].IsNull() {
				for _, j := range idx[MapKey(lr[lc])] {
					em.emit(i, int(j))
					matched = true
				}
			}
			if !matched && kind == LeftJoin {
				em.emitLeftNull(i)
			}
		}
		return out, nil
	}

	// Conjunction with equality pairs: multi-key hash join with
	// verification, as long as the residual can never error (otherwise
	// the hash plan could skip rows the reference would have errored on).
	if pairs, residual := extractJoinPairs(pred, l.Schema, r.Schema); len(pairs) > 0 {
		res := compilePred(residual, out.Schema)
		if res.safe && !nanInKeys(l, r, pairs) {
			hashJoinMulti(out, l, r, pairs, res, kind)
			return out, nil
		}
	}

	return nestedLoopInto(out, l, r, pred, kind)
}

// nanInKeys reports whether any join-key cell is NaN. Compare treats NaN
// as equal to every number, an equivalence no hash key can express, so
// such joins (pathological in practice) take the nested-loop reference.
func nanInKeys(l, r *Table, pairs []joinPair) bool {
	isNaN := func(v Value) bool { return v.Kind == TFloat && math.IsNaN(v.F) }
	for _, pr := range pairs {
		for _, row := range l.Rows {
			if isNaN(row[pr.lc]) {
				return true
			}
		}
		for _, row := range r.Rows {
			if isNaN(row[pr.rc]) {
				return true
			}
		}
	}
	return false
}

// newJoinShell builds the output schema and column origins of l ⋈ r.
func newJoinShell(l, r *Table) *Table {
	out := &Table{Name: l.Name + "_join_" + r.Name}
	cols := make([]Column, 0, l.Schema.Len()+r.Schema.Len())
	cols = append(cols, l.Schema.Columns...)
	cols = append(cols, r.Schema.Columns...)
	out.Schema = &Schema{Columns: cols}
	out.ColOrigin = make([]ColRefSet, 0, len(cols))
	for c := range l.Schema.Columns {
		out.ColOrigin = append(out.ColOrigin, l.ColumnOrigin(c))
	}
	for c := range r.Schema.Columns {
		out.ColOrigin = append(out.ColOrigin, r.ColumnOrigin(c))
	}
	return out
}

// joinPair is one l-column/r-column equality of a join predicate.
type joinPair struct{ lc, rc int }

// extractJoinPairs flattens an AND tree and splits its conjuncts into
// cross-table equality pairs and a residual predicate (the remaining
// conjuncts refolded in order; nil when none). A selection under the
// conjunction is TRUE exactly when every conjunct is TRUE, so hashing the
// pairs and testing the residual is equivalent to evaluating the tree.
func extractJoinPairs(pred Expr, ls, rs *Schema) ([]joinPair, Expr) {
	var conjuncts []Expr
	var flatten func(e Expr)
	flatten = func(e Expr) {
		if be, ok := e.(*BinExpr); ok && be.Op == OpAnd {
			flatten(be.L)
			flatten(be.R)
			return
		}
		conjuncts = append(conjuncts, e)
	}
	if pred != nil {
		flatten(pred)
	}
	var pairs []joinPair
	var residual Expr
	for _, c := range conjuncts {
		if lc, rc, ok := equiJoinCols(c, ls, rs); ok {
			pairs = append(pairs, joinPair{lc: lc, rc: rc})
			continue
		}
		if residual == nil {
			residual = c
		} else {
			residual = And(residual, c)
		}
	}
	return pairs, residual
}

// hashJoinMulti hash-joins on every equality pair at once. Keys are
// canonicalized with joinMapKey (over-merge only) and every candidate is
// re-verified with Value.Equal, so the match set is exactly the
// nested-loop reference's.
func hashJoinMulti(out *Table, l, r *Table, pairs []joinPair, residual compiledPred, kind JoinKind) {
	type rkey struct{ a, b uint64 }
	ins := make([]map[ValKey]uint32, len(pairs))
	for p := range ins {
		ins[p] = make(map[ValKey]uint32, 1024)
	}
	buildKey := func(row Row, right bool, intern bool) (rkey, bool) {
		var k rkey
		for p, pr := range pairs {
			ci := pr.lc
			if right {
				ci = pr.rc
			}
			v := row[ci]
			if v.IsNull() {
				return rkey{}, false
			}
			vk := joinMapKey(v)
			id, ok := ins[p][vk]
			if !ok {
				if !intern {
					return rkey{}, false
				}
				id = uint32(len(ins[p]) + 1)
				ins[p][vk] = id
			}
			if p < 2 {
				k.a |= uint64(id) << (32 * uint(p))
			} else {
				// Beyond two pairs, fold further ids in; collisions only
				// cost extra verified candidates, never correctness.
				k.b = k.b*1099511628211 + uint64(id)
			}
		}
		return k, true
	}
	idx := make(map[rkey][]int32, len(r.Rows))
	for j, rr := range r.Rows {
		k, ok := buildKey(rr, true, true)
		if !ok {
			continue
		}
		idx[k] = append(idx[k], int32(j))
	}
	em := newJoinEmitter(out, l, r)
	scratch := make(Row, l.Schema.Len()+r.Schema.Len())
	for i, lr := range l.Rows {
		matched := false
		k, ok := buildKey(lr, false, false)
		if ok {
			copy(scratch, lr)
			for _, j32 := range idx[k] {
				j := int(j32)
				rr := r.Rows[j]
				equal := true
				for _, pr := range pairs {
					if !lr[pr.lc].Equal(rr[pr.rc]) {
						equal = false
						break
					}
				}
				if !equal {
					continue
				}
				copy(scratch[len(lr):], rr)
				sel, _ := residual.selected(scratch)
				if sel {
					em.emitRow(i, j, scratch)
					matched = true
				}
			}
		}
		if !matched && kind == LeftJoin {
			em.emitLeftNull(i)
		}
	}
}

// nestedLoopInto is the reference general join body, shared by the
// row-at-a-time mode and the exported NestedLoopJoin baseline.
func nestedLoopInto(out *Table, l, r *Table, pred Expr, kind JoinKind) (*Table, error) {
	cols := out.Schema.Len()
	joined := out.Schema
	for i, lr := range l.Rows {
		matched := false
		for j, rr := range r.Rows {
			nr := make(Row, 0, cols)
			nr = append(nr, lr...)
			nr = append(nr, rr...)
			ok, err := EvalPredicate(pred, nr, joined)
			if err != nil {
				return nil, err
			}
			if ok {
				out.Rows = append(out.Rows, nr)
				out.Lineage = append(out.Lineage, mergeLineage(l.RowLineage(i), r.RowLineage(j)))
				matched = true
			}
		}
		if !matched && kind == LeftJoin {
			nr := make(Row, cols)
			copy(nr, lr)
			out.Rows = append(out.Rows, nr)
			out.Lineage = append(out.Lineage, l.RowLineage(i))
		}
	}
	return out, nil
}

// groupByVec is the vectorized GroupBy: group keys are interned to dense
// ids (one map probe per row, no per-row key allocation), and numeric
// aggregates accumulate over typed column vectors.
func groupByVec(t *Table, keys []string, aggs []AggSpec) (*Table, error) {
	keyIdx := make([]int, len(keys))
	for i, k := range keys {
		idx := t.Schema.Index(k)
		if idx < 0 {
			return nil, fmt.Errorf("relation: group key %q not in %s", k, t.Schema)
		}
		keyIdx[i] = idx
	}
	aggIdx := make([]int, len(aggs))
	for i, a := range aggs {
		if a.Col == "" {
			if a.Kind != AggCount {
				return nil, fmt.Errorf("relation: aggregate %s requires a column", a.Kind)
			}
			aggIdx[i] = -1
			continue
		}
		idx := t.Schema.Index(a.Col)
		if idx < 0 {
			return nil, fmt.Errorf("relation: aggregate column %q not in %s", a.Col, t.Schema)
		}
		aggIdx[i] = idx
	}

	type group struct {
		key     Row
		states  []*aggState
		lineage LineageSet
	}
	capHint := len(t.Rows)
	if capHint > 1024 {
		capHint = 1024
	}
	keyer := newRowKeyer(keyIdx, capHint)
	// Keys of up to two columns pack into a uint64, so the group index can
	// be a plain integer map — cheaper to hash than the composite struct.
	wideKeys := len(keyIdx) <= 2
	var byWide map[uint64]int32
	var byKey map[compositeKey]int32
	if wideKeys {
		byWide = make(map[uint64]int32, capHint)
	} else {
		byKey = make(map[compositeKey]int32, capHint)
	}
	var groups []*group
	gids := make([]int32, len(t.Rows))

	// Pass 1: assign group ids and count each group's lineage refs, so the
	// per-group ref lists can be carved out of one exactly-sized arena —
	// append-growing them would re-copy megabytes of refs through write
	// barriers on large inputs.
	refCount := 0
	for ri, r := range t.Rows {
		ck := keyer.key(r)
		var gi int32
		var ok bool
		if wideKeys {
			gi, ok = byWide[ck.wide]
		} else {
			gi, ok = byKey[ck]
		}
		if !ok {
			gi = int32(len(groups))
			if wideKeys {
				byWide[ck.wide] = gi
			} else {
				byKey[ck] = gi
			}
			g := &group{states: make([]*aggState, len(aggs))}
			g.key = make(Row, len(keyIdx))
			for i, ki := range keyIdx {
				g.key[i] = r[ki]
			}
			for i := range aggs {
				g.states[i] = &aggState{allInt: true, vdist: map[ValKey]bool{}}
			}
			groups = append(groups, g)
		}
		gids[ri] = gi
		refCount += len(t.RowLineage(ri))
	}
	refArena := make([]RowRef, 0, refCount)
	// Bucket rows by group first so each group's refs land contiguously.
	members := make([][]int32, len(groups))
	for ri := range t.Rows {
		gi := gids[ri]
		members[gi] = append(members[gi], int32(ri))
	}
	for gi, rows := range members {
		start := len(refArena)
		for _, ri := range rows {
			refArena = append(refArena, t.RowLineage(int(ri))...)
		}
		// Raw refs; normalized once per group on emit (an incremental
		// sorted merge is quadratic in the group size).
		groups[gi].lineage = LineageSet(refArena[start:len(refArena):len(refArena)])
	}

	// Pass 2: accumulate aggregates column by column over vectors.
	b := NewBatch(t)
	for ai, a := range aggs {
		if aggIdx[ai] < 0 { // COUNT(*): one per member row
			for _, gi := range gids {
				groups[gi].states[ai].n++
			}
			continue
		}
		vec := b.Col(aggIdx[ai])
		switch {
		case (a.Kind == AggSum || a.Kind == AggAvg) && vec.V == nil && vec.Kind == TInt:
			for ri, x := range vec.I {
				if vec.Null != nil && vec.Null[ri] {
					continue
				}
				st := groups[gids[ri]].states[ai]
				st.n++
				st.sumInt += x
				st.sum += float64(x)
			}
		case (a.Kind == AggSum || a.Kind == AggAvg) && vec.V == nil && vec.Kind == TFloat:
			for ri, f := range vec.F {
				if vec.Null != nil && vec.Null[ri] {
					continue
				}
				st := groups[gids[ri]].states[ai]
				st.n++
				st.allInt = false
				st.sum += f
			}
		default:
			for ri := 0; ri < vec.Len(); ri++ {
				v := vec.Value(ri)
				if v.IsNull() {
					continue
				}
				st := groups[gids[ri]].states[ai]
				st.n++
				switch a.Kind {
				case AggSum, AggAvg:
					if v.Kind == TInt {
						st.sumInt += v.I
						st.sum += float64(v.I)
					} else if f, ok := v.AsFloat(); ok {
						st.allInt = false
						st.sum += f
					}
				case AggMin:
					if st.min.IsNull() {
						st.min = v
					} else if c, ok := v.Compare(st.min); ok && c < 0 {
						st.min = v
					}
				case AggMax:
					if st.max.IsNull() {
						st.max = v
					} else if c, ok := v.Compare(st.max); ok && c > 0 {
						st.max = v
					}
				case AggCountDistinct:
					st.vkDistinct(v)
				}
			}
		}
	}

	out := &Table{Name: t.Name + "_grp"}
	cols := make([]Column, 0, len(keys)+len(aggs))
	out.ColOrigin = make([]ColRefSet, 0, cap(cols))
	for i, k := range keys {
		cols = append(cols, Column{Name: baseName(k), Type: t.Schema.Columns[keyIdx[i]].Type})
		out.ColOrigin = append(out.ColOrigin, t.ColumnOrigin(keyIdx[i]))
	}
	for i, a := range aggs {
		cols = append(cols, Column{Name: a.outName(), Type: a.outType(t.Schema)})
		if aggIdx[i] >= 0 {
			out.ColOrigin = append(out.ColOrigin, t.ColumnOrigin(aggIdx[i]))
		} else {
			// COUNT(*) derives from the whole row; attribute it to all
			// input columns so provenance over-approximates rather than
			// under-approximates.
			out.ColOrigin = append(out.ColOrigin, t.AllColumnOrigins())
		}
	}
	out.Schema = &Schema{Columns: cols}

	flat := make([]Value, 0, len(groups)*len(cols))
	for _, g := range groups {
		start := len(flat)
		flat = append(flat, g.key...)
		for i, a := range aggs {
			flat = append(flat, g.states[i].result(a.Kind))
		}
		out.Rows = append(out.Rows, Row(flat[start:len(flat):len(flat)]))
		out.Lineage = append(out.Lineage, normalizeGroupLineage(g.lineage))
	}
	return out, nil
}

// normalizeGroupLineage sorts and deduplicates a group's accumulated row
// refs in place. Output is identical to LineageSet.normalize — ascending
// (table, row), unique — but it buckets refs by table first (groups draw
// from a handful of base tables) and sorts plain ints per bucket, instead
// of string-comparing tables inside every comparison of a reflective
// sort.Slice. On aggregation-heavy renders this is the difference between
// lineage bookkeeping dominating the profile and it disappearing into it.
func normalizeGroupLineage(refs LineageSet) LineageSet {
	if len(refs) <= 1 {
		return refs
	}
	// Bucket rows by table. A group draws from a handful of tables, so a
	// linear probe over the names beats a map: no hashing, and the
	// previous ref's table matches the next one often enough (per-row
	// lineage sets are themselves sorted) that the probe usually stops at
	// its cached index via a pointer-equal string compare.
	names := make([]string, 0, 4)
	var counts [16]int
	cur := -1
	probe := func(table string) int {
		if cur >= 0 && names[cur] == table {
			return cur
		}
		cur = -1
		for i, nm := range names {
			if nm == table {
				cur = i
				break
			}
		}
		if cur < 0 {
			names = append(names, table)
			cur = len(names) - 1
		}
		return cur
	}
	wide := len(names) > len(counts) // re-checked after the count pass
	for _, r := range refs {
		bi := probe(r.Table)
		if bi < len(counts) {
			counts[bi]++
		} else {
			wide = true
		}
	}
	if wide {
		// Pathological table fan-out: fall back to the generic normalize.
		return refs.normalize()
	}
	rowArena := make([]int, len(refs))
	buckets := make([][]int, len(names))
	off := 0
	for i := range names {
		buckets[i] = rowArena[off : off : off+counts[i]]
		off += counts[i]
	}
	cur = -1
	for _, r := range refs {
		bi := probe(r.Table)
		buckets[bi] = append(buckets[bi], r.Row)
	}
	order := make([]int, len(names))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return names[order[a]] < names[order[b]] })
	out := refs[:0]
	for _, bi := range order {
		rows := buckets[bi]
		name := names[bi]
		if !sort.IntsAreSorted(rows) {
			minRow, maxRow := rows[0], rows[0]
			for _, r := range rows {
				if r < minRow {
					minRow = r
				}
				if r > maxRow {
					maxRow = r
				}
			}
			if minRow >= 0 && maxRow < 4*len(rows)+1024 {
				// Dense row ids (the normal case: lineage points into a
				// contiguous base table): a bitset yields the rows sorted
				// and deduplicated in one sweep, no comparison sort.
				words := make([]uint64, maxRow/64+1)
				for _, r := range rows {
					words[r>>6] |= 1 << (uint(r) & 63)
				}
				for wi, w := range words {
					for w != 0 {
						out = append(out, RowRef{Table: name, Row: wi<<6 | bits.TrailingZeros64(w)})
						w &= w - 1
					}
				}
				continue
			}
			sort.Ints(rows)
		}
		prev := rows[0] - 1
		for _, row := range rows {
			if row == prev {
				continue
			}
			prev = row
			out = append(out, RowRef{Table: name, Row: row})
		}
	}
	return out
}

// distinctVec is the vectorized Distinct: whole-row keys are interned per
// column instead of concatenating Key() strings.
func distinctVec(t *Table) *Table {
	out := t.derived(t.Name + "_dist")
	allCols := make([]int, t.Schema.Len())
	for i := range allCols {
		allCols[i] = i
	}
	capHint := len(t.Rows)
	if capHint > 1024 {
		capHint = 1024
	}
	keyer := newRowKeyer(allCols, capHint)
	index := make(map[compositeKey]int, capHint)
	for i, r := range t.Rows {
		k := keyer.key(r)
		if j, ok := index[k]; ok {
			out.Lineage[j] = append(out.Lineage[j], t.RowLineage(i)...)
			continue
		}
		index[k] = len(out.Rows)
		out.Rows = append(out.Rows, r)
		out.Lineage = append(out.Lineage, append(LineageSet(nil), t.RowLineage(i)...))
	}
	for j := range out.Lineage {
		out.Lineage[j] = out.Lineage[j].normalize()
	}
	return out
}
