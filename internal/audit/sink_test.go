package audit

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"plabi/internal/fault"
	"plabi/internal/obs"
)

// flakyWriter fails (or short-writes) the first n writes, then delegates
// to the buffer.
type flakyWriter struct {
	buf      bytes.Buffer
	failures int
	short    bool
	writes   int
}

func (w *flakyWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.failures > 0 {
		w.failures--
		if w.short {
			// Commit a partial prefix, as a failing disk or pipe would.
			n := len(p) / 2
			w.buf.Write(p[:n])
			return n, nil
		}
		return 0, errors.New("sink down")
	}
	return w.buf.Write(p)
}

func fastRetry() fault.RetryPolicy {
	return fault.RetryPolicy{MaxAttempts: 4, Base: time.Microsecond, Max: 10 * time.Microsecond, Multiplier: 2}
}

func validJSONLines(t *testing.T, data string) int {
	t.Helper()
	n := 0
	for _, line := range strings.Split(data, "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("corrupt sink line %q: %v", line, err)
		}
		n++
	}
	return n
}

func TestAppendCheckedRetriesSinkFailures(t *testing.T) {
	w := &flakyWriter{failures: 2}
	l := NewLog()
	l.SetSink(w)
	l.SetRetryPolicy(fastRetry())
	m := obs.New()
	l.SetMetrics(m)
	seq, err := l.AppendChecked(context.Background(), Event{Kind: "render", Object: "r1"})
	if err != nil || seq != 0 {
		t.Fatalf("want retried success, got seq=%d err=%v", seq, err)
	}
	if got := validJSONLines(t, w.buf.String()); got != 1 {
		t.Fatalf("sink lines = %d, want 1", got)
	}
	if m.Counter("audit.sink_drops").Value() != 0 {
		t.Fatal("no drop expected after successful retry")
	}
	if m.Counter("retry.retries").Value() != 2 {
		t.Fatalf("retry.retries = %d, want 2", m.Counter("retry.retries").Value())
	}
}

func TestAppendCheckedFailsClosedPastBudget(t *testing.T) {
	w := &flakyWriter{failures: 100}
	l := NewLog()
	l.SetSink(w)
	l.SetRetryPolicy(fastRetry())
	m := obs.New()
	l.SetMetrics(m)
	seq, err := l.AppendChecked(context.Background(), Event{Kind: "render"})
	if !errors.Is(err, ErrAuditUnavailable) {
		t.Fatalf("want ErrAuditUnavailable, got %v", err)
	}
	if seq != 0 || l.Len() != 1 {
		t.Fatal("event must still be recorded in memory")
	}
	if m.Counter("audit.sink_drops").Value() != 1 {
		t.Fatalf("audit.sink_drops = %d, want 1", m.Counter("audit.sink_drops").Value())
	}
	if m.Counter("retry.exhausted").Value() != 1 {
		t.Fatalf("retry.exhausted = %d, want 1", m.Counter("retry.exhausted").Value())
	}
}

func TestSinkShortWriteResync(t *testing.T) {
	// One attempt per event: the first event half-commits and is dropped;
	// the next event must resync onto a fresh line so the sink stays
	// parseable with exactly the successful events.
	w := &flakyWriter{failures: 1, short: true}
	l := NewLog()
	l.SetSink(w)
	m := obs.New()
	l.SetMetrics(m)
	if _, err := l.AppendChecked(context.Background(), Event{Kind: "render", Object: "first"}); !errors.Is(err, ErrAuditUnavailable) {
		t.Fatalf("short write must fail the append, got %v", err)
	}
	if _, err := l.AppendChecked(context.Background(), Event{Kind: "render", Object: "second"}); err != nil {
		t.Fatalf("second append: %v", err)
	}
	// The partial first line is terminated by the resync newline; every
	// complete line parses and the second event survives intact.
	lines := strings.Split(strings.TrimRight(w.buf.String(), "\n"), "\n")
	var got []Event
	for _, line := range lines {
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err == nil {
			got = append(got, e)
		}
	}
	if len(got) != 1 || got[0].Object != "second" {
		t.Fatalf("want exactly the second event parseable, got %+v", got)
	}
	if m.Counter("audit.sink_resyncs").Value() != 1 {
		t.Fatalf("audit.sink_resyncs = %d, want 1", m.Counter("audit.sink_resyncs").Value())
	}
	if m.Counter("audit.sink_drops").Value() != 1 {
		t.Fatalf("audit.sink_drops = %d, want 1", m.Counter("audit.sink_drops").Value())
	}
}

// panicWriter panics on write, as a broken custom sink might.
type panicWriter struct{}

func (panicWriter) Write([]byte) (int, error) { panic("sink exploded") }

func TestSinkPanicIsIsolated(t *testing.T) {
	l := NewLog()
	l.SetSink(panicWriter{})
	l.SetRetryPolicy(fastRetry())
	_, err := l.AppendChecked(context.Background(), Event{Kind: "render"})
	if !errors.Is(err, ErrAuditUnavailable) {
		t.Fatalf("want ErrAuditUnavailable, got %v", err)
	}
	// A panic is permanent: no retries should have burned the budget.
	if !errors.Is(err, ErrAuditUnavailable) {
		t.Fatal("panic must map to audit unavailability")
	}
	// The log must remain usable after the panic.
	l.SetSink(nil)
	if _, err := l.AppendChecked(context.Background(), Event{Kind: "render"}); err != nil {
		t.Fatalf("log unusable after sink panic: %v", err)
	}
}

func TestInjectedSinkFaultsRetryAndRecover(t *testing.T) {
	fi := fault.NewInjector(1)
	fi.Enable(fault.SiteAuditSink, fault.SiteConfig{ErrorRate: 1, Transient: true, Times: 2})
	var buf bytes.Buffer
	l := NewLog()
	l.SetSink(&buf)
	l.SetFaults(fi)
	l.SetRetryPolicy(fastRetry())
	if _, err := l.AppendChecked(context.Background(), Event{Kind: "render"}); err != nil {
		t.Fatalf("want recovery within budget, got %v", err)
	}
	if got := validJSONLines(t, buf.String()); got != 1 {
		t.Fatalf("sink lines = %d, want 1", got)
	}
	if len(fi.Schedule()) != 2 {
		t.Fatalf("schedule = %v, want 2 fires", fi.Schedule())
	}
}

func TestAppendUncheckedFailsOpen(t *testing.T) {
	w := &flakyWriter{failures: 100}
	l := NewLog()
	l.SetSink(w)
	m := obs.New()
	l.SetMetrics(m)
	if seq := l.Append(Event{Kind: "render"}); seq != 0 {
		t.Fatalf("seq = %d", seq)
	}
	if m.Counter("audit.sink_drops").Value() != 1 {
		t.Fatal("drop must be counted")
	}
}
