package fault

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"
)

// outcomes drives a fixed interleaved call pattern over two sites and
// records the per-call fate ("ok", "error", "error!" for transient,
// "panic") — the observable behavior a replay must reproduce.
func outcomes(t *testing.T, i *Injector, n int) []string {
	t.Helper()
	var out []string
	hit := func(site string) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(*PanicValue); !ok {
					t.Fatalf("unexpected panic value %v", r)
				}
				out = append(out, "panic")
			}
		}()
		err := i.Hit(context.Background(), site)
		switch {
		case err == nil:
			out = append(out, "ok")
		case !errors.Is(err, ErrInjected):
			t.Fatalf("unexpected error %v", err)
		default:
			var se *SiteError
			if errors.As(err, &se) && se.Temporary() {
				out = append(out, "error!")
			} else {
				out = append(out, "error")
			}
		}
	}
	for c := 0; c < n; c++ {
		hit(SiteETLStep)
		if c%3 == 0 {
			hit(SiteAuditSink)
		}
	}
	return out
}

// TestReplaySchedule records a seeded run's schedule, replays it on an
// injector with a different seed and *different site rates*, and
// requires identical per-call outcomes and an identical re-recorded
// schedule — the property the chaos suite's replay artifact relies on.
func TestReplaySchedule(t *testing.T) {
	orig := NewInjector(42)
	orig.Enable(SiteETLStep, SiteConfig{ErrorRate: 0.25, PanicRate: 0.1})
	orig.Enable(SiteAuditSink, SiteConfig{ErrorRate: 0.5, Transient: true})
	wantOut := outcomes(t, orig, 120)
	recorded := orig.Schedule()
	if len(recorded) == 0 {
		t.Fatal("seeded run fired nothing; test is vacuous")
	}

	rep := NewInjector(7)
	// Deliberately wrong configuration: replay must ignore it.
	rep.Enable(SiteETLStep, SiteConfig{ErrorRate: 1})
	rep.ReplaySchedule(recorded)
	gotOut := outcomes(t, rep, 120)
	if !reflect.DeepEqual(wantOut, gotOut) {
		t.Fatalf("replay diverged from original outcomes:\n%v\n%v", wantOut, gotOut)
	}
	if got := rep.Schedule(); !reflect.DeepEqual(recorded, got) {
		t.Fatalf("replay re-recorded a different schedule:\noriginal %v\nreplay   %v", recorded, got)
	}
}

// TestReplayScheduleUnknownSite proves sites absent from the recorded
// schedule never fire under replay, even when enabled with rate 1.
func TestReplayScheduleUnknownSite(t *testing.T) {
	i := NewInjector(1)
	i.Enable(SiteRenderWorker, SiteConfig{ErrorRate: 1, Transient: true})
	i.ReplaySchedule([]Fire{{Seq: 1, Site: SiteETLStep, Kind: "error", Call: 3}})
	for c := 0; c < 10; c++ {
		if err := i.Hit(context.Background(), SiteRenderWorker); err != nil {
			t.Fatalf("call %d: replay fired at a site outside the schedule: %v", c, err)
		}
	}
	// The scheduled site fires on exactly its recorded call ordinal,
	// with no Enable call for it.
	for c := 1; c <= 5; c++ {
		err := i.Hit(context.Background(), SiteETLStep)
		if (c == 3) != (err != nil) {
			t.Fatalf("call %d: err=%v, want fire exactly on call 3", c, err)
		}
	}
}

// TestReplayScheduleEmpty pins an empty schedule: a fully configured
// injector goes silent.
func TestReplayScheduleEmpty(t *testing.T) {
	i := NewInjector(99)
	i.Enable(SiteETLStep, SiteConfig{PanicRate: 1})
	i.Enable(SiteAuditSink, SiteConfig{ErrorRate: 1, LatencyRate: 0.5, Latency: time.Millisecond})
	i.ReplaySchedule(nil)
	if got := outcomes(t, i, 30); len(got) != 40 {
		t.Fatalf("outcome count %d, want 40", len(got))
	} else {
		for c, o := range got {
			if o != "ok" {
				t.Fatalf("outcome %d = %q under empty replay, want ok", c, o)
			}
		}
	}
	if s := i.Schedule(); len(s) != 0 {
		t.Fatalf("empty replay recorded fires: %v", s)
	}
}
