package anon

import (
	"fmt"
	"sort"
	"strings"

	"plabi/internal/relation"
)

// Stats summarizes a k-anonymization run.
type Stats struct {
	// Partitions is the number of equivalence classes produced.
	Partitions int
	// Suppressed is the number of rows removed because no partition of
	// size >= k could contain them.
	Suppressed int
	// Discernibility is the sum over classes of |class|^2 plus
	// |suppressed| * N — the standard cost metric (lower is better).
	Discernibility int64
	// AvgClassSize is the average equivalence-class size.
	AvgClassSize float64
}

// KAnonymize returns a copy of t whose quasi-identifier columns are
// generalized so that every combination of QI values occurs at least k
// times (k-anonymity, Sweeney [12]) using greedy Mondrian-style
// multidimensional median partitioning. QI columns become strings
// (ranges/sets render textually); remaining columns are untouched. Rows
// that cannot be covered are suppressed. Row lineage is preserved so
// provenance and aggregation-threshold checks still work downstream.
func KAnonymize(t *relation.Table, k int, qi []string) (*relation.Table, Stats, error) {
	if k < 2 {
		return nil, Stats{}, fmt.Errorf("anon: k must be >= 2, got %d", k)
	}
	qiIdx := make([]int, len(qi))
	for i, q := range qi {
		idx := t.Schema.Index(q)
		if idx < 0 {
			return nil, Stats{}, fmt.Errorf("anon: quasi-identifier %q not in %s", q, t.Schema)
		}
		qiIdx[i] = idx
	}

	all := make([]int, t.NumRows())
	for i := range all {
		all[i] = i
	}

	var stats Stats
	var partitions [][]int
	if len(all) < k {
		stats.Suppressed = len(all)
		all = nil
	} else {
		partitions = mondrianSplit(t, all, qiIdx, k)
	}

	// Build the output: QI columns generalized per partition.
	out := &relation.Table{Name: t.Name + "_anon"}
	cols := make([]relation.Column, t.Schema.Len())
	copy(cols, t.Schema.Columns)
	for _, qc := range qiIdx {
		cols[qc] = relation.Column{Name: cols[qc].Name, Type: relation.TString}
	}
	out.Schema = &relation.Schema{Columns: cols}
	out.ColOrigin = make([]relation.ColRefSet, len(cols))
	for c := range cols {
		out.ColOrigin[c] = t.ColumnOrigin(c)
	}

	stats.Partitions = len(partitions)
	var classSum int64
	for _, part := range partitions {
		classSum += int64(len(part))
		stats.Discernibility += int64(len(part)) * int64(len(part))
		gen := make([]relation.Value, len(qiIdx))
		for qi, qc := range qiIdx {
			gen[qi] = summarizeColumn(t, part, qc)
		}
		for _, ri := range part {
			nr := t.Rows[ri].Clone()
			for qi, qc := range qiIdx {
				nr[qc] = gen[qi]
			}
			out.Rows = append(out.Rows, nr)
			out.Lineage = append(out.Lineage, t.RowLineage(ri))
		}
	}
	stats.Discernibility += int64(stats.Suppressed) * int64(t.NumRows())
	if len(partitions) > 0 {
		stats.AvgClassSize = float64(classSum) / float64(len(partitions))
	}
	return out, stats, nil
}

// mondrianSplit recursively partitions rows so every partition has >= k
// members, choosing at each step the QI dimension with the most distinct
// values and splitting at its median.
func mondrianSplit(t *relation.Table, rows []int, qiIdx []int, k int) [][]int {
	if len(rows) < 2*k {
		return [][]int{rows}
	}
	// Pick the dimension with the widest spread (most distinct values).
	bestDim, bestDistinct := -1, 1
	for _, qc := range qiIdx {
		distinct := map[string]bool{}
		for _, ri := range rows {
			distinct[t.Rows[ri][qc].Key()] = true
			if len(distinct) > bestDistinct {
				bestDistinct = len(distinct)
				bestDim = qc
			}
		}
	}
	if bestDim < 0 {
		return [][]int{rows} // all QI values identical
	}
	// Sort rows along the chosen dimension and split at the median
	// boundary that keeps equal values together.
	sorted := append([]int(nil), rows...)
	sort.SliceStable(sorted, func(a, b int) bool {
		va, vb := t.Rows[sorted[a]][bestDim], t.Rows[sorted[b]][bestDim]
		if va.IsNull() {
			return !vb.IsNull()
		}
		if vb.IsNull() {
			return false
		}
		if c, ok := va.Compare(vb); ok {
			return c < 0
		}
		return va.Key() < vb.Key()
	})
	mid := len(sorted) / 2
	// Move the boundary forward so identical values stay in one side.
	lo := mid
	for lo > 0 && sameVal(t, sorted[lo-1], sorted[lo], bestDim) {
		lo--
	}
	hi := mid
	for hi < len(sorted) && hi > 0 && sameVal(t, sorted[hi-1], sorted[hi], bestDim) {
		hi++
	}
	// Prefer the boundary closer to the median that keeps both sides >= k.
	split := -1
	if lo >= k && len(sorted)-lo >= k {
		split = lo
	}
	if hi >= k && len(sorted)-hi >= k {
		if split < 0 || abs(hi-mid) < abs(mid-lo) {
			split = hi
		}
	}
	if split < 0 {
		return [][]int{rows}
	}
	left := mondrianSplit(t, sorted[:split], qiIdx, k)
	right := mondrianSplit(t, sorted[split:], qiIdx, k)
	return append(left, right...)
}

func sameVal(t *relation.Table, a, b, col int) bool {
	va, vb := t.Rows[a][col], t.Rows[b][col]
	if va.IsNull() && vb.IsNull() {
		return true
	}
	return va.Key() == vb.Key()
}

func abs(n int) int {
	if n < 0 {
		return -n
	}
	return n
}

// summarizeColumn renders the generalized value of one QI column over a
// partition: the value itself when unique; a [min-max] range for ordered
// types; a {a,b,c} set (or "*" when large) for categoricals.
func summarizeColumn(t *relation.Table, part []int, col int) relation.Value {
	distinct := map[string]relation.Value{}
	var keys []string
	for _, ri := range part {
		v := t.Rows[ri][col]
		k := v.Key()
		if _, ok := distinct[k]; !ok {
			distinct[k] = v
			keys = append(keys, k)
		}
	}
	if len(distinct) == 1 {
		v := distinct[keys[0]]
		if v.Kind == relation.TString {
			return v
		}
		return relation.Str(v.String())
	}
	// Ordered types get a range.
	var minV, maxV relation.Value
	ordered := true
	for _, k := range keys {
		v := distinct[k]
		if v.IsNull() {
			ordered = false
			break
		}
		if minV.IsNull() {
			minV, maxV = v, v
			continue
		}
		c, ok := v.Compare(minV)
		if !ok {
			ordered = false
			break
		}
		if c < 0 {
			minV = v
		}
		if c2, _ := v.Compare(maxV); c2 > 0 {
			maxV = v
		}
	}
	if ordered && minV.Kind != relation.TString {
		return relation.Str(fmt.Sprintf("[%s-%s]", minV, maxV))
	}
	if len(distinct) <= 4 {
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = distinct[k].String()
		}
		return relation.Str("{" + strings.Join(parts, ",") + "}")
	}
	return relation.Str("*")
}

// CheckKAnonymity reports whether every equivalence class over the QI
// columns has at least k members; violating class sizes are returned for
// diagnostics.
func CheckKAnonymity(t *relation.Table, k int, qi []string) (bool, []int, error) {
	qiIdx := make([]int, len(qi))
	for i, q := range qi {
		idx := t.Schema.Index(q)
		if idx < 0 {
			return false, nil, fmt.Errorf("anon: quasi-identifier %q not in %s", q, t.Schema)
		}
		qiIdx[i] = idx
	}
	counts := classCounts(t, qiIdx)
	var violations []int
	for _, n := range counts {
		if n < k {
			violations = append(violations, n)
		}
	}
	sort.Ints(violations)
	return len(violations) == 0, violations, nil
}

// CheckLDiversity reports whether every QI equivalence class contains at
// least l distinct values of the sensitive attribute (distinct
// l-diversity).
func CheckLDiversity(t *relation.Table, l int, qi []string, sensitive string) (bool, error) {
	si := t.Schema.Index(sensitive)
	if si < 0 {
		return false, fmt.Errorf("anon: sensitive attribute %q not in %s", sensitive, t.Schema)
	}
	qiIdx := make([]int, len(qi))
	for i, q := range qi {
		idx := t.Schema.Index(q)
		if idx < 0 {
			return false, fmt.Errorf("anon: quasi-identifier %q not in %s", q, t.Schema)
		}
		qiIdx[i] = idx
	}
	classes := map[string]map[string]bool{}
	for ri := range t.Rows {
		key := classKey(t, ri, qiIdx)
		if classes[key] == nil {
			classes[key] = map[string]bool{}
		}
		classes[key][t.Rows[ri][si].Key()] = true
	}
	for _, vals := range classes {
		if len(vals) < l {
			return false, nil
		}
	}
	return true, nil
}

// EnforceLDiversity removes the equivalence classes of t that fail
// distinct l-diversity, returning the filtered table and the number of
// suppressed rows. Apply after KAnonymize to obtain both guarantees.
func EnforceLDiversity(t *relation.Table, l int, qi []string, sensitive string) (*relation.Table, int, error) {
	si := t.Schema.Index(sensitive)
	if si < 0 {
		return nil, 0, fmt.Errorf("anon: sensitive attribute %q not in %s", sensitive, t.Schema)
	}
	qiIdx := make([]int, len(qi))
	for i, q := range qi {
		idx := t.Schema.Index(q)
		if idx < 0 {
			return nil, 0, fmt.Errorf("anon: quasi-identifier %q not in %s", q, t.Schema)
		}
		qiIdx[i] = idx
	}
	diversity := map[string]map[string]bool{}
	for ri := range t.Rows {
		key := classKey(t, ri, qiIdx)
		if diversity[key] == nil {
			diversity[key] = map[string]bool{}
		}
		diversity[key][t.Rows[ri][si].Key()] = true
	}
	out := &relation.Table{Name: t.Name + "_ldiv", Schema: t.Schema.Clone()}
	out.ColOrigin = make([]relation.ColRefSet, t.Schema.Len())
	for c := range out.ColOrigin {
		out.ColOrigin[c] = t.ColumnOrigin(c)
	}
	suppressed := 0
	for ri := range t.Rows {
		if len(diversity[classKey(t, ri, qiIdx)]) < l {
			suppressed++
			continue
		}
		out.Rows = append(out.Rows, t.Rows[ri])
		out.Lineage = append(out.Lineage, t.RowLineage(ri))
	}
	return out, suppressed, nil
}

func classKey(t *relation.Table, ri int, qiIdx []int) string {
	var b strings.Builder
	for _, qc := range qiIdx {
		b.WriteString(t.Rows[ri][qc].Key())
		b.WriteByte('|')
	}
	return b.String()
}

func classCounts(t *relation.Table, qiIdx []int) map[string]int {
	counts := map[string]int{}
	for ri := range t.Rows {
		counts[classKey(t, ri, qiIdx)]++
	}
	return counts
}
