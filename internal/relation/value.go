// Package relation implements a typed, in-memory relational algebra with
// row-level lineage and column-level where-provenance propagation through
// every operator. It is the substrate on which the SQL engine, the ETL
// pipeline, the warehouse, and the report engine are built.
//
// Tables are immutable from the point of view of operators: every operator
// returns a new Table whose Lineage and ColOrigin fields record, for each
// derived row, the set of base rows it was computed from, and, for each
// derived column, the set of base (table, column) pairs it was derived from.
// This is the machinery the paper's provenance-based auditing (§4) and
// intensional report conditions (§5) rely on.
package relation

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Type enumerates the column types supported by the engine.
type Type int

// Supported column types.
const (
	TNull Type = iota
	TString
	TInt
	TFloat
	TBool
	TDate
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case TNull:
		return "NULL"
	case TString:
		return "STRING"
	case TInt:
		return "INT"
	case TFloat:
		return "FLOAT"
	case TBool:
		return "BOOL"
	case TDate:
		return "DATE"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// DateLayout is the textual layout used for DATE values throughout the
// library. The paper's examples use day-first dates (e.g. 12/02/2007); we
// normalize to ISO for unambiguity.
const DateLayout = "2006-01-02"

// Value is a dynamically typed cell value. The zero Value is NULL.
type Value struct {
	Kind Type
	S    string
	I    int64
	F    float64
	B    bool
	T    time.Time
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Str returns a STRING value.
func Str(s string) Value { return Value{Kind: TString, S: s} }

// Int returns an INT value.
func Int(i int64) Value { return Value{Kind: TInt, I: i} }

// Float returns a FLOAT value.
func Float(f float64) Value { return Value{Kind: TFloat, F: f} }

// Bool returns a BOOL value.
func Bool(b bool) Value { return Value{Kind: TBool, B: b} }

// Date returns a DATE value truncated to day granularity in UTC.
func Date(t time.Time) Value {
	y, m, d := t.Date()
	return Value{Kind: TDate, T: time.Date(y, m, d, 0, 0, 0, 0, time.UTC)}
}

// DateYMD returns a DATE value for the given year, month and day.
func DateYMD(y int, m time.Month, d int) Value {
	return Value{Kind: TDate, T: time.Date(y, m, d, 0, 0, 0, 0, time.UTC)}
}

// ParseDate parses an ISO yyyy-mm-dd string into a DATE value.
func ParseDate(s string) (Value, error) {
	t, err := time.Parse(DateLayout, s)
	if err != nil {
		return Null(), fmt.Errorf("relation: bad date %q: %w", s, err)
	}
	return Date(t), nil
}

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.Kind == TNull }

// String renders the value for display; NULL renders as "NULL".
func (v Value) String() string {
	switch v.Kind {
	case TNull:
		return "NULL"
	case TString:
		return v.S
	case TInt:
		return strconv.FormatInt(v.I, 10)
	case TFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case TBool:
		if v.B {
			return "true"
		}
		return "false"
	case TDate:
		return v.T.Format(DateLayout)
	default:
		return "?"
	}
}

// AsFloat converts numeric values to float64. It reports false for
// non-numeric values.
func (v Value) AsFloat() (float64, bool) {
	switch v.Kind {
	case TInt:
		return float64(v.I), true
	case TFloat:
		return v.F, true
	default:
		return 0, false
	}
}

// AsInt converts numeric values to int64 (floats are truncated). It reports
// false for non-numeric values.
func (v Value) AsInt() (int64, bool) {
	switch v.Kind {
	case TInt:
		return v.I, true
	case TFloat:
		return int64(v.F), true
	default:
		return 0, false
	}
}

// Equal reports whether two values are equal under SQL-style coercion
// (INT and FLOAT compare numerically). NULL equals nothing, including NULL.
func (v Value) Equal(o Value) bool {
	if v.IsNull() || o.IsNull() {
		return false
	}
	c, ok := v.Compare(o)
	return ok && c == 0
}

// Compare orders two values: -1, 0, +1. It reports false when the values
// are incomparable (NULL involved or incompatible types).
func (v Value) Compare(o Value) (int, bool) {
	if v.IsNull() || o.IsNull() {
		return 0, false
	}
	if (v.Kind == TInt || v.Kind == TFloat) && (o.Kind == TInt || o.Kind == TFloat) {
		a, _ := v.AsFloat()
		b, _ := o.AsFloat()
		switch {
		case a < b:
			return -1, true
		case a > b:
			return 1, true
		default:
			return 0, true
		}
	}
	if v.Kind != o.Kind {
		return 0, false
	}
	switch v.Kind {
	case TString:
		return strings.Compare(v.S, o.S), true
	case TBool:
		switch {
		case v.B == o.B:
			return 0, true
		case !v.B:
			return -1, true
		default:
			return 1, true
		}
	case TDate:
		switch {
		case v.T.Before(o.T):
			return -1, true
		case v.T.After(o.T):
			return 1, true
		default:
			return 0, true
		}
	default:
		return 0, false
	}
}

// Key returns a canonical string key for grouping and hashing. Distinct
// values map to distinct keys within a column; NULL has its own key.
func (v Value) Key() string {
	switch v.Kind {
	case TNull:
		return "\x00N"
	case TString:
		return "s:" + v.S
	case TInt:
		return "i:" + strconv.FormatInt(v.I, 10)
	case TFloat:
		if v.F == math.Trunc(v.F) && math.Abs(v.F) < 1e15 {
			// Make 2.0 group with the integer 2 so mixed-type numeric
			// columns behave predictably.
			return "i:" + strconv.FormatInt(int64(v.F), 10)
		}
		return "f:" + strconv.FormatFloat(v.F, 'g', -1, 64)
	case TBool:
		if v.B {
			return "b:1"
		}
		return "b:0"
	case TDate:
		return "d:" + v.T.Format(DateLayout)
	default:
		return "?"
	}
}

// Coerce attempts to convert v to type t, returning the converted value.
// NULL coerces to NULL of any type. It reports false when the conversion
// is not meaningful.
func (v Value) Coerce(t Type) (Value, bool) {
	if v.IsNull() {
		return Null(), true
	}
	if v.Kind == t {
		return v, true
	}
	switch t {
	case TString:
		return Str(v.String()), true
	case TInt:
		switch v.Kind {
		case TFloat:
			return Int(int64(v.F)), true
		case TString:
			i, err := strconv.ParseInt(strings.TrimSpace(v.S), 10, 64)
			if err != nil {
				return Null(), false
			}
			return Int(i), true
		case TBool:
			if v.B {
				return Int(1), true
			}
			return Int(0), true
		}
	case TFloat:
		switch v.Kind {
		case TInt:
			return Float(float64(v.I)), true
		case TString:
			f, err := strconv.ParseFloat(strings.TrimSpace(v.S), 64)
			if err != nil {
				return Null(), false
			}
			return Float(f), true
		}
	case TBool:
		switch v.Kind {
		case TString:
			switch strings.ToLower(strings.TrimSpace(v.S)) {
			case "true", "yes", "1":
				return Bool(true), true
			case "false", "no", "0":
				return Bool(false), true
			}
			return Null(), false
		case TInt:
			return Bool(v.I != 0), true
		}
	case TDate:
		if v.Kind == TString {
			d, err := ParseDate(strings.TrimSpace(v.S))
			if err != nil {
				return Null(), false
			}
			return d, true
		}
	}
	return Null(), false
}
