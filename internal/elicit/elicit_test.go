package elicit

import (
	"testing"

	"plabi/internal/policy"
)

func scenario(t *testing.T, seed int64, n int) *Scenario {
	t.Helper()
	s, err := BuildHealthcareScenario(seed, n)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuildScenario(t *testing.T) {
	s := scenario(t, 42, 8)
	if len(s.Reports.All()) != 8 {
		t.Errorf("reports = %d", len(s.Reports.All()))
	}
	if len(s.Metas) == 0 {
		t.Fatal("no meta-reports derived")
	}
	for _, d := range s.Reports.All() {
		if s.Assign[d.ID] == "" {
			t.Errorf("report %s unassigned", d.ID)
		}
		if !profileOK(s.Cat, d.Query) {
			t.Errorf("report %s does not profile", d.ID)
		}
	}
	if len(s.coveredCols) == 0 || len(s.sourceOnlyCols) == 0 {
		t.Errorf("pools: covered=%v sourceOnly=%v", s.coveredCols, s.sourceOnlyCols)
	}
}

// TestFig5EaseMonotonic verifies the horizontal axis of Fig. 5: per-
// discussion vocabulary shrinks (ease grows) monotonically from source to
// report level.
func TestFig5EaseMonotonic(t *testing.T) {
	s := scenario(t, 42, 8)
	costs, err := MeasureCosts(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(costs) != 4 {
		t.Fatalf("levels = %d", len(costs))
	}
	order := []policy.Level{policy.LevelSource, policy.LevelWarehouse, policy.LevelMetaReport, policy.LevelReport}
	for i, lvl := range order {
		if costs[i].Level != lvl {
			t.Fatalf("order = %v", costs)
		}
	}
	for i := 1; i < 4; i++ {
		if costs[i].Ease < costs[i-1].Ease {
			t.Errorf("ease not monotonic: %s %.3f -> %s %.3f",
				costs[i-1].Level, costs[i-1].Ease, costs[i].Level, costs[i].Ease)
		}
	}
}

// TestFig5OverEngineeringMonotonic verifies §3's claim: over-engineering
// shrinks from source to report level, hitting 0 at the reports.
func TestFig5OverEngineeringMonotonic(t *testing.T) {
	s := scenario(t, 42, 8)
	costs, err := MeasureCosts(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		if costs[i].OverEngineering > costs[i-1].OverEngineering+1e-9 {
			t.Errorf("over-engineering not monotonic: %s %.3f -> %s %.3f",
				costs[i-1].Level, costs[i-1].OverEngineering, costs[i].Level, costs[i].OverEngineering)
		}
	}
	if costs[0].OverEngineering <= 0 {
		t.Errorf("source level should over-engineer: %.3f", costs[0].OverEngineering)
	}
	if costs[3].OverEngineering != 0 {
		t.Errorf("report level should never over-engineer: %.3f", costs[3].OverEngineering)
	}
}

// TestFig5StabilityMonotonic verifies the vertical axis of Fig. 5:
// stability decreases monotonically from source to report level, with
// meta-reports strictly between warehouse and reports.
func TestFig5StabilityMonotonic(t *testing.T) {
	s := scenario(t, 42, 10)
	res, err := SimulateEvolution(s, 200, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("levels = %d", len(res))
	}
	for i := 1; i < 4; i++ {
		if res[i].Stability > res[i-1].Stability+1e-9 {
			t.Errorf("stability not monotonic: %s %.3f -> %s %.3f",
				res[i-1].Level, res[i-1].Stability, res[i].Level, res[i].Stability)
		}
	}
	// Meta-reports must beat plain reports decisively.
	if res[2].Stability <= res[3].Stability {
		t.Errorf("meta %.3f should exceed report %.3f", res[2].Stability, res[3].Stability)
	}
	// Reports churn on most events.
	if res[3].Stability > 0.35 {
		t.Errorf("report stability suspiciously high: %.3f", res[3].Stability)
	}
	// Sources are nearly immutable.
	if res[0].Stability < 0.9 {
		t.Errorf("source stability too low: %.3f", res[0].Stability)
	}
	for _, r := range res {
		if r.Events != 200 {
			t.Errorf("%s events = %d", r.Level, r.Events)
		}
		if r.Reelicitations != 200-int(r.Stability*200+0.5) {
			t.Errorf("%s accounting: %d vs %.3f", r.Level, r.Reelicitations, r.Stability)
		}
	}
}

func TestSimulationDeterministic(t *testing.T) {
	a, err := SimulateEvolution(scenario(t, 7, 6), 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateEvolution(scenario(t, 7, 6), 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Reelicitations != b[i].Reelicitations {
			t.Errorf("%s: %d vs %d", a[i].Level, a[i].Reelicitations, b[i].Reelicitations)
		}
	}
}

func TestEvolutionKeepsReportsValid(t *testing.T) {
	s := scenario(t, 3, 6)
	if _, err := SimulateEvolution(s, 150, nil); err != nil {
		t.Fatal(err)
	}
	for _, d := range s.Reports.All() {
		if !profileOK(s.Cat, d.Query) {
			t.Errorf("report %s broken after evolution: %q", d.ID, d.Query)
		}
	}
	// Pools stay coherent.
	if len(s.coveredCols) == 0 {
		t.Error("covered pool emptied")
	}
}

func TestMixVariants(t *testing.T) {
	// A report-churn-only mix: sources and warehouse never re-elicit.
	mix := Mix{EvNewReportCovered: 0.5, EvChangeFilter: 0.5}
	res, err := SimulateEvolution(scenario(t, 9, 6), 80, mix)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Reelicitations != 0 || res[1].Reelicitations != 0 {
		t.Errorf("source/warehouse should be untouched: %v", res)
	}
	if res[3].Reelicitations != 80 {
		t.Errorf("report should re-elicit on every event: %d", res[3].Reelicitations)
	}
}

func TestEventKindNames(t *testing.T) {
	if EvNewSource.String() != "new-source" || EvChangeFilter.String() != "change-filter" {
		t.Error("bad names")
	}
	total := 0.0
	for _, p := range DefaultMix() {
		total += p
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("default mix sums to %f", total)
	}
}
