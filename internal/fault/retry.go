package fault

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"plabi/internal/obs"
)

// RetryPolicy bounds a retry loop: at most MaxAttempts tries, with
// exponential backoff between them, capped at Max and randomized by
// Jitter. The zero policy performs exactly one attempt with no backoff,
// so un-configured call sites behave as before retries existed.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first call included).
	// Values below 1 mean one attempt.
	MaxAttempts int
	// Base is the delay before the first retry.
	Base time.Duration
	// Max caps the grown delay.
	Max time.Duration
	// Multiplier grows the delay between retries (default 2).
	Multiplier float64
	// Jitter is the fraction of each delay that is randomized, in
	// [0, 1]: the slept delay is uniform in [d*(1-Jitter), d].
	Jitter float64
	// AttemptTimeout, when positive, bounds each attempt with a
	// per-call deadline derived from the caller's context.
	AttemptTimeout time.Duration
}

// DefaultRetryPolicy is the engine-wide default for retryable sites
// (audit sink writes, source reads): 4 attempts, 5ms → 200ms backoff
// with half-width jitter.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, Base: 5 * time.Millisecond, Max: 200 * time.Millisecond,
		Multiplier: 2, Jitter: 0.5}
}

// attempts normalizes MaxAttempts.
func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// jitterSeq drives deterministic jitter: runs are reproducible for a
// fixed call order, and no wall-clock or global RNG state is consulted.
var jitterSeq atomic.Uint64

// jitterFrac returns a pseudo-random fraction in [0, 1) from a
// splitmix64 step over the process-wide sequence.
func jitterFrac() float64 {
	z := jitterSeq.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// Retry runs fn under the policy: transient failures are retried with
// bounded exponential backoff and jitter until the budget is exhausted;
// context cancellation, Permanent-marked errors, *InternalError (a
// recovered panic) and errors reporting Temporary() == false stop the
// loop immediately. Backoff sleeps honour ctx; when AttemptTimeout is
// set each attempt runs under its own deadline derived from ctx. The
// retry.* counters and the retry.backoff histogram are maintained on m
// (nil-safe).
func Retry(ctx context.Context, p RetryPolicy, m *obs.Metrics, fn func(ctx context.Context) error) error {
	attempts := p.attempts()
	mult := p.Multiplier
	if mult <= 1 {
		mult = 2
	}
	delay := p.Base
	var err error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			m.Counter("retry.retries").Inc()
			d := delay
			if p.Jitter > 0 {
				d = time.Duration(float64(d) * (1 - p.Jitter*jitterFrac()))
			}
			m.Histogram("retry.backoff").Observe(d)
			if serr := sleepCtx(ctx, d); serr != nil {
				return serr
			}
			delay = time.Duration(float64(delay) * mult)
			if p.Max > 0 && delay > p.Max {
				delay = p.Max
			}
		}
		m.Counter("retry.attempts").Inc()
		actx := ctx
		var cancel context.CancelFunc
		if p.AttemptTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, p.AttemptTimeout)
		}
		err = fn(actx)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			return nil
		}
		if !Retryable(err) || ctx.Err() != nil {
			return err
		}
	}
	m.Counter("retry.exhausted").Inc()
	return fmt.Errorf("fault: retry budget exhausted after %d attempts: %w", attempts, err)
}

// permanentError marks an error non-retryable.
type permanentError struct{ err error }

// Error implements error.
func (p *permanentError) Error() string { return p.err.Error() }

// Unwrap exposes the marked error to errors.Is/As.
func (p *permanentError) Unwrap() error { return p.err }

// Permanent marks err as non-retryable: Retry returns it without
// consuming further attempts. A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// Retryable reports whether Retry would re-attempt after err: not for
// context cancellation/deadline, Permanent-marked errors, recovered
// panics, or errors that self-report Temporary() == false.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var ie *InternalError
	if errors.As(err, &ie) {
		return false
	}
	for e := err; e != nil; e = errors.Unwrap(e) {
		if _, ok := e.(*permanentError); ok {
			return false
		}
		if t, ok := e.(interface{ Temporary() bool }); ok {
			return t.Temporary()
		}
	}
	return true
}
