// Package core is the public façade of the library: the Engine ties the
// substrates together into the paper's workflow — register per-owner
// sources, attach PLAs at any of the four levels, run guarded ETL into
// the warehouse, define reports, derive and approve meta-reports, render
// reports with full enforcement and auditing, check compliance statically,
// generate PLA-derived test suites, and resolve disputes via provenance.
package core

import (
	"fmt"
	"strings"

	"plabi/internal/audit"
	"plabi/internal/enforce"
	"plabi/internal/etl"
	"plabi/internal/metadata"
	"plabi/internal/metareport"
	"plabi/internal/policy"
	"plabi/internal/provenance"
	"plabi/internal/relation"
	"plabi/internal/report"
	"plabi/internal/sql"
)

// Engine is one privacy-aware BI deployment.
type Engine struct {
	Sources  map[string]*etl.Source
	Policies *policy.Registry
	Metadata *metadata.Store
	Catalog  *sql.Catalog
	Tracer   *provenance.Tracer
	Graph    *provenance.Graph
	Reports  *report.Registry
	Metas    []*metareport.MetaReport
	Assign   map[string]string
	Audit    *audit.Log

	enforcer *enforce.ReportEnforcer
}

// New returns an empty engine.
func New() *Engine {
	e := &Engine{
		Sources:  map[string]*etl.Source{},
		Policies: policy.NewRegistry(),
		Metadata: metadata.NewStore(),
		Catalog:  sql.NewCatalog(),
		Tracer:   provenance.NewTracer(),
		Graph:    provenance.NewGraph(),
		Reports:  report.NewRegistry(),
		Assign:   map[string]string{},
		Audit:    audit.NewLog(),
	}
	e.enforcer = enforce.NewReportEnforcer(e.Policies, e.Catalog, e.Tracer)
	e.enforcer.ExtraScopes = e.Assign2Scopes()
	return e
}

// AddSource registers a data provider; its tables become traceable
// provenance bases and queryable catalog entries.
func (e *Engine) AddSource(src *etl.Source) {
	e.Sources[strings.ToLower(src.Name)] = src
	for _, t := range src.Tables {
		e.Catalog.Register(t)
		e.Tracer.RegisterBase(t)
		e.Audit.Append(audit.Event{Kind: "register", Actor: src.Owner, Object: t.Name,
			Detail: fmt.Sprintf("%d rows", t.NumRows())})
	}
}

// AddPLAs parses a PLA DSL document and registers every block.
func (e *Engine) AddPLAs(dsl string) error {
	plas, err := policy.ParseFile(dsl)
	if err != nil {
		return err
	}
	for _, p := range plas {
		if err := e.Policies.Add(p); err != nil {
			return err
		}
		e.Audit.Append(audit.Event{Kind: "pla", Actor: p.Owner, Object: p.ID,
			Detail: fmt.Sprintf("level=%s scope=%s atoms=%d", p.Level, p.Scope, p.Atoms())})
	}
	return nil
}

// RunETL executes a pipeline with the PLA guard, recording every step in
// the audit log and registering staging outputs in the catalog and
// tracer. When continueOnViolation is true, blocked steps are skipped and
// recorded while the rest of the pipeline proceeds.
func (e *Engine) RunETL(p *etl.Pipeline, continueOnViolation bool) (etl.Result, error) {
	ctx := etl.NewContext(enforce.NewPLAGuard(e.Policies))
	ctx.Graph = e.Graph
	ctx.Observe = func(step, op, output string, rowsIn, rowsOut int, err error) {
		ev := audit.Event{Kind: "transform", Actor: step, Object: output,
			Detail: fmt.Sprintf("%s %d->%d rows", op, rowsIn, rowsOut)}
		if err != nil {
			ev.Kind = "violation"
			ev.Detail = err.Error()
		}
		e.Audit.Append(ev)
	}
	res, err := p.Run(ctx, continueOnViolation)
	// Register every staging output for reporting and tracing.
	for name, t := range ctx.Staging {
		reg := t
		if reg.Name != name {
			reg = t.Clone()
			reg.Name = name
		}
		e.Catalog.Register(reg)
		if reg.Base {
			e.Tracer.RegisterBase(reg)
		}
	}
	return res, err
}

// DefineReport registers a report definition.
func (e *Engine) DefineReport(d *report.Definition) error {
	if err := e.Reports.Create(d); err != nil {
		return err
	}
	e.Audit.Append(audit.Event{Kind: "report", Object: d.ID, Detail: d.Query})
	return nil
}

// DeriveMetaReports computes the minimal covering meta-report set for the
// current portfolio and marks the metas approved (standing in for the
// owners' sign-off).
func (e *Engine) DeriveMetaReports() ([]*metareport.MetaReport, error) {
	metas, assign, err := metareport.Derive(e.Catalog, e.Reports.All())
	if err != nil {
		return nil, err
	}
	for _, m := range metas {
		m.Approved = true
	}
	e.Metas = metas
	e.Assign = assign
	e.enforcer.ExtraScopes = e.Assign2Scopes()
	for _, m := range metas {
		e.Audit.Append(audit.Event{Kind: "metareport", Object: m.ID, Detail: m.Query})
	}
	return metas, nil
}

// Assign2Scopes converts the report->meta assignment into the enforcer's
// extra-scope map.
func (e *Engine) Assign2Scopes() map[string][]string {
	out := map[string][]string{}
	for rid, mid := range e.Assign {
		out[rid] = append(out[rid], mid)
	}
	return out
}

// CheckReportCompliance statically checks a report (by id) for the given
// consumer: derivability from an approved meta-report (when metas exist)
// and PLA compliance of the definition.
func (e *Engine) CheckReportCompliance(reportID string, c report.Consumer) ([]enforce.Decision, error) {
	d, ok := e.Reports.Get(reportID)
	if !ok {
		return nil, fmt.Errorf("core: unknown report %q", reportID)
	}
	var out []enforce.Decision
	if len(e.Metas) > 0 {
		covering, cont, err := metareport.CoveringMeta(e.Catalog, d, e.Metas)
		if err != nil {
			return nil, err
		}
		if covering == nil {
			out = append(out, enforce.Decision{
				Outcome: enforce.Block, Rule: "meta-derivability", Subject: d.ID,
				Detail: strings.Join(cont.Reasons, "; "),
			})
		} else if e.Assign[d.ID] == "" {
			e.Assign[d.ID] = covering.ID
			e.enforcer.ExtraScopes = e.Assign2Scopes()
		}
	}
	static, err := e.enforcer.StaticCheck(d, c.Role, c.Purpose)
	if err != nil {
		return nil, err
	}
	return append(out, static...), nil
}

// Render renders a report with full enforcement for the consumer,
// recording the render and every decision in the audit log.
func (e *Engine) Render(reportID string, c report.Consumer) (*enforce.Enforced, error) {
	d, ok := e.Reports.Get(reportID)
	if !ok {
		return nil, fmt.Errorf("core: unknown report %q", reportID)
	}
	enf, err := e.enforcer.Render(d, c)
	if err != nil {
		return nil, err
	}
	if sel, perr := d.Parse(); perr == nil {
		inputs := []string{strings.ToLower(sel.From.Name)}
		for _, j := range sel.Joins {
			inputs = append(inputs, strings.ToLower(j.Table.Name))
		}
		e.Graph.AddStep("render", inputs, d.ID, "consumer "+c.Name, 0, enf.Table.NumRows())
	}
	e.Audit.Append(audit.Event{Kind: "render", Actor: c.Name, Object: reportID,
		Detail: fmt.Sprintf("role=%s purpose=%s rows=%d masked=%d suppressed=%d",
			c.Role, c.Purpose, enf.Table.NumRows(), enf.MaskedCells, enf.SuppressedRows)})
	for _, dec := range enf.Decisions {
		e.Audit.Decision(c.Name, reportID, dec)
	}
	return enf, nil
}

// ComplianceSuite generates the PLA-derived test suite for one report and
// consumer (§6: policies testable before operation).
func (e *Engine) ComplianceSuite(reportID string, c report.Consumer) ([]metareport.ComplianceTest, error) {
	d, ok := e.Reports.Get(reportID)
	if !ok {
		return nil, fmt.Errorf("core: unknown report %q", reportID)
	}
	return metareport.GenerateTests(e.Policies, e.Catalog, e.Tracer, d, c, e.Assign2Scopes()[reportID])
}

// Auditor returns the dispute-resolution auditor over this engine's
// state.
func (e *Engine) Auditor() *audit.Auditor {
	return &audit.Auditor{Registry: e.Policies, Tracer: e.Tracer, Graph: e.Graph}
}

// SourceEnforcer returns the Fig. 2a release filter over this engine's
// policies and metadata.
func (e *Engine) SourceEnforcer() *enforce.SourceEnforcer {
	return &enforce.SourceEnforcer{Registry: e.Policies, Metadata: e.Metadata}
}

// QueryRewriter returns the VPD-style rewriter over this engine's
// policies and catalog.
func (e *Engine) QueryRewriter() *enforce.QueryRewriter {
	return enforce.NewQueryRewriter(e.Policies, e.Catalog)
}

// ViewManager returns the §3 view-based access-control manager: per-role
// views over the registered tables embodying the PLA rewriting.
func (e *Engine) ViewManager() *enforce.ViewManager {
	return enforce.NewViewManager(e.Policies, e.Catalog)
}

// Enforcer exposes the report enforcer (for advanced callers and the
// experiment harness).
func (e *Engine) Enforcer() *enforce.ReportEnforcer { return e.enforcer }

// Table is a convenience accessor for any registered relation.
func (e *Engine) Table(name string) (*relation.Table, bool) { return e.Catalog.Table(name) }
