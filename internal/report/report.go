// Package report implements the reporting layer of the BI stack: report
// definitions as queries over the warehouse, consumers with roles and
// purposes, plain rendering, and — central to the paper's robustness
// challenge (§2 iii) — report evolution operations with an event log, so
// the stability of PLAs under report change can be measured (Fig. 5).
package report

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"plabi/internal/relation"
	"plabi/internal/sql"
)

// ErrUnknownReport is the sentinel wrapped by every "no such report"
// failure across the stack, matchable with errors.Is.
var ErrUnknownReport = errors.New("unknown report")

// Consumer is an information consumer requesting reports.
type Consumer struct {
	Name    string
	Role    string // e.g. analyst, auditor, manager
	Purpose string // e.g. reimbursement, quality
}

// Definition is one report: a SQL query over the warehouse (or over a
// meta-report), plus delivery metadata.
type Definition struct {
	ID      string
	Title   string
	Query   string
	Roles   []string // roles the report is delivered to
	Purpose string
	Version int
}

// clone returns a shallow copy of the definition with its own slice of
// roles, used for copy-on-write evolution: readers holding the previous
// pointer keep a consistent snapshot.
func (d *Definition) clone() *Definition {
	c := *d
	c.Roles = append([]string(nil), d.Roles...)
	return &c
}

// Parse returns the parsed SELECT of the current query.
func (d *Definition) Parse() (*sql.SelectStmt, error) {
	sel, err := sql.ParseSelect(d.Query)
	if err != nil {
		return nil, fmt.Errorf("report %s: %w", d.ID, err)
	}
	return sel, nil
}

// Render executes the report against the catalog with no privacy
// enforcement — the raw result the enforcement layer then filters.
func (d *Definition) Render(c *sql.Catalog) (*relation.Table, error) {
	res, err := c.Query(d.Query)
	if err != nil {
		return nil, fmt.Errorf("report %s: %w", d.ID, err)
	}
	res.Name = d.ID
	return res, nil
}

// EventKind enumerates report-evolution events.
type EventKind int

// Evolution event kinds.
const (
	EvCreate EventKind = iota
	EvDelete
	EvAddColumn
	EvRemoveColumn
	EvChangeFilter
	EvChangeGrouping
)

var eventNames = map[EventKind]string{
	EvCreate: "create", EvDelete: "delete", EvAddColumn: "add-column",
	EvRemoveColumn: "remove-column", EvChangeFilter: "change-filter",
	EvChangeGrouping: "change-grouping",
}

// String returns the event kind name.
func (k EventKind) String() string { return eventNames[k] }

// Event is one recorded evolution step.
type Event struct {
	Seq      int
	Kind     EventKind
	ReportID string
	Detail   string
}

// Registry stores report definitions and their evolution history. It is
// safe for concurrent use.
type Registry struct {
	mu      sync.RWMutex
	reports map[string]*Definition
	events  []Event
}

// NewRegistry returns an empty report registry.
func NewRegistry() *Registry {
	return &Registry{reports: map[string]*Definition{}}
}

func (r *Registry) log(kind EventKind, id, detail string) {
	r.events = append(r.events, Event{Seq: len(r.events), Kind: kind, ReportID: id, Detail: detail})
}

// Create validates and registers a new report.
func (r *Registry) Create(d *Definition) error {
	if d.ID == "" {
		return fmt.Errorf("report: empty id")
	}
	if _, err := sql.ParseSelect(d.Query); err != nil {
		return fmt.Errorf("report %s: invalid query: %w", d.ID, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.reports[d.ID]; dup {
		return fmt.Errorf("report: duplicate id %q", d.ID)
	}
	d.Version = 1
	r.reports[d.ID] = d
	r.log(EvCreate, d.ID, d.Query)
	return nil
}

// Delete removes a report.
func (r *Registry) Delete(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.reports[id]; !ok {
		return fmt.Errorf("report: %w %q", ErrUnknownReport, id)
	}
	delete(r.reports, id)
	r.log(EvDelete, id, "")
	return nil
}

// Get returns the report definition.
func (r *Registry) Get(id string) (*Definition, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.reports[id]
	return d, ok
}

// All returns every definition sorted by id.
func (r *Registry) All() []*Definition {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Definition, 0, len(r.reports))
	for _, d := range r.reports {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Events returns the evolution history.
func (r *Registry) Events() []Event {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]Event(nil), r.events...)
}

// mutate parses, transforms, re-renders and bumps a report's query.
// The stored definition is replaced copy-on-write: renders holding the
// previous *Definition keep a consistent (query, version) snapshot while
// the registry moves on.
func (r *Registry) mutate(id string, kind EventKind, detail string, fn func(*sql.SelectStmt) error) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	d, ok := r.reports[id]
	if !ok {
		return fmt.Errorf("report: %w %q", ErrUnknownReport, id)
	}
	sel, err := sql.ParseSelect(d.Query)
	if err != nil {
		return fmt.Errorf("report %s: %w", id, err)
	}
	if err := fn(sel); err != nil {
		return fmt.Errorf("report %s: %w", id, err)
	}
	newQuery := sel.String()
	if _, err := sql.ParseSelect(newQuery); err != nil {
		return fmt.Errorf("report %s: mutation produced invalid query %q: %w", id, newQuery, err)
	}
	next := d.clone()
	next.Query = newQuery
	next.Version++
	r.reports[id] = next
	r.log(kind, id, detail)
	return nil
}

// AddColumn appends a select item (SQL expression, optionally aggregated)
// to the report.
func (r *Registry) AddColumn(id, exprSQL, alias string) error {
	return r.mutate(id, EvAddColumn, exprSQL, func(sel *sql.SelectStmt) error {
		// Parse the expression by wrapping it in a probe query so
		// aggregate calls are accepted.
		probe, err := sql.ParseSelect("SELECT " + exprSQL + " FROM probe")
		if err != nil {
			return fmt.Errorf("bad column expression %q: %w", exprSQL, err)
		}
		item := probe.Items[0]
		item.Alias = alias
		sel.Items = append(sel.Items, item)
		return nil
	})
}

// RemoveColumn removes the select item with the given output name.
func (r *Registry) RemoveColumn(id, name string) error {
	return r.mutate(id, EvRemoveColumn, name, func(sel *sql.SelectStmt) error {
		for i, it := range sel.Items {
			if strings.EqualFold(it.OutName(), name) {
				if len(sel.Items) == 1 {
					return fmt.Errorf("cannot remove the last column")
				}
				sel.Items = append(sel.Items[:i], sel.Items[i+1:]...)
				// Drop ORDER BY terms referencing the removed column.
				var kept []sql.OrderItem
				for _, o := range sel.OrderBy {
					if !strings.EqualFold(o.Col, name) {
						kept = append(kept, o)
					}
				}
				sel.OrderBy = kept
				return nil
			}
		}
		return fmt.Errorf("no column %q", name)
	})
}

// SetFilter replaces the WHERE clause ("" clears it).
func (r *Registry) SetFilter(id, whereSQL string) error {
	return r.mutate(id, EvChangeFilter, whereSQL, func(sel *sql.SelectStmt) error {
		if whereSQL == "" {
			sel.Where = nil
			return nil
		}
		e, err := sql.ParseExpr(whereSQL)
		if err != nil {
			return fmt.Errorf("bad filter %q: %w", whereSQL, err)
		}
		sel.Where = e
		return nil
	})
}

// SetGrouping replaces the GROUP BY columns (the select list must already
// be compatible: non-aggregate items must appear in the new grouping).
func (r *Registry) SetGrouping(id string, cols []string) error {
	return r.mutate(id, EvChangeGrouping, strings.Join(cols, ","), func(sel *sql.SelectStmt) error {
		sel.GroupBy = nil
		for _, c := range cols {
			e, err := sql.ParseExpr(c)
			if err != nil {
				return fmt.Errorf("bad group key %q: %w", c, err)
			}
			sel.GroupBy = append(sel.GroupBy, e)
		}
		return nil
	})
}

// FormatTable renders a result table with a title header, the textual
// "delivered report" form.
func FormatTable(title string, t *relation.Table) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	b.WriteString(strings.Repeat("=", len(title)) + "\n")
	b.WriteString(t.String())
	return b.String()
}
