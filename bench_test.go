// Package plabi's root benchmark harness: one benchmark per experiment in
// DESIGN.md's index (E1–E11, regenerating each figure-level claim of the
// paper), plus micro-benchmarks of the substrate operations the
// experiments are built on.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package plabi

import (
	"fmt"
	"os"
	"testing"

	"plabi/internal/anon"
	"plabi/internal/core"
	"plabi/internal/elicit"
	"plabi/internal/experiments"
	"plabi/internal/obs"
	"plabi/internal/relation"
	"plabi/internal/report"
	"plabi/internal/workload"
)

// benchExperiment runs one full experiment per iteration; the reported
// time is the cost of regenerating that figure end to end.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Lines) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkE1Pipeline regenerates Fig. 1: the end-to-end outsourced BI
// pipeline under PLAs at three scales.
func BenchmarkE1Pipeline(b *testing.B) { benchExperiment(b, "e1") }

// BenchmarkE2SourceEnforcement regenerates Fig. 2: source-level consent
// metadata, intensional associations, and the release filter.
func BenchmarkE2SourceEnforcement(b *testing.B) { benchExperiment(b, "e2") }

// BenchmarkE3ETLEnforcement regenerates Fig. 3: ETL-level join and
// integration permissions with lineage capture.
func BenchmarkE3ETLEnforcement(b *testing.B) { benchExperiment(b, "e3") }

// BenchmarkE4ReportEnforcement regenerates Fig. 4: the golden
// drug-consumption report with threshold sweep and the HIV condition.
func BenchmarkE4ReportEnforcement(b *testing.B) { benchExperiment(b, "e4") }

// BenchmarkE5Continuum regenerates Fig. 5: ease of elicitation vs
// stability across the four levels and four portfolio sizes.
func BenchmarkE5Continuum(b *testing.B) { benchExperiment(b, "e5") }

// BenchmarkE6OverEngineering regenerates the §3 over-engineering claim.
func BenchmarkE6OverEngineering(b *testing.B) { benchExperiment(b, "e6") }

// BenchmarkE7TestGeneration regenerates the §5–6 claim: PLA-derived test
// suites detect injected compliance bugs before deployment.
func BenchmarkE7TestGeneration(b *testing.B) { benchExperiment(b, "e7") }

// BenchmarkE8Anonymization regenerates the Fig. 2a anonymizing-release
// study: privacy guarantees vs aggregate utility.
func BenchmarkE8Anonymization(b *testing.B) { benchExperiment(b, "e8") }

// BenchmarkE9PlacementAblation regenerates the enforcement-placement
// ablation (source rewrite vs warehouse vs report-level).
func BenchmarkE9PlacementAblation(b *testing.B) { benchExperiment(b, "e9") }

// BenchmarkE10Granularity regenerates the §5 meta-report granularity
// ablation (narrow report-like metas vs one warehouse-like wide view).
func BenchmarkE10Granularity(b *testing.B) { benchExperiment(b, "e10") }

// BenchmarkE11Linkage regenerates the linkage-attack evaluation of the
// anonymizing release (raw vs k-anonymous vs k+l releases).
func BenchmarkE11Linkage(b *testing.B) { benchExperiment(b, "e11") }

// --- substrate micro-benchmarks ---

func benchDataset(b *testing.B, n int) *workload.Dataset {
	cfg := workload.DefaultConfig(42)
	cfg.Prescriptions = n
	cfg.Patients = n / 10
	cfg.LabResults = n / 10
	ds, err := workload.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

// BenchmarkRelationJoin measures the hash equi-join with lineage
// propagation.
func BenchmarkRelationJoin(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ds := benchDataset(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, err := relation.Join(relation.Rename(ds.Prescriptions, "p"),
					relation.Rename(ds.DrugCost, "c"),
					relation.Eq(relation.ColRefExpr("p.drug"), relation.ColRefExpr("c.drug")),
					relation.InnerJoin)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRelationGroupBy measures aggregation with lineage-union per
// group (the basis of threshold enforcement).
func BenchmarkRelationGroupBy(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ds := benchDataset(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, err := relation.GroupBy(ds.Prescriptions, []string{"drug"},
					[]relation.AggSpec{{Kind: relation.AggCount}})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKAnonymize measures Mondrian k-anonymization.
func BenchmarkKAnonymize(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			cfg := workload.DefaultConfig(42)
			cfg.Patients = n
			ds, err := workload.Generate(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, _, err := anon.KAnonymize(ds.Residents, 5, []string{"age", "zip"})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEnforcedRender measures one fully enforced report render
// (query + provenance + PLA decisions) on the standard scenario.
func BenchmarkEnforcedRender(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			cfg := workload.DefaultConfig(42)
			cfg.Prescriptions = n
			cfg.Patients = n / 10
			e, _, err := core.BuildHealthcareEngine(cfg)
			if err != nil {
				b.Fatal(err)
			}
			c := report.Consumer{Name: "ana", Role: "analyst", Purpose: "quality"}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Render("drug-consumption", c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkElicitationSimulation measures one full Fig. 5 evolution
// simulation (200 events over a 25-report portfolio).
func BenchmarkElicitationSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := elicit.BuildHealthcareScenario(42, 25)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := elicit.SimulateEvolution(s, 200, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// benchRenderEngine builds the standard scenario for the render-path
// benchmarks.
func benchRenderEngine(b *testing.B, n int) *core.Engine {
	b.Helper()
	cfg := workload.DefaultConfig(42)
	cfg.Prescriptions = n
	cfg.Patients = n / 10
	e, _, err := core.BuildHealthcareEngine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkSequentialRender is the single-goroutine baseline for
// BenchmarkConcurrentRender: the same cached render loop, no parallelism
// anywhere (one render worker, one goroutine).
func BenchmarkSequentialRender(b *testing.B) {
	e := benchRenderEngine(b, 5000)
	e.SetWorkers(1)
	c := report.Consumer{Name: "ana", Role: "analyst", Purpose: "quality"}
	if _, err := e.Render("drug-consumption", c); err != nil {
		b.Fatal(err) // warm the decision cache
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Render("drug-consumption", c); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportCacheRate(b, e)
	maybeWriteObs(b, e)
}

// BenchmarkConcurrentRender drives the enforced render path from many
// goroutines at once (b.RunParallel): the sharded decision cache serves
// the plan, so per-render work is execution + row enforcement only.
// Compare with BenchmarkSequentialRender for the concurrency speedup.
func BenchmarkConcurrentRender(b *testing.B) {
	e := benchRenderEngine(b, 5000)
	e.SetWorkers(1) // per-render serial: scaling comes from goroutines
	consumers := []report.Consumer{
		{Name: "a1", Role: "analyst", Purpose: "quality"},
		{Name: "a2", Role: "auditor", Purpose: "quality"},
	}
	for _, c := range consumers {
		if _, err := e.Render("drug-consumption", c); err != nil {
			b.Fatal(err) // warm the decision cache
		}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			c := consumers[i%len(consumers)]
			i++
			if _, err := e.Render("drug-consumption", c); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	stats := e.CacheStats()
	if stats.Hits == 0 {
		b.Fatal("concurrent render benchmark must hit the decision cache")
	}
	reportCacheRate(b, e)
	maybeWriteObs(b, e)
}

// BenchmarkParallelRowEnforcement measures one large render with the
// bounded worker pool enforcing row chunks in parallel, against the same
// render forced serial.
func BenchmarkParallelRowEnforcement(b *testing.B) {
	for _, workers := range []int{1, 0} { // 1 = serial, 0 = one per CPU
		name := "serial"
		if workers == 0 {
			name = "pooled"
		}
		b.Run(name, func(b *testing.B) {
			e := benchRenderEngine(b, 20000)
			e.SetWorkers(workers)
			c := report.Consumer{Name: "aud", Role: "auditor", Purpose: "quality"}
			if _, err := e.Render("patient-activity", c); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Render("patient-activity", c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func reportCacheRate(b *testing.B, e *core.Engine) {
	b.Helper()
	stats := e.CacheStats()
	b.ReportMetric(stats.HitRate(), "cache-hit-rate")
	b.ReportMetric(float64(stats.Hits), "cache-hits")
}

// maybeWriteObs dumps the engine's merged metrics snapshot to the file
// named by $BENCH_OBS (make bench sets BENCH_obs.json), so benchmark runs
// leave a machine-readable observability artifact next to the timings.
func maybeWriteObs(b *testing.B, e *core.Engine) {
	b.Helper()
	path := os.Getenv("BENCH_OBS")
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		b.Fatalf("BENCH_OBS: %v", err)
	}
	defer f.Close()
	if err := obs.WriteSnapshotJSON(f, e.MetricsSnapshot()); err != nil {
		b.Fatalf("BENCH_OBS: %v", err)
	}
}
