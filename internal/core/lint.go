package core

import (
	"plabi/internal/lint"
)

// Lint statically analyzes the whole deployment — agreements, catalog,
// reports, meta-report assignments and recorded ETL plans — without
// executing any data flow, and returns the findings in deterministic
// order. Metrics are emitted to the engine's observability registry
// under lint.*.
func (e *Engine) Lint() []lint.Finding {
	return lint.Run(&lint.Pass{
		Registry:  e.Policies,
		Catalog:   e.Catalog,
		Reports:   e.Reports.All(),
		Metas:     e.MetaReports(),
		Assign:    e.Assignments(),
		Pipelines: e.Pipelines(),
		Owners:    e.SourceOwners(),
		Metrics:   e.Obs(),
	})
}
