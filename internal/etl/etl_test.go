package etl

import (
	"errors"
	"strings"
	"testing"

	"plabi/internal/relation"
	"plabi/internal/workload"
)

// denyGuard forbids one join pair and one integration beneficiary.
type denyGuard struct {
	joinA, joinB string
	beneficiary  string
}

func (g denyGuard) CheckJoin(l, r string) error {
	if (l == g.joinA && r == g.joinB) || (l == g.joinB && r == g.joinA) {
		return errors.New("forbidden by PLA")
	}
	return nil
}

func (g denyGuard) CheckIntegration(donor, beneficiary string) error {
	if beneficiary == g.beneficiary {
		return errors.New("forbidden by PLA")
	}
	return nil
}

func sources() (*Source, *Source, *Source) {
	hosp := NewSource("hospital", "hospital", workload.PrescriptionsFixture())
	fam := NewSource("familydoctors", "familydoctors", workload.FamilyDoctorFixture())
	agency := NewSource("healthagency", "healthagency", workload.DrugCostFixture())
	return hosp, fam, agency
}

func TestExtractAndTransform(t *testing.T) {
	hosp, _, _ := sources()
	c := NewContext(nil)
	p := &Pipeline{Name: "test", Steps: []Step{
		NewExtract("ext", hosp, "prescriptions", ""),
		NewFilter("flt", "prescriptions", "asthma_only", relation.ColEqStr("disease", "asthma")),
		NewProject("prj", "asthma_only", "slim", "patient", "drug"),
	}}
	res, err := p.Run(c, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.StepsRun != 3 {
		t.Errorf("steps = %d", res.StepsRun)
	}
	out, err := c.Get("slim")
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 || out.Schema.Len() != 2 {
		t.Errorf("out = %v", out.Rows)
	}
	// Lineage must reach the original source rows.
	if !out.RowLineage(0).Contains(relation.RowRef{Table: "prescriptions", Row: 2}) {
		t.Errorf("lineage = %v", out.RowLineage(0))
	}
	// The graph recorded all steps.
	if steps := c.Graph.Upstream("slim"); len(steps) != 3 {
		t.Errorf("graph steps = %d", len(steps))
	}
}

func TestCleanse(t *testing.T) {
	dirty := relation.NewBase("d", relation.NewSchema(relation.Col("name", relation.TString)))
	dirty.AppendVals(relation.Str("  Alice   Rossi "))
	src := NewSource("s", "s", dirty)
	c := NewContext(nil)
	p := &Pipeline{Steps: []Step{
		NewExtract("e", src, "d", ""),
		NewCleanse("c", "d", "clean", "name"),
	}}
	if _, err := p.Run(c, false); err != nil {
		t.Fatal(err)
	}
	out, _ := c.Get("clean")
	if out.Get(0, "name").S != "Alice Rossi" {
		t.Errorf("cleansed = %q", out.Get(0, "name").S)
	}
}

func TestJoinAllowed(t *testing.T) {
	hosp, _, agency := sources()
	c := NewContext(denyGuard{joinA: "prescriptions", joinB: "familydoctor"})
	p := &Pipeline{Steps: []Step{
		NewExtract("e1", hosp, "prescriptions", ""),
		NewExtract("e2", agency, "drugcost", ""),
		NewJoin("j", "prescriptions", "drugcost",
			relation.Eq(relation.ColRefExpr("l.drug"), relation.ColRefExpr("r.drug")),
			relation.InnerJoin, "joined"),
	}}
	if _, err := p.Run(c, false); err != nil {
		t.Fatal(err)
	}
	out, _ := c.Get("joined")
	if out.NumRows() != 5 {
		t.Errorf("joined rows = %d", out.NumRows())
	}
	if !out.Schema.HasColumn("cost") {
		t.Errorf("schema = %s", out.Schema)
	}
}

// TestForbiddenJoinBlocked reproduces Fig. 3b: the ETL annotation forbids
// joining Prescriptions with Familydoctor, and the engine blocks it.
func TestForbiddenJoinBlocked(t *testing.T) {
	hosp, fam, _ := sources()
	c := NewContext(denyGuard{joinA: "prescriptions", joinB: "familydoctor"})
	p := &Pipeline{Steps: []Step{
		NewExtract("e1", hosp, "prescriptions", ""),
		NewExtract("e2", fam, "familydoctor", ""),
		NewJoin("j", "prescriptions", "familydoctor",
			relation.Eq(relation.ColRefExpr("l.patient"), relation.ColRefExpr("r.patient")),
			relation.InnerJoin, "joined"),
	}}
	res, err := p.Run(c, false)
	if err == nil || !IsViolation(err) {
		t.Fatalf("expected violation, got %v", err)
	}
	if len(res.Violations) != 1 {
		t.Errorf("violations = %v", res.Violations)
	}
	if _, gerr := c.Get("joined"); gerr == nil {
		t.Error("blocked join must not produce output")
	}
	var v *ViolationError
	if !errors.As(err, &v) || v.Rule != "join-permission" {
		t.Errorf("violation = %v", err)
	}
}

// TestForbiddenJoinCaughtAfterTransformation verifies the guard sees base
// tables through intermediate transformations.
func TestForbiddenJoinCaughtAfterTransformation(t *testing.T) {
	hosp, fam, _ := sources()
	c := NewContext(denyGuard{joinA: "prescriptions", joinB: "familydoctor"})
	p := &Pipeline{Steps: []Step{
		NewExtract("e1", hosp, "prescriptions", ""),
		NewExtract("e2", fam, "familydoctor", ""),
		NewProject("p1", "prescriptions", "slim", "patient", "drug"),
		NewJoin("j", "slim", "familydoctor",
			relation.Eq(relation.ColRefExpr("l.patient"), relation.ColRefExpr("r.patient")),
			relation.InnerJoin, "joined"),
	}}
	_, err := p.Run(c, false)
	if !IsViolation(err) {
		t.Fatalf("expected violation through transformation, got %v", err)
	}
}

func TestContinueOnViolation(t *testing.T) {
	hosp, fam, agency := sources()
	c := NewContext(denyGuard{joinA: "prescriptions", joinB: "familydoctor"})
	p := &Pipeline{Steps: []Step{
		NewExtract("e1", hosp, "prescriptions", ""),
		NewExtract("e2", fam, "familydoctor", ""),
		NewExtract("e3", agency, "drugcost", ""),
		NewJoin("bad", "prescriptions", "familydoctor",
			relation.Eq(relation.ColRefExpr("l.patient"), relation.ColRefExpr("r.patient")),
			relation.InnerJoin, "bad_out"),
		NewJoin("good", "prescriptions", "drugcost",
			relation.Eq(relation.ColRefExpr("l.drug"), relation.ColRefExpr("r.drug")),
			relation.InnerJoin, "good_out"),
	}}
	res, err := p.Run(c, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 1 || res.StepsRun != 4 {
		t.Errorf("violations=%d steps=%d", len(res.Violations), res.StepsRun)
	}
	if _, gerr := c.Get("good_out"); gerr != nil {
		t.Error("good join should have run")
	}
}

func TestEntityResolution(t *testing.T) {
	// Dirty familydoctor names resolved against the canonical hospital
	// patient list.
	canon := relation.NewBase("residents", relation.NewSchema(relation.Col("patient", relation.TString)))
	for _, n := range []string{"Alice Rossi", "Bruno Verdi", "Carla Bianchi"} {
		canon.AppendVals(relation.Str(n))
	}
	dirty := relation.NewBase("familydoctor", relation.NewSchema(
		relation.Col("patient", relation.TString),
		relation.Col("doctor", relation.TString),
	))
	dirty.AppendVals(relation.Str("Alice Rosi"), relation.Str("Dr. A"))  // typo
	dirty.AppendVals(relation.Str("BRUNO verdi"), relation.Str("Dr. B")) // case
	dirty.AppendVals(relation.Str("Zoe Unknown"), relation.Str("Dr. C")) // no match

	c := NewContext(nil)
	c.Put("residents", canon)
	c.Put("familydoctor", dirty)
	er := NewEntityResolution("er", "familydoctor", "patient", "residents", "patient",
		"familydoctors", 0.9, "resolved")
	p := &Pipeline{Steps: []Step{er}}
	if _, err := p.Run(c, false); err != nil {
		t.Fatal(err)
	}
	out, _ := c.Get("resolved")
	if out.Get(0, "patient").S != "Alice Rossi" {
		t.Errorf("typo not resolved: %q", out.Get(0, "patient").S)
	}
	if out.Get(1, "patient").S != "Bruno Verdi" {
		t.Errorf("case not resolved: %q", out.Get(1, "patient").S)
	}
	if out.Get(2, "patient").S != "Zoe Unknown" {
		t.Errorf("unmatched must stay: %q", out.Get(2, "patient").S)
	}
	if er.Resolved != 2 || er.Unmatched != 1 {
		t.Errorf("stats: resolved=%d unmatched=%d", er.Resolved, er.Unmatched)
	}
}

// TestIntegrationForbidden reproduces §5 v: the donor's PLA forbids using
// its data to clean the beneficiary's data.
func TestIntegrationForbidden(t *testing.T) {
	canon := relation.NewBase("residents", relation.NewSchema(relation.Col("patient", relation.TString)))
	canon.AppendVals(relation.Str("Alice Rossi"))
	dirty := relation.NewBase("familydoctor", relation.NewSchema(relation.Col("patient", relation.TString)))
	dirty.AppendVals(relation.Str("Alice Rosi"))

	c := NewContext(denyGuard{beneficiary: "familydoctors"})
	c.Put("residents", canon)
	c.Put("familydoctor", dirty)
	er := NewEntityResolution("er", "familydoctor", "patient", "residents", "patient",
		"familydoctors", 0.9, "resolved")
	_, err := (&Pipeline{Steps: []Step{er}}).Run(c, false)
	if !IsViolation(err) {
		t.Fatalf("expected integration violation, got %v", err)
	}
	if !strings.Contains(err.Error(), "integration-permission") {
		t.Errorf("err = %v", err)
	}
}

func TestEntityResolutionAtScale(t *testing.T) {
	cfg := workload.DefaultConfig(11)
	cfg.Patients = 300
	cfg.DirtyRate = 0.3
	ds, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}

	c := NewContext(nil)
	c.Put("residents", ds.Residents)
	c.Put("familydoctor", ds.FamilyDoctor)
	er := NewEntityResolution("er", "familydoctor", "patient", "residents", "patient",
		"familydoctors", 0.88, "resolved")
	if _, err := (&Pipeline{Steps: []Step{er}}).Run(c, false); err != nil {
		t.Fatal(err)
	}
	out, _ := c.Get("resolved")
	clean := map[string]bool{}
	for _, n := range ds.PatientNames {
		clean[n] = true
	}
	bad := 0
	for i := 0; i < out.NumRows(); i++ {
		if !clean[out.Get(i, "patient").S] {
			bad++
		}
	}
	// At least 95% of references must resolve to canonical names.
	if float64(bad)/float64(out.NumRows()) > 0.05 {
		t.Errorf("%d/%d unresolved", bad, out.NumRows())
	}
	if er.Resolved == 0 {
		t.Error("expected some resolutions")
	}
}

func TestAggregateStep(t *testing.T) {
	hosp, _, _ := sources()
	c := NewContext(nil)
	p := &Pipeline{Steps: []Step{
		NewExtract("e", hosp, "prescriptions", ""),
		NewAggregate("agg", "prescriptions", "by_drug",
			[]string{"drug"}, []relation.AggSpec{{Kind: relation.AggCount, As: "n"}}),
	}}
	if _, err := p.Run(c, false); err != nil {
		t.Fatal(err)
	}
	out, _ := c.Get("by_drug")
	if out.NumRows() != 4 {
		t.Errorf("groups = %d", out.NumRows())
	}
}

func TestStepErrors(t *testing.T) {
	hosp, _, _ := sources()
	c := NewContext(nil)
	// Missing staging input.
	p := &Pipeline{Steps: []Step{NewFilter("f", "ghost", "out", relation.Lit(relation.Bool(true)))}}
	if _, err := p.Run(c, false); err == nil {
		t.Error("missing input must fail")
	}
	// Missing source table.
	p2 := &Pipeline{Steps: []Step{NewExtract("e", hosp, "nope", "")}}
	if _, err := p2.Run(NewContext(nil), false); err == nil {
		t.Error("missing source table must fail")
	}
	// Operational errors are not violations.
	if IsViolation(errors.New("boom")) {
		t.Error("plain error must not be a violation")
	}
}

func TestObserver(t *testing.T) {
	hosp, _, _ := sources()
	c := NewContext(nil)
	var events []string
	c.Observe = func(step, op, output string, in, out int, err error) {
		events = append(events, step+":"+op)
	}
	p := &Pipeline{Steps: []Step{
		NewExtract("e", hosp, "prescriptions", ""),
		NewProject("p", "prescriptions", "out", "patient"),
	}}
	if _, err := p.Run(c, false); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0] != "e:extract" || events[1] != "p:project" {
		t.Errorf("events = %v", events)
	}
}

func TestExtractWithAlias(t *testing.T) {
	hosp, _, _ := sources()
	c := NewContext(nil)
	p := &Pipeline{Steps: []Step{NewExtract("e", hosp, "prescriptions", "staging_rx")}}
	if _, err := p.Run(c, false); err != nil {
		t.Fatal(err)
	}
	out, err := c.Get("staging_rx")
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 5 {
		t.Errorf("rows = %d", out.NumRows())
	}
	// The extract records the fully-qualified input in the graph.
	steps := c.Graph.Upstream("staging_rx")
	if len(steps) != 1 || steps[0].Inputs[0] != "hospital.prescriptions" {
		t.Errorf("graph = %v", steps)
	}
}

func TestDeriveStep(t *testing.T) {
	hosp, _, _ := sources()
	c := NewContext(nil)
	p := &Pipeline{Steps: []Step{
		NewExtract("e", hosp, "prescriptions", ""),
		NewDerive("d", "prescriptions", "with_year", "year",
			relation.Fn("YEAR", relation.ColRefExpr("date"))),
	}}
	if _, err := p.Run(c, false); err != nil {
		t.Fatal(err)
	}
	out, _ := c.Get("with_year")
	if !out.Schema.HasColumn("year") || out.Get(0, "year").I != 2007 {
		t.Errorf("derive = %v", out.Rows[0])
	}
}
