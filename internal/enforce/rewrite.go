package enforce

import (
	"fmt"
	"strings"

	"plabi/internal/policy"
	"plabi/internal/relation"
	"plabi/internal/sql"
)

// QueryRewriter implements VPD-style automatic query rewriting (§3): a
// query arriving from a consumer is transparently modified so that it can
// only return PLA-compliant data — row filters become WHERE conjuncts,
// denied attributes are replaced by masked literals, and forbidden joins
// block the query outright.
type QueryRewriter struct {
	Registry *policy.Registry
	Catalog  *sql.Catalog
	// Levels are the PLA levels consulted; defaults to source only (the
	// classic VPD placement).
	Levels []policy.Level
}

// NewQueryRewriter builds a source-level rewriter.
func NewQueryRewriter(reg *policy.Registry, cat *sql.Catalog) *QueryRewriter {
	return &QueryRewriter{Registry: reg, Catalog: cat, Levels: []policy.Level{policy.LevelSource}}
}

func (r *QueryRewriter) compositeFor(tables []string) *policy.Composite {
	var plas []*policy.PLA
	seen := map[string]bool{}
	for _, lvl := range r.levels() {
		for _, p := range r.Registry.ForScopes(lvl, tables).PLAs {
			if !seen[p.ID] {
				seen[p.ID] = true
				plas = append(plas, p)
			}
		}
	}
	return policy.Compose(plas...)
}

func (r *QueryRewriter) levels() []policy.Level {
	if len(r.Levels) > 0 {
		return r.Levels
	}
	return []policy.Level{policy.LevelSource}
}

// Rewrite returns the PLA-compliant form of the query for the given role
// and purpose, along with the decisions applied. A Block decision means
// the query must not run at all (forbidden join); the returned statement
// is nil in that case.
func (r *QueryRewriter) Rewrite(sel *sql.SelectStmt, role, purpose string) (*sql.SelectStmt, []Decision, error) {
	prof, err := sql.ProfileQuery(r.Catalog, sel)
	if err != nil {
		return nil, nil, fmt.Errorf("enforce: rewrite: %w", err)
	}
	comp := r.compositeFor(prof.BaseTables)
	var decisions []Decision

	// 1. Forbidden joins block the query: each side's own PLAs must allow
	// joining with the other side.
	for _, jp := range prof.JoinPairs {
		compA := r.compositeFor([]string{jp.A})
		compB := r.compositeFor([]string{jp.B})
		if ok, reason := compA.JoinAllowed(jp.B); !ok {
			d := Decision{Outcome: Block, Rule: "join-permission",
				Subject: jp.A + " JOIN " + jp.B, Detail: reason}
			return nil, append(decisions, d), nil
		}
		if ok, reason := compB.JoinAllowed(jp.A); !ok {
			d := Decision{Outcome: Block, Rule: "join-permission",
				Subject: jp.B + " JOIN " + jp.A, Detail: reason}
			return nil, append(decisions, d), nil
		}
	}

	// 2. Clone the statement for rewriting.
	out, err := sql.ParseSelect(sel.String())
	if err != nil {
		return nil, nil, fmt.Errorf("enforce: rewrite reparse: %w", err)
	}

	// 3. Row filters become WHERE conjuncts.
	for _, f := range comp.Filters() {
		if !filterApplies(f, r.Catalog, prof.BaseTables) {
			continue
		}
		if out.Where == nil {
			out.Where = f
		} else {
			out.Where = relation.And(out.Where, f)
		}
		decisions = append(decisions, Decision{
			Outcome: SuppressRow, Rule: "row-filter", Subject: "WHERE",
			Detail: f.String(),
		})
	}

	// 4. Denied attributes are masked in the select list; intensional
	// conditions on allow rules become WHERE conjuncts (the source only
	// releases rows satisfying them — the VPD reading of the paper's §5
	// HIV example). With no PLAs in force at all the rewriter passes the
	// query through; once any PLA governs the involved tables, the closed
	// world applies: an attribute without an explicit allow is masked.
	if len(comp.PLAs) > 0 {
		// SELECT * must not bypass masking: expand stars into explicit
		// column items first.
		if err := r.expandStars(out); err != nil {
			return nil, decisions, err
		}
		seenCond := map[string]bool{}
		for i, it := range out.Items {
			if it.Star || it.Agg != nil {
				continue
			}
			name := strings.ToLower(it.OutName())
			origins := prof.OutputNames[name]
			d := comp.DecideAttributeRefs(attrRefs(name, origins), role, purpose)
			if d.Effect == policy.Deny {
				rule := "access-default-deny"
				if len(d.Matched) > 0 {
					rule = "access-deny"
				}
				out.Items[i] = sql.SelectItem{
					Expr:  relation.Lit(MaskValue),
					Alias: it.OutName(),
				}
				decisions = append(decisions, Decision{
					Outcome: Mask, Rule: rule, Subject: it.OutName(),
					Detail: fmt.Sprintf("attribute not released to role %q", role),
				})
				continue
			}
			for _, cond := range d.Conditions {
				key := cond.String()
				if seenCond[key] {
					continue
				}
				seenCond[key] = true
				if !filterApplies(cond, r.Catalog, prof.BaseTables) {
					// The condition references columns the query's
					// tables do not carry: it cannot be expressed as a
					// row predicate here, so the attribute is masked
					// conservatively instead.
					out.Items[i] = sql.SelectItem{
						Expr:  relation.Lit(MaskValue),
						Alias: it.OutName(),
					}
					decisions = append(decisions, Decision{
						Outcome: Mask, Rule: "condition-unresolvable", Subject: it.OutName(),
						Detail: key,
					})
					continue
				}
				if out.Where == nil {
					out.Where = cond
				} else {
					out.Where = relation.And(out.Where, cond)
				}
				decisions = append(decisions, Decision{
					Outcome: SuppressRow, Rule: "condition-filter",
					Subject: it.OutName(), Detail: key,
				})
			}
		}
	}
	return out, decisions, nil
}

// RewriteSQL parses, rewrites, and renders the query text.
func (r *QueryRewriter) RewriteSQL(query, role, purpose string) (string, []Decision, error) {
	sel, err := sql.ParseSelect(query)
	if err != nil {
		return "", nil, err
	}
	out, decisions, err := r.Rewrite(sel, role, purpose)
	if err != nil {
		return "", decisions, err
	}
	if out == nil {
		return "", decisions, nil
	}
	return out.String(), decisions, nil
}

// expandStars replaces SELECT * items with one explicit item per column
// of the FROM-clause relations (qualified when the query joins), so
// column-level masking applies uniformly.
func (r *QueryRewriter) expandStars(sel *sql.SelectStmt) error {
	hasStar := false
	for _, it := range sel.Items {
		if it.Star {
			hasStar = true
		}
	}
	if !hasStar {
		return nil
	}
	type rel struct {
		alias string
		cols  []string
	}
	var rels []rel
	add := func(tr sql.TableRef) error {
		t, ok := r.Catalog.Table(tr.Name)
		if !ok {
			if v, vok := r.Catalog.View(tr.Name); vok {
				var cols []string
				for _, it := range v.Items {
					if !it.Star {
						cols = append(cols, it.OutName())
					}
				}
				rels = append(rels, rel{alias: tr.EffName(), cols: cols})
				return nil
			}
			return fmt.Errorf("enforce: cannot expand * over unknown relation %q", tr.Name)
		}
		rels = append(rels, rel{alias: tr.EffName(), cols: t.Schema.ColumnNames()})
		return nil
	}
	if err := add(sel.From); err != nil {
		return err
	}
	for _, j := range sel.Joins {
		if err := add(j.Table); err != nil {
			return err
		}
	}
	qualify := len(rels) > 1
	var items []sql.SelectItem
	for _, it := range sel.Items {
		if !it.Star {
			items = append(items, it)
			continue
		}
		for _, rl := range rels {
			for _, c := range rl.cols {
				name := c
				if qualify {
					name = rl.alias + "." + c
				}
				items = append(items, sql.SelectItem{Expr: relation.ColRefExpr(name)})
			}
		}
	}
	sel.Items = items
	return nil
}

// filterApplies reports whether every column the filter references exists
// in at least one of the involved base tables (so the rewritten query
// still runs).
func filterApplies(f relation.Expr, cat *sql.Catalog, tables []string) bool {
	for _, ref := range relation.ColumnsOf(f) {
		found := false
		for _, tn := range tables {
			if t, ok := cat.Table(tn); ok && t.Schema.HasColumn(ref) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
