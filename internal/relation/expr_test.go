package relation

import (
	"strings"
	"testing"
)

func exprSchema() *Schema {
	return NewSchema(
		Col("name", TString),
		Col("age", TInt),
		Col("weight", TFloat),
		Col("disease", TString),
		Col("visit", TDate),
	)
}

func exprRow() Row {
	return Row{Str("Alice"), Int(34), Float(61.5), Str("HIV"), DateYMD(2007, 2, 12)}
}

func evalExpr(t *testing.T, e Expr) Value {
	t.Helper()
	v, err := e.Eval(exprRow(), exprSchema())
	if err != nil {
		t.Fatalf("Eval(%s): %v", e, err)
	}
	return v
}

func TestComparisonOperators(t *testing.T) {
	cases := []struct {
		e    Expr
		want bool
	}{
		{Eq(ColRefExpr("age"), Lit(Int(34))), true},
		{Bin(OpNe, ColRefExpr("age"), Lit(Int(34))), false},
		{Bin(OpLt, ColRefExpr("age"), Lit(Int(40))), true},
		{Bin(OpGe, ColRefExpr("weight"), Lit(Float(61.5))), true},
		{Bin(OpGt, ColRefExpr("weight"), Lit(Int(61))), true},
		{ColEqStr("disease", "HIV"), true},
		{ColEqStr("disease", "asthma"), false},
		{Bin(OpLt, ColRefExpr("visit"), Lit(DateYMD(2008, 1, 1))), true},
	}
	for _, c := range cases {
		v := evalExpr(t, c.e)
		if v.Kind != TBool || v.B != c.want {
			t.Errorf("%s = %v, want %v", c.e, v, c.want)
		}
	}
}

func TestThreeValuedLogic(t *testing.T) {
	null := Lit(Null())
	tru := Lit(Bool(true))
	fal := Lit(Bool(false))
	cases := []struct {
		e    Expr
		want Value
	}{
		{And(tru, null), Null()},
		{And(fal, null), Bool(false)},
		{And(null, fal), Bool(false)},
		{Or(tru, null), Bool(true)},
		{Or(null, tru), Bool(true)},
		{Or(fal, null), Null()},
		{Not(null), Null()},
		{Eq(null, null), Null()},
		{Eq(ColRefExpr("age"), null), Null()},
	}
	for _, c := range cases {
		v := evalExpr(t, c.e)
		if v.Kind != c.want.Kind || (v.Kind == TBool && v.B != c.want.B) {
			t.Errorf("%s = %v, want %v", c.e, v, c.want)
		}
	}
}

func TestNullPredicateDoesNotSelect(t *testing.T) {
	ok, err := EvalPredicate(Eq(ColRefExpr("age"), Lit(Null())), exprRow(), exprSchema())
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("NULL predicate must not select a row")
	}
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		e    Expr
		want Value
	}{
		{Bin(OpAdd, Lit(Int(2)), Lit(Int(3))), Int(5)},
		{Bin(OpSub, Lit(Int(2)), Lit(Int(3))), Int(-1)},
		{Bin(OpMul, ColRefExpr("age"), Lit(Int(2))), Int(68)},
		{Bin(OpDiv, Lit(Int(7)), Lit(Int(2))), Int(3)},
		{Bin(OpDiv, Lit(Float(7)), Lit(Int(2))), Float(3.5)},
		{Bin(OpDiv, Lit(Int(7)), Lit(Int(0))), Null()},
		{Bin(OpMod, Lit(Int(7)), Lit(Int(3))), Int(1)},
		{Neg(Lit(Int(5))), Int(-5)},
		{Bin(OpConcat, Lit(Str("a")), Lit(Str("b"))), Str("ab")},
	}
	for _, c := range cases {
		v := evalExpr(t, c.e)
		if v.String() != c.want.String() || v.Kind != c.want.Kind {
			t.Errorf("%s = %v (%v), want %v (%v)", c.e, v, v.Kind, c.want, c.want.Kind)
		}
	}
}

func TestLike(t *testing.T) {
	cases := []struct {
		s, pat string
		want   bool
	}{
		{"Alice", "A%", true},
		{"Alice", "%ce", true},
		{"Alice", "%li%", true},
		{"Alice", "a_ice", true}, // case-insensitive
		{"Alice", "B%", false},
		{"Alice", "Alice", true},
		{"Alice", "Ali", false},
		{"", "%", true},
		{"abc", "a%c", true},
		{"abc", "a_c", true},
		{"ac", "a_c", false},
	}
	for _, c := range cases {
		e := Bin(OpLike, Lit(Str(c.s)), Lit(Str(c.pat)))
		v := evalExpr(t, e)
		if v.B != c.want {
			t.Errorf("%q LIKE %q = %v, want %v", c.s, c.pat, v.B, c.want)
		}
	}
}

func TestInExpr(t *testing.T) {
	e := In(ColRefExpr("disease"), Lit(Str("HIV")), Lit(Str("asthma")))
	if v := evalExpr(t, e); !v.B {
		t.Error("disease IN (HIV, asthma) should be true")
	}
	e2 := In(ColRefExpr("disease"), Lit(Str("diabetes")))
	if v := evalExpr(t, e2); v.B {
		t.Error("disease IN (diabetes) should be false")
	}
	e3 := &InExpr{E: ColRefExpr("disease"), List: []Expr{Lit(Str("diabetes"))}, Negate: true}
	if v := evalExpr(t, e3); !v.B {
		t.Error("disease NOT IN (diabetes) should be true")
	}
	// Unmatched with NULL in list -> NULL.
	e4 := In(ColRefExpr("disease"), Lit(Str("diabetes")), Lit(Null()))
	if v := evalExpr(t, e4); !v.IsNull() {
		t.Errorf("IN with NULL = %v, want NULL", v)
	}
}

func TestIsNull(t *testing.T) {
	if v := evalExpr(t, IsNull(Lit(Null()))); !v.B {
		t.Error("NULL IS NULL should be true")
	}
	if v := evalExpr(t, IsNotNull(ColRefExpr("name"))); !v.B {
		t.Error("name IS NOT NULL should be true")
	}
}

func TestScalarFunctions(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{Fn("UPPER", ColRefExpr("name")), "ALICE"},
		{Fn("LOWER", ColRefExpr("name")), "alice"},
		{Fn("LENGTH", ColRefExpr("name")), "5"},
		{Fn("TRIM", Lit(Str("  x "))), "x"},
		{Fn("SUBSTR", ColRefExpr("name"), Lit(Int(1)), Lit(Int(2))), "Al"},
		{Fn("SUBSTR", ColRefExpr("name"), Lit(Int(4)), Lit(Int(10))), "ce"},
		{Fn("COALESCE", Lit(Null()), ColRefExpr("name")), "Alice"},
		{Fn("ABS", Lit(Int(-4))), "4"},
		{Fn("ROUND", Lit(Float(2.6))), "3"},
		{Fn("YEAR", ColRefExpr("visit")), "2007"},
		{Fn("MONTH", ColRefExpr("visit")), "2"},
		{Fn("DAY", ColRefExpr("visit")), "12"},
		{Fn("QUARTER", ColRefExpr("visit")), "1"},
		{Fn("CAST_INT", Lit(Str("9"))), "9"},
		{Fn("CAST_STRING", Lit(Int(9))), "9"},
	}
	for _, c := range cases {
		v := evalExpr(t, c.e)
		if v.String() != c.want {
			t.Errorf("%s = %v, want %s", c.e, v, c.want)
		}
	}
}

func TestUnknownFunctionErrors(t *testing.T) {
	_, err := Fn("NOPE", Lit(Int(1))).Eval(exprRow(), exprSchema())
	if err == nil {
		t.Error("expected error for unknown function")
	}
}

func TestUnknownColumnErrors(t *testing.T) {
	_, err := ColRefExpr("ghost").Eval(exprRow(), exprSchema())
	if err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Errorf("expected unknown-column error, got %v", err)
	}
}

func TestColumnsOf(t *testing.T) {
	e := And(ColEqStr("disease", "HIV"), Bin(OpGt, ColRefExpr("age"), ColRefExpr("age")))
	cols := ColumnsOf(e)
	if len(cols) != 2 || cols[0] != "disease" || cols[1] != "age" {
		t.Errorf("ColumnsOf = %v", cols)
	}
	if ColumnsOf(nil) != nil {
		t.Error("ColumnsOf(nil) should be nil")
	}
}

func TestInferType(t *testing.T) {
	s := exprSchema()
	cases := []struct {
		e    Expr
		want Type
	}{
		{ColRefExpr("age"), TInt},
		{ColRefExpr("name"), TString},
		{Eq(ColRefExpr("age"), Lit(Int(1))), TBool},
		{Bin(OpAdd, ColRefExpr("age"), Lit(Int(1))), TInt},
		{Bin(OpAdd, ColRefExpr("weight"), Lit(Int(1))), TFloat},
		{Fn("YEAR", ColRefExpr("visit")), TInt},
		{Fn("UPPER", ColRefExpr("name")), TString},
		{Bin(OpConcat, ColRefExpr("name"), Lit(Str("x"))), TString},
	}
	for _, c := range cases {
		if got := InferType(c.e, s); got != c.want {
			t.Errorf("InferType(%s) = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestExprString(t *testing.T) {
	e := And(ColEqStr("disease", "HIV"), Bin(OpGt, ColRefExpr("age"), Lit(Int(30))))
	want := "((disease = 'HIV') AND (age > 30))"
	if e.String() != want {
		t.Errorf("String() = %q, want %q", e.String(), want)
	}
	if s := Lit(Str("o'hara")).String(); s != "'o''hara'" {
		t.Errorf("literal escaping: %q", s)
	}
}
